(* Tests for the baseline schemes: Per-rule Test and ATPG. The
   qualitative behaviours asserted here are Table I's rows. *)

module Emu = Dataplane.Emulator
module Fault = Dataplane.Fault
module FE = Openflow.Flow_entry
module Probe = Sdnprobe.Probe
module Report = Sdnprobe.Report
module Config = Sdnprobe.Config
module Runner = Sdnprobe.Runner
module Hs = Hspace.Hs
module RG = Rulegraph.Rule_graph
module Prng = Sdn_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let config = Config.default

(* ------------------------------------------------------------------ *)
(* Per-rule generation *)

let test_per_rule_count () =
  (* One probe per (testable) flow entry — Figure 8(a)'s upper line. *)
  let fx = Fixtures.figure3 () in
  let probes = List.map fst (fst (Baselines.Per_rule.generate fx.Fixtures.net)) in
  check_int "one per rule" 10 (List.length probes)

let test_per_rule_paths_short_and_valid () =
  let fx = Fixtures.figure3 () in
  let probes = List.map fst (fst (Baselines.Per_rule.generate fx.Fixtures.net)) in
  let emu = Emu.create fx.Fixtures.net in
  List.iter
    (fun (p : Probe.t) ->
      check_bool "at most 3 hops" true (Probe.hop_count p <= 3);
      (* Each probe passes on the healthy network. *)
      Emu.install_trap emu ~probe:p.Probe.id ~switch:p.Probe.terminal_switch
        ~rule:p.Probe.terminal_rule ~header:p.Probe.expected_header;
      (match (Emu.inject emu ~at:p.Probe.inject_switch p.Probe.header).Emu.outcome with
      | Emu.Returned { probe; _ } when probe = p.Probe.id -> ()
      | _ -> Alcotest.failf "per-rule probe %d failed on healthy net" p.Probe.id);
      Emu.remove_probe_traps emu ~probe:p.Probe.id)
    probes

let test_per_rule_covers_all_rules () =
  let fx = Fixtures.figure3 () in
  let probes = List.map fst (fst (Baselines.Per_rule.generate fx.Fixtures.net)) in
  (* Every rule is the "target" of one probe; conservatively check that
     every rule appears on some probe. *)
  let covered =
    List.sort_uniq compare (List.concat_map (fun (p : Probe.t) -> p.Probe.rules) probes)
  in
  check_int "all rules appear" 10 (List.length covered)

(* ------------------------------------------------------------------ *)
(* Per-rule localization *)

let test_per_rule_detects_single_fault () =
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.b1.FE.id (Fault.make Fault.Drop_packet);
  let report =
    Baselines.Per_rule.run ~stop:(Runner.stop_when_flagged [ Fixtures.sw_b ]) ~config emu
  in
  check_bool "B detected" true (List.mem Fixtures.sw_b (Report.flagged_switches report))

let test_per_rule_false_positives () =
  (* The probe for b1 runs a1 -> b1 -> c2/c1; when b1 drops, per-rule
     cannot tell A, B and C apart: neighbours get framed (Table I). *)
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.b1.FE.id (Fault.make Fault.Drop_packet);
  let cfg = Config.with_max_rounds 12 config in
  let report = Baselines.Per_rule.run ~config:cfg emu in
  let flagged = Report.flagged_switches report in
  check_bool "B detected" true (List.mem Fixtures.sw_b flagged);
  check_bool "neighbours framed (FP)" true (List.length flagged > 1)

(* ------------------------------------------------------------------ *)
(* ATPG generation *)

let test_atpg_covers_all_rules () =
  let fx = Fixtures.figure3 () in
  let gen = Baselines.Atpg.generate fx.Fixtures.net in
  let covered =
    List.sort_uniq compare
      (List.concat_map (fun (p : Probe.t) -> p.Probe.rules) gen.Baselines.Atpg.probes)
  in
  check_int "all rules covered" 10 (List.length covered)

let test_atpg_probes_legal () =
  let fx = Fixtures.figure3 () in
  let gen = Baselines.Atpg.generate fx.Fixtures.net in
  let emu = Emu.create fx.Fixtures.net in
  List.iter
    (fun (p : Probe.t) ->
      Emu.install_trap emu ~probe:p.Probe.id ~switch:p.Probe.terminal_switch
        ~rule:p.Probe.terminal_rule ~header:p.Probe.expected_header;
      (match (Emu.inject emu ~at:p.Probe.inject_switch p.Probe.header).Emu.outcome with
      | Emu.Returned { probe; _ } when probe = p.Probe.id -> ()
      | _ -> Alcotest.failf "atpg probe %d failed on healthy net" p.Probe.id);
      Emu.remove_probe_traps emu ~probe:p.Probe.id)
    gen.Baselines.Atpg.probes

let test_atpg_at_least_mlpc_size () =
  (* Greedy MSC can never beat the exact minimum. *)
  let rng = Prng.create 17 in
  for _ = 1 to 5 do
    let net =
      Fixtures.random_line_net rng ~n_switches:5 ~rules_per_switch:4 ~header_len:8
    in
    let gen = Baselines.Atpg.generate net in
    let rg = RG.build net in
    let mlpc = Mlpc.Legal_matching.solve rg in
    check_bool "atpg >= mlpc" true
      (List.length gen.Baselines.Atpg.probes >= Mlpc.Cover.size mlpc)
  done

(* ------------------------------------------------------------------ *)
(* ATPG localization *)

let test_atpg_detects_single_fault () =
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.b1.FE.id (Fault.make Fault.Drop_packet);
  let report =
    Baselines.Atpg.run ~stop:(Runner.stop_when_flagged [ Fixtures.sw_b ]) ~config emu
  in
  check_bool "B detected" true (List.mem Fixtures.sw_b (Report.flagged_switches report))

let test_atpg_no_fn_multiple_faults () =
  (* Two simultaneous drop faults: iterative intersection must find both
     switches (the paper reports FNR = 0 for basic faults). *)
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.b1.FE.id (Fault.make Fault.Drop_packet);
  Emu.set_fault emu ~entry:fx.Fixtures.d1.FE.id (Fault.make Fault.Drop_packet);
  let cfg = Config.with_max_rounds 40 config in
  let report =
    Baselines.Atpg.run ~stop:(Runner.stop_when_flagged [ Fixtures.sw_b; Fixtures.sw_d ])
      ~config:cfg emu
  in
  let flagged = Report.flagged_switches report in
  check_bool "B detected" true (List.mem Fixtures.sw_b flagged);
  check_bool "D detected" true (List.mem Fixtures.sw_d flagged)

let test_atpg_false_positive_at_intersection () =
  (* b3 (switch B) and e3 (switch E) sit on the same tested path as d1;
     faults on b1 and d1 make two failed paths whose switch sets
     intersect at benign switches: ATPG frames at least one of them. *)
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.b1.FE.id (Fault.make Fault.Drop_packet);
  Emu.set_fault emu ~entry:fx.Fixtures.d1.FE.id (Fault.make Fault.Drop_packet);
  let cfg = Config.with_max_rounds 40 config in
  let report = Baselines.Atpg.run ~config:cfg emu in
  let flagged = Report.flagged_switches report in
  let fps = List.filter (fun sw -> sw <> Fixtures.sw_b && sw <> Fixtures.sw_d) flagged in
  check_bool "has false positives" true (fps <> [])

let test_atpg_computation_penalty () =
  (* With identical faults, ATPG's virtual detection time must exceed
     SDNProbe's (Fig. 8b): it pays for recomputing test packets. *)
  let fault_on net (fx : Fixtures.figure3) =
    let emu = Emu.create net in
    Emu.set_fault emu ~entry:fx.Fixtures.b1.FE.id (Fault.make Fault.Drop_packet);
    emu
  in
  let fx = Fixtures.figure3 () in
  let stop = Runner.stop_when_flagged [ Fixtures.sw_b ] in
  let sdn =
    let emulator = fault_on fx.Fixtures.net fx in
    Runner.execute ~stop ~config ~emulator
      (Pipeline.plan (Pipeline.create (Emu.network emulator)))
  in
  let atpg =
    Baselines.Atpg.run ~stop ~compute_us_per_rule:20_000 ~config (fault_on fx.Fixtures.net fx)
  in
  (match Report.time_to_detect_all sdn ~ground_truth:[ Fixtures.sw_b ] with
  | None -> Alcotest.fail "sdnprobe missed"
  | Some t_sdn -> (
      match Report.time_to_detect_all atpg ~ground_truth:[ Fixtures.sw_b ] with
      | None -> Alcotest.fail "atpg missed"
      | Some t_atpg -> check_bool "atpg slower" true (t_atpg > t_sdn)))

let () =
  Alcotest.run "baselines"
    [
      ( "per-rule generation",
        [
          Alcotest.test_case "count" `Quick test_per_rule_count;
          Alcotest.test_case "short valid paths" `Quick test_per_rule_paths_short_and_valid;
          Alcotest.test_case "covers rules" `Quick test_per_rule_covers_all_rules;
        ] );
      ( "per-rule localization",
        [
          Alcotest.test_case "detects single fault" `Quick test_per_rule_detects_single_fault;
          Alcotest.test_case "false positives" `Quick test_per_rule_false_positives;
        ] );
      ( "atpg generation",
        [
          Alcotest.test_case "covers rules" `Quick test_atpg_covers_all_rules;
          Alcotest.test_case "legal probes" `Quick test_atpg_probes_legal;
          Alcotest.test_case "size >= mlpc" `Quick test_atpg_at_least_mlpc_size;
        ] );
      ( "atpg localization",
        [
          Alcotest.test_case "single fault" `Quick test_atpg_detects_single_fault;
          Alcotest.test_case "no FN multiple" `Quick test_atpg_no_fn_multiple_faults;
          Alcotest.test_case "FP at intersection" `Quick test_atpg_false_positive_at_intersection;
          Alcotest.test_case "computation penalty" `Quick test_atpg_computation_penalty;
        ] );
    ]
