(* Tests for rule-graph construction and legal transitive closure,
   anchored on the paper's Figure 3/4 example. *)

module RG = Rulegraph.Rule_graph
module Digraph = Sdngraph.Digraph
module Cube = Hspace.Cube
module Hs = Hspace.Hs
module FE = Openflow.Flow_entry
module Network = Openflow.Network

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fx = lazy (Fixtures.figure3 ())

let rg = lazy (RG.build (Lazy.force fx).Fixtures.net)

let v e = RG.vertex_of_entry (Lazy.force rg) e.FE.id

let edge a b =
  let g = RG.graph (Lazy.force rg) in
  Digraph.mem_edge g (v a) (v b)

let base_edge a b =
  let g = RG.base_graph (Lazy.force rg) in
  Digraph.mem_edge g (v a) (v b)

(* ------------------------------------------------------------------ *)
(* Figure 3 base graph (Step 1) *)

let test_figure3_base_edges () =
  let f = Lazy.force fx in
  (* Edges stated or implied by the figure. *)
  check_bool "a1->b1" true (base_edge f.Fixtures.a1 f.Fixtures.b1);
  check_bool "b1->c1" true (base_edge f.Fixtures.b1 f.Fixtures.c1);
  check_bool "b1->c2" true (base_edge f.Fixtures.b1 f.Fixtures.c2);
  check_bool "b2->c2" true (base_edge f.Fixtures.b2 f.Fixtures.c2);
  check_bool "b3->d1" true (base_edge f.Fixtures.b3 f.Fixtures.d1);
  check_bool "c1->e1" true (base_edge f.Fixtures.c1 f.Fixtures.e1);
  check_bool "c2->e1" true (base_edge f.Fixtures.c2 f.Fixtures.e1);
  check_bool "c2->e2" true (base_edge f.Fixtures.c2 f.Fixtures.e2);
  check_bool "d1->e3" true (base_edge f.Fixtures.d1 f.Fixtures.e3)

let test_figure3_no_edges () =
  let f = Lazy.force fx in
  (* §V-A: no edge (c1, e2): 00100xxx ∩ (001xxxxx − 0010xxxx) = ∅. *)
  check_bool "c1->e2 absent" false (base_edge f.Fixtures.c1 f.Fixtures.e2);
  (* b2 does not reach c1 (0011 vs 00100). *)
  check_bool "b2->c1 absent" false (base_edge f.Fixtures.b2 f.Fixtures.c1);
  (* a1 only reaches b1 among B's rules. *)
  check_bool "a1->b2 absent" false (base_edge f.Fixtures.a1 f.Fixtures.b2);
  check_bool "a1->b3 absent" false (base_edge f.Fixtures.a1 f.Fixtures.b3);
  (* drop rules have no successors *)
  check_int "e1 out-degree" 0
    (Digraph.out_degree (RG.base_graph (Lazy.force rg)) (v f.Fixtures.e1))

let test_figure3_dag () =
  let g = RG.base_graph (Lazy.force rg) in
  check_bool "acyclic" false (Digraph.has_cycle g)

(* ------------------------------------------------------------------ *)
(* Legal paths (Definition 1) *)

let test_legal_path_positive () =
  let f = Lazy.force fx in
  let path = List.map v [ f.Fixtures.a1; f.Fixtures.b1; f.Fixtures.c2; f.Fixtures.e1 ] in
  check_bool "a1-b1-c2-e1 legal" true (RG.is_legal (Lazy.force rg) path);
  (* Its traversing headers are exactly 00101xxx (paper §V-B step 3). *)
  let ss = RG.start_space (Lazy.force rg) path in
  check_bool "start space" true
    (Hs.equal_sets ss (Hs.of_cubes 8 [ Cube.of_string "00101xxx" ]))

let test_legal_path_negative () =
  let f = Lazy.force fx in
  (* The illegal MPC path a1 -> b1 -> c1 -> e1 (§V-B). *)
  let path = List.map v [ f.Fixtures.a1; f.Fixtures.b1; f.Fixtures.c1; f.Fixtures.e1 ] in
  check_bool "a1-b1-c1-e1 illegal" false (RG.is_legal (Lazy.force rg) path)

let test_legal_path_with_set_field () =
  let f = Lazy.force fx in
  (* b3 -> d1 -> e3 requires d1's set field to produce 0111xxxx. *)
  let path = List.map v [ f.Fixtures.b3; f.Fixtures.d1; f.Fixtures.e3 ] in
  check_bool "legal through set field" true (RG.is_legal (Lazy.force rg) path);
  let ss = RG.start_space (Lazy.force rg) path in
  (* Injectable headers: anything matching 000xxxxx. *)
  check_bool "start space" true (Hs.equal_sets ss (Hs.of_cubes 8 [ Cube.of_string "000xxxxx" ]))

let test_forward_space () =
  let f = Lazy.force fx in
  let path = List.map v [ f.Fixtures.b3; f.Fixtures.d1; f.Fixtures.e3 ] in
  let out = RG.forward_space (Lazy.force rg) path in
  check_bool "forward space is 0111xxxx" true
    (Hs.equal_sets out (Hs.of_cubes 8 [ Cube.of_string "0111xxxx" ]))

(* ------------------------------------------------------------------ *)
(* Legal transitive closure (Step 2, Figure 4) *)

let test_closure_adds_b2_e2 () =
  let f = Lazy.force fx in
  check_bool "closure edge b2->e2" true (edge f.Fixtures.b2 f.Fixtures.e2);
  check_bool "b2->e2 not base" false (base_edge f.Fixtures.b2 f.Fixtures.e2);
  check_bool "is_closure_edge" true
    (RG.is_closure_edge (Lazy.force rg) (v f.Fixtures.b2) (v f.Fixtures.e2))

let test_closure_witness_expansion () =
  let f = Lazy.force fx in
  let path = List.map v [ f.Fixtures.b2; f.Fixtures.e2 ] in
  let expanded = RG.expand_path (Lazy.force rg) path in
  (* b2 -> e2 must expand through c2 (paper: "b2->e2 can be further
     converted to b2->c2->e2"). *)
  check_bool "expansion" true
    (expanded = List.map v [ f.Fixtures.b2; f.Fixtures.c2; f.Fixtures.e2 ]);
  check_bool "expanded is legal" true
    (not (Hs.is_empty (RG.forward_space (Lazy.force rg) expanded)))

let test_closure_does_not_add_illegal () =
  let f = Lazy.force fx in
  (* a1 -> e2 would require traversing c1/c2 with headers 00101xxx; e2's
     input is 0011xxxx, so no legal path exists. *)
  check_bool "a1->e2 absent" false (edge f.Fixtures.a1 f.Fixtures.e2);
  (* a1 -> e1 IS a legal two-hop extension: closure adds it. *)
  check_bool "a1->e1 closure" true (edge f.Fixtures.a1 f.Fixtures.e1)

let test_closure_edges_all_legal () =
  let r = Lazy.force rg in
  let g = RG.graph r in
  Digraph.iter_edges
    (fun u v -> check_bool "edge legal" true (RG.is_legal r [ u; v ]))
    g

let test_no_closure_build () =
  let f = Lazy.force fx in
  let r = RG.build ~closure:false f.Fixtures.net in
  check_int "same edges as base" (Digraph.n_edges (RG.base_graph r))
    (Digraph.n_edges (RG.graph r))

let test_expand_path_nested_closures () =
  (* A 5-switch chain with one rule per switch: the closure adds an
     edge for every vertex pair (i, j), i < j, so a path can be built
     entirely of closure edges. expand_path must splice each witness
     interior back in, producing the base-edge chain. *)
  let topo = Openflow.Topology.create ~n_switches:5 in
  for i = 0 to 3 do
    Openflow.Topology.add_link topo ~sw_a:i ~port_a:2 ~sw_b:(i + 1) ~port_b:1
  done;
  let net = Network.create ~header_len:4 topo in
  let rule sw action =
    Network.add_entry net ~switch:sw ~priority:1 ~match_:(Cube.of_string "1xxx") action
  in
  let rules =
    List.init 4 (fun i -> rule i (FE.Output 2)) @ [ rule 4 FE.Drop ]
  in
  let r = RG.build net in
  let vv i = RG.vertex_of_entry r (List.nth rules i).FE.id in
  let chain = List.init 5 vv in
  (* Two consecutive closure edges: 0 -> 2 -> 4. *)
  check_bool "0->2 closure" true (RG.is_closure_edge r (vv 0) (vv 2));
  check_bool "2->4 closure" true (RG.is_closure_edge r (vv 2) (vv 4));
  check_bool "two-hop expansion" true
    (RG.expand_path r [ vv 0; vv 2; vv 4 ] = chain);
  (* A single closure edge spanning the whole chain. *)
  check_bool "0->4 closure" true (RG.is_closure_edge r (vv 0) (vv 4));
  check_bool "full-span expansion" true (RG.expand_path r [ vv 0; vv 4 ] = chain);
  check_bool "expansion legal" true
    (not (Hs.is_empty (RG.forward_space r chain)));
  (* A pair that is neither a base nor a closure edge is rejected. *)
  check_bool "reverse pair rejected" true
    (try
       ignore (RG.expand_path r [ vv 4; vv 0 ]);
       false
     with Invalid_argument _ -> true)

let test_cyclic_policy_through_rewrites () =
  (* Two switches bouncing a packet via set-field rewrites: sw0 sends
     0xxx as 1xxx, sw1 sends it back as 0xxx. The match fields are
     disjoint, so the loop exists only through the rewrites — build
     must still reject it. *)
  let topo = Openflow.Topology.create ~n_switches:2 in
  Openflow.Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  let a =
    Network.add_entry net ~switch:0 ~priority:1 ~match_:(Cube.of_string "0xxx")
      ~set_field:(Cube.of_string "1xxx") (FE.Output 1)
  in
  let b =
    Network.add_entry net ~switch:1 ~priority:1 ~match_:(Cube.of_string "1xxx")
      ~set_field:(Cube.of_string "0xxx") (FE.Output 1)
  in
  check_bool "raises with both entries" true
    (try
       ignore (RG.build net);
       false
     with RG.Cyclic_policy cycle ->
       List.sort compare cycle = List.sort compare [ a.FE.id; b.FE.id ])

(* ------------------------------------------------------------------ *)
(* Inputs/outputs and lookup *)

let test_vertex_roundtrip () =
  let r = Lazy.force rg in
  check_int "10 vertices" 10 (RG.n_vertices r);
  for i = 0 to RG.n_vertices r - 1 do
    let e = RG.vertex_entry r i in
    check_int "roundtrip" i (RG.vertex_of_entry r e.FE.id)
  done

let test_cyclic_policy_rejected () =
  (* Two switches forwarding the same header space at each other. *)
  let topo = Openflow.Topology.create ~n_switches:2 in
  Openflow.Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  let m = Cube.of_string "1xxx" in
  let _ = Network.add_entry net ~switch:0 ~priority:1 ~match_:m (FE.Output 1) in
  let _ = Network.add_entry net ~switch:1 ~priority:1 ~match_:m (FE.Output 1) in
  check_bool "raises" true
    (try
       ignore (RG.build net);
       false
     with RG.Cyclic_policy cycle -> List.length cycle >= 2)

let test_multi_table_goto () =
  (* A single switch with two tables chained by goto; edge must exist
     between the matching entries. *)
  let topo = Openflow.Topology.create ~n_switches:2 in
  Openflow.Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 ~tables_per_switch:2 topo in
  let t0 =
    Network.add_entry net ~switch:0 ~table:0 ~priority:1 ~match_:(Cube.of_string "1xxx")
      (FE.Goto_table 1)
  in
  let t1 =
    Network.add_entry net ~switch:0 ~table:1 ~priority:1 ~match_:(Cube.of_string "11xx")
      (FE.Output 1)
  in
  let sink =
    Network.add_entry net ~switch:1 ~priority:1 ~match_:(Cube.of_string "xxxx") FE.Drop
  in
  let r = RG.build net in
  let vv e = RG.vertex_of_entry r e.FE.id in
  check_bool "goto edge" true (Digraph.mem_edge (RG.base_graph r) (vv t0) (vv t1));
  check_bool "cross switch" true (Digraph.mem_edge (RG.base_graph r) (vv t1) (vv sink));
  check_bool "goto path legal" true (RG.is_legal r [ vv t0; vv t1; vv sink ])

(* ------------------------------------------------------------------ *)
(* Incremental updates *)

let same_graphs rg_inc rg_full =
  let edge_ids rg g =
    let acc = ref [] in
    Sdngraph.Digraph.iter_edges
      (fun u v ->
        acc :=
          ((RG.vertex_entry rg u).FE.id, (RG.vertex_entry rg v).FE.id) :: !acc)
      g;
    List.sort compare !acc
  in
  check_int "same vertex count" (RG.n_vertices rg_full) (RG.n_vertices rg_inc);
  check_bool "same base edges" true
    (edge_ids rg_inc (RG.base_graph rg_inc) = edge_ids rg_full (RG.base_graph rg_full));
  check_bool "same closure edges" true
    (edge_ids rg_inc (RG.graph rg_inc) = edge_ids rg_full (RG.graph rg_full));
  for v = 0 to RG.n_vertices rg_full - 1 do
    let id = (RG.vertex_entry rg_full v).FE.id in
    let vi = RG.vertex_of_entry rg_inc id in
    check_bool "same input space" true (Hs.equal_sets (RG.input rg_inc vi) (RG.input rg_full v));
    check_bool "same output space" true
      (Hs.equal_sets (RG.output rg_inc vi) (RG.output rg_full v))
  done

let test_incremental_add () =
  let f = Fixtures.figure3 () in
  let rg0 = RG.build f.Fixtures.net in
  (* Add a new high-priority rule on switch C: it shadows part of c2 and
     changes C's inputs, edges, and closure paths. *)
  let _new_rule =
    Network.add_entry f.Fixtures.net ~switch:Fixtures.sw_c ~priority:3
      ~match_:(Cube.of_string "0011xxxx")
      (FE.Output 2)
  in
  let rg_inc = RG.update rg0 ~changed_tables:[ (Fixtures.sw_c, 0) ] in
  let rg_full = RG.build f.Fixtures.net in
  same_graphs rg_inc rg_full

let test_incremental_remove () =
  let f = Fixtures.figure3 () in
  let rg0 = RG.build f.Fixtures.net in
  (* Removing c1 un-shadows c2's input (0010xxxx returns to it). *)
  Network.remove_entry f.Fixtures.net f.Fixtures.c1.FE.id;
  let rg_inc = RG.update rg0 ~changed_tables:[ (Fixtures.sw_c, 0) ] in
  let rg_full = RG.build f.Fixtures.net in
  same_graphs rg_inc rg_full

let test_incremental_random_churn () =
  let rng = Sdn_util.Prng.create 23 in
  for _ = 1 to 8 do
    let net =
      Fixtures.random_line_net rng ~n_switches:5 ~rules_per_switch:4 ~header_len:8
    in
    let rg0 = RG.build net in
    (* Random churn: remove one entry, add one entry, on random switches. *)
    let entries = Network.all_entries net in
    let victim = List.nth entries (Sdn_util.Prng.int rng (List.length entries)) in
    Network.remove_entry net victim.FE.id;
    let sw = Sdn_util.Prng.int rng 4 in
    let added =
      Network.add_entry net ~switch:sw
        ~priority:(1 + Sdn_util.Prng.int rng 9)
        ~match_:(Hspace.Cube.random rng 8)
        (FE.Output 2)
    in
    let changed_tables =
      List.sort_uniq compare [ (victim.FE.switch, victim.FE.table); (added.FE.switch, 0) ]
    in
    let rg_inc = RG.update rg0 ~changed_tables in
    let rg_full = RG.build net in
    same_graphs rg_inc rg_full
  done

let test_incremental_cycle_detected () =
  let topo = Openflow.Topology.create ~n_switches:2 in
  Openflow.Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  let m = Cube.of_string "1xxx" in
  let _ = Network.add_entry net ~switch:0 ~priority:1 ~match_:m (FE.Output 1) in
  let rg0 = RG.build net in
  (* Adding the reverse rule closes a loop. *)
  let _ = Network.add_entry net ~switch:1 ~priority:1 ~match_:m (FE.Output 1) in
  check_bool "cycle raised" true
    (try
       ignore (RG.update rg0 ~changed_tables:[ (1, 0) ]);
       false
     with RG.Cyclic_policy _ -> true)

(* ------------------------------------------------------------------ *)
(* Static policy checks *)

module SC = Rulegraph.Static_checks

let test_static_clean () =
  let f = Fixtures.figure3 () in
  check_bool "figure3 is clean of loops/shadows" true
    (List.for_all
       (function SC.Blackhole _ -> true | _ -> false)
       (SC.check f.Fixtures.net))

let test_static_loop () =
  let topo = Openflow.Topology.create ~n_switches:2 in
  Openflow.Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  let m = Cube.of_string "1xxx" in
  let a = Network.add_entry net ~switch:0 ~priority:1 ~match_:m (FE.Output 1) in
  let b = Network.add_entry net ~switch:1 ~priority:1 ~match_:m (FE.Output 1) in
  match SC.check net with
  | SC.Forwarding_loop ids :: _ ->
      check_bool "both entries on the loop" true
        (List.sort compare ids = List.sort compare [ a.FE.id; b.FE.id ])
  | _ -> Alcotest.fail "expected a loop issue first"

let test_static_blackhole () =
  let topo = Openflow.Topology.create ~n_switches:2 in
  Openflow.Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  (* Switch 0 forwards 1xxx; switch 1 only matches 11xx: 10xx dies. *)
  let fwd =
    Network.add_entry net ~switch:0 ~priority:1 ~match_:(Cube.of_string "1xxx")
      (FE.Output 1)
  in
  let _ =
    Network.add_entry net ~switch:1 ~priority:1 ~match_:(Cube.of_string "11xx") FE.Drop
  in
  let blackholes =
    List.filter_map
      (function
        | SC.Blackhole { rule; next_switch; space } -> Some (rule, next_switch, space)
        | _ -> None)
      (SC.check net)
  in
  match blackholes with
  | [ (rule, next_switch, space) ] ->
      check_int "leaking rule" fwd.FE.id rule;
      check_int "at switch" 1 next_switch;
      check_bool "leaked space" true
        (Hs.equal_sets space (Hs.of_cubes 4 [ Cube.of_string "10xx" ]))
  | _ -> Alcotest.fail "expected exactly one blackhole"

let test_static_shadowed () =
  let topo = Openflow.Topology.create ~n_switches:2 in
  Openflow.Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  let _hi =
    Network.add_entry net ~switch:0 ~priority:2 ~match_:(Cube.of_string "1xxx")
      (FE.Output 1)
  in
  let shadowed =
    Network.add_entry net ~switch:0 ~priority:1 ~match_:(Cube.of_string "11xx")
      (FE.Output 1)
  in
  let _sink =
    Network.add_entry net ~switch:1 ~priority:1 ~match_:(Cube.of_string "xxxx") FE.Drop
  in
  check_bool "shadow reported" true
    (List.mem (SC.Shadowed_rule shadowed.FE.id) (SC.check net))

(* ------------------------------------------------------------------ *)
(* Space caches *)

let test_cache_hits_and_invalidation () =
  let f = Fixtures.figure3 () in
  let rg = RG.build f.Fixtures.net in
  let v e = RG.vertex_of_entry rg e.FE.id in
  let path = List.map v [ f.Fixtures.a1; f.Fixtures.b1; f.Fixtures.c2; f.Fixtures.e1 ] in
  let stat name rg = List.assoc name (RG.cache_stats rg) in
  (* build itself may have consulted the caches; measure deltas *)
  let h0 = stat "space_cache_hits" rg and m0 = stat "space_cache_misses" rg in
  let s1 = RG.start_space rg path in
  let m1 = stat "space_cache_misses" rg in
  check_bool "cold query misses" true (m1 > m0);
  let s2 = RG.start_space rg path in
  check_bool "warm query hits" true (stat "space_cache_hits" rg > h0);
  check_int "no new misses" m1 (stat "space_cache_misses" rg);
  check_bool "memoized result identical" true (Hs.equal_sets s1 s2);
  RG.invalidate_caches rg;
  let s3 = RG.start_space rg path in
  check_bool "invalidate forces recompute" true (stat "space_cache_misses" rg > m1);
  check_bool "recomputed result identical" true (Hs.equal_sets s1 s3);
  (* forward_space and injection_plan go through the same machinery *)
  let fwd1 = RG.forward_space rg path and fwd2 = RG.forward_space rg path in
  check_bool "forward memoized" true (Hs.equal_sets fwd1 fwd2)

let test_cached_spaces_match_fresh_graph () =
  (* Memoized answers on a warm graph = answers from a fresh build. *)
  let rng = Sdn_util.Prng.create 17 in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:8 () in
  let net = Topogen.Rule_gen.install rng topo in
  let rg = RG.build net in
  let cover = Mlpc.Legal_matching.solve rg in
  let fresh = RG.build net in
  List.iter
    (fun (p : Mlpc.Cover.path) ->
      let rules = p.Mlpc.Cover.rules in
      (* second query per graph is served from cache *)
      ignore (RG.start_space rg rules);
      check_bool "start space stable" true
        (Hs.equal_sets (RG.start_space rg rules) (RG.start_space fresh rules));
      check_bool "forward space stable" true
        (Hs.equal_sets (RG.forward_space rg rules) (RG.forward_space fresh rules)))
    cover.Mlpc.Cover.paths

let test_static_generated_clean () =
  (* The synthetic policies are loop-free and shadow-free by
     construction. *)
  let rng = Sdn_util.Prng.create 31 in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:10 () in
  let net = Topogen.Rule_gen.install rng topo in
  List.iter
    (fun issue ->
      match issue with
      | SC.Forwarding_loop _ | SC.Shadowed_rule _ ->
          Alcotest.failf "unexpected issue: %s"
            (Format.asprintf "%a" (SC.pp_issue net) issue)
      | SC.Blackhole _ -> () (* unused selector values die by design *))
    (SC.check net)

let () =
  Alcotest.run "rulegraph"
    [
      ( "figure3 base",
        [
          Alcotest.test_case "edges present" `Quick test_figure3_base_edges;
          Alcotest.test_case "edges absent" `Quick test_figure3_no_edges;
          Alcotest.test_case "dag" `Quick test_figure3_dag;
        ] );
      ( "legal paths",
        [
          Alcotest.test_case "positive" `Quick test_legal_path_positive;
          Alcotest.test_case "negative (MPC trap)" `Quick test_legal_path_negative;
          Alcotest.test_case "set field" `Quick test_legal_path_with_set_field;
          Alcotest.test_case "forward space" `Quick test_forward_space;
        ] );
      ( "closure",
        [
          Alcotest.test_case "adds b2->e2" `Quick test_closure_adds_b2_e2;
          Alcotest.test_case "witness expansion" `Quick test_closure_witness_expansion;
          Alcotest.test_case "no illegal closure edges" `Quick test_closure_does_not_add_illegal;
          Alcotest.test_case "all closure edges legal" `Quick test_closure_edges_all_legal;
          Alcotest.test_case "closure off" `Quick test_no_closure_build;
          Alcotest.test_case "nested closure expansion" `Quick test_expand_path_nested_closures;
        ] );
      ( "structure",
        [
          Alcotest.test_case "vertex roundtrip" `Quick test_vertex_roundtrip;
          Alcotest.test_case "cyclic policy rejected" `Quick test_cyclic_policy_rejected;
          Alcotest.test_case "cyclic through rewrites" `Quick test_cyclic_policy_through_rewrites;
          Alcotest.test_case "multi-table goto" `Quick test_multi_table_goto;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "add rule" `Quick test_incremental_add;
          Alcotest.test_case "remove rule" `Quick test_incremental_remove;
          Alcotest.test_case "random churn" `Quick test_incremental_random_churn;
          Alcotest.test_case "cycle detected" `Quick test_incremental_cycle_detected;
        ] );
      ( "space caches",
        [
          Alcotest.test_case "hits and invalidation" `Quick test_cache_hits_and_invalidation;
          Alcotest.test_case "match fresh build" `Quick test_cached_spaces_match_fresh_graph;
        ] );
      ( "static checks",
        [
          Alcotest.test_case "figure3 clean" `Quick test_static_clean;
          Alcotest.test_case "loop" `Quick test_static_loop;
          Alcotest.test_case "blackhole" `Quick test_static_blackhole;
          Alcotest.test_case "shadowed" `Quick test_static_shadowed;
          Alcotest.test_case "generated policies clean" `Quick test_static_generated_clean;
        ] );
    ]
