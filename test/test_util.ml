(* Tests for the utility library: PRNG determinism and distribution
   sanity, plus the small statistics helpers. *)

module Prng = Sdn_util.Prng
module Misc = Sdn_util.Misc

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* PRNG *)

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Prng.bits64 a = Prng.bits64 b)
  done;
  let c = Prng.create 43 in
  check_bool "different seed differs" true (Prng.bits64 (Prng.create 42) <> Prng.bits64 c)

let test_copy_and_split () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check_bool "copy continues identically" true (Prng.bits64 a = Prng.bits64 b);
  let c = Prng.split a in
  check_bool "split independent" true (Prng.bits64 a <> Prng.bits64 c)

let test_int_bounds () =
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    check_bool "in range" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in rng 3 9 in
    check_bool "inclusive range" true (v >= 3 && v <= 9)
  done;
  Alcotest.check_raises "bound must be positive"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_int_uniformity () =
  let rng = Prng.create 2 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let v = Prng.int rng 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> check_bool "roughly uniform" true (abs (c - (n / 4)) < n / 20))
    counts

let test_float_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    check_bool "in range" true (v >= 0. && v < 2.5)
  done

let test_shuffle_permutation () =
  let rng = Prng.create 4 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_bool "is permutation" true (Array.to_list sorted = List.init 50 Fun.id);
  check_bool "actually shuffled" true (Array.to_list a <> List.init 50 Fun.id)

let test_sample_without_replacement () =
  let rng = Prng.create 5 in
  for _ = 1 to 50 do
    let k = 1 + Prng.int rng 10 in
    let n = k + Prng.int rng 20 in
    let s = Prng.sample_without_replacement rng k n in
    check_int "size" k (List.length s);
    check_int "distinct" k (List.length (List.sort_uniq compare s));
    List.iter (fun v -> check_bool "in range" true (v >= 0 && v < n)) s
  done;
  Alcotest.check_raises "k > n"
    (Invalid_argument "Prng.sample_without_replacement: k > n") (fun () ->
      ignore (Prng.sample_without_replacement rng 5 3))

let test_choose () =
  let rng = Prng.create 6 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    check_bool "member" true (Array.mem (Prng.choose rng arr) arr)
  done;
  check_int "singleton list" 42 (Prng.choose_list rng [ 42 ])

(* ------------------------------------------------------------------ *)
(* Misc statistics *)

let test_mean_median () =
  check_float "mean" 2.5 (Misc.mean [ 1.; 2.; 3.; 4. ]);
  check_float "mean empty" 0. (Misc.mean []);
  check_float "median odd" 3. (Misc.median [ 5.; 1.; 3. ]);
  check_float "median even" 2.5 (Misc.median [ 4.; 1.; 2.; 3. ]);
  check_float "median empty" 0. (Misc.median [])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50. (Misc.percentile 50. xs);
  check_float "p99" 99. (Misc.percentile 99. xs);
  check_float "p100" 100. (Misc.percentile 100. xs)

let test_stddev () =
  check_float "constant" 0. (Misc.stddev [ 2.; 2.; 2. ]);
  check_float "known" 2. (Misc.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_group_by () =
  let groups = Misc.group_by (fun x -> x mod 2) [ 1; 2; 3; 4; 5 ] in
  check_bool "groups" true (groups = [ (1, [ 1; 3; 5 ]); (0, [ 2; 4 ]) ])

let test_take () =
  check_bool "take 2" true (Misc.take 2 [ 1; 2; 3 ] = [ 1; 2 ]);
  check_bool "take more than length" true (Misc.take 9 [ 1; 2 ] = [ 1; 2 ]);
  check_bool "take 0" true (Misc.take 0 [ 1 ] = [])

let test_list_init_filter () =
  check_bool "evens" true
    (Misc.list_init_filter 6 (fun i -> if i mod 2 = 0 then Some i else None) = [ 0; 2; 4 ])

(* The deterministic hash-table views (sdncheck rule D001): the same
   bindings inserted in different orders must render identically. *)
let test_hashtbl_views () =
  let of_pairs ps =
    let t = Hashtbl.create 8 in
    List.iter (fun (k, v) -> Hashtbl.replace t k v) ps;
    t
  in
  let a = of_pairs [ ("z", 1); ("a", 2); ("m", 3) ] in
  let b = of_pairs [ ("m", 3); ("z", 1); ("a", 2) ] in
  check_bool "keys sorted" true (Misc.hashtbl_keys a = [ "a"; "m"; "z" ]);
  check_bool "insertion order irrelevant" true
    (Misc.hashtbl_bindings a = Misc.hashtbl_bindings b);
  check_bool "bindings sorted" true
    (Misc.hashtbl_bindings a = [ ("a", 2); ("m", 3); ("z", 1) ]);
  (* Duplicate keys (Hashtbl.add shadowing) keep the latest binding. *)
  let d = of_pairs [ ("k", 1) ] in
  Hashtbl.add d "k" 2;
  check_bool "latest wins" true (Misc.hashtbl_bindings d = [ ("k", 2) ])

(* ------------------------------------------------------------------ *)
(* Mono: the shared monotonic time source. All timing call sites must
   route through Mono — the regression here installs a fake source that
   steps by a fixed amount per reading and checks the measured spans
   see exactly those steps. The pre-fix code read the wall clock
   (Unix.gettimeofday) directly, so a fake Mono source had no effect
   (and an NTP step could make spans negative). *)

module Mono = Sdn_util.Mono

let test_mono_monotone () =
  let prev = ref (Mono.now_s ()) in
  for _ = 1 to 1000 do
    let t = Mono.now_s () in
    check_bool "never steps backwards" true (t >= !prev);
    prev := t
  done

let test_mono_counting_source () =
  Mono.with_source (Mono.counting_source ~start:100. ~step:10.) (fun () ->
      check_float "first reading" 100. (Mono.now_s ());
      check_float "second reading" 110. (Mono.now_s ());
      let (), d = Mono.span (fun () -> ()) in
      check_float "span = one step" 10. d);
  (* the real source is restored afterwards *)
  check_bool "restored" true (Mono.now_s () < 1e9)

let test_span_time_routes_through_mono () =
  Mono.with_source (Mono.counting_source ~start:0. ~step:10.) (fun () ->
      let v, d = Misc.span_time (fun () -> 42) in
      check_int "result" 42 v;
      check_float "span_time sees the fake source" 10. d)

let test_timing_routes_through_mono () =
  Mono.with_source (Mono.counting_source ~start:0. ~step:10.) (fun () ->
      let tm = Metrics.Timing.create () in
      ignore (Metrics.Timing.time tm "stage" (fun () -> ()));
      match Metrics.Timing.timings tm with
      | [ ("stage", d) ] -> check_float "Timing.time sees the fake source" 10. d
      | _ -> Alcotest.fail "expected one timing entry")

(* ------------------------------------------------------------------ *)
(* Edits parser: field separators and malformed-line reporting *)

module Edits = Sdn_util.Edits

let sample_ops = "add switch=0 table=0 priority=5 match=10x action=output:1\nremove 3\ncommit\n"

let test_edits_crlf_stream () =
  (* The same stream with CRLF line endings must parse identically. *)
  let crlf = String.concat "\r\n" (String.split_on_char '\n' sample_ops) in
  match (Edits.parse sample_ops, Edits.parse crlf) with
  | Ok a, Ok b -> check_bool "CRLF parses identically" true (a = b)
  | Ok _, Error e -> Alcotest.fail ("CRLF stream rejected: " ^ e)
  | Error e, _ -> Alcotest.fail ("LF stream rejected: " ^ e)

let test_edits_tab_separated () =
  let tabs = "add\tswitch=1\ttable=0\tpriority=2\tmatch=0xx\taction=drop\ncommit\n" in
  match Edits.parse tabs with
  | Ok [ [ Edits.Add a ] ] ->
      check_int "switch" 1 a.Edits.switch;
      check_bool "match" true (a.Edits.match_ = "0xx")
  | Ok _ -> Alcotest.fail "expected one batch of one add"
  | Error e -> Alcotest.fail ("tab-separated line rejected: " ^ e)

let test_edits_mixed_whitespace () =
  (* Runs of mixed blanks collapse; a stray '\r' mid-line is a
     separator, never glued onto a field value. *)
  let messy = "add  switch=2\t table=1  priority=9 match=111 action=goto:2 \r\ncommit\n" in
  match Edits.parse messy with
  | Ok [ [ Edits.Add a ] ] ->
      check_int "switch" 2 a.Edits.switch;
      check_bool "action" true (a.Edits.action = Edits.Goto_table 2)
  | Ok _ -> Alcotest.fail "expected one batch of one add"
  | Error e -> Alcotest.fail ("mixed-whitespace line rejected: " ^ e)

let test_edits_malformed_line_message () =
  match Edits.parse "remove 1\nadd switch=oops\n" with
  | Ok _ -> Alcotest.fail "malformed add accepted"
  | Error msg ->
      check_bool "names the line" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 2:");
      let contains ~needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
        at 0
      in
      check_bool "names the field" true (contains ~needle:"switch" msg)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "copy/split" `Quick test_copy_and_split;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
          Alcotest.test_case "sampling" `Quick test_sample_without_replacement;
          Alcotest.test_case "choose" `Quick test_choose;
        ] );
      ( "misc",
        [
          Alcotest.test_case "mean/median" `Quick test_mean_median;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "group_by" `Quick test_group_by;
          Alcotest.test_case "take" `Quick test_take;
          Alcotest.test_case "list_init_filter" `Quick test_list_init_filter;
          Alcotest.test_case "hashtbl views" `Quick test_hashtbl_views;
        ] );
      ( "mono",
        [
          Alcotest.test_case "monotone" `Quick test_mono_monotone;
          Alcotest.test_case "counting source" `Quick test_mono_counting_source;
          Alcotest.test_case "span_time via Mono" `Quick test_span_time_routes_through_mono;
          Alcotest.test_case "Timing.time via Mono" `Quick test_timing_routes_through_mono;
        ] );
      ( "edits",
        [
          Alcotest.test_case "CRLF stream" `Quick test_edits_crlf_stream;
          Alcotest.test_case "tab-separated" `Quick test_edits_tab_separated;
          Alcotest.test_case "mixed whitespace" `Quick test_edits_mixed_whitespace;
          Alcotest.test_case "malformed line message" `Quick test_edits_malformed_line_message;
        ] );
    ]
