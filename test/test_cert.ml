(* Tests for the certification layer: the DRUP checker against the
   solver's proof logging (including every add_clause normalization
   shape), DIMACS round-trips with a brute-force differential, König
   certificates, cache-free path replay, Yen re-checks, and the
   end-to-end plan certification — plus mutation tests proving each
   checker actually rejects corrupted certificates. *)

module Solver = Sat.Solver
module Dimacs = Sat.Dimacs
module HE = Sat.Header_encoding
module Drup = Cert.Drup
module Konig = Cert.Konig
module Replay = Cert.Replay
module Yen_check = Cert.Yen_check
module HK = Sdngraph.Hopcroft_karp
module Digraph = Sdngraph.Digraph
module Cube = Hspace.Cube
module Header = Hspace.Header
module Hs = Hspace.Hs
module Prng = Sdn_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let is_ok = function Ok () -> true | Error _ -> false

(* ------------------------------------------------------------------ *)
(* DRUP checking of logged refutations *)

(* Run a logged solver over [clauses]; on Unsat, the proof must check;
   on Sat, the model must check. *)
let solve_and_certify clauses =
  let s = Solver.create () in
  Solver.log_proof s;
  List.iter (Solver.add_clause s) clauses;
  match Solver.solve s with
  | Solver.Sat m ->
      check_bool "model checks" true
        (is_ok (Drup.check_model ~clauses:(Solver.logged_clauses s) m));
      true
  | Solver.Unsat ->
      check_bool "proof checks" true
        (is_ok
           (Drup.check ~nvars:(Solver.nvars s)
              ~clauses:(Solver.logged_clauses s)
              ~proof:(Solver.proof s) ()));
      false

let test_drup_contradiction () =
  check_bool "unsat" false (solve_and_certify [ [ 1 ]; [ -1 ] ])

let test_drup_empty_clause () =
  check_bool "unsat" false (solve_and_certify [ [ 1; 2 ]; [] ])

let test_drup_pigeonhole () =
  (* 3 pigeons, 2 holes: needs real conflict analysis, so the proof has
     learnt-clause steps. *)
  let var p h = ((p - 1) * 2) + h in
  let clauses =
    List.concat
      [
        List.init 3 (fun p -> [ var (p + 1) 1; var (p + 1) 2 ]);
        List.concat_map
          (fun h ->
            [
              [ -var 1 h; -var 2 h ];
              [ -var 1 h; -var 3 h ];
              [ -var 2 h; -var 3 h ];
            ])
          [ 1; 2 ];
      ]
  in
  check_bool "unsat" false (solve_and_certify clauses)

let test_drup_sat_instance () =
  check_bool "sat" true (solve_and_certify [ [ 1; 2 ]; [ -1; 2 ]; [ -2; 3 ] ])

let test_drup_rejects_bogus_step () =
  (* [2] is not RUP w.r.t. {1} — nothing forces variable 2. *)
  match Drup.check ~clauses:[ [ 1 ] ] ~proof:[ [ 2 ]; [] ] () with
  | Ok () -> Alcotest.fail "bogus step accepted"
  | Error e -> check_bool "names step 0" true (e.Drup.step = Some 0)

let test_drup_rejects_missing_empty_clause () =
  (* Valid steps but no refutation: must be rejected. *)
  match Drup.check ~clauses:[ [ 1 ]; [ -1; 2 ] ] ~proof:[ [ 2 ] ] () with
  | Ok () -> Alcotest.fail "proof without empty clause accepted"
  | Error e ->
      check_bool "mentions exhaustion" true
        (String.length e.Drup.reason > 0 && e.Drup.step = None)

let test_drup_rejects_truncated_proof () =
  (* Take a real refutation and drop one step: either some later step
     stops being RUP or the empty clause is never derived. *)
  let s = Solver.create () in
  Solver.log_proof s;
  let var p h = ((p - 1) * 2) + h in
  for p = 1 to 3 do
    Solver.add_clause s [ var p 1; var p 2 ]
  done;
  List.iter
    (fun h ->
      Solver.add_clause s [ -var 1 h; -var 2 h ];
      Solver.add_clause s [ -var 1 h; -var 3 h ];
      Solver.add_clause s [ -var 2 h; -var 3 h ])
    [ 1; 2 ];
  (match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "expected unsat");
  let clauses = Solver.logged_clauses s and proof = Solver.proof s in
  check_bool "intact proof checks" true
    (is_ok (Drup.check ~clauses ~proof ()));
  (* Drop each single step in turn; every truncation must be rejected
     (the final step is the empty clause, so at minimum that case
     fails). *)
  List.iteri
    (fun i _ ->
      let mutilated = List.filteri (fun j _ -> j <> i) proof in
      check_bool
        (Printf.sprintf "proof minus step %d rejected" i)
        false
        (is_ok (Drup.check ~clauses ~proof:mutilated ())))
    proof

let test_check_model_rejects_bad_model () =
  let clauses = [ [ 1; 2 ]; [ -1 ] ] in
  let good = [| false; false; true |] in
  let bad = [| false; true; false |] in
  check_bool "good model" true (is_ok (Drup.check_model ~clauses good));
  check_bool "bad model" false (is_ok (Drup.check_model ~clauses bad))

(* ------------------------------------------------------------------ *)
(* add_clause normalization shapes: each simplifier path must leave the
   proof log in a state the checker accepts. *)

let test_norm_duplicate_literals () =
  (* [1; 1] strengthens to [1]; instance forced unsat via [-1]. *)
  check_bool "unsat" false (solve_and_certify [ [ 1; 1 ]; [ -1 ] ])

let test_norm_tautology () =
  (* [1; -1] is dropped entirely; remaining instance is unsat. *)
  check_bool "unsat" false (solve_and_certify [ [ 1; -1 ]; [ 2 ]; [ -2 ] ])

let test_norm_satisfied_at_level0 () =
  (* [1] satisfies [1; 2] on arrival; the drop must not confuse the
     refutation that follows from [-1]. *)
  check_bool "unsat" false (solve_and_certify [ [ 1 ]; [ 1; 2 ]; [ -1 ] ])

let test_norm_falsified_literal_strengthening () =
  (* With [-1] asserted, [1; 2] strengthens to the unit [2]; then [-2]
     refutes. The strengthened unit is a logged DRUP step. *)
  check_bool "unsat" false (solve_and_certify [ [ -1 ]; [ 1; 2 ]; [ -2 ] ])

let test_norm_strengthened_to_empty () =
  (* With [-1] and [-2] asserted, [1; 2] strengthens to the empty
     clause: immediate refutation. *)
  check_bool "unsat" false (solve_and_certify [ [ -1 ]; [ -2 ]; [ 1; 2 ] ])

let test_norm_clauses_after_refutation () =
  (* Clauses added after the solver is refuted still enter the logged
     database verbatim (the checker needs the full problem). *)
  let s = Solver.create () in
  Solver.log_proof s;
  Solver.add_clause s [ 1 ];
  Solver.add_clause s [ -1 ];
  Solver.add_clause s [ 2; 3 ];
  check_int "all clauses logged" 3 (List.length (Solver.logged_clauses s));
  (match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "expected unsat");
  check_bool "proof checks" true
    (is_ok
       (Drup.check ~clauses:(Solver.logged_clauses s) ~proof:(Solver.proof s) ()))

let test_log_proof_must_precede_clauses () =
  let s = Solver.create () in
  Solver.add_clause s [ 1 ];
  Alcotest.check_raises "late log_proof rejected"
    (Invalid_argument "Solver.log_proof: enable logging before adding clauses")
    (fun () -> Solver.log_proof s)

(* ------------------------------------------------------------------ *)
(* DIMACS round-trip + brute-force differential *)

let test_dimacs_roundtrip () =
  let clauses = [ [ 1; -2; 3 ]; [ -1 ]; [ 2; 2 ] ] in
  let text = Dimacs.to_string ~comments:[ "unit test" ] ~nvars:3 clauses in
  match Dimacs.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok (nvars, clauses') ->
      check_int "nvars" 3 nvars;
      Alcotest.(check (list (list int))) "clauses" clauses clauses'

let test_dimacs_rejects_malformed () =
  let reject s = check_bool s false (Result.is_ok (Dimacs.of_string s)) in
  reject "1 2 0";  (* missing header *)
  reject "p cnf 2 1\np cnf 2 1\n1 0";  (* duplicate header *)
  reject "p cnf 2 1\n3 0";  (* literal above nvars *)
  reject "p cnf 2 2\n1 0";  (* clause-count mismatch *)
  reject "p cnf 2 1\n1 2"  (* unterminated clause *)

let brute_force_sat nvars clauses =
  let n = 1 lsl nvars in
  let rec try_assignment a =
    if a >= n then false
    else
      let value l =
        let bit = (a lsr (abs l - 1)) land 1 = 1 in
        if l > 0 then bit else not bit
      in
      if List.for_all (fun c -> List.exists value c) clauses then true
      else try_assignment (a + 1)
  in
  try_assignment 0

let random_cnf_gen =
  QCheck.Gen.(
    let* nvars = int_range 1 5 in
    let* nclauses = int_range 1 12 in
    let clause =
      let* len = int_range 0 4 in
      list_size (return len)
        (let* v = int_range 1 nvars in
         let* s = bool in
         return (if s then v else -v))
    in
    let* clauses = list_size (return nclauses) clause in
    return (nvars, clauses))

let test_qcheck_differential =
  QCheck.Test.make ~count:300 ~name:"solver vs brute force, certified"
    (QCheck.make random_cnf_gen) (fun (nvars, clauses) ->
      let expected = brute_force_sat nvars clauses in
      let s = Solver.create ~nvars () in
      Solver.log_proof s;
      List.iter (Solver.add_clause s) clauses;
      match Solver.solve s with
      | Solver.Sat m ->
          expected
          && is_ok (Drup.check_model ~clauses:(Solver.logged_clauses s) m)
      | Solver.Unsat ->
          (not expected)
          && is_ok
               (Drup.check ~nvars:(Solver.nvars s)
                  ~clauses:(Solver.logged_clauses s)
                  ~proof:(Solver.proof s) ()))

let test_dimacs_file_differential =
  (* Round-trip through the text format, then solve both copies: same
     answer. *)
  QCheck.Test.make ~count:100 ~name:"dimacs round-trip preserves the instance"
    (QCheck.make random_cnf_gen) (fun (nvars, clauses) ->
      let text = Dimacs.to_string ~nvars clauses in
      match Dimacs.of_string text with
      | Error _ -> false
      | Ok parsed ->
          let solve_instance (nv, cls) =
            let s = Solver.create ~nvars:nv () in
            Dimacs.load_into s (nv, cls);
            match Solver.solve s with Solver.Sat _ -> true | Solver.Unsat -> false
          in
          solve_instance (nvars, clauses) = solve_instance parsed)

(* ------------------------------------------------------------------ *)
(* König certificates *)

let konig_of ~nl ~nr adj =
  let m = HK.run ~nl ~nr adj in
  let cover_left, cover_right = HK.konig_cover ~nl ~nr adj m in
  {
    Konig.nl;
    nr;
    adj;
    match_l = m.HK.match_l;
    match_r = m.HK.match_r;
    cover_left;
    cover_right;
  }

let test_konig_small () =
  let adj = [| [ 0; 1 ]; [ 0 ]; [ 0 ] |] in
  let c = konig_of ~nl:3 ~nr:2 adj in
  check_bool "certificate valid" true (is_ok (Konig.check c));
  check_int "matching size" 2 (Konig.matching_size c)

let test_konig_random =
  QCheck.Test.make ~count:200 ~name:"König certificate on random bipartite graphs"
    QCheck.(
      make
        Gen.(
          let* nl = int_range 1 12 in
          let* nr = int_range 1 12 in
          let* adj =
            array_size (return nl)
              (let* d = int_range 0 (min nr 4) in
               list_size (return d) (int_range 0 (nr - 1)))
          in
          return (nl, nr, Array.map (List.sort_uniq compare) adj)))
    (fun (nl, nr, adj) -> is_ok (Konig.check (konig_of ~nl ~nr adj)))

let test_konig_rejects_dropped_cover_vertex () =
  let adj = [| [ 0; 1 ]; [ 0 ]; [ 0 ] |] in
  let c = konig_of ~nl:3 ~nr:2 adj in
  let mutate c =
    match (c.Konig.cover_left, c.Konig.cover_right) with
    | v :: rest, _ -> { c with Konig.cover_left = rest; match_l = c.match_l; match_r = c.match_r } |> fun c' -> (v, c')
    | [], v :: rest -> (v, { c with Konig.cover_right = rest })
    | [], [] -> Alcotest.fail "empty cover"
  in
  let _, c' = mutate c in
  match Konig.check c' with
  | Ok () -> Alcotest.fail "mutilated cover accepted"
  | Error msg ->
      check_bool "diagnostic names an uncovered edge" true
        (String.length msg > 0)

let test_konig_rejects_fake_matched_edge () =
  (* Claim a matched pair that is not an edge. *)
  let adj = [| [ 0 ]; [ 1 ] |] in
  let c = konig_of ~nl:2 ~nr:2 adj in
  let c' =
    let ml = Array.copy c.Konig.match_l and mr = Array.copy c.Konig.match_r in
    ml.(0) <- 1;
    mr.(1) <- 0;
    { c with Konig.match_l = ml; match_r = mr }
  in
  check_bool "fake edge rejected" false (is_ok (Konig.check_matching c'))

let test_konig_rejects_undersized_cover_vs_matching () =
  (* A maximal-but-not-maximum matching with a cover of its own size
     must be rejected: the certificate equality is what proves
     maximality. Path graph L={0,1}, R={0,1}, edges (0,0),(1,0),(1,1):
     greedy from vertex 1 first can match only (1,0); here we fake a
     size-1 matching and a size-1 "cover" {R0} that misses edge (1,1). *)
  let adj = [| [ 0 ]; [ 0; 1 ] |] in
  let c =
    {
      Konig.nl = 2;
      nr = 2;
      adj;
      match_l = [| -1; 0 |];
      match_r = [| 1; -1 |];
      cover_left = [];
      cover_right = [ 0 ];
    }
  in
  check_bool "matching itself is consistent" true (is_ok (Konig.check_matching c));
  check_bool "certificate rejected" false (is_ok (Konig.check c))

(* ------------------------------------------------------------------ *)
(* Path-witness replay on the paper's Figure 3 *)

let figure3_plan () =
  let fx = Fixtures.figure3 () in
  (fx, Pipeline.plan (Pipeline.create fx.Fixtures.net))

let witness_of (p : Sdnprobe.Probe.t) =
  { Replay.rules = p.Sdnprobe.Probe.rules; header = p.Sdnprobe.Probe.header }

let test_replay_accepts_plan_witnesses () =
  let fx, plan = figure3_plan () in
  List.iter
    (fun (p : Sdnprobe.Probe.t) ->
      match Replay.check_path fx.Fixtures.net (witness_of p) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    plan.Sdnprobe.Plan.probes

let test_replay_rejects_truncated_witness () =
  let fx, plan = figure3_plan () in
  (* Coverage collapses when a multi-hop witness is truncated: the
     dropped entries become uncovered. *)
  let long =
    List.find
      (fun (p : Sdnprobe.Probe.t) -> List.length p.Sdnprobe.Probe.rules > 1)
      plan.Sdnprobe.Plan.probes
  in
  let truncated =
    List.map
      (fun (p : Sdnprobe.Probe.t) ->
        if p.Sdnprobe.Probe.id = long.Sdnprobe.Probe.id then
          [ List.hd p.Sdnprobe.Probe.rules ]
        else p.Sdnprobe.Probe.rules)
      plan.Sdnprobe.Plan.probes
  in
  let rg = plan.Sdnprobe.Plan.rulegraph in
  let untestable =
    List.map
      (fun v ->
        (Rulegraph.Rule_graph.vertex_entry rg v).Openflow.Flow_entry.id)
      plan.Sdnprobe.Plan.cover.Mlpc.Cover.untestable
  in
  check_bool "intact coverage ok" true
    (is_ok
       (Replay.check_coverage fx.Fixtures.net
          ~paths:
            (List.map
               (fun (p : Sdnprobe.Probe.t) -> p.Sdnprobe.Probe.rules)
               plan.Sdnprobe.Plan.probes)
          ~untestable));
  check_bool "truncated coverage rejected" false
    (is_ok (Replay.check_coverage fx.Fixtures.net ~paths:truncated ~untestable))

let test_replay_rejects_corrupted_header () =
  let fx, plan = figure3_plan () in
  let long =
    List.find
      (fun (p : Sdnprobe.Probe.t) -> List.length p.Sdnprobe.Probe.rules > 1)
      plan.Sdnprobe.Plan.probes
  in
  (* Flip every header bit: the walk must diverge somewhere. *)
  let h = long.Sdnprobe.Probe.header in
  let flipped =
    Header.of_cube
      (Cube.of_bits
         (Array.init (Header.length h) (fun i ->
              if Header.get h i then Cube.Zero else Cube.One)))
  in
  check_bool "corrupted header rejected" false
    (is_ok
       (Replay.check_path fx.Fixtures.net
          { Replay.rules = long.Sdnprobe.Probe.rules; header = flipped }))

let test_replay_rejects_wrong_rule_sequence () =
  let fx, plan = figure3_plan () in
  let long =
    List.find
      (fun (p : Sdnprobe.Probe.t) -> List.length p.Sdnprobe.Probe.rules > 1)
      plan.Sdnprobe.Plan.probes
  in
  let reversed =
    { (witness_of long) with Replay.rules = List.rev long.Sdnprobe.Probe.rules }
  in
  check_bool "reversed sequence rejected" false
    (is_ok (Replay.check_path fx.Fixtures.net reversed))

let test_replay_rejects_undeclared_untestable () =
  (* Declaring a covered entry untestable is a contradiction. *)
  let fx, plan = figure3_plan () in
  let paths =
    List.map (fun (p : Sdnprobe.Probe.t) -> p.Sdnprobe.Probe.rules)
      plan.Sdnprobe.Plan.probes
  in
  let covered_id = List.hd (List.hd paths) in
  check_bool "contradictory declaration rejected" false
    (is_ok
       (Replay.check_coverage fx.Fixtures.net ~paths ~untestable:[ covered_id ]))

(* ------------------------------------------------------------------ *)
(* Yen certificates *)

let diamond () =
  (* 0 -> {1, 2} -> 3 with a slow direct edge 0 -> 3. *)
  let g = Digraph.create 4 in
  Digraph.add_edge ~weight:1. g 0 1;
  Digraph.add_edge ~weight:1. g 1 3;
  Digraph.add_edge ~weight:2. g 0 2;
  Digraph.add_edge ~weight:1. g 2 3;
  Digraph.add_edge ~weight:10. g 0 3;
  g

let test_yen_accepts_real_answers () =
  let g = diamond () in
  let paths = Sdngraph.Yen.k_shortest g ~src:0 ~dst:3 ~k:3 in
  check_int "three paths" 3 (List.length paths);
  check_bool "certified" true (is_ok (Yen_check.check g ~src:0 ~dst:3 ~k:3 paths))

let test_yen_rejects_reordered () =
  let g = diamond () in
  match Sdngraph.Yen.k_shortest g ~src:0 ~dst:3 ~k:3 with
  | a :: b :: rest ->
      check_bool "reordered rejected" false
        (is_ok (Yen_check.check g ~src:0 ~dst:3 ~k:3 ((b :: a :: rest) @ [])))
  | _ -> Alcotest.fail "expected >= 2 paths"

let test_yen_rejects_nonedge_and_loop () =
  let g = diamond () in
  check_bool "fabricated edge rejected" false
    (is_ok (Yen_check.check g ~src:0 ~dst:3 ~k:2 [ [ 0; 3 ]; [ 0; 2; 1; 3 ] ]));
  let g' = diamond () in
  Digraph.add_edge ~weight:1. g' 1 0;
  check_bool "looping path rejected" false
    (is_ok (Yen_check.check g' ~src:0 ~dst:3 ~k:2 [ [ 0; 1; 0; 1; 3 ] ]))

let test_yen_rejects_suboptimal_first () =
  let g = diamond () in
  check_bool "suboptimal rank-0 rejected" false
    (is_ok (Yen_check.check g ~src:0 ~dst:3 ~k:1 [ [ 0; 3 ] ]))

let test_yen_rejects_nonempty_claim_on_unreachable () =
  let g = Digraph.create 3 in
  Digraph.add_edge g 0 1;
  check_bool "empty answer for unreachable dst certifies" true
    (is_ok (Yen_check.check g ~src:0 ~dst:2 ~k:4 []));
  check_bool "empty answer for reachable dst rejected" false
    (is_ok (Yen_check.check g ~src:0 ~dst:1 ~k:4 []))

(* ------------------------------------------------------------------ *)
(* SAT certified header queries *)

let test_find_header_certified_sat () =
  let cube = Cube.of_string "10xxxxxx" in
  let c = HE.find_header_certified ~inside:[ cube ] 8 in
  (match c.HE.header with
  | None -> Alcotest.fail "expected a header"
  | Some h -> check_bool "inside the cube" true (Header.matches h cube));
  check_bool "clauses recorded" true (c.HE.clauses <> [])

let test_find_header_certified_unsat_proof () =
  (* inside two disjoint cubes: unsatisfiable, proof must check. *)
  let c =
    HE.find_header_certified
      ~inside:[ Cube.of_string "1xxxxxxx"; Cube.of_string "0xxxxxxx" ]
      8
  in
  check_bool "no header" true (Option.is_none c.HE.header);
  check_bool "refutation checks" true
    (is_ok (Drup.check ~nvars:c.HE.nvars ~clauses:c.HE.clauses ~proof:c.HE.proof ()))

(* ------------------------------------------------------------------ *)
(* End-to-end certification *)

let certify_workload ~switches ~seed =
  let rng = Prng.create seed in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:switches () in
  let net = Topogen.Rule_gen.install rng topo in
  let plan = Pipeline.plan (Pipeline.create net) in
  (plan, Sdnprobe.Certify.run ~seed plan)

let theorem1_equality (plan : Sdnprobe.Plan.t) =
  (* |cover| must equal n_testable − |unconstrained max matching|. *)
  let rg = plan.Sdnprobe.Plan.rulegraph in
  let n = Rulegraph.Rule_graph.n_vertices rg in
  let g = Rulegraph.Rule_graph.graph rg in
  let testable =
    Array.init n (fun v -> not (Hs.is_empty (Rulegraph.Rule_graph.input rg v)))
  in
  let adj =
    Array.init n (fun u ->
        if testable.(u) then
          List.filter (fun v -> testable.(v)) (Digraph.succ g u)
        else [])
  in
  let m = HK.run ~nl:n ~nr:n adj in
  let n_testable =
    Array.fold_left (fun a t -> if t then a + 1 else a) 0 testable
  in
  List.length plan.Sdnprobe.Plan.cover.Mlpc.Cover.paths
  = n_testable - m.HK.size

let test_certify_16_switches () =
  let plan, report = certify_workload ~switches:16 ~seed:1 in
  if not (Sdnprobe.Certify.ok_report report) then
    Alcotest.fail
      (Format.asprintf "%a" Sdnprobe.Certify.pp report);
  check_bool "cover size = n - |M|" true (theorem1_equality plan)

let test_certify_50_switches () =
  let plan, report = certify_workload ~switches:50 ~seed:3 in
  check_bool "certified" true (Sdnprobe.Certify.ok_report report);
  check_bool "cover size = n - |M|" true (theorem1_equality plan)

let test_certify_figure3 () =
  let _, plan = figure3_plan () in
  let report = Sdnprobe.Certify.run plan in
  if not (Sdnprobe.Certify.ok_report report) then
    Alcotest.fail (Format.asprintf "%a" Sdnprobe.Certify.pp report)

let test_certify_json_shape () =
  let _, plan = figure3_plan () in
  let json = Sdnprobe.Certify.to_json (Sdnprobe.Certify.run plan) in
  let module J = Sdn_util.Json in
  (match J.of_string (J.to_string json) with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
      check_int "schema version" 2 (Option.get (J.obj_int "schema_version" j));
      check_bool "certified flag" true
        (J.member "certified" j = Some (J.Bool true));
      check_int "four sections" 4
        (List.length (Option.get (J.obj_list "sections" j)));
      check_int "no patch events" 0
        (List.length (Option.get (J.obj_list "patch_events" j))))

(* v2 round-trip: parsing [to_json] back yields the same report (and
   re-serializes byte-identically). *)
let test_certify_json_roundtrip_v2 () =
  let _, plan = figure3_plan () in
  let report = Sdnprobe.Certify.run plan in
  let module J = Sdn_util.Json in
  let s = J.to_string (Sdnprobe.Certify.to_json report) in
  match Result.bind (J.of_string s) Sdnprobe.Certify.of_json with
  | Error msg -> Alcotest.fail msg
  | Ok report' ->
      Alcotest.(check string)
        "byte-identical after round-trip" s
        (J.to_string (Sdnprobe.Certify.to_json report'))

(* v1 acceptance: a version-1 document (no [patch_events] field) still
   parses, with an empty patch-event list. *)
let test_certify_json_accepts_v1 () =
  let _, plan = figure3_plan () in
  let report = Sdnprobe.Certify.run plan in
  let module J = Sdn_util.Json in
  let v1 =
    match Sdnprobe.Certify.to_json report with
    | J.Obj fields ->
        J.Obj
          (List.filter_map
             (function
               | "schema_version", _ -> Some ("schema_version", J.Int 1)
               | "patch_events", _ -> None
               | kv -> Some kv)
             fields)
    | _ -> Alcotest.fail "certificate JSON is not an object"
  in
  (match Sdnprobe.Certify.of_json v1 with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
      check_bool "still certified" true (Sdnprobe.Certify.ok_report r);
      check_int "patch_events default to empty" 0
        (List.length r.Sdnprobe.Certify.patch_events));
  (* Unknown versions are refused. *)
  let v99 =
    match Sdnprobe.Certify.to_json report with
    | J.Obj fields ->
        J.Obj
          (List.map
             (function
               | "schema_version", _ -> ("schema_version", J.Int 99)
               | kv -> kv)
             fields)
    | _ -> assert false
  in
  check_bool "version 99 refused" true
    (Result.is_error (Sdnprobe.Certify.of_json v99))

(* ------------------------------------------------------------------ *)
(* Lint L009 delegation: the pass and the certification coverage
   checker must agree (shared implementation). *)

let test_lint_coverage_delegation () =
  let fx, plan = figure3_plan () in
  let paths =
    List.map (fun (p : Sdnprobe.Probe.t) -> p.Sdnprobe.Probe.rules)
      plan.Sdnprobe.Plan.probes
  in
  (* Full plan: no uncovered entries, no L009 diagnostics. *)
  let report = Lint.Engine.run ~only:[ "L009" ] ~probes:paths fx.Fixtures.net in
  check_int "clean plan lints clean" 0
    (List.length (Lint.Engine.sorted report));
  (* Drop one probe: the pass must flag exactly the entries the cert
     checker reports uncovered. *)
  let partial = List.tl paths in
  let expected =
    List.map (fun ((e : Openflow.Flow_entry.t), _) -> e.Openflow.Flow_entry.id)
      (Replay.uncovered fx.Fixtures.net ~probes:partial)
  in
  check_bool "some entries uncovered" true (expected <> []);
  let report = Lint.Engine.run ~only:[ "L009" ] ~probes:partial fx.Fixtures.net in
  let flagged =
    List.concat_map
      (fun d -> d.Lint.Diagnostic.entries)
      (Lint.Engine.sorted report)
  in
  Alcotest.(check (list int)) "pass flags the same entries" expected flagged

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cert"
    [
      ( "drup",
        [
          Alcotest.test_case "contradiction" `Quick test_drup_contradiction;
          Alcotest.test_case "empty clause" `Quick test_drup_empty_clause;
          Alcotest.test_case "pigeonhole" `Quick test_drup_pigeonhole;
          Alcotest.test_case "sat instance" `Quick test_drup_sat_instance;
          Alcotest.test_case "rejects bogus step" `Quick test_drup_rejects_bogus_step;
          Alcotest.test_case "rejects missing empty clause" `Quick
            test_drup_rejects_missing_empty_clause;
          Alcotest.test_case "rejects truncated proofs" `Quick
            test_drup_rejects_truncated_proof;
          Alcotest.test_case "rejects bad models" `Quick
            test_check_model_rejects_bad_model;
        ] );
      ( "normalization",
        [
          Alcotest.test_case "duplicate literals" `Quick test_norm_duplicate_literals;
          Alcotest.test_case "tautology" `Quick test_norm_tautology;
          Alcotest.test_case "satisfied at level 0" `Quick
            test_norm_satisfied_at_level0;
          Alcotest.test_case "falsified-literal strengthening" `Quick
            test_norm_falsified_literal_strengthening;
          Alcotest.test_case "strengthened to empty" `Quick
            test_norm_strengthened_to_empty;
          Alcotest.test_case "clauses after refutation" `Quick
            test_norm_clauses_after_refutation;
          Alcotest.test_case "log_proof ordering" `Quick
            test_log_proof_must_precede_clauses;
        ] );
      ( "dimacs",
        Alcotest.test_case "round-trip" `Quick test_dimacs_roundtrip
        :: Alcotest.test_case "rejects malformed" `Quick test_dimacs_rejects_malformed
        :: qsuite [ test_qcheck_differential; test_dimacs_file_differential ] );
      ( "konig",
        Alcotest.test_case "small graph" `Quick test_konig_small
        :: Alcotest.test_case "rejects dropped cover vertex" `Quick
             test_konig_rejects_dropped_cover_vertex
        :: Alcotest.test_case "rejects fake matched edge" `Quick
             test_konig_rejects_fake_matched_edge
        :: Alcotest.test_case "rejects undersized cover" `Quick
             test_konig_rejects_undersized_cover_vs_matching
        :: qsuite [ test_konig_random ] );
      ( "replay",
        [
          Alcotest.test_case "accepts plan witnesses" `Quick
            test_replay_accepts_plan_witnesses;
          Alcotest.test_case "rejects truncated witness" `Quick
            test_replay_rejects_truncated_witness;
          Alcotest.test_case "rejects corrupted header" `Quick
            test_replay_rejects_corrupted_header;
          Alcotest.test_case "rejects wrong rule sequence" `Quick
            test_replay_rejects_wrong_rule_sequence;
          Alcotest.test_case "rejects contradictory untestable" `Quick
            test_replay_rejects_undeclared_untestable;
        ] );
      ( "yen",
        [
          Alcotest.test_case "accepts real answers" `Quick
            test_yen_accepts_real_answers;
          Alcotest.test_case "rejects reordered" `Quick test_yen_rejects_reordered;
          Alcotest.test_case "rejects non-edges and loops" `Quick
            test_yen_rejects_nonedge_and_loop;
          Alcotest.test_case "rejects suboptimal first path" `Quick
            test_yen_rejects_suboptimal_first;
          Alcotest.test_case "unreachable destinations" `Quick
            test_yen_rejects_nonempty_claim_on_unreachable;
        ] );
      ( "sat-queries",
        [
          Alcotest.test_case "certified sat query" `Quick
            test_find_header_certified_sat;
          Alcotest.test_case "certified unsat query" `Quick
            test_find_header_certified_unsat_proof;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "figure 3" `Quick test_certify_figure3;
          Alcotest.test_case "16-switch workload" `Quick test_certify_16_switches;
          Alcotest.test_case "50-switch workload" `Slow test_certify_50_switches;
          Alcotest.test_case "json report shape" `Quick test_certify_json_shape;
          Alcotest.test_case "json round-trip v2" `Quick
            test_certify_json_roundtrip_v2;
          Alcotest.test_case "json accepts v1" `Quick test_certify_json_accepts_v1;
        ] );
      ( "lint-delegation",
        [
          Alcotest.test_case "L009 agrees with cert coverage" `Quick
            test_lint_coverage_delegation;
        ] );
    ]
