(* Tests for the OpenFlow network model. *)

module Cube = Hspace.Cube
module Hs = Hspace.Hs
module Header = Hspace.Header
module FE = Openflow.Flow_entry
module FT = Openflow.Flow_table
module Topology = Openflow.Topology
module Network = Openflow.Network

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Flow entries *)

let entry ?(id = 0) ?(switch = 0) ?(table = 0) ~priority ~match_ ?set_field action =
  FE.make ~id ~switch ~table ~priority ~match_:(Cube.of_string match_)
    ?set_field:(Option.map Cube.of_string set_field)
    action

let test_entry_matches () =
  let e = entry ~priority:1 ~match_:"0010xxxx" FE.Drop in
  check_bool "match" true (FE.matches e (Header.of_string "00101111"));
  check_bool "no match" false (FE.matches e (Header.of_string "01101111"))

let test_entry_apply () =
  let e = entry ~priority:1 ~match_:"000xxxxx" ~set_field:"0111xxxx" FE.Drop in
  Alcotest.(check string) "rewrite" "01110101"
    (Header.to_string (FE.apply e (Header.of_string "00010101")));
  let id = entry ~priority:1 ~match_:"000xxxxx" FE.Drop in
  check_bool "identity" true (FE.is_identity_set id);
  check_bool "not identity" false (FE.is_identity_set e)

let test_entry_overlaps () =
  let a = entry ~id:1 ~priority:2 ~match_:"0010xxxx" FE.Drop in
  let b = entry ~id:2 ~priority:1 ~match_:"001xxxxx" FE.Drop in
  let c = entry ~id:3 ~priority:1 ~match_:"1xxxxxxx" FE.Drop in
  check_bool "overlap" true (FE.overlaps a b);
  check_bool "no overlap" false (FE.overlaps a c);
  let d = entry ~id:4 ~switch:1 ~priority:1 ~match_:"001xxxxx" FE.Drop in
  check_bool "different switch" false (FE.overlaps a d)

let test_entry_set_length_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Flow_entry.make: set field length mismatch") (fun () ->
      ignore
        (FE.make ~id:0 ~switch:0 ~table:0 ~priority:1
           ~match_:(Cube.of_string "0000")
           ~set_field:(Cube.of_string "00")
           FE.Drop))

(* ------------------------------------------------------------------ *)
(* Flow tables *)

let test_table_lookup_priority () =
  let lo = entry ~id:1 ~priority:1 ~match_:"001xxxxx" FE.Drop in
  let hi = entry ~id:2 ~priority:2 ~match_:"00100xxx" (FE.Goto_table 1) in
  let t = FT.of_entries [ lo; hi ] in
  (match FT.lookup t (Header.of_string "00100111") with
  | Some e -> check_int "highest priority wins" 2 e.FE.id
  | None -> Alcotest.fail "expected match");
  (match FT.lookup t (Header.of_string "00111111") with
  | Some e -> check_int "fallthrough" 1 e.FE.id
  | None -> Alcotest.fail "expected match");
  check_bool "miss" true (FT.lookup t (Header.of_string "11111111") = None)

let test_table_tie_break () =
  (* Equal priorities: lower id wins deterministically. *)
  let a = entry ~id:5 ~priority:1 ~match_:"xxxxxxxx" FE.Drop in
  let b = entry ~id:3 ~priority:1 ~match_:"xxxxxxxx" FE.Drop in
  let t = FT.of_entries [ a; b ] in
  match FT.lookup t (Header.of_string "00000000") with
  | Some e -> check_int "lower id" 3 e.FE.id
  | None -> Alcotest.fail "expected match"

let test_overlaps_tie_break () =
  (* The analytic side of the tiebreak: with equal priorities, the
     lower-id entry takes precedence, so it overlaps the higher-id one
     but not vice versa — and the higher-id entry's input space is
     exactly what the lower-id entry leaves behind. *)
  let a = entry ~id:5 ~priority:1 ~match_:"00xxxxxx" FE.Drop in
  let b = entry ~id:3 ~priority:1 ~match_:"000xxxxx" FE.Drop in
  let t = FT.of_entries [ a; b ] in
  check_bool "b precedes a" true (FT.higher_priority_overlaps t a = [ b ]);
  check_bool "a does not precede b" true (FT.higher_priority_overlaps t b = []);
  check_bool "b.in is its whole match" true
    (Hs.equal_sets (FT.input_space t b) (Hs.of_cubes 8 [ Cube.of_string "000xxxxx" ]));
  check_bool "a.in is the remainder" true
    (Hs.equal_sets (FT.input_space t a) (Hs.of_cubes 8 [ Cube.of_string "001xxxxx" ]));
  (* Identical matches at equal priority: the higher id is fully
     shadowed by the lower id. *)
  let c = entry ~id:7 ~priority:1 ~match_:"000xxxxx" FE.Drop in
  let t = FT.add t c in
  check_bool "c shadowed by b" true (Hs.is_empty (FT.input_space t c))

let test_table_add_remove () =
  let a = entry ~id:1 ~priority:1 ~match_:"0xxxxxxx" FE.Drop in
  let t = FT.add FT.empty a in
  check_int "size" 1 (FT.size t);
  let t = FT.remove t 1 in
  check_int "removed" 0 (FT.size t);
  check_int "remove missing is noop" 0 (FT.size (FT.remove t 9))

let test_input_space () =
  (* Figure 3 switch E: e2.in = 001xxxxx − 0010xxxx = 0011xxxx. *)
  let e1 = entry ~id:1 ~priority:3 ~match_:"0010xxxx" FE.Drop in
  let e2 = entry ~id:2 ~priority:2 ~match_:"001xxxxx" FE.Drop in
  let t = FT.of_entries [ e1; e2 ] in
  let in2 = FT.input_space t e2 in
  check_bool "e2 input" true
    (Hs.equal_sets in2 (Hs.of_cubes 8 [ Cube.of_string "0011xxxx" ]));
  let in1 = FT.input_space t e1 in
  check_bool "e1 input untouched" true
    (Hs.equal_sets in1 (Hs.of_cubes 8 [ Cube.of_string "0010xxxx" ]))

let test_output_space () =
  (* Figure 3 d1: in 000xxxxx, out 0111xxxx. *)
  let d1 = entry ~id:1 ~priority:1 ~match_:"000xxxxx" ~set_field:"0111xxxx" FE.Drop in
  let t = FT.of_entries [ d1 ] in
  check_bool "d1 out" true
    (Hs.equal_sets (FT.output_space t d1) (Hs.of_cubes 8 [ Cube.of_string "0111xxxx" ]))

(* Property: an entry's input space is empty exactly when the static
   checker reports it shadowed — [Flow_table.input_space] (including the
   equal-priority id tiebreak) and the lint-backed [Static_checks] agree
   on every random table. *)

let gen_table =
  QCheck.Gen.(
    let gen_bit =
      frequency [ (2, return Cube.Zero); (2, return Cube.One); (3, return Cube.Any) ]
    in
    let gen_cube =
      map (fun bits -> Cube.of_bits (Array.of_list bits)) (list_size (return 8) gen_bit)
    in
    list_size (int_range 2 8) (pair (int_range 1 3) gen_cube))

let arb_table =
  QCheck.make
    ~print:(fun rows ->
      String.concat "; "
        (List.map (fun (p, c) -> Printf.sprintf "p%d %s" p (Cube.to_string c)) rows))
    gen_table

let prop_shadow_iff_empty_input =
  QCheck.Test.make ~name:"shadowed iff empty input space" ~count:200 arb_table
    (fun rows ->
      let net = Network.create ~header_len:8 (Topology.create ~n_switches:2) in
      let entries =
        List.map
          (fun (priority, match_) ->
            Network.add_entry net ~switch:0 ~priority ~match_ FE.Drop)
          rows
      in
      let issues = Rulegraph.Static_checks.check net in
      List.for_all
        (fun (e : FE.t) ->
          Hs.is_empty (Network.input_space net e)
          = List.mem (Rulegraph.Static_checks.Shadowed_rule e.id) issues)
        entries)

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topology_links () =
  let t = Topology.create ~n_switches:3 in
  Topology.add_link t ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  Topology.add_link t ~sw_a:1 ~port_a:2 ~sw_b:2 ~port_b:1;
  check_int "links" 2 (Topology.n_links t);
  check_bool "peer" true (Topology.peer t ~sw:0 ~port:1 = Some (1, 1));
  check_bool "peer back" true (Topology.peer t ~sw:1 ~port:1 = Some (0, 1));
  check_bool "no peer" true (Topology.peer t ~sw:2 ~port:9 = None);
  check_bool "ports" true (Topology.ports_of t 1 = [ 1; 2 ]);
  check_bool "neighbors" true (Topology.neighbors t 1 = [ 0; 2 ]);
  check_bool "towards" true (Topology.port_towards t ~src:1 ~dst:2 = Some 2);
  check_bool "not adjacent" true (Topology.port_towards t ~src:0 ~dst:2 = None);
  check_int "fresh port" 2 (Topology.fresh_port t 0)

let test_topology_invalid () =
  let t = Topology.create ~n_switches:2 in
  Topology.add_link t ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  Alcotest.check_raises "self link" (Invalid_argument "Topology.add_link: self-link")
    (fun () -> Topology.add_link t ~sw_a:0 ~port_a:2 ~sw_b:0 ~port_b:3);
  Alcotest.check_raises "port reuse"
    (Invalid_argument "Topology.add_link: port in use on side a") (fun () ->
      Topology.add_link t ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:2)

let test_topology_digraph () =
  let t = Topology.create ~n_switches:3 in
  Topology.add_link t ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let g = Topology.to_digraph t in
  check_bool "both directions" true
    (Sdngraph.Digraph.mem_edge g 0 1 && Sdngraph.Digraph.mem_edge g 1 0)

(* ------------------------------------------------------------------ *)
(* Network *)

let test_network_add_entry () =
  let { Fixtures.cnet; r_a; _ } = Fixtures.chain3 () in
  check_int "entries" 3 (Network.n_entries cnet);
  check_bool "find" true (Network.find_entry cnet r_a.FE.id = Some r_a);
  check_bool "next switch" true (Network.next_switch cnet r_a = Some 1);
  let ids = List.map (fun (e : FE.t) -> e.id) (Network.all_entries cnet) in
  check_bool "sorted ids" true (ids = List.sort compare ids)

let test_network_validation () =
  let { Fixtures.cnet; _ } = Fixtures.chain3 () in
  Alcotest.check_raises "dead output port"
    (Invalid_argument "Network.add_entry: output port has no link") (fun () ->
      ignore
        (Network.add_entry cnet ~switch:0 ~priority:1
           ~match_:(Cube.of_string "xxxxxxxx")
           (FE.Output 7)));
  Alcotest.check_raises "goto backwards"
    (Invalid_argument "Network.add_entry: goto must target a later table") (fun () ->
      ignore
        (Network.add_entry cnet ~switch:0 ~priority:1
           ~match_:(Cube.of_string "xxxxxxxx")
           (FE.Goto_table 0)));
  Alcotest.check_raises "bad match length"
    (Invalid_argument "Network.add_entry: match length") (fun () ->
      ignore
        (Network.add_entry cnet ~switch:0 ~priority:1 ~match_:(Cube.of_string "xx")
           FE.Drop))

let test_network_remove () =
  let { Fixtures.cnet; r_b; _ } = Fixtures.chain3 () in
  Network.remove_entry cnet r_b.FE.id;
  check_int "removed" 2 (Network.n_entries cnet);
  check_bool "gone" true (Network.find_entry cnet r_b.FE.id = None);
  check_bool "table updated" true
    (FT.lookup (Network.table cnet ~switch:1 ~table:0) (Header.of_string "10000000") = None)

let test_network_spaces () =
  let fx = Fixtures.figure3 () in
  let in_e2 = Network.input_space fx.Fixtures.net fx.Fixtures.e2 in
  check_bool "e2.in" true (Hs.equal_sets in_e2 (Hs.of_cubes 8 [ Cube.of_string "0011xxxx" ]));
  let out_d1 = Network.output_space fx.Fixtures.net fx.Fixtures.d1 in
  check_bool "d1.out" true (Hs.equal_sets out_d1 (Hs.of_cubes 8 [ Cube.of_string "0111xxxx" ]))

(* ------------------------------------------------------------------ *)
(* Serialization *)

module Serial = Openflow.Serial

let behaviourally_equal net net2 =
  let rng = Sdn_util.Prng.create 77 in
  let entries = Array.of_list (Network.all_entries net) in
  let emu1 = Dataplane.Emulator.create net and emu2 = Dataplane.Emulator.create net2 in
  let ok = ref (Network.n_entries net = Network.n_entries net2) in
  for _ = 1 to 100 do
    let e = Sdn_util.Prng.choose rng entries in
    let header = Header.of_cube (Cube.sample rng e.FE.match_) in
    let at = Sdn_util.Prng.int rng (Network.n_switches net) in
    let tr r = List.map (fun h -> h.Dataplane.Emulator.switch) r.Dataplane.Emulator.trace in
    let r1 = Dataplane.Emulator.inject emu1 ~at header in
    let r2 = Dataplane.Emulator.inject emu2 ~at header in
    if tr r1 <> tr r2 then ok := false
  done;
  !ok

let test_serial_roundtrip_figure3 () =
  let fx = Fixtures.figure3 () in
  let text = Serial.to_string fx.Fixtures.net in
  match Serial.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok net2 ->
      check_bool "same behaviour" true (behaviourally_equal fx.Fixtures.net net2);
      (* Printing again is a fixpoint. *)
      Alcotest.(check string) "print fixpoint" text (Serial.to_string net2)

let test_serial_roundtrip_generated () =
  let rng = Sdn_util.Prng.create 3 in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:9 () in
  let spec =
    {
      Topogen.Rule_gen.default_spec with
      Topogen.Rule_gen.flows_per_destination = 3;
      acl_rules_per_switch = 3;
    }
  in
  let net = Topogen.Rule_gen.install ~spec rng topo in
  match Serial.of_string (Serial.to_string net) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok net2 -> check_bool "same behaviour" true (behaviourally_equal net net2)

let test_serial_errors () =
  let expect_error s text =
    match Serial.of_string text with
    | Ok _ -> Alcotest.failf "expected failure for %s" s
    | Error _ -> ()
  in
  expect_error "missing magic" "header_len 8\nswitches 1\ntables 1\n";
  expect_error "bad version" "sdnprobe-policy 9\n";
  expect_error "bad directive" "sdnprobe-policy 1\nheader_len 8\nswitches 1\ntables 1\nwat 3\n";
  expect_error "bad action"
    "sdnprobe-policy 1\nheader_len 4\nswitches 2\ntables 1\nlink 0 1 1 1\nentry switch=0 table=0 priority=1 match=xxxx action=teleport:3\n";
  expect_error "bad match"
    "sdnprobe-policy 1\nheader_len 4\nswitches 2\ntables 1\nlink 0 1 1 1\nentry switch=0 table=0 priority=1 match=22 action=drop\n"

let test_serial_comments_and_blanks () =
  let text =
    "# a policy\nsdnprobe-policy 1\n\nheader_len 4\nswitches 2\ntables 1\n# the link\nlink 0 1 1 1\nentry switch=0 table=0 priority=1 match=1xxx action=output:1\n"
  in
  match Serial.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok net -> check_int "one entry" 1 (Network.n_entries net)

let () =
  Alcotest.run "openflow"
    [
      ( "flow entry",
        [
          Alcotest.test_case "matches" `Quick test_entry_matches;
          Alcotest.test_case "apply set field" `Quick test_entry_apply;
          Alcotest.test_case "overlaps" `Quick test_entry_overlaps;
          Alcotest.test_case "set length mismatch" `Quick test_entry_set_length_mismatch;
        ] );
      ( "flow table",
        [
          Alcotest.test_case "lookup priority" `Quick test_table_lookup_priority;
          Alcotest.test_case "tie break" `Quick test_table_tie_break;
          Alcotest.test_case "overlaps tie break" `Quick test_overlaps_tie_break;
          Alcotest.test_case "add/remove" `Quick test_table_add_remove;
          Alcotest.test_case "input space" `Quick test_input_space;
          Alcotest.test_case "output space" `Quick test_output_space;
          QCheck_alcotest.to_alcotest prop_shadow_iff_empty_input;
        ] );
      ( "topology",
        [
          Alcotest.test_case "links" `Quick test_topology_links;
          Alcotest.test_case "invalid" `Quick test_topology_invalid;
          Alcotest.test_case "digraph" `Quick test_topology_digraph;
        ] );
      ( "network",
        [
          Alcotest.test_case "add entry" `Quick test_network_add_entry;
          Alcotest.test_case "validation" `Quick test_network_validation;
          Alcotest.test_case "remove" `Quick test_network_remove;
          Alcotest.test_case "figure3 spaces" `Quick test_network_spaces;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "figure3 roundtrip" `Quick test_serial_roundtrip_figure3;
          Alcotest.test_case "generated roundtrip" `Quick test_serial_roundtrip_generated;
          Alcotest.test_case "errors" `Quick test_serial_errors;
          Alcotest.test_case "comments" `Quick test_serial_comments_and_blanks;
        ] );
    ]
