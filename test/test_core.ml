(* End-to-end tests for SDNProbe: plan generation, slicing, and fault
   localization against the emulator (Algorithm 2). *)

module Emu = Dataplane.Emulator
module Fault = Dataplane.Fault
module Cube = Hspace.Cube
module Header = Hspace.Header
module FE = Openflow.Flow_entry
module Prng = Sdn_util.Prng
module Plan = Sdnprobe.Plan
module Probe = Sdnprobe.Probe
module Runner = Sdnprobe.Runner
module Report = Sdnprobe.Report
module Config = Sdnprobe.Config
module Suspicion = Sdnprobe.Suspicion

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let config = Config.default

(* Deprecated-wrapper coverage: Runner.detect and randomized
   Plan.generate are kept as shims and must keep working until removed;
   these suppressed aliases are their only sanctioned callers here —
   everything static goes through Pipeline. *)
let[@alert "-deprecated"] detect_shim ?stop ?mode ~config emu =
  Runner.detect ?stop ?mode ~config emu

let[@alert "-deprecated"] generate_randomized ~mode net = Plan.generate ~mode net

(* ------------------------------------------------------------------ *)
(* Probe mechanics *)

let test_probe_make () =
  let { Fixtures.cnet; r_a; r_b; r_c } = Fixtures.chain3 () in
  let p =
    Probe.make cnet ~id:0
      ~rules:[ r_a.FE.id; r_b.FE.id; r_c.FE.id ]
      ~header:(Header.of_string "10000001")
  in
  check_int "inject" 0 p.Probe.inject_switch;
  check_int "terminal switch" 2 p.Probe.terminal_switch;
  check_int "terminal rule" r_c.FE.id p.Probe.terminal_rule;
  check_bool "identity rewrite" true
    (Header.equal p.Probe.expected_header (Header.of_string "10000001"));
  check_int "hops" 3 (Probe.hop_count p)

let test_probe_expected_header_set_field () =
  let fx = Fixtures.figure3 () in
  let p =
    Probe.make fx.Fixtures.net ~id:0
      ~rules:[ fx.Fixtures.b3.FE.id; fx.Fixtures.d1.FE.id; fx.Fixtures.e3.FE.id ]
      ~header:(Header.of_string "00010101")
  in
  Alcotest.(check string) "after d1's set field" "01110101"
    (Header.to_string p.Probe.expected_header)

let test_probe_slice () =
  let { Fixtures.cnet; r_a; r_b; r_c } = Fixtures.chain3 () in
  let p =
    Probe.make cnet ~id:0
      ~rules:[ r_a.FE.id; r_b.FE.id; r_c.FE.id ]
      ~header:(Header.of_string "10000001")
  in
  let counter = ref 100 in
  let fresh_id () = incr counter; !counter in
  match Probe.slice cnet ~fresh_id p with
  | None -> Alcotest.fail "expected a slice"
  | Some (a, b) ->
      check_bool "first half" true (a.Probe.rules = [ r_a.FE.id ]);
      check_bool "second half" true (b.Probe.rules = [ r_b.FE.id; r_c.FE.id ]);
      check_int "b injects at switch 1" 1 b.Probe.inject_switch;
      check_bool "headers propagate" true
        (Header.equal b.Probe.header (Header.of_string "10000001"));
      check_bool "fresh ids" true (a.Probe.id > 100 && b.Probe.id > 100)

let test_probe_slice_singleton () =
  let { Fixtures.cnet; r_a; _ } = Fixtures.chain3 () in
  let p = Probe.make cnet ~id:0 ~rules:[ r_a.FE.id ] ~header:(Header.of_string "10000001") in
  check_bool "no slice" true (Probe.slice cnet ~fresh_id:(fun () -> 1) p = None)

let test_probe_slice_respects_set_fields () =
  let fx = Fixtures.figure3 () in
  let p =
    Probe.make fx.Fixtures.net ~id:0
      ~rules:[ fx.Fixtures.b3.FE.id; fx.Fixtures.d1.FE.id; fx.Fixtures.e3.FE.id ]
      ~header:(Header.of_string "00010101")
  in
  let counter = ref 0 in
  match Probe.slice fx.Fixtures.net ~fresh_id:(fun () -> incr counter; !counter) p with
  | None -> Alcotest.fail "expected slice"
  | Some (_, b) ->
      (* The second half starts at d1 or e3; its injected header must be
         the in-flight header at that point. *)
      (match b.Probe.rules with
      | first :: _ when first = fx.Fixtures.d1.FE.id ->
          Alcotest.(check string) "header before d1" "00010101"
            (Header.to_string b.Probe.header)
      | first :: _ when first = fx.Fixtures.e3.FE.id ->
          Alcotest.(check string) "header before e3" "01110101"
            (Header.to_string b.Probe.header)
      | _ -> Alcotest.fail "unexpected split")

(* ------------------------------------------------------------------ *)
(* Plan generation *)

let test_plan_generation () =
  let fx = Fixtures.figure3 () in
  let plan = Pipeline.plan (Pipeline.create fx.Fixtures.net) in
  check_int "four probes" 4 (Plan.size plan);
  (* All probes' headers lie in their paths' start spaces and are
     pairwise distinct (Sat_unique policy). *)
  let headers = List.map (fun p -> p.Probe.header) plan.Plan.probes in
  check_int "distinct" 4 (List.length (List.sort_uniq Header.compare headers))

let test_plan_probes_pass_cleanly () =
  (* On a fault-free network every probe must return: zero functional
     false positives by construction. *)
  let fx = Fixtures.figure3 () in
  let plan = Pipeline.plan (Pipeline.create fx.Fixtures.net) in
  let emu = Emu.create fx.Fixtures.net in
  List.iter
    (fun (p : Probe.t) ->
      Emu.install_trap emu ~probe:p.Probe.id ~switch:p.Probe.terminal_switch
        ~rule:p.Probe.terminal_rule ~header:p.Probe.expected_header;
      (match (Emu.inject emu ~at:p.Probe.inject_switch p.Probe.header).Emu.outcome with
      | Emu.Returned { probe; _ } when probe = p.Probe.id -> ()
      | _ -> Alcotest.failf "probe %d did not return" p.Probe.id);
      Emu.remove_probe_traps emu ~probe:p.Probe.id)
    plan.Plan.probes

let test_plan_redraw_varies () =
  let fx = Fixtures.figure3 () in
  let rng = Prng.create 3 in
  let plan = generate_randomized ~mode:(Plan.Randomized rng) fx.Fixtures.net in
  let covers =
    List.init 6 (fun _ ->
        let p = Plan.redraw plan rng in
        List.sort compare (List.map (fun pr -> pr.Probe.rules) p.Plan.probes))
  in
  check_bool "redraw varies" true (List.length (List.sort_uniq compare covers) > 1)

(* ------------------------------------------------------------------ *)
(* End-to-end localization *)

let run_static ?(cfg = config) ?stop emu =
  detect_shim ?stop ~config:cfg emu

let test_no_fault_no_detection () =
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  let cfg = Config.with_max_rounds 10 config in
  let report = run_static ~cfg emu in
  check_bool "nothing flagged" true (Report.flagged_switches report = []);
  check_int "10 rounds" 10 report.Report.rounds;
  check_bool "time advanced" true (report.Report.duration_s > 0.)

let test_single_drop_fault_localized () =
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.b1.FE.id (Fault.make Fault.Drop_packet);
  let report = run_static ~stop:(Runner.stop_when_flagged [ Fixtures.sw_b ]) emu in
  check_bool "exactly B flagged" true (Report.flagged_switches report = [ Fixtures.sw_b ]);
  check_bool "no false positives" true (List.length report.Report.detections = 1);
  check_bool "fast" true (report.Report.duration_s < 5.)

let test_single_modify_fault_localized () =
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.c2.FE.id
    (Fault.make (Fault.Rewrite (Cube.of_string "xxxxxx11")));
  let report = run_static ~stop:(Runner.stop_when_flagged [ Fixtures.sw_c ]) emu in
  check_bool "exactly C flagged" true (Report.flagged_switches report = [ Fixtures.sw_c ])

let test_single_misdirect_fault_localized () =
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  (* d1 misdirects to port 1 (back towards B) instead of port 2. *)
  Emu.set_fault emu ~entry:fx.Fixtures.d1.FE.id (Fault.make (Fault.Misdirect 1));
  let report = run_static ~stop:(Runner.stop_when_flagged [ Fixtures.sw_d ]) emu in
  check_bool "exactly D flagged" true (Report.flagged_switches report = [ Fixtures.sw_d ])

let test_multiple_faults_localized () =
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.b2.FE.id (Fault.make Fault.Drop_packet);
  Emu.set_fault emu ~entry:fx.Fixtures.d1.FE.id (Fault.make Fault.Drop_packet);
  let report =
    run_static ~stop:(Runner.stop_when_flagged [ Fixtures.sw_b; Fixtures.sw_d ]) emu
  in
  check_bool "B and D flagged, nothing else" true
    (Report.flagged_switches report = [ Fixtures.sw_b; Fixtures.sw_d ])

let test_fault_on_shared_rule_no_fp () =
  (* c2 serves two tested paths; a fault on b2 must not frame c2. *)
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.b2.FE.id (Fault.make Fault.Drop_packet);
  let report = run_static ~stop:(Runner.stop_when_flagged [ Fixtures.sw_b ]) emu in
  check_bool "only B" true (Report.flagged_switches report = [ Fixtures.sw_b ])

let test_intermittent_fault_localized () =
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  (* Pseudo-random 30 ms bursts, active 30% of the time: occurrences are
     shorter than a localization cycle and cannot phase-lock with the
     probing cadence. *)
  Emu.set_fault emu ~entry:fx.Fixtures.b1.FE.id
    (Fault.make
       ~activation:(Fault.Random_bursts { window_us = 30_000; active_ratio = 0.3; seed = 42 })
       Fault.Drop_packet);
  let cfg = Config.with_max_rounds 400 config in
  let report = run_static ~cfg ~stop:(Runner.stop_when_flagged [ Fixtures.sw_b ]) emu in
  check_bool "B eventually flagged" true
    (List.mem Fixtures.sw_b (Report.flagged_switches report));
  check_bool "no false positives" true
    (List.for_all (fun s -> s = Fixtures.sw_b) (Report.flagged_switches report))

let test_targeting_fault_static_misses () =
  (* Target a corner of b1's match that the deterministic header choice
     avoids; static SDNProbe must miss it (Table I: FN). *)
  let fx = Fixtures.figure3 () in
  let plan = Pipeline.plan (Pipeline.create fx.Fixtures.net) in
  (* Find the static probe that traverses b1 and target a different
     header under b1's match. *)
  let static_probe =
    List.find (fun p -> List.mem fx.Fixtures.b1.FE.id p.Probe.rules) plan.Plan.probes
  in
  let target =
    (* Flip the last bit of the static header to stay inside 0010xxxx
       but miss the static probe. *)
    let s = Header.to_string static_probe.Probe.header in
    let flipped =
      String.mapi
        (fun i c -> if i = 7 then (if c = '0' then '1' else '0') else c)
        s
    in
    Cube.of_string flipped
  in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.b1.FE.id
    (Fault.make ~activation:(Fault.Targeting target) Fault.Drop_packet);
  let cfg = Config.with_max_rounds 30 config in
  let report = run_static ~cfg emu in
  check_bool "static misses targeting fault" true (Report.flagged_switches report = [])

let test_targeting_fault_randomized_catches () =
  (* The same fault with a larger target: randomized headers hit it
     within a reasonable number of cycles. *)
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  (* Target half of b1's traffic: 00101xx1. *)
  Emu.set_fault emu ~entry:fx.Fixtures.b1.FE.id
    (Fault.make ~activation:(Fault.Targeting (Cube.of_string "0010xxx1")) Fault.Drop_packet);
  let cfg = Config.with_max_rounds 400 config in
  let report =
    detect_shim
      ~stop:(Runner.stop_when_flagged [ Fixtures.sw_b ])
      ~mode:(Plan.Randomized (Prng.create 11))
      ~config:cfg emu
  in
  check_bool "randomized catches targeting fault" true
    (List.mem Fixtures.sw_b (Report.flagged_switches report))

let test_detour_static_blind () =
  (* a1 detours to C; the static cover's path through a1 still reaches
     its terminal with the right header, so static SDNProbe is blind. *)
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.a1.FE.id (Fault.make (Fault.Detour Fixtures.sw_c));
  let cfg = Config.with_max_rounds 20 config in
  let report = run_static ~cfg emu in
  check_bool "static blind to detour" true (Report.flagged_switches report = [])

let test_detour_randomized_detects () =
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.a1.FE.id (Fault.make (Fault.Detour Fixtures.sw_c));
  let cfg = Config.with_max_rounds 600 config in
  let report =
    detect_shim
      ~stop:(Runner.stop_when_flagged [ Fixtures.sw_a ])
      ~mode:(Plan.Randomized (Prng.create 4))
      ~config:cfg emu
  in
  check_bool "randomized detects detour" true
    (List.mem Fixtures.sw_a (Report.flagged_switches report))

let test_report_accounting () =
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.b1.FE.id (Fault.make Fault.Drop_packet);
  let report = run_static ~stop:(Runner.stop_when_flagged [ Fixtures.sw_b ]) emu in
  check_bool "packets > plan" true (report.Report.packets_sent >= report.Report.plan_size);
  check_int "bytes" (report.Report.packets_sent * config.Config.probe_size_bytes)
    report.Report.bytes_sent;
  check_bool "suspicion ranks b1 first" true
    (match report.Report.suspicion_ranking with
    | (rule, _) :: _ -> rule = fx.Fixtures.b1.FE.id
    | [] -> false);
  match Report.time_to_detect_all report ~ground_truth:[ Fixtures.sw_b ] with
  | Some t -> check_bool "detect-all time positive" true (t > 0.)
  | None -> Alcotest.fail "expected detection time"

let test_empty_network () =
  (* A network with no flow entries: generation yields no probes and
     detection terminates cleanly with nothing to report. *)
  let topo = Openflow.Topology.create ~n_switches:2 in
  Openflow.Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Openflow.Network.create ~header_len:8 topo in
  let plan = Pipeline.plan (Pipeline.create net) in
  check_int "no probes" 0 (Plan.size plan);
  let emu = Emu.create net in
  let cfg = Config.with_max_rounds 5 config in
  let report = detect_shim ~config:cfg emu in
  check_bool "no detections" true (Report.flagged_switches report = []);
  check_int "no packets" 0 report.Report.packets_sent

let test_single_switch_plan () =
  (* Rules on a switch with no links usable for forwarding: only Drop
     delivery rules; the plan still covers them with singleton probes. *)
  let topo = Openflow.Topology.create ~n_switches:2 in
  Openflow.Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Openflow.Network.create ~header_len:8 topo in
  let e =
    Openflow.Network.add_entry net ~switch:0 ~priority:1
      ~match_:(Cube.of_string "1xxxxxxx") FE.Drop
  in
  let plan = Pipeline.plan (Pipeline.create net) in
  check_int "one probe" 1 (Plan.size plan);
  let p = List.hd plan.Plan.probes in
  check_bool "covers the rule" true (p.Probe.rules = [ e.FE.id ]);
  (* It passes on a healthy emulator... *)
  let emu = Emu.create net in
  let report = detect_shim ~config:(Config.with_max_rounds 3 config) emu in
  check_bool "healthy" true (Report.flagged_switches report = []);
  (* ... and a fault on it is localized. *)
  Emu.set_fault emu ~entry:e.FE.id (Fault.make Fault.Drop_packet);
  let report =
    detect_shim ~stop:(Runner.stop_when_flagged [ 0 ]) ~config emu
  in
  check_bool "flagged" true (Report.flagged_switches report = [ 0 ])

(* ------------------------------------------------------------------ *)
(* Suspicion unit behaviour *)

let test_suspicion () =
  let s = Suspicion.create ~threshold:2 in
  check_int "initial" 0 (Suspicion.level s 5);
  Suspicion.bump_rule s 5;
  Suspicion.bump_rule s 5;
  check_bool "at threshold not exceeding" false (Suspicion.exceeds_threshold s 5);
  Suspicion.bump_rule s 5;
  check_bool "exceeds" true (Suspicion.exceeds_threshold s 5);
  Suspicion.flag s ~switch:1 ~time_s:2.0 ~round:4;
  Suspicion.flag s ~switch:1 ~time_s:9.0 ~round:9;
  check_bool "first flag wins" true (Suspicion.detections s = [ (1, 2.0, 4) ]);
  check_bool "ranking" true (Suspicion.rule_levels s = [ (5, 3) ])

let () =
  Alcotest.run "core"
    [
      ( "probe",
        [
          Alcotest.test_case "make" `Quick test_probe_make;
          Alcotest.test_case "expected header" `Quick test_probe_expected_header_set_field;
          Alcotest.test_case "slice" `Quick test_probe_slice;
          Alcotest.test_case "slice singleton" `Quick test_probe_slice_singleton;
          Alcotest.test_case "slice set fields" `Quick test_probe_slice_respects_set_fields;
        ] );
      ( "plan",
        [
          Alcotest.test_case "generation" `Quick test_plan_generation;
          Alcotest.test_case "clean pass" `Quick test_plan_probes_pass_cleanly;
          Alcotest.test_case "redraw varies" `Quick test_plan_redraw_varies;
        ] );
      ( "localization",
        [
          Alcotest.test_case "no fault" `Quick test_no_fault_no_detection;
          Alcotest.test_case "single drop" `Quick test_single_drop_fault_localized;
          Alcotest.test_case "single modify" `Quick test_single_modify_fault_localized;
          Alcotest.test_case "single misdirect" `Quick test_single_misdirect_fault_localized;
          Alcotest.test_case "multiple faults" `Quick test_multiple_faults_localized;
          Alcotest.test_case "no FP on shared rule" `Quick test_fault_on_shared_rule_no_fp;
          Alcotest.test_case "intermittent" `Quick test_intermittent_fault_localized;
          Alcotest.test_case "targeting static FN" `Quick test_targeting_fault_static_misses;
          Alcotest.test_case "targeting randomized" `Quick test_targeting_fault_randomized_catches;
          Alcotest.test_case "detour static FN" `Quick test_detour_static_blind;
          Alcotest.test_case "detour randomized" `Quick test_detour_randomized_detects;
          Alcotest.test_case "report accounting" `Quick test_report_accounting;
          Alcotest.test_case "empty network" `Quick test_empty_network;
          Alcotest.test_case "single drop rule" `Quick test_single_switch_plan;
        ] );
      ("suspicion", [ Alcotest.test_case "levels" `Quick test_suspicion ]);
    ]
