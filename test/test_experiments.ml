(* Tests for the experiments layer: workload construction, fault
   injection ground truth, and scheme plumbing. *)

module W = Experiments.Workloads
module Schemes = Experiments.Schemes
module Emu = Dataplane.Emulator
module FE = Openflow.Flow_entry
module Prng = Sdn_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small = lazy (List.hd (W.suite ~count:1 ~seed:100 ()))

let test_suite_shapes () =
  let nets = W.suite ~count:3 ~seed:100 () in
  check_int "count" 3 (List.length nets);
  let sizes = List.map (fun w -> Openflow.Network.n_entries w.W.network) nets in
  check_bool "growing" true (sizes = List.sort compare sizes);
  List.iter
    (fun w ->
      check_bool "loop free" true
        (match Rulegraph.Rule_graph.build ~closure:false w.W.network with
        | (_ : Rulegraph.Rule_graph.t) -> true
        | exception Rulegraph.Rule_graph.Cyclic_policy _ -> false))
    nets

let test_suite_deterministic () =
  let labels w = (w.W.label, Openflow.Network.n_entries w.W.network) in
  let a = List.map labels (W.suite ~count:2 ~seed:100 ()) in
  let b = List.map labels (W.suite ~count:2 ~seed:100 ()) in
  check_bool "deterministic" true (a = b)

let test_inject_rules_ground_truth () =
  let w = Lazy.force small in
  let emulator = Emu.create w.W.network in
  let truth = W.inject (Prng.create 9) ~kind:W.Drop_only ~fraction:0.05 emulator in
  check_bool "non-empty" true (truth <> []);
  (* Ground truth is exactly the switches owning faulted entries. *)
  check_bool "matches emulator" true (truth = Emu.faulty_switches emulator);
  (* Faulted entries are forwarding entries. *)
  List.iter
    (fun e ->
      match (Openflow.Network.entry w.W.network e).FE.action with
      | FE.Output _ -> ()
      | _ -> Alcotest.fail "fault on non-forwarding entry")
    (Emu.faulty_entries emulator)

let test_inject_switches_ground_truth () =
  let w = Lazy.force small in
  let emulator = Emu.create w.W.network in
  let truth =
    W.inject_switches (Prng.create 9) ~kind:W.Basic ~switch_fraction:0.5 emulator
  in
  check_bool "non-empty" true (truth <> []);
  check_bool "matches emulator" true (truth = Emu.faulty_switches emulator);
  check_bool "bounded" true
    (List.length truth <= Openflow.Network.n_switches w.W.network / 2 + 1)

let test_inject_detour_stealthy () =
  (* Every detour peer differs from both the faulted switch and its
     next hop (otherwise the tunnel would be a no-op). *)
  let w = Lazy.force small in
  let emulator = Emu.create w.W.network in
  let _ = W.inject_switches (Prng.create 5) ~kind:W.Detour ~switch_fraction:0.5 emulator in
  List.iter
    (fun entry ->
      let e = Openflow.Network.entry w.W.network entry in
      match Emu.fault_of emulator ~entry with
      | Some { Dataplane.Fault.effect = Dataplane.Fault.Detour peer; _ } ->
          check_bool "peer differs" true (peer <> e.FE.switch);
          (match Openflow.Network.next_switch w.W.network e with
          | Some next -> check_bool "skips a switch" true (peer <> next)
          | None -> ())
      | _ -> Alcotest.fail "expected detour fault")
    (Emu.faulty_entries emulator)

let test_same_seed_same_faults () =
  let w = Lazy.force small in
  let emu1 = Emu.create w.W.network in
  let emu2 = Emu.create w.W.network in
  let t1 = W.inject (Prng.create 3) ~kind:W.Basic ~fraction:0.1 emu1 in
  let t2 = W.inject (Prng.create 3) ~kind:W.Basic ~fraction:0.1 emu2 in
  check_bool "same truth" true (t1 = t2);
  check_bool "same entries" true (Emu.faulty_entries emu1 = Emu.faulty_entries emu2)

let test_scheme_plan_sizes () =
  let w = Lazy.force small in
  let net = w.W.network in
  let sdn = Schemes.plan_size Schemes.Sdnprobe ~seed:7 net in
  let rand = Schemes.plan_size Schemes.Randomized_sdnprobe ~seed:7 net in
  let atpg = Schemes.plan_size Schemes.Atpg ~seed:7 net in
  let pr = Schemes.plan_size Schemes.Per_rule ~seed:7 net in
  check_bool "sdn minimal" true (sdn <= rand && sdn <= atpg && sdn <= pr);
  check_int "per-rule = testable rules" pr
    (let rg = Rulegraph.Rule_graph.build ~closure:false net in
     let n = ref 0 in
     for v = 0 to Rulegraph.Rule_graph.n_vertices rg - 1 do
       if not (Hspace.Hs.is_empty (Rulegraph.Rule_graph.input rg v)) then incr n
     done;
     !n)

let test_scheme_names () =
  check_int "four schemes" 4 (List.length Schemes.all);
  check_bool "distinct names" true
    (List.length (List.sort_uniq compare (List.map Schemes.name Schemes.all)) = 4)

let test_registry () =
  check_int "eleven experiments" 11 (List.length Experiments.Registry.experiments);
  match Experiments.Registry.run ~scale:Experiments.Registry.Quick "no-such" with
  | Error msg -> check_bool "helpful error" true (String.length msg > 10)
  | Ok () -> Alcotest.fail "expected error"

let test_scheme_end_to_end () =
  (* Each scheme localizes a single drop fault on the small workload. *)
  let w = Lazy.force small in
  List.iter
    (fun scheme ->
      let emulator = Emu.create w.W.network in
      let truth = W.inject (Prng.create 2) ~kind:W.Drop_only ~fraction:0.001 emulator in
      let config = Sdnprobe.Config.make ~max_rounds:60 () in
      let report =
        Schemes.run scheme ~seed:7
          ~stop:(Sdnprobe.Runner.stop_when_flagged truth)
          ~config emulator
      in
      List.iter
        (fun sw ->
          check_bool
            (Printf.sprintf "%s finds switch %d" (Schemes.name scheme) sw)
            true
            (List.mem sw (Sdnprobe.Report.flagged_switches report)))
        truth)
    Schemes.all

let () =
  Alcotest.run "experiments"
    [
      ( "workloads",
        [
          Alcotest.test_case "suite shapes" `Quick test_suite_shapes;
          Alcotest.test_case "deterministic" `Quick test_suite_deterministic;
          Alcotest.test_case "inject rules" `Quick test_inject_rules_ground_truth;
          Alcotest.test_case "inject switches" `Quick test_inject_switches_ground_truth;
          Alcotest.test_case "detour stealthy" `Quick test_inject_detour_stealthy;
          Alcotest.test_case "seed reproducibility" `Quick test_same_seed_same_faults;
        ] );
      ( "schemes",
        [
          Alcotest.test_case "plan sizes" `Quick test_scheme_plan_sizes;
          Alcotest.test_case "names" `Quick test_scheme_names;
          Alcotest.test_case "end to end" `Quick test_scheme_end_to_end;
        ] );
      ("registry", [ Alcotest.test_case "lookup" `Quick test_registry ]);
    ]
