(* Deterministic multicore: the domain pool's combinator contracts, the
   domain-safe cube intern table, parallel Yen batches, and — the PR's
   acceptance property — byte-identity of the whole pipeline (plan,
   execution report, certificate) across domain counts. *)

module Pool = Sdn_parallel.Pool
module Prng = Sdn_util.Prng
module Cube = Hspace.Cube
module Digraph = Sdngraph.Digraph
module Yen = Sdngraph.Yen
module Emu = Dataplane.Emulator
module Impairment = Dataplane.Impairment
module Plan = Sdnprobe.Plan
module Runner = Sdnprobe.Runner
module Report = Sdnprobe.Report
module Config = Sdnprobe.Config
module W = Experiments.Workloads

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Pools for the whole file: obtained from the process-wide cache so
   they are shut down automatically at exit. *)
let pool n = Sdn_parallel.pool ~domains:n

let sizes = [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool combinators *)

let test_map_matches_sequential () =
  let input = Array.init 157 Fun.id in
  let f x = (x * x) + 1 in
  let expect = Array.map f input in
  List.iter
    (fun n -> check_bool (Printf.sprintf "map @%d" n) true (Pool.map (pool n) f input = expect))
    sizes

let test_map_list_and_mapi () =
  let input = List.init 63 Fun.id in
  List.iter
    (fun n ->
      check_bool "map_list" true
        (Pool.map_list (pool n) succ input = List.map succ input);
      check_bool "mapi_list" true
        (Pool.mapi_list (pool n) (fun i x -> i - x) input = List.mapi (fun i x -> i - x) input))
    sizes;
  check_bool "empty list" true (Pool.map_list (pool 4) succ [] = [])

let test_map_reduce_in_order () =
  (* String concatenation is not commutative: the reduce must fold the
     mapped results left to right in input order. *)
  let input = Array.init 40 Fun.id in
  let expect =
    Array.fold_left (fun acc x -> acc ^ string_of_int x) "" (Array.map Fun.id input)
  in
  List.iter
    (fun n ->
      let got =
        Pool.map_reduce (pool n) ~map:string_of_int
          ~combine:(fun acc s -> acc ^ s)
          ~init:"" input
      in
      check_str (Printf.sprintf "map_reduce @%d" n) expect got)
    sizes

let test_iter_chunked_covers_all () =
  let input = Array.init 101 (fun i -> i * 3) in
  List.iter
    (fun n ->
      List.iter
        (fun chunk ->
          let out = Array.make 101 min_int in
          Pool.iter_chunked ~chunk (pool n) (fun i x -> out.(i) <- x + 1) input;
          Array.iteri
            (fun i x ->
              if out.(i) <> x + 1 then
                Alcotest.failf "slot %d: %d <> %d (chunk %d, domains %d)" i out.(i)
                  (x + 1) chunk n)
            input)
        [ 1; 3; 16; 1000 ])
    sizes

let test_exception_lowest_index () =
  List.iter
    (fun n ->
      match
        Pool.map (pool n)
          (fun i -> if i mod 2 = 1 then failwith (string_of_int i) else i)
          (Array.init 32 Fun.id)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure s -> check_str (Printf.sprintf "lowest @%d" n) "1" s)
    sizes

let test_reentrant_falls_back_inline () =
  let p = pool 3 in
  let got =
    Pool.map_list p
      (fun x -> List.fold_left ( + ) 0 (Pool.map_list p Fun.id (List.init x succ)))
    (List.init 20 Fun.id)
  in
  let expect = List.init 20 (fun x -> x * (x + 1) / 2) in
  check_bool "nested combinator" true (got = expect)

let test_shutdown_idempotent () =
  let p = Pool.create ~domains:2 in
  check_int "domains" 2 (Pool.domains p);
  check_bool "pre-shutdown" true (Pool.map p succ [| 1; 2; 3 |] = [| 2; 3; 4 |]);
  Pool.shutdown p;
  Pool.shutdown p;
  (* combinators still work, inline *)
  check_bool "post-shutdown inline" true (Pool.map p succ [| 1; 2; 3 |] = [| 2; 3; 4 |])

let test_create_validates () =
  List.iter
    (fun bad ->
      check_bool (Printf.sprintf "domains %d rejected" bad) true
        (try
           ignore (Pool.create ~domains:bad);
           false
         with Invalid_argument _ -> true))
    [ 0; -1; 129 ]

let test_env_parsing () =
  let set v = Unix.putenv "SDNPROBE_DOMAINS" v in
  let saved = Sys.getenv_opt "SDNPROBE_DOMAINS" in
  Fun.protect
    ~finally:(fun () -> set (Option.value ~default:"" saved))
    (fun () ->
      set "4";
      check_int "well-formed" 4 (Sdn_parallel.env_domains ());
      set "0";
      check_int "out of range low" 1 (Sdn_parallel.env_domains ());
      set "129";
      check_int "out of range high" 1 (Sdn_parallel.env_domains ());
      set "banana";
      check_int "malformed" 1 (Sdn_parallel.env_domains ());
      set "";
      check_int "empty" 1 (Sdn_parallel.env_domains ()))

(* ------------------------------------------------------------------ *)
(* Domain-safe cube interning: hammer constructors and algebra from
   four domains; results must be structurally identical to the
   sequential ones, and constructor results must still be interned. *)

let test_intern_under_domains () =
  let rng = Prng.create 11 in
  let specs = Array.init 256 (fun _ -> Cube.to_string (Cube.random rng 64)) in
  let work s =
    let c = Cube.of_string s in
    let d = Cube.of_string s in
    if not (c == d) then Alcotest.fail "of_string not interned";
    match Cube.inter c (Cube.wildcard 64) with
    | Some i -> Cube.to_string i
    | None -> assert false
  in
  let seq = Array.map work specs in
  let par = Pool.map (pool 4) work specs in
  check_bool "parallel algebra matches" true (seq = par);
  check_bool "table non-empty" true (Cube.interned_count () > 0)

(* ------------------------------------------------------------------ *)
(* Parallel Yen batch = sequential map *)

let random_graph seed =
  let rng = Prng.create seed in
  let n = 36 in
  let g = Digraph.create n in
  for _ = 1 to 5 * n do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then
      Digraph.add_edge ~weight:(1.0 +. Prng.float rng 9.0) g u v
  done;
  g

let test_yen_pairs_matches_sequential () =
  let g = random_graph 5 in
  let rng = Prng.create 6 in
  let pairs =
    List.init 24 (fun _ -> (Prng.int rng (Digraph.n_vertices g), Prng.int rng (Digraph.n_vertices g)))
  in
  let seq = Yen.k_shortest_pairs g ~pairs ~k:8 in
  List.iter
    (fun n ->
      check_bool
        (Printf.sprintf "pairs @%d" n)
        true
        (Yen.k_shortest_pairs ~pool:(pool n) g ~pairs ~k:8 = seq))
    sizes;
  (* and each batch entry is the plain single-pair answer *)
  List.iteri
    (fun i (src, dst) ->
      if List.nth seq i <> Yen.k_shortest g ~src ~dst ~k:8 then
        Alcotest.failf "pair %d differs from k_shortest" i)
    pairs

(* ------------------------------------------------------------------ *)
(* Pipeline byte-identity across domain counts.

   [canonical]/[digest] replicate test_runner_loss's golden encoding so
   the digests pinned there can be re-pinned here under domains = 4. *)

let canonical (r : Report.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "%s|%d|%d|%d|%d|%.6f" r.Report.scheme r.plan_size
       r.packets_sent r.bytes_sent r.rounds r.duration_s);
  List.iter
    (fun (d : Report.detection) ->
      Buffer.add_string b (Printf.sprintf "|d%d,%.6f,%d" d.switch d.time_s d.round))
    r.detections;
  List.iter
    (fun (rule, lvl) -> Buffer.add_string b (Printf.sprintf "|s%d,%d" rule lvl))
    r.suspicion_ranking;
  Buffer.contents b

let digest r = Digest.to_hex (Digest.string (canonical r))

let make_net ~switches ~seed =
  let rng = Prng.create seed in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:switches () in
  Topogen.Rule_gen.install rng topo

(* A probe plan's observable content, for byte comparison. *)
let plan_fingerprint (p : Plan.t) =
  String.concat ";"
    (List.map
       (fun (pr : Sdnprobe.Probe.t) ->
         Printf.sprintf "%d:%s:%s" pr.Sdnprobe.Probe.id
           (String.concat "," (List.map string_of_int pr.Sdnprobe.Probe.rules))
           (Hspace.Header.to_string pr.Sdnprobe.Probe.header))
       p.Plan.probes)

let scenario ~domains ~switches ~seed ~kind ~fraction ~randomized ~max_rounds ~impair
    () =
  let net = make_net ~switches ~seed in
  let emu = Emu.create net in
  (* Flaps + churn are clock-window salted (order-independent), so the
     runner's parallel round stays engaged with this impairment on —
     the property then covers parallel sends under a noisy data plane.
     The order-dependent draws (loss, jitter) are covered by
     [test_cross_domain_identity_lossy] below, where the runner gate
     falls back to the serial loop but planning stays parallel. *)
  if impair then
    Emu.set_impairment emu
      (Impairment.create
         (Impairment.spec ~seed:99
            ~flaps:{ Impairment.flap_window_us = 200_000; down_ratio = 0.01 }
            ~churn:{ Impairment.churn_window_us = 250_000; out_ratio = 0.005 }
            ()));
  let truth = W.inject (Prng.create (seed + 1)) ~kind ~fraction emu in
  let config =
    Config.with_domains domains (Config.with_max_rounds max_rounds Config.default)
  in
  let mode = if randomized then Plan.Randomized (Prng.create seed) else Plan.Static in
  let plan =
    match mode with
    | Plan.Static -> Pipeline.plan (Pipeline.create ?pool:(Config.pool config) net)
    | _ -> (Plan.generate [@alert "-deprecated"]) ?pool:(Config.pool config) ~mode net
  in
  let report =
    Runner.execute ~stop:(Runner.stop_when_flagged truth) ~config ~emulator:emu plan
  in
  (plan, report)

let test_cross_domain_identity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"plan/report identical for domains 1, 2, 4" ~count:6
       QCheck.(triple (int_bound 1000) bool bool)
       (fun (seed, randomized, impair) ->
         let at domains =
           let plan, report =
             scenario ~domains ~switches:10 ~seed ~kind:W.Drop_only ~fraction:0.02
               ~randomized ~max_rounds:25 ~impair ()
           in
           (plan_fingerprint plan, canonical report)
         in
         let p1, r1 = at 1 and p2, r2 = at 2 and p4, r4 = at 4 in
         p1 = p2 && p2 = p4 && r1 = r2 && r2 = r4))

(* Order-dependent impairment (per-link loss): the runner's parallel
   gate must refuse the concurrent round and reproduce the serial
   semantics exactly, while planning still runs on the pool. *)
let test_cross_domain_identity_lossy () =
  let at domains =
    let net = make_net ~switches:16 ~seed:1 in
    let emu = Emu.create net in
    Emu.set_impairment emu
      (Impairment.create (Impairment.spec ~seed:77 ~loss_rate:0.02 ()));
    let truth = W.inject (Prng.create 2) ~kind:W.Drop_only ~fraction:0.02 emu in
    let config =
      Config.with_domains domains (Config.with_max_rounds 60 Config.resilient)
    in
    let plan = Pipeline.plan (Pipeline.create ?pool:(Config.pool config) net) in
    let report =
      Runner.execute ~stop:(Runner.stop_when_flagged truth) ~config ~emulator:emu
        plan
    in
    (plan_fingerprint plan, canonical report)
  in
  let p1, r1 = at 1 and p4, r4 = at 4 in
  check_str "lossy plan identical" p1 p4;
  check_str "lossy report identical" r1 r4

(* The PR2/PR3 golden digests, re-pinned with the whole pipeline (plan
   generation and probing rounds) running on 4 domains. *)
let golden ~switches ~seed ~kind ~fraction ~randomized ~max_rounds expect () =
  let _, r =
    scenario ~domains:4 ~switches ~seed ~kind ~fraction ~randomized ~max_rounds
      ~impair:false ()
  in
  check_str "digest @4 domains" expect (digest r)

let test_golden_static_drop_par =
  golden ~switches:16 ~seed:1 ~kind:W.Drop_only ~fraction:0.02 ~randomized:false
    ~max_rounds:60 "bf4e86a37c5cc5a2cc0fc972572a1448"

let test_golden_randomized_drop_par =
  golden ~switches:16 ~seed:1 ~kind:W.Drop_only ~fraction:0.02 ~randomized:true
    ~max_rounds:60 "9c8f3f167e8ae6d9d081616844bed1a8"

let test_golden_static_basic_24_par =
  golden ~switches:24 ~seed:5 ~kind:W.Basic ~fraction:0.03 ~randomized:false
    ~max_rounds:60 "784726fc5c1c45fd4fec049c64b4dd30"

(* ------------------------------------------------------------------ *)
(* Certification of parallel plans: a plan generated on 4 domains is
   the plan the verifier expects, and its certificate JSON matches the
   sequential one byte for byte. *)

(* ------------------------------------------------------------------ *)
(* Ownership checker (SDNPROBE_POOL_CHECK): the dynamic complement to
   the static D005 rule. Each test flips the checker on, registers its
   regions, and restores the env-derived state afterwards. *)

module Own = Sdn_parallel.Ownership

let with_checker f =
  Own.set_enabled true;
  Fun.protect ~finally:(fun () -> Own.set_enabled Own.env_enabled) f

let test_ownership_violation () =
  with_checker (fun () ->
      let r = Own.register ~name:"test.region" in
      (* Same-domain touches are quiet. *)
      Own.touch r;
      (* A pooled worker touching the coordinator's region must raise.
         domains:2 so the closure really runs on another domain. *)
      let p = Pool.create ~domains:2 in
      let raised =
        try
          (* Tasks sleep briefly so the coordinator cannot drain the
             whole batch before a worker domain claims its first task. *)
          ignore
            (Pool.map p
               (fun _ ->
                 Unix.sleepf 0.002;
                 Own.touch r)
               (Array.make 64 ()));
          false
        with Own.Violation _ -> true
      in
      Pool.shutdown p;
      check_bool "cross-domain touch raises" true raised)

let test_ownership_guarded_and_sync () =
  with_checker (fun () ->
      let r = Own.register ~name:"test.guarded" in
      let worker () =
        (* guarded: the caller vouches for synchronization; touch_sync:
           mutex-holding sites are counted, not fatal. *)
        let ok =
          try
            Own.guarded r (fun () -> Own.touch r);
            true
          with Own.Violation _ -> false
        in
        Own.touch_sync r;
        ok
      in
      let ok = Domain.join (Domain.spawn worker) in
      check_bool "guarded and sync touches pass" true ok;
      check_int "both cross-domain touches counted" 2 (Own.cross_touches r))

let test_ownership_adopt () =
  with_checker (fun () ->
      let r = Own.register ~name:"test.adopt" in
      let d = Domain.spawn (fun () -> Own.adopt r; Own.touch r) in
      Domain.join d;
      (* After the worker adopted it, the old owner is the stranger. *)
      let raised = try Own.touch r; false with Own.Violation _ -> true in
      check_bool "previous owner now raises" true raised)

let test_ownership_disabled_is_quiet () =
  Own.set_enabled false;
  Fun.protect ~finally:(fun () -> Own.set_enabled Own.env_enabled) (fun () ->
      let r = Own.register ~name:"test.off" in
      let d = Domain.spawn (fun () -> Own.touch r) in
      Domain.join d;
      check_int "no cross count when off" 0 (Own.cross_touches r);
      check_bool "anonymous when off" true (Own.name r = None))

let test_certify_parallel_plan () =
  let net = make_net ~switches:12 ~seed:8 in
  let cert domains =
    let config = Config.with_domains domains Config.default in
    let plan = Pipeline.plan (Pipeline.create ?pool:(Config.pool config) net) in
    let report = Sdnprobe.Certify.run ~seed:5 plan in
    if not (Sdnprobe.Certify.ok_report report) then
      Alcotest.failf "certification failed at %d domains:@.%a" domains
        Sdnprobe.Certify.pp report;
    Sdn_util.Json.to_string (Sdnprobe.Certify.to_json report)
  in
  check_str "certificates identical" (cert 1) (cert 4)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map = Array.map" `Quick test_map_matches_sequential;
          Alcotest.test_case "map_list / mapi_list" `Quick test_map_list_and_mapi;
          Alcotest.test_case "map_reduce order" `Quick test_map_reduce_in_order;
          Alcotest.test_case "iter_chunked coverage" `Quick test_iter_chunked_covers_all;
          Alcotest.test_case "lowest-index exception" `Quick test_exception_lowest_index;
          Alcotest.test_case "reentrant fallback" `Quick test_reentrant_falls_back_inline;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "env parsing" `Quick test_env_parsing;
        ] );
      ( "intern",
        [ Alcotest.test_case "cube algebra under domains" `Quick test_intern_under_domains ] );
      ( "yen",
        [ Alcotest.test_case "pairs batch = sequential" `Quick test_yen_pairs_matches_sequential ] );
      ( "pipeline",
        [
          test_cross_domain_identity;
          Alcotest.test_case "lossy cross-domain identity" `Quick
            test_cross_domain_identity_lossy;
          Alcotest.test_case "golden static s16 @4" `Quick test_golden_static_drop_par;
          Alcotest.test_case "golden randomized s16 @4" `Quick
            test_golden_randomized_drop_par;
          Alcotest.test_case "golden static s24 @4" `Quick test_golden_static_basic_24_par;
        ] );
      ( "ownership",
        [
          Alcotest.test_case "cross-domain violation" `Quick test_ownership_violation;
          Alcotest.test_case "guarded and touch_sync" `Quick
            test_ownership_guarded_and_sync;
          Alcotest.test_case "adopt transfers" `Quick test_ownership_adopt;
          Alcotest.test_case "disabled is quiet" `Quick
            test_ownership_disabled_is_quiet;
        ] );
      ( "certify",
        [ Alcotest.test_case "parallel plan certifies" `Quick test_certify_parallel_plan ] );
    ]
