(* Tests for the graph algorithm library. *)

module Digraph = Sdngraph.Digraph
module HK = Sdngraph.Hopcroft_karp
module SP = Sdngraph.Shortest_path
module Yen = Sdngraph.Yen
module Heap = Sdngraph.Heap
module UF = Sdngraph.Union_find
module RM = Sdngraph.Rand_matching
module Prng = Sdn_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_sorts () =
  let rng = Prng.create 1 in
  let h = Heap.create () in
  let keys = List.init 200 (fun _ -> Prng.float rng 100.) in
  List.iter (fun k -> Heap.push h k k) keys;
  check_int "size" 200 (Heap.size h);
  let rec drain acc =
    match Heap.pop_min h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
  in
  let drained = drain [] in
  check_bool "sorted" true (drained = List.sort compare keys)

let test_heap_empty () =
  let h = Heap.create () in
  check_bool "pop empty" true (Heap.pop_min h = None);
  check_bool "peek empty" true (Heap.peek_min h = None);
  Heap.push h 1.0 "a";
  check_bool "peek" true (Heap.peek_min h = Some (1.0, "a"));
  check_int "size 1" 1 (Heap.size h)

let test_heap_clear () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k k) [ 3.; 1.; 2. ];
  Heap.clear h;
  check_int "cleared" 0 (Heap.size h);
  check_bool "pop after clear" true (Heap.pop_min h = None);
  Heap.push h 5. 5.;
  check_bool "reusable" true (Heap.pop_min h = Some (5., 5.))

(* Out-of-line so the payloads' only strong references are the heap's
   backing array, not this test's stack frame. *)
let[@inline never] heap_fill_weak h w =
  let a = ref 1 and b = ref 2 in
  Weak.set w 0 (Some a);
  Weak.set w 1 (Some b);
  Heap.push h 1. a;
  Heap.push h 2. b

let test_heap_pop_releases () =
  (* Regression: pop_min used to leave the popped entry in the backing
     array, keeping its payload reachable until overwritten (or forever
     on a drained heap). *)
  let h = Heap.create () in
  let w = Weak.create 2 in
  heap_fill_weak h w;
  ignore (Heap.pop_min h);
  Gc.full_major ();
  check_bool "popped payload reclaimed" false (Weak.check w 0);
  check_bool "pending payload still live" true (Weak.check w 1);
  ignore (Heap.pop_min h);
  Gc.full_major ();
  check_bool "drained payload reclaimed" false (Weak.check w 1)

(* ------------------------------------------------------------------ *)
(* Digraph *)

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3 *)
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 3;
  Digraph.add_edge g 0 2;
  Digraph.add_edge g 2 3;
  g

let test_digraph_basics () =
  let g = diamond () in
  check_int "vertices" 4 (Digraph.n_vertices g);
  check_int "edges" 4 (Digraph.n_edges g);
  check_bool "mem" true (Digraph.mem_edge g 0 1);
  check_bool "not mem" false (Digraph.mem_edge g 1 0);
  check_bool "succ 0" true (List.sort compare (Digraph.succ g 0) = [ 1; 2 ]);
  check_bool "pred 3" true (List.sort compare (Digraph.pred g 3) = [ 1; 2 ]);
  Digraph.add_edge g 0 1;
  check_int "parallel ignored" 4 (Digraph.n_edges g)

let test_digraph_sources_sinks () =
  let g = diamond () in
  check_bool "sources" true (Digraph.sources g = [ 0 ]);
  check_bool "sinks" true (Digraph.sinks g = [ 3 ])

let test_topological_sort () =
  let g = diamond () in
  (match Digraph.topological_sort g with
  | None -> Alcotest.fail "dag expected"
  | Some order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      Digraph.iter_edges (fun u v -> check_bool "order respected" true (pos.(u) < pos.(v))) g);
  Digraph.add_edge g 3 0;
  check_bool "cycle detected" true (Digraph.topological_sort g = None);
  check_bool "has_cycle" true (Digraph.has_cycle g)

let test_find_cycle () =
  let g = diamond () in
  check_bool "acyclic" true (Digraph.find_cycle g = None);
  Digraph.add_edge g 3 1;
  match Digraph.find_cycle g with
  | None -> Alcotest.fail "cycle expected"
  | Some cycle ->
      check_bool "length >= 2" true (List.length cycle >= 2);
      (* consecutive vertices are edges and last wraps to first *)
      let arr = Array.of_list cycle in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        check_bool "edge" true (Digraph.mem_edge g arr.(i) arr.((i + 1) mod n))
      done

let test_reachable () =
  let g = diamond () in
  let r = Digraph.reachable g 1 in
  check_bool "reach" true (r.(1) && r.(3) && (not r.(0)) && not r.(2))

let test_transpose () =
  let g = diamond () in
  let t = Digraph.transpose g in
  check_bool "reversed" true (Digraph.mem_edge t 1 0 && Digraph.mem_edge t 3 2);
  check_int "same count" (Digraph.n_edges g) (Digraph.n_edges t)

let test_connected_undirected () =
  let g = diamond () in
  check_bool "connected" true (Digraph.is_connected_undirected g);
  let g2 = Digraph.create 3 in
  Digraph.add_edge g2 0 1;
  check_bool "disconnected" false (Digraph.is_connected_undirected g2)

(* ------------------------------------------------------------------ *)
(* Hopcroft–Karp *)

let check_valid_matching nl nr adj (m : HK.matching) =
  let count = ref 0 in
  for u = 0 to nl - 1 do
    match m.match_l.(u) with
    | -1 -> ()
    | v ->
        incr count;
        check_bool "edge exists" true (List.mem v adj.(u));
        check_int "consistent" u m.match_r.(v)
  done;
  for v = 0 to nr - 1 do
    match m.match_r.(v) with
    | -1 -> ()
    | u -> check_int "consistent r" v m.match_l.(u)
  done;
  check_int "size" m.size !count

(* Exhaustive maximum matching for small graphs. *)
let brute_max_matching nl nr adj =
  ignore nr;
  let best = ref 0 in
  let used_r = Hashtbl.create 8 in
  let rec go u size =
    if u >= nl then best := max !best size
    else begin
      go (u + 1) size;
      List.iter
        (fun v ->
          if not (Hashtbl.mem used_r v) then begin
            Hashtbl.add used_r v ();
            go (u + 1) (size + 1);
            Hashtbl.remove used_r v
          end)
        adj.(u)
    end
  in
  go 0 0;
  !best

let test_hk_simple () =
  (* Perfect matching on a 3x3 cycle-ish graph. *)
  let adj = [| [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] |] in
  let m = HK.run ~nl:3 ~nr:3 adj in
  check_valid_matching 3 3 adj m;
  check_int "perfect" 3 m.size

let test_hk_vs_brute () =
  let rng = Prng.create 77 in
  for _ = 1 to 50 do
    let nl = 1 + Prng.int rng 7 and nr = 1 + Prng.int rng 7 in
    let adj =
      Array.init nl (fun _ ->
          List.filter (fun _ -> Prng.bool rng) (List.init nr Fun.id))
    in
    let m = HK.run ~nl ~nr adj in
    check_valid_matching nl nr adj m;
    check_int "maximum" (brute_max_matching nl nr adj) m.size
  done

let test_greedy_maximal () =
  let rng = Prng.create 13 in
  for _ = 1 to 20 do
    let nl = 1 + Prng.int rng 6 and nr = 1 + Prng.int rng 6 in
    let adj =
      Array.init nl (fun _ -> List.filter (fun _ -> Prng.bool rng) (List.init nr Fun.id))
    in
    let m = HK.greedy ~nl ~nr adj in
    check_valid_matching nl nr adj m;
    (* Maximal: no free-free edge remains. *)
    for u = 0 to nl - 1 do
      if m.match_l.(u) = -1 then
        List.iter (fun v -> check_bool "maximal" true (m.match_r.(v) <> -1)) adj.(u)
    done
  done

let test_rand_matching_maximal () =
  let rng = Prng.create 5 in
  for _ = 1 to 20 do
    let nl = 1 + Prng.int rng 6 and nr = 1 + Prng.int rng 6 in
    let adj =
      Array.init nl (fun _ -> List.filter (fun _ -> Prng.bool rng) (List.init nr Fun.id))
    in
    let m = RM.run rng ~nl ~nr adj in
    check_valid_matching nl nr adj m;
    for u = 0 to nl - 1 do
      if m.match_l.(u) = -1 then
        List.iter (fun v -> check_bool "maximal" true (m.match_r.(v) <> -1)) adj.(u)
    done
  done

let test_rand_matching_varies () =
  (* On a graph with many maximum matchings, different seeds should
     produce different matchings at least once. *)
  let adj = Array.init 6 (fun _ -> List.init 6 Fun.id) in
  let results =
    List.init 10 (fun seed ->
        let m = RM.run (Prng.create seed) ~nl:6 ~nr:6 adj in
        Array.to_list m.match_l)
  in
  check_bool "varies" true (List.length (List.sort_uniq compare results) > 1)

let test_rand_matching_filtered () =
  (* Filter rejecting every edge yields the empty matching. *)
  let adj = Array.init 4 (fun _ -> List.init 4 Fun.id) in
  let m = RM.run_filtered (Prng.create 3) ~nl:4 ~nr:4 adj ~accept:(fun _ _ _ -> false) in
  check_int "empty" 0 m.size

let test_rand_matching_live_size () =
  (* Regression: the matching handed to [accept] used to report size 0
     for the whole run; it must track the edges added so far. *)
  let adj = Array.init 5 (fun _ -> List.init 5 Fun.id) in
  let observed = ref [] in
  let m =
    RM.run_filtered (Prng.create 9) ~nl:5 ~nr:5 adj ~accept:(fun cur _ _ ->
        let live =
          Array.fold_left (fun acc v -> if v <> -1 then acc + 1 else acc) 0 cur.HK.match_l
        in
        check_int "size matches match_l" live cur.HK.size;
        observed := cur.HK.size :: !observed;
        true)
  in
  check_valid_matching 5 5 adj m;
  check_int "final size" 5 m.size;
  (* Full bipartite graph, accept-all: exactly one call per match, so
     accept saw the size climb 0,1,...,4. *)
  check_bool "sizes climb" true (List.rev !observed = [ 0; 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* Shortest paths *)

let weighted_graph () =
  let g = Digraph.create 5 in
  Digraph.add_edge ~weight:1. g 0 1;
  Digraph.add_edge ~weight:4. g 0 2;
  Digraph.add_edge ~weight:2. g 1 2;
  Digraph.add_edge ~weight:5. g 1 3;
  Digraph.add_edge ~weight:1. g 2 3;
  Digraph.add_edge ~weight:3. g 3 4;
  g

let test_dijkstra () =
  let g = weighted_graph () in
  let t = SP.dijkstra g 0 in
  Alcotest.(check (float 1e-9)) "d3" 4. t.SP.dist.(3);
  Alcotest.(check (float 1e-9)) "d4" 7. t.SP.dist.(4);
  check_bool "path" true (SP.path_to t 4 = Some [ 0; 1; 2; 3; 4 ])

let test_dijkstra_unreachable () =
  let g = Digraph.create 3 in
  Digraph.add_edge g 0 1;
  let t = SP.dijkstra g 0 in
  check_bool "unreachable" true (SP.path_to t 2 = None)

let test_dijkstra_blocked () =
  let g = weighted_graph () in
  let blocked_vertices = Array.make 5 false in
  blocked_vertices.(1) <- true;
  let t = SP.dijkstra ~blocked_vertices g 0 in
  check_bool "detour" true (SP.path_to t 3 = Some [ 0; 2; 3 ]);
  let t2 = SP.dijkstra ~blocked_edges:[ (0, 1) ] g 0 in
  check_bool "edge blocked" true (SP.path_to t2 3 = Some [ 0; 2; 3 ])

(* Floyd–Warshall reference for random comparison. *)
let floyd g =
  let n = Digraph.n_vertices g in
  let d = Array.make_matrix n n infinity in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0.
  done;
  for u = 0 to n - 1 do
    List.iter (fun (v, w) -> if w < d.(u).(v) then d.(u).(v) <- w) (Digraph.succ_weighted g u)
  done;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) +. d.(k).(j) < d.(i).(j) then d.(i).(j) <- d.(i).(k) +. d.(k).(j)
      done
    done
  done;
  d

let test_dijkstra_vs_floyd () =
  let rng = Prng.create 31 in
  for _ = 1 to 20 do
    let n = 2 + Prng.int rng 10 in
    let g = Digraph.create n in
    for _ = 1 to 3 * n do
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v then Digraph.add_edge ~weight:(1. +. Prng.float rng 9.) g u v
    done;
    let d = floyd g in
    for src = 0 to n - 1 do
      let t = SP.dijkstra g src in
      for dst = 0 to n - 1 do
        check_bool "agrees" true (abs_float (t.SP.dist.(dst) -. d.(src).(dst)) < 1e-9 ||
                                  (t.SP.dist.(dst) = infinity && d.(src).(dst) = infinity))
      done
    done
  done

let test_dijkstra_target () =
  (* Early exit at the target returns the same path and distance. *)
  let g = weighted_graph () in
  let full = SP.dijkstra g 0 in
  for dst = 0 to 4 do
    let early = SP.dijkstra ~target:dst g 0 in
    check_bool "same path" true (SP.path_to full dst = SP.path_to early dst);
    check_bool "same dist" true (full.SP.dist.(dst) = early.SP.dist.(dst))
  done

let test_dijkstra_workspace () =
  (* A reused workspace matches one-shot runs across sources and
     blocking configurations. *)
  let g = weighted_graph () in
  let ws = SP.workspace g in
  let t1 = SP.dijkstra_ws ws 0 in
  check_bool "first run" true (SP.path_to t1 4 = Some [ 0; 1; 2; 3; 4 ]);
  let t2 = SP.dijkstra_ws ws ~edge_blocked:(fun u v -> u = 0 && v = 1) 0 in
  check_bool "blocked edge, reused state" true (SP.path_to t2 3 = Some [ 0; 2; 3 ]);
  let t3 = SP.dijkstra_ws ws 1 in
  check_bool "new source, reused state" true (SP.path_to t3 4 = Some [ 1; 2; 3; 4 ]);
  let blocked_vertices = Array.make 5 false in
  blocked_vertices.(1) <- true;
  let t4 = SP.dijkstra_ws ws ~blocked_vertices ~target:3 0 in
  check_bool "blocked vertex + target" true (SP.path_to t4 3 = Some [ 0; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Yen *)

let test_yen_basic () =
  let g = weighted_graph () in
  let paths = Yen.k_shortest g ~src:0 ~dst:3 ~k:10 in
  check_bool "first is shortest" true (List.hd paths = [ 0; 1; 2; 3 ]);
  (* weights non-decreasing *)
  let ws = List.map (Yen.path_weight g) paths in
  check_bool "sorted" true (ws = List.sort compare ws);
  (* all loopless and distinct *)
  List.iter
    (fun p -> check_int "loopless" (List.length p) (List.length (List.sort_uniq compare p)))
    paths;
  check_int "distinct" (List.length paths) (List.length (List.sort_uniq compare paths));
  (* 0->3 paths: 012 3? Enumerate: 0-1-2-3 (4), 0-2-3 (5), 0-1-3 (6). *)
  check_int "count" 3 (List.length paths)

let test_yen_k_limit () =
  let g = weighted_graph () in
  check_int "k=1" 1 (List.length (Yen.k_shortest g ~src:0 ~dst:3 ~k:1));
  check_int "k=2" 2 (List.length (Yen.k_shortest g ~src:0 ~dst:3 ~k:2));
  check_bool "k=0" true (Yen.k_shortest g ~src:0 ~dst:3 ~k:0 = [])

let test_yen_no_path () =
  let g = Digraph.create 2 in
  check_bool "empty" true (Yen.k_shortest g ~src:0 ~dst:1 ~k:3 = [])

let test_yen_paths_valid () =
  let rng = Prng.create 11 in
  for _ = 1 to 10 do
    let n = 4 + Prng.int rng 8 in
    let g = Digraph.create n in
    for _ = 1 to 4 * n do
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v then Digraph.add_edge ~weight:(1. +. Prng.float rng 4.) g u v
    done;
    let paths = Yen.k_shortest g ~src:0 ~dst:(n - 1) ~k:5 in
    List.iter
      (fun p ->
        check_bool "starts at src" true (List.hd p = 0);
        check_bool "ends at dst" true (List.nth p (List.length p - 1) = n - 1);
        let rec edges_ok = function
          | [] | [ _ ] -> true
          | u :: (v :: _ as rest) -> Digraph.mem_edge g u v && edges_ok rest
        in
        check_bool "edges exist" true (edges_ok p))
      paths
  done

(* Exhaustive loopless-path enumeration for small graphs. *)
let all_simple_paths g src dst =
  let n = Digraph.n_vertices g in
  let visited = Array.make n false in
  let acc = ref [] in
  let rec go u path =
    if u = dst then acc := List.rev path :: !acc
    else
      List.iter
        (fun (v, _) ->
          if not visited.(v) then begin
            visited.(v) <- true;
            go v (v :: path);
            visited.(v) <- false
          end)
        (Digraph.succ_weighted g u)
  in
  visited.(src) <- true;
  go src [ src ];
  !acc

let prop_yen_vs_brute =
  QCheck.Test.make ~name:"yen agrees with exhaustive k-shortest" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Prng.create (1 + seed) in
      let n = 3 + Prng.int rng 4 in
      let g = Digraph.create n in
      for _ = 1 to 3 * n do
        let u = Prng.int rng n and v = Prng.int rng n in
        (* continuous weights: ties have probability ~0, so the ranking
           is unambiguous *)
        if u <> v then Digraph.add_edge ~weight:(0.5 +. Prng.float rng 9.) g u v
      done;
      let src = 0 and dst = n - 1 in
      let k = 5 in
      let yen = Yen.k_shortest g ~src ~dst ~k in
      let all = all_simple_paths g src dst in
      let weights l = List.sort compare (List.map (Yen.path_weight g) l) in
      let expect =
        List.filteri (fun i _ -> i < k) (weights all)
      in
      List.length yen = min k (List.length all)
      && List.for_all (fun p -> List.mem p all) yen
      && (let got = weights yen in
          List.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) got expect))

(* ------------------------------------------------------------------ *)
(* Union-find *)

let test_union_find () =
  let uf = UF.create 6 in
  check_int "initial classes" 6 (UF.n_classes uf);
  check_bool "union" true (UF.union uf 0 1);
  check_bool "union again" false (UF.union uf 1 0);
  ignore (UF.union uf 2 3);
  ignore (UF.union uf 1 2);
  check_bool "same" true (UF.same uf 0 3);
  check_bool "diff" false (UF.same uf 0 4);
  check_int "classes" 3 (UF.n_classes uf)

let () =
  Alcotest.run "graph"
    [
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "pop releases payload" `Quick test_heap_pop_releases;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "basics" `Quick test_digraph_basics;
          Alcotest.test_case "sources/sinks" `Quick test_digraph_sources_sinks;
          Alcotest.test_case "toposort" `Quick test_topological_sort;
          Alcotest.test_case "find cycle" `Quick test_find_cycle;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "undirected connectivity" `Quick test_connected_undirected;
        ] );
      ( "matching",
        [
          Alcotest.test_case "hk simple" `Quick test_hk_simple;
          Alcotest.test_case "hk vs brute force" `Quick test_hk_vs_brute;
          Alcotest.test_case "greedy maximal" `Quick test_greedy_maximal;
          Alcotest.test_case "random maximal" `Quick test_rand_matching_maximal;
          Alcotest.test_case "random varies" `Quick test_rand_matching_varies;
          Alcotest.test_case "random filtered" `Quick test_rand_matching_filtered;
          Alcotest.test_case "filtered live size" `Quick test_rand_matching_live_size;
        ] );
      ( "shortest paths",
        [
          Alcotest.test_case "dijkstra" `Quick test_dijkstra;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "blocked" `Quick test_dijkstra_blocked;
          Alcotest.test_case "vs floyd" `Quick test_dijkstra_vs_floyd;
          Alcotest.test_case "target early exit" `Quick test_dijkstra_target;
          Alcotest.test_case "workspace reuse" `Quick test_dijkstra_workspace;
        ] );
      ( "yen",
        [
          Alcotest.test_case "basic" `Quick test_yen_basic;
          Alcotest.test_case "k limit" `Quick test_yen_k_limit;
          Alcotest.test_case "no path" `Quick test_yen_no_path;
          Alcotest.test_case "paths valid" `Quick test_yen_paths_valid;
          QCheck_alcotest.to_alcotest prop_yen_vs_brute;
        ] );
      ("union-find", [ Alcotest.test_case "basics" `Quick test_union_find ]);
    ]
