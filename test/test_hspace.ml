(* Unit and property tests for the header-space algebra. *)

module Cube = Hspace.Cube
module Hs = Hspace.Hs
module Header = Hspace.Header
module Prng = Sdn_util.Prng

let cube = Alcotest.testable Cube.pp Cube.equal

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Cube unit tests *)

let test_string_roundtrip () =
  let s = "0010xx1x" in
  check_string "roundtrip" s (Cube.to_string (Cube.of_string s));
  let long = String.concat "" (List.init 20 (fun i -> if i mod 3 = 0 then "x" else "01")) in
  check_string "long roundtrip" long (Cube.to_string (Cube.of_string long))

let test_of_string_invalid () =
  Alcotest.check_raises "bad char" (Invalid_argument "Cube.of_string: bad char 2")
    (fun () -> ignore (Cube.of_string "012"));
  Alcotest.check_raises "empty" (Invalid_argument "Cube.of_string: empty") (fun () ->
      ignore (Cube.of_string ""))

let test_get_set () =
  let c = Cube.of_string "01x" in
  check_bool "get 0" true (Cube.get c 0 = Cube.Zero);
  check_bool "get 1" true (Cube.get c 1 = Cube.One);
  check_bool "get 2" true (Cube.get c 2 = Cube.Any);
  let c' = Cube.set c 2 Cube.One in
  check_string "set" "011" (Cube.to_string c');
  check_string "unchanged" "01x" (Cube.to_string c)

let test_wildcard () =
  let w = Cube.wildcard 70 in
  check_int "length" 70 (Cube.length w);
  check_int "wildcards" 70 (Cube.wildcard_count w);
  check_bool "not concrete" false (Cube.is_concrete w)

let test_inter_basic () =
  let a = Cube.of_string "0010xxxx" and b = Cube.of_string "00x01xxx" in
  (match Cube.inter a b with
  | Some c -> check_string "inter" "00101xxx" (Cube.to_string c)
  | None -> Alcotest.fail "expected Some");
  let d = Cube.of_string "1xxxxxxx" in
  check_bool "disjoint" true (Cube.disjoint a d)

let test_paper_example_intersection () =
  (* §V-B: 00101xxx ∩ 0010xxxx ∩ 00100xxx = ∅ (the illegal MPC path). *)
  let i1 = Cube.inter (Cube.of_string "00101xxx") (Cube.of_string "0010xxxx") in
  (match i1 with
  | Some c -> check_bool "00101 disjoint 00100" true (Cube.disjoint c (Cube.of_string "00100xxx"))
  | None -> Alcotest.fail "expected Some");
  (* §V-A: 0011xxxx ∩ (001xxxxx − 00100xxx) ≠ ∅ — edge (b2, c2). *)
  let c2_in = Hs.diff_cube (Hs.of_cube (Cube.of_string "001xxxxx")) (Cube.of_string "00100xxx") in
  check_bool "b2-c2 edge space" false
    (Hs.is_empty (Hs.inter_cube c2_in (Cube.of_string "0011xxxx")))

let test_subset () =
  check_bool "strict subset" true
    (Cube.subset (Cube.of_string "0010") (Cube.of_string "0x1x"));
  check_bool "not subset" false
    (Cube.subset (Cube.of_string "0x1x") (Cube.of_string "0010"));
  check_bool "reflexive" true (Cube.subset (Cube.of_string "0x1x") (Cube.of_string "0x1x"))

let test_diff_basic () =
  (* x1 - 11 = 01. *)
  let d = Cube.diff (Cube.of_string "x1") (Cube.of_string "11") in
  check_int "one piece" 1 (List.length d);
  Alcotest.check cube "piece" (Cube.of_string "01") (List.hd d);
  (* disjoint: a - b = [a] *)
  let d = Cube.diff (Cube.of_string "00") (Cube.of_string "11") in
  Alcotest.check (Alcotest.list cube) "disjoint" [ Cube.of_string "00" ] d;
  (* subset: a - b = [] *)
  check_bool "swallowed" true
    (List.is_empty (Cube.diff (Cube.of_string "01") (Cube.of_string "0x")))

let test_set_field () =
  (* d1 in Figure 3: T(000xxxxx, 0111xxxx) = 0111xxxx. *)
  let r = Cube.apply_set_field ~set:(Cube.of_string "0111xxxx") (Cube.of_string "000xxxxx") in
  check_string "figure3 d1" "0111xxxx" (Cube.to_string r);
  let id = Cube.wildcard 8 in
  check_string "identity" "000xxxxx"
    (Cube.to_string (Cube.apply_set_field ~set:id (Cube.of_string "000xxxxx")))

let test_inverse_set_field () =
  (* Preimage of 0111xxxx under set 0111xxxx releases the fixed bits. *)
  (match Cube.inverse_set_field ~set:(Cube.of_string "0111xxxx") (Cube.of_string "01111xxx") with
  | Some c -> check_string "released" "xxxx1xxx" (Cube.to_string c)
  | None -> Alcotest.fail "expected Some");
  (* Contradicting target: empty preimage. *)
  check_bool "conflict" true
    (Option.is_none
       (Cube.inverse_set_field ~set:(Cube.of_string "1xxx") (Cube.of_string "0xxx")))

let test_size () =
  Alcotest.(check (float 1e-9)) "full" 256. (Cube.size (Cube.wildcard 8));
  Alcotest.(check (float 1e-9)) "concrete" 1. (Cube.size (Cube.of_string "01010101"))

let test_first_member () =
  let c = Cube.of_string "1x0x" in
  check_string "zeros" "1000" (Cube.to_string (Cube.first_member c));
  check_bool "member" true (Cube.member ~header:(Cube.first_member c) c)

let test_interning () =
  (* Interning is selective: constructor-built cubes are one physical
     object; algebra results ([set], [inter], ...) skip the table (the
     cube.inter/64 fast path) but stay structurally equal, and [equal]
     never depends on identity. *)
  let a = Cube.of_string "0010xx1x" and b = Cube.of_string "0010xx1x" in
  check_bool "of_string interned" true (a == b);
  let c = Cube.set (Cube.of_string "0010xx0x") 6 Cube.One in
  check_bool "set equal" true (Cube.equal a c);
  (match Cube.inter (Cube.of_string "0010xxxx") (Cube.of_string "xxxxxx1x") with
  | Some d ->
      check_bool "inter equal" true (Cube.equal a d);
      check_bool "inter equals set result" true (Cube.equal c d)
  | None -> Alcotest.fail "expected Some");
  check_bool "table non-empty" true (Cube.interned_count () > 0)

let test_hash_long_cubes () =
  (* Regression: hashing used to go through Hashtbl.hash, which stops
     after its meaningful-word budget — cubes differing only in late
     chunks all collided, which the intern table turns into linear
     scans. 64 variants differing only in the last chunk of a 620-bit
     cube must hash apart. *)
  let len = 620 in
  let base = String.init len (fun i -> if i mod 2 = 0 then '0' else '1') in
  let variants =
    List.init 64 (fun i ->
        let b = Bytes.of_string base in
        for j = 0 to 5 do
          if i land (1 lsl j) <> 0 then Bytes.set b (len - 1 - j) 'x'
        done;
        Cube.of_string (Bytes.to_string b))
  in
  let hashes = List.sort_uniq compare (List.map Cube.hash variants) in
  check_int "distinct hashes" 64 (List.length hashes)

(* ------------------------------------------------------------------ *)
(* Hs unit tests *)

let test_hs_union_reduce () =
  let a = Hs.of_cube (Cube.of_string "00xx") in
  let b = Hs.of_cube (Cube.of_string "0011") in
  check_int "subsumed" 1 (Hs.cube_count (Hs.union a b))

let test_hs_diff_inter () =
  let full = Hs.full 4 in
  let a = Hs.diff_cube full (Cube.of_string "1xxx") in
  check_bool "nonempty" false (Hs.is_empty a);
  Alcotest.(check (float 1e-9)) "size 8" 8. (Hs.size a);
  let b = Hs.inter_cube a (Cube.of_string "1xxx") in
  check_bool "empty" true (Hs.is_empty b)

let test_hs_equal_sets () =
  (* {0x} u {x0} = {00, 01, 10} = full - {11} *)
  let lhs = Hs.of_cubes 2 [ Cube.of_string "0x"; Cube.of_string "x0" ] in
  let rhs = Hs.diff_cube (Hs.full 2) (Cube.of_string "11") in
  check_bool "semantic equality" true (Hs.equal_sets lhs rhs);
  check_bool "not equal to full" false (Hs.equal_sets lhs (Hs.full 2))

let test_hs_sample () =
  let rng = Prng.create 42 in
  let hs = Hs.of_cubes 8 [ Cube.of_string "0010xxxx"; Cube.of_string "1111xxxx" ] in
  for _ = 1 to 50 do
    match Hs.sample rng hs with
    | None -> Alcotest.fail "sample from non-empty"
    | Some h ->
        check_bool "concrete" true (Cube.is_concrete h);
        check_bool "member" true (Hs.mem h hs)
  done;
  check_bool "empty sample" true (Option.is_none (Hs.sample rng (Hs.empty 8)))

let test_hs_size_overlapping () =
  (* |{00xx} ∪ {0x1x}| = 4 + 4 - 2 = 6, exact despite the overlap. *)
  let hs = Hs.of_cubes 4 [ Cube.of_string "00xx"; Cube.of_string "0x1x" ] in
  Alcotest.(check (float 1e-9)) "size" 6. (Hs.size hs)

(* ------------------------------------------------------------------ *)
(* Property tests *)

let len = 12

let gen_cube =
  QCheck.Gen.(
    let gen_bit =
      frequency [ (2, return Cube.Zero); (2, return Cube.One); (3, return Cube.Any) ]
    in
    map (fun bits -> Cube.of_bits (Array.of_list bits)) (list_size (return len) gen_bit))

let arb_cube = QCheck.make ~print:Cube.to_string gen_cube

let gen_header =
  QCheck.Gen.(
    map
      (fun bits -> Cube.of_bits (Array.of_list (List.map (fun b -> if b then Cube.One else Cube.Zero) bits)))
      (list_size (return len) bool))

let arb_header = QCheck.make ~print:Cube.to_string gen_header

let prop_inter_commutative =
  QCheck.Test.make ~name:"inter commutative" ~count:500 (QCheck.pair arb_cube arb_cube)
    (fun (a, b) ->
      match (Cube.inter a b, Cube.inter b a) with
      | Some x, Some y -> Cube.equal x y
      | None, None -> true
      | _ -> false)

let prop_inter_membership =
  QCheck.Test.make ~name:"h ∈ a∩b ⟺ h ∈ a ∧ h ∈ b" ~count:500
    (QCheck.triple arb_header arb_cube arb_cube)
    (fun (h, a, b) ->
      let in_inter =
        match Cube.inter a b with Some c -> Cube.member ~header:h c | None -> false
      in
      in_inter = (Cube.member ~header:h a && Cube.member ~header:h b))

let prop_diff_membership =
  QCheck.Test.make ~name:"h ∈ a−b ⟺ h ∈ a ∧ h ∉ b" ~count:500
    (QCheck.triple arb_header arb_cube arb_cube)
    (fun (h, a, b) ->
      let pieces = Cube.diff a b in
      let in_diff = List.exists (fun c -> Cube.member ~header:h c) pieces in
      in_diff = (Cube.member ~header:h a && not (Cube.member ~header:h b)))

let prop_diff_disjoint_pieces =
  QCheck.Test.make ~name:"diff pieces pairwise disjoint" ~count:300
    (QCheck.pair arb_cube arb_cube)
    (fun (a, b) ->
      let pieces = Array.of_list (Cube.diff a b) in
      let n = Array.length pieces in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if not (Cube.disjoint pieces.(i) pieces.(j)) then ok := false
        done
      done;
      !ok)

let prop_subset_via_diff =
  QCheck.Test.make ~name:"subset a b ⟺ a−b = ∅" ~count:500
    (QCheck.pair arb_cube arb_cube)
    (fun (a, b) -> Cube.subset a b = List.is_empty (Cube.diff a b))

let prop_sample_member =
  QCheck.Test.make ~name:"sample lies in cube" ~count:500 arb_cube (fun c ->
      let rng = Prng.create (Cube.hash c) in
      let h = Cube.sample rng c in
      Cube.is_concrete h && Cube.member ~header:h c)

let prop_set_field_member =
  QCheck.Test.make ~name:"T(h,s) ∈ T(c,s) for h ∈ c" ~count:500
    (QCheck.pair arb_cube arb_cube)
    (fun (c, s) ->
      let rng = Prng.create 7 in
      let h = Cube.sample rng c in
      let h' = Cube.apply_set_field ~set:s h in
      Cube.member ~header:h' (Cube.apply_set_field ~set:s c))

let prop_inverse_set_field =
  QCheck.Test.make ~name:"inverse_set_field is the preimage" ~count:500
    (QCheck.triple arb_header arb_cube arb_cube)
    (fun (h, s, target) ->
      let image_in = Cube.member ~header:(Cube.apply_set_field ~set:s h) target in
      let preimage_in =
        match Cube.inverse_set_field ~set:s target with
        | None -> false
        | Some pre -> Cube.member ~header:h pre
      in
      image_in = preimage_in)

let prop_nth_member =
  QCheck.Test.make ~name:"nth_member: concrete, contained, injective below size"
    ~count:300
    (QCheck.pair arb_cube (QCheck.int_bound 200))
    (fun (c, k) ->
      let h = Cube.nth_member c k in
      Cube.is_concrete h
      && Cube.member ~header:h c
      &&
      let size = int_of_float (Cube.size c) in
      (* Distinct indices below the cube's size give distinct members. *)
      k + 1 >= size || not (Cube.equal h (Cube.nth_member c (k + 1))))

let prop_hs_diff_union =
  QCheck.Test.make ~name:"(a−b) ∪ (a∩b) = a (as sets)" ~count:200
    (QCheck.pair arb_cube arb_cube)
    (fun (a, b) ->
      let ha = Hs.of_cube a and hb = Hs.of_cube b in
      Hs.equal_sets (Hs.union (Hs.diff ha hb) (Hs.inter ha hb)) ha)

let prop_hs_size_additive =
  QCheck.Test.make ~name:"|a| = |a−b| + |a∩b|" ~count:200
    (QCheck.pair arb_cube arb_cube)
    (fun (a, b) ->
      let ha = Hs.of_cube a and hb = Hs.of_cube b in
      let lhs = Hs.size ha in
      let rhs = Hs.size (Hs.diff ha hb) +. Hs.size (Hs.inter ha hb) in
      abs_float (lhs -. rhs) < 1e-6)

let arb_cube_list =
  QCheck.make
    ~print:(fun l -> String.concat " u " (List.map Cube.to_string l))
    QCheck.Gen.(list_size (int_range 0 6) gen_cube)

let prop_reduce_canonical =
  QCheck.Test.make ~name:"reduce: idempotent, order-insensitive, set-preserving"
    ~count:300 arb_cube_list (fun cubes ->
      let t = Hs.of_cubes len cubes in
      let r = Hs.reduce t in
      Hs.equal_sets r t
      && List.equal Cube.equal (Hs.cubes (Hs.reduce r)) (Hs.cubes r)
      && List.equal Cube.equal
           (Hs.cubes (Hs.reduce (Hs.of_cubes len (List.rev cubes))))
           (Hs.cubes r))

let prop_disjoint_cubes =
  QCheck.Test.make ~name:"disjoint_cubes: pairwise disjoint, sizes sum, same set"
    ~count:300 arb_cube_list (fun cubes ->
      let t = Hs.of_cubes len cubes in
      let pieces = Hs.disjoint_cubes t in
      let arr = Array.of_list pieces in
      let pairwise = ref true in
      for i = 0 to Array.length arr - 1 do
        for j = i + 1 to Array.length arr - 1 do
          if not (Cube.disjoint arr.(i) arr.(j)) then pairwise := false
        done
      done;
      !pairwise
      && abs_float
           (List.fold_left (fun acc c -> acc +. Cube.size c) 0. pieces -. Hs.size t)
         < 1e-6
      && Hs.equal_sets (Hs.of_cubes len pieces) t)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_inter_commutative;
      prop_inter_membership;
      prop_diff_membership;
      prop_diff_disjoint_pieces;
      prop_subset_via_diff;
      prop_sample_member;
      prop_set_field_member;
      prop_inverse_set_field;
      prop_nth_member;
      prop_hs_diff_union;
      prop_hs_size_additive;
      prop_reduce_canonical;
      prop_disjoint_cubes;
    ]

let () =
  Alcotest.run "hspace"
    [
      ( "cube",
        [
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "of_string invalid" `Quick test_of_string_invalid;
          Alcotest.test_case "get/set" `Quick test_get_set;
          Alcotest.test_case "wildcard" `Quick test_wildcard;
          Alcotest.test_case "inter basic" `Quick test_inter_basic;
          Alcotest.test_case "paper intersections" `Quick test_paper_example_intersection;
          Alcotest.test_case "subset" `Quick test_subset;
          Alcotest.test_case "diff basic" `Quick test_diff_basic;
          Alcotest.test_case "set field" `Quick test_set_field;
          Alcotest.test_case "inverse set field" `Quick test_inverse_set_field;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "first member" `Quick test_first_member;
          Alcotest.test_case "interning" `Quick test_interning;
          Alcotest.test_case "hash beyond word budget" `Quick test_hash_long_cubes;
        ] );
      ( "hs",
        [
          Alcotest.test_case "union reduce" `Quick test_hs_union_reduce;
          Alcotest.test_case "diff/inter" `Quick test_hs_diff_inter;
          Alcotest.test_case "equal sets" `Quick test_hs_equal_sets;
          Alcotest.test_case "sample" `Quick test_hs_sample;
          Alcotest.test_case "size overlapping" `Quick test_hs_size_overlapping;
        ] );
      ("properties", props);
    ]
