(* Pipeline sessions: incremental re-planning is byte-identical to
   planning from scratch, patches certify, and corrupted patches are
   rejected.

   The byte-identity property is the pipeline's determinism contract
   (lib/pipeline/pipeline.mli): after any sequence of [Pipeline.apply]
   batches, the session's plan — probes, headers, ids — and its
   certificate JSON equal those of [Pipeline.create] on the mutated
   network, at every domain count. *)

module N = Openflow.Network
module FE = Openflow.Flow_entry
module Edits = Sdn_util.Edits
module Prng = Sdn_util.Prng
module Plan = Sdnprobe.Plan
module Probe = Sdnprobe.Probe
module Certify = Sdnprobe.Certify

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_net ~switches ~seed =
  let rng = Prng.create seed in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:switches () in
  Topogen.Rule_gen.install rng topo

(* Remove-then-reinstall churn, the same shape [sdnprobe edits] emits:
   victims are drawn from the live table — without replacement, since
   the batch is built against a snapshot and a double draw would emit a
   second [Remove] for an id the first one already deleted. *)
let churn_batch rng net ~ops =
  let chosen = Hashtbl.create 8 in
  List.concat
    (List.init ops (fun _ ->
         let entries = N.all_entries net in
         let victim =
           let rec draw () =
             let v = List.nth entries (Prng.int rng (List.length entries)) in
             if Hashtbl.mem chosen v.FE.id then draw ()
             else begin
               Hashtbl.add chosen v.FE.id ();
               v
             end
           in
           draw ()
         in
         [
           Edits.Remove victim.FE.id;
           Edits.Add
             {
               Edits.switch = victim.FE.switch;
               table = victim.FE.table;
               priority = victim.FE.priority;
               match_ = Hspace.Cube.to_string victim.FE.match_;
               set_field = Some (Hspace.Cube.to_string victim.FE.set_field);
               action =
                 (match victim.FE.action with
                 | FE.Drop -> Edits.Drop
                 | FE.Output p -> Edits.Output p
                 | FE.Goto_table t -> Edits.Goto_table t);
             };
         ]))

let probe_repr (p : Probe.t) =
  ( p.Probe.id,
    p.Probe.rules,
    Hspace.Header.to_string p.Probe.header,
    Hspace.Header.to_string p.Probe.expected_header,
    p.Probe.inject_switch,
    p.Probe.terminal_switch,
    p.Probe.terminal_rule )

let plan_repr (plan : Plan.t) = List.map probe_repr plan.Plan.probes

let cert_json plan =
  Sdn_util.Json.to_string (Certify.to_json (Certify.run ~seed:11 plan))

(* The property: [batches] batches of [ops] remove+reinstall pairs,
   then compare the incrementally-maintained session against a scratch
   session on the same (mutated) network. Returns false on the first
   divergence. Also checks every patch against [Certify.run_patch]. *)
let churn_identity ~domains ~seed ~batches ~ops =
  let pool = if domains = 1 then None else Some (Sdn_parallel.pool ~domains) in
  let net = make_net ~switches:8 ~seed in
  let session = ref (Pipeline.create ?pool net) in
  let rng = Prng.create (seed + 7919) in
  let ok = ref true in
  for batch = 1 to batches do
    let before = (Pipeline.plan !session).Plan.probes in
    let edits = churn_batch rng net ~ops in
    let s', patch = Pipeline.apply !session edits in
    session := s';
    let after = Pipeline.plan s' in
    (* Patch certifies against the pre/post plans. *)
    let event =
      Sdnprobe.Report.patch_event_of_patch ~batch
        ~plan_size_after:(List.length after.Plan.probes) ~apply_s:0. patch
    in
    if
      not
        (Certify.ok_report
           (Certify.run_patch ~seed:11 ~event ~before ~patch after))
    then ok := false;
    (* Byte-identity against a scratch re-plan. *)
    let fresh = Pipeline.create ?pool net in
    if plan_repr after <> plan_repr (Pipeline.plan fresh) then ok := false;
    if cert_json after <> cert_json (Pipeline.plan fresh) then ok := false
  done;
  !ok

let test_churn_identity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"apply = scratch re-plan (bytes), domains 1 and 4"
       ~count:6
       QCheck.(pair (int_bound 1000) (1 -- 3))
       (fun (seed, ops) ->
         churn_identity ~domains:1 ~seed ~batches:3 ~ops
         && churn_identity ~domains:4 ~seed ~batches:3 ~ops))

(* ------------------------------------------------------------------ *)
(* Deterministic fixed cases (fast, non-random) *)

let apply_once ?(switches = 8) ~seed ~ops () =
  let net = make_net ~switches ~seed in
  let session = Pipeline.create net in
  let before = (Pipeline.plan session).Plan.probes in
  let rng = Prng.create (seed + 7919) in
  let edits = churn_batch rng net ~ops in
  let session', patch = Pipeline.apply session edits in
  (before, patch, Pipeline.plan session')

let test_empty_batch () =
  let net = make_net ~switches:8 ~seed:1 in
  let session = Pipeline.create net in
  let session', patch = Pipeline.apply session [] in
  check_bool "empty patch" true (Plan.patch_is_empty patch);
  check_int "epoch unchanged" 0 (Pipeline.epoch session')

let test_patch_certifies () =
  let before, patch, after = apply_once ~seed:3 ~ops:2 () in
  let report = Certify.run_patch ~seed:11 ~before ~patch after in
  if not (Certify.ok_report report) then
    Alcotest.fail (Format.asprintf "%a" Certify.pp report)

let test_edit_error_on_missing_id () =
  let net = make_net ~switches:8 ~seed:1 in
  let session = Pipeline.create net in
  match Pipeline.apply session [ Edits.Remove 999_999 ] with
  | exception Pipeline.Edit_error _ -> ()
  | _ -> Alcotest.fail "missing entry id accepted"

(* ------------------------------------------------------------------ *)
(* Mutation negatives: a corrupted patch must not certify. The checker
   is pure accounting over the before/after probe multisets, so every
   mutation below breaks one of its identities. *)

let fails_with ~name before patch after =
  let report = Certify.run_patch ~seed:11 ~before ~patch after in
  check_bool name false (Certify.ok_report report)

let test_rejects_dropped_added () =
  let before, patch, after = apply_once ~seed:5 ~ops:2 () in
  match patch.Plan.added with
  | [] -> Alcotest.fail "churn produced no added probes"
  | _ :: rest ->
      fails_with ~name:"dropped added probe rejected" before
        { patch with Plan.added = rest }
        after

let test_rejects_dropped_removed () =
  let before, patch, after = apply_once ~seed:5 ~ops:2 () in
  match patch.Plan.removed with
  | [] -> Alcotest.fail "churn produced no removed probes"
  | _ :: rest ->
      fails_with ~name:"dropped removed probe rejected" before
        { patch with Plan.removed = rest }
        after

let test_rejects_corrupted_header () =
  let before, patch, after = apply_once ~seed:5 ~ops:2 () in
  match patch.Plan.added with
  | [] -> Alcotest.fail "churn produced no added probes"
  | p :: rest ->
      let s = Hspace.Header.to_string p.Probe.header in
      let flipped =
        String.mapi (fun i c -> if i = 0 then (if c = '0' then '1' else '0') else c) s
      in
      let p' = { p with Probe.header = Hspace.Header.of_string flipped } in
      fails_with ~name:"corrupted header rejected" before
        { patch with Plan.added = p' :: rest }
        after

let test_rejects_phantom_removed () =
  let before, patch, after = apply_once ~seed:5 ~ops:2 () in
  match before with
  | [] -> Alcotest.fail "empty before-plan"
  | p :: _ ->
      (* Claim a probe that survived untouched was removed: the
         survivor multisets no longer agree. *)
      let survivor =
        List.find_opt
          (fun (q : Probe.t) ->
            not (List.exists (fun (r : Probe.t) -> r.Probe.id = q.Probe.id)
                   (patch.Plan.removed
                   @ List.map fst patch.Plan.rewritten)))
          before
      in
      let victim = Option.value survivor ~default:p in
      fails_with ~name:"phantom removal rejected" before
        { patch with Plan.removed = victim :: patch.Plan.removed }
        after

let () =
  Alcotest.run "pipeline"
    [
      ( "identity",
        [
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
          Alcotest.test_case "patch certifies" `Quick test_patch_certifies;
          Alcotest.test_case "edit error" `Quick test_edit_error_on_missing_id;
          test_churn_identity;
        ] );
      ( "mutation-negatives",
        [
          Alcotest.test_case "dropped added" `Quick test_rejects_dropped_added;
          Alcotest.test_case "dropped removed" `Quick test_rejects_dropped_removed;
          Alcotest.test_case "corrupted header" `Quick test_rejects_corrupted_header;
          Alcotest.test_case "phantom removed" `Quick test_rejects_phantom_removed;
        ] );
    ]
