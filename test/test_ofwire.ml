(* Tests for the OpenFlow 1.3 wire codec: byte-level layout against the
   spec, roundtrip properties, framing errors, and a full
   policy-over-the-wire integration check. *)

module W = Ofwire.Byte_io.Writer
module R = Ofwire.Byte_io.Reader
module M = Ofwire.Message
module Driver = Ofwire.Driver
module Cube = Hspace.Cube
module Header = Hspace.Header
module FE = Openflow.Flow_entry
module Prng = Sdn_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Byte_io *)

let test_writer_reader_roundtrip () =
  let w = W.create () in
  W.u8 w 0xab;
  W.u16 w 0x1234;
  W.u32 w 0xdeadbeefl;
  W.u64 w 0x0123456789abcdefL;
  W.raw w (Bytes.of_string "xyz");
  W.pad w 3;
  let b = W.contents w in
  check_int "length" (1 + 2 + 4 + 8 + 3 + 3) (Bytes.length b);
  let r = R.of_bytes b in
  check_int "u8" 0xab (R.u8 r);
  check_int "u16" 0x1234 (R.u16 r);
  check_bool "u32" true (R.u32 r = 0xdeadbeefl);
  check_bool "u64" true (R.u64 r = 0x0123456789abcdefL);
  check_bool "raw" true (Bytes.to_string (R.raw r 3) = "xyz");
  check_int "padding remains" 3 (R.remaining r)

let test_reader_truncated () =
  let r = R.of_bytes (Bytes.make 3 '\000') in
  R.skip r 2;
  Alcotest.check_raises "over-read" Ofwire.Byte_io.Truncated (fun () -> ignore (R.u16 r))

let test_writer_patch () =
  let w = W.create () in
  W.u16 w 0;
  W.u32 w 5l;
  W.patch_u16 w ~pos:0 42;
  check_int "patched" 42 (R.u16 (R.of_bytes (W.contents w)))

(* ------------------------------------------------------------------ *)
(* Byte-level layout (OF1.3 spec §A.1) *)

let test_hello_layout () =
  let b = M.encode ~xid:7l M.Hello in
  check_int "length" 8 (Bytes.length b);
  check_int "version 0x04" 0x04 (Bytes.get_uint8 b 0);
  check_int "type HELLO=0" 0 (Bytes.get_uint8 b 1);
  check_int "length field" 8 (Bytes.get_uint16_be b 2);
  check_bool "xid" true (Bytes.get_int32_be b 4 = 7l)

let test_echo_layout () =
  let b = M.encode ~xid:1l (M.Echo_request (Bytes.of_string "ping")) in
  check_int "type ECHO_REQUEST=2" 2 (Bytes.get_uint8 b 1);
  check_int "length" 12 (Bytes.get_uint16_be b 2)

let test_flow_mod_layout () =
  let fm =
    {
      M.cookie = 99L;
      table_id = 1;
      command = `Add;
      priority = 20;
      match_ = Cube.of_string (String.make 32 'x');
      instructions = [ M.Apply_actions [ M.Output 3 ] ];
    }
  in
  let b = M.encode ~xid:2l (M.Flow_mod fm) in
  check_int "type FLOW_MOD=14" 14 (Bytes.get_uint8 b 1);
  check_bool "cookie at offset 8" true (Bytes.get_int64_be b 8 = 99L);
  check_int "table_id at 24" 1 (Bytes.get_uint8 b 24);
  check_int "command ADD" 0 (Bytes.get_uint8 b 25);
  check_int "priority at 30" 20 (Bytes.get_uint16_be b 30);
  (* match begins at offset 48: type=1 (OXM) *)
  check_int "match type OXM" 1 (Bytes.get_uint16_be b 48);
  check_int "whole message length" (Bytes.length b) (Bytes.get_uint16_be b 2)

let test_lengths_multiple_of_8 () =
  (* Flow mods and packet-outs must stay 8-byte aligned (spec padding
     rules). *)
  let rng = Prng.create 4 in
  for _ = 1 to 50 do
    let fm =
      {
        M.cookie = Int64.of_int (Prng.int rng 1000);
        table_id = Prng.int rng 4;
        command = (if Prng.bool rng then `Add else `Delete);
        priority = Prng.int rng 100;
        match_ = Cube.random rng 32;
        instructions =
          (if Prng.bool rng then
             [ M.Apply_actions [ M.Set_field (Cube.random rng 32); M.Output (Prng.int rng 10) ] ]
           else [ M.Goto_table (Prng.int rng 4) ]);
      }
    in
    let b = M.encode ~xid:0l (M.Flow_mod fm) in
    check_int "8-aligned" 0 (Bytes.length b mod 8)
  done

(* ------------------------------------------------------------------ *)
(* Roundtrips *)

let roundtrip ?(header_len = 32) msg =
  let b = M.encode ~xid:77l msg in
  match M.decode ~header_len b with
  | Ok ((xid, decoded), consumed) ->
      check_bool "xid" true (xid = 77l);
      check_int "consumed everything" (Bytes.length b) consumed;
      decoded
  | Error _ -> Alcotest.fail "decode failed"

let test_roundtrip_simple () =
  List.iter
    (fun msg -> check_bool "same" true (roundtrip msg = msg))
    [
      M.Hello;
      M.Echo_request (Bytes.of_string "abc");
      M.Echo_reply Bytes.empty;
      M.Features_request;
      M.Features_reply { M.datapath_id = 42L; n_buffers = 256l; n_tables = 4 };
      M.Barrier_request;
      M.Barrier_reply;
      M.Error_msg { err_type = 1; err_code = 5; data = Bytes.of_string "ctx" };
    ]

let cube_equal_msg a b =
  match (a, b) with
  | M.Flow_mod x, M.Flow_mod y ->
      x.M.cookie = y.M.cookie && x.M.table_id = y.M.table_id
      && x.M.command = y.M.command && x.M.priority = y.M.priority
      && Cube.equal x.M.match_ y.M.match_
      &&
      let act_eq p q =
        match (p, q) with
        | M.Output i, M.Output j -> i = j
        | M.Set_field c, M.Set_field d -> Cube.equal c d
        | _ -> false
      in
      List.length x.M.instructions = List.length y.M.instructions
      && List.for_all2
           (fun i j ->
             match (i, j) with
             | M.Goto_table a, M.Goto_table b -> a = b
             | M.Apply_actions a, M.Apply_actions b ->
                 List.length a = List.length b && List.for_all2 act_eq a b
             | _ -> false)
           x.M.instructions y.M.instructions
  | _ -> a = b

let test_roundtrip_flow_mod_random () =
  let rng = Prng.create 11 in
  for _ = 1 to 100 do
    let fm =
      {
        M.cookie = Sdn_util.Prng.bits64 rng;
        table_id = Prng.int rng 8;
        command = (if Prng.bool rng then `Add else `Delete);
        priority = Prng.int rng 1000;
        match_ = Cube.random rng (1 + Prng.int rng 64);
        instructions =
          (match Prng.int rng 3 with
          | 0 -> [ M.Apply_actions [ M.Output (Prng.int rng 100) ] ]
          | 1 ->
              [
                M.Apply_actions
                  [ M.Set_field (Cube.random rng (1 + Prng.int rng 64)) ];
                M.Goto_table (Prng.int rng 8);
              ]
          | _ -> [ M.Goto_table (Prng.int rng 8) ]);
      }
    in
    (* decode needs the cube lengths; use a fixed length for this test *)
    let len = Cube.length fm.M.match_ in
    let fm =
      {
        fm with
        M.instructions =
          List.map
            (function
              | M.Apply_actions acts ->
                  M.Apply_actions
                    (List.map
                       (function
                         | M.Set_field _ -> M.Set_field (Cube.random rng len)
                         | a -> a)
                       acts)
              | i -> i)
            fm.M.instructions;
      }
    in
    check_bool "flow-mod roundtrip" true
      (cube_equal_msg (M.Flow_mod fm) (roundtrip ~header_len:len (M.Flow_mod fm)))
  done

let test_roundtrip_packet_out_in () =
  let po =
    M.Packet_out
      { M.actions = [ M.Output 0xfffffff9 ]; payload = Bytes.of_string "payload!" }
  in
  check_bool "packet-out" true (roundtrip po = po);
  let pi =
    M.Packet_in
      { M.reason = 1; table_id = 2; cookie = 5L; payload = Bytes.of_string "ret" }
  in
  check_bool "packet-in" true (roundtrip pi = pi)

let test_decode_stream () =
  let b =
    Bytes.concat Bytes.empty
      [
        M.encode ~xid:1l M.Hello;
        M.encode ~xid:2l M.Features_request;
        M.encode ~xid:3l M.Barrier_request;
      ]
  in
  match M.decode_all b with
  | Ok [ (1l, M.Hello); (2l, M.Features_request); (3l, M.Barrier_request) ] -> ()
  | _ -> Alcotest.fail "stream decode mismatch"

let test_decode_errors () =
  (* Truncated header. *)
  (match M.decode (Bytes.make 4 '\000') with
  | Error M.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated");
  (* Bad version. *)
  let b = M.encode ~xid:1l M.Hello in
  Bytes.set_uint8 b 0 0x01;
  (match M.decode b with
  | Error (M.Bad_version 1) -> ()
  | _ -> Alcotest.fail "expected Bad_version");
  (* Length promising more bytes than available. *)
  let b = M.encode ~xid:1l M.Hello in
  Bytes.set_uint16_be b 2 64;
  (match M.decode b with
  | Error M.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated on short body");
  (* Unsupported type. *)
  let b = M.encode ~xid:1l M.Hello in
  Bytes.set_uint8 b 1 19 (* QUEUE_GET_CONFIG *);
  match M.decode b with
  | Error (M.Unsupported 19) -> ()
  | _ -> Alcotest.fail "expected Unsupported"

(* ------------------------------------------------------------------ *)
(* Hostile inputs: adversarial length fields must fail cleanly.

   [Reader.need] used to test [cursor + n > limit], which a negative
   [n] (from a length field smaller than the bytes already consumed)
   passes — the cursor then moved {e backwards}, and a decoder loop
   bounded by reader position re-read the same bytes forever. *)

let test_reader_negative_n () =
  let r = R.of_bytes (Bytes.make 8 '\000') in
  R.skip r 4;
  Alcotest.check_raises "negative skip" Ofwire.Byte_io.Truncated (fun () ->
      R.skip r (-2));
  Alcotest.check_raises "negative raw" Ofwire.Byte_io.Truncated (fun () ->
      ignore (R.raw r (-1)));
  (* huge n must not wrap around either *)
  Alcotest.check_raises "huge skip" Ofwire.Byte_io.Truncated (fun () ->
      R.skip r max_int);
  check_int "cursor unmoved by failed reads" 4 (R.pos r)

let test_reader_of_bytes_bounds () =
  let b = Bytes.make 8 '\000' in
  Alcotest.check_raises "negative pos" (Invalid_argument "Reader.of_bytes")
    (fun () -> ignore (R.of_bytes ~pos:(-1) b));
  Alcotest.check_raises "negative len" (Invalid_argument "Reader.of_bytes")
    (fun () -> ignore (R.of_bytes ~pos:4 ~len:(-2) b));
  Alcotest.check_raises "window past the end" (Invalid_argument "Reader.of_bytes")
    (fun () -> ignore (R.of_bytes ~pos:4 ~len:8 b))

let test_hostile_action_length () =
  (* A PACKET_OUT whose set-field action announces length 0: the
     decoder consumes 24 bytes of OXM, then the length field tells it
     to skip -24 — pre-fix the cursor walked back to the action start
     and [read_actions] looped forever. Post-fix: a clean error. *)
  let b =
    M.encode ~xid:1l
      (M.Packet_out
         {
           M.actions = [ M.Set_field (Cube.of_string (String.make 64 'x')) ];
           payload = Bytes.of_string "p";
         })
  in
  (* ofp_packet_out: header 8 + buffer_id 4 + in_port 4 + actions_len 2
     + pad 6 = 24; the action's length field is at offset 26. *)
  check_int "action type is set-field" 25 (Bytes.get_uint16_be b 24);
  Bytes.set_uint16_be b 26 0;
  match M.decode ~header_len:64 b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hostile action length decoded successfully"

let test_hostile_match_length () =
  (* Same attack on a flow mod's match length (offset 50): the padding
     skip [padded - consumed] goes negative. *)
  let fm =
    {
      M.cookie = 1L;
      table_id = 0;
      command = `Add;
      priority = 1;
      match_ = Cube.of_string "1010";
      instructions = [ M.Goto_table 1 ];
    }
  in
  let b = M.encode ~xid:1l (M.Flow_mod fm) in
  Bytes.set_uint16_be b 50 5;
  match M.decode ~header_len:4 b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hostile match length decoded successfully"

(* ------------------------------------------------------------------ *)
(* QCheck properties: encode/decode is the identity on every message
   variant (including max-size cubes and zero payloads), and decode
   never raises on arbitrary bytes. *)

let gen_msg =
  let open QCheck.Gen in
  let gen_bytes = map Bytes.of_string (string_size ~gen:printable (0 -- 32)) in
  let gen_cube header_len =
    map
      (fun bits ->
        Cube.of_string
          (String.init header_len (fun i ->
               match List.nth bits i with 0 -> '0' | 1 -> '1' | _ -> 'x')))
      (list_repeat header_len (0 -- 2))
  in
  let* header_len = oneof [ return 64; 1 -- 64 ] in
  let gen_action =
    oneof
      [
        map (fun p -> M.Output p) (oneof [ 0 -- 0xffff; return 0xfffffff9 ]);
        map (fun c -> M.Set_field c) (gen_cube header_len);
      ]
  in
  let gen_instruction =
    oneof
      [
        map (fun acts -> M.Apply_actions acts) (list_size (1 -- 3) gen_action);
        map (fun t -> M.Goto_table t) (0 -- 255);
      ]
  in
  let+ msg =
    oneof
      [
        return M.Hello;
        map (fun b -> M.Echo_request b) gen_bytes;
        map (fun b -> M.Echo_reply b) gen_bytes;
        return M.Features_request;
        (let* dp = map Int64.of_int (0 -- 1_000_000) in
         let* nb = map Int32.of_int (0 -- 1_000_000) in
         let+ nt = 0 -- 255 in
         M.Features_reply { M.datapath_id = dp; n_buffers = nb; n_tables = nt });
        (let* cookie = map Int64.of_int (0 -- 1_000_000) in
         let* table_id = 0 -- 255 in
         let* command = oneofl [ `Add; `Delete ] in
         let* priority = 0 -- 0xffff in
         let* match_ = gen_cube header_len in
         let+ instructions = list_size (0 -- 3) gen_instruction in
         M.Flow_mod { M.cookie; table_id; command; priority; match_; instructions });
        (let* actions = list_size (0 -- 3) gen_action in
         let+ payload = gen_bytes in
         M.Packet_out { M.actions; payload });
        (let* reason = 0 -- 255 in
         let* table_id = 0 -- 255 in
         let* cookie = map Int64.of_int (0 -- 1_000_000) in
         let+ payload = gen_bytes in
         M.Packet_in { M.reason; table_id; cookie; payload });
        return M.Barrier_request;
        return M.Barrier_reply;
        (let* err_type = 0 -- 0xffff in
         let* err_code = 0 -- 0xffff in
         let+ data = gen_bytes in
         M.Error_msg { err_type; err_code; data });
      ]
  in
  (header_len, msg)

let act_equal p q =
  match (p, q) with
  | M.Output i, M.Output j -> i = j
  | M.Set_field c, M.Set_field d -> Cube.equal c d
  | _ -> false

let msg_equal a b =
  match (a, b) with
  | M.Flow_mod _, M.Flow_mod _ -> cube_equal_msg a b
  | M.Packet_out x, M.Packet_out y ->
      Bytes.equal x.M.payload y.M.payload
      && List.length x.M.actions = List.length y.M.actions
      && List.for_all2 act_equal x.M.actions y.M.actions
  | _ -> a = b

let test_qcheck_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"encode -> decode = id" ~count:500
       (QCheck.make gen_msg) (fun (header_len, msg) ->
         let b = M.encode ~xid:9l msg in
         match M.decode ~header_len b with
         | Ok ((9l, decoded), consumed) ->
             consumed = Bytes.length b && msg_equal msg decoded
         | _ -> false))

let test_qcheck_decode_total =
  (* Arbitrary bytes: decode returns, it never raises or hangs. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"decode never crashes on random bytes" ~count:2000
       QCheck.(string_of_size Gen.(0 -- 200))
       (fun s ->
         match M.decode ~header_len:32 (Bytes.of_string s) with
         | Ok _ | Error _ -> true))

let test_qcheck_decode_mutated =
  (* Valid encodes with flipped bytes: worst case for the framing
     logic, since most of the structure still looks plausible. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"decode never crashes on mutated encodes" ~count:500
       QCheck.(triple (make gen_msg) small_nat small_nat)
       (fun ((header_len, msg), pos, value) ->
         let b = M.encode ~xid:3l msg in
         Bytes.set_uint8 b (pos mod Bytes.length b) (value land 0xff);
         match M.decode ~header_len b with
         | Ok _ | Error _ -> true
         | exception Invalid_argument _ -> false))

(* ------------------------------------------------------------------ *)
(* Driver: a whole policy over the wire *)

let test_probe_payload_roundtrip () =
  let { Fixtures.cnet; r_a; r_b; r_c } = Fixtures.chain3 () in
  let p =
    Sdnprobe.Probe.make cnet ~id:1234
      ~rules:[ r_a.FE.id; r_b.FE.id; r_c.FE.id ]
      ~header:(Header.of_string "10110001")
  in
  match Driver.parse_probe_payload ~header_len:8 (Driver.probe_payload p) with
  | Some (id, h) ->
      check_int "probe id" 1234 id;
      check_bool "header" true (Header.equal h (Header.of_string "10110001"))
  | None -> Alcotest.fail "payload did not parse"

let test_policy_over_the_wire () =
  (* Serialize a realistic policy switch by switch, decode it as the
     switches would, and check the reconstructed network forwards every
     sampled packet identically. *)
  let rng = Prng.create 5 in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:10 () in
  let net = Topogen.Rule_gen.install rng topo in
  let streams = Driver.policy_streams net in
  check_int "one stream per switch" (Openflow.Network.n_switches net)
    (List.length streams);
  match Driver.apply_policy ~header_len:32 topo streams with
  | Error _ -> Alcotest.fail "policy replay failed"
  | Ok net2 ->
      check_int "same rule count" (Openflow.Network.n_entries net)
        (Openflow.Network.n_entries net2);
      let emu1 = Dataplane.Emulator.create net in
      let emu2 = Dataplane.Emulator.create net2 in
      let entries = Array.of_list (Openflow.Network.all_entries net) in
      for _ = 1 to 200 do
        let e = Prng.choose rng entries in
        let header = Header.of_cube (Cube.sample rng e.FE.match_) in
        let at = Prng.int rng (Openflow.Network.n_switches net) in
        let r1 = Dataplane.Emulator.inject emu1 ~at header in
        let r2 = Dataplane.Emulator.inject emu2 ~at header in
        let switches r =
          List.map (fun h -> h.Dataplane.Emulator.switch) r.Dataplane.Emulator.trace
        in
        check_bool "same trajectory" true (switches r1 = switches r2);
        let outcome_class r =
          match r.Dataplane.Emulator.outcome with
          | Dataplane.Emulator.Delivered { at_switch; header } ->
              `Delivered (at_switch, Header.to_string header)
          | Dataplane.Emulator.Returned _ -> `Returned
          | Dataplane.Emulator.Lost _ -> `Lost
        in
        check_bool "same outcome" true (outcome_class r1 = outcome_class r2)
      done

let test_figure3_over_the_wire () =
  (* The Figure 3 probe plan still yields 4 packets after the policy
     crosses the wire. *)
  let fx = Fixtures.figure3 () in
  let streams = Driver.policy_streams fx.Fixtures.net in
  match
    Driver.apply_policy ~header_len:8
      (Openflow.Network.topology fx.Fixtures.net)
      streams
  with
  | Error _ -> Alcotest.fail "replay failed"
  | Ok net2 ->
      let plan = Pipeline.plan (Pipeline.create net2) in
      check_int "four probes" 4 (Sdnprobe.Plan.size plan)

let test_packet_in_return () =
  match
    Driver.packet_in_of_return ~probe:9 ~header:(Header.of_string "11110000")
      ~table_id:1 ~cookie:33L
  with
  | M.Packet_in pi as msg ->
      check_int "cookie survives encode" 33
        (match roundtrip ~header_len:8 msg with
        | M.Packet_in pi' -> Int64.to_int pi'.M.cookie
        | _ -> -1);
      (match Driver.parse_probe_payload ~header_len:8 pi.M.payload with
      | Some (9, h) ->
          check_bool "returned header" true (Header.equal h (Header.of_string "11110000"))
      | _ -> Alcotest.fail "return payload")
  | _ -> Alcotest.fail "expected packet-in"

let () =
  Alcotest.run "ofwire"
    [
      ( "byte io",
        [
          Alcotest.test_case "roundtrip" `Quick test_writer_reader_roundtrip;
          Alcotest.test_case "truncated" `Quick test_reader_truncated;
          Alcotest.test_case "patch" `Quick test_writer_patch;
        ] );
      ( "layout",
        [
          Alcotest.test_case "hello" `Quick test_hello_layout;
          Alcotest.test_case "echo" `Quick test_echo_layout;
          Alcotest.test_case "flow mod" `Quick test_flow_mod_layout;
          Alcotest.test_case "alignment" `Quick test_lengths_multiple_of_8;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "simple messages" `Quick test_roundtrip_simple;
          Alcotest.test_case "random flow mods" `Quick test_roundtrip_flow_mod_random;
          Alcotest.test_case "packet out/in" `Quick test_roundtrip_packet_out_in;
          Alcotest.test_case "stream" `Quick test_decode_stream;
          Alcotest.test_case "errors" `Quick test_decode_errors;
        ] );
      ( "hostile",
        [
          Alcotest.test_case "negative reader n" `Quick test_reader_negative_n;
          Alcotest.test_case "reader window bounds" `Quick test_reader_of_bytes_bounds;
          Alcotest.test_case "action length 0" `Quick test_hostile_action_length;
          Alcotest.test_case "match length short" `Quick test_hostile_match_length;
        ] );
      ( "properties",
        [
          test_qcheck_roundtrip;
          test_qcheck_decode_total;
          test_qcheck_decode_mutated;
        ] );
      ( "driver",
        [
          Alcotest.test_case "probe payload" `Quick test_probe_payload_roundtrip;
          Alcotest.test_case "policy over the wire" `Quick test_policy_over_the_wire;
          Alcotest.test_case "figure3 over the wire" `Quick test_figure3_over_the_wire;
          Alcotest.test_case "packet-in return" `Quick test_packet_in_return;
        ] );
    ]
