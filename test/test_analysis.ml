(* sdncheck, the determinism & domain-safety analyzer (lib/analysis):
   per-rule fixtures that must fire, a clean fixture dir, suppression
   parsing (mandatory reason), the lint-shaped JSON round-trip, and
   the self-scan gate — the repository's own sources must come out
   clean, which is the same property the analyze-self CI job enforces
   on the real tree. *)

module Source = Sdn_analysis.Source
module Finding = Sdn_analysis.Finding
module Rules = Sdn_analysis.Rules
module Engine = Sdn_analysis.Engine
module J = Sdn_util.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Fixtures are copied next to the test binary (source_tree dep);
   under `dune exec` from the checkout root, fall back to test/. *)
let fixture_root =
  if Sys.file_exists "analysis_fixtures" then "analysis_fixtures"
  else Filename.concat "test" "analysis_fixtures"

let fixture sub name =
  let path = Filename.concat (Filename.concat fixture_root sub) name in
  In_channel.with_open_bin path In_channel.input_all

(* Run the full catalogue over one synthetic source, everything
   considered pooled-reachable (D005's worst case). *)
let run_rel ?(pooled = fun _ -> true) ~rel text =
  let src = Source.of_string ~rel text in
  Engine.run_sources ~rules:Rules.all ~pooled [ src ]

(* The (rule, line) witness list, in report order. *)
let witnesses report =
  List.map
    (fun (f : Finding.t) -> (f.Finding.check, f.Finding.line))
    report.Engine.diagnostics

let check_witnesses what expected report =
  Alcotest.(check (list (pair string int))) what expected (witnesses report)

(* ------------------------------------------------------------------ *)
(* One failing fixture per rule. *)

let test_d001_fires () =
  let r = run_rel ~rel:"lib/bad/d001.ml" (fixture "bad" "d001.ml") in
  check_witnesses "fold and iter" [ ("D001", 3); ("D001", 4) ] r

let test_d002_fires () =
  let r = run_rel ~rel:"lib/bad/d002.ml" (fixture "bad" "d002.ml") in
  check_witnesses "three clocks" [ ("D002", 2); ("D002", 3); ("D002", 4) ] r

let test_d003_fires () =
  let r = run_rel ~rel:"lib/bad/d003.ml" (fixture "bad" "d003.ml") in
  check_witnesses "self_init and int" [ ("D003", 2); ("D003", 3) ] r

let test_d004_fires () =
  let r = run_rel ~rel:"lib/bad/d004.ml" (fixture "bad" "d004.ml") in
  check_witnesses "name/field/compare/hash/alias"
    [ ("D004", 8); ("D004", 9); ("D004", 10); ("D004", 11); ("D004", 12) ]
    r

let test_d005_fires () =
  let r = run_rel ~rel:"lib/bad/d005.ml" (fixture "bad" "d005.ml") in
  check_witnesses "four mutable toplevels"
    [ ("D005", 3); ("D005", 4); ("D005", 5); ("D005", 8) ]
    r

let test_d005_needs_reachability () =
  (* The same file outside the pooled-reachable set is not flagged. *)
  let r =
    run_rel ~pooled:(fun _ -> false) ~rel:"lib/bad/d005.ml"
      (fixture "bad" "d005.ml")
  in
  check_witnesses "not pooled, not flagged" [] r

let test_d006_fires () =
  let r = run_rel ~rel:"lib/bad/d006.ml" (fixture "bad" "d006.ml") in
  check_witnesses "print_string and printf" [ ("D006", 2); ("D006", 3) ] r

let test_d006_scope () =
  (* Same text under bin/ (a CLI) or lib/experiments/ (the stdout
     renderers): out of scope by design. *)
  let text = fixture "bad" "d006.ml" in
  check_witnesses "bin is fine" [] (run_rel ~rel:"bin/d006.ml" text);
  check_witnesses "experiments are fine" []
    (run_rel ~rel:"lib/experiments/d006.ml" text)

(* ------------------------------------------------------------------ *)
(* Suppressions. *)

let test_suppression_without_reason_rejected () =
  let r = run_rel ~rel:"lib/bad/noreason.ml" (fixture "bad" "noreason.ml") in
  (* The reasonless comment is S001 AND the finding it hangs over
     still fires. *)
  check_witnesses "S001 plus unsilenced D001" [ ("S001", 5); ("D001", 6) ] r;
  check_int "nothing suppressed" 0 r.Engine.suppressed

let test_good_dir_clean () =
  let r = run_rel ~rel:"lib/good/clean.ml" (fixture "good" "clean.ml") in
  check_witnesses "clean" [] r;
  check_int "the one reasoned suppression was used" 1 r.Engine.suppressed

let test_suppression_parsing () =
  let covers text =
    let src = Source.of_string ~rel:"lib/x.ml" text in
    (List.length src.Source.suppressions, List.length src.Source.malformed)
  in
  Alcotest.(check (pair int int))
    "em dash" (1, 0)
    (covers "(* sdncheck: allow D001 \xe2\x80\x94 order-free *)\nlet x = 1\n");
  Alcotest.(check (pair int int))
    "double hyphen" (1, 0)
    (covers "(* sdncheck: allow D001, D005 -- guarded by m *)\nlet x = 1\n");
  Alcotest.(check (pair int int))
    "no reason" (0, 1)
    (covers "(* sdncheck: allow D001 *)\nlet x = 1\n");
  Alcotest.(check (pair int int))
    "no valid ids" (0, 1)
    (covers "(* sdncheck: allow determinism \xe2\x80\x94 because *)\nlet x = 1\n");
  Alcotest.(check (pair int int))
    "unrelated comment ignored" (0, 0)
    (covers "(* plain prose about sdncheck rules *)\nlet x = 1\n")

let test_unparseable_is_flagged () =
  let r = run_rel ~rel:"lib/broken.ml" "let x = (\n" in
  match r.Engine.diagnostics with
  | [ f ] ->
      check_str "rule" "S001" f.Finding.check;
      check_str "file" "lib/broken.ml" f.Finding.file
  | l -> Alcotest.failf "expected one S001, got %d findings" (List.length l)

(* ------------------------------------------------------------------ *)
(* JSON: lint-shaped schema, round-trip through Sdn_util.Json. *)

let test_json_roundtrip () =
  let r =
    run_rel ~rel:"lib/bad/d004.ml" (fixture "bad" "d004.ml")
  in
  let j = Engine.to_json r in
  (match J.member "schema_version" j with
  | Some (J.Int v) -> check_int "schema_version" Engine.schema_version v
  | _ -> Alcotest.fail "schema_version missing");
  (match J.member "tool" j with
  | Some (J.Str t) -> check_str "tool" "sdncheck" t
  | _ -> Alcotest.fail "tool missing");
  let text = J.to_string j in
  match J.of_string text with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok j' -> (
      match Engine.of_json j' with
      | Error e -> Alcotest.failf "of_json failed: %s" e
      | Ok r' ->
          check_int "files_scanned" r.Engine.files_scanned r'.Engine.files_scanned;
          check_int "suppressed" r.Engine.suppressed r'.Engine.suppressed;
          check_bool "diagnostics survive" true
            (List.equal
               (fun a b -> Finding.compare a b = 0)
               r.Engine.diagnostics r'.Engine.diagnostics))

(* ------------------------------------------------------------------ *)
(* Self-scan: the repository's own sources must be clean. Tests run in
   _build/default/test, and dune copies the sources it builds into
   _build/default — a repo-shaped tree find_root resolves. *)

let test_self_scan_clean () =
  match Engine.find_root () with
  | None -> Alcotest.fail "cannot find repo root from the test runtime dir"
  | Some root ->
      let r = Engine.run ~root () in
      check_bool "scanned a real tree" true (r.Engine.files_scanned > 50);
      (match r.Engine.diagnostics with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "self-scan not clean (%d findings), first: %s"
            (List.length r.Engine.diagnostics)
            (Format.asprintf "%a" Finding.pp f));
      check_bool "suppressions in use" true (r.Engine.suppressed > 0)

let test_exit_codes () =
  let bad = run_rel ~rel:"lib/bad/d001.ml" (fixture "bad" "d001.ml") in
  let warn = run_rel ~rel:"lib/bad/d006.ml" (fixture "bad" "d006.ml") in
  let clean = run_rel ~rel:"lib/good/clean.ml" (fixture "good" "clean.ml") in
  check_int "errors gate" 2 (Engine.exit_code ~fail_on:Engine.Fail_warning bad);
  check_int "warnings gate at fail-on warning" 1
    (Engine.exit_code ~fail_on:Engine.Fail_warning warn);
  check_int "warnings pass at fail-on error" 0
    (Engine.exit_code ~fail_on:Engine.Fail_error warn);
  check_int "never never fails" 0 (Engine.exit_code ~fail_on:Engine.Fail_never bad);
  check_int "clean is clean" 0 (Engine.exit_code ~fail_on:Engine.Fail_warning clean)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [
      ( "rules",
        [
          Alcotest.test_case "D001 fires" `Quick test_d001_fires;
          Alcotest.test_case "D002 fires" `Quick test_d002_fires;
          Alcotest.test_case "D003 fires" `Quick test_d003_fires;
          Alcotest.test_case "D004 fires" `Quick test_d004_fires;
          Alcotest.test_case "D005 fires" `Quick test_d005_fires;
          Alcotest.test_case "D005 reachability" `Quick test_d005_needs_reachability;
          Alcotest.test_case "D006 fires" `Quick test_d006_fires;
          Alcotest.test_case "D006 scope" `Quick test_d006_scope;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "no reason rejected" `Quick
            test_suppression_without_reason_rejected;
          Alcotest.test_case "good dir clean" `Quick test_good_dir_clean;
          Alcotest.test_case "parsing" `Quick test_suppression_parsing;
          Alcotest.test_case "unparseable file" `Quick test_unparseable_is_flagged;
        ] );
      ( "report",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "self scan clean" `Quick test_self_scan_clean;
        ] );
    ]
