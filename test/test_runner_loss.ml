(* The error-prone-environment engine: seed-identity regressions (the
   retransmitting runner with everything off must reproduce the
   pre-refactor runner bit-for-bit), timeout/backoff arithmetic,
   suspicion decay, the Config builder, Report's versioned JSON, and
   deterministic runs under seeded impairments. *)

module Emu = Dataplane.Emulator
module Impairment = Dataplane.Impairment
module Fault = Dataplane.Fault
module Cube = Hspace.Cube
module FE = Openflow.Flow_entry
module Network = Openflow.Network
module Prng = Sdn_util.Prng
module Plan = Sdnprobe.Plan
module Runner = Sdnprobe.Runner
module Report = Sdnprobe.Report
module Config = Sdnprobe.Config
module Suspicion = Sdnprobe.Suspicion
module W = Experiments.Workloads

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Golden seed-identity regressions.

   The digests below were captured from the pre-refactor runner (one
   send per probe, no timeouts, no decay) on these exact scenarios.
   Config.default keeps the retransmission machinery off, so the new
   engine must reproduce them byte for byte. *)

let canonical (r : Report.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "%s|%d|%d|%d|%d|%.6f" r.Report.scheme r.plan_size
       r.packets_sent r.bytes_sent r.rounds r.duration_s);
  List.iter
    (fun (d : Report.detection) ->
      Buffer.add_string b (Printf.sprintf "|d%d,%.6f,%d" d.switch d.time_s d.round))
    r.detections;
  List.iter
    (fun (rule, lvl) -> Buffer.add_string b (Printf.sprintf "|s%d,%d" rule lvl))
    r.suspicion_ranking;
  Buffer.contents b

let digest r = Digest.to_hex (Digest.string (canonical r))

let make_net ~switches ~seed =
  let rng = Prng.create seed in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:switches () in
  Topogen.Rule_gen.install rng topo

let scenario ~switches ~seed ~kind ~fraction ~randomized ~max_rounds =
  let net = make_net ~switches ~seed in
  let emu = Emu.create net in
  let truth = W.inject (Prng.create (seed + 1)) ~kind ~fraction emu in
  let config = Config.with_max_rounds max_rounds Config.default in
  let mode =
    if randomized then Plan.Randomized (Prng.create seed) else Plan.Static
  in
  Runner.execute
    ~stop:(Runner.stop_when_flagged truth)
    ~config ~emulator:emu
    (match mode with
    | Plan.Static -> Pipeline.plan (Pipeline.create net)
    | _ -> (Plan.generate [@alert "-deprecated"]) ~mode net)

let test_golden_static_drop () =
  let r =
    scenario ~switches:16 ~seed:1 ~kind:W.Drop_only ~fraction:0.02
      ~randomized:false ~max_rounds:60
  in
  check_str "digest" "bf4e86a37c5cc5a2cc0fc972572a1448" (digest r);
  check_int "no retransmissions" 0 r.Report.retransmissions

let test_golden_randomized_drop () =
  let r =
    scenario ~switches:16 ~seed:1 ~kind:W.Drop_only ~fraction:0.02
      ~randomized:true ~max_rounds:60
  in
  check_str "digest" "9c8f3f167e8ae6d9d081616844bed1a8" (digest r)

let test_golden_static_basic_24 () =
  let r =
    scenario ~switches:24 ~seed:5 ~kind:W.Basic ~fraction:0.03 ~randomized:false
      ~max_rounds:60
  in
  check_str "digest" "784726fc5c1c45fd4fec049c64b4dd30" (digest r)

let test_golden_static_basic_50 () =
  let r =
    scenario ~switches:50 ~seed:9 ~kind:W.Basic ~fraction:0.01 ~randomized:false
      ~max_rounds:80
  in
  check_str "digest" "2b27dbc459d02da04f91713801a2e571" (digest r)

let test_golden_no_fault () =
  let net = make_net ~switches:16 ~seed:3 in
  let emu = Emu.create net in
  let config = Config.with_max_rounds 12 Config.default in
  let r = Runner.execute ~config ~emulator:emu (Pipeline.plan (Pipeline.create net)) in
  check_str "digest" "1bae728705dc15392db70260ae188acb" (digest r)

(* ------------------------------------------------------------------ *)
(* QCheck: an attached zero-impairment is observationally identical to
   no impairment, across random small scenarios and both detection
   profiles. *)

let test_zero_impairment_identity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"zero impairment = no impairment" ~count:12
       QCheck.(pair (int_bound 1000) bool)
       (fun (seed, resilient) ->
         let run ~impair =
           let net = make_net ~switches:10 ~seed in
           let emu = Emu.create net in
           if impair then Emu.set_impairment emu (Impairment.create Impairment.none);
           let truth =
             W.inject (Prng.create (seed + 1)) ~kind:W.Drop_only ~fraction:0.02 emu
           in
           let config =
             Config.with_max_rounds 25
               (if resilient then Config.resilient else Config.default)
           in
           Runner.execute
             ~stop:(Runner.stop_when_flagged truth)
             ~config ~emulator:emu (Pipeline.plan (Pipeline.create net))
         in
         canonical (run ~impair:false) = canonical (run ~impair:true)))

(* ------------------------------------------------------------------ *)
(* Timeout / backoff arithmetic *)

let test_probe_timeout () =
  let c = Config.make ~timeout_base_us:20_000 ~timeout_per_hop_us:2_000 () in
  check_int "0 hops" 20_000 (Config.probe_timeout_us c ~hops:0);
  check_int "5 hops" 30_000 (Config.probe_timeout_us c ~hops:5)

let test_backoff_exponential () =
  let c = Config.make ~retry_backoff_us:10_000 ~backoff_factor:2 () in
  check_int "attempt 1" 10_000 (Config.backoff_us c ~attempt:1);
  check_int "attempt 2" 20_000 (Config.backoff_us c ~attempt:2);
  check_int "attempt 3" 40_000 (Config.backoff_us c ~attempt:3)

let test_backoff_saturates () =
  let c = Config.make ~retry_backoff_us:1_000_000 ~backoff_factor:10 () in
  check_int "caps at 10s" 10_000_000 (Config.backoff_us c ~attempt:5);
  check_int "stays capped" 10_000_000 (Config.backoff_us c ~attempt:30)

let test_backoff_bad_attempt () =
  Alcotest.check_raises "attempt 0 rejected"
    (Invalid_argument "Config.backoff_us: attempt < 1") (fun () ->
      ignore (Config.backoff_us Config.default ~attempt:0))

(* ------------------------------------------------------------------ *)
(* Config builder *)

let test_default_is_make () =
  check_bool "default = make ()" true (Config.default = Config.make ())

let test_make_validates () =
  check_bool "negative retries rejected" true
    (try
       ignore (Config.make ~max_retries:(-1) ());
       false
     with Invalid_argument _ -> true);
  check_bool "zero backoff factor rejected" true
    (try
       ignore (Config.make ~backoff_factor:0 ());
       false
     with Invalid_argument _ -> true)

let test_with_updaters () =
  let c = Config.with_max_retries 4 (Config.with_threshold 5 Config.default) in
  check_int "threshold" 5 c.Config.threshold;
  check_int "retries" 4 c.Config.max_retries;
  check_int "others kept" Config.default.Config.max_rounds c.Config.max_rounds

(* ------------------------------------------------------------------ *)
(* Suspicion decay *)

let test_decay_rule () =
  let s = Suspicion.create ~threshold:3 in
  Suspicion.bump_rule s 7;
  Suspicion.bump_rule s 7;
  Suspicion.decay_rule s 7 ~amount:1;
  check_int "2 - 1" 1 (List.assoc 7 (Suspicion.rule_levels s));
  Suspicion.decay_rule s 7 ~amount:5;
  check_bool "floored at 0 and dropped" true
    (List.assoc_opt 7 (Suspicion.rule_levels s) = None);
  (* decaying an unknown rule is a no-op *)
  Suspicion.decay_rule s 99 ~amount:1;
  check_bool "unknown rule untouched" true (Suspicion.rule_levels s = [])

let test_decay_prevents_flag () =
  (* bump to threshold, decay, bump once more: still below threshold *)
  let s = Suspicion.create ~threshold:2 in
  Suspicion.bump_rule s 1;
  Suspicion.bump_rule s 1;
  Suspicion.decay_rule s 1 ~amount:1;
  Suspicion.bump_rule s 1;
  check_bool "2 <= threshold" false (Suspicion.exceeds_threshold s 1)

(* ------------------------------------------------------------------ *)
(* Report JSON *)

let sample_report () =
  {
    Report.scheme = "sdnprobe";
    plan_size = 12;
    generation_s = 0.25;
    detections = [ { Report.switch = 3; time_s = 1.5; round = 4 } ];
    packets_sent = 99;
    bytes_sent = 9900;
    rounds = 7;
    duration_s = 2.125;
    suspicion_ranking = [ (17, 4); (5, 1) ];
    retransmissions = 6;
    round_stats =
      [ { Report.round = 1; sent = 12; retries = 2; lost_attempts = 3; failed_probes = 1 } ];
    patch_events =
      [ { Report.batch = 1; added = 2; removed = 1; rewritten = 0; plan_size_after = 13; apply_s = 0.5 } ];
  }

let test_report_json_roundtrip () =
  let r = sample_report () in
  match Report.of_json (Report.to_json r) with
  | Ok r' -> check_bool "round-trip exact" true (r = r')
  | Error msg -> Alcotest.failf "of_json failed: %s" msg

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_report_json_version_gate () =
  (* version is checked before any other field *)
  match Report.of_json "{\"schema_version\":99}" with
  | Ok _ -> Alcotest.fail "accepted unknown schema_version"
  | Error msg -> check_bool "mentions version" true (contains ~sub:"schema_version" msg)

let test_report_json_accepts_v1 () =
  (* A version-1 document has no [patch_events]; it must still parse,
     with an empty patch-event list. *)
  let v1 =
    "{\"schema_version\":1,\"scheme\":\"sdnprobe\",\"plan_size\":12,\
     \"generation_s\":0.25,\"detections\":[],\"packets_sent\":99,\
     \"bytes_sent\":9900,\"rounds\":7,\"duration_s\":2.125,\
     \"suspicion_ranking\":[],\"retransmissions\":6,\"round_stats\":[]}"
  in
  match Report.of_json v1 with
  | Error msg -> Alcotest.failf "v1 refused: %s" msg
  | Ok r ->
      check_int "plan size" 12 r.Report.plan_size;
      check_int "patch_events default empty" 0 (List.length r.Report.patch_events)

let test_report_json_from_run () =
  let r =
    scenario ~switches:16 ~seed:1 ~kind:W.Drop_only ~fraction:0.02
      ~randomized:false ~max_rounds:60
  in
  match Report.of_json (Report.to_json r) with
  | Ok r' -> check_bool "real report round-trips" true (r = r')
  | Error msg -> Alcotest.failf "of_json failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Seeded impairments: determinism and loss tolerance *)

let lossy_run ~loss ~config ~seed =
  let net = make_net ~switches:16 ~seed in
  let emu = Emu.create net in
  Emu.set_impairment emu
    (Impairment.create (Impairment.spec ~seed:77 ~loss_rate:loss ()));
  let truth = W.inject (Prng.create (seed + 1)) ~kind:W.Drop_only ~fraction:0.02 emu in
  (truth, Runner.execute
            ~stop:(Runner.stop_when_flagged truth)
            ~config ~emulator:emu (Pipeline.plan (Pipeline.create net)))

let test_seeded_loss_deterministic () =
  let config = Config.with_max_rounds 60 Config.resilient in
  let _, a = lossy_run ~loss:0.02 ~config ~seed:1 in
  let _, b = lossy_run ~loss:0.02 ~config ~seed:1 in
  check_str "identical canonical reports" (canonical a) (canonical b);
  check_bool "loss caused retransmissions" true (a.Report.retransmissions > 0)

let test_round_stats_consistent () =
  let config = Config.with_max_rounds 60 Config.resilient in
  let _, r = lossy_run ~loss:0.02 ~config ~seed:1 in
  check_int "one stat per round" r.Report.rounds (List.length r.Report.round_stats);
  let sent = List.fold_left (fun a (s : Report.round_stat) -> a + s.sent) 0 r.Report.round_stats in
  check_int "sent sums to packets" r.Report.packets_sent sent;
  let retries =
    List.fold_left (fun a (s : Report.round_stat) -> a + s.retries) 0 r.Report.round_stats
  in
  check_int "retries sum to retransmissions" r.Report.retransmissions retries

(* The acceptance scenario: 2% per-link loss, one real rule-modification
   fault on a 50-switch Rocketfuel-like topology — the resilient engine
   flags exactly the faulty switch at threshold 3. *)
let test_loss_with_real_fault_exact () =
  let net = make_net ~switches:50 ~seed:42 in
  let emu = Emu.create net in
  Emu.set_impairment emu
    (Impairment.create (Impairment.spec ~seed:1234 ~loss_rate:0.02 ()));
  let rng = Prng.create 7 in
  let candidates =
    List.filter
      (fun (e : FE.t) -> match e.action with FE.Output _ -> true | _ -> false)
      (Network.all_entries net)
  in
  let entry = Prng.choose_list rng candidates in
  let len = Network.header_len net in
  let set = ref (Cube.wildcard len) in
  for _ = 1 to 4 do
    let bit = Prng.int rng len in
    set := Cube.set !set bit (if Prng.bool rng then Cube.One else Cube.Zero)
  done;
  Emu.set_fault emu ~entry:entry.FE.id (Fault.make (Fault.Rewrite !set));
  let config = Config.with_max_rounds 150 Config.resilient in
  let report =
    Runner.execute
      ~stop:(Runner.stop_when_flagged [ entry.FE.switch ])
      ~config ~emulator:emu (Pipeline.plan (Pipeline.create net))
  in
  check_bool "exactly the faulty switch" true
    (Report.flagged_switches report = [ entry.FE.switch ])

(* Pure loss, no fault: nothing may be flagged at threshold 3. *)
let test_pure_loss_no_false_positive () =
  let net = make_net ~switches:16 ~seed:1 in
  let emu = Emu.create net in
  Emu.set_impairment emu
    (Impairment.create (Impairment.spec ~seed:77 ~loss_rate:0.02 ()));
  let config = Config.with_max_rounds 40 Config.resilient in
  let report = Runner.execute ~config ~emulator:emu (Pipeline.plan (Pipeline.create net)) in
  let confusion =
    Metrics.Confusion.pure_loss
      ~flagged:(Report.flagged_switches report)
      ~population:(W.population net)
  in
  check_int "no false positives" 0 confusion.Metrics.Confusion.false_positives;
  check_bool "loss was actually happening" true (report.Report.retransmissions > 0)

(* ------------------------------------------------------------------ *)
(* Impairment decisions *)

let test_impairment_loss_draws () =
  let certain = Impairment.create (Impairment.spec ~loss_rate:1.0 ()) in
  check_bool "rate 1 always loses" true
    (Impairment.lose_on_link certain ~sw_a:0 ~sw_b:1 ~now_us:0);
  let never = Impairment.create (Impairment.spec ~loss_rate:0.0 ()) in
  for i = 0 to 99 do
    if Impairment.lose_on_link never ~sw_a:0 ~sw_b:1 ~now_us:(i * 10) then
      Alcotest.fail "rate 0 lost a packet"
  done;
  (* independent per-attempt draws: at 50% not all 100 agree *)
  let coin = Impairment.create (Impairment.spec ~seed:3 ~loss_rate:0.5 ()) in
  let outcomes =
    List.init 100 (fun _ -> Impairment.lose_on_link coin ~sw_a:0 ~sw_b:1 ~now_us:0)
  in
  check_bool "draws vary across attempts" true
    (List.exists Fun.id outcomes && List.exists not outcomes)

let test_impairment_flap_windowed () =
  let imp =
    Impairment.create
      (Impairment.spec ~seed:5
         ~flaps:{ Impairment.flap_window_us = 1000; down_ratio = 0.5 }
         ())
  in
  (* stable within a window, unordered link key *)
  for w = 0 to 49 do
    let now_us = (w * 1000) + 500 in
    let a = Impairment.link_down imp ~sw_a:2 ~sw_b:7 ~now_us in
    let b = Impairment.link_down imp ~sw_a:7 ~sw_b:2 ~now_us:(now_us + 99) in
    if a <> b then Alcotest.fail "flap decision unstable within window"
  done;
  let downs =
    List.init 50 (fun w ->
        Impairment.link_down imp ~sw_a:2 ~sw_b:7 ~now_us:(w * 1000))
  in
  check_bool "some windows down, some up" true
    (List.exists Fun.id downs && List.exists not downs)

let test_impairment_churn_windowed () =
  let imp =
    Impairment.create
      (Impairment.spec ~seed:5
         ~churn:{ Impairment.churn_window_us = 1000; out_ratio = 0.5 }
         ())
  in
  let outs =
    List.init 50 (fun w -> Impairment.rule_out imp ~entry:9 ~now_us:(w * 1000))
  in
  check_bool "some windows out, some in" true
    (List.exists Fun.id outs && List.exists not outs);
  check_bool "stable within window" true
    (Impairment.rule_out imp ~entry:9 ~now_us:100
    = Impairment.rule_out imp ~entry:9 ~now_us:900)

let test_impairment_jitter_bounded () =
  let imp = Impairment.create (Impairment.spec ~seed:1 ~jitter_max_us:300 ()) in
  for _ = 1 to 200 do
    let j = Impairment.jitter_us imp ~switch:4 ~now_us:0 in
    if j < 0 || j > 300 then Alcotest.failf "jitter %d outside [0, 300]" j
  done;
  let off = Impairment.create Impairment.none in
  check_int "disabled jitter" 0 (Impairment.jitter_us off ~switch:4 ~now_us:0)

let test_impairment_stats () =
  let imp = Impairment.create (Impairment.spec ~loss_rate:1.0 ~jitter_max_us:10 ()) in
  ignore (Impairment.lose_on_link imp ~sw_a:0 ~sw_b:1 ~now_us:0);
  ignore (Impairment.lose_on_link imp ~sw_a:0 ~sw_b:1 ~now_us:0);
  ignore (Impairment.jitter_us imp ~switch:2 ~now_us:0);
  let s = Impairment.stats imp in
  check_int "losses counted" 2 s.Impairment.link_losses;
  Impairment.reset_stats imp;
  check_int "reset" 0 (Impairment.stats imp).Impairment.link_losses

(* The whole zoo at once — mild loss + jitter + flaps + churn, no real
   fault: the resilient engine must still flag nobody. *)
let test_full_noise_no_false_positive () =
  let net = make_net ~switches:16 ~seed:1 in
  let emu = Emu.create net in
  Emu.set_impairment emu
    (Impairment.create
       (Impairment.spec ~seed:99 ~loss_rate:0.01 ~jitter_max_us:200
          ~flaps:{ Impairment.flap_window_us = 200_000; down_ratio = 0.01 }
          ~churn:{ Impairment.churn_window_us = 250_000; out_ratio = 0.005 }
          ()));
  let config = Config.with_max_rounds 40 Config.resilient in
  let report = Runner.execute ~config ~emulator:emu (Pipeline.plan (Pipeline.create net)) in
  check_bool "nothing flagged" true (Report.flagged_switches report = [])

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "runner_loss"
    [
      ( "golden",
        [
          Alcotest.test_case "static drop s16" `Quick test_golden_static_drop;
          Alcotest.test_case "randomized drop s16" `Quick test_golden_randomized_drop;
          Alcotest.test_case "static basic s24" `Quick test_golden_static_basic_24;
          Alcotest.test_case "static basic s50" `Slow test_golden_static_basic_50;
          Alcotest.test_case "no fault s16" `Quick test_golden_no_fault;
        ] );
      ("identity", [ test_zero_impairment_identity ]);
      ( "arithmetic",
        [
          Alcotest.test_case "probe timeout" `Quick test_probe_timeout;
          Alcotest.test_case "exponential backoff" `Quick test_backoff_exponential;
          Alcotest.test_case "backoff saturates" `Quick test_backoff_saturates;
          Alcotest.test_case "bad attempt" `Quick test_backoff_bad_attempt;
        ] );
      ( "config",
        [
          Alcotest.test_case "default = make ()" `Quick test_default_is_make;
          Alcotest.test_case "validation" `Quick test_make_validates;
          Alcotest.test_case "with_* updaters" `Quick test_with_updaters;
        ] );
      ( "decay",
        [
          Alcotest.test_case "decay_rule" `Quick test_decay_rule;
          Alcotest.test_case "decay prevents flag" `Quick test_decay_prevents_flag;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_report_json_roundtrip;
          Alcotest.test_case "version gate" `Quick test_report_json_version_gate;
          Alcotest.test_case "accepts v1" `Quick test_report_json_accepts_v1;
          Alcotest.test_case "real report" `Quick test_report_json_from_run;
        ] );
      ( "loss",
        [
          Alcotest.test_case "deterministic" `Quick test_seeded_loss_deterministic;
          Alcotest.test_case "round stats" `Quick test_round_stats_consistent;
          Alcotest.test_case "2% loss + real fault, exact" `Slow
            test_loss_with_real_fault_exact;
          Alcotest.test_case "pure loss, no FP" `Quick test_pure_loss_no_false_positive;
        ] );
      ( "impairment",
        [
          Alcotest.test_case "loss draws" `Quick test_impairment_loss_draws;
          Alcotest.test_case "flap windows" `Quick test_impairment_flap_windowed;
          Alcotest.test_case "churn windows" `Quick test_impairment_churn_windowed;
          Alcotest.test_case "jitter bounded" `Quick test_impairment_jitter_bounded;
          Alcotest.test_case "stats" `Quick test_impairment_stats;
          Alcotest.test_case "full noise, no FP" `Quick
            test_full_noise_no_false_positive;
        ] );
    ]
