(* Sharded planning (docs/SHARD.md): partitioner invariants, the
   two-level cover's determinism (byte-identical at any domain count,
   golden digest pinned), hierarchical slicing, and the PR's acceptance
   property — sharded planning + hierarchical localization flags the
   exact same faulty-switch set as the flat pipeline, with and without
   seeded loss, at domains 1 and 4. *)

module Prng = Sdn_util.Prng
module Network = Openflow.Network
module FE = Openflow.Flow_entry
module Partition = Shard.Partition
module Splan = Shard.Splan
module Plan = Sdnprobe.Plan
module Runner = Sdnprobe.Runner
module Report = Sdnprobe.Report
module Config = Sdnprobe.Config
module Suspicion = Sdnprobe.Suspicion
module Emu = Dataplane.Emulator
module Impairment = Dataplane.Impairment
module W = Experiments.Workloads

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let pool n = Sdn_parallel.pool ~domains:n

let make_net ~switches ~seed =
  let rng = Prng.create seed in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:switches () in
  Topogen.Rule_gen.install rng topo

(* Same per-probe encoding as test_parallel's plan_fingerprint, so the
   digests are comparable across plan flavours. *)
let fingerprint (probes : Sdnprobe.Probe.t list) =
  String.concat ";"
    (List.map
       (fun (pr : Sdnprobe.Probe.t) ->
         Printf.sprintf "%d:%s:%s" pr.Sdnprobe.Probe.id
           (String.concat "," (List.map string_of_int pr.Sdnprobe.Probe.rules))
           (Hspace.Header.to_string pr.Sdnprobe.Probe.header))
       probes)

let digest probes = Digest.to_hex (Digest.string (fingerprint probes))

(* ------------------------------------------------------------------ *)
(* Partition *)

let test_partition_covers () =
  let net = make_net ~switches:50 ~seed:3 in
  let topo = Network.topology net in
  let part = Partition.make ~target:12 topo in
  let n = Openflow.Topology.n_switches topo in
  let seen = Array.make (Partition.n_regions part) 0 in
  for sw = 0 to n - 1 do
    let r = Partition.region_of part sw in
    check_bool "region in range" true (r >= 0 && r < Partition.n_regions part);
    seen.(r) <- seen.(r) + 1
  done;
  Array.iteri
    (fun r count ->
      check_int (Printf.sprintf "size of region %d" r) count (Partition.size part r);
      check_bool "region non-empty" true (count > 0);
      (* switches lists are ascending and consistent with region_of *)
      let sws = Partition.switches part r in
      check_int "switches length" count (List.length sws);
      check_bool "ascending" true (List.sort compare sws = sws);
      List.iter
        (fun sw -> check_int "region_of agrees" r (Partition.region_of part sw))
        sws)
    seen;
  check_int "sizes sum to n" n (Array.fold_left ( + ) 0 seen)

let test_partition_deterministic () =
  let net = make_net ~switches:50 ~seed:3 in
  let topo = Network.topology net in
  let a = Partition.make ~target:12 topo and b = Partition.make ~target:12 topo in
  check_int "regions" (Partition.n_regions a) (Partition.n_regions b);
  check_int "cut edges" (Partition.cut_edges a) (Partition.cut_edges b);
  for sw = 0 to Openflow.Topology.n_switches topo - 1 do
    check_int "region_of" (Partition.region_of a sw) (Partition.region_of b sw)
  done

(* ------------------------------------------------------------------ *)
(* Sharded plan: structure, determinism across domain counts, golden. *)

let splan ?domains ?target net =
  let pool = Option.map pool domains in
  Splan.create ?pool ?target net

let test_splan_single_region_matches_flat () =
  (* Whole net in one region: no stitching, the per-region cover IS the
     flat cover, so probes must be byte-identical to the flat plan. *)
  let net = make_net ~switches:16 ~seed:1 in
  let flat = Pipeline.plan (Pipeline.create net) in
  let sp = splan net in
  check_int "one region" 1 sp.Splan.stats.Splan.regions;
  check_str "probes match flat plan" (fingerprint flat.Plan.probes)
    (fingerprint sp.Splan.probes)

let test_splan_covers_all_testable () =
  (* Two-level cover coverage: every entry is on some probe's rule list
     or reported untestable, regardless of how the net is cut. *)
  let net = make_net ~switches:16 ~seed:1 in
  let sp = splan ~target:4 net in
  check_bool "multi-region" true (sp.Splan.stats.Splan.regions > 1);
  let covered = Hashtbl.create 1024 in
  List.iter
    (fun (p : Sdnprobe.Probe.t) ->
      List.iter (fun r -> Hashtbl.replace covered r ()) p.Sdnprobe.Probe.rules)
    sp.Splan.probes;
  List.iter (fun r -> Hashtbl.replace covered r ()) sp.Splan.untestable;
  List.iter
    (fun (e : FE.t) ->
      if not (Hashtbl.mem covered e.FE.id) then
        Alcotest.failf "entry %d neither covered nor untestable" e.FE.id)
    (Network.all_entries net)

let test_splan_identical_across_domains () =
  let net = make_net ~switches:16 ~seed:1 in
  let d1 = digest (splan ~domains:1 ~target:4 net).Splan.probes in
  let d2 = digest (splan ~domains:2 ~target:4 net).Splan.probes in
  let d4 = digest (splan ~domains:4 ~target:4 net).Splan.probes in
  check_str "domains 1 = 2" d1 d2;
  check_str "domains 2 = 4" d2 d4

(* Golden digest for the sharded plan (16 switches, seed 1, target 4 —
   6 regions, stitched cross-border probes), pinned under a 4-domain
   pool. If this moves, the sharded planner's bytes changed: partition,
   stitch order, lowering, or header assignment. *)
let test_splan_golden () =
  let net = make_net ~switches:16 ~seed:1 in
  let sp = splan ~domains:4 ~target:4 net in
  check_str "golden sharded digest" "af4518200c274702c3431867809026c8"
    (digest sp.Splan.probes)

(* ------------------------------------------------------------------ *)
(* Hierarchical slicing & region suspicion *)

let test_slice_prefers_region_border () =
  let net = make_net ~switches:16 ~seed:1 in
  let sp = splan ~target:4 net in
  let region_of sw = Splan.region_of sp sw in
  let next = ref 100_000 in
  let fresh_id () = incr next; !next in
  let checked = ref 0 in
  List.iter
    (fun (p : Sdnprobe.Probe.t) ->
      let rules = Array.of_list p.Sdnprobe.Probe.rules in
      let n = Array.length rules in
      (* The cuts Probe.slice considers border cuts: a table-0 rule
         whose switch is in a different region than its predecessor. *)
      let border_cut_exists =
        List.exists
          (fun i ->
            (Network.entry net rules.(i)).FE.table = 0
            && region_of (Network.entry net rules.(i)).FE.switch
               <> region_of (Network.entry net rules.(i - 1)).FE.switch)
          (List.init (max 0 (n - 1)) (fun k -> k + 1))
      in
      if border_cut_exists then
        match Sdnprobe.Probe.slice ~region_of net ~fresh_id p with
        | None -> Alcotest.fail "border cut exists but slice returned None"
        | Some (a, b) ->
            incr checked;
            let last_a =
              List.nth a.Sdnprobe.Probe.rules
                (List.length a.Sdnprobe.Probe.rules - 1)
            in
            let first_b = List.hd b.Sdnprobe.Probe.rules in
            check_bool "cut is at a region border" true
              (region_of (Network.entry net last_a).FE.switch
              <> region_of (Network.entry net first_b).FE.switch))
    sp.Splan.probes;
  check_bool "some cross-region probe was sliced" true (!checked > 0)

let test_slice_without_region_of_unchanged () =
  (* region_of = const: no border exists, behaviour must equal the
     legacy table-0/middle cut. *)
  let net = make_net ~switches:16 ~seed:1 in
  let plan = Pipeline.plan (Pipeline.create net) in
  let next = ref 0 in
  let fresh_id () = incr next; !next in
  List.iter
    (fun (p : Sdnprobe.Probe.t) ->
      next := 0;
      let legacy = Sdnprobe.Probe.slice net ~fresh_id p in
      next := 0;
      let flat_region = Sdnprobe.Probe.slice ~region_of:(fun _ -> 0) net ~fresh_id p in
      let enc = function
        | None -> "none"
        | Some (a, b) ->
            fingerprint [ a ] ^ "|" ^ fingerprint [ b ]
      in
      check_str "same slice" (enc legacy) (enc flat_region))
    plan.Plan.probes

let test_region_levels () =
  let s = Suspicion.create ~threshold:3 in
  (* rules 0,1,2 in region 0; rules 10,11 in region 1; rule 20 region 2 *)
  let region_of_rule r = r / 10 in
  List.iter
    (fun (rule, bumps) ->
      for _ = 1 to bumps do
        Suspicion.bump_rule s rule
      done)
    [ (0, 2); (1, 1); (2, 1); (10, 3); (11, 1); (20, 4) ];
  let got = Suspicion.region_levels s ~region_of_rule in
  (* region 0: 4, region 1: 4, region 2: 4 — level ties break on the
     region id, ascending: a total order. *)
  check_bool "totals and order" true (got = [ (0, 4); (1, 4); (2, 4) ]);
  Suspicion.decay_rule s 0 ~amount:2;
  let got = Suspicion.region_levels s ~region_of_rule in
  check_bool "after decay" true (got = [ (1, 4); (2, 4); (0, 2) ])

(* ------------------------------------------------------------------ *)
(* Acceptance property: sharded + hierarchical localization flags the
   exact same switch set as the flat pipeline. *)

let flat_flagged ~net ~seed ~impair ~domains =
  let emu = Emu.create net in
  if impair then
    Emu.set_impairment emu (Impairment.create (Impairment.spec ~seed:77 ~loss_rate:0.02 ()));
  let truth = W.inject (Prng.create (seed + 1)) ~kind:W.Drop_only ~fraction:0.02 emu in
  let config =
    Config.with_domains domains
      (Config.with_max_rounds 60 (if impair then Config.resilient else Config.default))
  in
  let plan = Pipeline.plan (Pipeline.create ?pool:(Config.pool config) net) in
  let report =
    Runner.execute ~stop:(Runner.stop_when_flagged truth) ~config ~emulator:emu plan
  in
  Report.flagged_switches report

let sharded_flagged ~net ~seed ~impair ~domains ~target =
  let emu = Emu.create net in
  if impair then
    Emu.set_impairment emu (Impairment.create (Impairment.spec ~seed:77 ~loss_rate:0.02 ()));
  let truth = W.inject (Prng.create (seed + 1)) ~kind:W.Drop_only ~fraction:0.02 emu in
  let config =
    Config.with_domains domains
      (Config.with_max_rounds 60 (if impair then Config.resilient else Config.default))
  in
  let sp = Splan.create ?pool:(Config.pool config) ~target net in
  let backend = Sdnprobe.Backend.of_emulator emu in
  let report =
    Runner.execute_probes ~stop:(Runner.stop_when_flagged truth)
      ~name:"sharded-sdnprobe" ~region_of:(Splan.region_of sp) ~config ~backend
      ~generation_s:sp.Splan.generation_s sp.Splan.probes
  in
  Report.flagged_switches report

let test_equivalence_16 =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"sharded localization = flat localization (16 sw, domains 1/4, ±loss)"
       ~count:4
       QCheck.(pair (int_bound 1000) bool)
       (fun (seed, impair) ->
         let net = make_net ~switches:16 ~seed in
         let flat = flat_flagged ~net ~seed ~impair ~domains:1 in
         let s1 = sharded_flagged ~net ~seed ~impair ~domains:1 ~target:4 in
         let s4 = sharded_flagged ~net ~seed ~impair ~domains:4 ~target:4 in
         flat = s1 && s1 = s4))

let test_equivalence_50 () =
  let net = make_net ~switches:50 ~seed:3 in
  List.iter
    (fun impair ->
      let flat = flat_flagged ~net ~seed:3 ~impair ~domains:1 in
      let s1 = sharded_flagged ~net ~seed:3 ~impair ~domains:1 ~target:12 in
      let s4 = sharded_flagged ~net ~seed:3 ~impair ~domains:4 ~target:12 in
      check_bool "flat localized something" true (flat <> []);
      check_bool
        (Printf.sprintf "flat = sharded@1 (impair %b)" impair)
        true (flat = s1);
      check_bool
        (Printf.sprintf "sharded@1 = sharded@4 (impair %b)" impair)
        true (s1 = s4))
    [ false; true ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "shard"
    [
      ( "partition",
        [
          Alcotest.test_case "covers all switches" `Quick test_partition_covers;
          Alcotest.test_case "deterministic" `Quick test_partition_deterministic;
        ] );
      ( "splan",
        [
          Alcotest.test_case "single region = flat plan" `Quick
            test_splan_single_region_matches_flat;
          Alcotest.test_case "covers all testable entries" `Quick
            test_splan_covers_all_testable;
          Alcotest.test_case "identical across domains" `Quick
            test_splan_identical_across_domains;
          Alcotest.test_case "golden digest" `Quick test_splan_golden;
        ] );
      ( "hierarchical",
        [
          Alcotest.test_case "slice prefers region borders" `Quick
            test_slice_prefers_region_border;
          Alcotest.test_case "slice w/o region_of unchanged" `Quick
            test_slice_without_region_of_unchanged;
          Alcotest.test_case "suspicion region levels" `Quick test_region_levels;
        ] );
      ( "equivalence",
        [
          test_equivalence_16;
          Alcotest.test_case "50 switches, ±loss, domains 1/4" `Slow
            test_equivalence_50;
        ] );
    ]
