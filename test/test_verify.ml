(* Tests for the symbolic invariant verifier: the invariant language,
   the plumbing graph and its incremental patching, the closure
   engine's exactness against brute-force concrete-header simulation,
   incremental-vs-from-scratch equivalence under random edits, witness
   certification (including rejection of corrupted witnesses), the
   L001/L002 lint delegation (pinned against an inline copy of the
   historical graph-walk), and 1-vs-4-domain byte identity. *)

module Cube = Hspace.Cube
module Hs = Hspace.Hs
module Header = Hspace.Header
module FE = Openflow.Flow_entry
module Topology = Openflow.Topology
module Network = Openflow.Network
module Flow_table = Openflow.Flow_table
module Digraph = Sdngraph.Digraph
module Invariant = Verify.Invariant
module Plumbing = Verify.Plumbing
module Closure = Verify.Closure
module Witness = Verify.Witness
module Report = Verify.Report
module Engine = Verify.Engine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let add net ~switch ?table ~priority ~match_ ?set_field action =
  Network.add_entry net ~switch ?table ~priority ~match_:(Cube.of_string match_)
    ?set_field:(Option.map Cube.of_string set_field)
    action

(* A 2-switch mutual-forwarding loop on 1xxx. *)
let loop_net () =
  let topo = Topology.create ~n_switches:2 in
  Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  let a = add net ~switch:0 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  let b = add net ~switch:1 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  (net, a, b)

(* sw0 forwards 1xxx to sw1, whose only rule matches 11xx: 10xx leaks. *)
let leak_net () =
  let topo = Topology.create ~n_switches:2 in
  Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  let r = add net ~switch:0 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  let _ = add net ~switch:1 ~priority:1 ~match_:"11xx" FE.Drop in
  (net, r)

(* ------------------------------------------------------------------ *)
(* Invariant language *)

let test_invariant_round_trip () =
  List.iter
    (fun inv ->
      match Invariant.of_string (Invariant.to_string inv) with
      | Ok inv' -> check_bool (Invariant.to_string inv) true (Invariant.equal inv inv')
      | Error msg -> Alcotest.failf "round trip failed: %s" msg)
    [
      Invariant.Reach (0, 5);
      Invariant.Isolated (3, 1);
      Invariant.Loop_free;
      Invariant.No_blackhole;
      Invariant.Waypoint (0, 3, 5);
    ]

let test_invariant_parse_errors () =
  let bad s =
    match Invariant.of_string s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  bad "";
  bad "reach 0";
  bad "reach 0 x";
  bad "reach 0 -1";
  bad "waypoint 1 2";
  bad "frobnicate 1 2"

let test_invariant_spec () =
  let spec = "# header comment\nreach 0 2\n\nloop-free  # trailing\nwaypoint 0 1 2\n" in
  (match Invariant.parse_spec spec with
  | Ok [ Invariant.Reach (0, 2); Invariant.Loop_free; Invariant.Waypoint (0, 1, 2) ] -> ()
  | Ok invs -> Alcotest.failf "unexpected parse: %d invariants" (List.length invs)
  | Error msg -> Alcotest.failf "spec rejected: %s" msg);
  match Invariant.parse_spec "loop-free\nbogus 1\n" with
  | Error msg -> check_bool "line number in error" true (String.length msg > 0 && String.sub msg 0 7 = "line 2:")
  | Ok _ -> Alcotest.fail "expected spec error"

let test_invariant_validate () =
  check_bool "in range" true
    (Result.is_ok (Invariant.validate ~n_switches:3 (Invariant.Reach (0, 2))));
  check_bool "out of range" true
    (Result.is_error (Invariant.validate ~n_switches:3 (Invariant.Waypoint (0, 3, 2))))

(* ------------------------------------------------------------------ *)
(* Brute-force differential: closure vs concrete simulation *)

let all_headers len = List.init (1 lsl len) (fun i ->
    Header.of_string
      (String.init len (fun k ->
           if i land (1 lsl (len - 1 - k)) <> 0 then '1' else '0')))

(* Entry ids traversed (with the header each rule emits) when [h] is
   injected at [source]'s table 0, through real lookup semantics. *)
let simulate net ~source h =
  let bound = Network.n_entries net + 2 in
  let rec go acc h sw tb steps =
    if steps > bound then acc
    else
      match Flow_table.lookup (Network.table net ~switch:sw ~table:tb) h with
      | None -> acc
      | Some e -> (
          let h' = FE.apply e h in
          let acc = (e.FE.id, h') :: acc in
          match e.FE.action with
          | FE.Drop -> acc
          | FE.Output _ -> (
              match Network.next_switch net e with
              | None -> acc
              | Some sw' -> go acc h' sw' 0 (steps + 1))
          | FE.Goto_table tb' -> go acc h' e.FE.switch tb' (steps + 1))
  in
  go [] h source 0 0

let sorted_ids l = List.sort_uniq Int.compare l

let prop_closure_vs_brute_force =
  QCheck.Test.make ~name:"closure agrees with brute-force simulation" ~count:60
    QCheck.small_nat (fun seed ->
      let rng = Sdn_util.Prng.create (seed + 1) in
      let header_len = 6 in
      let net =
        Fixtures.random_line_net rng ~n_switches:4 ~rules_per_switch:3 ~header_len
      in
      let plumbing = Plumbing.build net in
      let headers = all_headers header_len in
      List.for_all
        (fun source ->
          let st = Closure.compute plumbing ~source () in
          (* Per-entry output-header sets from exhaustive simulation. *)
          let brute = Hashtbl.create 32 in
          List.iter
            (fun h ->
              List.iter
                (fun (id, (h' : Header.t)) ->
                  let prev =
                    Option.value (Hashtbl.find_opt brute id)
                      ~default:(Hs.empty header_len)
                  in
                  Hashtbl.replace brute id (Hs.union prev (Hs.of_cube (h' :> Cube.t))))
                (simulate net ~source h))
            headers;
          let brute_ids =
            List.sort_uniq Int.compare
              (Hashtbl.fold (fun id _ acc -> id :: acc) brute [])
          in
          let closure_ids =
            sorted_ids
              (List.map
                 (fun v -> (Plumbing.vertex_entry plumbing v).FE.id)
                 (Closure.reached st))
          in
          brute_ids = closure_ids
          && List.for_all
               (fun v ->
                 let id = (Plumbing.vertex_entry plumbing v).FE.id in
                 Hs.equal_sets (Closure.acc_at st v) (Hashtbl.find brute id))
               (Closure.reached st))
        (List.init (Network.n_switches net) Fun.id))

(* ------------------------------------------------------------------ *)
(* Incremental: plumbing patch and state re-propagation vs from-scratch *)

let random_edit rng net =
  let entries = Network.all_entries net in
  let victim = List.nth entries (Sdn_util.Prng.int rng (List.length entries)) in
  Network.remove_entry net victim.FE.id;
  let sw = Sdn_util.Prng.int rng (Network.n_switches net - 1) in
  let added =
    Network.add_entry net ~switch:sw
      ~priority:(1 + Sdn_util.Prng.int rng 9)
      ~match_:(Cube.random rng (Network.header_len net))
      (FE.Output 2)
  in
  List.sort_uniq compare
    [ (victim.FE.switch, victim.FE.table); (added.FE.switch, 0) ]

let same_plumbing a b =
  check_int "vertices" (Plumbing.n_vertices a) (Plumbing.n_vertices b);
  for v = 0 to Plumbing.n_vertices a - 1 do
    check_int "entry id" (Plumbing.vertex_entry a v).FE.id
      (Plumbing.vertex_entry b v).FE.id;
    check_bool "input" true (Hs.equal_sets (Plumbing.input a v) (Plumbing.input b v));
    check_bool "output" true (Hs.equal_sets (Plumbing.output a v) (Plumbing.output b v));
    let sa = List.sort Int.compare (Plumbing.succ a v) in
    let sb = List.sort Int.compare (Plumbing.succ b v) in
    check_bool "succ" true (sa = sb);
    List.iter
      (fun w ->
        check_bool "label" true (Hs.equal_sets (Plumbing.label a v w) (Plumbing.label b v w)))
      sa
  done

let same_state plumbing inc scratch =
  let ids st =
    sorted_ids
      (List.map (fun v -> (Plumbing.vertex_entry plumbing v).FE.id) (Closure.reached st))
  in
  check_bool "reached sets" true (ids inc = ids scratch);
  List.iter
    (fun v ->
      check_bool "acc" true
        (Hs.equal_sets (Closure.acc_at inc v) (Closure.acc_at scratch v)))
    (Closure.reached scratch)

let test_incremental_random_churn () =
  let rng = Sdn_util.Prng.create 42 in
  for _ = 1 to 10 do
    let net =
      Fixtures.random_line_net rng ~n_switches:5 ~rules_per_switch:4 ~header_len:8
    in
    let plumbing = ref (Plumbing.build net) in
    let sources = List.init (Network.n_switches net) Fun.id in
    let states = List.map (fun s -> Closure.compute !plumbing ~source:s ()) sources in
    for _ = 1 to 3 do
      let changed_tables = random_edit rng net in
      let patch = Plumbing.patch !plumbing ~changed_tables in
      plumbing := patch.Plumbing.plumbing;
      List.iter (fun st -> ignore (Closure.update !plumbing patch st)) states
    done;
    let fresh = Plumbing.build net in
    same_plumbing !plumbing fresh;
    List.iter2
      (fun s st -> same_state fresh st (Closure.compute fresh ~source:s ()))
      sources states
  done

let prop_incremental_vs_scratch =
  QCheck.Test.make ~name:"incremental closure equals from-scratch after k edits"
    ~count:40 QCheck.small_nat (fun seed ->
      let rng = Sdn_util.Prng.create (seed + 1000) in
      let net =
        Fixtures.random_line_net rng ~n_switches:4 ~rules_per_switch:3 ~header_len:6
      in
      let plumbing = ref (Plumbing.build net) in
      let sources = List.init (Network.n_switches net) Fun.id in
      let states = List.map (fun s -> Closure.compute !plumbing ~source:s ()) sources in
      let k = 1 + (seed mod 4) in
      for _ = 1 to k do
        let changed_tables = random_edit rng net in
        let patch = Plumbing.patch !plumbing ~changed_tables in
        plumbing := patch.Plumbing.plumbing;
        List.iter (fun st -> ignore (Closure.update !plumbing patch st)) states
      done;
      let fresh = Plumbing.build net in
      List.for_all2
        (fun s st ->
          let scratch = Closure.compute fresh ~source:s () in
          let ids st =
            sorted_ids
              (List.map
                 (fun v -> (Plumbing.vertex_entry fresh v).FE.id)
                 (Closure.reached st))
          in
          ids st = ids scratch
          && List.for_all
               (fun v -> Hs.equal_sets (Closure.acc_at st v) (Closure.acc_at scratch v))
               (Closure.reached scratch))
        sources states)

(* ------------------------------------------------------------------ *)
(* Engine: invariants on the paper's Fig. 3 example *)

let test_figure3_invariants () =
  let f = Fixtures.figure3 () in
  let engine = Engine.create f.Fixtures.net in
  let a = Fixtures.sw_a and c = Fixtures.sw_c and d = Fixtures.sw_d and e = Fixtures.sw_e in
  let report =
    Engine.check engine
      [
        Invariant.Loop_free;
        Invariant.Reach (a, e);
        Invariant.Reach (a, d);
        Invariant.Isolated (a, d);
        Invariant.Waypoint (a, c, e);
        Invariant.Waypoint (a, d, e);
      ]
  in
  let status inv =
    match List.assoc_opt inv report.Report.results with
    | Some s -> s
    | None -> Alcotest.failf "missing result for %s" (Invariant.to_string inv)
  in
  check_bool "loop-free holds" true (status Invariant.Loop_free = Report.Holds);
  check_bool "reach A E holds" true (status (Invariant.Reach (a, e)) = Report.Holds);
  (* A's only injectable traffic (00101xxx) goes A->B->C->E; D is never hit. *)
  check_bool "reach A D violated" true
    (match status (Invariant.Reach (a, d)) with Report.Violated _ -> true | _ -> false);
  check_bool "isolated A D holds" true (status (Invariant.Isolated (a, d)) = Report.Holds);
  check_bool "waypoint A C E holds" true
    (status (Invariant.Waypoint (a, c, e)) = Report.Holds);
  (match status (Invariant.Waypoint (a, d, e)) with
  | Report.Violated [ v ] ->
      check_bool "waypoint witness certified" true (v.Report.certificate = Witness.Replayed);
      check_bool "witness avoids D" true
        (List.for_all
           (fun id -> (Network.entry f.Fixtures.net id).FE.switch <> d)
           v.Report.witness.Witness.rules)
  | _ -> Alcotest.fail "expected one waypoint A D E violation");
  (* Isolation violation comes with a replayable path witness. *)
  let report2 = Engine.check engine [ Invariant.Isolated (a, e) ] in
  match Report.violations report2 with
  | [ v ] ->
      check_bool "isolated witness certified" true (v.Report.certificate = Witness.Replayed);
      check_bool "path ends at E" true
        ((Network.entry f.Fixtures.net
            (List.nth v.Report.witness.Witness.rules
               (List.length v.Report.witness.Witness.rules - 1)))
           .FE.switch = e)
  | vs -> Alcotest.failf "expected one isolation violation, got %d" (List.length vs)

let test_loop_detection_and_edit () =
  let net, a, _b = loop_net () in
  let engine = Engine.create net in
  (match Report.violations (Engine.check engine [ Invariant.Loop_free ]) with
  | [ v ] ->
      check_bool "replayed loop" true (v.Report.certificate = Witness.Replayed);
      (* The unrolled path revisits an entry. *)
      let rules = v.Report.witness.Witness.rules in
      check_bool "path revisits" true
        (List.length (sorted_ids rules) < List.length rules)
  | vs -> Alcotest.failf "expected one loop violation, got %d" (List.length vs));
  (* Removing one loop rule fixes it, incrementally. *)
  Network.remove_entry net a.FE.id;
  Engine.update engine ~changed_tables:[ (0, 0) ];
  check_bool "loop gone after edit" true
    (Report.ok (Engine.check engine [ Invariant.Loop_free ]));
  (* Reinstalling it brings the loop back. *)
  let _ =
    Network.add_entry net ~switch:0 ~priority:1 ~match_:(Cube.of_string "1xxx")
      (FE.Output 1)
  in
  Engine.update engine ~changed_tables:[ (0, 0) ];
  check_int "loop back" 1
    (List.length (Report.violations (Engine.check engine [ Invariant.Loop_free ])))

let test_blackhole_witness () =
  let net, r = leak_net () in
  let engine = Engine.create net in
  match Report.violations (Engine.check engine [ Invariant.No_blackhole ]) with
  | [ v ] ->
      check_bool "warning" true (v.Report.severity = Report.Warning);
      check_bool "replayed" true (v.Report.certificate = Witness.Replayed);
      check_bool "path ends at leaking rule" true
        (List.nth v.Report.witness.Witness.rules
           (List.length v.Report.witness.Witness.rules - 1)
        = r.FE.id);
      (* The witness header must actually fall into the leak (10xx). *)
      (match v.Report.witness.Witness.header with
      | Some h -> check_bool "header in leak" true (Header.matches h (Cube.of_string "10xx"))
      | None -> Alcotest.fail "expected a concrete header")
  | vs -> Alcotest.failf "expected one blackhole violation, got %d" (List.length vs)

(* ------------------------------------------------------------------ *)
(* Witness certification rejects corrupted witnesses *)

let test_certification_rejects_corruption () =
  let net, _, _ = loop_net () in
  let engine = Engine.create net in
  match Report.violations (Engine.check engine [ Invariant.Loop_free ]) with
  | [ v ] ->
      let w = v.Report.witness in
      check_bool "genuine witness accepted" true
        (Result.is_ok (Witness.certify net v.Report.kind w));
      (* Header outside the loop space: replay diverges. *)
      let corrupt_header = { w with Witness.header = Some (Header.of_string "0000") } in
      check_bool "corrupt header rejected" true
        (Result.is_error (Witness.certify net v.Report.kind corrupt_header));
      (* Truncated path: no entry repeats, postcondition fails. *)
      let truncated = { w with Witness.rules = [ List.hd w.Witness.rules ] } in
      check_bool "truncated path rejected" true
        (Result.is_error (Witness.certify net v.Report.kind truncated))
  | _ -> Alcotest.fail "expected a loop violation"

let test_every_violation_certified () =
  (* On a policy with loops, blackholes and reach failures, every
     reported violation must carry a certificate (the engine raises
     otherwise); re-certify each explicitly. *)
  let net, _, _ = loop_net () in
  let engine = Engine.create net in
  let report =
    Engine.check engine
      [ Invariant.Loop_free; Invariant.No_blackhole; Invariant.Reach (0, 1); Invariant.Isolated (0, 1) ]
  in
  List.iter
    (fun v ->
      match Witness.certify net v.Report.kind v.Report.witness with
      | Ok cert -> check_bool "certificate matches" true (cert = v.Report.certificate)
      | Error msg -> Alcotest.failf "witness failed recertification: %s" msg)
    (Report.violations report)

(* ------------------------------------------------------------------ *)
(* Engine-level incremental behaviour *)

let test_cache_hits_on_disjoint_component () =
  (* Two disjoint 2-switch lines; an edit in one component must leave
     the other component's states untouched (cache hits). *)
  let topo = Topology.create ~n_switches:4 in
  Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  Topology.add_link topo ~sw_a:2 ~port_a:1 ~sw_b:3 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  let r0 = add net ~switch:0 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  let _ = add net ~switch:1 ~priority:1 ~match_:"1xxx" FE.Drop in
  let _ = add net ~switch:2 ~priority:1 ~match_:"0xxx" (FE.Output 1) in
  let _ = add net ~switch:3 ~priority:1 ~match_:"0xxx" FE.Drop in
  let engine = Engine.create net in
  let invs = [ Invariant.Reach (0, 1); Invariant.Reach (2, 3) ] in
  check_bool "both reach" true (Report.ok (Engine.check engine invs));
  Network.remove_entry net r0.FE.id;
  Engine.update engine ~changed_tables:[ (0, 0) ];
  let report = Engine.check engine invs in
  (* Source 2's state was untouched by the edit. *)
  check_bool "cache hit recorded" true
    (List.assoc "state_cache_hits" report.Report.metrics >= 1);
  (* reach 0 1 now fails, reach 2 3 still holds. *)
  (match List.assoc_opt (Invariant.Reach (0, 1)) report.Report.results with
  | Some (Report.Violated _) -> ()
  | _ -> Alcotest.fail "reach 0 1 should be violated after edit");
  match List.assoc_opt (Invariant.Reach (2, 3)) report.Report.results with
  | Some Report.Holds -> ()
  | _ -> Alcotest.fail "reach 2 3 should still hold"

let test_incremental_verdicts_match_scratch () =
  let rng = Sdn_util.Prng.create 7 in
  for _ = 1 to 6 do
    let net =
      Fixtures.random_line_net rng ~n_switches:5 ~rules_per_switch:4 ~header_len:8
    in
    let engine = Engine.create net in
    let invs =
      [ Invariant.Loop_free; Invariant.No_blackhole; Invariant.Reach (0, 4);
        Invariant.Isolated (0, 4) ]
    in
    ignore (Engine.check engine invs);
    for _ = 1 to 3 do
      let changed_tables = random_edit rng net in
      Engine.update engine ~changed_tables
    done;
    let incremental = Engine.check engine invs in
    let scratch = Engine.check (Engine.create net) invs in
    List.iter2
      (fun (inv_i, st_i) (inv_s, st_s) ->
        check_bool "same invariant" true (Invariant.equal inv_i inv_s);
        let verdict = function Report.Holds -> "holds" | Report.Violated _ -> "violated" in
        check_string
          ("verdict for " ^ Invariant.to_string inv_i)
          (verdict st_s) (verdict st_i);
        (* Violation multisets agree too (witness paths may differ). *)
        let n = function Report.Holds -> 0 | Report.Violated vs -> List.length vs in
        check_int "violation count" (n st_s) (n st_i))
      incremental.Report.results scratch.Report.results
  done

(* ------------------------------------------------------------------ *)
(* Determinism: 1 domain vs 4 domains, byte-identical JSON *)

let test_domains_byte_identical () =
  let rng = Sdn_util.Prng.create 11 in
  let net =
    Fixtures.random_line_net rng ~n_switches:6 ~rules_per_switch:5 ~header_len:8
  in
  let invs =
    [ Invariant.Loop_free; Invariant.No_blackhole; Invariant.Reach (0, 5);
      Invariant.Waypoint (0, 3, 5) ]
  in
  let sequential = Report.to_json (Engine.check (Engine.create net) invs) in
  let pool = Sdn_parallel.pool ~domains:4 in
  let parallel = Report.to_json (Engine.check (Engine.create ~pool net) invs) in
  check_string "json identical" sequential parallel

(* ------------------------------------------------------------------ *)
(* L001/L002 delegation: pinned against the historical inline walk *)

(* Verbatim re-implementation of the pre-delegation L001/L002 data
   computation (base rule-graph edges / next-hop diff fold), kept here
   as the regression oracle for the lint passes now delegating to
   Verify.Plumbing. *)
let old_l001 net =
  let entries = Array.of_list (Network.all_entries net) in
  let index_of = Hashtbl.create 16 in
  Array.iteri (fun i (e : FE.t) -> Hashtbl.add index_of e.FE.id i) entries;
  let inputs = Array.map (Network.input_space net) entries in
  let outputs = Array.map (Network.output_space net) entries in
  let successor_entries (r : FE.t) =
    match r.FE.action with
    | FE.Drop -> []
    | FE.Output _ -> (
        match Network.next_switch net r with
        | None -> []
        | Some sw -> Flow_table.entries (Network.table net ~switch:sw ~table:0))
    | FE.Goto_table tb -> Flow_table.entries (Network.table net ~switch:r.FE.switch ~table:tb)
  in
  let g = Digraph.create (Array.length entries) in
  Array.iteri
    (fun i (r : FE.t) ->
      List.iter
        (fun (q : FE.t) ->
          let j = Hashtbl.find index_of q.FE.id in
          if not (Hs.is_empty (Hs.inter outputs.(i) inputs.(j))) then
            Digraph.add_edge g i j)
        (successor_entries r))
    entries;
  match Digraph.find_cycle g with
  | None -> None
  | Some cycle ->
      let head = List.hd cycle in
      let backward path =
        List.fold_right
          (fun v after ->
            let r = entries.(v) in
            Hs.inter inputs.(v) (Hs.inverse_set_field ~set:r.FE.set_field after))
          path
          (Hs.full (Network.header_len net))
      in
      let round_trip = backward (cycle @ [ head ]) in
      let witness =
        if not (Hs.is_empty round_trip) then round_trip
        else
          match cycle with
          | x :: y :: _ -> Hs.inter outputs.(x) inputs.(y)
          | [ x ] -> Hs.inter outputs.(x) inputs.(x)
          | [] -> assert false
      in
      Some (List.map (fun v -> entries.(v).FE.id) cycle, witness)

let old_l002 net =
  List.filter_map
    (fun (r : FE.t) ->
      match r.FE.action with
      | FE.Output _ -> (
          match Network.next_switch net r with
          | None -> None
          | Some sw ->
              let leaked =
                List.fold_left
                  (fun space (q : FE.t) -> Hs.diff_cube space q.FE.match_)
                  (Network.output_space net r)
                  (Flow_table.entries (Network.table net ~switch:sw ~table:0))
              in
              if Hs.is_empty leaked then None else Some (r.FE.id, sw, leaked))
      | FE.Drop | FE.Goto_table _ -> None)
    (Network.all_entries net)

let cubes_exact a b =
  List.map Cube.to_string (Hs.cubes a) = List.map Cube.to_string (Hs.cubes b)

let lint_diagnostics net pass =
  let report = Lint.Engine.run ~only:[ pass ] net in
  List.filter
    (fun (d : Lint.Diagnostic.t) ->
      String.length d.Lint.Diagnostic.check >= 4
      && String.sub d.Lint.Diagnostic.check 0 4 = pass)
    report.Lint.Engine.diagnostics

let test_l001_delegation_pinned () =
  let nets =
    [ (let net, _, _ = loop_net () in net); (Fixtures.figure3 ()).Fixtures.net ]
    @ List.init 5 (fun i ->
          let rng = Sdn_util.Prng.create (100 + i) in
          Fixtures.random_line_net rng ~n_switches:5 ~rules_per_switch:4 ~header_len:8)
  in
  List.iter
    (fun net ->
      let expected = old_l001 net in
      let got = lint_diagnostics net "L001" in
      match (expected, got) with
      | None, [] -> ()
      | Some (ids, witness), [ d ] ->
          check_bool "same cycle ids" true (d.Lint.Diagnostic.entries = ids);
          check_string "severity" "error"
            (Lint.Diagnostic.severity_to_string d.Lint.Diagnostic.severity);
          check_bool "witness bit-identical" true
            (cubes_exact d.Lint.Diagnostic.witness witness)
      | None, _ :: _ -> Alcotest.fail "L001 reported a cycle the old walk did not"
      | Some _, _ -> Alcotest.fail "L001 missed the old walk's cycle")
    nets

let test_l002_delegation_pinned () =
  let nets =
    [ (let net, _ = leak_net () in net); (Fixtures.figure3 ()).Fixtures.net ]
    @ List.init 5 (fun i ->
          let rng = Sdn_util.Prng.create (200 + i) in
          Fixtures.random_line_net rng ~n_switches:5 ~rules_per_switch:4 ~header_len:8)
  in
  List.iter
    (fun net ->
      let expected = old_l002 net in
      let got = lint_diagnostics net "L002" in
      check_int "same finding count" (List.length expected) (List.length got);
      List.iter2
        (fun (id, sw, leaked) (d : Lint.Diagnostic.t) ->
          check_bool "same entry" true (d.Lint.Diagnostic.entries = [ id ]);
          check_bool "same switch" true (d.Lint.Diagnostic.switch = Some sw);
          check_string "severity" "warning"
            (Lint.Diagnostic.severity_to_string d.Lint.Diagnostic.severity);
          check_bool "witness bit-identical" true
            (cubes_exact d.Lint.Diagnostic.witness leaked))
        expected got)
    nets

(* ------------------------------------------------------------------ *)
(* Metrics instrumentation *)

let test_metrics_counters () =
  Metrics.Counter.reset_all ();
  let net, _, _ = loop_net () in
  let engine = Engine.create net in
  ignore (Engine.check engine [ Invariant.Loop_free ]);
  let snapshot = Metrics.Counter.snapshot () in
  let value k = Option.value (List.assoc_opt k snapshot) ~default:0 in
  check_bool "states counter" true (value "verify.states.computed" > 0);
  check_bool "iterations counter" true (value "verify.closure.iterations" > 0);
  check_bool "cubes counter" true (value "verify.closure.cubes" > 0)

let () =
  Alcotest.run "verify"
    [
      ( "invariant",
        [
          Alcotest.test_case "round trip" `Quick test_invariant_round_trip;
          Alcotest.test_case "parse errors" `Quick test_invariant_parse_errors;
          Alcotest.test_case "spec file" `Quick test_invariant_spec;
          Alcotest.test_case "validate" `Quick test_invariant_validate;
        ] );
      ( "closure",
        [
          QCheck_alcotest.to_alcotest prop_closure_vs_brute_force;
          Alcotest.test_case "incremental churn" `Quick test_incremental_random_churn;
          QCheck_alcotest.to_alcotest prop_incremental_vs_scratch;
        ] );
      ( "engine",
        [
          Alcotest.test_case "figure 3 invariants" `Quick test_figure3_invariants;
          Alcotest.test_case "loop detect and edit" `Quick test_loop_detection_and_edit;
          Alcotest.test_case "blackhole witness" `Quick test_blackhole_witness;
          Alcotest.test_case "cache hits" `Quick test_cache_hits_on_disjoint_component;
          Alcotest.test_case "incremental verdicts" `Quick
            test_incremental_verdicts_match_scratch;
          Alcotest.test_case "domains byte-identical" `Quick test_domains_byte_identical;
        ] );
      ( "witness",
        [
          Alcotest.test_case "rejects corruption" `Quick
            test_certification_rejects_corruption;
          Alcotest.test_case "all violations certified" `Quick
            test_every_violation_certified;
        ] );
      ( "lint-delegation",
        [
          Alcotest.test_case "L001 pinned" `Quick test_l001_delegation_pinned;
          Alcotest.test_case "L002 pinned" `Quick test_l002_delegation_pinned;
        ] );
      ("metrics", [ Alcotest.test_case "counters" `Quick test_metrics_counters ]);
    ]
