(* Tests for the UDP wire backend: frame codec totality, backend
   lifecycle, and end-to-end equivalence with the in-process emulator —
   the same faults must be localized whether probes travel through the
   OS network stack or through Emulator.inject, clean and under seeded
   loss. *)

module Emulator = Dataplane.Emulator
module Network = Openflow.Network
module Header = Hspace.Header
module Prng = Sdn_util.Prng
module Config = Sdnprobe.Config
module Runner = Sdnprobe.Runner
module Report = Sdnprobe.Report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Wire_proto *)

let test_frame_roundtrip () =
  let rng = Prng.create 3 in
  for _ = 1 to 100 do
    let len = 1 + Prng.int rng 64 in
    let header =
      Header.of_string (String.init len (fun _ -> if Prng.bool rng then '1' else '0'))
    in
    let f = { Wire.Proto.probe = Prng.int rng 1_000_000; ttl = Prng.int rng 256; header } in
    match Wire.Proto.decode (Wire.Proto.encode f) with
    | Some f' ->
        check_int "probe" f.Wire.Proto.probe f'.Wire.Proto.probe;
        check_int "ttl" f.Wire.Proto.ttl f'.Wire.Proto.ttl;
        check_bool "header" true (Header.equal f.Wire.Proto.header f'.Wire.Proto.header)
    | None -> Alcotest.fail "frame did not roundtrip"
  done

let test_frame_decode_total () =
  (* Garbage, truncation and wrong magic all come back None. *)
  let rng = Prng.create 4 in
  check_bool "empty" true (Wire.Proto.decode Bytes.empty = None);
  check_bool "wrong magic" true (Wire.Proto.decode (Bytes.make 16 '\x04') = None);
  let valid =
    Wire.Proto.encode
      { Wire.Proto.probe = 7; ttl = 9; header = Header.of_string "1100" }
  in
  for len = 0 to Bytes.length valid - 1 do
    check_bool "truncated frame" true (Wire.Proto.decode (Bytes.sub valid 0 len) = None)
  done;
  for _ = 1 to 500 do
    let b = Bytes.init (Prng.int rng 40) (fun _ -> Char.chr (Prng.int rng 256)) in
    ignore (Wire.Proto.decode b)
  done

(* ------------------------------------------------------------------ *)
(* End-to-end equivalence with the emulator backend *)

let make_faulty_emulator ~switches ~seed =
  let rng = Prng.create seed in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:switches () in
  let net = Topogen.Rule_gen.install rng topo in
  let emu = Emulator.create net in
  let truth =
    Experiments.Workloads.inject (Prng.create (seed + 1))
      ~kind:Experiments.Workloads.Basic ~fraction:0.02 emu
  in
  (emu, truth)

(* Wire timeouts are real: a congested CI box can stall the daemon for
   tens of milliseconds, so give probes a generous echo deadline. *)
let widen_timeouts config =
  Config.(config |> with_timeout_base_us 250_000 |> with_timeout_per_hop_us 5_000)

let run_both ~switches ~seed ~config ~loss =
  let flagged backend_kind =
    let emu, truth = make_faulty_emulator ~switches ~seed in
    if loss > 0. then
      Emulator.set_impairment emu
        (Dataplane.Impairment.create
           (Dataplane.Impairment.spec ~seed:(seed + 2) ~loss_rate:loss ()));
    let plan = Pipeline.plan (Pipeline.create (Emulator.network emu)) in
    let stop = Runner.stop_when_flagged truth in
    let report =
      match backend_kind with
      | Config.Emulator -> Runner.execute ~stop ~config ~emulator:emu plan
      | Config.Wire ->
          let w = Wire.create emu in
          Fun.protect
            ~finally:(fun () -> Wire.close w)
            (fun () ->
              Runner.execute_on ~stop ~config:(widen_timeouts config)
                ~backend:(Wire.backend w) plan)
    in
    (truth, Report.flagged_switches report)
  in
  let truth, on_emulator = flagged Config.Emulator in
  let truth', on_wire = flagged Config.Wire in
  check_bool "same ground truth" true (truth = truth');
  (truth, on_emulator, on_wire)

let test_equivalence_clean () =
  let truth, on_emulator, on_wire = run_both ~switches:16 ~seed:7 ~config:(Config.with_max_rounds 60 Config.default) ~loss:0. in
  check_bool "emulator finds the faults" true (truth = on_emulator);
  check_bool "wire finds the same faults" true (on_emulator = on_wire)

let test_equivalence_under_loss () =
  let config = Config.with_max_rounds 60 Config.resilient in
  let truth, on_emulator, on_wire =
    run_both ~switches:16 ~seed:7 ~config ~loss:0.02
  in
  check_bool "emulator finds the faults under loss" true (truth = on_emulator);
  check_bool "wire finds the same faults under loss" true (on_emulator = on_wire)

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let test_close_idempotent () =
  let emu, _ = make_faulty_emulator ~switches:4 ~seed:1 in
  let w = Wire.create emu in
  let port = Wire.switch_port w 0 in
  check_bool "real port" true (port > 0);
  check_bool "distinct ports" true (port <> Wire.switch_port w 1);
  Wire.close w;
  Wire.close w;
  (* the backend view's close delegates and stays idempotent too *)
  (Wire.backend w).Sdnprobe.Backend.close ()

let test_backend_shape () =
  let emu, _ = make_faulty_emulator ~switches:4 ~seed:2 in
  let w = Wire.create emu in
  Fun.protect
    ~finally:(fun () -> Wire.close w)
    (fun () ->
      let b = Wire.backend w in
      check_bool "real time" true b.Sdnprobe.Backend.real_time;
      check_bool "batched sends" true (b.Sdnprobe.Backend.send_batch <> None);
      check_bool "never order-free" false
        (b.Sdnprobe.Backend.order_free ~config:Config.default))

let () =
  Alcotest.run "wire"
    [
      ( "proto",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "decode total" `Quick test_frame_decode_total;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "clean" `Quick test_equivalence_clean;
          Alcotest.test_case "2% seeded loss" `Quick test_equivalence_under_loss;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "close idempotent" `Quick test_close_idempotent;
          Alcotest.test_case "backend shape" `Quick test_backend_shape;
        ] );
    ]
