(* Cross-validation of the analytic pipeline against the executable
   data plane: what the rule graph + MLPC + header construction PREDICT
   a packet will traverse must be exactly what the emulator EXECUTES.
   This closes the loop between Header Space Analysis and forwarding
   semantics on randomized workloads. *)

module Emu = Dataplane.Emulator
module RG = Rulegraph.Rule_graph
module Probe = Sdnprobe.Probe
module Plan = Sdnprobe.Plan
module FE = Openflow.Flow_entry
module Hs = Hspace.Hs
module Header = Hspace.Header
module Prng = Sdn_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let random_net seed =
  let rng = Prng.create seed in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:(8 + Prng.int rng 10) () in
  let spec =
    {
      Topogen.Rule_gen.default_spec with
      Topogen.Rule_gen.flows_per_destination = 3;
      k_paths = 2;
    }
  in
  Topogen.Rule_gen.install ~spec rng topo

(* Every probe of a static plan, injected into a healthy emulator, is
   captured by its own trap AND traverses exactly the rules its cover
   path predicts. *)
let test_plan_predictions_execute () =
  for seed = 1 to 6 do
    let net = random_net seed in
    let plan = Pipeline.plan (Pipeline.create net) in
    let emu = Emu.create net in
    List.iter
      (fun (p : Probe.t) ->
        Emu.install_trap emu ~probe:p.Probe.id ~switch:p.Probe.terminal_switch
          ~rule:p.Probe.terminal_rule ~header:p.Probe.expected_header;
        let result = Emu.inject emu ~at:p.Probe.inject_switch p.Probe.header in
        (match result.Emu.outcome with
        | Emu.Returned { probe; _ } when probe = p.Probe.id -> ()
        | _ -> Alcotest.failf "probe %d not captured (seed %d)" p.Probe.id seed);
        let executed = List.map (fun h -> h.Emu.entry) result.Emu.trace in
        check_bool "predicted rules executed" true (executed = p.Probe.rules);
        Emu.remove_probe_traps emu ~probe:p.Probe.id)
      plan.Plan.probes
  done

(* Randomized plans satisfy the same agreement. *)
let test_randomized_predictions_execute () =
  for seed = 1 to 3 do
    let net = random_net (100 + seed) in
    let plan =
      (Plan.generate [@alert "-deprecated"])
        ~mode:(Plan.Randomized (Prng.create seed)) net
    in
    let emu = Emu.create net in
    List.iter
      (fun (p : Probe.t) ->
        Emu.install_trap emu ~probe:p.Probe.id ~switch:p.Probe.terminal_switch
          ~rule:p.Probe.terminal_rule ~header:p.Probe.expected_header;
        let result = Emu.inject emu ~at:p.Probe.inject_switch p.Probe.header in
        (match result.Emu.outcome with
        | Emu.Returned { probe; _ } when probe = p.Probe.id -> ()
        | _ -> Alcotest.failf "randomized probe %d not captured" p.Probe.id);
        check_int "hop count agrees" (Probe.hop_count p) (List.length result.Emu.trace);
        Emu.remove_probe_traps emu ~probe:p.Probe.id)
      plan.Plan.probes
  done

(* Arbitrary legal rule-graph paths (not only cover paths): any sampled
   start-space header walks exactly that expanded path prefix in the
   emulator. *)
let test_legal_paths_execute () =
  let rng = Prng.create 9 in
  for seed = 10 to 13 do
    let net = random_net seed in
    let rg = RG.build net in
    let g = RG.graph rg in
    for _ = 1 to 40 do
      let u = Prng.int rng (RG.n_vertices rg) in
      (* Random walk along closure-graph edges, keeping legality. *)
      let rec extend path v budget =
        if budget = 0 then List.rev path
        else
          let succs =
            List.filter
              (fun w -> RG.is_legal rg (List.rev (w :: path)))
              (Sdngraph.Digraph.succ g v)
          in
          match succs with
          | [] -> List.rev path
          | _ ->
              let w = Prng.choose_list rng succs in
              extend (w :: path) w (budget - 1)
      in
      let path = extend [ u ] u 3 in
      let expanded = RG.expand_path rg path in
      let space = RG.start_space rg expanded in
      if not (Hs.is_empty space) then begin
        let header = Header.of_cube (Option.get (Hs.first_member space)) in
        let rules = List.map (fun v -> (RG.vertex_entry rg v).FE.id) expanded in
        let first = List.hd expanded in
        let emu = Emu.create net in
        let result =
          Emu.inject emu ~at:(RG.vertex_entry rg first).FE.switch header
        in
        let executed = List.map (fun h -> h.Emu.entry) result.Emu.trace in
        (* The path must be a prefix of the execution (the packet keeps
           forwarding past the path's end). *)
        let rec is_prefix a b =
          match (a, b) with
          | [], _ -> true
          | x :: a', y :: b' -> x = y && is_prefix a' b'
          | _, [] -> false
        in
        check_bool "legal path is an execution prefix" true (is_prefix rules executed)
      end
    done
  done

(* Conversely: the emulator's execution of any in-policy header is a
   legal path of the rule graph. *)
let test_executions_are_legal () =
  let rng = Prng.create 21 in
  for seed = 20 to 23 do
    let net = random_net seed in
    let rg = RG.build net in
    let emu = Emu.create net in
    let entries = Array.of_list (Openflow.Network.all_entries net) in
    for _ = 1 to 60 do
      let e = Prng.choose rng entries in
      let header = Header.of_cube (Hspace.Cube.sample rng e.FE.match_) in
      let result = Emu.inject emu ~at:e.FE.switch header in
      let executed = List.map (fun h -> h.Emu.entry) result.Emu.trace in
      match executed with
      | [] -> ()
      | _ ->
          let vertices = List.map (RG.vertex_of_entry rg) executed in
          check_bool "execution is legal" true
            (not (Hs.is_empty (RG.forward_space rg vertices)))
    done
  done

let () =
  Alcotest.run "integration"
    [
      ( "analysis vs execution",
        [
          Alcotest.test_case "static plans execute" `Slow test_plan_predictions_execute;
          Alcotest.test_case "randomized plans execute" `Slow test_randomized_predictions_execute;
          Alcotest.test_case "legal paths execute" `Slow test_legal_paths_execute;
          Alcotest.test_case "executions are legal" `Slow test_executions_are_legal;
        ] );
    ]
