(* Tests for the lint engine: the diagnostics framework, each analysis
   pass against a hand-built policy exhibiting exactly its defect, and
   the engine plumbing (pass selection, exit codes, JSON, timings). *)

module Cube = Hspace.Cube
module Hs = Hspace.Hs
module FE = Openflow.Flow_entry
module Topology = Openflow.Topology
module Network = Openflow.Network
module D = Lint.Diagnostic
module Engine = Lint.Engine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let of_check report id =
  List.filter (fun (d : D.t) -> d.check = id) report.Engine.diagnostics

(* A two-switch line: sw0 --(1:1)-- sw1 --(2:1)-- sw2. *)
let line3 ~header_len =
  let topo = Topology.create ~n_switches:3 in
  Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  Topology.add_link topo ~sw_a:1 ~port_a:2 ~sw_b:2 ~port_b:1;
  Network.create ~header_len topo

let add net ~switch ?table ~priority ~match_ ?set_field action =
  Network.add_entry net ~switch ?table ~priority ~match_:(Cube.of_string match_)
    ?set_field:(Option.map Cube.of_string set_field)
    action

(* ------------------------------------------------------------------ *)
(* L001 forwarding loop *)

let test_loop () =
  let topo = Topology.create ~n_switches:2 in
  Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  let a = add net ~switch:0 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  let b = add net ~switch:1 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  let report = Engine.run net in
  match of_check report "L001-forwarding-loop" with
  | [ d ] ->
      check_string "severity" "error" (D.severity_to_string d.D.severity);
      check_bool "cycle entries" true
        (List.sort compare d.D.entries = List.sort compare [ a.FE.id; b.FE.id ]);
      (* Headers at the loop head that survive a round trip: all of 1xxx. *)
      check_bool "witness" true (Hs.equal_sets d.D.witness (Hs.of_cubes 4 [ Cube.of_string "1xxx" ]))
  | ds -> Alcotest.failf "expected one loop diagnostic, got %d" (List.length ds)

let test_loop_witness_through_rewrite () =
  (* Mutual forwarding only through set-field rewrites: sw0 rewrites
     0xxx to 1xxx, sw1 rewrites back. *)
  let topo = Topology.create ~n_switches:2 in
  Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  let _ = add net ~switch:0 ~priority:1 ~match_:"0xxx" ~set_field:"1xxx" (FE.Output 1) in
  let _ = add net ~switch:1 ~priority:1 ~match_:"1xxx" ~set_field:"0xxx" (FE.Output 1) in
  let report = Engine.run net in
  match of_check report "L001-forwarding-loop" with
  | [ d ] -> check_bool "witness nonempty" false (Hs.is_empty d.D.witness)
  | _ -> Alcotest.fail "expected a loop"

(* ------------------------------------------------------------------ *)
(* L002 blackhole *)

let test_blackhole () =
  let topo = Topology.create ~n_switches:2 in
  Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  let fwd = add net ~switch:0 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  let _ = add net ~switch:1 ~priority:1 ~match_:"11xx" FE.Drop in
  let report = Engine.run net in
  match of_check report "L002-blackhole" with
  | [ d ] ->
      check_string "severity" "warning" (D.severity_to_string d.D.severity);
      check_bool "leaking rule" true (d.D.entries = [ fwd.FE.id ]);
      check_bool "at switch" true (d.D.switch = Some 1);
      check_bool "leaked space" true
        (Hs.equal_sets d.D.witness (Hs.of_cubes 4 [ Cube.of_string "10xx" ]))
  | ds -> Alcotest.failf "expected one blackhole, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* L003 / L004 shadowing *)

let test_full_shadow () =
  let net = line3 ~header_len:4 in
  let _hi = add net ~switch:0 ~priority:2 ~match_:"1xxx" (FE.Output 1) in
  let dead = add net ~switch:0 ~priority:1 ~match_:"11xx" (FE.Output 1) in
  let _sink = add net ~switch:1 ~priority:1 ~match_:"xxxx" FE.Drop in
  let report = Engine.run net in
  match of_check report "L003-shadowed-rule" with
  | [ d ] ->
      check_string "severity" "error" (D.severity_to_string d.D.severity);
      check_int "shadowed entry" dead.FE.id (List.hd d.D.entries);
      check_bool "witness is whole match" true
        (Hs.equal_sets d.D.witness (Hs.of_cubes 4 [ Cube.of_string "11xx" ]))
  | ds -> Alcotest.failf "expected one shadow, got %d" (List.length ds)

let test_partial_shadow () =
  let net = line3 ~header_len:4 in
  let _hi = add net ~switch:0 ~priority:2 ~match_:"11xx" (FE.Output 1) in
  let lo = add net ~switch:0 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  let _sink = add net ~switch:1 ~priority:1 ~match_:"xxxx" FE.Drop in
  let report = Engine.run net in
  match of_check report "L004-partial-shadow" with
  | [ d ] ->
      check_int "entry" lo.FE.id (List.hd d.D.entries);
      check_bool "stolen portion" true
        (Hs.equal_sets d.D.witness (Hs.of_cubes 4 [ Cube.of_string "11xx" ]))
  | ds -> Alcotest.failf "expected one partial shadow, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* L005 equal-priority ambiguity *)

let test_priority_ambiguity () =
  let net = line3 ~header_len:4 in
  let a = add net ~switch:0 ~priority:5 ~match_:"1xxx" (FE.Output 1) in
  let b = add net ~switch:0 ~priority:5 ~match_:"11xx" FE.Drop in
  let _sink = add net ~switch:1 ~priority:1 ~match_:"xxxx" FE.Drop in
  let report = Engine.run net in
  match of_check report "L005-priority-ambiguity" with
  | [ d ] ->
      check_bool "pair" true (d.D.entries = [ a.FE.id; b.FE.id ]);
      check_bool "contested space" true
        (Hs.equal_sets d.D.witness (Hs.of_cubes 4 [ Cube.of_string "11xx" ]))
  | ds -> Alcotest.failf "expected one ambiguity, got %d" (List.length ds)

let test_priority_ambiguity_identical_behavior () =
  (* Same action and set field: order is irrelevant, no ambiguity. *)
  let net = line3 ~header_len:4 in
  let _ = add net ~switch:0 ~priority:5 ~match_:"1xxx" (FE.Output 1) in
  let _ = add net ~switch:0 ~priority:5 ~match_:"11xx" (FE.Output 1) in
  let _sink = add net ~switch:1 ~priority:1 ~match_:"xxxx" FE.Drop in
  let report = Engine.run net in
  check_int "no ambiguity" 0 (List.length (of_check report "L005-priority-ambiguity"))

(* ------------------------------------------------------------------ *)
(* L006 dead switches, L007 dead ports *)

let test_dead_switch () =
  let net = line3 ~header_len:4 in
  (* sw0 forwards into sw1; sw1 has no entries; sw2 has no entries
     either but nothing feeds it. *)
  let _ = add net ~switch:0 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  let report = Engine.run net in
  let deads = of_check report "L006-dead-switch" in
  (* sw1/sw2 have no entries (warnings); sw0 is merely not fed by any
     neighbour policy (info). *)
  check_bool "sw1 and sw2 warned" true
    (List.sort compare
       (List.filter_map
          (fun (d : D.t) -> if d.D.severity = D.Warning then d.D.switch else None)
          deads)
    = [ 1; 2 ]);
  check_bool "sw0 only informational" true
    (List.for_all
       (fun (d : D.t) -> d.D.switch <> Some 0 || d.D.severity = D.Info)
       deads)

let test_isolated_switch () =
  let topo3 = Topology.create ~n_switches:3 in
  Topology.add_link topo3 ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo3 in
  let _ = add net ~switch:0 ~priority:1 ~match_:"xxxx" (FE.Output 1) in
  let _ = add net ~switch:1 ~priority:1 ~match_:"xxxx" FE.Drop in
  let report = Engine.run net in
  check_bool "isolated sw2 flagged" true
    (List.exists
       (fun (d : D.t) -> d.D.switch = Some 2 && d.D.severity = D.Warning)
       (of_check report "L006-dead-switch"))

let test_dead_port () =
  let net = line3 ~header_len:4 in
  let _ = add net ~switch:0 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  let _ = add net ~switch:1 ~priority:1 ~match_:"xxxx" FE.Drop in
  let _ = add net ~switch:2 ~priority:1 ~match_:"xxxx" FE.Drop in
  let report = Engine.run net in
  let ports = of_check report "L007-dead-port" in
  (* Unused: sw1 ports 1 (back) and 2 (on), sw2 port 1. sw0:1 is used. *)
  check_int "three dead ports" 3 (List.length ports);
  check_bool "sw0 port used" true
    (List.for_all (fun (d : D.t) -> d.D.switch <> Some 0) ports);
  check_bool "witness empty" true
    (List.for_all (fun (d : D.t) -> Hs.is_empty d.D.witness) ports)

(* ------------------------------------------------------------------ *)
(* L008 redundant rules *)

let test_redundant () =
  let net = line3 ~header_len:4 in
  let r = add net ~switch:0 ~priority:2 ~match_:"11xx" (FE.Output 1) in
  let _lo = add net ~switch:0 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  let report = Engine.run ~only:[ "L008-redundant-rule" ] net in
  match of_check report "L008-redundant-rule" with
  | [ d ] ->
      check_int "redundant entry" r.FE.id (List.hd d.D.entries);
      check_bool "witness is input" true
        (Hs.equal_sets d.D.witness (Hs.of_cubes 4 [ Cube.of_string "11xx" ]))
  | ds -> Alcotest.failf "expected one redundant rule, got %d" (List.length ds)

let test_not_redundant_different_action () =
  let net = line3 ~header_len:4 in
  (* A Drop over an Output (and an Output over table-miss): neither rule
     is removable. *)
  let _hi = add net ~switch:0 ~priority:2 ~match_:"11xx" FE.Drop in
  let _lo = add net ~switch:0 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  let report = Engine.run ~only:[ "L008-redundant-rule" ] net in
  check_int "none redundant" 0 (List.length (of_check report "L008-redundant-rule"))

let test_redundant_drop_fallthrough () =
  (* An explicit Drop whose residual falls through to table-miss is
     behavior-preserving to remove. *)
  let net = line3 ~header_len:4 in
  let r = add net ~switch:0 ~priority:1 ~match_:"0xxx" FE.Drop in
  let report = Engine.run ~only:[ "L008-redundant-rule" ] net in
  match of_check report "L008-redundant-rule" with
  | [ d ] -> check_int "drop rule" r.FE.id (List.hd d.D.entries)
  | ds -> Alcotest.failf "expected one redundant drop, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* L009 probe-plan coverage *)

let coverage_net () =
  let net = line3 ~header_len:4 in
  let a = add net ~switch:0 ~priority:1 ~match_:"1xxx" (FE.Output 1) in
  let b = add net ~switch:1 ~priority:1 ~match_:"1xxx" (FE.Output 2) in
  let c = add net ~switch:2 ~priority:1 ~match_:"1xxx" FE.Drop in
  (net, a, b, c)

let test_coverage_complete () =
  let net, a, b, c = coverage_net () in
  let report = Engine.run ~probes:[ [ a.FE.id; b.FE.id; c.FE.id ] ] net in
  check_int "no uncovered" 0 (List.length (of_check report "L009-uncovered-rule"));
  check_bool "not skipped" true (not (List.mem "L009-uncovered-rule" report.Engine.skipped))

let test_coverage_hole () =
  let net, a, b, c = coverage_net () in
  let report = Engine.run ~probes:[ [ a.FE.id; b.FE.id ] ] net in
  match of_check report "L009-uncovered-rule" with
  | [ d ] ->
      check_string "severity" "error" (D.severity_to_string d.D.severity);
      check_int "uncovered entry" c.FE.id (List.hd d.D.entries);
      check_bool "witness is input space" true
        (Hs.equal_sets d.D.witness (Hs.of_cubes 4 [ Cube.of_string "1xxx" ]))
  | ds -> Alcotest.failf "expected one uncovered rule, got %d" (List.length ds)

let test_coverage_skipped_without_plan () =
  let net, _, _, _ = coverage_net () in
  let report = Engine.run net in
  check_bool "skipped" true (List.mem "L009-uncovered-rule" report.Engine.skipped);
  check_bool "no timing entry" true
    (not (List.mem_assoc "L009-uncovered-rule" report.Engine.timings))

(* ------------------------------------------------------------------ *)
(* Engine plumbing *)

let test_pass_selection () =
  let net, _, _, _ = coverage_net () in
  let report = Engine.run ~only:[ "l001"; "L003-shadowed-rule" ] net in
  check_int "two passes" 2 (List.length report.Engine.timings);
  check_bool "unknown pass raises" true
    (try
       ignore (Engine.run ~only:[ "L999" ] net);
       false
     with Engine.Unknown_pass _ -> true)

let test_exit_codes () =
  let warn_only =
    {
      Engine.diagnostics =
        [ D.make ~check:"x" ~severity:D.Warning ~witness:(Hs.empty 4) "w" ];
      timings = [];
      skipped = [];
    }
  in
  let with_error =
    {
      Engine.diagnostics =
        [
          D.make ~check:"x" ~severity:D.Info ~witness:(Hs.empty 4) "i";
          D.make ~check:"y" ~severity:D.Error ~witness:(Hs.empty 4) "e";
        ];
      timings = [];
      skipped = [];
    }
  in
  check_int "warnings pass under fail-on error" 0
    (Engine.exit_code ~fail_on:Engine.Fail_error warn_only);
  check_int "warnings fail under fail-on warning" 1
    (Engine.exit_code ~fail_on:Engine.Fail_warning warn_only);
  check_int "errors exit 2" 2 (Engine.exit_code ~fail_on:Engine.Fail_error with_error);
  check_int "never is 0" 0 (Engine.exit_code ~fail_on:Engine.Fail_never with_error)

let test_json_shape () =
  let net, a, b, c = coverage_net () in
  let report = Engine.run ~probes:[ [ a.FE.id; b.FE.id; c.FE.id ] ] net in
  let json = Engine.to_json report in
  check_bool "object" true
    (String.length json > 2 && json.[0] = '{' && json.[String.length json - 1] = '}');
  List.iter
    (fun key ->
      let re = Printf.sprintf "\"%s\"" key in
      check_bool key true
        (let rec find i =
           i + String.length re <= String.length json
           && (String.sub json i (String.length re) = re || find (i + 1))
         in
         find 0))
    [ "diagnostics"; "summary"; "timings"; "skipped"; "error"; "warning"; "info" ]

let test_sorted_severity_order () =
  let net = line3 ~header_len:4 in
  (* Blackhole (warning) plus a shadowed rule (error): sorted puts the
     error first even though the blackhole pass runs first. *)
  let _fwd = add net ~switch:0 ~priority:3 ~match_:"1xxx" (FE.Output 1) in
  let _hi = add net ~switch:1 ~priority:2 ~match_:"11xx" FE.Drop in
  let _dead = add net ~switch:1 ~priority:1 ~match_:"110x" FE.Drop in
  let report = Engine.run net in
  match Engine.sorted report with
  | first :: _ -> check_string "error first" "error" (D.severity_to_string first.D.severity)
  | [] -> Alcotest.fail "expected diagnostics"

(* ------------------------------------------------------------------ *)
(* Static_checks compatibility shim *)

module SC = Rulegraph.Static_checks

let test_shim_matches_engine () =
  let topo = Topology.create ~n_switches:2 in
  Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Network.create ~header_len:4 topo in
  let fwd = add net ~switch:0 ~priority:2 ~match_:"1xxx" (FE.Output 1) in
  let dead = add net ~switch:0 ~priority:1 ~match_:"11xx" (FE.Output 1) in
  let _ = add net ~switch:1 ~priority:1 ~match_:"11xx" FE.Drop in
  (match SC.check net with
  | [ SC.Blackhole { rule; next_switch; space }; SC.Shadowed_rule id ] ->
      check_int "blackhole rule" fwd.FE.id rule;
      check_int "next switch" 1 next_switch;
      check_bool "space" true (Hs.equal_sets space (Hs.of_cubes 4 [ Cube.of_string "10xx" ]));
      check_int "shadowed" dead.FE.id id
  | issues -> Alcotest.failf "unexpected shim result (%d issues)" (List.length issues));
  check_bool "pp mentions priority" true
    (let s =
       Format.asprintf "%a" (SC.pp_issue net) (SC.Shadowed_rule dead.FE.id)
     in
     (* Satellite contract: priorities printed alongside ids. *)
     let contains sub s =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains "(p1)" s)

(* ------------------------------------------------------------------ *)
(* Scale: the full registry over a generated Rocketfuel-like policy *)

let test_generated_scale () =
  let rng = Sdn_util.Prng.create 7 in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:50 () in
  let net = Topogen.Rule_gen.install rng topo in
  let rg = Rulegraph.Rule_graph.build net in
  let cover = Mlpc.Legal_matching.solve rg in
  let probes =
    List.map
      (fun (p : Mlpc.Cover.path) ->
        List.map
          (fun v -> (Rulegraph.Rule_graph.vertex_entry rg v).FE.id)
          p.Mlpc.Cover.rules)
      cover.Mlpc.Cover.paths
  in
  let report = Engine.run ~probes net in
  (* All nine passes ran and were timed. *)
  check_int "nine passes timed" 9 (List.length report.Engine.timings);
  check_int "none skipped" 0 (List.length report.Engine.skipped);
  (* Generated policies are loop-free and shadow-free by construction,
     and the legal path cover exercises every testable rule: no
     Error-severity findings. *)
  check_int "no errors" 0 (Engine.count report D.Error);
  (* Every diagnostic names its check and location. *)
  List.iter
    (fun (d : D.t) ->
      check_bool "check id" true (String.length d.D.check >= 4);
      check_bool "has location" true (d.D.switch <> None || d.D.entries <> []))
    report.Engine.diagnostics

let () =
  Alcotest.run "lint"
    [
      ( "loops",
        [
          Alcotest.test_case "two-switch loop" `Quick test_loop;
          Alcotest.test_case "loop through rewrites" `Quick test_loop_witness_through_rewrite;
        ] );
      ("blackholes", [ Alcotest.test_case "leak" `Quick test_blackhole ]);
      ( "shadowing",
        [
          Alcotest.test_case "full" `Quick test_full_shadow;
          Alcotest.test_case "partial" `Quick test_partial_shadow;
        ] );
      ( "ambiguity",
        [
          Alcotest.test_case "different behavior" `Quick test_priority_ambiguity;
          Alcotest.test_case "identical behavior" `Quick test_priority_ambiguity_identical_behavior;
        ] );
      ( "dead configuration",
        [
          Alcotest.test_case "dead switch" `Quick test_dead_switch;
          Alcotest.test_case "isolated switch" `Quick test_isolated_switch;
          Alcotest.test_case "dead port" `Quick test_dead_port;
        ] );
      ( "redundancy",
        [
          Alcotest.test_case "covered by identical" `Quick test_redundant;
          Alcotest.test_case "different action" `Quick test_not_redundant_different_action;
          Alcotest.test_case "drop fallthrough" `Quick test_redundant_drop_fallthrough;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "complete" `Quick test_coverage_complete;
          Alcotest.test_case "hole" `Quick test_coverage_hole;
          Alcotest.test_case "skipped without plan" `Quick test_coverage_skipped_without_plan;
        ] );
      ( "engine",
        [
          Alcotest.test_case "pass selection" `Quick test_pass_selection;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "json shape" `Quick test_json_shape;
          Alcotest.test_case "sorted order" `Quick test_sorted_severity_order;
        ] );
      ( "compat",
        [ Alcotest.test_case "static_checks shim" `Quick test_shim_matches_engine ] );
      ( "scale",
        [ Alcotest.test_case "50-switch generated" `Slow test_generated_scale ] );
    ]
