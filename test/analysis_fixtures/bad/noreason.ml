(* Fixture: a suppression without a reason is itself an error (S001)
   and must NOT silence the finding it hangs over. *)
type tbl = (int, int) Hashtbl.t

(* sdncheck: allow D001 *)
let keys (tbl : tbl) = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
