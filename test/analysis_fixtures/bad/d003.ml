(* Fixture: ambient randomness must fire D003. *)
let () = Random.self_init ()
let roll () = Random.int 6
