(* Fixture: unguarded mutable toplevel state in a pooled-reachable
   module must fire D005 (one finding per toplevel binding). *)
let cache : (int, int) Hashtbl.t = Hashtbl.create 16
let hits = ref 0
let scratch = Buffer.create 64

module Nested = struct
  let inner = Array.make 8 0
end
