(* Fixture: both unordered-iteration shapes must fire D001. *)
type tbl = (int, int) Hashtbl.t
let keys (tbl : tbl) = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
let shout f (tbl : tbl) = Hashtbl.iter (fun k v -> f k v) tbl
