(* Fixture: polymorphic structural operations on header-space values
   must fire D004 — by variable name, by field name, and through a
   local alias of a header-space module. *)
module C = Hspace.Cube

type r = { header : int; tag : string }

let by_name cube cube' = cube = cube'
let by_field a b = a.header = b.header
let by_compare header other = Stdlib.compare header other
let by_hash hs = Hashtbl.hash hs
let via_alias x y = C.inter x y = C.inter y x
