(* Fixture: every wall-clock read must fire D002. *)
let a () = Unix.gettimeofday ()
let b () = Unix.time ()
let c () = Sys.time ()
