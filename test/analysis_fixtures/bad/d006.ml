(* Fixture: stdout writes in library code must fire D006. *)
let greet () = print_string "hello"
let report n = Printf.printf "n = %d\n" n
