(* Fixture: the sanctioned shapes — sort-wrapped folds in all three
   application forms, scalar module calls, module-provided equality,
   and a suppression that carries a reason. *)
type tbl = (int, int) Hashtbl.t
let direct (t : tbl) = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
let piped (t : tbl) = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort_uniq compare
let applied (t : tbl) = List.sort compare @@ Hashtbl.fold (fun k _ acc -> k :: acc) t []

let same_cube a b = Hspace.Cube.equal a b
let width cube = Hspace.Cube.length cube = 8

(* sdncheck: allow D001 — fixture: exercising the suppression parser,
   the fold result is discarded *)
let allowed (t : tbl) = Hashtbl.fold (fun _ _ n -> n + 1) t 0
