(* Tests for topology generation and flow-rule synthesis. *)

module Topology = Openflow.Topology
module Network = Openflow.Network
module FE = Openflow.Flow_entry
module Cube = Hspace.Cube
module Header = Hspace.Header
module Prng = Sdn_util.Prng
module RG = Rulegraph.Rule_graph
module Emu = Dataplane.Emulator

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Topologies *)

let connected topo =
  Sdngraph.Digraph.is_connected_undirected (Topology.to_digraph topo)

let test_rocketfuel_like () =
  let rng = Prng.create 1 in
  for n = 2 to 40 do
    let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:n () in
    check_int "switch count" n (Topology.n_switches topo);
    check_bool "connected" true (connected topo);
    check_bool "enough links" true (Topology.n_links topo >= n - 1)
  done

let test_rocketfuel_deterministic () =
  let gen seed =
    let topo = Topogen.Topo_gen.rocketfuel_like (Prng.create seed) ~n_switches:25 () in
    Topology.links topo
  in
  check_bool "same seed same topo" true (gen 7 = gen 7);
  check_bool "different seeds differ" true (gen 7 <> gen 8)

let test_line () =
  let topo = Topogen.Topo_gen.line ~n_switches:5 in
  check_int "links" 4 (Topology.n_links topo);
  check_bool "connected" true (connected topo)

let test_fat_tree_like () =
  let topo = Topogen.Topo_gen.fat_tree_like (Prng.create 3) ~pods:6 in
  check_bool "connected" true (connected topo)

(* ------------------------------------------------------------------ *)
(* Rule generation *)

let small_net seed =
  let rng = Prng.create seed in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:12 () in
  let spec =
    { Topogen.Rule_gen.default_spec with Topogen.Rule_gen.flows_per_destination = 3 }
  in
  (topo, Topogen.Rule_gen.install ~spec rng topo)

let test_rule_gen_loop_free () =
  for seed = 1 to 5 do
    let _, net = small_net seed in
    (* build raises Cyclic_policy when looping; also check explicitly. *)
    let rg = RG.build ~closure:false net in
    check_bool "dag" false (Sdngraph.Digraph.has_cycle (RG.base_graph rg))
  done

let test_rule_gen_structure () =
  let _, net = small_net 2 in
  let entries = Network.all_entries net in
  let deliveries = List.filter (fun (e : FE.t) -> e.priority = 30) entries in
  let aggregates = List.filter (fun (e : FE.t) -> e.priority = 10) entries in
  let engineered = List.filter (fun (e : FE.t) -> e.priority = 20) entries in
  check_int "one delivery per destination" 12 (List.length deliveries);
  (* Aggregates: every (switch, destination) pair except the destination
     itself. *)
  check_int "aggregates" (12 * 11) (List.length aggregates);
  check_bool "has engineered flows" true (engineered <> [])

let test_rule_gen_forwarding_delivers () =
  (* Any header addressed to destination v must reach v and be
     delivered there, from any starting switch. *)
  let _, net = small_net 3 in
  let emu = Emu.create net in
  let rng = Prng.create 9 in
  let p = Topogen.Rule_gen.prefix_bits ~n_switches:12 in
  for v = 0 to 11 do
    for s = 0 to 11 do
      if s <> v then begin
        let block = Topogen.Rule_gen.block_of ~header_len:32 ~prefix_bits:p v in
        let header = Header.of_cube (Cube.sample rng block) in
        match (Emu.inject emu ~at:s header).Emu.outcome with
        | Emu.Delivered { at_switch; _ } -> check_int "delivered at v" v at_switch
        | _ -> Alcotest.failf "header for %d from %d not delivered" v s
      end
    done
  done

let test_rule_gen_engineered_paths_used () =
  (* An engineered flow's header must traverse its priority-20 rules. *)
  let _, net = small_net 4 in
  let emu = Emu.create net in
  let engineered =
    List.filter (fun (e : FE.t) -> e.priority = 20) (Network.all_entries net)
  in
  check_bool "exists" true (engineered <> []);
  let e = List.hd engineered in
  let rng = Prng.create 1 in
  let header = Header.of_cube (Cube.sample rng e.FE.match_) in
  let result = Emu.inject emu ~at:e.FE.switch header in
  check_bool "traverses the engineered rule" true
    (List.exists (fun h -> h.Emu.entry = e.FE.id) result.Emu.trace)

let test_rule_gen_spec_validation () =
  let topo = Topogen.Topo_gen.line ~n_switches:4 in
  let spec = { Topogen.Rule_gen.default_spec with Topogen.Rule_gen.header_len = 6 } in
  Alcotest.check_raises "header too small"
    (Invalid_argument "Rule_gen.install: dst+src+selector bits exceed header length")
    (fun () -> ignore (Topogen.Rule_gen.install ~spec (Prng.create 1) topo));
  let spec2 =
    { Topogen.Rule_gen.default_spec with Topogen.Rule_gen.k_paths = 9; selector_bits = 3 }
  in
  Alcotest.check_raises "too many paths"
    (Invalid_argument "Rule_gen.install: more paths than selector values") (fun () ->
      ignore (Topogen.Rule_gen.install ~spec:spec2 (Prng.create 1) topo))

let test_prefix_bits () =
  check_int "2 switches" 1 (Topogen.Rule_gen.prefix_bits ~n_switches:2);
  check_int "3 switches" 2 (Topogen.Rule_gen.prefix_bits ~n_switches:3);
  check_int "16 switches" 4 (Topogen.Rule_gen.prefix_bits ~n_switches:16);
  check_int "17 switches" 5 (Topogen.Rule_gen.prefix_bits ~n_switches:17)

let acl_net seed =
  let rng = Prng.create seed in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:10 () in
  let spec =
    {
      Topogen.Rule_gen.default_spec with
      Topogen.Rule_gen.flows_per_destination = 3;
      acl_rules_per_switch = 4;
    }
  in
  Topogen.Rule_gen.install ~spec rng topo

let test_acl_pipeline_structure () =
  let net = acl_net 41 in
  check_int "two tables" 2 (Network.n_tables net);
  for sw = 0 to 9 do
    let t0 = Openflow.Flow_table.entries (Network.table net ~switch:sw ~table:0) in
    (* 4 blacklist drops + one goto per destination. *)
    check_int "table 0 size" 14 (List.length t0);
    check_bool "catch-all goto" true
      (List.exists (fun (e : FE.t) -> e.action = FE.Goto_table 1) t0);
    check_bool "routing rules in table 1" true
      (Openflow.Flow_table.size (Network.table net ~switch:sw ~table:1) > 0)
  done

let test_acl_pipeline_forwarding () =
  (* Clean payloads route normally through the two-table pipeline;
     blacklisted payloads die at the first switch's ACL. *)
  let net = acl_net 42 in
  let emu = Emu.create net in
  let rng = Prng.create 1 in
  let p = Topogen.Rule_gen.prefix_bits ~n_switches:10 in
  let acl0 =
    List.filter
      (fun (e : FE.t) -> e.table = 0 && e.action = FE.Drop)
      (Network.switch_entries net 3)
  in
  check_int "four blacklist rules" 4 (List.length acl0);
  let block = Topogen.Rule_gen.block_of ~header_len:32 ~prefix_bits:p 7 in
  (* A header inside a blacklisted pattern, addressed to switch 7. *)
  let bad =
    match Hspace.Cube.inter block (List.hd acl0).FE.match_ with
    | Some c -> Header.of_cube (Hspace.Cube.first_member c)
    | None -> Alcotest.fail "pattern should intersect the block"
  in
  (match (Emu.inject emu ~at:3 bad).Emu.outcome with
  | Emu.Delivered { at_switch = 3; _ } -> () (* absorbed by the ACL *)
  | _ -> Alcotest.fail "blacklisted payload must die at the ACL");
  (* A clean payload gets through: avoid all patterns of all switches. *)
  let avoid =
    List.concat_map
      (fun sw ->
        List.filter_map
          (fun (e : FE.t) ->
            if e.table = 0 && e.action = FE.Drop then Some e.match_ else None)
          (Network.switch_entries net sw))
      (List.init 10 Fun.id)
  in
  match Sat.Header_encoding.find_header ~avoid ~inside:[ block ] 32 with
  | None -> Alcotest.fail "expected a clean header"
  | Some clean -> (
      ignore rng;
      match (Emu.inject emu ~at:3 clean).Emu.outcome with
      | Emu.Delivered { at_switch = 7; _ } -> ()
      | _ -> Alcotest.fail "clean payload must be delivered at its destination")

let test_acl_pipeline_probes () =
  (* The whole pipeline is probe-coverable: every rule, ACL included,
     appears in the plan, and faults behind the goto are localized. *)
  let net = acl_net 43 in
  let plan = Pipeline.plan (Pipeline.create net) in
  let covered =
    List.sort_uniq compare
      (List.concat_map (fun (pr : Sdnprobe.Probe.t) -> pr.Sdnprobe.Probe.rules)
         plan.Sdnprobe.Plan.probes)
  in
  check_int "every rule covered" (Network.n_entries net) (List.length covered);
  (* Fault on a routing rule (table 1): localized through the ACL. *)
  let victim =
    List.find
      (fun (e : FE.t) -> e.table = 1 && (match e.action with FE.Output _ -> true | _ -> false))
      (Network.all_entries net)
  in
  let emu = Emu.create net in
  Emu.set_fault emu ~entry:victim.FE.id (Dataplane.Fault.make Dataplane.Fault.Drop_packet);
  let report =
    Sdnprobe.Runner.execute
      ~stop:(Sdnprobe.Runner.stop_when_flagged [ victim.FE.switch ])
      ~config:Sdnprobe.Config.default ~emulator:emu
      (Pipeline.plan (Pipeline.create net))
  in
  check_bool "localized" true
    (Sdnprobe.Report.flagged_switches report = [ victim.FE.switch ])

(* ------------------------------------------------------------------ *)
(* Campus dataset *)

let test_campus_statistics () =
  let net = Topogen.Campus.synthesize (Prng.create 1) in
  let s = Topogen.Campus.stats_of net in
  check_int "max overlap" 65 s.Topogen.Campus.max_overlap;
  check_bool "table sizes" true
    (List.map snd s.Topogen.Campus.table_sizes = [ 550; 579 ]);
  check_int "total" (550 + 579 + 2) s.Topogen.Campus.total_rules

let test_campus_loop_free_and_coverable () =
  let net = Topogen.Campus.synthesize (Prng.create 2) in
  let rg = RG.build net in
  check_bool "dag" false (Sdngraph.Digraph.has_cycle (RG.graph rg));
  let cover = Mlpc.Legal_matching.solve rg in
  check_bool "no untestable rules" true (cover.Mlpc.Cover.untestable = []);
  check_bool "is cover" true (Mlpc.Cover.is_cover rg cover);
  (* The paper reports ~600 test packets for the real dataset. *)
  let packets = Mlpc.Cover.size cover in
  check_bool "packet count near paper's 600" true (packets >= 550 && packets <= 700)

let test_campus_custom_sizes () =
  let net = Topogen.Campus.synthesize ~table_a:100 ~table_b:120 ~max_overlap:20 (Prng.create 3) in
  let s = Topogen.Campus.stats_of net in
  check_int "overlap" 20 s.Topogen.Campus.max_overlap;
  check_bool "tables" true (List.map snd s.Topogen.Campus.table_sizes = [ 100; 120 ])

let test_campus_forwarding () =
  let net = Topogen.Campus.synthesize (Prng.create 4) in
  let emu = Emu.create net in
  let rng = Prng.create 5 in
  (* Any header inside one of core A's routes is carried through both
     cores and delivered at the egress edge (core B spans core A's
     family universe). *)
  let core_a = Network.switch_entries net 1 in
  for _ = 1 to 20 do
    let e = Prng.choose_list rng core_a in
    let header = Header.of_cube (Cube.sample rng e.FE.match_) in
    match (Emu.inject emu ~at:0 header).Emu.outcome with
    | Emu.Delivered { at_switch; _ } -> check_int "egress" 3 at_switch
    | _ -> Alcotest.fail "campus header lost"
  done

let () =
  Alcotest.run "topogen"
    [
      ( "topologies",
        [
          Alcotest.test_case "rocketfuel-like" `Quick test_rocketfuel_like;
          Alcotest.test_case "deterministic" `Quick test_rocketfuel_deterministic;
          Alcotest.test_case "line" `Quick test_line;
          Alcotest.test_case "fat-tree-like" `Quick test_fat_tree_like;
        ] );
      ( "rule generation",
        [
          Alcotest.test_case "loop free" `Quick test_rule_gen_loop_free;
          Alcotest.test_case "structure" `Quick test_rule_gen_structure;
          Alcotest.test_case "forwarding delivers" `Quick test_rule_gen_forwarding_delivers;
          Alcotest.test_case "engineered paths" `Quick test_rule_gen_engineered_paths_used;
          Alcotest.test_case "spec validation" `Quick test_rule_gen_spec_validation;
          Alcotest.test_case "prefix bits" `Quick test_prefix_bits;
        ] );
      ( "acl pipeline",
        [
          Alcotest.test_case "structure" `Quick test_acl_pipeline_structure;
          Alcotest.test_case "forwarding" `Quick test_acl_pipeline_forwarding;
          Alcotest.test_case "probe coverage" `Quick test_acl_pipeline_probes;
        ] );
      ( "campus",
        [
          Alcotest.test_case "statistics" `Quick test_campus_statistics;
          Alcotest.test_case "loop free / coverable" `Quick test_campus_loop_free_and_coverable;
          Alcotest.test_case "custom sizes" `Quick test_campus_custom_sizes;
          Alcotest.test_case "forwarding" `Quick test_campus_forwarding;
        ] );
    ]
