(* Command-line interface to the SDNProbe reproduction.

   Subcommands:
     list        enumerate available experiments
     experiment  run one experiment (or "all")
     plan        generate a probe plan (optionally re-planned
                 incrementally over an edit stream with --delta)
     watch       long-running mode: consume a rule-update stream,
                 emit plan patches (and certificates) per batch
     edits       emit a deterministic synthetic edit stream
     detect      inject faults into a synthetic topology and localize
     lint        run the static-analysis passes over a policy
     verify      check declarative invariants with certified counterexamples
     certify     validate a generated plan with independent checkers *)

open Cmdliner

let scale_term =
  let doc = "Run experiments at full scale (slower, closer to the paper's sweep)." in
  Term.(
    const (fun full -> if full then Experiments.Registry.Full else Experiments.Registry.Quick)
    $ Arg.(value & flag & info [ "full" ] ~doc))

(* ------------------------------------------------------------------ *)
(* list *)

let list_cmd =
  let run () =
    List.iter
      (fun (name, desc) -> Printf.printf "%-14s %s\n" name desc)
      Experiments.Registry.experiments
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper's experiments") Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* experiment *)

let experiment_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Experiment name (see $(b,list)) or $(b,all).")
  in
  let run scale name =
    if name = "all" then begin
      Experiments.Registry.run_all ~scale;
      `Ok ()
    end
    else
      match Experiments.Registry.run ~scale name with
      | Ok () -> `Ok ()
      | Error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce one of the paper's tables or figures")
    Term.(ret (const run $ scale_term $ name_arg))

(* ------------------------------------------------------------------ *)
(* shared network construction *)

let switches_term =
  Arg.(value & opt int 16 & info [ "switches"; "n" ] ~docv:"N" ~doc:"Topology size.")

let seed_term =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")

let make_network ~switches ~seed =
  let rng = Sdn_util.Prng.create seed in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:switches () in
  (* Past the historical 50-switch sizes the default spec's O(n^2) rule
     count is impractical; cap destinations like the bench presets do
     (Topogen.Preset). 16/50-switch policies are byte-identical. *)
  if switches > 50 then
    Topogen.Rule_gen.install
      ~spec:(Topogen.Rule_gen.scaled_spec ~n_switches:switches ())
      rng topo
  else Topogen.Rule_gen.install rng topo

let load_term =
  Arg.(
    value
    & opt (some file) None
    & info [ "load" ] ~docv:"FILE" ~doc:"Load a saved policy instead of generating one.")

let save_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE" ~doc:"Save the network policy to a file.")

let resolve_network ~switches ~seed = function
  | None -> make_network ~switches ~seed
  | Some path -> (
      match Openflow.Serial.load ~path with
      | Ok net -> net
      | Error msg ->
          prerr_endline ("cannot load policy: " ^ msg);
          exit 1)

(* Planning pool from SDNPROBE_DOMAINS (docs/PARALLEL.md): detection
   already resolves it through Config; these direct planning callers
   must resolve it themselves. *)
let env_pool () =
  if Sdn_parallel.default_domains () > 1 then Some (Sdn_parallel.default_pool ())
  else None

(* Sharded planning (docs/SHARD.md), shared by plan and detect. *)
let shards_term =
  Arg.(
    value & flag
    & info [ "shards" ]
        ~doc:
          "Plan with the sharded two-level pipeline: BFS region partition, \
           per-region rule graphs and MLPC covers, cross-region stitching. \
           Detection then localizes hierarchically (region first, then \
           within-region slicing).")

let shard_target_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "shard-target" ] ~docv:"N"
        ~doc:"Target region size (switches per region) for $(b,--shards).")

(* Shared by plan --delta, watch and verify --edits FILE: read and
   parse an edit stream ("-" = stdin). *)
let read_edit_batches path =
  let text =
    if path = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_bin path In_channel.input_all
  in
  match Sdn_util.Edits.parse text with
  | Ok batches -> Ok batches
  | Error msg -> Error (Printf.sprintf "%s: %s" (if path = "-" then "stdin" else path) msg)

(* ------------------------------------------------------------------ *)
(* plan *)

let plan_cmd =
  let randomized =
    Arg.(value & flag & info [ "randomized" ] ~doc:"Use Randomized SDNProbe path drawing.")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "After generating the plan, validate it with the certification \
             pipeline (SAT proofs, König matching certificate, cache-free \
             path replay, Yen re-check) and exit non-zero on failure.")
  in
  let delta =
    Arg.(
      value & flag
      & info [ "delta" ]
          ~doc:
            "Re-plan incrementally: generate the initial plan, then push the \
             edit batches of $(b,--edits) through the planning session one \
             batch at a time, printing each batch's plan patch. The patched \
             plan is byte-identical to a from-scratch re-plan of the edited \
             policy.")
  in
  let edits_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "edits" ] ~docv:"FILE"
          ~doc:
            "Edit stream for $(b,--delta) ($(b,-) = stdin): $(b,remove ID) / \
             $(b,add ...) lines with $(b,commit) batch separators (see the \
             $(b,edits) subcommand).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "With $(b,--delta): emit one JSON object per batch (the full plan \
             patch) instead of text summaries. With $(b,--shards): emit the \
             plan summary and shard statistics as one JSON object.")
  in
  let run switches seed randomized certify delta edits_file json shards
      shard_target load save =
    let net = resolve_network ~switches ~seed load in
    (match save with
    | Some path ->
        Openflow.Serial.save net ~path;
        Format.printf "policy saved to %s@." path
    | None -> ());
    if shards then
      if randomized || certify || delta then
        `Error
          ( false,
            "--shards is its own planning pipeline; drop \
             --randomized/--certify/--delta" )
      else begin
        let splan =
          Shard.Splan.create ?pool:(env_pool ()) ?target:shard_target net
        in
        let st = splan.Shard.Splan.stats in
        if json then
          print_endline
            (Sdn_util.Json.to_string
               (Sdn_util.Json.Obj
                  [
                    ("probes", Sdn_util.Json.Int (Shard.Splan.size splan));
                    ( "untestable",
                      Sdn_util.Json.Int (List.length splan.Shard.Splan.untestable)
                    );
                    ( "generation_s",
                      Sdn_util.Json.Float splan.Shard.Splan.generation_s );
                    ("shard", Shard.Splan.stats_to_json splan);
                  ]))
        else begin
          Format.printf "%a@." Openflow.Network.pp_summary net;
          Format.printf
            "sharded probes: %d over %d region(s) (generated in %.3fs)@."
            (Shard.Splan.size splan) st.Shard.Splan.regions
            splan.Shard.Splan.generation_s;
          Format.printf
            "shard: cut edges %d, border rules %d, chains %d, stitched %d@."
            st.Shard.Splan.cut_edges st.Shard.Splan.border_rules
            st.Shard.Splan.chains st.Shard.Splan.stitched;
          List.iteri
            (fun i (p : Sdnprobe.Probe.t) ->
              if i < 10 then Format.printf "  %a@." Sdnprobe.Probe.pp p)
            splan.Shard.Splan.probes;
          if Shard.Splan.size splan > 10 then
            Format.printf "  ... (%d more)@." (Shard.Splan.size splan - 10)
        end;
        `Ok ()
      end
    else if randomized && delta then
      `Error (false, "--delta re-plans the static scheme; drop --randomized")
    else if delta && edits_file = None then
      `Error (false, "--delta needs an edit stream (--edits FILE, or --edits -)")
    else begin
      let pool = env_pool () in
      let static_session =
        if randomized then None else Some (Pipeline.create ?pool net)
      in
      let plan =
        match static_session with
        | Some s -> Pipeline.plan s
        | None ->
            (Sdnprobe.Plan.generate [@alert "-deprecated"]) ?pool
              ~mode:(Sdnprobe.Plan.Randomized (Sdn_util.Prng.create seed)) net
      in
      if not (delta && json) then begin
        Format.printf "%a@." Openflow.Network.pp_summary net;
        Format.printf "probes: %d (generated in %.3fs)@." (Sdnprobe.Plan.size plan)
          plan.Sdnprobe.Plan.generation_s;
        let cover = plan.Sdnprobe.Plan.cover in
        Format.printf "cover: mean path length %.2f, max %d, untestable rules %d@."
          (Mlpc.Cover.mean_path_length cover)
          (Mlpc.Cover.max_path_length cover)
          (List.length cover.Mlpc.Cover.untestable);
        List.iteri
          (fun i (p : Sdnprobe.Probe.t) ->
            if i < 10 then Format.printf "  %a@." Sdnprobe.Probe.pp p)
          plan.Sdnprobe.Plan.probes;
        if Sdnprobe.Plan.size plan > 10 then
          Format.printf "  ... (%d more)@." (Sdnprobe.Plan.size plan - 10)
      end;
      if certify && not delta then begin
        let report = Sdnprobe.Certify.run ~seed plan in
        Format.printf "%a" Sdnprobe.Certify.pp report;
        if not (Sdnprobe.Certify.ok_report report) then exit 1
      end;
      if not delta then `Ok ()
      else
        match read_edit_batches (Option.get edits_file) with
        | Error msg -> `Error (false, msg)
        | Ok batches -> (
            let session = ref (Option.get static_session) in
            let all_ok = ref true in
            try
              List.iteri
                (fun i batch ->
                  let before = (Pipeline.plan !session).Sdnprobe.Plan.probes in
                  let t0 = Sdn_util.Mono.now_s () in
                  let session', patch = Pipeline.apply !session batch in
                  let apply_s = Sdn_util.Mono.now_s () -. t0 in
                  session := session';
                  let after = Pipeline.plan !session in
                  let certified =
                    if not certify then None
                    else begin
                      let event =
                        Sdnprobe.Report.patch_event_of_patch ~batch:(i + 1)
                          ~plan_size_after:(Sdnprobe.Plan.size after) ~apply_s
                          patch
                      in
                      let report =
                        Sdnprobe.Certify.run_patch ~seed ~event ~before ~patch
                          after
                      in
                      let ok = Sdnprobe.Certify.ok_report report in
                      if not ok then all_ok := false;
                      Some (report, ok)
                    end
                  in
                  if json then
                    print_endline
                      (Sdn_util.Json.to_string
                         (Sdn_util.Json.Obj
                            ([
                               ("batch", Sdn_util.Json.Int (i + 1));
                               ("apply_s", Sdn_util.Json.Float apply_s);
                               ( "plan_size",
                                 Sdn_util.Json.Int (Sdnprobe.Plan.size after) );
                               ("patch", Sdnprobe.Plan.patch_to_json patch);
                             ]
                            @
                            match certified with
                            | None -> []
                            | Some (report, _) ->
                                [ ("certificate", Sdnprobe.Certify.to_json report) ])))
                  else begin
                    Format.printf
                      "batch %d: %d op(s) → +%d −%d ~%d probes (plan %d, %.3fs)@."
                      (i + 1) (List.length batch)
                      (List.length patch.Sdnprobe.Plan.added)
                      (List.length patch.Sdnprobe.Plan.removed)
                      (List.length patch.Sdnprobe.Plan.rewritten)
                      (Sdnprobe.Plan.size after) apply_s;
                    match certified with
                    | Some (_, ok) ->
                        Format.printf "  certificate: %s@."
                          (if ok then "PASS" else "FAIL")
                    | None -> ()
                  end)
                batches;
              if not json then
                Format.printf "final plan: %d probes after %d batch(es)@."
                  (Sdnprobe.Plan.size (Pipeline.plan !session))
                  (List.length batches);
              if !all_ok then `Ok () else exit 1
            with
            | Pipeline.Edit_error msg -> `Error (false, "edit stream: " ^ msg)
            | Rulegraph.Rule_graph.Cyclic_policy loop ->
                `Error
                  ( false,
                    Format.asprintf
                      "edit stream introduces a forwarding loop through \
                       entries %a"
                      Fmt.(list ~sep:comma int)
                      loop ))
    end
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Generate and summarize a test-packet plan; with $(b,--delta), keep \
          the planning session open and re-plan incrementally over an edit \
          stream")
    Term.(
      ret
        (const run $ switches_term $ seed_term $ randomized $ certify $ delta
       $ edits_file $ json $ shards_term $ shard_target_term $ load_term
       $ save_term))

(* ------------------------------------------------------------------ *)
(* watch *)

let watch_cmd =
  let edits_file =
    Arg.(
      value & opt string "-"
      & info [ "edits" ] ~docv:"FILE"
          ~doc:
            "Rule-update stream to consume (default $(b,-) = stdin): \
             $(b,remove)/$(b,add) lines, $(b,commit) ends a batch (see the \
             $(b,edits) subcommand). Each batch is absorbed incrementally and \
             answered with a plan patch.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON object per batch (patch + certificate verdict) and \
             a final summary object, one per line.")
  in
  let no_certify =
    Arg.(
      value & flag
      & info [ "no-certify" ]
          ~doc:
            "Skip per-batch certification (patch accounting + full \
             certification of the patched plan); batches are then only \
             re-planned.")
  in
  let run switches seed load edits_file json no_certify =
    let net = resolve_network ~switches ~seed load in
    match read_edit_batches edits_file with
    | Error msg -> `Error (false, msg)
    | Ok batches -> (
        let pool = env_pool () in
        let session = ref (Pipeline.create ?pool net) in
        if not json then
          Format.printf "watch: initial plan %d probes (%.3fs), %d batch(es) queued@."
            (Sdnprobe.Plan.size (Pipeline.plan !session))
            (Pipeline.plan !session).Sdnprobe.Plan.generation_s
            (List.length batches);
        let events = ref [] in
        let all_ok = ref true in
        try
          List.iteri
            (fun i batch ->
              let before = (Pipeline.plan !session).Sdnprobe.Plan.probes in
              let t0 = Sdn_util.Mono.now_s () in
              let session', patch = Pipeline.apply !session batch in
              let apply_s = Sdn_util.Mono.now_s () -. t0 in
              session := session';
              let after = Pipeline.plan !session in
              let event =
                Sdnprobe.Report.patch_event_of_patch ~batch:(i + 1)
                  ~plan_size_after:(Sdnprobe.Plan.size after) ~apply_s patch
              in
              events := event :: !events;
              let certified =
                if no_certify then None
                else begin
                  let report =
                    Sdnprobe.Certify.run_patch ~seed ~event ~before ~patch after
                  in
                  let ok = Sdnprobe.Certify.ok_report report in
                  if not ok then all_ok := false;
                  Some ok
                end
              in
              if json then
                print_endline
                  (Sdn_util.Json.to_string
                     (Sdn_util.Json.Obj
                        ([
                           ("batch", Sdn_util.Json.Int (i + 1));
                           ("ops", Sdn_util.Json.Int (List.length batch));
                           ("apply_s", Sdn_util.Json.Float apply_s);
                           ("plan_size", Sdn_util.Json.Int (Sdnprobe.Plan.size after));
                           ("patch", Sdnprobe.Plan.patch_to_json patch);
                         ]
                        @
                        match certified with
                        | None -> []
                        | Some ok -> [ ("certified", Sdn_util.Json.Bool ok) ])))
              else begin
                Format.printf
                  "batch %d: %d op(s) → +%d −%d ~%d probes (plan %d, %.3fs)%s@."
                  (i + 1) (List.length batch)
                  (List.length patch.Sdnprobe.Plan.added)
                  (List.length patch.Sdnprobe.Plan.removed)
                  (List.length patch.Sdnprobe.Plan.rewritten)
                  (Sdnprobe.Plan.size after) apply_s
                  (match certified with
                  | None -> ""
                  | Some true -> " [certified]"
                  | Some false -> " [CERTIFICATION FAILED]")
              end)
            batches;
          let events = List.rev !events in
          if json then
            print_endline
              (Sdn_util.Json.to_string
                 (Sdn_util.Json.Obj
                    [
                      ("schema_version", Sdn_util.Json.Int Sdnprobe.Report.schema_version);
                      ("batches", Sdn_util.Json.Int (List.length batches));
                      ( "plan_size",
                        Sdn_util.Json.Int (Sdnprobe.Plan.size (Pipeline.plan !session)) );
                      ("certified", Sdn_util.Json.Bool (!all_ok && not no_certify));
                      ( "patch_events",
                        Sdn_util.Json.List
                          (List.map Sdnprobe.Report.patch_event_to_json events) );
                    ]))
          else
            Format.printf "watch: done, %d probes after %d batch(es)%s@."
              (Sdnprobe.Plan.size (Pipeline.plan !session))
              (List.length batches)
              (if no_certify then ""
               else if !all_ok then ", every patch certified"
               else ", CERTIFICATION FAILURES above");
          if !all_ok then `Ok () else exit 1
        with
        | Pipeline.Edit_error msg -> `Error (false, "edit stream: " ^ msg)
        | Rulegraph.Rule_graph.Cyclic_policy loop ->
            `Error
              ( false,
                Format.asprintf
                  "edit stream introduces a forwarding loop through entries %a"
                  Fmt.(list ~sep:comma int)
                  loop ))
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Long-running incremental planning: keep a session open, consume a \
          rule-update stream batch by batch, and answer each batch with a \
          plan patch plus a re-verification of the patched plan")
    Term.(
      ret
        (const run $ switches_term $ seed_term $ load_term $ edits_file $ json
       $ no_certify))

(* ------------------------------------------------------------------ *)
(* edits: deterministic churn-stream generator (CI and bench food) *)

let edits_cmd =
  let batches =
    Arg.(value & opt int 3 & info [ "batches" ] ~docv:"B" ~doc:"Number of batches.")
  in
  let ops =
    Arg.(
      value & opt int 4
      & info [ "ops" ] ~docv:"K"
          ~doc:"Edit operations per batch (a remove and a matching reinstall \
                count as two).")
  in
  let run switches seed load batches ops =
    let net = resolve_network ~switches ~seed load in
    (* Remove-then-reinstall churn, mirrored from verify --edits K: the
       stream is generated against a private copy of the network so
       entry ids stay in lockstep with any consumer that builds the
       same policy (same --switches/--seed/--load) and applies the
       stream — fresh ids are assigned by the same deterministic
       counter on both sides. *)
    let rng = Sdn_util.Prng.create (seed + 7919) in
    let buf = Buffer.create 1024 in
    for _ = 1 to batches do
      for _ = 1 to ops / 2 do
        let entries = Openflow.Network.all_entries net in
        let victim =
          List.nth entries (Sdn_util.Prng.int rng (List.length entries))
        in
        let open Openflow.Flow_entry in
        Buffer.add_string buf
          (Sdn_util.Edits.op_to_line (Sdn_util.Edits.Remove victim.id));
        Buffer.add_char buf '\n';
        let add =
          {
            Sdn_util.Edits.switch = victim.switch;
            table = victim.table;
            priority = victim.priority;
            match_ = Hspace.Cube.to_string victim.match_;
            set_field = Some (Hspace.Cube.to_string victim.set_field);
            action =
              (match victim.action with
              | Drop -> Sdn_util.Edits.Drop
              | Output p -> Sdn_util.Edits.Output p
              | Goto_table t -> Sdn_util.Edits.Goto_table t);
          }
        in
        Buffer.add_string buf (Sdn_util.Edits.op_to_line (Sdn_util.Edits.Add add));
        Buffer.add_char buf '\n';
        (* Keep the private copy in sync so later batches pick live ids. *)
        Openflow.Network.remove_entry net victim.id;
        ignore
          (Openflow.Network.add_entry net ~switch:victim.switch
             ~table:victim.table ~priority:victim.priority ~match_:victim.match_
             ~set_field:victim.set_field victim.action)
      done;
      Buffer.add_string buf "commit\n"
    done;
    print_string (Buffer.contents buf)
  in
  Cmd.v
    (Cmd.info "edits"
       ~doc:
         "Emit a deterministic synthetic rule-update stream (remove + \
          reinstall churn) for the same policy the other subcommands build \
          from --switches/--seed — pipe it into $(b,watch) or $(b,plan \
          --delta)")
    Term.(const run $ switches_term $ seed_term $ load_term $ batches $ ops)

(* ------------------------------------------------------------------ *)
(* detect *)

let detect_cmd =
  let scheme =
    let scheme_conv =
      Arg.enum
        [
          ("sdnprobe", Experiments.Schemes.Sdnprobe);
          ("rand-sdnprobe", Experiments.Schemes.Randomized_sdnprobe);
          ("atpg", Experiments.Schemes.Atpg);
          ("per-rule", Experiments.Schemes.Per_rule);
        ]
    in
    Arg.(
      value
      & opt scheme_conv Experiments.Schemes.Sdnprobe
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Detection scheme.")
  in
  let fraction =
    Arg.(
      value & opt float 0.02
      & info [ "faulty" ] ~docv:"FRACTION" ~doc:"Fraction of faulty flow entries.")
  in
  let rounds =
    Arg.(
      value & opt int 150
      & info [ "rounds" ] ~docv:"N"
          ~doc:
            "Localization round budget. Dense fault populations (many faulty \
             switches per probe path) can need more than the default to \
             isolate every fault.")
  in
  let kind =
    let kind_conv =
      Arg.enum
        [
          ("basic", Experiments.Workloads.Basic);
          ("drop", Experiments.Workloads.Drop_only);
          ("detour", Experiments.Workloads.Detour);
        ]
    in
    Arg.(
      value
      & opt kind_conv Experiments.Workloads.Basic
      & info [ "kind" ] ~docv:"KIND" ~doc:"Fault kind: basic, drop, or detour.")
  in
  let loss =
    Arg.(
      value & opt float 0.
      & info [ "loss" ] ~docv:"RATE"
          ~doc:"Impairment: per-link per-packet loss probability (e.g. 0.02).")
  in
  let jitter =
    Arg.(
      value & opt int 0
      & info [ "jitter" ] ~docv:"US"
          ~doc:"Impairment: max per-switch delay jitter in microseconds.")
  in
  let flap =
    Arg.(
      value & opt (some float) None
      & info [ "flap" ] ~docv:"RATIO"
          ~doc:"Impairment: probability a link is down in a 200ms window.")
  in
  let churn =
    Arg.(
      value & opt (some float) None
      & info [ "churn" ] ~docv:"RATIO"
          ~doc:
            "Impairment: probability a flow entry is mid-reconfiguration \
             (blackholing) in a 250ms window.")
  in
  let resilient =
    Arg.(
      value & flag
      & info [ "resilient" ]
          ~doc:
            "Use the loss-tolerant detection profile (bounded retransmission \
             with backoff, suspicion decay) instead of the loss-naive default. \
             Recommended whenever impairments are enabled.")
  in
  let backend =
    let backend_conv =
      Arg.enum
        [ ("emulator", Sdnprobe.Config.Emulator); ("wire", Sdnprobe.Config.Wire) ]
    in
    Arg.(
      value
      & opt backend_conv Sdnprobe.Config.Emulator
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Probe delivery backend: $(b,emulator) runs in-process over virtual \
             time (deterministic); $(b,wire) runs every switch as a UDP endpoint \
             on localhost and sends probes as real datagrams through the OS \
             network stack (real time; sdnprobe schemes only).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the detection report as one versioned JSON object.")
  in
  let run switches seed scheme fraction kind load loss jitter flap churn resilient
      backend json shards shard_target rounds =
    if
      backend = Sdnprobe.Config.Wire
      && (scheme = Experiments.Schemes.Atpg || scheme = Experiments.Schemes.Per_rule)
    then
      `Error
        ( false,
          Printf.sprintf
            "the %s baseline drives the emulator directly and cannot run on \
             --backend wire"
            (Experiments.Schemes.name scheme) )
    else if shards && scheme <> Experiments.Schemes.Sdnprobe then
      `Error
        ( false,
          "--shards replans the static sdnprobe scheme; drop --scheme or use \
           --scheme sdnprobe" )
    else if shards && backend = Sdnprobe.Config.Wire then
      `Error (false, "--shards runs on the in-process emulator backend only")
    else begin
    let net = resolve_network ~switches ~seed load in
    let emulator = Dataplane.Emulator.create net in
    let truth =
      Experiments.Workloads.inject (Sdn_util.Prng.create (seed + 1)) ~kind ~fraction
        emulator
    in
    (if loss > 0. || jitter > 0 || flap <> None || churn <> None then
       let spec =
         Dataplane.Impairment.spec ~seed:(seed + 2) ~loss_rate:loss
           ~jitter_max_us:jitter
           ?flaps:
             (Option.map
                (fun down_ratio ->
                  { Dataplane.Impairment.flap_window_us = 200_000; down_ratio })
                flap)
           ?churn:
             (Option.map
                (fun out_ratio ->
                  { Dataplane.Impairment.churn_window_us = 250_000; out_ratio })
                churn)
           ()
       in
       Dataplane.Emulator.set_impairment emulator (Dataplane.Impairment.create spec));
    if not json then begin
      Format.printf "%a@." Openflow.Network.pp_summary net;
      Format.printf "injected faults on switches: %a@."
        Fmt.(list ~sep:comma int)
        truth
    end;
    let config =
      if resilient then Sdnprobe.Config.(with_max_rounds rounds resilient)
      else Sdnprobe.Config.make ~max_rounds:rounds ()
    in
    let config = Sdnprobe.Config.with_backend backend config in
    let stop = Sdnprobe.Runner.stop_when_flagged truth in
    let report, shard_stats =
      if not shards then
        (Experiments.Schemes.run scheme ~seed ~stop ~config emulator, None)
      else begin
        (* Sharded plan + hierarchical localization: region-border
           slicing first, ordinary bisection within the guilty region. *)
        let splan =
          Shard.Splan.create ?pool:(env_pool ()) ?target:shard_target net
        in
        let backend = Sdnprobe.Backend.of_emulator emulator in
        let report =
          Sdnprobe.Runner.execute_probes ~stop ~name:"sharded-sdnprobe"
            ~region_of:(Shard.Splan.region_of splan) ~config ~backend
            ~generation_s:splan.Shard.Splan.generation_s
            splan.Shard.Splan.probes
        in
        (report, Some (Shard.Splan.stats_to_json splan))
      end
    in
    if json then begin
      (* One object: the versioned report plus the injected ground
         truth (the exactness oracle for CI's scale-smoke job) and,
         when sharded, a "shard" section. Report.of_json ignores
         unknown fields. *)
      let extra =
        ("truth", Sdn_util.Json.List (List.map (fun s -> Sdn_util.Json.Int s) truth))
        :: (match shard_stats with Some stats -> [ ("shard", stats) ] | None -> [])
      in
      print_endline
        (match Sdn_util.Json.of_string (Sdnprobe.Report.to_json report) with
        | Ok (Sdn_util.Json.Obj fields) ->
            Sdn_util.Json.to_string (Sdn_util.Json.Obj (fields @ extra))
        | _ -> Sdnprobe.Report.to_json report)
    end
    else begin
      Format.printf "%a@." Sdnprobe.Report.pp report;
      (match shard_stats with
      | Some stats -> Format.printf "shard: %s@." (Sdn_util.Json.to_string stats)
      | None -> ());
      let confusion =
        Metrics.Confusion.compute ~ground_truth:truth
          ~flagged:(Sdnprobe.Report.flagged_switches report)
          ~population:(Experiments.Workloads.population net)
      in
      Format.printf "accuracy: %a@." Metrics.Confusion.pp confusion
    end;
    `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:
         "Inject faults (and optional environment impairments) and run fault \
          localization")
    Term.(
      ret
        (const run $ switches_term $ seed_term $ scheme $ fraction $ kind
       $ load_term $ loss $ jitter $ flap $ churn $ resilient $ backend $ json
       $ shards_term $ shard_target_term $ rounds))

(* ------------------------------------------------------------------ *)
(* lint *)

let lint_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as one JSON object.")
  in
  let fail_on =
    let fail_conv =
      Arg.enum
        [
          ("error", Lint.Engine.Fail_error);
          ("warning", Lint.Engine.Fail_warning);
          ("never", Lint.Engine.Fail_never);
        ]
    in
    Arg.(
      value
      & opt fail_conv Lint.Engine.Fail_error
      & info [ "fail-on" ] ~docv:"SEVERITY"
          ~doc:
            "Exit non-zero when a diagnostic of this severity (or worse) is \
             present: $(b,error) (default), $(b,warning), or $(b,never).")
  in
  let passes =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "passes" ] ~docv:"IDS"
          ~doc:
            "Comma-separated check ids (or $(b,Lnnn) prefixes) to run instead \
             of the full registry.")
  in
  let no_coverage =
    Arg.(
      value & flag
      & info [ "no-coverage" ]
          ~doc:
            "Skip the L009 probe-plan coverage audit (avoids building the rule \
             graph and solving the path cover).")
  in
  let campus =
    Arg.(value & flag & info [ "campus" ] ~doc:"Lint the synthetic campus dataset.")
  in
  (* The coverage audit needs a probe plan: the minimum legal path cover
     is enough (header synthesis is irrelevant to which entries a probe
     traverses). A cyclic policy has no rule graph — L001 reports the
     loop and coverage is skipped. *)
  let plan_probes net =
    match Rulegraph.Rule_graph.build net with
    | exception Rulegraph.Rule_graph.Cyclic_policy _ -> None
    | rg ->
        let cover = Mlpc.Legal_matching.solve rg in
        Some
          (List.map
             (fun (p : Mlpc.Cover.path) ->
               List.map
                 (fun v ->
                   (Rulegraph.Rule_graph.vertex_entry rg v).Openflow.Flow_entry.id)
                 p.Mlpc.Cover.rules)
             cover.Mlpc.Cover.paths)
  in
  let run switches seed campus load json fail_on passes no_coverage =
    let net =
      if campus then Topogen.Campus.synthesize (Sdn_util.Prng.create seed)
      else resolve_network ~switches ~seed load
    in
    let probes = if no_coverage then None else plan_probes net in
    match Lint.Engine.run ?only:passes ?probes net with
    | exception Lint.Engine.Unknown_pass key ->
        `Error
          ( false,
            Printf.sprintf "unknown lint pass %S; valid ids: %s" key
              (String.concat ", "
                 (List.map (fun (p : Lint.Passes.t) -> p.Lint.Passes.id)
                    Lint.Passes.all)) )
    | report ->
        if json then print_endline (Lint.Engine.to_json report)
        else begin
          Format.printf "%a@." Openflow.Network.pp_summary net;
          Format.printf "%a" Lint.Engine.pp_text report
        end;
        exit (Lint.Engine.exit_code ~fail_on report)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static-analysis passes (loops, blackholes, shadowing, \
          ambiguity, dead configuration, redundancy, probe coverage) over a \
          policy")
    Term.(
      ret
        (const run $ switches_term $ seed_term $ campus $ load_term $ json
       $ fail_on $ passes $ no_coverage))

(* ------------------------------------------------------------------ *)
(* analyze — sdncheck, the determinism & domain-safety analyzer over
   the repository's own sources (docs/ANALYSIS.md). *)

let analyze_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as one JSON object.")
  in
  let fail_on =
    let fail_conv =
      Arg.enum
        [
          ("error", Sdn_analysis.Engine.Fail_error);
          ("warning", Sdn_analysis.Engine.Fail_warning);
          ("never", Sdn_analysis.Engine.Fail_never);
        ]
    in
    Arg.(
      value
      & opt fail_conv Sdn_analysis.Engine.Fail_warning
      & info [ "fail-on" ] ~docv:"SEVERITY"
          ~doc:
            "Exit non-zero when a diagnostic of this severity (or worse) is \
             present: $(b,warning) (default — any unsuppressed finding gates), \
             $(b,error), or $(b,never).")
  in
  let rules =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "rules" ] ~docv:"IDS"
          ~doc:
            "Comma-separated rule ids (e.g. $(b,D001,D005)) to run instead of \
             the full catalogue.")
  in
  let root =
    Arg.(
      value
      & opt (some string) None
      & info [ "root" ] ~docv:"DIR"
          ~doc:
            "Repository root to scan. Defaults to walking up from the current \
             directory until the tree looks like this repository.")
  in
  let run json fail_on rules root =
    let root =
      match root with
      | Some r -> if Sdn_analysis.Engine.looks_like_root r then Some r else None
      | None -> Sdn_analysis.Engine.find_root ()
    in
    match root with
    | None ->
        `Error
          ( false,
            "cannot locate the repository root (lib/util/misc.ml not found); \
             pass --root" )
    | Some root -> (
        let selected =
          match rules with
          | None -> Ok Sdn_analysis.Rules.all
          | Some ids -> (
              let missing =
                List.filter
                  (fun id -> Sdn_analysis.Rules.find id = None)
                  ids
              in
              match missing with
              | [] ->
                  Ok
                    (List.filter_map Sdn_analysis.Rules.find ids)
              | ms ->
                  Error
                    (Printf.sprintf "unknown rule id%s: %s; valid ids: %s"
                       (if List.length ms = 1 then "" else "s")
                       (String.concat ", " ms)
                       (String.concat ", "
                          (List.map
                             (fun (r : Sdn_analysis.Rules.rule) -> r.Sdn_analysis.Rules.id)
                             Sdn_analysis.Rules.all))))
        in
        match selected with
        | Error msg -> `Error (false, msg)
        | Ok rules ->
            let report = Sdn_analysis.Engine.run ~rules ~root () in
            if json then
              print_endline (Sdn_util.Json.to_string (Sdn_analysis.Engine.to_json report))
            else Format.printf "%a" Sdn_analysis.Engine.pp_text report;
            exit (Sdn_analysis.Engine.exit_code ~fail_on report))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run sdncheck, the determinism & domain-safety static analyzer, over \
          this repository's own sources (rules D001-D006; suppressions are \
          in-source comments with a mandatory reason)")
    Term.(ret (const run $ json $ fail_on $ rules $ root))

(* ------------------------------------------------------------------ *)
(* certify *)

let certify_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the certificate report as one versioned JSON object.")
  in
  let campus =
    Arg.(value & flag & info [ "campus" ] ~doc:"Certify the synthetic campus dataset.")
  in
  let randomized =
    Arg.(
      value & flag
      & info [ "randomized" ]
          ~doc:
            "Certify a Randomized-SDNProbe plan (the SAT section is skipped: \
             randomized plans draw headers uniformly).")
  in
  let yen_pairs =
    Arg.(
      value & opt int 8
      & info [ "yen-pairs" ] ~docv:"N"
          ~doc:"Sampled (src, dst) pairs for the Yen re-check section.")
  in
  let run switches seed campus randomized load json yen_pairs =
    let net =
      if campus then Topogen.Campus.synthesize (Sdn_util.Prng.create seed)
      else resolve_network ~switches ~seed load
    in
    match
      if randomized then
        (Sdnprobe.Plan.generate [@alert "-deprecated"]) ?pool:(env_pool ())
          ~mode:(Sdnprobe.Plan.Randomized (Sdn_util.Prng.create seed)) net
      else Pipeline.plan (Pipeline.create ?pool:(env_pool ()) net)
    with
    | exception Rulegraph.Rule_graph.Cyclic_policy loop ->
        `Error
          ( false,
            Format.asprintf
              "policy has a forwarding loop through entries %a; nothing to \
               certify (run the lint subcommand for the full diagnostic)"
              Fmt.(list ~sep:comma int)
              loop )
    | plan ->
        let report = Sdnprobe.Certify.run ~yen_pairs ~seed plan in
        if json then
          print_endline (Sdn_util.Json.to_string (Sdnprobe.Certify.to_json report))
        else begin
          Format.printf "%a@." Openflow.Network.pp_summary net;
          Format.printf "probes: %d@." (Sdnprobe.Plan.size plan);
          Format.printf "%a" Sdnprobe.Certify.pp report
        end;
        if Sdnprobe.Certify.ok_report report then `Ok () else exit 1
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Generate a probe plan and validate it end to end with independent \
          checkers: SAT answers against their clauses and DRUP proofs, the \
          MLPC matching against a König vertex-cover certificate (Theorem-1 \
          minimality), every probe path replayed cache-free through the real \
          lookup semantics, and sampled Yen queries re-checked against \
          Bellman-Ford")
    Term.(
      ret
        (const run $ switches_term $ seed_term $ campus $ randomized $ load_term
       $ json $ yen_pairs))

(* ------------------------------------------------------------------ *)
(* verify *)

let verify_cmd =
  let campus =
    Arg.(value & flag & info [ "campus" ] ~doc:"Check the synthetic campus dataset.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the report as one JSON object. Deterministic (work counters, \
             no clocks) unless $(b,--timings) is also given.")
  in
  let timings =
    Arg.(
      value & flag
      & info [ "timings" ] ~doc:"Include wall-clock phase timings in the output.")
  in
  let fail_on =
    let fail_conv =
      Arg.enum
        [
          ("error", Verify.Report.Fail_error);
          ("warning", Verify.Report.Fail_warning);
          ("never", Verify.Report.Fail_never);
        ]
    in
    Arg.(
      value
      & opt fail_conv Verify.Report.Fail_error
      & info [ "fail-on" ] ~docv:"SEVERITY"
          ~doc:
            "Exit non-zero when a violation of this severity (or worse) is \
             present: $(b,error) (default), $(b,warning), or $(b,never).")
  in
  let invariants =
    Arg.(
      value
      & opt_all string []
      & info [ "invariant"; "i" ] ~docv:"INV"
          ~doc:
            "An invariant to check (repeatable): $(b,reach A B), \
             $(b,isolated A B), $(b,loop-free), $(b,no-blackhole) or \
             $(b,waypoint A W B). Default: loop-free and no-blackhole.")
  in
  let spec =
    Arg.(
      value
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "Read invariants from a spec file (one per line, $(b,#) comments); \
             combined with $(b,--invariant).")
  in
  let edits =
    Arg.(
      value
      & opt (some string) None
      & info [ "edits" ] ~docv:"K|FILE"
          ~doc:
            "After the initial check, churn the policy and re-verify \
             incrementally. An integer $(docv) applies that many random \
             single-rule edits (remove one entry, reinstall it) — the delta \
             worklist path the bench suite measures. Anything else is read as \
             an edit-stream file ($(b,-) = stdin, same format as $(b,plan \
             --delta) and $(b,watch)), re-verified once per batch.")
  in
  let run switches seed campus load invs spec json timings fail_on edits =
    let net =
      if campus then Topogen.Campus.synthesize (Sdn_util.Prng.create seed)
      else resolve_network ~switches ~seed load
    in
    let parsed =
      let from_flags =
        List.fold_left
          (fun acc s ->
            Result.bind acc (fun acc ->
                Result.map (fun i -> i :: acc) (Verify.Invariant.of_string s)))
          (Ok []) invs
        |> Result.map List.rev
      in
      let from_spec =
        match spec with
        | None -> Ok []
        | Some path -> (
            let ic = open_in_bin path in
            let text = really_input_string ic (in_channel_length ic) in
            close_in ic;
            match Verify.Invariant.parse_spec text with
            | Ok invs -> Ok invs
            | Error msg -> Error (path ^ ": " ^ msg))
      in
      Result.bind from_flags (fun a -> Result.map (fun b -> a @ b) from_spec)
    in
    match parsed with
    | Error msg -> `Error (false, msg)
    | Ok parsed -> (
        let invariants =
          if parsed = [] then Verify.Engine.default_invariants else parsed
        in
        let bad =
          List.filter_map
            (fun inv ->
              match
                Verify.Invariant.validate
                  ~n_switches:(Openflow.Network.n_switches net) inv
              with
              | Ok () -> None
              | Error msg -> Some msg)
            invariants
        in
        match bad with
        | msg :: _ -> `Error (false, msg)
        | [] ->
            let engine = Verify.Engine.create ?pool:(env_pool ()) net in
            let report = ref (Verify.Engine.check engine invariants) in
            let churn_desc = ref None in
            let churn =
              match edits with
              | None -> Ok ()
              | Some spec -> (
                  match int_of_string_opt spec with
                  | Some k when k <= 0 -> Ok ()
                  | Some k ->
                      (* Deterministic churn: remove a random entry,
                         reinstall it (fresh id, same semantics),
                         re-propagating after each mutation — two delta
                         updates per edit. *)
                      let rng = Sdn_util.Prng.create (seed + 7919) in
                      for _ = 1 to k do
                        let entries = Openflow.Network.all_entries net in
                        let victim =
                          List.nth entries
                            (Sdn_util.Prng.int rng (List.length entries))
                        in
                        let open Openflow.Flow_entry in
                        Openflow.Network.remove_entry net victim.id;
                        Verify.Engine.update engine
                          ~changed_tables:[ (victim.switch, victim.table) ];
                        ignore
                          (Openflow.Network.add_entry net ~switch:victim.switch
                             ~table:victim.table ~priority:victim.priority
                             ~match_:victim.match_ ~set_field:victim.set_field
                             victim.action);
                        Verify.Engine.update engine
                          ~changed_tables:[ (victim.switch, victim.table) ]
                      done;
                      churn_desc :=
                        Some
                          (Printf.sprintf "%d edit%s" k
                             (if k = 1 then "" else "s"));
                      report := Verify.Engine.check engine invariants;
                      Ok ()
                  | None -> (
                      (* A file: the shared edit-stream format, applied
                         through the same network mutations the planning
                         pipeline uses, one engine update per batch. *)
                      match read_edit_batches spec with
                      | Error msg -> Error msg
                      | Ok batches -> (
                          try
                            List.iter
                              (fun batch ->
                                let tables =
                                  List.map (Pipeline.apply_op net) batch
                                in
                                Verify.Engine.update engine
                                  ~changed_tables:tables)
                              batches;
                            churn_desc :=
                              Some
                                (Printf.sprintf "%d edit batch%s"
                                   (List.length batches)
                                   (if List.length batches = 1 then ""
                                    else "es"));
                            report := Verify.Engine.check engine invariants;
                            Ok ()
                          with Pipeline.Edit_error msg ->
                            Error ("edit stream: " ^ msg))))
            in
            match churn with
            | Error msg -> `Error (false, msg)
            | Ok () ->
                let report = !report in
                if json then print_endline (Verify.Report.to_json ~timings report)
                else begin
                  Format.printf "%a@." Openflow.Network.pp_summary net;
                  (match !churn_desc with
                  | Some desc ->
                      Format.printf "re-verified incrementally after %s@." desc
                  | None -> ());
                  Format.printf "%a" Verify.Report.pp_text report;
                  if timings then
                    List.iter
                      (fun (phase, s) -> Format.printf "# %-12s %.6fs@." phase s)
                      report.Verify.Report.timings
                end;
                exit (Verify.Report.exit_code ~fail_on report))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check declarative invariants (reachability, isolation, loop freedom, \
          blackholes, waypoints) symbolically against the plumbing graph; every \
          violation carries a replay-certified counterexample")
    Term.(
      ret
        (const run $ switches_term $ seed_term $ campus $ load_term $ invariants
       $ spec $ json $ timings $ fail_on $ edits))

let () =
  let doc = "SDNProbe: lightweight SDN fault localization (ICDCS'18 reproduction)" in
  let info = Cmd.info "sdnprobe" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            experiment_cmd;
            plan_cmd;
            watch_cmd;
            edits_cmd;
            detect_cmd;
            lint_cmd;
            analyze_cmd;
            certify_cmd;
            verify_cmd;
          ]))
