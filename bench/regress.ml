(* Perf-regression harness ("bench regress").

   Times the probe-generation hot paths — cube kernels (Bechamel),
   rule-graph construction and space queries, the MLPC legal-matching
   solver and Yen's K-shortest — on the Rocketfuel-like workloads the
   lint and loss-sweep benches already use, and emits a versioned JSON
   file (BENCH_<n>.json, schema_version below) built with
   {!Sdn_util.Json}.

     dune exec bench/main.exe -- regress                      # both scales
     dune exec bench/main.exe -- regress --switches 16        # CI smoke
     dune exec bench/main.exe -- regress --baseline old.json  # before/after report

   With [--baseline], each entry gains [before_ns]/[speedup] fields taken
   from the baseline file, producing the report format committed as
   BENCH_3.json; scripts/compare_bench.py gates CI on it. *)

module Json = Sdn_util.Json
module RG = Rulegraph.Rule_graph

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Measurement. End-to-end entries use best-of-[runs] wall clock: the
   minimum is the standard robust estimator for a deterministic
   computation under scheduler noise. *)

let time_ns ?(runs = 5) f =
  ignore (f ());
  (* warmup: faults, lazy forcing, first-touch allocation *)
  let best = ref infinity in
  for _ = 1 to runs do
    let t0 = Sdn_util.Mono.now_s () in
    ignore (f ());
    let dt = Sdn_util.Mono.now_s () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9

(* Bechamel OLS estimate (ns/run) for the cube micro-kernels. *)
let bechamel_ns tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      List.map
        (fun (name, ols_result) ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          (name, ns))
        (Sdn_util.Misc.hashtbl_bindings results))
    tests

(* ------------------------------------------------------------------ *)
(* Workloads: the same deterministic Rocketfuel-like policies as the
   lint bench (seed fixed per scale so before/after runs see identical
   inputs). *)

type workload = {
  scale : int;
  net : Openflow.Network.t;
  topo : Openflow.Topology.t;
  rg : RG.t;
  cover : Mlpc.Cover.t;
  cover_paths : int list list; (* expanded rule sequences of the cover *)
}

let make_workload scale =
  let topo, net = Topogen.Preset.scale ~n_switches:scale in
  let rg = RG.build net in
  let cover = Mlpc.Legal_matching.solve rg in
  let cover_paths =
    List.map (fun (p : Mlpc.Cover.path) -> p.Mlpc.Cover.rules) cover.Mlpc.Cover.paths
  in
  { scale; net; topo; rg; cover; cover_paths }

let invalidate rg = RG.invalidate_caches rg

(* Space queries: what Cover.all_legal, the L009 audit and report
   post-processing do — walk every cover path's start and forward space,
   several times over. Caches are cleared at the start of the measured
   run, so only intra-run reuse (the realistic kind) is credited. *)
let space_queries w () =
  invalidate w.rg;
  for _ = 1 to 3 do
    List.iter
      (fun path ->
        ignore (RG.start_space w.rg path);
        ignore (RG.forward_space w.rg path))
      w.cover_paths
  done

let solve w () =
  invalidate w.rg;
  ignore (Mlpc.Legal_matching.solve w.rg)

let randomized w () =
  invalidate w.rg;
  ignore (Mlpc.Legal_matching.randomized (Sdn_util.Prng.create 3) w.rg)

(* Unique-header assignment: one SAT query per cover path. Proof
   logging is off on this default path — the entry exists to prove the
   certification hooks (PR 4) stay free when unused. *)
let headers_assign w () = ignore (Mlpc.Headers.assign Mlpc.Headers.Sat_unique w.cover)

let yen_k8 ?pool w =
  let g = Openflow.Topology.to_digraph w.topo in
  let n = Sdngraph.Digraph.n_vertices g in
  let rng = Sdn_util.Prng.create 7 in
  let pairs =
    List.init 12 (fun _ ->
        let s = Sdn_util.Prng.int rng n in
        let d = Sdn_util.Prng.int rng n in
        (s, (if d = s then (d + 1) mod n else d)))
  in
  fun () -> ignore (Sdngraph.Yen.k_shortest_pairs ?pool g ~pairs ~k:8)

(* Parallel (/par4) variants of the four planning stages, through the
   same public entry points the pipeline uses with [Config.pool]. *)

let space_queries_par w pool () =
  invalidate w.rg;
  for _ = 1 to 3 do
    ignore (RG.spaces ~pool w.rg w.cover_paths)
  done

let solve_par w pool () =
  invalidate w.rg;
  ignore (Mlpc.Legal_matching.solve ~pool w.rg)

let headers_assign_par w pool () =
  ignore (Mlpc.Headers.assign ~pool Mlpc.Headers.Sat_unique w.cover)

(* Ten probing rounds of the full static plan on a clean emulator —
   the detection loop's steady-state cost. With [domains > 1] and
   retransmissions off, the round's sends run on the pool. *)
let runner_rounds w ~domains =
  let config =
    Sdnprobe.Config.with_domains domains
      (Sdnprobe.Config.with_max_rounds 10 Sdnprobe.Config.default)
  in
  let plan = Pipeline.plan (Pipeline.create w.net) in
  fun () ->
    let emu = Dataplane.Emulator.create w.net in
    ignore (Sdnprobe.Runner.execute ~config ~emulator:emu plan)

(* Full static plan from scratch, everything Pipeline.create does:
   rule graph + MLPC cover + unique headers + probes. This is the cost
   `plan.edit` amortizes away. *)
let plan_full w () = ignore (Pipeline.create w.net)

(* Amortized per-edit incremental re-planning: batches of
   [plan_edit_pairs] remove-then-reinstall pairs pushed through one
   long-lived session with [Pipeline.apply] (steady state: the session
   and its caches persist across runs). Reported ns is per edit op
   (two ops per pair) — the number scripts/check_plan_ratio.py
   compares against plan.full. *)
let plan_edit_pairs = 4

let plan_edit w =
  let module N = Openflow.Network in
  let module FE = Openflow.Flow_entry in
  let session = ref (Pipeline.create w.net) in
  let counter = ref 0 in
  fun () ->
    let entries = Array.of_list (N.all_entries w.net) in
    let n = Array.length entries in
    let victims = ref [] in
    while List.length !victims < plan_edit_pairs do
      incr counter;
      let v = entries.(!counter * 97 mod n) in
      if not (List.memq v !victims) then victims := v :: !victims
    done;
    let batch =
      List.concat_map
        (fun (v : FE.t) ->
          [
            Sdn_util.Edits.Remove v.FE.id;
            Sdn_util.Edits.Add
              {
                Sdn_util.Edits.switch = v.FE.switch;
                table = v.FE.table;
                priority = v.FE.priority;
                match_ = Hspace.Cube.to_string v.FE.match_;
                set_field = Some (Hspace.Cube.to_string v.FE.set_field);
                action =
                  (match v.FE.action with
                  | FE.Drop -> Sdn_util.Edits.Drop
                  | FE.Output p -> Sdn_util.Edits.Output p
                  | FE.Goto_table t -> Sdn_util.Edits.Goto_table t);
              };
          ])
        !victims
    in
    let s, _patch = Pipeline.apply !session batch in
    session := s

(* Full symbolic invariant verification from scratch: plumbing build +
   closure for every source (loop-free forces all of them) + leak scan.
   This is the cost `verify.edit` amortizes away. *)
let verify_check w () =
  let engine = Verify.Engine.create w.net in
  ignore (Verify.Engine.check engine Verify.Engine.default_invariants)

(* Amortized per-edit incremental re-verification: [edits_per_run]
   remove-then-reinstall cycles, each followed by a full re-check
   through Engine.update's patch path. Reported ns is per edit (two
   edits per cycle), the number scripts/check_verify_ratio.py compares
   against verify.closure. *)
let verify_edits_per_run = 4

let verify_edit w =
  let module N = Openflow.Network in
  let module FE = Openflow.Flow_entry in
  let engine = Verify.Engine.create w.net in
  let invs = Verify.Engine.default_invariants in
  ignore (Verify.Engine.check engine invs);
  fun () ->
    for i = 0 to verify_edits_per_run - 1 do
      let entries = N.all_entries w.net in
      let victim = List.nth entries (i * 97 mod List.length entries) in
      let tables = [ (victim.FE.switch, victim.FE.table) ] in
      N.remove_entry w.net victim.FE.id;
      Verify.Engine.update engine ~changed_tables:tables;
      ignore (Verify.Engine.check engine invs);
      ignore
        (N.add_entry w.net ~switch:victim.FE.switch ~table:victim.FE.table
           ~priority:victim.FE.priority ~match_:victim.FE.match_
           ~set_field:victim.FE.set_field victim.FE.action);
      Verify.Engine.update engine ~changed_tables:tables;
      ignore (Verify.Engine.check engine invs)
    done

let micro_tests () =
  let open Bechamel in
  let cube_a =
    Hspace.Cube.of_string (String.concat "" (List.init 8 (fun _ -> "0010xxx1")))
  and cube_b =
    Hspace.Cube.of_string (String.concat "" (List.init 8 (fun _ -> "0x10x1xx")))
  in
  (* Long cubes exercise the multi-chunk hash path (satellite: the old
     Hashtbl.hash stopped after its meaningful-word budget). *)
  let long =
    Hspace.Cube.of_string
      (String.concat "" (List.init 80 (fun i -> if i mod 7 = 0 then "0x10x1xx" else "00101xx1")))
  in
  (* Constructors are the only interning sites since the selective-
     interning fix; this micro is what distinguishes the sharded and
     domain-local table backends (SDNPROBE_INTERN, docs/PARALLEL.md). *)
  let bits =
    Array.init 64 (fun i ->
        if i mod 7 = 0 then Hspace.Cube.Any
        else if i mod 3 = 0 then Hspace.Cube.One
        else Hspace.Cube.Zero)
  in
  [
    Test.make ~name:"cube.inter/64"
      (Staged.stage (fun () -> ignore (Hspace.Cube.inter cube_a cube_b)));
    Test.make ~name:"cube.diff/64"
      (Staged.stage (fun () -> ignore (Hspace.Cube.diff cube_a cube_b)));
    Test.make ~name:"cube.of_bits/64"
      (Staged.stage (fun () -> ignore (Hspace.Cube.of_bits bits)));
    Test.make ~name:"cube.hash/640"
      (Staged.stage (fun () -> ignore (Hspace.Cube.hash long)));
  ]

(* ------------------------------------------------------------------ *)

(* Scales past 50 run a reduced suite: the flat O(n^2)-ish stages that
   the sharded planner exists to replace would take minutes there, and
   the quadratic default rule spec would not even install — these
   workloads come from Topogen.Preset's scaled spec. shard.build is the
   structural build alone (partition + per-region graphs/covers +
   stitching, no header assignment): the piece with a 1000-switch
   completion gate. shard.plan is the full sharded pipeline, probes
   included — scripts/check_shard_ratio.py holds it to >= 2x over the
   flat plan.full at 200 switches. *)
let large_scale_entries scale =
  let _, net = Topogen.Preset.scale ~n_switches:scale in
  let runs = 2 in
  let shard_build =
    ( Printf.sprintf "shard.build/%d" scale,
      time_ns ~runs (fun () ->
          ignore (Shard.Splan.create ~assign_headers:false net)) )
  in
  if scale > 200 then [ shard_build ]
  else
    [
      ( Printf.sprintf "rulegraph.build/%d" scale,
        time_ns ~runs (fun () -> ignore (RG.build net)) );
      ( Printf.sprintf "plan.full/%d" scale,
        time_ns ~runs (fun () -> ignore (Pipeline.create net)) );
      ( Printf.sprintf "shard.plan/%d" scale,
        time_ns ~runs (fun () -> ignore (Shard.Splan.create net)) );
      shard_build;
    ]

let entries ~scales =
  let scales, large = List.partition (fun s -> s <= 50) scales in
  let micros = bechamel_ns (micro_tests ()) in
  let ws = List.map (fun scale -> (scale, make_workload scale)) scales in
  let runs_of scale = if scale >= 50 then 3 else 5 in
  (* All sequential entries are measured before any pool exists: OCaml 5
     minor collections are stop-the-world across *all* live domains, so
     even idle pool workers tax allocation-heavy serial code (severely
     so on a single-core host — measured ~2.5x on rulegraph.build).
     Sequential users run with no pool; the bench must measure that. *)
  let serial =
    List.concat_map
      (fun (scale, w) ->
        let runs = runs_of scale in
        [
          (Printf.sprintf "rulegraph.build/%d" scale, time_ns ~runs (fun () -> ignore (RG.build w.net)));
          (Printf.sprintf "rulegraph.spaces/%d" scale, time_ns ~runs (space_queries w));
          (Printf.sprintf "mlpc.solve/%d" scale, time_ns ~runs (solve w));
          (Printf.sprintf "mlpc.randomized/%d" scale, time_ns ~runs (randomized w));
          (Printf.sprintf "headers.assign/%d" scale, time_ns ~runs (headers_assign w));
          (Printf.sprintf "yen.k8/%d" scale, time_ns ~runs (yen_k8 w));
          (Printf.sprintf "runner.round10/%d" scale, time_ns ~runs (runner_rounds w ~domains:1));
          (Printf.sprintf "plan.full/%d" scale, time_ns ~runs (plan_full w));
          ( Printf.sprintf "plan.edit/%d" scale,
            time_ns ~runs (plan_edit w) /. float_of_int (2 * plan_edit_pairs) );
          (Printf.sprintf "verify.closure/%d" scale, time_ns ~runs (verify_check w));
          ( Printf.sprintf "verify.edit/%d" scale,
            time_ns ~runs (verify_edit w) /. float_of_int (2 * verify_edits_per_run) );
        ])
      ws
  in
  let pool = Sdn_parallel.pool ~domains:4 in
  let par =
    List.concat_map
      (fun (scale, w) ->
        let runs = runs_of scale in
        [
          (Printf.sprintf "rulegraph.spaces/%d/par4" scale, time_ns ~runs (space_queries_par w pool));
          (Printf.sprintf "mlpc.solve/%d/par4" scale, time_ns ~runs (solve_par w pool));
          (Printf.sprintf "headers.assign/%d/par4" scale, time_ns ~runs (headers_assign_par w pool));
          (Printf.sprintf "yen.k8/%d/par4" scale, time_ns ~runs (yen_k8 ~pool w));
          (Printf.sprintf "runner.round10/%d/par4" scale, time_ns ~runs (runner_rounds w ~domains:4));
        ])
      ws
  in
  micros @ serial @ par @ List.concat_map large_scale_entries large

(* ------------------------------------------------------------------ *)
(* Report assembly. *)

let load_baseline path =
  match Json.of_string (In_channel.with_open_text path In_channel.input_all) with
  | Error msg -> failwith (Printf.sprintf "%s: bad JSON: %s" path msg)
  | Ok json -> (
      match Json.obj_list "entries" json with
      | None -> failwith (path ^ ": no \"entries\" field")
      | Some entries ->
          List.filter_map
            (fun e ->
              match (Json.obj_str "name" e, Json.obj_float "ns" e) with
              | Some name, Some ns -> Some (name, ns)
              | Some name, None ->
                  (* report format: prefer the after numbers *)
                  Option.map (fun ns -> (name, ns)) (Json.obj_float "after_ns" e)
              | _ -> None)
            entries)

let to_json ~scales ~baseline results =
  let entry (name, ns) =
    match baseline with
    | None -> Json.Obj [ ("name", Json.Str name); ("ns", Json.Float ns) ]
    | Some base -> (
        match List.assoc_opt name base with
        | None -> Json.Obj [ ("name", Json.Str name); ("ns", Json.Float ns) ]
        | Some before ->
            Json.Obj
              [
                ("name", Json.Str name);
                ("before_ns", Json.Float before);
                ("after_ns", Json.Float ns);
                ("ns", Json.Float ns);
                ("speedup", Json.Float (before /. ns));
              ])
  in
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("kind", Json.Str (if baseline = None then "bench-regress" else "bench-regress-report"));
      ("workload", Json.Str "rocketfuel-like preferential attachment + rule_gen");
      ("switches", Json.List (List.map (fun s -> Json.Int s) scales));
      (* /par4 numbers only mean a speedup when the host has the cores;
         scaling tables must be read against this field (docs/PERF.md). *)
      ("host_cores", Json.Int (Domain.recommended_domain_count ()));
      ("entries", Json.List (List.map entry results));
    ]

let pretty_ns ns =
  if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let print_table ~baseline results =
  let table = Metrics.Table.create [ "kernel"; "time/run"; "baseline"; "speedup" ] in
  List.iter
    (fun (name, ns) ->
      let before = Option.bind baseline (List.assoc_opt name) in
      Metrics.Table.add_row table
        [
          name;
          pretty_ns ns;
          (match before with Some b -> pretty_ns b | None -> "-");
          (match before with Some b -> Printf.sprintf "%.2fx" (b /. ns) | None -> "-");
        ])
    results;
  Metrics.Table.print table

let main args =
  let out = ref "BENCH_10.json" in
  let baseline = ref None in
  let scales = ref [ 16; 50; 200; 1000 ] in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline := Some (load_baseline v);
        parse rest
    | "--switches" :: v :: rest ->
        scales := List.map int_of_string (String.split_on_char ',' v);
        parse rest
    | arg :: _ ->
        Printf.eprintf "bench regress: unknown argument %s\n" arg;
        exit 2
  in
  parse args;
  Experiments.Exp_common.banner "bench regress";
  let results = entries ~scales:!scales in
  print_table ~baseline:!baseline results;
  let json = to_json ~scales:!scales ~baseline:!baseline results in
  Out_channel.with_open_text !out (fun oc ->
      output_string oc (Json.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s\n" !out
