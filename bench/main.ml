(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§VIII), then runs Bechamel micro-benchmarks of the
   computational kernels behind them.

     dune exec bench/main.exe                 # quick scale (default)
     dune exec bench/main.exe -- --full       # paper-scale sweeps
     dune exec bench/main.exe -- fig8a fig9b  # a subset
     dune exec bench/main.exe -- micro        # only the micro-benchmarks *)

open Bechamel

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks: one per computational kernel, labelled by the
   table/figure whose pre-computation they dominate. *)

let micro_workload =
  lazy
    (let rng = Sdn_util.Prng.create 77 in
     let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:16 () in
     let net = Topogen.Rule_gen.install rng topo in
     let rg = Rulegraph.Rule_graph.build net in
     (net, rg))

let campus = lazy (Topogen.Campus.synthesize (Sdn_util.Prng.create 42))

(* Lint benchmark workload: a Rocketfuel-scale topology plus the probe
   plan feeding the L009 coverage audit (cover paths as entry ids). *)
let lint_workload =
  lazy
    (let rng = Sdn_util.Prng.create 99 in
     let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:50 () in
     let net = Topogen.Rule_gen.install rng topo in
     let rg = Rulegraph.Rule_graph.build net in
     let cover = Mlpc.Legal_matching.solve rg in
     let probes =
       List.map
         (fun (p : Mlpc.Cover.path) ->
           List.map
             (fun v ->
               (Rulegraph.Rule_graph.vertex_entry rg v).Openflow.Flow_entry.id)
             p.Mlpc.Cover.rules)
         cover.Mlpc.Cover.paths
     in
     (net, probes))

let tests () =
  let net, rg = Lazy.force micro_workload in
  let campus = Lazy.force campus in
  let cube_a = Hspace.Cube.of_string (String.concat "" (List.init 4 (fun _ -> "0010xxx1")))
  and cube_b = Hspace.Cube.of_string (String.concat "" (List.init 4 (fun _ -> "0x10x1xx"))) in
  [
    Test.make ~name:"hs.cube-intersection (all)"
      (Staged.stage (fun () -> ignore (Hspace.Cube.inter cube_a cube_b)));
    Test.make ~name:"hs.cube-difference (all)"
      (Staged.stage (fun () -> ignore (Hspace.Cube.diff cube_a cube_b)));
    Test.make ~name:"sat.header-pick (tableII PCT, §VIII-A)"
      (Staged.stage (fun () ->
           ignore
             (Sat.Header_encoding.find_rule_input
                ~match_:(Hspace.Cube.of_string (String.make 32 'x'))
                ~overlaps:[ cube_a; cube_b ])));
    Test.make ~name:"rulegraph.build (tableII PCT)"
      (Staged.stage (fun () -> ignore (Rulegraph.Rule_graph.build net)));
    Test.make ~name:"mlpc.solve (fig8a, tableII TPC)"
      (Staged.stage (fun () -> ignore (Mlpc.Legal_matching.solve rg)));
    Test.make ~name:"mlpc.randomized (fig8a rand)"
      (Staged.stage (fun () ->
           ignore (Mlpc.Legal_matching.randomized (Sdn_util.Prng.create 3) rg)));
    Test.make ~name:"plan.generate campus (§VIII-A)"
      (Staged.stage (fun () -> ignore (Pipeline.create campus)));
    Test.make ~name:"lint.full-registry (50-sw rocketfuel)"
      (Staged.stage
         (let net, probes = Lazy.force lint_workload in
          fun () -> ignore (Lint.Engine.run ~probes net)));
    Test.make ~name:"lint.loop+shadow (50-sw rocketfuel)"
      (Staged.stage
         (let net, _ = Lazy.force lint_workload in
          fun () ->
            ignore
              (Lint.Engine.run ~only:[ "L001-forwarding-loop"; "L003-shadowed-rule" ]
                 net)));
    Test.make ~name:"emulator.inject (fig8b/8c delay)"
      (Staged.stage
         (let emu = Dataplane.Emulator.create net in
          let probe = List.hd (Pipeline.plan (Pipeline.create net)).Sdnprobe.Plan.probes in
          fun () ->
            ignore
              (Dataplane.Emulator.inject emu ~at:probe.Sdnprobe.Probe.inject_switch
                 probe.Sdnprobe.Probe.header)));
  ]

let run_micro () =
  Experiments.Exp_common.banner "Bechamel micro-benchmarks";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~kde:None () in
  let table = Metrics.Table.create [ "kernel"; "time/run"; "r²" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      List.iter
        (fun (name, ols_result) ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          let pretty =
            if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          Metrics.Table.add_row table [ name; pretty; r2 ])
        (Sdn_util.Misc.hashtbl_bindings results))
    (tests ());
  Metrics.Table.print table

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let scale = if full then Experiments.Registry.Full else Experiments.Registry.Quick in
  let names = List.filter (fun a -> a <> "--full") args in
  let t0 = Sdn_util.Mono.now_s () in
  (match names with
  | [] ->
      Experiments.Registry.run_all ~scale;
      run_micro ()
  | "regress" :: rest -> Regress.main rest
  | names ->
      List.iter
        (fun name ->
          if name = "micro" then run_micro ()
          else
            match Experiments.Registry.run ~scale name with
            | Ok () -> ()
            | Error msg ->
                prerr_endline msg;
                exit 1)
        names);
  Printf.printf "\ntotal bench time: %.1fs\n" (Sdn_util.Mono.now_s () -. t0)
