(** Test-packet header assignment (§V-B step 3, §V-C, §VI).

    Each cover path gets one concrete header from its start space. Three
    policies:

    - [Deterministic]: the canonical first member of the space —
      SDNProbe's static choice (its predictability is exactly what
      targeting faults exploit, reproduced in the evaluation);
    - [Sat_unique]: like the paper's MiniSat-based §VI selection —
      headers are pairwise distinct across paths, so the exact-match
      test flow entries can only fire on test packets;
    - [Random]: Randomized SDNProbe's per-round uniform draw from the
      start space (still pairwise distinct, by rejection). *)

type policy =
  | Deterministic
  | Sat_unique
  | Random of Sdn_util.Prng.t
  | Traffic_weighted of Traffic.t * Sdn_util.Prng.t
      (** §V-C's sFlow option: draw from the observed traffic inside the
          path's header space, so probes blend in with real flows
          (raising the odds of tripping targeting faults aimed at live
          traffic); falls back to a uniform draw on paths without
          observed traffic. *)

type memo
(** Speculation cache for repeated [assign] calls over evolving covers
    (the delta planning path). Maps a path's rule ids to its phase-1
    unconstrained pick, which is a pure function of the start space;
    entries are revalidated against the space's representation (same
    cubes, same order) on every hit, so a warm call returns exactly
    what a cold one would. Only consulted for the [Deterministic] and
    [Sat_unique] policies — randomized draws are never cached.

    The [key] argument of {!assign} names a path for the memo (default:
    its [rules] vertex list). Vertex indices shift when entries are
    added or removed, so callers reusing a memo across graph updates
    must key by stable entry ids ([Pipeline] does). *)

val memo_create : unit -> memo

val assign :
  ?pool:Sdn_parallel.Pool.t ->
  ?memo:memo ->
  ?key:(Cover.path -> int list) ->
  policy ->
  Cover.t ->
  (Cover.path * Hspace.Header.t) list
(** One header per path. Paths whose start space is empty are skipped
    (cannot happen for covers produced by the solvers — their paths are
    legal). With [Sat_unique] and [Random], headers are pairwise
    distinct whenever the spaces admit it; if a space is exhausted the
    path reuses a duplicate header rather than being dropped.

    Parallelism is {e speculative}: every path's header is first picked
    with no distinctness constraint (in parallel under [pool]), then a
    sequential reconciliation pass in path order accepts the pick or —
    only when an earlier path already took it — re-runs the constrained
    query. For [Sat_unique] the SAT solver's canonical
    (lexicographically least) model makes this exactly the sequential
    fold's output; randomized policies draw from per-path streams
    seeded by [(master draw, path index)], so every policy's output is
    byte-identical for any domain count. *)

val header_for_path :
  ?distinct_from:Hspace.Header.t list ->
  policy ->
  Cover.path ->
  Hspace.Header.t option
(** Header for a single path. *)
