module RG = Rulegraph.Rule_graph
module Digraph = Sdngraph.Digraph
module Hs = Hspace.Hs

(* The matching is kept as successor/predecessor arrays over rule-graph
   vertices: succ.(u) = v encodes the matched bipartite edge (u, v'),
   i.e. "u is immediately followed by v in its chain". All mutations go
   through an undo log so an augmenting path whose final splice is
   illegal can be rolled back and an alternative explored. *)

type state = {
  rg : RG.t;
  succ : int array;
  pred : int array;
  adj : int list array; (* legal candidate successors (closure graph) *)
  mutable log : [ `Succ of int * int | `Pred of int * int ] list;
  mutable logn : int;
}

let make_state rg =
  let n = RG.n_vertices rg in
  let g = RG.graph rg in
  let testable = Array.init n (fun v -> not (Hs.is_empty (RG.input rg v))) in
  let adj =
    Array.init n (fun u ->
        if testable.(u) then List.filter (fun v -> testable.(v)) (Digraph.succ g u)
        else [])
  in
  { rg; succ = Array.make n (-1); pred = Array.make n (-1); adj; log = []; logn = 0 }

let set_succ st u v =
  st.log <- `Succ (u, st.succ.(u)) :: st.log;
  st.logn <- st.logn + 1;
  st.succ.(u) <- v

let set_pred st v u =
  st.log <- `Pred (v, st.pred.(v)) :: st.log;
  st.logn <- st.logn + 1;
  st.pred.(v) <- u

let rollback st mark =
  while st.logn > mark do
    (match st.log with
    | `Succ (u, old) :: rest ->
        st.succ.(u) <- old;
        st.log <- rest
    | `Pred (v, old) :: rest ->
        st.pred.(v) <- old;
        st.log <- rest
    | [] -> assert false);
    st.logn <- st.logn - 1
  done

(* The chain head .. u (u must be a chain tail when used for a splice). *)
let prefix_of st u =
  let rec up v acc = if st.pred.(v) = -1 then v :: acc else up st.pred.(v) (v :: acc) in
  up u []

(* The chain v .. tail (v must be a chain head when used for a splice). *)
let suffix_of st v =
  let rec down v acc =
    if st.succ.(v) = -1 then List.rev (v :: acc) else down st.succ.(v) (v :: acc)
  in
  down v []

(* Definition 3, strengthened for multi-table pipelines: the splice
   (u, v) is admitted iff the chain it would create is a legal path AND
   a probe can actually enter it through its first switch's table-0
   stage (see {!RG.is_injectable}). *)
let legal_claim st u v = RG.is_injectable st.rg (prefix_of st u @ suffix_of st v)

(* Kuhn-style augmentation: find a new successor for the chain tail [u],
   re-routing current predecessors recursively; every splice is admitted
   only if legal, and failed branches are rolled back. *)
let rec try_augment st visited u =
  let rec try_candidates = function
    | [] -> false
    | v :: rest ->
        if Hashtbl.mem visited v then try_candidates rest
        else begin
          Hashtbl.add visited v ();
          let mark = st.logn in
          let w = st.pred.(v) in
          if w = -1 then
            if legal_claim st u v then begin
              set_succ st u v;
              set_pred st v u;
              true
            end
            else try_candidates rest
          else begin
            (* Detach w from v; w's chain loses its tail segment, which
               keeps both halves legal (prefixes/suffixes of legal paths
               are legal). Then find w another successor. *)
            set_succ st w (-1);
            set_pred st v (-1);
            if try_augment st visited w && legal_claim st u v then begin
              set_succ st u v;
              set_pred st v u;
              true
            end
            else begin
              rollback st mark;
              try_candidates rest
            end
          end
        end
  in
  try_candidates st.adj.(u)

(* Parallel pre-pass: the augmentation search itself is inherently
   sequential (every splice decision depends on the matching so far),
   but every [legal_claim] bottoms out in [RG.injection_plan] over some
   chain, and the rule graph's start-space cache is keyed on path
   {e suffixes}. Warming the cache with every candidate 2-chain
   [u -> v] therefore precomputes exactly the suffix spaces the deep
   chains of the search will extend — the sequential phase then runs
   almost entirely on cache hits. Cache contents are a pure function of
   the keys, so warming cannot change any answer, only when it is
   computed. *)
let warm_claims ?pool rg adj =
  match pool with
  | None -> ()
  | Some p when Sdn_parallel.Pool.domains p = 1 -> ()
  | Some _ ->
      let pairs = ref [] in
      Array.iteri
        (fun u vs -> List.iter (fun v -> pairs := RG.expand_path rg [ u; v ] :: !pairs) vs)
        adj;
      RG.warm_injection ?pool rg (List.rev !pairs)

let solve_successors ?pool rg =
  let st = make_state rg in
  warm_claims ?pool rg st.adj;
  let n = RG.n_vertices rg in
  (* Passes until fixpoint: a legality-induced rollback in one pass can
     be unlocked by a later augmentation. *)
  let progress = ref true in
  while !progress do
    progress := false;
    for u = 0 to n - 1 do
      if st.succ.(u) = -1 && st.adj.(u) <> [] then begin
        let visited = Hashtbl.create 16 in
        if try_augment st visited u then progress := true
      end
    done
  done;
  st.succ

let solve ?pool rg = Cover.of_successors rg ~succ:(solve_successors ?pool rg)

let randomized ?pool ?(dropout = 0.15) rng rg =
  let st = make_state rg in
  warm_claims ?pool rg st.adj;
  let n = RG.n_vertices rg in
  let edges =
    Array.of_list
      (List.concat (List.init n (fun u -> List.map (fun v -> (u, v)) st.adj.(u))))
  in
  Sdn_util.Prng.shuffle rng edges;
  (* Endpoint dropout: each redraw forces a random [dropout]-fraction of
     the rules to end their chain, cutting tested paths at positions a
     maximal matching would never expose. Over the rounds every rule
     appears at the end of some tested path — the endpoint diversity
     that defeats colluding detours ("the location of switches is not
     always at the end of a test path", §V-C). The price is a larger
     cover (the paper reports +72% test packets on average). *)
  let forced_terminal =
    Array.init n (fun _ -> Sdn_util.Prng.float rng 1.0 < dropout)
  in
  Array.iter
    (fun (u, v) ->
      if
        st.succ.(u) = -1
        && st.pred.(v) = -1
        && (not forced_terminal.(u))
        && legal_claim st u v
      then begin
        set_succ st u v;
        set_pred st v u
      end)
    edges;
  Cover.of_successors rg ~succ:st.succ
