module Hs = Hspace.Hs
module Cube = Hspace.Cube
module Header = Hspace.Header

type policy =
  | Deterministic
  | Sat_unique
  | Random of Sdn_util.Prng.t
  | Traffic_weighted of Traffic.t * Sdn_util.Prng.t

let sat_pick ~distinct_from hs =
  (* Try each cube of the space until the SAT query finds a header that
     differs from all previously chosen ones. Headers outside the cube
     make their distinct-from clause vacuous (any model inside the cube
     satisfies it), and the canonical solver's lexicographically-least
     model cannot be deflected by a clause the model already satisfies —
     so dropping them changes nothing but the query size, which is what
     makes reconciliation affordable on thousand-path covers. *)
  match distinct_from with
  | [] ->
      (* Unconstrained query: the canonical solver's model over
         [inside:[cube]] alone is unit propagation of the fixed bits
         plus false for every free bit — the cube's first member. Every
         speculation-phase pick goes through here, so answering from
         the cube directly (no solver instance) is what keeps header
         assignment linear on thousand-path covers. *)
      Option.map Header.of_cube (Hs.first_member hs)
  | _ :: _ ->
  let rec loop = function
    | [] -> None
    | cube :: rest -> (
        let relevant = List.filter (fun h -> Header.matches h cube) distinct_from in
        match
          Sat.Header_encoding.find_header ~distinct_from:relevant ~inside:[ cube ]
            (Cube.length cube)
        with
        | Some h -> Some h
        | None -> loop rest)
  in
  loop (Hs.cubes hs)

let random_pick rng ~distinct_from hs =
  (* Rejection sampling for distinctness; falls back to a duplicate when
     the space is smaller than the number of paths sharing it. *)
  let taken h = List.exists (Header.equal h) distinct_from in
  let rec loop attempts =
    match Hs.sample rng hs with
    | None -> None
    | Some c ->
        let h = Header.of_cube c in
        if (not (taken h)) && attempts < 64 then Some h
        else if taken h && attempts < 64 then loop (attempts + 1)
        else Some h
  in
  loop 0

let header_for_path ?(distinct_from = []) policy (p : Cover.path) =
  match policy with
  | Deterministic -> Option.map Header.of_cube (Hs.first_member p.Cover.start_space)
  | Sat_unique -> (
      match sat_pick ~distinct_from p.Cover.start_space with
      | Some h -> Some h
      | None ->
          (* Space exhausted by distinctness constraints: fall back to a
             (duplicate) deterministic member. *)
          Option.map Header.of_cube (Hs.first_member p.Cover.start_space))
  | Random rng -> random_pick rng ~distinct_from p.Cover.start_space
  | Traffic_weighted (traffic, rng) -> (
      match Traffic.sample_in traffic rng p.Cover.start_space with
      | Some h -> Some h
      | None -> random_pick rng ~distinct_from p.Cover.start_space)

(* Per-path PRNG streams: one generator per path, seeded from a single
   draw of the master generator and the path index (golden-ratio Weyl
   step, as inside splitmix64 itself). Draws for path [i] then depend
   only on (master state, i) — not on how many paths were assigned
   before it or on which domain ran it. *)
let stream_of salt i =
  Sdn_util.Prng.create
    (Int64.to_int (Int64.add salt (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)))

(* Speculation memo for the delta planning path: the phase-1 pick below
   is a pure function of the path's start space (for [Sat_unique], the
   canonical solver returns the lexicographically least member of the
   cube list; for [Deterministic], the first member), so it can be
   reused across [assign] calls as long as the space's REPRESENTATION —
   same cubes in the same order, the order [sat_pick] tries them — is
   unchanged. Keyed by the probe's rule ids, which survive graph
   renumbering. *)
type memo = {
  spec : (int list, Hs.t * Header.t option) Hashtbl.t;
      (* phase-1 unconstrained pick per path key *)
  mutable transcript : (int list * Hs.t * Header.t option) array;
      (* (key, start space, chosen header) of every path of the last
         [assign], in path order. The chosen header at position [i] is a
         pure function of the path's start space and the headers chosen
         before it, so as long as a new cover's prefix matches the
         transcript — same keys, same space representations — the
         recorded choices replay verbatim, constrained SAT queries
         included. The first mismatching position invalidates the rest
         (its choice changes the seen-set every later query is
         constrained by). *)
}

let memo_create () = { spec = Hashtbl.create 256; transcript = [||] }

let hs_repr_equal a b =
  let ca = Hs.cubes a and cb = Hs.cubes b in
  List.compare_lengths ca cb = 0 && List.for_all2 Cube.equal ca cb

let assign ?pool ?memo ?(key = fun (p : Cover.path) -> p.Cover.rules) policy
    (cover : Cover.t) =
  (* Split randomized policies into per-path streams (see [stream_of]);
     [Deterministic] / [Sat_unique] are shared as-is. The array is
     materialized once so the speculation and reconciliation phases see
     the same stream objects. *)
  let per_path =
    match policy with
    | Deterministic | Sat_unique -> fun _ -> policy
    | Random master ->
        let salt = Sdn_util.Prng.bits64 master in
        fun i -> Random (stream_of salt i)
    | Traffic_weighted (traffic, master) ->
        let salt = Sdn_util.Prng.bits64 master in
        fun i -> Traffic_weighted (traffic, stream_of salt i)
  in
  let pols =
    Array.of_list cover.Cover.paths |> Array.mapi (fun i p -> (p, per_path i))
  in
  (* Phase 1 — speculation: pick every path's header with no
     distinctness constraint, in parallel. For [Sat_unique] the solver
     (lowest-index branching over zeroed activities, false-first phase)
     returns the lexicographically least member of the space, and adding
     distinct-from clauses that model already satisfies cannot deflect
     the search (no clause ever conflicts with a prefix of the canonical
     model), so the unconstrained answer {e is} the constrained answer
     whenever it is not already taken. *)
  let speculate (p, pol) = header_for_path ~distinct_from:[] pol p in
  let speculate_all arr =
    match pool with
    | Some pl when Sdn_parallel.Pool.domains pl > 1 -> Sdn_parallel.Pool.map pl speculate arr
    | _ -> Array.map speculate arr
  in
  (* The memo only applies to the pure policies: a randomized draw must
     not be replayed from a cache. *)
  let memo =
    match (memo, policy) with
    | Some m, (Deterministic | Sat_unique) -> Some m
    | _ -> None
  in
  let spec =
    match memo with
    | Some memo ->
        (* Serve hits from the memo; compute only the misses (still in
           parallel). The memoized value is exactly what [speculate]
           would return, so the reconciliation below — and therefore the
           output — is unchanged by the cache. *)
        let nn = Array.length pols in
        let results = Array.make nn None in
        let miss = ref [] in
        Array.iteri
          (fun i (p, _) ->
            match Hashtbl.find_opt memo.spec (key p) with
            | Some (hs, r) when hs_repr_equal hs p.Cover.start_space ->
                results.(i) <- Some r
            | _ -> miss := i :: !miss)
          pols;
        let miss = Array.of_list (List.rev !miss) in
        let computed = speculate_all (Array.map (fun i -> pols.(i)) miss) in
        Array.iteri
          (fun k i ->
            let p, _ = pols.(i) in
            Hashtbl.replace memo.spec (key p) (p.Cover.start_space, computed.(k));
            results.(i) <- Some computed.(k))
          miss;
        Array.map Option.get results
    | None -> speculate_all pols
  in
  (* Phase 2 — sequential reconciliation in path order: accept the
     speculative header unless a previous path took it; only then fall
     back to the constrained query (exactly the query the sequential
     fold would have run). Output is therefore identical for any domain
     count, and for [Sat_unique] identical to the sequential fold. *)
  let nn = Array.length pols in
  let out = Array.make nn None in
  (* [seen] feeds the (rare) constrained re-queries; the hash set
     answers the per-path "is this header taken" membership test, which
     a list scan would make quadratic in the cover size. *)
  let seen = ref [] in
  let seen_tbl : (string, unit) Hashtbl.t = Hashtbl.create (max 16 nn) in
  (* [Sat_unique] collision path: per-cube buckets of the already-taken
     headers that lie inside the cube. [sat_pick] filters the whole
     seen-list per query — quadratic in the cover size when thousands of
     paths share a handful of popular cubes (destination routing). A
     bucket is seeded with exactly that filter's result when its cube is
     first queried and kept current by [record], always in the same
     reverse-chronological order the filter would produce, so the solver
     receives a byte-identical query and the output — certificate
     replays included — is unchanged. *)
  let buckets : (string, Header.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let registered : (Cube.t * Header.t list ref) list ref = ref [] in
  let record h =
    seen := h :: !seen;
    Hashtbl.replace seen_tbl (Header.to_string h) ();
    List.iter
      (fun (cube, b) -> if Header.matches h cube then b := h :: !b)
      !registered
  in
  let bucket_for cube =
    let ckey = Cube.to_string cube in
    match Hashtbl.find_opt buckets ckey with
    | Some b -> b
    | None ->
        let b = ref (List.filter (fun h -> Header.matches h cube) !seen) in
        Hashtbl.add buckets ckey b;
        registered := (cube, b) :: !registered;
        b
  in
  let pick_unique (p : Cover.path) =
    let rec try_cubes = function
      | [] ->
          (* Every cube exhausted by distinctness: same duplicate
             fallback as [header_for_path]. *)
          Option.map Header.of_cube (Hs.first_member p.Cover.start_space)
      | cube :: rest -> (
          match
            Sat.Header_encoding.find_header ~distinct_from:!(bucket_for cube)
              ~inside:[ cube ] (Cube.length cube)
          with
          | Some h -> Some h
          | None -> try_cubes rest)
    in
    try_cubes (Hs.cubes p.Cover.start_space)
  in
  (* Replay the memoized transcript while the cover's prefix matches it
     (see the [memo] type), then fall back to normal reconciliation from
     the first divergence on. *)
  let start =
    match memo with
    | None -> 0
    | Some m ->
        let tr = m.transcript in
        let i = ref 0 in
        let matching = ref true in
        while !matching && !i < nn && !i < Array.length tr do
          let p, _ = pols.(!i) in
          let k0, hs0, ch = tr.(!i) in
          if k0 = key p && hs_repr_equal hs0 p.Cover.start_space then begin
            out.(!i) <- ch;
            (match ch with Some h -> record h | None -> ());
            incr i
          end
          else matching := false
        done;
        !i
  in
  for i = start to nn - 1 do
    let p, pol = pols.(i) in
    let taken h = Hashtbl.mem seen_tbl (Header.to_string h) in
    let h =
      match spec.(i) with
      | Some h when not (taken h) -> Some h
      | _ -> (
          match pol with
          | Sat_unique -> pick_unique p
          | _ -> header_for_path ~distinct_from:!seen pol p)
    in
    out.(i) <- h;
    match h with Some h -> record h | None -> ()
  done;
  (match memo with
  | Some m ->
      m.transcript <-
        Array.mapi (fun i (p, _) -> (key p, p.Cover.start_space, out.(i))) pols
  | None -> ());
  Array.to_list pols
  |> List.mapi (fun i (p, _) -> Option.map (fun h -> (p, h)) out.(i))
  |> List.filter_map Fun.id
