module Hs = Hspace.Hs
module Cube = Hspace.Cube
module Header = Hspace.Header

type policy =
  | Deterministic
  | Sat_unique
  | Random of Sdn_util.Prng.t
  | Traffic_weighted of Traffic.t * Sdn_util.Prng.t

let sat_pick ~distinct_from hs =
  (* Try each cube of the space until the SAT query finds a header that
     differs from all previously chosen ones. *)
  let rec loop = function
    | [] -> None
    | cube :: rest -> (
        match
          Sat.Header_encoding.find_header ~distinct_from ~inside:[ cube ]
            (Cube.length cube)
        with
        | Some h -> Some h
        | None -> loop rest)
  in
  loop (Hs.cubes hs)

let random_pick rng ~distinct_from hs =
  (* Rejection sampling for distinctness; falls back to a duplicate when
     the space is smaller than the number of paths sharing it. *)
  let taken h = List.exists (Header.equal h) distinct_from in
  let rec loop attempts =
    match Hs.sample rng hs with
    | None -> None
    | Some c ->
        let h = Header.of_cube c in
        if (not (taken h)) && attempts < 64 then Some h
        else if taken h && attempts < 64 then loop (attempts + 1)
        else Some h
  in
  loop 0

let header_for_path ?(distinct_from = []) policy (p : Cover.path) =
  match policy with
  | Deterministic -> Option.map Header.of_cube (Hs.first_member p.Cover.start_space)
  | Sat_unique -> (
      match sat_pick ~distinct_from p.Cover.start_space with
      | Some h -> Some h
      | None ->
          (* Space exhausted by distinctness constraints: fall back to a
             (duplicate) deterministic member. *)
          Option.map Header.of_cube (Hs.first_member p.Cover.start_space))
  | Random rng -> random_pick rng ~distinct_from p.Cover.start_space
  | Traffic_weighted (traffic, rng) -> (
      match Traffic.sample_in traffic rng p.Cover.start_space with
      | Some h -> Some h
      | None -> random_pick rng ~distinct_from p.Cover.start_space)

(* Per-path PRNG streams: one generator per path, seeded from a single
   draw of the master generator and the path index (golden-ratio Weyl
   step, as inside splitmix64 itself). Draws for path [i] then depend
   only on (master state, i) — not on how many paths were assigned
   before it or on which domain ran it. *)
let stream_of salt i =
  Sdn_util.Prng.create
    (Int64.to_int (Int64.add salt (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)))

let assign ?pool policy (cover : Cover.t) =
  (* Split randomized policies into per-path streams (see [stream_of]);
     [Deterministic] / [Sat_unique] are shared as-is. The array is
     materialized once so the speculation and reconciliation phases see
     the same stream objects. *)
  let per_path =
    match policy with
    | Deterministic | Sat_unique -> fun _ -> policy
    | Random master ->
        let salt = Sdn_util.Prng.bits64 master in
        fun i -> Random (stream_of salt i)
    | Traffic_weighted (traffic, master) ->
        let salt = Sdn_util.Prng.bits64 master in
        fun i -> Traffic_weighted (traffic, stream_of salt i)
  in
  let pols =
    Array.of_list cover.Cover.paths |> Array.mapi (fun i p -> (p, per_path i))
  in
  (* Phase 1 — speculation: pick every path's header with no
     distinctness constraint, in parallel. For [Sat_unique] the solver
     (lowest-index branching over zeroed activities, false-first phase)
     returns the lexicographically least member of the space, and adding
     distinct-from clauses that model already satisfies cannot deflect
     the search (no clause ever conflicts with a prefix of the canonical
     model), so the unconstrained answer {e is} the constrained answer
     whenever it is not already taken. *)
  let speculate (p, pol) = header_for_path ~distinct_from:[] pol p in
  let spec =
    match pool with
    | Some pl when Sdn_parallel.Pool.domains pl > 1 -> Sdn_parallel.Pool.map pl speculate pols
    | _ -> Array.map speculate pols
  in
  (* Phase 2 — sequential reconciliation in path order: accept the
     speculative header unless a previous path took it; only then fall
     back to the constrained query (exactly the query the sequential
     fold would have run). Output is therefore identical for any domain
     count, and for [Sat_unique] identical to the sequential fold. *)
  let seen = ref [] and chosen = ref [] in
  Array.iteri
    (fun i (p, pol) ->
      let taken h = List.exists (Header.equal h) !seen in
      let h =
        match spec.(i) with
        | Some h when not (taken h) -> Some h
        | _ -> header_for_path ~distinct_from:!seen pol p
      in
      match h with
      | Some h ->
          seen := h :: !seen;
          chosen := (p, h) :: !chosen
      | None -> ())
    pols;
  List.rev !chosen
