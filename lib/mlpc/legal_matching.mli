(** The paper's modified matching algorithm for MLPC (§V-B).

    The rule graph is transformed into a bipartite graph (each vertex
    [r] split into [r] and [r']; every closure-graph edge [(u, v)]
    becomes [(u, v')]). A matching corresponds to a successor function,
    i.e. a partition of the vertices into chains; the number of chains
    is [n − |M|], so a maximum matching whose chains are all legal paths
    is a minimum legal path cover.

    Augmentation searches for {e legal augmenting paths} (Definition 3):
    an augmenting path is admitted only if, once applied, every chain it
    touches is still a legal path. The search is augmenting-path-based
    (Kuhn's algorithm) with an undo log, so an illegal splice rolls back
    cleanly and alternatives are explored; Hopcroft–Karp's phase
    batching is an asymptotic optimization the reproduction trades for
    the explicit legality bookkeeping (the covers produced agree with
    brute-force minima on randomized small instances — see the test
    suite). *)

val solve : ?pool:Sdn_parallel.Pool.t -> Rulegraph.Rule_graph.t -> Cover.t
(** Minimum legal path cover via legal augmenting paths. With [pool],
    the edge-legality spaces every splice decision reads are warmed in
    parallel first ({!Rulegraph.Rule_graph.warm_injection} over all
    candidate 2-chains — the suffix-keyed cache then serves the deep
    chains too); the augmentation search itself stays sequential, so
    the cover is identical for any domain count. *)

val solve_successors : ?pool:Sdn_parallel.Pool.t -> Rulegraph.Rule_graph.t -> int array
(** The raw successor function, for callers that post-process chains. *)

val randomized :
  ?pool:Sdn_parallel.Pool.t ->
  ?dropout:float ->
  Sdn_util.Prng.t ->
  Rulegraph.Rule_graph.t ->
  Cover.t
(** Randomized SDNProbe's variant (§V-C): randomized greedy matching
    (Dyer–Frieze) over the same bipartite graph, restricted to legal
    splices, with [dropout] probability (default 0.15) of skipping a
    feasible splice. Dropout breaks chains at positions a maximal
    matching would never expose, so over the rounds tested paths can
    terminate at {e any} rule — the endpoint diversity that defeats
    colluding detours and targeting faults, at the price of more test
    packets (the paper's +72%). *)
