type action = Drop | Output of int | Goto_table of int

type add = {
  switch : int;
  table : int;
  priority : int;
  match_ : string;
  set_field : string option;
  action : action;
}

type op = Add of add | Remove of int

type t = op list

let action_to_string = function
  | Drop -> "drop"
  | Output p -> Printf.sprintf "output:%d" p
  | Goto_table t -> Printf.sprintf "goto:%d" t

let action_of_string s =
  match String.split_on_char ':' s with
  | [ "drop" ] -> Ok Drop
  | [ "output"; p ] -> (
      match int_of_string_opt p with
      | Some p -> Ok (Output p)
      | None -> Error (Printf.sprintf "bad output port %S" p))
  | [ "goto"; t ] -> (
      match int_of_string_opt t with
      | Some t -> Ok (Goto_table t)
      | None -> Error (Printf.sprintf "bad goto table %S" t))
  | _ -> Error (Printf.sprintf "unknown action %S (output:N, drop or goto:N)" s)

let is_cube_string s =
  String.length s > 0
  && String.for_all (function '0' | '1' | 'x' | 'X' | '*' -> true | _ -> false) s

let op_to_line = function
  | Remove id -> Printf.sprintf "remove %d" id
  | Add a ->
      Printf.sprintf "add switch=%d table=%d priority=%d match=%s action=%s%s"
        a.switch a.table a.priority a.match_
        (action_to_string a.action)
        (match a.set_field with None -> "" | Some s -> " set=" ^ s)

(* key=value fields after the [add] keyword, in any order. *)
let parse_kv tokens =
  List.fold_left
    (fun acc tok ->
      Result.bind acc (fun kvs ->
          match String.index_opt tok '=' with
          | None -> Error (Printf.sprintf "expected key=value, got %S" tok)
          | Some i ->
              let k = String.sub tok 0 i
              and v = String.sub tok (i + 1) (String.length tok - i - 1) in
              if List.mem_assoc k kvs then Error (Printf.sprintf "duplicate field %S" k)
              else Ok ((k, v) :: kvs)))
    (Ok []) tokens

let ( let* ) = Result.bind

let require_int kvs key =
  match List.assoc_opt key kvs with
  | None -> Error (Printf.sprintf "missing field %s=" key)
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "field %s: not an integer (%S)" key v))

let require_cube kvs key =
  match List.assoc_opt key kvs with
  | None -> Error (Printf.sprintf "missing field %s=" key)
  | Some v ->
      if is_cube_string v then Ok v
      else Error (Printf.sprintf "field %s: not a ternary 0/1/x string (%S)" key v)

(* Fields may be separated by any horizontal whitespace (editors love
   tabs), and lines from CRLF streams carry a trailing '\r' that the
   caller's '\n' split leaves attached — treat it as a separator too so
   it can never end up glued to the last field's value. *)
let is_field_sep = function ' ' | '\t' | '\r' -> true | _ -> false

let tokens_of_line line =
  let toks = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_field_sep c then flush () else Buffer.add_char buf c) line;
  flush ();
  List.rev !toks

let known_add_fields = [ "switch"; "table"; "priority"; "match"; "action"; "set" ]

let add_of_tokens tokens =
  let* kvs = parse_kv tokens in
  match List.find_opt (fun (k, _) -> not (List.mem k known_add_fields)) kvs with
  | Some (k, _) -> Error (Printf.sprintf "unknown field %S" k)
  | None ->
      let* switch = require_int kvs "switch" in
      let* table = require_int kvs "table" in
      let* priority = require_int kvs "priority" in
      let* match_ = require_cube kvs "match" in
      let* set_field =
        match List.assoc_opt "set" kvs with
        | None -> Ok None
        | Some _ -> Result.map Option.some (require_cube kvs "set")
      in
      let* action =
        match List.assoc_opt "action" kvs with
        | None -> Error "missing field action="
        | Some v -> action_of_string v
      in
      (match set_field with
      | Some s when String.length s <> String.length match_ ->
          Error
            (Printf.sprintf "set length %d differs from match length %d"
               (String.length s) (String.length match_))
      | _ -> Ok (Add { switch; table; priority; match_; set_field; action }))

let op_of_line line =
  match tokens_of_line line with
  | [] -> Error "empty line is not an op"
  | "remove" :: rest -> (
      match rest with
      | [ id ] -> (
          match int_of_string_opt id with
          | Some id -> Ok (Remove id)
          | None -> Error (Printf.sprintf "remove: not an entry id (%S)" id))
      | _ -> Error "remove takes exactly one entry id")
  | "add" :: rest -> add_of_tokens rest
  | kw :: _ -> Error (Printf.sprintf "unknown keyword %S (add, remove or commit)" kw)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno batches current = function
    | [] ->
        let batches =
          if current = [] then batches else List.rev current :: batches
        in
        Ok (List.rev batches)
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (lineno + 1) batches current rest
        else if line = "commit" then
          let batches =
            if current = [] then batches else List.rev current :: batches
          in
          go (lineno + 1) batches [] rest
        else
          match op_of_line line with
          | Ok op -> go (lineno + 1) batches (op :: current) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] [] lines

let to_string batches =
  String.concat ""
    (List.map
       (fun batch ->
         String.concat "" (List.map (fun op -> op_to_line op ^ "\n") batch)
         ^ "commit\n")
       batches)

(* ------------------------------------------------------------------ *)
(* JSON *)

let schema_version = 1

let op_to_json = function
  | Remove id -> Json.Obj [ ("op", Json.Str "remove"); ("id", Json.Int id) ]
  | Add a ->
      Json.Obj
        ([
           ("op", Json.Str "add");
           ("switch", Json.Int a.switch);
           ("table", Json.Int a.table);
           ("priority", Json.Int a.priority);
           ("match", Json.Str a.match_);
           ("action", Json.Str (action_to_string a.action));
         ]
        @ match a.set_field with None -> [] | Some s -> [ ("set", Json.Str s) ])

let to_json batches =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ( "batches",
        Json.List
          (List.map (fun batch -> Json.List (List.map op_to_json batch)) batches) );
    ]

let op_of_json v =
  match Json.obj_str "op" v with
  | Some "remove" -> (
      match Json.obj_int "id" v with
      | Some id -> Ok (Remove id)
      | None -> Error "remove: missing id")
  | Some "add" -> (
      match
        ( Json.obj_int "switch" v,
          Json.obj_int "table" v,
          Json.obj_int "priority" v,
          Json.obj_str "match" v,
          Json.obj_str "action" v )
      with
      | Some switch, Some table, Some priority, Some match_, Some action ->
          let* action = action_of_string action in
          let* () =
            if is_cube_string match_ then Ok ()
            else Error (Printf.sprintf "match: not a ternary string (%S)" match_)
          in
          let* set_field =
            match Json.member "set" v with
            | None -> Ok None
            | Some (Json.Str s) when is_cube_string s -> Ok (Some s)
            | Some _ -> Error "set: not a ternary string"
          in
          Ok (Add { switch; table; priority; match_; set_field; action })
      | _ -> Error "add: missing switch/table/priority/match/action")
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
  | None -> Error "missing op field"

let of_json v =
  match Json.obj_int "schema_version" v with
  | Some sv when sv <> schema_version ->
      Error (Printf.sprintf "unsupported edits schema_version %d" sv)
  | _ -> (
      match Json.obj_list "batches" v with
      | None -> Error "missing batches"
      | Some batches ->
          List.fold_left
            (fun acc batch ->
              let* acc = acc in
              match Json.to_list batch with
              | None -> Error "batch is not a list"
              | Some ops ->
                  let* ops =
                    List.fold_left
                      (fun acc op ->
                        let* acc = acc in
                        let* op = op_of_json op in
                        Ok (op :: acc))
                      (Ok []) ops
                  in
                  Ok (List.rev ops :: acc))
            (Ok []) batches
          |> Result.map List.rev)
