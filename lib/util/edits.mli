(** The rule-update stream: a textual (and JSON) edit format shared by
    every consumer of flow-table churn — [sdnprobe verify --edits],
    [sdnprobe plan --delta --edits] and the long-running
    [sdnprobe watch] mode all parse exactly this.

    A stream is a sequence of {e batches}. Each batch is a list of
    operations applied atomically (one [Pipeline.apply] / one
    [Verify.Engine.update] per batch); the [commit] keyword ends a
    batch, and a trailing non-empty batch is committed implicitly at
    end of input.

    Line format ([#] comments and blank lines are skipped):

    {v
    remove 42
    add switch=3 table=0 priority=10 match=01xx0101 action=output:2 set=xxxx0101
    commit
    v}

    [match] and [set] are ternary cube strings over [0]/[1]/[x] (the
    {!Hspace.Cube.of_string} alphabet); [set] is optional (identity
    rewrite). Actions are [output:PORT], [drop] or [goto:TABLE] — the
    same syntax {!Openflow.Serial} uses for saved policies.

    This module is deliberately representation-only (strings and ints,
    no header-space or OpenFlow types), so it lives in [sdn_util] below
    every consumer; applying an edit to a live network is
    {!Pipeline.apply_op}'s job. *)

type action = Drop | Output of int | Goto_table of int

type add = {
  switch : int;
  table : int;
  priority : int;
  match_ : string;  (** ternary cube string, e.g. ["01xx0101"] *)
  set_field : string option;  (** [None] = identity rewrite *)
  action : action;
}

type op =
  | Add of add
  | Remove of int  (** entry id *)

type t = op list
(** One batch. *)

val op_to_line : op -> string

val op_of_line : string -> (op, string) result
(** Parse one [add]/[remove] line. [Error] on unknown keywords, missing
    or malformed fields, or non-ternary cube strings; [commit], blank
    lines and comments are {e not} ops (see {!parse}). *)

val parse : string -> (t list, string) result
(** Parse a whole stream into batches. Errors carry the 1-based line
    number. Empty batches (two [commit]s in a row, or a trailing
    [commit]) are dropped. *)

val to_string : t list -> string
(** Serialize batches back to the line format, each batch terminated by
    a [commit] line. [parse (to_string bs) = Ok bs] for well-formed
    batches. *)

val to_json : t list -> Json.t
(** [{"schema_version": 1, "batches": [[op, ...], ...]}] with each op
    as an object ([{"op": "remove", "id": 42}] /
    [{"op": "add", "switch": ..., ...}]). *)

val of_json : Json.t -> (t list, string) result
