(* All duration measurements in the repo go through this module.

   Wall clock (Unix.gettimeofday) is steppable: an NTP correction in
   the middle of a timed section yields a negative or wildly wrong
   duration, which then lands in bench baselines and report JSON.
   CLOCK_MONOTONIC cannot step backwards, so spans are always
   non-negative and immune to clock discipline.

   The source is swappable only so tests can prove callers route
   through here (and simulate a stepping clock against the old code
   path); production code must never touch [with_source]. *)

external raw : unit -> float = "sdn_mono_now_s"

(* sdncheck: allow D005 — written only by with_source, which is
   restricted to single-domain test code by the contract above *)
let source = ref raw

let now_s () = !source ()

let span f =
  let t0 = now_s () in
  let r = f () in
  (r, now_s () -. t0)

let with_source s f =
  let prev = !source in
  source := s;
  Fun.protect ~finally:(fun () -> source := prev) f

let counting_source ~start ~step =
  let t = ref (start -. step) in
  fun () ->
    t := !t +. step;
    !t
