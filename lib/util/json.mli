(** Minimal JSON tree, printer and parser.

    The reproduction keeps its machine-readable output self-contained
    (no third-party JSON dependency): the lint engine prints JSON by
    hand, and the versioned {!Sdnprobe.Report} serialization both
    prints and parses. This module is the shared value type for the
    latter — a strict subset of RFC 8259 sufficient for our own output:
    UTF-8 is passed through opaquely, numbers are OCaml [int] or
    [float], and object keys are kept in order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Floats are printed with enough
    digits to round-trip ([%.17g], trimmed); strings are escaped per
    RFC 8259. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. Numbers
    with a fraction or exponent parse as [Float], others as [Int].
    [Error msg] carries a byte offset. *)

(** {2 Accessors} — each returns [None] on a type mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj] (first occurrence). *)

val to_int : t -> int option
(** [Int n] gives [n]; [Float f] gives [int_of_float f] when integral. *)

val to_float : t -> float option
(** [Float] or [Int] (widened). *)

val to_str : t -> string option

val to_list : t -> t list option

val obj_int : string -> t -> int option
(** [obj_int k o] = [member k o >>= to_int]; same shorthands below. *)

val obj_float : string -> t -> float option

val obj_str : string -> t -> string option

val obj_list : string -> t -> t list option
