type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over a string with an index cursor. *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> error "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              let c = parse_hex4 () in
              (* Encode the code point as UTF-8 (surrogate pairs are
                 not recombined — our own output never emits them). *)
              if c < 0x80 then Buffer.add_char buf (Char.chr c)
              else if c < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
              end
          | _ -> error "bad escape");
          loop ())
      | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lexeme = String.sub s start (!pos - start) in
    let fractional =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lexeme
    in
    if fractional then
      match float_of_string_opt lexeme with
      | Some f -> Float f
      | None -> error "bad number"
    else
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> (
          (* Integer overflowing [int]: fall back to float. *)
          match float_of_string_opt lexeme with
          | Some f -> Float f
          | None -> error "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> error "expected , or }"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> error "expected , or ]"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let bind o f = match o with Some x -> f x | None -> None

let obj_int k v = bind (member k v) to_int

let obj_float k v = bind (member k v) to_float

let obj_str k v = bind (member k v) to_str

let obj_list k v = bind (member k v) to_list
