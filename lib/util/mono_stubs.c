/* CLOCK_MONOTONIC for Sdn_util.Mono.

   OCaml 5.1's Unix library exposes only the steppable wall clock
   (gettimeofday); Unix.clock_gettime arrives in 5.2. This stub is the
   same syscall, pinned to the monotonic clock. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value sdn_mono_now_s(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec / 1e9);
}
