let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let sorted xs = List.sort compare xs

(* Deterministic views of a hash table: Hashtbl's own iteration order
   depends on insertion history and hashing, so any fold whose result
   can reach output must go through one of these instead (rule D001 in
   docs/ANALYSIS.md). Bindings with duplicate keys keep the most
   recent one, like Hashtbl.find. *)
let hashtbl_keys tbl =
  List.sort_uniq compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let hashtbl_bindings tbl =
  List.map (fun k -> (k, Hashtbl.find tbl k)) (hashtbl_keys tbl)

let median xs =
  match sorted xs with
  | [] -> 0.
  | s ->
      let n = List.length s in
      let a = Array.of_list s in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let percentile p xs =
  match sorted xs with
  | [] -> 0.
  | s ->
      let a = Array.of_list s in
      let n = Array.length a in
      let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))

let stddev xs =
  match xs with
  | [] -> 0.
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
      sqrt var

let list_init_filter n f =
  let rec loop i acc =
    if i >= n then List.rev acc
    else
      match f i with
      | Some x -> loop (i + 1) (x :: acc)
      | None -> loop (i + 1) acc
  in
  loop 0 []

let group_by key xs =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt tbl k with
      | Some l -> Hashtbl.replace tbl k (x :: l)
      | None ->
          Hashtbl.add tbl k [ x ];
          order := k :: !order)
    xs;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let take n xs =
  let rec loop n xs acc =
    match (n, xs) with
    | 0, _ | _, [] -> List.rev acc
    | n, x :: rest -> loop (n - 1) rest (x :: acc)
  in
  loop n xs []

let span_time f = Mono.span f
