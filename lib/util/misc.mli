(** Small helpers shared across the reproduction. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val median : float list -> float
(** Median (average of middle two for even length); 0. on empty. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank;
    0. on empty. *)

val stddev : float list -> float
(** Population standard deviation; 0. on empty. *)

val list_init_filter : int -> (int -> 'a option) -> 'a list
(** [list_init_filter n f] is [f 0 .. f (n-1)] keeping the [Some]s. *)

val group_by : ('a -> 'b) -> 'a list -> ('b * 'a list) list
(** Group elements by key (polymorphic compare on keys); groups appear
    in order of first occurrence and preserve element order. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (or fewer). *)

val hashtbl_keys : ('a, 'b) Hashtbl.t -> 'a list
(** Distinct keys in ascending (polymorphic-compare) order — the
    deterministic way to walk a hash table whose iteration order would
    otherwise leak into output (sdncheck rule D001). *)

val hashtbl_bindings : ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** Bindings sorted by key; duplicate keys keep the most recent
    binding, like [Hashtbl.find]. *)

val span_time : (unit -> 'a) -> 'a * float
(** [span_time f] runs [f ()] and returns its result together with the
    elapsed wall-clock time in seconds. *)
