(** Monotonic time for duration measurement.

    Every elapsed-time measurement in the repo ([Metrics.Timing], plan
    generation, bench harnesses, CLI apply timers) reads this clock
    rather than [Unix.gettimeofday]: the wall clock is steppable (NTP
    slews and steps, manual changes), so wall-clock spans can come out
    negative and corrupt bench baselines and report numbers.
    [CLOCK_MONOTONIC] never steps backwards. Values are only
    meaningful as differences — the epoch is arbitrary (typically
    boot). *)

val now_s : unit -> float
(** Seconds on the monotonic clock. *)

val span : (unit -> 'a) -> 'a * float
(** [span f] is [(f (), seconds f took)] — guaranteed non-negative. *)

(** {2 Test hooks} — for proving call sites route through this module;
    never for production code. *)

val with_source : (unit -> float) -> (unit -> 'a) -> 'a
(** Run a thunk with the clock source replaced (restored on exit, even
    on exceptions). *)

val counting_source : start:float -> step:float -> unit -> float
(** A deterministic fake source: first call returns [start], each
    further call [step] more. *)
