(* One parsed source file: its Parsetree, its sdncheck suppression
   comments, and a comment/string-stripped copy of the text for the
   module-reference scan (Modgraph).

   Comments are collected by a small hand-rolled scanner rather than
   the compiler lexer so that a file that fails to parse still yields
   its suppressions (and so the scan cannot disturb parser state).
   The scanner understands nested (* *) comments, "..." strings with
   escapes, {tag|...|tag} quoted strings, and char literals — enough
   to never mistake a '"' char literal for a string start. *)

type suppression = {
  s_rules : string list; (* rule ids the comment allows *)
  s_reason : string; (* mandatory justification *)
  s_first : int; (* first line the suppression covers *)
  s_last : int; (* last line it covers (comment end + 1) *)
}

type malformed = { m_line : int; m_text : string }

type t = {
  rel : string; (* repo-relative path, '/'-separated *)
  text : string;
  stripped : string; (* comments and string literals blanked *)
  ast : Parsetree.structure option;
  parse_error : (int * string) option;
  suppressions : suppression list;
  malformed : malformed list;
}

(* ------------------------------------------------------------------ *)
(* Lexical scan: collect comments, blank comments and strings. *)

let is_tag_char c = (c >= 'a' && c <= 'z') || c = '_'

let scan text =
  let n = String.length text in
  let out = Bytes.of_string text in
  let blank j = if Bytes.get out j <> '\n' then Bytes.set out j ' ' in
  let comments = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  while !i < n do
    let c = text.[!i] in
    if c = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
      let start_line = !line in
      let buf = Buffer.create 64 in
      let depth = ref 1 in
      blank !i;
      blank (!i + 1);
      i := !i + 2;
      while !depth > 0 && !i < n do
        let c = text.[!i] in
        if c = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else if c = '*' && !i + 1 < n && text.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          bump c;
          Buffer.add_char buf c;
          blank !i;
          incr i
        end
      done;
      comments := (Buffer.contents buf, start_line, !line) :: !comments
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        let c = text.[!i] in
        if c = '\\' && !i + 1 < n then begin
          bump text.[!i + 1];
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else if c = '"' then begin
          blank !i;
          incr i;
          fin := true
        end
        else begin
          bump c;
          blank !i;
          incr i
        end
      done
    end
    else if c = '{' then begin
      (* Quoted string {tag|...|tag}? Read the candidate tag. *)
      let j = ref (!i + 1) in
      while !j < n && is_tag_char text.[!j] do
        incr j
      done;
      if !j < n && text.[!j] = '|' then begin
        let tag = String.sub text (!i + 1) (!j - !i - 1) in
        let close = "|" ^ tag ^ "}" in
        let cl = String.length close in
        let k = ref (!j + 1) in
        let fin = ref false in
        for p = !i to !j do
          blank p
        done;
        while (not !fin) && !k < n do
          if !k + cl <= n && String.sub text !k cl = close then begin
            for p = !k to !k + cl - 1 do
              blank p
            done;
            k := !k + cl;
            fin := true
          end
          else begin
            bump text.[!k];
            blank !k;
            incr k
          end
        done;
        i := !k
      end
      else incr i
    end
    else if c = '\'' then begin
      (* Char literal or a prime in an identifier/type variable. *)
      if !i + 1 < n && text.[!i + 1] = '\\' then begin
        (* Escaped char literal: skip to the closing quote. *)
        let k = ref (!i + 2) in
        while !k < n && text.[!k] <> '\'' && !k - !i < 8 do
          incr k
        done;
        for p = !i to min (n - 1) !k do
          blank p
        done;
        i := !k + 1
      end
      else if !i + 2 < n && text.[!i + 2] = '\'' then begin
        (* Plain char literal, possibly '"'. *)
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      end
      else incr i
    end
    else begin
      bump c;
      incr i
    end
  done;
  (List.rev !comments, Bytes.to_string out)

(* ------------------------------------------------------------------ *)
(* Suppression comments: (* sdncheck: allow D001, D005 — reason *).
   The reason is mandatory; an id list without one is a malformed
   suppression the engine reports as S001. The em dash is the
   documented separator, but "--" and "-" are accepted. *)

let is_rule_id s =
  String.length s = 4
  && s.[0] >= 'A'
  && s.[0] <= 'Z'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 3)

let parse_suppression (text, l1, l2) =
  let trimmed = String.trim text in
  if not (String.starts_with ~prefix:"sdncheck:" trimmed) then `Not_one
  else
    let rest =
      String.trim (String.sub trimmed 9 (String.length trimmed - 9))
    in
    if not (String.starts_with ~prefix:"allow" rest) then
      `Malformed { m_line = l1; m_text = "expected \"sdncheck: allow <RULES> \xe2\x80\x94 <reason>\"" }
    else begin
      let rest = String.trim (String.sub rest 5 (String.length rest - 5)) in
      (* Split off rule ids until the separator (em dash or hyphens). *)
      let len = String.length rest in
      let sep_at = ref (-1) in
      let sep_len = ref 0 in
      let k = ref 0 in
      while !sep_at < 0 && !k < len do
        if !k + 3 <= len && String.sub rest !k 3 = "\xe2\x80\x94" then begin
          sep_at := !k;
          sep_len := 3
        end
        else if rest.[!k] = '-' then begin
          sep_at := !k;
          let e = ref !k in
          while !e < len && rest.[!e] = '-' do
            incr e
          done;
          sep_len := !e - !k
        end
        else incr k
      done;
      let ids_part, reason =
        if !sep_at < 0 then (rest, "")
        else
          ( String.sub rest 0 !sep_at,
            String.trim
              (String.sub rest (!sep_at + !sep_len) (len - !sep_at - !sep_len))
          )
      in
      let ids =
        String.split_on_char ',' ids_part
        |> List.concat_map (String.split_on_char ' ')
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      if ids = [] || not (List.for_all is_rule_id ids) then
        `Malformed { m_line = l1; m_text = "no valid rule ids in suppression" }
      else if reason = "" then
        `Malformed
          {
            m_line = l1;
            m_text =
              "suppression of " ^ String.concat "," ids
              ^ " carries no reason (a reason is mandatory)";
          }
      else `Suppression { s_rules = ids; s_reason = reason; s_first = l1; s_last = l2 + 1 }
    end

(* ------------------------------------------------------------------ *)

let parse_ast ~rel text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf rel;
  match Parse.implementation lexbuf with
  | ast -> (Some ast, None)
  | exception exn ->
      let line =
        match exn with
        | Syntaxerr.Error e ->
            (Syntaxerr.location_of_error e).Location.loc_start.Lexing.pos_lnum
        | Lexer.Error (_, loc) -> loc.Location.loc_start.Lexing.pos_lnum
        | _ -> lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum
      in
      (None, Some (line, "file does not parse"))

let of_string ~rel text =
  let comments, stripped = scan text in
  let suppressions = ref [] in
  let malformed = ref [] in
  List.iter
    (fun c ->
      match parse_suppression c with
      | `Not_one -> ()
      | `Suppression s -> suppressions := s :: !suppressions
      | `Malformed m -> malformed := m :: !malformed)
    comments;
  let ast, parse_error = parse_ast ~rel text in
  {
    rel;
    text;
    stripped;
    ast;
    parse_error;
    suppressions = List.rev !suppressions;
    malformed = List.rev !malformed;
  }

let load ~root ~rel =
  let path = Filename.concat root rel in
  let text = In_channel.with_open_bin path In_channel.input_all in
  of_string ~rel text
