(* sdncheck driver: collect sources, run every rule, apply in-source
   suppressions, and render the report (text or the lint-shaped JSON).
   The scan itself is deterministic — files are walked in sorted
   order, findings are sorted by (file, line, col, rule) — so two runs
   over the same tree produce byte-identical output. *)

module J = Sdn_util.Json

(* Directories whose .ml files the repo contract covers. *)
let scan_roots = [ "lib"; "bin"; "test"; "bench" ]

(* Never scanned: build artifacts, dot-dirs, and the deliberately-bad
   rule fixtures under test/analysis_fixtures. *)
let skip_dir name =
  name = "_build" || name = "analysis_fixtures"
  || (String.length name > 0 && name.[0] = '.')

(* The five pooled-stage entry files: every module their closures can
   reach is in scope for D005 (see Modgraph). *)
let pooled_seeds =
  [
    "lib/rulegraph/rule_graph.ml";
    "lib/mlpc/legal_matching.ml";
    "lib/mlpc/headers.ml";
    "lib/graph/yen.ml";
    "lib/core/runner.ml";
  ]

(* ------------------------------------------------------------------ *)
(* Root autodetect: walk up from [start] until the tree looks like
   this repo (tests run from _build/default/test, the CLI from
   anywhere inside a checkout). *)

let looks_like_root dir =
  Sys.file_exists (Filename.concat dir "lib/util/misc.ml")

let find_root ?(start = Sys.getcwd ()) () =
  let rec up dir n =
    if n > 12 then None
    else if looks_like_root dir then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n + 1)
  in
  up start 0

(* ------------------------------------------------------------------ *)
(* File collection, sorted for determinism. *)

let collect_files root =
  let acc = ref [] in
  let rec walk rel_dir =
    let abs = if rel_dir = "" then root else Filename.concat root rel_dir in
    match Sys.readdir abs with
    | exception Sys_error _ -> ()
    | entries ->
        Array.sort String.compare entries;
        Array.iter
          (fun name ->
            let rel = if rel_dir = "" then name else rel_dir ^ "/" ^ name in
            let abs_entry = Filename.concat root rel in
            if Sys.is_directory abs_entry then begin
              if not (skip_dir name) then walk rel
            end
            else if Filename.check_suffix name ".ml" then acc := rel :: !acc)
          entries
  in
  List.iter (fun r -> if Sys.file_exists (Filename.concat root r) then walk r) scan_roots;
  List.sort String.compare !acc

(* ------------------------------------------------------------------ *)

type report = {
  root : string;
  files_scanned : int;
  diagnostics : Finding.t list; (* unsuppressed, sorted *)
  suppressed : int; (* findings silenced by a valid suppression *)
  suppression_count : int; (* valid suppression comments seen *)
}

let suppressed_at src (f : Finding.t) =
  List.exists
    (fun s ->
      List.mem f.Finding.check s.Source.s_rules
      && f.Finding.line >= s.Source.s_first
      && f.Finding.line <= s.Source.s_last)
    src.Source.suppressions

(* Run [rules] over already-loaded sources (the test fixtures go
   through this entry point with synthetic Source.t values). *)
let run_sources ~rules ~pooled sources =
  let ctx = { Rules.pooled } in
  let kept = ref [] in
  let suppressed = ref 0 in
  let suppression_count = ref 0 in
  List.iter
    (fun src ->
      suppression_count := !suppression_count + List.length src.Source.suppressions;
      (* S001: malformed sdncheck comments and unparseable files are
         themselves errors — a suppression that silently failed to
         parse must not silently allow anything. Not suppressible. *)
      List.iter
        (fun m ->
          kept :=
            Finding.make ~check:"S001" ~severity:Finding.Error
              ~file:src.Source.rel ~line:m.Source.m_line ~col:0
              ("malformed sdncheck suppression: " ^ m.Source.m_text)
            :: !kept)
        src.Source.malformed;
      (match src.Source.parse_error with
      | Some (line, msg) ->
          kept :=
            Finding.make ~check:"S001" ~severity:Finding.Error
              ~file:src.Source.rel ~line ~col:0 msg
            :: !kept
      | None -> ());
      List.iter
        (fun (r : Rules.rule) ->
          List.iter
            (fun f ->
              if suppressed_at src f then incr suppressed else kept := f :: !kept)
            (r.Rules.check ctx src))
        rules)
    sources;
  {
    root = "";
    files_scanned = List.length sources;
    diagnostics = List.sort Finding.compare !kept;
    suppressed = !suppressed;
    suppression_count = !suppression_count;
  }

let run ?(rules = Rules.all) ~root () =
  let rels = collect_files root in
  let sources = List.map (fun rel -> Source.load ~root ~rel) rels in
  let graph =
    Modgraph.build ~root
      ~files:(List.map (fun s -> (s.Source.rel, s.Source.stripped)) sources)
  in
  let pooled = Modgraph.reachable graph ~seeds:pooled_seeds in
  { (run_sources ~rules ~pooled sources) with root }

(* ------------------------------------------------------------------ *)
(* Exit codes mirror lib/lint: 0 clean, 1 warnings, 2 errors. *)

type fail_on = Fail_never | Fail_error | Fail_warning

let worst report =
  List.fold_left
    (fun acc (f : Finding.t) ->
      match acc with
      | Some s when Finding.severity_rank s <= Finding.severity_rank f.Finding.severity
        ->
          acc
      | _ -> Some f.Finding.severity)
    None report.diagnostics

let exit_code ~fail_on report =
  match (fail_on, worst report) with
  | Fail_never, _ | _, None -> 0
  | (Fail_error | Fail_warning), Some Finding.Error -> 2
  | Fail_warning, Some Finding.Warning -> 1
  | Fail_error, Some Finding.Warning -> 0
  | _, Some Finding.Info -> 0

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let pp_text fmt report =
  List.iter
    (fun f -> Format.fprintf fmt "%a@." Finding.pp f)
    report.diagnostics;
  let errors =
    List.length
      (List.filter (fun f -> f.Finding.severity = Finding.Error) report.diagnostics)
  in
  let warnings =
    List.length
      (List.filter (fun f -> f.Finding.severity = Finding.Warning) report.diagnostics)
  in
  Format.fprintf fmt "sdncheck: %d file%s scanned, %d error%s, %d warning%s, %d suppressed@."
    report.files_scanned
    (if report.files_scanned = 1 then "" else "s")
    errors
    (if errors = 1 then "" else "s")
    warnings
    (if warnings = 1 then "" else "s")
    report.suppressed

let schema_version = 1

let to_json report =
  let count sev =
    List.length
      (List.filter (fun f -> f.Finding.severity = sev) report.diagnostics)
  in
  J.Obj
    [
      ("schema_version", J.Int schema_version);
      ("tool", J.Str "sdncheck");
      ( "summary",
        J.Obj
          [
            ("errors", J.Int (count Finding.Error));
            ("warnings", J.Int (count Finding.Warning));
            ("info", J.Int (count Finding.Info));
          ] );
      ("files_scanned", J.Int report.files_scanned);
      ("suppressed", J.Int report.suppressed);
      ("diagnostics", J.List (List.map Finding.to_json report.diagnostics));
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let* fields =
    match j with J.Obj f -> Ok f | _ -> Error "report is not an object"
  in
  let int k =
    match List.assoc_opt k fields with
    | Some (J.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "missing int field %S" k)
  in
  let* v = int "schema_version" in
  let* () =
    if v = schema_version then Ok ()
    else Error (Printf.sprintf "unsupported schema_version %d" v)
  in
  let* files_scanned = int "files_scanned" in
  let* suppressed = int "suppressed" in
  let* diags =
    match List.assoc_opt "diagnostics" fields with
    | Some (J.List l) ->
        List.fold_left
          (fun acc d ->
            let* acc = acc in
            let* f = Finding.of_json d in
            Ok (f :: acc))
          (Ok []) l
        |> Result.map List.rev
    | _ -> Error "missing diagnostics array"
  in
  Ok
    {
      root = "";
      files_scanned;
      diagnostics = diags;
      suppressed;
      suppression_count = 0;
    }
