(* The sdncheck rule catalogue (docs/ANALYSIS.md). Every rule walks
   the Parsetree of one file and returns findings; repo-level context
   (the D005 reachable set) comes in through [ctx]. Detection is
   purely syntactic — this is a contract linter for our own codebase,
   not a type checker — so each rule documents the shapes it
   recognizes and the escape hatch is an in-source suppression with a
   written reason. *)

open Parsetree

type ctx = {
  pooled : string -> bool; (* rel path reachable from pooled stages *)
}

type rule = {
  id : string;
  severity : Finding.severity;
  doc : string;
  check : ctx -> Source.t -> Finding.t list;
}

(* ------------------------------------------------------------------ *)
(* Shared helpers *)

let path_of_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | _ -> None

(* Head identifier of a (possibly partial) application chain. *)
let rec head_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | Pexp_apply (f, _) -> head_path f
  | Pexp_constraint (e', _) -> head_path e'
  | _ -> None

let pos_of loc =
  ( loc.Location.loc_start.Lexing.pos_lnum,
    loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol )

(* Strip a leading Stdlib. so Stdlib.Hashtbl.fold matches Hashtbl.fold. *)
let unstdlib = function "Stdlib" :: rest -> rest | p -> p

let finding ~id ~severity ~src loc message =
  let line, col = pos_of loc in
  Finding.make ~check:id ~severity ~file:src.Source.rel ~line ~col message

(* Run [f] on every expression of the structure. *)
let iter_exprs ast f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it ast

let with_ast src k = match src.Source.ast with None -> [] | Some ast -> k ast

(* ------------------------------------------------------------------ *)
(* D001: unordered Hashtbl.iter/fold. The nondeterministic iteration
   order of a hash table must never reach an accumulator, list or
   output. A fold is recognized as safe only when its result feeds a
   canonicalizing sort DIRECTLY (List.sort/sort_uniq/stable_sort or
   Misc.sorted, via plain application, |> or @@) — the sort key is the
   author's responsibility to make total. Anything else needs a fix
   (fold over sorted keys, e.g. Sdn_util.Misc.hashtbl_bindings) or a
   suppression explaining why order cannot matter. *)

let is_unordered_hashtbl p =
  match unstdlib p with
  | [ "Hashtbl"; ("iter" | "fold") ] -> true
  | _ -> false

let is_sort_head p =
  match unstdlib p with
  | [ "List"; ("sort" | "sort_uniq" | "stable_sort" | "fast_sort") ] -> true
  | [ "Misc"; "sorted" ] | [ "Sdn_util"; "Misc"; "sorted" ] -> true
  | _ -> false

let loc_key loc =
  (loc.Location.loc_start.Lexing.pos_cnum, loc.Location.loc_end.Lexing.pos_cnum)

let d001_check _ctx src =
  with_ast src (fun ast ->
      let sanctioned = ref [] in
      let sanction e = sanctioned := loc_key e.pexp_loc :: !sanctioned in
      let is_fold_app e =
        match e.pexp_desc with
        | Pexp_apply (f, _) -> (
            match path_of_ident f with
            | Some p -> is_unordered_hashtbl p
            | None -> false)
        | _ -> false
      in
      let head_is_sort e =
        match head_path e with Some p -> is_sort_head p | None -> false
      in
      let acc = ref [] in
      iter_exprs ast (fun e ->
          match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              match path_of_ident f with
              | Some [ "|>" ] -> (
                  match args with
                  | [ (_, lhs); (_, rhs) ] ->
                      if head_is_sort rhs && is_fold_app lhs then sanction lhs
                  | _ -> ())
              | Some [ "@@" ] -> (
                  match args with
                  | [ (_, lhs); (_, rhs) ] ->
                      if head_is_sort lhs && is_fold_app rhs then sanction rhs
                  | _ -> ())
              | Some p when is_sort_head p ->
                  List.iter (fun (_, a) -> if is_fold_app a then sanction a) args
              | Some p when is_unordered_hashtbl p ->
                  if not (List.mem (loc_key e.pexp_loc) !sanctioned) then
                    acc :=
                      finding ~id:"D001" ~severity:Finding.Error ~src e.pexp_loc
                        (Printf.sprintf
                           "%s iterates in nondeterministic hash order; fold \
                            over sorted keys (Misc.hashtbl_bindings), wrap the \
                            fold directly in a canonical List.sort, or \
                            suppress with a reason"
                           (String.concat "." (unstdlib p)))
                      :: !acc
              | _ -> ())
          | _ -> ());
      List.rev !acc)

(* ------------------------------------------------------------------ *)
(* D002: wall-clock reads. All duration measurement goes through
   Sdn_util.Mono (monotonic, steppable only in tests); a raw
   Unix.gettimeofday/Unix.time/Sys.time read lands nondeterministic
   wall time in reports and benches. Only Mono's implementation file
   may touch the wall clock. *)

let d002_exempt = [ "lib/util/mono.ml" ]

let is_wall_clock p =
  match unstdlib p with
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] -> true
  | _ -> false

let d002_check _ctx src =
  if List.mem src.Source.rel d002_exempt then []
  else
    with_ast src (fun ast ->
        let acc = ref [] in
        iter_exprs ast (fun e ->
            match path_of_ident e with
            | Some p when is_wall_clock p ->
                acc :=
                  finding ~id:"D002" ~severity:Finding.Error ~src e.pexp_loc
                    (Printf.sprintf
                       "wall-clock read %s outside Sdn_util.Mono; use \
                        Mono.now_s/Mono.span"
                       (String.concat "." (unstdlib p)))
                  :: !acc
            | _ -> ());
        List.rev !acc)

(* ------------------------------------------------------------------ *)
(* D003: ambient randomness. The global Random state is unseeded (or
   seeded once per process) and shared across domains; every draw in
   this codebase must come from an explicitly seeded Sdn_util.Prng
   stream so runs replay bit-for-bit. *)

let d003_exempt = [ "lib/util/prng.ml" ]

let d003_check _ctx src =
  if List.mem src.Source.rel d003_exempt then []
  else
    with_ast src (fun ast ->
        let acc = ref [] in
        iter_exprs ast (fun e ->
            match path_of_ident e with
            | Some p when (match unstdlib p with "Random" :: _ -> true | _ -> false)
              ->
                acc :=
                  finding ~id:"D003" ~severity:Finding.Error ~src e.pexp_loc
                    (Printf.sprintf
                       "ambient randomness %s; draw from a seeded \
                        Sdn_util.Prng stream instead"
                       (String.concat "." (unstdlib p)))
                  :: !acc
            | _ -> ());
        List.rev !acc)

(* ------------------------------------------------------------------ *)
(* D004: polymorphic structural operations on hash-consed header-space
   values. Cube.t/Hs.t/Header.t values may share structure physically;
   Stdlib.compare, (=) and Hashtbl.hash bypass the modules' canonical
   equal/compare/hash (and Hashtbl.hash additionally truncates to its
   meaningful-word budget). Detection is name-based: an operand is
   considered header-space when it is a variable named like one
   (header, cube, hs, x_header, ...), a record field so named, a
   Some-wrapped such value, or an application of a Cube/Hs/Header
   function that is not in the scalar-returning blacklist. *)

let d004_ops =
  [ [ "=" ]; [ "<>" ]; [ "compare" ]; [ "Stdlib"; "compare" ]; [ "Hashtbl"; "hash" ] ]

let d004_first_arg_ops = [ [ "List"; "mem" ]; [ "List"; "assoc" ]; [ "List"; "mem_assoc" ] ]

let d004_scalar_fns =
  [
    "length"; "size"; "get"; "member"; "matches"; "subset"; "is_subset";
    "is_empty"; "is_concrete"; "wildcard_count"; "fixed_count"; "cube_count";
    "count"; "to_string"; "pp"; "disjoint"; "mem"; "hash";
  ]

let d004_var_names = [ "header"; "header'"; "cube"; "cube'"; "hs"; "hs'"; "hdr" ]

let d004_field_names = [ "header"; "expected_header"; "header_out"; "cube" ]

let last_of = function [] -> "" | p -> List.nth p (List.length p - 1)

let d004_abstract_modules ast =
  (* The header-space modules plus local aliases to them
     (module H = Hspace.Header, ...). *)
  let base = [ "Cube"; "Hs"; "Header" ] in
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_ident { txt; _ } -> (
              match try Longident.flatten txt with _ -> [] with
              | p when List.mem (last_of p) base -> name :: acc
              | _ -> acc)
          | _ -> acc)
      | _ -> acc)
    base ast

let rec d004_abstract mods e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match try Longident.flatten txt with _ -> [] with
      | [ name ] ->
          List.mem name d004_var_names
          || String.ends_with ~suffix:"_header" name
          || String.ends_with ~suffix:"_cube" name
      | _ -> false)
  | Pexp_field (_, { txt; _ }) ->
      List.mem (last_of (try Longident.flatten txt with _ -> [])) d004_field_names
  | Pexp_apply (f, _) -> (
      match path_of_ident f with
      | Some p when List.length p >= 2 ->
          let m = List.nth p (List.length p - 2) in
          List.mem m mods && not (List.mem (last_of p) d004_scalar_fns)
      | _ -> false)
  | Pexp_construct ({ txt = Longident.Lident "Some"; _ }, Some inner) ->
      d004_abstract mods inner
  | Pexp_constraint (e', _) -> d004_abstract mods e'
  | _ -> false

let d004_check _ctx src =
  with_ast src (fun ast ->
      let mods = d004_abstract_modules ast in
      let acc = ref [] in
      let flag e op =
        acc :=
          finding ~id:"D004" ~severity:Finding.Error ~src e.pexp_loc
            (Printf.sprintf
               "polymorphic %s on a hash-consed header-space value; use \
                Cube.equal/Cube.compare (or Header.equal, Hs.equal_sets)"
               op)
          :: !acc
      in
      iter_exprs ast (fun e ->
          match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              match path_of_ident f with
              | Some p when List.mem (unstdlib p) d004_ops || List.mem p d004_ops
                ->
                  let check_args =
                    match args with
                    | (_, a) :: (_, b) :: _ -> [ a; b ]
                    | [ (_, a) ] -> [ a ]
                    | [] -> []
                  in
                  if List.exists (d004_abstract mods) check_args then
                    flag e (String.concat "." (unstdlib p))
              | Some p when List.mem (unstdlib p) d004_first_arg_ops ->
                  (match args with
                  | (_, a) :: _ when d004_abstract mods a ->
                      flag e (String.concat "." (unstdlib p))
                  | _ -> ())
              | _ -> ())
          | _ -> ());
      List.rev !acc)

(* ------------------------------------------------------------------ *)
(* D005: mutable module-toplevel state in code that pooled closures
   can reach. A toplevel ref/Hashtbl/Buffer/... in such a module is
   shared across domains the moment a pooled stage touches the module;
   it must either be an Atomic, or be guarded and carry a suppression
   naming the guard. Bindings whose right-hand side is a function are
   skipped (the state is created per call). *)

let d005_mutable_ctor p =
  match unstdlib p with
  | [ "ref" ] -> true
  | [ ("Hashtbl" | "Buffer" | "Queue" | "Stack" | "Weak" | "Bytes"); "create" ] ->
      true
  | [ "Array"; ("make" | "init" | "create_float" | "make_matrix") ] -> true
  | [ "Bytes"; "make" ] -> true
  | _ -> false

let rec d005_is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e') -> d005_is_function e'
  | Pexp_constraint (e', _) -> d005_is_function e'
  | _ -> false

(* State created inside a Domain.DLS.new_key initializer is
   domain-local by construction — never shared, never flagged. *)
let d005_domain_local p =
  match unstdlib p with
  | [ "Domain"; "DLS"; "new_key" ] -> true
  | _ -> false

let d005_scan_binding ~src vb acc =
  if d005_is_function vb.pvb_expr then acc
  else begin
    let hits = ref [] in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            match e.pexp_desc with
            | Pexp_apply (f, _)
              when match path_of_ident f with
                   | Some p -> d005_domain_local p
                   | None -> false ->
                () (* don't descend: DLS initializers are safe *)
            | Pexp_apply (f, _) ->
                (match path_of_ident f with
                | Some p when d005_mutable_ctor p ->
                    hits := String.concat "." (unstdlib p) :: !hits
                | _ -> ());
                Ast_iterator.default_iterator.expr self e
            | _ -> Ast_iterator.default_iterator.expr self e);
      }
    in
    it.expr it vb.pvb_expr;
    match List.rev !hits with
    | [] -> acc
    | ctor :: _ ->
        finding ~id:"D005" ~severity:Finding.Error ~src vb.pvb_loc
          (Printf.sprintf
             "mutable toplevel state (%s) in a module reachable from \
              Sdn_parallel pooled stages; use Atomic, or document the \
              Mutex/ownership guard in a suppression"
             ctor)
        :: acc
  end

let d005_check ctx src =
  if not (ctx.pooled src.Source.rel) then []
  else
    with_ast src (fun ast ->
        let rec scan_items items acc =
          List.fold_left
            (fun acc item ->
              match item.pstr_desc with
              | Pstr_value (_, vbs) ->
                  List.fold_left (fun acc vb -> d005_scan_binding ~src vb acc) acc vbs
              | Pstr_module { pmb_expr; _ } -> scan_module pmb_expr acc
              | Pstr_recmodule mbs ->
                  List.fold_left (fun acc mb -> scan_module mb.pmb_expr acc) acc mbs
              | _ -> acc)
            acc items
        and scan_module me acc =
          match me.pmod_desc with
          | Pmod_structure items -> scan_items items acc
          | Pmod_constraint (me', _) -> scan_module me' acc
          | _ -> acc
        in
        List.rev (scan_items ast []))

(* ------------------------------------------------------------------ *)
(* D006: stdout writes in library code. Libraries render through
   formatters or buffers the caller provides; printing to stdout from
   under lib/ bypasses --json modes and corrupts machine-read output.
   bin/, test/, bench/ and the lib/experiments drivers (whose whole
   output is the paper's tables) are out of scope. *)

let d006_in_scope rel =
  String.starts_with ~prefix:"lib/" rel
  && not (String.starts_with ~prefix:"lib/experiments/" rel)

let is_stdout_print p =
  match unstdlib p with
  | [
      ( "print_string" | "print_endline" | "print_newline" | "print_char"
      | "print_int" | "print_float" | "print_bytes" );
    ] ->
      true
  | [ "Printf"; "printf" ] | [ "Format"; "printf" ] | [ "Fmt"; "pr" ] -> true
  | [ "Format"; ("print_string" | "print_newline" | "print_space" | "print_cut" | "print_flush") ]
    ->
      true
  | _ -> false

let d006_check _ctx src =
  if not (d006_in_scope src.Source.rel) then []
  else
    with_ast src (fun ast ->
        let acc = ref [] in
        iter_exprs ast (fun e ->
            match path_of_ident e with
            | Some p when is_stdout_print p ->
                acc :=
                  finding ~id:"D006" ~severity:Finding.Warning ~src e.pexp_loc
                    (Printf.sprintf
                       "%s writes to stdout from library code; render through \
                        a caller-provided formatter or buffer"
                       (String.concat "." (unstdlib p)))
                  :: !acc
            | _ -> ());
        List.rev !acc)

(* ------------------------------------------------------------------ *)

let all =
  [
    {
      id = "D001";
      severity = Finding.Error;
      doc = "unordered Hashtbl.iter/fold whose result can reach output";
      check = d001_check;
    };
    {
      id = "D002";
      severity = Finding.Error;
      doc = "wall-clock read outside Sdn_util.Mono";
      check = d002_check;
    };
    {
      id = "D003";
      severity = Finding.Error;
      doc = "ambient/global randomness outside Sdn_util.Prng";
      check = d003_check;
    };
    {
      id = "D004";
      severity = Finding.Error;
      doc = "polymorphic compare/hash/= on hash-consed header-space values";
      check = d004_check;
    };
    {
      id = "D005";
      severity = Finding.Error;
      doc = "unguarded mutable toplevel state reachable from pooled closures";
      check = d005_check;
    };
    {
      id = "D006";
      severity = Finding.Warning;
      doc = "stdout printing in library code";
      check = d006_check;
    };
  ]

let find id = List.find_opt (fun r -> r.id = id) all
