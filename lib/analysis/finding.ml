(* One sdncheck diagnostic, mirroring the lib/lint diagnostic model:
   a stable rule id, a severity that drives the exit code, and a
   file:line:col witness the reader can jump to. *)

type severity = Error | Warning | Info

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

type t = {
  check : string; (* rule id, e.g. "D001" *)
  severity : severity;
  file : string; (* repo-relative, '/'-separated *)
  line : int; (* 1-based *)
  col : int; (* 0-based, like the compiler *)
  message : string;
}

let make ~check ~severity ~file ~line ~col message =
  { check; severity; file; line; col; message }

(* Order findings the way a reader scans them: by file, then position,
   then rule — severity does not reorder within a file, so one file's
   findings read top to bottom. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.check b.check with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let pp fmt d =
  Format.fprintf fmt "%s[%s] %s:%d:%d: %s"
    (severity_to_string d.severity)
    d.check d.file d.line d.col d.message

(* ------------------------------------------------------------------ *)
(* JSON, via the shared hand-rolled Sdn_util.Json (the toolchain
   carries no JSON library). *)

module J = Sdn_util.Json

let to_json d =
  J.Obj
    [
      ("check", J.Str d.check);
      ("severity", J.Str (severity_to_string d.severity));
      ("file", J.Str d.file);
      ("line", J.Int d.line);
      ("col", J.Int d.col);
      ("message", J.Str d.message);
    ]

let of_json = function
  | J.Obj fields -> (
      let str k =
        match List.assoc_opt k fields with Some (J.Str s) -> Some s | _ -> None
      in
      let int k =
        match List.assoc_opt k fields with Some (J.Int n) -> Some n | _ -> None
      in
      match (str "check", str "severity", str "file", int "line", int "col", str "message") with
      | Some check, Some sev, Some file, Some line, Some col, Some message -> (
          match severity_of_string sev with
          | Some severity -> Ok { check; severity; file; line; col; message }
          | None -> Error (Printf.sprintf "unknown severity %S" sev))
      | _ -> Error "diagnostic object is missing a required field")
  | _ -> Error "diagnostic is not an object"
