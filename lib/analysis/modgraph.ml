(* Module-reference graph over the repo's sources, used by rule D005
   to compute which modules can run inside Sdn_parallel pooled
   closures.

   Resolution mirrors dune's wrapped-library layout: each lib/<dir>
   with a dune (name x) stanza exposes wrapper module X, and files
   within one directory see each other by bare module name. A
   reference [Wrapper.Sub] resolves to <dir>/sub.ml when it exists and
   conservatively to the whole library otherwise; a bare [Sub] only
   resolves within the referencing file's own directory (wrapped
   libraries cannot be reached unqualified from outside). References
   are taken from the comment/string-stripped text, so prose never
   creates edges but aliases like [module H = Hspace.Hs] do — the
   alias line itself mentions the target path. *)

module SM = Map.Make (String)
module SS = Set.Make (String)

type t = {
  refs : SS.t SM.t; (* rel file -> rel files it references *)
}

let dirname rel =
  match String.rindex_opt rel '/' with
  | Some i -> String.sub rel 0 i
  | None -> ""

let basename rel =
  match String.rindex_opt rel '/' with
  | Some i -> String.sub rel (i + 1) (String.length rel - i - 1)
  | None -> rel

let module_of_file rel =
  String.capitalize_ascii (Filename.remove_extension (basename rel))

(* Extract (name x) from a dune file's text: the first "(name" atom. *)
let lib_name_of_dune text =
  let n = String.length text in
  let key = "(name" in
  let rec find i =
    if i + 5 >= n then None
    else if String.sub text i 5 = key then begin
      let j = ref (i + 5) in
      while !j < n && (text.[!j] = ' ' || text.[!j] = '\n' || text.[!j] = '\t') do
        incr j
      done;
      let k = ref !j in
      while
        !k < n
        && (match text.[!k] with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
           | _ -> false)
      do
        incr k
      done;
      if !k > !j then Some (String.sub text !j (!k - !j)) else None
    end
    else find (i + 1)
  in
  find 0

let is_upper c = c >= 'A' && c <= 'Z'

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* All module paths mentioned in the stripped text, as [U1] and
   [U1; U2] prefixes of dotted capitalized idents. *)
let module_paths stripped =
  let n = String.length stripped in
  let acc = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = stripped.[!i] in
    if is_upper c && (!i = 0 || not (is_ident_char stripped.[!i - 1] || stripped.[!i - 1] = '.'))
    then begin
      (* Read a dotted path of components starting at a module name. *)
      let comps = ref [] in
      let continue = ref true in
      while !continue do
        let s = !i in
        while !i < n && is_ident_char stripped.[!i] do
          incr i
        done;
        let comp = String.sub stripped s (!i - s) in
        if comp <> "" && is_upper comp.[0] then begin
          comps := comp :: !comps;
          if !i < n && stripped.[!i] = '.' && !i + 1 < n && is_upper stripped.[!i + 1]
          then incr i
          else continue := false
        end
        else continue := false
      done;
      (match List.rev !comps with
      | [] -> ()
      | [ u1 ] -> acc := [ u1 ] :: !acc
      | u1 :: u2 :: _ -> acc := [ u1 ] :: [ u1; u2 ] :: !acc)
    end
    else incr i
  done;
  !acc

let build ~root ~files =
  (* Map each source directory to its dune library wrapper module. *)
  let dirs =
    List.fold_left (fun m (rel, _) -> SS.add (dirname rel) m) SS.empty files
  in
  let wrapper_of_dir =
    SS.fold
      (fun dir m ->
        let dune = Filename.concat (Filename.concat root dir) "dune" in
        if Sys.file_exists dune then
          let text = In_channel.with_open_bin dune In_channel.input_all in
          match lib_name_of_dune text with
          | Some name -> SM.add dir (String.capitalize_ascii name) m
          | None -> m
        else m)
      dirs SM.empty
  in
  let dir_of_wrapper =
    SM.fold (fun dir w m -> SM.add w dir m) wrapper_of_dir SM.empty
  in
  (* (dir, Module) -> rel file, and dir -> all rel files. *)
  let sibling, by_dir =
    List.fold_left
      (fun (sib, byd) (rel, _) ->
        let d = dirname rel in
        ( SM.add (d ^ "#" ^ module_of_file rel) rel sib,
          SM.update d
            (fun o -> Some (rel :: Option.value ~default:[] o))
            byd ))
      (SM.empty, SM.empty) files
  in
  let refs =
    List.fold_left
      (fun m (rel, stripped) ->
        let d = dirname rel in
        let targets =
          List.fold_left
            (fun acc path ->
              match path with
              | [ u1 ] -> (
                  match SM.find_opt (d ^ "#" ^ u1) sibling with
                  | Some f when f <> rel -> SS.add f acc
                  | Some _ -> acc
                  | None -> (
                      (* A wrapper module used without a dotted
                         submodule (Sdn_parallel.map): take the lib. *)
                      match SM.find_opt u1 dir_of_wrapper with
                      | Some d2 when d2 <> d ->
                          List.fold_left
                            (fun acc f -> SS.add f acc)
                            acc
                            (Option.value ~default:[] (SM.find_opt d2 by_dir))
                      | _ -> acc))
              | [ u1; u2 ] -> (
                  match SM.find_opt u1 dir_of_wrapper with
                  | Some d2 -> (
                      match SM.find_opt (d2 ^ "#" ^ u2) sibling with
                      | Some f -> SS.add f acc
                      | None ->
                          (* Wrapper mentioned without a resolvable
                             submodule: conservatively take the lib. *)
                          List.fold_left
                            (fun acc f -> SS.add f acc)
                            acc
                            (Option.value ~default:[] (SM.find_opt d2 by_dir)))
                  | None -> acc)
              | _ -> acc)
            SS.empty (module_paths stripped)
        in
        SM.add rel targets m)
      SM.empty files
  in
  { refs }

(* Transitive closure of the reference graph from [seeds]. *)
let reachable t ~seeds =
  let rec go visited = function
    | [] -> visited
    | f :: rest ->
        if SS.mem f visited then go visited rest
        else
          let next =
            match SM.find_opt f t.refs with
            | Some s -> SS.elements s
            | None -> []
          in
          go (SS.add f visited) (List.rev_append next rest)
  in
  let set = go SS.empty seeds in
  fun rel -> SS.mem rel set
