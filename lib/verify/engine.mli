(** The incremental symbolic invariant verifier.

    An engine owns the plumbing graph of one network plus a cache of
    closure states (one per (source, avoided-switch) pair the checked
    invariants needed so far). {!check} computes the missing states —
    in parallel over a domain pool when given one, with an input-order
    join so output is bit-identical at any domain count — then
    evaluates each invariant against them and certifies every
    violation's witness through {!Witness.certify} before reporting it;
    a witness that fails certification raises {!Uncertified} instead of
    being reported (the acceptance gate of docs/VERIFY.md).

    {!update} consumes the same [changed_tables] edit stream as
    [Rulegraph.Rule_graph.update]: after the caller mutates the
    network's flow tables, it patches the plumbing graph and
    delta-propagates every cached state, so the next {!check} pays only
    for the affected region ([verify.edit/*] in the bench regression
    suite measures the amortized cost). *)

type t

exception Uncertified of string
(** A violation's witness failed independent certification — an engine
    bug, never a report. *)

val create : ?pool:Sdn_parallel.Pool.t -> Openflow.Network.t -> t
(** Build the plumbing graph. [pool] parallelizes state computation
    across injection sources. *)

val network : t -> Openflow.Network.t

val plumbing : t -> Plumbing.t
(** The current graph (replaced by {!update}). *)

val default_invariants : Invariant.t list
(** [[Loop_free; No_blackhole]] — the network-wide invariants that need
    no switch arguments. *)

val check : t -> Invariant.t list -> Report.t
(** Evaluate the invariants, in order. Raises [Invalid_argument] when
    one fails {!Invariant.validate} against the engine's network. *)

val update : t -> changed_tables:(int * int) list -> unit
(** The network behind the engine was mutated in the given
    [(switch, table)] pairs (inserted, removed or replaced entries):
    patch the plumbing graph and delta-propagate all cached states. *)

val state : t -> source:int -> ?avoid:int -> unit -> Closure.state
(** The cached closure state for a source (computed on demand) — the
    engine's ground truth, exposed for differential tests. *)

val states_cached : t -> int
