module Hs = Hspace.Hs
module Header = Hspace.Header
module FE = Openflow.Flow_entry
module Network = Openflow.Network
module Flow_table = Openflow.Flow_table

type t = { rules : int list; header : Hspace.Header.t option }

type kind =
  | Path_reaches of { src : int; dst : int }
  | Path_avoids of { src : int; waypoint : int; dst : int }
  | Loop_unrolled
  | Structural_cycle
  | Leak of { rule : int; next_switch : int }
  | Leak_unexercised of { rule : int; next_switch : int }
  | Deepest_path of { src : int }
  | Vacuous_source of { src : int }

type certificate = Replayed | Structural

let certificate_name = function
  | Replayed -> "replayed"
  | Structural -> "structural"

let pp_kind fmt = function
  | Path_reaches { src; dst } -> Format.fprintf fmt "path-reaches sw%d->sw%d" src dst
  | Path_avoids { src; waypoint; dst } ->
      Format.fprintf fmt "path-avoids sw%d-/%d->sw%d" src waypoint dst
  | Loop_unrolled -> Format.pp_print_string fmt "loop-unrolled"
  | Structural_cycle -> Format.pp_print_string fmt "structural-cycle"
  | Leak { rule; next_switch } -> Format.fprintf fmt "leak entry %d -> sw%d" rule next_switch
  | Leak_unexercised { rule; next_switch } ->
      Format.fprintf fmt "leak (unexercised) entry %d -> sw%d" rule next_switch
  | Deepest_path { src } -> Format.fprintf fmt "deepest-path from sw%d" src
  | Vacuous_source { src } -> Format.fprintf fmt "vacuous-source sw%d" src

let ( let* ) = Result.bind

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let entry_opt net id = Network.find_entry net id

(* Run the header through the path's set-field rewrites; replay already
   established that the path is the real lookup trajectory of this
   header, so a plain fold reproduces the header the last rule emits. *)
let final_header net rules header =
  List.fold_left
    (fun h id -> FE.apply (Network.entry net id) h)
    header rules

let switch_of net id = (Network.entry net id).FE.switch

(* Replay through the real lookup semantics, then check the claim's
   concrete postcondition. *)
let certify_replayed net kind rules header =
  let* () = Cert.Replay.check_path net { Cert.Replay.rules; header } in
  let first = List.hd rules and last = List.nth rules (List.length rules - 1) in
  match kind with
  | Path_reaches { src; dst } ->
      if switch_of net first <> src then
        err "path starts at sw%d, not sw%d" (switch_of net first) src
      else if switch_of net last <> dst then
        err "path ends at sw%d, not sw%d" (switch_of net last) dst
      else Ok Replayed
  | Path_avoids { src; waypoint; dst } ->
      if switch_of net first <> src then
        err "path starts at sw%d, not sw%d" (switch_of net first) src
      else if switch_of net last <> dst then
        err "path ends at sw%d, not sw%d" (switch_of net last) dst
      else if List.exists (fun id -> switch_of net id = waypoint) rules then
        err "path traverses the waypoint sw%d" waypoint
      else Ok Replayed
  | Loop_unrolled ->
      let sorted = List.sort Int.compare rules in
      let rec has_dup = function
        | a :: (b :: _ as rest) -> a = b || has_dup rest
        | _ -> false
      in
      if has_dup sorted then Ok Replayed
      else err "path revisits no flow entry"
  | Deepest_path { src } ->
      if switch_of net first <> src then
        err "path starts at sw%d, not sw%d" (switch_of net first) src
      else Ok Replayed
  | Leak { rule; next_switch } ->
      if last <> rule then err "path ends at entry %d, not the leaking entry %d" last rule
      else
        let r = Network.entry net rule in
        let* () =
          match r.FE.action with
          | FE.Output _ when Network.next_switch net r = Some next_switch -> Ok ()
          | _ -> err "entry %d does not forward to sw%d" rule next_switch
        in
        (* The packet the witness hands to the next hop, re-derived by
           concrete simulation. *)
        let handed = final_header net rules header in
        (match Flow_table.lookup (Network.table net ~switch:next_switch ~table:0) handed with
        | None -> Ok Replayed
        | Some q ->
            err "header %s is matched by entry %d at sw%d — no blackhole"
              (Header.to_string handed) q.FE.id next_switch)
  | Structural_cycle | Leak_unexercised _ | Vacuous_source _ ->
      err "kind does not admit a replayed witness"

(* Path-free claims: recompute the structural fact fresh from the flow
   tables (input/output spaces re-derived, not read off the engine). *)
let certify_structural net kind rules =
  match kind with
  | Vacuous_source { src } ->
      if rules <> [] then err "vacuous witness carries a path"
      else
        let stuck =
          List.filter
            (fun (e : FE.t) ->
              e.table = 0 && not (Hs.is_empty (Network.input_space net e)))
            (Network.switch_entries net src)
        in
        (match stuck with
        | [] -> Ok Structural
        | e :: _ -> err "entry %d at sw%d is injectable — source not vacuous" e.FE.id src)
  | Structural_cycle ->
      let* entries =
        try
          Ok
            (List.map
               (fun id ->
                 match entry_opt net id with
                 | Some e -> e
                 | None -> raise Exit)
               rules)
        with Exit -> err "cycle references a deleted entry"
      in
      if entries = [] then err "empty cycle"
      else
        let rec check = function
          | [] -> Ok Structural
          | (p, q) :: rest ->
              let hand_off =
                Hs.inter (Network.output_space net p) (Network.input_space net q)
              in
              if Hs.is_empty hand_off then
                err "hand-off %d -> %d is empty — edge infeasible" p.FE.id q.FE.id
              else
                let ok_dispatch =
                  match p.FE.action with
                  | FE.Drop -> false
                  | FE.Output _ ->
                      q.FE.table = 0 && Network.next_switch net p = Some q.FE.switch
                  | FE.Goto_table tb -> p.FE.switch = q.FE.switch && tb = q.FE.table
                in
                if not ok_dispatch then
                  err "entry %d does not dispatch to entry %d" p.FE.id q.FE.id
                else check rest
        in
        let pairs =
          let rec adj = function
            | a :: (b :: _ as rest) -> (a, b) :: adj rest
            | _ -> []
          in
          adj entries @ [ (List.nth entries (List.length entries - 1), List.hd entries) ]
        in
        check pairs
  | Leak_unexercised { rule; next_switch } -> (
      match entry_opt net rule with
      | None -> err "leaking entry %d no longer exists" rule
      | Some r ->
          let* () =
            match r.FE.action with
            | FE.Output _ when Network.next_switch net r = Some next_switch -> Ok ()
            | _ -> err "entry %d does not forward to sw%d" rule next_switch
          in
          let leaked =
            List.fold_left
              (fun space (q : FE.t) -> Hs.diff_cube space q.FE.match_)
              (Network.output_space net r)
              (Flow_table.entries (Network.table net ~switch:next_switch ~table:0))
          in
          if Hs.is_empty leaked then err "entry %d leaks nothing — recheck failed" rule
          else Ok Structural)
  | Path_reaches _ | Path_avoids _ | Loop_unrolled | Leak _ | Deepest_path _ ->
      err "kind requires a replayable (header, path) witness"

let certify net kind w =
  match (w.header, w.rules) with
  | Some h, _ :: _ -> certify_replayed net kind w.rules h
  | Some _, [] -> err "witness has a header but no path"
  | None, rules -> certify_structural net kind rules
