(** Counterexample witnesses and their independent certification.

    A witness is the concrete evidence attached to every invariant
    violation: a rule path (entry ids in traversal order) and, when the
    path is injectable, a concrete header that traverses it. {!certify}
    re-establishes the evidence with no reference to the plumbing graph
    or the closure engine: paths with headers are replayed through the
    network's real lookup semantics by {!Cert.Replay.check_path}, then
    the invariant-specific postcondition is checked on concrete values;
    path-free witnesses get a structural recheck computed fresh from
    the flow tables. The engine refuses to report a violation whose
    witness does not certify (docs/VERIFY.md). *)

type t = {
  rules : int list;  (** entry ids in traversal order; [[]] only for vacuous witnesses *)
  header : Hspace.Header.t option;
      (** injected header; [None] for structural (non-replayable) witnesses *)
}

(** What the witness claims — fixes the postcondition {!certify} checks
    after replay. *)
type kind =
  | Path_reaches of { src : int; dst : int }
      (** the replayed path starts at [src]'s table 0 and traverses a
          rule of [dst] (an [isolated src dst] violation, or [reach]'s
          positive evidence) *)
  | Path_avoids of { src : int; waypoint : int; dst : int }
      (** additionally, no rule of [waypoint] occurs on the path *)
  | Loop_unrolled
      (** the replayed path revisits a flow entry: some id occurs twice *)
  | Structural_cycle
      (** non-replayable cycle: consecutive hand-off spaces (recomputed
          from the flow tables) are all non-empty, but no injectable
          packet drives the loop *)
  | Leak of { rule : int; next_switch : int }
      (** the replayed path ends at [rule] and the header it forwards
          to [next_switch] matches nothing in that switch's table 0 *)
  | Leak_unexercised of { rule : int; next_switch : int }
      (** non-replayable blackhole: [rule] leaks (recomputed fresh) but
          no injection reaches it — a pipeline-dead rule *)
  | Deepest_path of { src : int }
      (** evidence for a failed [reach src dst]: the longest path the
          closure found from [src]; replayable but not a violation
          proof on its own *)
  | Vacuous_source of { src : int }
      (** a failed [reach] with nothing injectable: every table-0 entry
          of [src] has an empty input space (rechecked fresh) *)

type certificate =
  | Replayed
      (** {!Cert.Replay.check_path} accepted the (header, rules) pair
          and the kind's concrete postcondition held *)
  | Structural
      (** path-free recheck recomputed from the flow tables passed *)

val certificate_name : certificate -> string

val pp_kind : Format.formatter -> kind -> unit

val certify : Openflow.Network.t -> kind -> t -> (certificate, string) result
(** Check the witness against the network. The error says which
    replay hop or postcondition failed. *)
