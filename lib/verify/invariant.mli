(** The verifier's declarative invariant language.

    An invariant is one network-wide property of the routing policy,
    checked symbolically against the plumbing graph's reachability
    closure (see {!Engine} and docs/VERIFY.md):

    - [reach a b] — some packet injected at switch [a] can traverse a
      rule of switch [b];
    - [isolated a b] — no packet injected at [a] ever reaches [b];
    - [loop-free] — no cycle of flow entries a packet can circulate
      through (SDNProbe's DAG precondition, lint's L001);
    - [no-blackhole] — no forwarding rule leaks part of its output
      space into a next hop that drops it on table-miss (lint's L002);
    - [waypoint a w b] — every packet from [a] that reaches [b] passes
      through a rule of switch [w].

    The concrete syntax is exactly the constructor list above, one
    invariant per line; [#] starts a comment. Switch arguments are
    0-based indices into the network's topology. *)

type t =
  | Reach of int * int
  | Isolated of int * int
  | Loop_free
  | No_blackhole
  | Waypoint of int * int * int  (** [Waypoint (a, w, b)] *)

val equal : t -> t -> bool

val compare : t -> t -> int

val to_string : t -> string
(** Concrete syntax, e.g. ["reach 0 5"], ["waypoint 0 3 5"]. *)

val of_string : string -> (t, string) result
(** Parse one invariant; inverse of {!to_string}. Accepts surrounding
    whitespace; the error names the offending token. *)

val parse_spec : string -> (t list, string) result
(** Parse a whole spec: one invariant per line, blank lines and [#]
    comments ignored. The error is prefixed with the 1-based line
    number. *)

val validate : n_switches:int -> t -> (unit, string) result
(** Check every switch argument is in range [\[0, n_switches)]. *)

val pp : Format.formatter -> t -> unit
