module Hs = Hspace.Hs
module FE = Openflow.Flow_entry
module Network = Openflow.Network
module Flow_table = Openflow.Flow_table
module Topology = Openflow.Topology
module Digraph = Sdngraph.Digraph

type t = {
  net : Network.t;
  vertices : FE.t array;
  index_of : (int, int) Hashtbl.t; (* entry id -> vertex index *)
  inputs : Hs.t array;
  outputs : Hs.t array;
  graph : Digraph.t;
  labels : (int * int, Hs.t) Hashtbl.t;
}

let network t = t.net

let n_vertices t = Array.length t.vertices

let vertex_entry t v = t.vertices.(v)

let vertex_of_entry t id = Hashtbl.find_opt t.index_of id

let input t v = t.inputs.(v)

let output t v = t.outputs.(v)

let graph t = t.graph

let succ t v = Digraph.succ t.graph v

let label t u v =
  match Hashtbl.find_opt t.labels (u, v) with
  | Some hs -> hs
  | None -> Hs.empty (Network.header_len t.net)

(* Successor candidates of a rule: the entries its action hands the
   packet to — the next switch's table 0 for an output onto a live
   link, a later table of the same switch for a goto. The iteration
   order (entries ascending, candidates in lookup order) is the one
   lint's historical L001 pass used, so [find_cycle] reports the same
   cycle. *)
let candidates_from net (r : FE.t) =
  match r.action with
  | FE.Drop -> []
  | FE.Output _ -> (
      match Network.next_switch net r with
      | None -> []
      | Some sw -> Flow_table.entries (Network.table net ~switch:sw ~table:0))
  | FE.Goto_table tb ->
      Flow_table.entries (Network.table net ~switch:r.switch ~table:tb)

let add_edge t u v =
  let hand_off = Hs.inter t.outputs.(u) t.inputs.(v) in
  if not (Hs.is_empty hand_off) then begin
    Digraph.add_edge t.graph u v;
    Hashtbl.replace t.labels (u, v) hand_off
  end

let build net =
  let vertices = Array.of_list (Network.all_entries net) in
  let n = Array.length vertices in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i (e : FE.t) -> Hashtbl.add index_of e.id i) vertices;
  let t =
    {
      net;
      vertices;
      index_of;
      inputs = Array.map (Network.input_space net) vertices;
      outputs = Array.map (Network.output_space net) vertices;
      graph = Digraph.create n;
      labels = Hashtbl.create (4 * n);
    }
  in
  Array.iteri
    (fun i (r : FE.t) ->
      List.iter
        (fun (q : FE.t) -> add_edge t i (Hashtbl.find index_of q.id))
        (candidates_from net r))
    vertices;
  t

(* ------------------------------------------------------------------ *)
(* Incremental patching.

   Correctness rests on the same observations Rule_graph.update leans
   on: a vertex's spaces depend only on its own table's entries, and an
   edge (plus its label) only on its endpoints' spaces and the fixed
   topology. So spaces are recomputed only for entries of changed
   tables, and edges only where an endpoint changed.

   The [affected] set drives the closure engine's delta worklist: a
   vertex is affected exactly when its own spaces (and hence the labels
   of its incident edges) may differ from the old graph's — it sits in
   a changed table or is a newly inserted entry. Everything about an
   edge between two unaffected vertices is unchanged, so a flow whose
   whole provenance chain avoids affected vertices is still a valid
   derivation; {!Closure.update} exploits exactly that. *)

type patch = {
  plumbing : t;
  affected : bool array;
  remap : int array;
  any_affected : bool;
}

(* Does executing [p] hand the packet to rule [q]'s flow table? *)
let leads_to net (p : FE.t) (q : FE.t) =
  match p.action with
  | FE.Drop -> false
  | FE.Output _ -> q.table = 0 && Network.next_switch net p = Some q.switch
  | FE.Goto_table tb -> p.switch = q.switch && tb = q.table

let patch old ~changed_tables =
  let net = old.net in
  let vertices = Array.of_list (Network.all_entries net) in
  let n = Array.length vertices in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i (e : FE.t) -> Hashtbl.add index_of e.id i) vertices;
  let in_changed_table (e : FE.t) =
    List.exists (fun (sw, tb) -> sw = e.switch && tb = e.table) changed_tables
  in
  (* Spaces are recomputed for entries of changed tables (a single
     rule's removal re-shapes its table-mates' inputs through priority
     shadowing) and for entries never seen before — inserted entries
     count even if the caller's changed_tables is incomplete for them.
     An entry whose recomputed spaces come out set-equal to the old
     ones is NOT affected: every incident edge label is an intersection
     of unchanged spaces, so nothing about it differs from the old
     graph. For a one-rule edit this shrinks the affected set from the
     whole table to the handful of entries the rule actually
     shadowed — what keeps Closure.update's wavefront proportional to
     the edit. *)
  let marked = Array.make n false in
  let inputs = Array.make n (Hs.empty (Network.header_len net)) in
  let outputs = Array.make n (Hs.empty (Network.header_len net)) in
  Array.iteri
    (fun i (e : FE.t) ->
      match Hashtbl.find_opt old.index_of e.id with
      | Some ov when not (in_changed_table e) ->
          inputs.(i) <- old.inputs.(ov);
          outputs.(i) <- old.outputs.(ov)
      | Some ov ->
          let inp = Network.input_space net e in
          let out = Network.output_space net e in
          if Hs.equal_sets inp old.inputs.(ov) && Hs.equal_sets out old.outputs.(ov)
          then begin
            inputs.(i) <- old.inputs.(ov);
            outputs.(i) <- old.outputs.(ov)
          end
          else begin
            inputs.(i) <- inp;
            outputs.(i) <- out;
            marked.(i) <- true
          end
      | None ->
          inputs.(i) <- Network.input_space net e;
          outputs.(i) <- Network.output_space net e;
          marked.(i) <- true)
    vertices;
  let t =
    {
      net;
      vertices;
      index_of;
      inputs;
      outputs;
      graph = Digraph.create n;
      labels = Hashtbl.create (4 * n);
    }
  in
  (* Copy edges (and labels) between surviving unaffected endpoints;
     recompute around affected vertices. Dispatch between two surviving
     entries never changes (actions are immutable, the topology is
     fixed, and an entry stays in its table), so a copied edge is still
     an edge and no new edge can appear between unaffected pairs. *)
  Digraph.iter_edges
    (fun ou ov ->
      let eu = old.vertices.(ou) and ev = old.vertices.(ov) in
      match (Hashtbl.find_opt index_of eu.id, Hashtbl.find_opt index_of ev.id) with
      | Some i, Some j when (not marked.(i)) && not marked.(j) ->
          Digraph.add_edge t.graph i j;
          Hashtbl.replace t.labels (i, j) (Hashtbl.find old.labels (ou, ov))
      | _ -> ())
    old.graph;
  Array.iteri
    (fun i (e : FE.t) ->
      if marked.(i) then begin
        (* Outgoing edges of the changed vertex. *)
        List.iter
          (fun (q : FE.t) -> add_edge t i (Hashtbl.find index_of q.id))
          (candidates_from net e);
        (* Incoming edges: rules on neighbouring switches, plus earlier
           tables of the same switch (goto sources). *)
        let topo = Network.topology net in
        let entries_at ~switch ~table =
          Flow_table.entries (Network.table net ~switch ~table)
        in
        let feeders =
          List.concat_map
            (fun sw ->
              List.concat_map
                (fun tb -> entries_at ~switch:sw ~table:tb)
                (List.init (Network.n_tables net) Fun.id))
            (Topology.neighbors topo e.switch)
          @ List.concat_map
              (fun tb -> entries_at ~switch:e.switch ~table:tb)
              (List.init e.table Fun.id)
        in
        List.iter
          (fun (p : FE.t) ->
            let j = Hashtbl.find index_of p.id in
            if j <> i && leads_to net p e then add_edge t j i)
          feeders
      end)
    vertices;
  let remap =
    Array.map
      (fun (e : FE.t) ->
        match Hashtbl.find_opt index_of e.id with Some i -> i | None -> -1)
      old.vertices
  in
  let any_affected = Array.exists Fun.id marked in
  { plumbing = t; affected = marked; remap; any_affected }

(* ------------------------------------------------------------------ *)
(* Local analyses shared with the lint passes. *)

let find_cycle t = Digraph.find_cycle t.graph

let backward_space ?target t path =
  let init =
    match target with Some hs -> hs | None -> Hs.full (Network.header_len t.net)
  in
  List.fold_right
    (fun v after ->
      let r = t.vertices.(v) in
      Hs.inter t.inputs.(v) (Hs.inverse_set_field ~set:r.FE.set_field after))
    path init

let cycle_witness t cycle =
  match cycle with
  | [] -> Hs.empty (Network.header_len t.net)
  | head :: _ ->
      let round_trip = backward_space t (cycle @ [ head ]) in
      if not (Hs.is_empty round_trip) then round_trip
      else (
        match cycle with
        | a :: b :: _ -> Hs.inter t.outputs.(a) t.inputs.(b)
        | [ a ] -> Hs.inter t.outputs.(a) t.inputs.(a)
        | [] -> assert false)

let leaks t =
  let acc = ref [] in
  Array.iteri
    (fun i (r : FE.t) ->
      match r.action with
      | FE.Output _ -> (
          match Network.next_switch t.net r with
          | None -> ()
          | Some sw ->
              (* The exact fold (table lookup order, diff by raw match)
                 the historical L002 pass used: witnesses must stay
                 bit-identical across the delegation. *)
              let leaked =
                List.fold_left
                  (fun space (q : FE.t) -> Hs.diff_cube space q.match_)
                  t.outputs.(i)
                  (Flow_table.entries (Network.table t.net ~switch:sw ~table:0))
              in
              if not (Hs.is_empty leaked) then acc := (r, sw, leaked) :: !acc)
      | FE.Drop | FE.Goto_table _ -> ())
    t.vertices;
  List.rev !acc

let stats t =
  [
    ("vertices", n_vertices t);
    ("edges", Digraph.n_edges t.graph);
    ( "label_cubes",
      (* sdncheck: allow D001 — commutative int sum over all labels *)
      Hashtbl.fold (fun _ hs acc -> acc + Hs.cube_count hs) t.labels 0 );
  ]
