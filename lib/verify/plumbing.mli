(** The plumbing graph: rule-to-rule dependencies labeled with the
    header-space cubes that can flow between flow entries.

    Vertices are the network's flow entries (ascending id, like
    {!Openflow.Network.all_entries}); a directed edge [(u, v)] exists
    when [u]'s action hands the packet to [v]'s flow table (next
    switch's table 0 for an output, a later table of the same switch
    for a goto) and the hand-off space [u.out ∩ v.in] is non-empty —
    that space is the edge's {e label}. This is the paper's §V-A base
    rule graph enriched with NetPlumber-style edge labels; the
    {!Closure} worklist engine propagates header spaces over it and the
    lint passes L001/L002 read their facts straight off it (one
    reachability substrate, many clients — docs/VERIFY.md).

    The graph is immutable; {!patch} builds the graph for a mutated
    network incrementally, reusing every vertex space and edge whose
    flow tables did not change. *)

type t

val build : Openflow.Network.t -> t

val network : t -> Openflow.Network.t

val n_vertices : t -> int

val vertex_entry : t -> int -> Openflow.Flow_entry.t

val vertex_of_entry : t -> int -> int option
(** Vertex index of an entry id. *)

val input : t -> int -> Hspace.Hs.t
(** [r.in] of the vertex: its match minus higher-precedence matches of
    its own table. *)

val output : t -> int -> Hspace.Hs.t
(** [r.out = T(r.in, r.set)]. *)

val graph : t -> Sdngraph.Digraph.t

val succ : t -> int -> int list

val label : t -> int -> int -> Hspace.Hs.t
(** Hand-off space of an edge; the empty space for non-edges. *)

(** {2 Incremental patching} *)

type patch = {
  plumbing : t;  (** the graph of the mutated network *)
  affected : bool array;
      (** per new-vertex: true when the vertex sits in a changed table
          or is a newly inserted entry — exactly the vertices whose
          spaces (and incident edge labels) may differ from the old
          graph's. Edges between unaffected vertices are unchanged. *)
  remap : int array;
      (** old vertex index -> new vertex index, [-1] for deleted
          entries. *)
  any_affected : bool;
}

val patch : t -> changed_tables:(int * int) list -> patch
(** Rebuild against the (already mutated) network referenced by the
    graph. Per-vertex spaces are recomputed only for entries of changed
    [(switch, table)] pairs; edges only where an endpoint changed. The
    result is observably identical to a fresh {!build} of the mutated
    network. *)

(** {2 Local analyses} — facts read directly off the graph, shared with
    the lint passes. *)

val find_cycle : t -> int list option
(** A directed cycle of the plumbing graph, if any — the same cycle (in
    vertex order) lint's L001 historically reported, since the edge
    construction order is identical. *)

val cycle_witness : t -> int list -> Hspace.Hs.t
(** L001's witness for a cycle: the header space at the loop head
    surviving a full round trip (backward preimage); when per-edge
    compatibility does not compose into a global round trip, the first
    edge's hand-off space instead. *)

val backward_space : ?target:Hspace.Hs.t -> t -> int list -> Hspace.Hs.t
(** Headers that can be placed in front of the first vertex of a path
    so the packet traverses the whole vertex sequence (the rule graph's
    start-space computation, over plumbing vertices). [target]
    additionally constrains where the packet must land after the last
    vertex's rewrite (default: anywhere). *)

val leaks : t -> (Openflow.Flow_entry.t * int * Hspace.Hs.t) list
(** L002's blackholes: forwarding entries whose output space is not
    fully matched by the next hop's first table, with the next switch
    and the leaked space, in ascending entry order. The leaked space's
    cube list is computed by the exact table-order fold the historical
    lint pass used, so witnesses are bit-identical. *)

val stats : t -> (string * int) list
(** Vertices / edges / label cube count. *)
