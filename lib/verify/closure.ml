module Hs = Hspace.Hs
module FE = Openflow.Flow_entry

type flow = {
  entry : int;
  hs : Hs.t;
  parent : flow option;
  depth : int;
  serial : int;
}

type node = {
  mutable flows : flow list; (* reverse arrival order *)
  mutable acc : Hs.t;
}

type tally = {
  mutable cubes : int;
  mutable iterations : int;
  mutable pruned : int;
}

type state = {
  src : int;
  av : int; (* avoided switch, -1 for none *)
  mutable nodes : node array;
  mutable loop_acc : flow list; (* reverse discovery order *)
  mutable serials : int; (* next flow serial (creation rank) *)
  t : tally;
}

let next_serial st =
  let s = st.serials in
  st.serials <- s + 1;
  s

let source st = st.src

let avoid st = st.av

let tally st = st.t

let flows_at st v = List.rev st.nodes.(v).flows

let acc_at st v = st.nodes.(v).acc

let reached st =
  let acc = ref [] in
  for v = Array.length st.nodes - 1 downto 0 do
    if st.nodes.(v).flows <> [] then acc := v :: !acc
  done;
  !acc

let loops st = List.rev st.loop_acc

let path_of f =
  let rec go acc = function
    | None -> acc
    | Some g -> go (g.entry :: acc) g.parent
  in
  go [ f.entry ] f.parent

let in_provenance f id =
  let rec go = function
    | None -> false
    | Some g -> g.entry = id || go g.parent
  in
  go (Some f)

let fresh_node len = { flows = []; acc = Hs.empty len }

(* Extend flow [f] (sitting at vertex [u]) across the edge to vertex
   [w]: intersect with the edge label, rewrite through [w]'s set-field.
   A non-empty result either closes a loop (the target entry already
   occurs in [f]'s provenance — recorded, not extended), is pruned
   (subsumed by the headers already known at [w]), or becomes a new
   flow on the worklist. *)
let step plumbing st queue f u w =
  let we = Plumbing.vertex_entry plumbing w in
  if st.av < 0 || we.FE.switch <> st.av then begin
    let arriving = Hs.inter f.hs (Plumbing.label plumbing u w) in
    if not (Hs.is_empty arriving) then begin
      let hs' = Hs.apply_set_field ~set:we.FE.set_field arriving in
      let extended =
        {
          entry = we.FE.id;
          hs = hs';
          parent = Some f;
          depth = f.depth + 1;
          serial = next_serial st;
        }
      in
      if in_provenance f we.FE.id then st.loop_acc <- extended :: st.loop_acc
      else begin
        let node = st.nodes.(w) in
        if Hs.is_subset hs' node.acc then st.t.pruned <- st.t.pruned + 1
        else begin
          node.flows <- extended :: node.flows;
          node.acc <- Hs.union node.acc hs';
          st.t.cubes <- st.t.cubes + Hs.cube_count hs';
          Queue.add extended queue
        end
      end
    end
  end

let drain plumbing st queue =
  while not (Queue.is_empty queue) do
    let f = Queue.pop queue in
    st.t.iterations <- st.t.iterations + 1;
    match Plumbing.vertex_of_entry plumbing f.entry with
    | None -> () (* cannot happen: flows reference current vertices *)
    | Some u -> List.iter (fun w -> step plumbing st queue f u w) (Plumbing.succ plumbing u)
  done

let seed plumbing st queue v =
  let e = Plumbing.vertex_entry plumbing v in
  if
    e.FE.switch = st.src && e.FE.table = 0
    && (st.av < 0 || e.FE.switch <> st.av)
    && not (Hs.is_empty (Plumbing.input plumbing v))
  then begin
    let f =
      {
        entry = e.FE.id;
        hs = Plumbing.output plumbing v;
        parent = None;
        depth = 1;
        serial = next_serial st;
      }
    in
    let node = st.nodes.(v) in
    if not (Hs.is_subset f.hs node.acc) then begin
      node.flows <- f :: node.flows;
      node.acc <- Hs.union node.acc f.hs;
      st.t.cubes <- st.t.cubes + Hs.cube_count f.hs;
      Queue.add f queue
    end
  end

let compute plumbing ~source ?(avoid = -1) () =
  let len = Openflow.Network.header_len (Plumbing.network plumbing) in
  let n = Plumbing.n_vertices plumbing in
  let st =
    {
      src = source;
      av = avoid;
      nodes = Array.init n (fun _ -> fresh_node len);
      loop_acc = [];
      serials = 0;
      t = { cubes = 0; iterations = 0; pruned = 0 };
    }
  in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    seed plumbing st queue v
  done;
  drain plumbing st queue;
  st

(* ------------------------------------------------------------------ *)
(* Change-driven incremental re-propagation (NetPlumber's update
   discipline).

   A flow is a derivation: its provenance chain names the vertices it
   traversed, and its header set was built from the edge labels and
   set-fields along exactly that chain. The patch's [affected] set is
   precisely the vertices whose spaces or incident edge labels may
   differ from the old graph's, so a flow stays a valid derivation iff
   every entry on its chain still resolves to a current, unaffected
   vertex. Everything else is deleted; per-vertex unions are rebuilt
   where a deletion landed ("damaged" vertices); and the worklist is
   re-primed with exactly the constraints the edit could have broken —
   injection seeds at affected vertices, plus every surviving flow one
   edge upstream of an affected or damaged vertex. Subsumption against
   the surviving unions then kills the wavefront as soon as it stops
   adding coverage, so the cost tracks the semantic size of the edit,
   not the topological size of its descendant cone (the bench's
   [verify.edit] entries gate this).

   Loop records whose path touches an affected or deleted vertex are
   dropped; re-propagation rediscovers any that still close (duplicates
   of surviving records are possible — so they are from scratch — and
   deduplicated by the engine's canonical cycle key). *)

(* Validity memoized by flow serial: provenance chains are shared by
   every flow they were extended into, so the total filter cost is one
   check per live flow, not per (flow × depth). *)
let flow_validator plumbing (patch : Plumbing.patch) =
  let memo = Hashtbl.create 256 in
  let entry_ok id =
    match Plumbing.vertex_of_entry plumbing id with
    | Some v -> not patch.affected.(v)
    | None -> false
  in
  let rec valid f =
    match Hashtbl.find_opt memo f.serial with
    | Some v -> v
    | None ->
        let v =
          entry_ok f.entry
          && (match f.parent with None -> true | Some g -> valid g)
        in
        Hashtbl.add memo f.serial v;
        v
  in
  valid

let update plumbing (patch : Plumbing.patch) st =
  let len = Openflow.Network.header_len (Plumbing.network plumbing) in
  let n = Plumbing.n_vertices plumbing in
  let old_nodes = st.nodes in
  let back = Array.make n (-1) in
  Array.iteri (fun ov nv -> if nv >= 0 then back.(nv) <- ov) patch.remap;
  (* Every prefix of a stored flow's chain is itself a stored flow
     (only stored flows are ever extended), so the state holds an
     invalid flow iff some affected vertex, or some deleted old vertex,
     holds flows. When none does, the whole validity filter — the
     dominant cost for states far from the edit — is skipped. *)
  let has_invalid =
    (let found = ref false in
     for nv = 0 to n - 1 do
       if patch.affected.(nv) && back.(nv) >= 0 && old_nodes.(back.(nv)).flows <> []
       then found := true
     done;
     Array.iteri
       (fun ov nv -> if nv < 0 && old_nodes.(ov).flows <> [] then found := true)
       patch.remap;
     !found)
  in
  let touched = ref has_invalid in
  let damaged = Array.make n false in
  if not has_invalid then
    st.nodes <-
      Array.init n (fun nv ->
          if back.(nv) < 0 then fresh_node len else old_nodes.(back.(nv)))
  else begin
    let flow_valid = flow_validator plumbing patch in
    let kept_loops = List.filter flow_valid st.loop_acc in
    st.loop_acc <- kept_loops;
    st.nodes <-
      Array.init n (fun nv ->
          if back.(nv) < 0 then fresh_node len
          else begin
            let node = old_nodes.(back.(nv)) in
            let kept = List.filter flow_valid node.flows in
            if List.compare_lengths kept node.flows <> 0 then begin
              damaged.(nv) <- true;
              node.flows <- kept;
              node.acc <-
                List.fold_left (fun acc f -> Hs.union acc f.hs) (Hs.empty len) kept
            end;
            node
          end)
  end;
  let queue = Queue.create () in
  (* Injections at affected vertices (an affected vertex kept no flows —
     its own entry is the tail of each of its chains — so nothing here
     is pruned by stale coverage). *)
  for v = 0 to n - 1 do
    if patch.affected.(v) then seed plumbing st queue v
  done;
  (* Surviving flows one edge upstream of the affected or damaged
     region: the only edges whose constraint [step(acc u) ⊆ acc w] the
     edit can have invalidated — by changing the label, or by shrinking
     the coverage at [w] below what subsumption once credited. *)
  let graph = Plumbing.graph plumbing in
  for w = 0 to n - 1 do
    if patch.affected.(w) || damaged.(w) then
      List.iter
        (fun u ->
          let node = st.nodes.(u) in
          if node.flows <> [] then
            List.iter (fun f -> step plumbing st queue f u w) (List.rev node.flows))
        (Sdngraph.Digraph.pred graph w)
  done;
  if Queue.is_empty queue && not !touched then `Hit
  else begin
    drain plumbing st queue;
    `Recomputed
  end
