(** Worklist dataflow over the plumbing graph: the symbolic
    reachability closure of one injection source.

    A {!state} answers "which header spaces, injected at switch
    [source]'s table 0, can reach which flow entries, and along which
    rule paths?". Flows are propagated edge by edge ([arriving = hs ∩
    label], then the target's set-field rewrite), pruned when subsumed
    by the headers already known to reach a vertex, and carry a
    provenance chain so every reached space can be expanded back into a
    concrete (header, entry-id path) counterexample witness. A flow
    whose next vertex already occurs in its own provenance closes a
    forwarding loop; it is recorded in {!loops} and not extended, which
    also bounds every provenance chain by the vertex count.

    Pruning drops a flow only when its space is contained in the union
    of spaces already at the vertex, so the per-vertex {e reachable
    header sets} and the {e set of reached vertices} are exact; the
    surviving flow (path) list is a representative subset. The
    [avoid >= 0] variant skips every vertex of one switch — the
    path-sensitive query behind waypoint checking.

    {!update} re-propagates a state incrementally after a
    {!Plumbing.patch}: only flows whose provenance chain passes through
    an affected (changed-table or inserted) or deleted vertex are
    discarded — everything else is still a valid derivation, because
    edges between unaffected vertices are unchanged — and the worklist
    is re-primed from injection seeds at affected vertices plus the
    surviving flows one edge upstream of the affected/damaged region.
    The resulting reachable sets equal a from-scratch {!compute}'s;
    flow-list order may differ (docs/VERIFY.md). *)

type flow = {
  entry : int;  (** entry id (stable across incremental patches) *)
  hs : Hspace.Hs.t;  (** headers at this vertex's output, along this path *)
  parent : flow option;  (** provenance; [None] = injected at table 0 *)
  depth : int;  (** path length in rules *)
  serial : int;
      (** per-state creation rank — deterministic, and unique within
          the state; {!update} keys its chain-validity memo on it *)
}

type state

type tally = {
  mutable cubes : int;  (** cubes propagated into node states *)
  mutable iterations : int;  (** worklist pops *)
  mutable pruned : int;  (** flows dropped by subsumption *)
}

val compute : Plumbing.t -> source:int -> ?avoid:int -> unit -> state
(** Full propagation from every table-0 entry of [source] with a
    non-empty input space. [avoid] (a switch index) skips that switch's
    vertices entirely. *)

val update : Plumbing.t -> Plumbing.patch -> state -> [ `Hit | `Recomputed ]
(** Delta re-propagation after [patch] (whose [plumbing] must be the
    first argument). [`Hit] means nothing changed: no flow was deleted
    and none was added — the state was only re-indexed. Stale loop
    records (paths touching affected or deleted vertices) are dropped
    and rediscovered by the re-propagation. *)

val source : state -> int

val avoid : state -> int
(** The avoided switch, [-1] for none. *)

val tally : state -> tally

val flows_at : state -> int -> flow list
(** Flows at a vertex (current plumbing indices), in arrival order. *)

val acc_at : state -> int -> Hspace.Hs.t
(** Union of all spaces that arrived at the vertex (exact reachable
    header set at its output). *)

val reached : state -> int list
(** Vertices with at least one flow, ascending. *)

val loops : state -> flow list
(** Loop-closing flows, in discovery order: [flow.entry] occurs again
    in the provenance chain. *)

val path_of : flow -> int list
(** Entry ids from injection to the flow's vertex, in traversal
    order. *)
