module Json = Sdn_util.Json

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type violation = {
  invariant : Invariant.t;
  severity : severity;
  message : string;
  witness : Witness.t;
  kind : Witness.kind;
  certificate : Witness.certificate;
}

type status = Holds | Violated of violation list

type t = {
  results : (Invariant.t * status) list;
  metrics : (string * int) list;
  timings : (string * float) list;
}

let violations t =
  List.concat_map
    (fun (_, st) -> match st with Holds -> [] | Violated vs -> vs)
    t.results

let ok t = violations t = []

let count t sev = List.length (List.filter (fun v -> v.severity = sev) (violations t))

let worst t =
  if count t Error > 0 then Some Error
  else if count t Warning > 0 then Some Warning
  else None

type fail_on = Fail_never | Fail_error | Fail_warning

let exit_code ~fail_on t =
  match (worst t, fail_on) with
  | Some Error, (Fail_error | Fail_warning) -> 2
  | Some Warning, Fail_warning -> 1
  | _ -> 0

let pp_witness fmt (w : Witness.t) =
  (match w.rules with
  | [] -> Format.pp_print_string fmt "(no path)"
  | rules ->
      Format.fprintf fmt "path [%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           Format.pp_print_int)
        rules);
  match w.header with
  | Some h -> Format.fprintf fmt " header %s" (Hspace.Header.to_string h)
  | None -> ()

let pp_text fmt t =
  List.iter
    (fun (inv, st) ->
      match st with
      | Holds -> Format.fprintf fmt "ok    %a@." Invariant.pp inv
      | Violated vs ->
          List.iter
            (fun v ->
              Format.fprintf fmt "%-7s %a: %s@;<1 8>witness %a (certificate: %s)@."
                (severity_to_string v.severity)
                Invariant.pp inv v.message pp_witness v.witness
                (Witness.certificate_name v.certificate))
            vs)
    t.results;
  List.iter (fun (k, n) -> Format.fprintf fmt "# %s = %d@." k n) t.metrics;
  let e = count t Error and w = count t Warning in
  Format.fprintf fmt "%d invariant%s checked: %d error%s, %d warning%s@."
    (List.length t.results)
    (if List.length t.results = 1 then "" else "s")
    e
    (if e = 1 then "" else "s")
    w
    (if w = 1 then "" else "s")

let witness_json (w : Witness.t) =
  Json.Obj
    [
      ("rules", Json.List (List.map (fun id -> Json.Int id) w.rules));
      ( "header",
        match w.header with
        | Some h -> Json.Str (Hspace.Header.to_string h)
        | None -> Json.Null );
    ]

let violation_json v =
  Json.Obj
    [
      ("severity", Json.Str (severity_to_string v.severity));
      ("message", Json.Str v.message);
      ("kind", Json.Str (Format.asprintf "%a" Witness.pp_kind v.kind));
      ("witness", witness_json v.witness);
      ("certificate", Json.Str (Witness.certificate_name v.certificate));
    ]

let to_json ?(timings = false) t =
  let results =
    List.map
      (fun (inv, st) ->
        Json.Obj
          [
            ("invariant", Json.Str (Invariant.to_string inv));
            ( "status",
              Json.Str (match st with Holds -> "holds" | Violated _ -> "violated") );
            ( "violations",
              Json.List
                (match st with
                | Holds -> []
                | Violated vs -> List.map violation_json vs) );
          ])
      t.results
  in
  let fields =
    [
      ("schema_version", Json.Int 1);
      ("results", Json.List results);
      ( "summary",
        Json.Obj
          [
            ("checked", Json.Int (List.length t.results));
            ("errors", Json.Int (count t Error));
            ("warnings", Json.Int (count t Warning));
          ] );
      ("metrics", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) t.metrics));
    ]
  in
  let fields =
    if timings then
      fields
      @ [
          ( "timings",
            Json.Obj (List.map (fun (k, s) -> (k, Json.Float s)) t.timings) );
        ]
    else fields
  in
  Json.to_string (Json.Obj fields)
