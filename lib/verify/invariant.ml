type t =
  | Reach of int * int
  | Isolated of int * int
  | Loop_free
  | No_blackhole
  | Waypoint of int * int * int

let equal a b = a = b

let compare = Stdlib.compare

let to_string = function
  | Reach (a, b) -> Printf.sprintf "reach %d %d" a b
  | Isolated (a, b) -> Printf.sprintf "isolated %d %d" a b
  | Loop_free -> "loop-free"
  | No_blackhole -> "no-blackhole"
  | Waypoint (a, w, b) -> Printf.sprintf "waypoint %d %d %d" a w b

let pp fmt t = Format.pp_print_string fmt (to_string t)

let of_string s =
  let tokens =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun tok -> tok <> "")
  in
  let int_arg name tok k =
    match int_of_string_opt tok with
    | Some n when n >= 0 -> k n
    | _ -> Error (Printf.sprintf "%s: switch argument %S is not a non-negative integer" name tok)
  in
  match tokens with
  | [ "loop-free" ] -> Ok Loop_free
  | [ "no-blackhole" ] -> Ok No_blackhole
  | [ "reach"; a; b ] ->
      int_arg "reach" a (fun a -> int_arg "reach" b (fun b -> Ok (Reach (a, b))))
  | [ "isolated"; a; b ] ->
      int_arg "isolated" a (fun a ->
          int_arg "isolated" b (fun b -> Ok (Isolated (a, b))))
  | [ "waypoint"; a; w; b ] ->
      int_arg "waypoint" a (fun a ->
          int_arg "waypoint" w (fun w ->
              int_arg "waypoint" b (fun b -> Ok (Waypoint (a, w, b)))))
  | kw :: _ ->
      Error
        (Printf.sprintf
           "unknown invariant %S (expected reach A B | isolated A B | \
            loop-free | no-blackhole | waypoint A W B)"
           kw)
  | [] -> Error "empty invariant"

let parse_spec text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        if String.trim line = "" then go (lineno + 1) acc rest
        else
          match of_string line with
          | Ok inv -> go (lineno + 1) (inv :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] lines

let validate ~n_switches t =
  let check name sw =
    if sw >= 0 && sw < n_switches then Ok ()
    else
      Error
        (Printf.sprintf "%s: switch %d out of range (network has %d switches)"
           name sw n_switches)
  in
  let ( let* ) = Result.bind in
  match t with
  | Loop_free | No_blackhole -> Ok ()
  | Reach (a, b) ->
      let* () = check "reach" a in
      check "reach" b
  | Isolated (a, b) ->
      let* () = check "isolated" a in
      check "isolated" b
  | Waypoint (a, w, b) ->
      let* () = check "waypoint" a in
      let* () = check "waypoint" w in
      check "waypoint" b
