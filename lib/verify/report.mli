(** The verifier's report: per-invariant verdicts with certified
    counterexamples, plus the engine's deterministic work counters.

    Mirrors the lint engine's report/exit-code contract ([sdnprobe
    verify] and [sdnprobe lint] compose the same way in CI), with one
    addition: every violation embeds its witness and the certificate
    that re-established it. The JSON rendering is deterministic — work
    counters are propagation tallies, not clocks — so reports are
    byte-comparable across runs and domain counts; wall-clock timings
    are opt-in ({!to_json}'s [timings] flag) and live under a separate
    key. *)

type severity = Error | Warning

val severity_to_string : severity -> string

type violation = {
  invariant : Invariant.t;
  severity : severity;
  message : string;  (** human-readable, self-contained *)
  witness : Witness.t;
  kind : Witness.kind;
  certificate : Witness.certificate;
}

type status =
  | Holds
  | Violated of violation list  (** non-empty, emission order *)

type t = {
  results : (Invariant.t * status) list;  (** in the order checked *)
  metrics : (string * int) list;
      (** deterministic work counters (cubes propagated, worklist
          iterations, states computed / updated / cache hits, plumbing
          size) *)
  timings : (string * float) list;  (** (phase, seconds); excluded from canonical JSON *)
}

val ok : t -> bool

val violations : t -> violation list

val count : t -> severity -> int

val worst : t -> severity option

type fail_on = Fail_never | Fail_error | Fail_warning

val exit_code : fail_on:fail_on -> t -> int
(** Same protocol as [Lint.Engine.exit_code]: [2] when an [Error]
    violation is present (unless [Fail_never]), [1] when the worst is a
    [Warning] and [fail_on] is [Fail_warning], [0] otherwise. *)

val pp_text : Format.formatter -> t -> unit
(** Per-invariant verdict lines with witnesses, then a metrics and
    summary block. *)

val to_json : ?timings:bool -> t -> string
(** One JSON object: [{"schema_version": 1, "results": [...],
    "summary": {...}, "metrics": {...}}] (plus ["timings"] when
    requested). Deterministic unless [timings] is set. *)
