module Hs = Hspace.Hs
module Header = Hspace.Header
module FE = Openflow.Flow_entry
module Network = Openflow.Network
module Pool = Sdn_parallel.Pool

exception Uncertified of string

(* Process-wide counters (docs/METRICS.md); bumped on the main domain
   only, after parallel joins. *)
let c_states = Metrics.Counter.create "verify.states.computed"
let c_updates = Metrics.Counter.create "verify.states.updated"
let c_hits = Metrics.Counter.create "verify.states.cache_hits"
let c_cubes = Metrics.Counter.create "verify.closure.cubes"
let c_iters = Metrics.Counter.create "verify.closure.iterations"
let c_pruned = Metrics.Counter.create "verify.closure.pruned"

type t = {
  mutable plumbing : Plumbing.t;
  pool : Pool.t option;
  states : (int * int, Closure.state) Hashtbl.t;
      (* (source, avoided switch or -1) -> closure state *)
  leak_cache : (int, (int * Hs.t) option) Hashtbl.t;
      (* entry id -> Some (next switch, leaked space) | None = checked clean *)
  timing : Metrics.Timing.t;
  mutable computed : int;
  mutable updated : int;
  mutable hits : int;
}

let create ?pool net =
  let timing = Metrics.Timing.create () in
  let plumbing = Metrics.Timing.time timing "plumbing" (fun () -> Plumbing.build net) in
  {
    plumbing;
    pool;
    states = Hashtbl.create 16;
    leak_cache = Hashtbl.create 64;
    timing;
    computed = 0;
    updated = 0;
    hits = 0;
  }

let network t = Plumbing.network t.plumbing

let plumbing t = t.plumbing

let states_cached t = Hashtbl.length t.states

let default_invariants = [ Invariant.Loop_free; Invariant.No_blackhole ]

let bump_tally (d : Closure.tally) =
  Metrics.Counter.add c_cubes d.cubes;
  Metrics.Counter.add c_iters d.iterations;
  Metrics.Counter.add c_pruned d.pruned

(* Compute the closure states for the missing (source, avoid) keys —
   one parallel map with an input-order join, so the cache contents
   (and everything derived from them) are identical at any domain
   count. *)
let ensure_states t keys =
  let missing =
    List.sort_uniq compare keys
    |> List.filter (fun k -> not (Hashtbl.mem t.states k))
  in
  if missing <> [] then begin
    let compute (source, avoid) =
      Closure.compute t.plumbing ~source ~avoid ()
    in
    let fresh =
      Metrics.Timing.time t.timing "closure" (fun () ->
          match t.pool with
          | Some pool -> Pool.map_list pool compute missing
          | None -> List.map compute missing)
    in
    List.iter2
      (fun key st ->
        Hashtbl.replace t.states key st;
        t.computed <- t.computed + 1;
        Metrics.Counter.incr c_states;
        bump_tally (Closure.tally st))
      missing fresh
  end

let state t ~source ?(avoid = -1) () =
  ensure_states t [ (source, avoid) ];
  Hashtbl.find t.states (source, avoid)

let sorted_keys t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.states [])

(* ------------------------------------------------------------------ *)
(* Witness construction: paths come from flow provenance chains, the
   injected header from the path's backward preimage (optionally
   constrained to land in a target space at the end). *)

let vertex_path t path_ids =
  List.map
    (fun id ->
      match Plumbing.vertex_of_entry t.plumbing id with
      | Some v -> v
      | None -> raise (Uncertified (Printf.sprintf "path references unknown entry %d" id)))
    path_ids

let header_for t ?target path_ids =
  let start = Plumbing.backward_space ?target t.plumbing (vertex_path t path_ids) in
  Option.map Header.of_cube (Hs.first_member start)

(* Canonical flow choice: minimal (depth, vertex index, arrival rank) —
   deterministic and patch-independent enough for stable reports. *)
let best_flow t st ~at_switch ~overlap =
  let best = ref None in
  let n = Plumbing.n_vertices t.plumbing in
  for v = 0 to n - 1 do
    if (Plumbing.vertex_entry t.plumbing v).FE.switch = at_switch then
      List.iteri
        (fun rank (f : Closure.flow) ->
          if
            (match overlap with
            | None -> true
            | Some hs -> not (Hs.is_empty (Hs.inter f.hs hs)))
            && (match !best with
               | None -> true
               | Some (d, bv, br, _) -> (f.depth, v, rank) < (d, bv, br))
          then best := Some (f.depth, v, rank, f))
        (Closure.flows_at st v)
  done;
  Option.map (fun (_, _, _, f) -> f) !best

let deepest_flow t st =
  let best = ref None in
  let n = Plumbing.n_vertices t.plumbing in
  for v = 0 to n - 1 do
    List.iteri
      (fun rank (f : Closure.flow) ->
        if
          (match !best with
          | None -> true
          | Some (d, bv, br, _) -> (-f.depth, v, rank) < (-d, bv, br))
        then best := Some (f.depth, v, rank, f))
      (Closure.flows_at st v)
  done;
  Option.map (fun (_, _, _, f) -> f) !best

let certified t kind (w : Witness.t) =
  match Witness.certify (network t) kind w with
  | Ok cert -> cert
  | Error msg ->
      raise
        (Uncertified
           (Format.asprintf "%a: %s (path [%a])" Witness.pp_kind kind msg
              (Format.pp_print_list
                 ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
                 Format.pp_print_int)
              w.rules))

let violation t inv severity kind witness message =
  let certificate = certified t kind witness in
  { Report.invariant = inv; severity; message; witness; kind; certificate }

let pp_ids fmt ids =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
    Format.pp_print_int fmt ids

(* ------------------------------------------------------------------ *)
(* Per-invariant evaluation. *)

let eval_reach t inv a b =
  let st = state t ~source:a () in
  match best_flow t st ~at_switch:b ~overlap:None with
  | Some _ -> Report.Holds
  | None ->
      let v =
        match deepest_flow t st with
        | None ->
            violation t inv Report.Error (Witness.Vacuous_source { src = a })
              { Witness.rules = []; header = None }
              (Printf.sprintf
                 "no packet is injectable at sw%d: every table-0 entry has an empty \
                  input space"
                 a)
        | Some f ->
            let rules = Closure.path_of f in
            let header = header_for t rules in
            violation t inv Report.Error (Witness.Deepest_path { src = a })
              { Witness.rules; header }
              (Format.asprintf
                 "no packet injected at sw%d reaches sw%d (deepest exploration: %d \
                  rule%s, entries %a)"
                 a b f.Closure.depth
                 (if f.Closure.depth = 1 then "" else "s")
                 pp_ids rules)
      in
      Report.Violated [ v ]

let eval_isolated t inv a b =
  let st = state t ~source:a () in
  match best_flow t st ~at_switch:b ~overlap:None with
  | None -> Report.Holds
  | Some f ->
      let rules = Closure.path_of f in
      let header = header_for t rules in
      let v =
        violation t inv Report.Error (Witness.Path_reaches { src = a; dst = b })
          { Witness.rules; header }
          (Format.asprintf "a packet injected at sw%d reaches sw%d via entries %a" a b
             pp_ids rules)
      in
      Report.Violated [ v ]

let eval_waypoint t inv a w b =
  if w = a || w = b then Report.Holds
  else
    let st = state t ~source:a ~avoid:w () in
    match best_flow t st ~at_switch:b ~overlap:None with
    | None -> Report.Holds
    | Some f ->
        let rules = Closure.path_of f in
        let header = header_for t rules in
        let v =
          violation t inv Report.Error
            (Witness.Path_avoids { src = a; waypoint = w; dst = b })
            { Witness.rules; header }
            (Format.asprintf
               "a packet injected at sw%d reaches sw%d without traversing sw%d \
                (entries %a)"
               a b w pp_ids rules)
        in
        Report.Violated [ v ]

(* Canonical cycle key: the lexicographically-least rotation of the
   entry-id cycle, so the same loop found from different sources (or
   unrolled at a different entry) is reported once. *)
let cycle_key ids =
  let n = List.length ids in
  let arr = Array.of_list ids in
  let rotation i = List.init n (fun j -> arr.((i + j) mod n)) in
  let best = ref (rotation 0) in
  for i = 1 to n - 1 do
    let r = rotation i in
    if r < !best then best := r
  done;
  !best

(* The cycle segment of a loop-closing flow's path: the last entry
   repeats an earlier one; the cycle is everything from that first
   occurrence up to (excluding) the repeat. *)
let cycle_of_path path =
  let closing = List.nth path (List.length path - 1) in
  let rec from = function
    | [] -> []
    | x :: rest -> if x = closing then x :: rest else from rest
  in
  match from path with
  | [] -> []
  | _ :: _ as tail -> List.filteri (fun i _ -> i < List.length tail - 1) tail

let eval_loop_free t inv =
  let net = network t in
  let n_sw = Network.n_switches net in
  ensure_states t (List.init n_sw (fun s -> (s, -1)));
  let seen = Hashtbl.create 8 in
  let vs = ref [] in
  for s = 0 to n_sw - 1 do
    let st = Hashtbl.find t.states (s, -1) in
    List.iter
      (fun (f : Closure.flow) ->
        let path = Closure.path_of f in
        let cycle = cycle_of_path path in
        let key = cycle_key cycle in
        if cycle <> [] && not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          let header = header_for t path in
          let switches =
            List.sort_uniq Int.compare
              (List.map (fun id -> (Network.entry net id).FE.switch) cycle)
          in
          let v =
            violation t inv Report.Error Witness.Loop_unrolled
              { Witness.rules = path; header }
              (Format.asprintf
                 "a packet injected at sw%d loops through entries %a (switches %a)" s
                 pp_ids cycle pp_ids switches)
          in
          vs := v :: !vs
        end)
      (Closure.loops st)
  done;
  (* A structural cycle no injectable packet drives is still a
     violation (L001 semantics): certify edge feasibility instead. *)
  (match Plumbing.find_cycle t.plumbing with
  | None -> ()
  | Some cycle_vs ->
      let cycle = List.map (fun v -> (Plumbing.vertex_entry t.plumbing v).FE.id) cycle_vs in
      let key = cycle_key cycle in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let switches =
          List.sort_uniq Int.compare
            (List.map (fun id -> (Network.entry net id).FE.switch) cycle)
        in
        let v =
          violation t inv Report.Error Witness.Structural_cycle
            { Witness.rules = cycle; header = None }
            (Format.asprintf
               "structural forwarding loop through entries %a (switches %a); no \
                injectable packet drives it"
               pp_ids cycle pp_ids switches)
        in
        vs := v :: !vs
      end);
  match List.rev !vs with [] -> Report.Holds | vs -> Report.Violated vs

(* Blackhole facts are cached per entry id and invalidated by edits
   (the entry's own table, or its next hop's table 0), so re-checks
   after an edit only recompute the affected diffs. *)
let leak_of t (r : FE.t) =
  match Hashtbl.find_opt t.leak_cache r.FE.id with
  | Some cached -> cached
  | None ->
      let net = network t in
      let fresh =
        match r.FE.action with
        | FE.Output _ -> (
            match Network.next_switch net r with
            | None -> None
            | Some sw ->
                let leaked =
                  List.fold_left
                    (fun space (q : FE.t) -> Hs.diff_cube space q.FE.match_)
                    (Network.output_space net r)
                    (Openflow.Flow_table.entries (Network.table net ~switch:sw ~table:0))
                in
                if Hs.is_empty leaked then None else Some (sw, leaked))
        | FE.Drop | FE.Goto_table _ -> None
      in
      Hashtbl.replace t.leak_cache r.FE.id fresh;
      fresh

let eval_no_blackhole t inv =
  let n = Plumbing.n_vertices t.plumbing in
  (* Witnesses need the leaking rules' own switches as sources. *)
  let leaking = ref [] in
  for v = n - 1 downto 0 do
    let r = Plumbing.vertex_entry t.plumbing v in
    match leak_of t r with
    | Some (sw, leaked) -> leaking := (v, r, sw, leaked) :: !leaking
    | None -> ()
  done;
  ensure_states t (List.map (fun (_, (r : FE.t), _, _) -> (r.FE.switch, -1)) !leaking);
  let vs =
    List.map
      (fun (v, (r : FE.t), sw, leaked) ->
        let st = Hashtbl.find t.states (r.FE.switch, -1) in
        let reaching =
          List.find_opt
            (fun (f : Closure.flow) -> not (Hs.is_empty (Hs.inter f.Closure.hs leaked)))
            (Closure.flows_at st v)
        in
        let message =
          Format.asprintf
            "entry %d (sw%d, prio %d) forwards %a to sw%d, where no entry matches it"
            r.FE.id r.FE.switch r.FE.priority Hs.pp leaked sw
        in
        match reaching with
        | Some f ->
            let rules = Closure.path_of f in
            let target = Hs.inter f.Closure.hs leaked in
            let header = header_for t ~target rules in
            violation t inv Report.Warning
              (Witness.Leak { rule = r.FE.id; next_switch = sw })
              { Witness.rules; header } message
        | None ->
            violation t inv Report.Warning
              (Witness.Leak_unexercised { rule = r.FE.id; next_switch = sw })
              { Witness.rules = [ r.FE.id ]; header = None }
              (message ^ " (no injection exercises the leak)"))
      !leaking
  in
  match vs with [] -> Report.Holds | vs -> Report.Violated vs

(* ------------------------------------------------------------------ *)

let metrics t =
  let keys = sorted_keys t in
  let sum f =
    List.fold_left (fun acc k -> acc + f (Closure.tally (Hashtbl.find t.states k))) 0 keys
  in
  Plumbing.stats t.plumbing
  @ [
      ("states_cached", List.length keys);
      ("states_computed", t.computed);
      ("states_updated", t.updated);
      ("state_cache_hits", t.hits);
      ("cubes_propagated", sum (fun (d : Closure.tally) -> d.cubes));
      ("worklist_iterations", sum (fun (d : Closure.tally) -> d.iterations));
      ("flows_pruned", sum (fun (d : Closure.tally) -> d.pruned));
    ]

let check t invs =
  let net = network t in
  List.iter
    (fun inv ->
      match Invariant.validate ~n_switches:(Network.n_switches net) inv with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Verify.Engine.check: " ^ msg))
    invs;
  (* Pre-compute every state the invariants will need in one parallel
     batch (blackhole sources are discovered during evaluation and
     filled in lazily — they are per-switch states too, so a later
     check reuses them). *)
  let keys =
    List.concat_map
      (function
        | Invariant.Reach (a, _) | Invariant.Isolated (a, _) -> [ (a, -1) ]
        | Invariant.Waypoint (a, w, b) -> if w = a || w = b then [] else [ (a, w) ]
        | Invariant.Loop_free ->
            List.init (Network.n_switches net) (fun s -> (s, -1))
        | Invariant.No_blackhole -> [])
      invs
  in
  ensure_states t keys;
  let results =
    Metrics.Timing.time t.timing "invariants" (fun () ->
        List.map
          (fun inv ->
            let status =
              match inv with
              | Invariant.Reach (a, b) -> eval_reach t inv a b
              | Invariant.Isolated (a, b) -> eval_isolated t inv a b
              | Invariant.Waypoint (a, w, b) -> eval_waypoint t inv a w b
              | Invariant.Loop_free -> eval_loop_free t inv
              | Invariant.No_blackhole -> eval_no_blackhole t inv
            in
            (inv, status))
          invs)
  in
  { Report.results; metrics = metrics t; timings = Metrics.Timing.timings t.timing }

let update t ~changed_tables =
  let old_plumbing = t.plumbing in
  let patch =
    Metrics.Timing.time t.timing "patch" (fun () ->
        Plumbing.patch t.plumbing ~changed_tables)
  in
  t.plumbing <- patch.Plumbing.plumbing;
  let keys = sorted_keys t in
  let snapshot k =
    let d = Closure.tally (Hashtbl.find t.states k) in
    (d.Closure.cubes, d.Closure.iterations, d.Closure.pruned)
  in
  let before = List.map snapshot keys in
  let outcomes =
    Metrics.Timing.time t.timing "repropagate" (fun () ->
        let run k = Closure.update patch.Plumbing.plumbing patch (Hashtbl.find t.states k) in
        match t.pool with
        | Some pool -> Pool.map_list pool run keys
        | None -> List.map run keys)
  in
  List.iteri
    (fun i outcome ->
      let k = List.nth keys i in
      let c0, i0, p0 = List.nth before i in
      let d = Closure.tally (Hashtbl.find t.states k) in
      Metrics.Counter.add c_cubes (d.Closure.cubes - c0);
      Metrics.Counter.add c_iters (d.Closure.iterations - i0);
      Metrics.Counter.add c_pruned (d.Closure.pruned - p0);
      match outcome with
      | `Hit ->
          t.hits <- t.hits + 1;
          Metrics.Counter.incr c_hits
      | `Recomputed ->
          t.updated <- t.updated + 1;
          Metrics.Counter.incr c_updates)
    outcomes;
  (* Invalidate blackhole facts the edit can actually have changed. A
     leak fold reads the entry's output space and the raw matches of
     its next hop's table 0, so a cached fact goes stale only when the
     entry is gone, its own spaces changed (patch-affected), or a match
     was added to / removed from its next-hop table AND that match
     overlaps the entry's output — a disjoint match leaves every
     intermediate space of the fold bit-identical. *)
  let net = network t in
  (* Per edited table 0: the matches that differ between the old and
     new entry sets (entries are immutable, so the id symmetric
     difference is exactly the match difference). *)
  let match_delta = Hashtbl.create 4 in
  List.iter
    (fun (sw, tb) ->
      if tb = 0 && not (Hashtbl.mem match_delta sw) then begin
        let old_ids = Hashtbl.create 16 in
        for v = 0 to Plumbing.n_vertices old_plumbing - 1 do
          let e = Plumbing.vertex_entry old_plumbing v in
          if e.FE.switch = sw && e.FE.table = 0 then
            Hashtbl.replace old_ids e.FE.id e.FE.match_
        done;
        let delta = ref [] in
        List.iter
          (fun (e : FE.t) ->
            if Hashtbl.mem old_ids e.FE.id then Hashtbl.remove old_ids e.FE.id
            else delta := e.FE.match_ :: !delta)
          (Openflow.Flow_table.entries (Network.table net ~switch:sw ~table:0));
        (* sdncheck: allow D001 — delta is consumed as an existential
           set (any-overlap test below); element order is immaterial *)
        Hashtbl.iter (fun _ m -> delta := m :: !delta) old_ids;
        Hashtbl.replace match_delta sw !delta
      end)
    changed_tables;
  let output_overlaps_delta (e : FE.t) sw =
    match Hashtbl.find_opt match_delta sw with
    | None -> false
    | Some delta ->
        let out =
          match Plumbing.vertex_of_entry t.plumbing e.FE.id with
          | Some v -> Plumbing.output t.plumbing v
          | None -> Network.output_space net e
        in
        List.exists (fun m -> not (Hs.is_empty (Hs.inter_cube out m))) delta
  in
  let stale =
    (* sdncheck: allow D001 — every stale id is evicted below; the
       eviction set is order-free *)
    Hashtbl.fold
      (fun id _ acc ->
        match Network.find_entry net id with
        | None -> id :: acc
        | Some e ->
            let affected =
              match Plumbing.vertex_of_entry t.plumbing id with
              | Some v -> patch.Plumbing.affected.(v)
              | None -> true
            in
            if
              affected
              || (match Network.next_switch net e with
                 | Some sw -> output_overlaps_delta e sw
                 | None -> false)
            then id :: acc
            else acc)
      t.leak_cache []
  in
  List.iter (Hashtbl.remove t.leak_cache) stale
