(** The planning session: the whole test-packet generation pipeline
    (rule graph → MLPC cover → header assignment → probes, Figure 2)
    held open as a value, so flow-table churn re-plans {e incrementally}
    instead of from scratch (§VIII-C: "SDNProbe can update the rule
    graph incrementally to reduce overhead").

    A session owns the network, its rule graph, the current plan and a
    header-speculation memo. {!apply} pushes one batch of edits through
    all four stages — {!Rulegraph.Rule_graph.update} for the graph, a
    warm-cache cover re-solve, a memoized header assignment — and
    returns the new session plus a {!Sdnprobe.Plan.patch} describing
    exactly how the probe plan changed.

    {b Determinism contract.} Every stage of the incremental path is
    canonical: after any sequence of {!apply} calls, [plan] is
    byte-identical to [Pipeline.create] on the mutated network — same
    cover, same headers, same probes, same certificate — for any domain
    count. The only things allowed to differ are wall-clock fields
    ([generation_s]) and cache hit/miss tallies.

    Sessions plan with SDNProbe's static scheme ([Mlpc.Headers.Sat_unique]
    over the minimum cover). Randomized SDNProbe re-draws per detection
    cycle anyway, so it has nothing to reuse across edits — use
    {!Sdnprobe.Plan.redraw} (via [Runner.execute]) for that mode. *)

type t

exception Edit_error of string
(** An edit referenced a missing entry id, carried a malformed ternary
    cube, or was rejected by {!Openflow.Network.add_entry} (bad
    switch/table/port). Raised by {!apply_op} and {!apply}; see
    {!apply} for the state guarantee. *)

val create : ?pool:Sdn_parallel.Pool.t -> Openflow.Network.t -> t
(** Build a session: full rule graph, cover, headers, plan. Equivalent
    to the deprecated [Plan.generate] but retains everything needed to
    re-plan incrementally. Raises {!Rulegraph.Rule_graph.Cyclic_policy}
    on looping policies. *)

val plan : t -> Sdnprobe.Plan.t
(** The current plan. Its probes feed {!Sdnprobe.Runner.execute} and
    {!Sdnprobe.Certify.run} unchanged. *)

val network : t -> Openflow.Network.t
(** The live network the session plans for. Mutating it other than
    through {!apply} invalidates the session. *)

val rulegraph : t -> Rulegraph.Rule_graph.t

val epoch : t -> int
(** Number of {!apply} batches absorbed since {!create}. *)

val apply_op : Openflow.Network.t -> Sdn_util.Edits.op -> int * int
(** Apply one edit to a network and return the [(switch, table)] it
    touched — the unit of {!Rulegraph.Rule_graph.update}'s
    [changed_tables]. Raises {!Edit_error} on invalid edits. Exposed so
    other consumers of the edit stream ([sdnprobe verify --edits])
    mutate networks exactly the way the pipeline does. *)

val apply : t -> Sdn_util.Edits.t -> t * Sdnprobe.Plan.patch
(** Apply one batch atomically-in-intent: mutate the network, update
    the rule graph incrementally, re-solve the cover over retained
    caches, re-assign headers through the speculation memo, and diff
    the plans. The patch carries the batch itself as provenance.

    The input session must not be used afterwards: the network is
    mutated in place, so [t]'s plan no longer matches its network
    (sessions are a linear type in spirit). An empty batch returns the
    session unchanged with an empty patch.

    If an op raises {!Edit_error} (or the churn introduces a loop,
    {!Rulegraph.Rule_graph.Cyclic_policy}), earlier ops of the batch
    have already mutated the network — discard the session and rebuild
    with {!create} if you need to continue past the error. *)
