module RG = Rulegraph.Rule_graph
module N = Openflow.Network
module FE = Openflow.Flow_entry
module Edits = Sdn_util.Edits

exception Edit_error of string

type t = {
  pool : Sdn_parallel.Pool.t option;
  network : N.t;
  rulegraph : RG.t;
  memo : Mlpc.Headers.memo;
  plan : Sdnprobe.Plan.t;
  epoch : int;
}

let plan t = t.plan
let network t = t.network
let rulegraph t = t.rulegraph
let epoch t = t.epoch

(* The memo outlives graph renumbering, so paths are keyed by the entry
   ids they test — the one name that survives an edit. *)
let entry_key rg (p : Mlpc.Cover.path) =
  List.map (fun v -> (RG.vertex_entry rg v).FE.id) p.Mlpc.Cover.rules

let plan_of ?pool ~memo net rg =
  let t0 = Sdn_util.Mono.now_s () in
  let cover = Mlpc.Legal_matching.solve ?pool rg in
  let assigned =
    Mlpc.Headers.assign ?pool ~memo ~key:(entry_key rg) Mlpc.Headers.Sat_unique
      cover
  in
  let probes = Sdnprobe.Plan.probes_of_assignment net rg assigned in
  {
    Sdnprobe.Plan.network = net;
    rulegraph = rg;
    cover;
    probes;
    generation_s = Sdn_util.Mono.now_s () -. t0;
    mode = Sdnprobe.Plan.Static;
  }

let create ?pool net =
  let rg = RG.build net in
  let memo = Mlpc.Headers.memo_create () in
  { pool; network = net; rulegraph = rg; memo; plan = plan_of ?pool ~memo net rg; epoch = 0 }

let apply_op net (op : Edits.op) =
  match op with
  | Edits.Remove id -> (
      match N.find_entry net id with
      | None -> raise (Edit_error (Printf.sprintf "remove %d: no such entry" id))
      | Some e ->
          N.remove_entry net id;
          (e.FE.switch, e.FE.table))
  | Edits.Add a ->
      let cube what s =
        try Hspace.Cube.of_string s
        with Invalid_argument m ->
          raise (Edit_error (Printf.sprintf "add: bad %s %S (%s)" what s m))
      in
      let match_ = cube "match" a.Edits.match_ in
      let set_field = Option.map (cube "set") a.Edits.set_field in
      let action =
        match a.Edits.action with
        | Edits.Drop -> FE.Drop
        | Edits.Output p -> FE.Output p
        | Edits.Goto_table tb -> FE.Goto_table tb
      in
      let e =
        try
          N.add_entry net ~switch:a.Edits.switch ~table:a.Edits.table
            ~priority:a.Edits.priority ~match_ ?set_field action
        with Invalid_argument m -> raise (Edit_error (Printf.sprintf "add: %s" m))
      in
      (e.FE.switch, e.FE.table)

let dedup_tables tables =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun tb ->
      if Hashtbl.mem seen tb then false
      else (
        Hashtbl.add seen tb ();
        true))
    tables

let apply t (edits : Edits.t) =
  if edits = [] then
    (t, { Sdnprobe.Plan.edits; added = []; removed = []; rewritten = [] })
  else begin
    let changed = dedup_tables (List.map (apply_op t.network) edits) in
    let rg = RG.update t.rulegraph ~changed_tables:changed in
    let plan = plan_of ?pool:t.pool ~memo:t.memo t.network rg in
    let patch =
      Sdnprobe.Plan.diff ~edits ~before:t.plan.Sdnprobe.Plan.probes
        ~after:plan.Sdnprobe.Plan.probes
    in
    ({ t with rulegraph = rg; plan; epoch = t.epoch + 1 }, patch)
  end
