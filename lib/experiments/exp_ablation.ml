(* Ablation benches for the design choices DESIGN.md calls out:

   1. legal transitive closure on/off — closure admits shorter covers;
   2. header-selection policy — SAT-unique vs deterministic vs random;
   3. suspicion threshold — detection latency / misses against an
      intermittent fault;
   4. randomized matching — packet-count overhead distribution across
      redraws. *)

module RG = Rulegraph.Rule_graph
module Emu = Dataplane.Emulator
module Fault = Dataplane.Fault
module FE = Openflow.Flow_entry
module Prng = Sdn_util.Prng
module Runner = Sdnprobe.Runner
module Report = Sdnprobe.Report

let closure_ablation ~scale =
  Exp_common.banner "Ablation: legal transitive closure on/off (cover size)";
  let nets = Workloads.suite ~count:(Exp_common.suite_count scale) ~seed:100 () in
  let table =
    Metrics.Table.create [ "topology"; "rules"; "with-closure"; "without"; "saving%" ]
  in
  List.iter
    (fun (w : Workloads.sized_net) ->
      let net = w.Workloads.network in
      let with_c = Mlpc.Cover.size (Mlpc.Legal_matching.solve (RG.build net)) in
      let without =
        Mlpc.Cover.size (Mlpc.Legal_matching.solve (RG.build ~closure:false net))
      in
      Metrics.Table.add_row table
        [
          w.Workloads.label;
          Metrics.Table.cell_i (Openflow.Network.n_entries net);
          Metrics.Table.cell_i with_c;
          Metrics.Table.cell_i without;
          Metrics.Table.cell_f
            (100. *. (1. -. (float_of_int with_c /. float_of_int (max 1 without))));
        ])
    nets;
  Metrics.Table.print table

let header_policy_ablation ~scale =
  ignore scale;
  Exp_common.banner "Ablation: header selection policy (campus cover)";
  let net = Topogen.Campus.synthesize (Prng.create 42) in
  let rg = RG.build net in
  let cover = Mlpc.Legal_matching.solve rg in
  let table = Metrics.Table.create [ "policy"; "headers"; "distinct"; "time(ms)" ] in
  let distinct hs = List.length (List.sort_uniq Hspace.Header.compare hs) in
  let measure name policy =
    let assigned, dt = Sdn_util.Misc.span_time (fun () -> Mlpc.Headers.assign policy cover) in
    let hs = List.map snd assigned in
    Metrics.Table.add_row table
      [
        name;
        Metrics.Table.cell_i (List.length hs);
        Metrics.Table.cell_i (distinct hs);
        Metrics.Table.cell_f (dt *. 1e3);
      ]
  in
  measure "deterministic" Mlpc.Headers.Deterministic;
  measure "sat-unique" Mlpc.Headers.Sat_unique;
  measure "random" (Mlpc.Headers.Random (Prng.create 3));
  Metrics.Table.print table

let threshold_ablation ~scale =
  ignore scale;
  Exp_common.banner "Ablation: suspicion threshold vs intermittent-fault detection";
  let w = List.nth (Workloads.suite ~count:3 ~seed:100 ()) 1 in
  let net = w.Workloads.network in
  let entry =
    List.find
      (fun (e : FE.t) -> match e.action with FE.Output _ -> true | _ -> false)
      (Openflow.Network.all_entries net)
  in
  let table = Metrics.Table.create [ "threshold"; "detected"; "time(s)"; "FP" ] in
  List.iter
    (fun threshold ->
      let emulator = Emu.create net in
      Emu.set_fault emulator ~entry:entry.FE.id
        (Fault.make
           ~activation:
             (Fault.Random_bursts { window_us = 30_000; active_ratio = 0.3; seed = 9 })
           Fault.Drop_packet);
      let config = Sdnprobe.Config.make ~threshold ~max_rounds:300 () in
      let report =
        Runner.execute
          ~stop:(Runner.stop_when_flagged [ entry.FE.switch ])
          ~config ~emulator
          (Pipeline.plan (Pipeline.create net))
      in
      let flagged = Report.flagged_switches report in
      Metrics.Table.add_row table
        [
          Metrics.Table.cell_i threshold;
          (if List.mem entry.FE.switch flagged then "yes" else "no");
          (match Report.detection_time report entry.FE.switch with
          | Some t -> Metrics.Table.cell_f t
          | None -> "-");
          Metrics.Table.cell_i
            (List.length (List.filter (fun sw -> sw <> entry.FE.switch) flagged));
        ])
    [ 1; 2; 3; 5; 8 ];
  Metrics.Table.print table

let randomized_overhead_ablation ~scale =
  ignore scale;
  Exp_common.banner "Ablation: randomized matching overhead across redraws";
  let w = List.nth (Workloads.suite ~count:4 ~seed:100 ()) 3 in
  let net = w.Workloads.network in
  let rg = RG.build net in
  let minimum = Mlpc.Cover.size (Mlpc.Legal_matching.solve rg) in
  let sizes =
    List.init 10 (fun s ->
        float_of_int
          (Mlpc.Cover.size (Mlpc.Legal_matching.randomized (Prng.create (100 + s)) rg)))
  in
  Exp_common.note
    "minimum %d; randomized over 10 redraws: min %.0f, mean %.1f, max %.0f (overhead mean %.0f%%, paper ~72%%)"
    minimum
    (List.fold_left min infinity sizes)
    (Sdn_util.Misc.mean sizes)
    (List.fold_left max neg_infinity sizes)
    (100. *. ((Sdn_util.Misc.mean sizes /. float_of_int minimum) -. 1.))

let incremental_update_ablation ~scale =
  Exp_common.banner
    "Ablation: incremental rule-graph update vs full rebuild (one rule add)";
  let nets = Workloads.suite ~count:(Exp_common.suite_count scale) ~seed:100 () in
  let table =
    Metrics.Table.create [ "topology"; "rules"; "full(ms)"; "incremental(ms)"; "speedup" ]
  in
  List.iter
    (fun (w : Workloads.sized_net) ->
      let net = w.Workloads.network in
      let rg0 = RG.build net in
      (* Install one fresh high-priority rule on switch 0. *)
      let port =
        List.hd (Openflow.Topology.ports_of (Openflow.Network.topology net) 0)
      in
      let _ =
        Openflow.Network.add_entry net ~switch:0 ~priority:25
          ~match_:
            (Topogen.Rule_gen.block_of
               ~header_len:(Openflow.Network.header_len net)
               ~prefix_bits:(Topogen.Rule_gen.prefix_bits ~n_switches:w.Workloads.n_switches)
               1)
          (FE.Output port)
      in
      let _, incremental_s =
        Sdn_util.Misc.span_time (fun () -> RG.update rg0 ~changed_tables:[ (0, 0) ])
      in
      let _, full_s = Sdn_util.Misc.span_time (fun () -> RG.build net) in
      Metrics.Table.add_row table
        [
          w.Workloads.label;
          Metrics.Table.cell_i (Openflow.Network.n_entries net);
          Metrics.Table.cell_f (full_s *. 1e3);
          Metrics.Table.cell_f (incremental_s *. 1e3);
          Printf.sprintf "%.1fx" (full_s /. max 1e-9 incremental_s);
        ])
    nets;
  Metrics.Table.print table

let run ~scale =
  closure_ablation ~scale;
  header_policy_ablation ~scale;
  threshold_ablation ~scale;
  randomized_overhead_ablation ~scale;
  incremental_update_ablation ~scale
