type scale = Exp_common.scale = Quick | Full

let table :
    (string * string * (scale:Exp_common.scale -> unit)) list =
  [
    ("real-dataset", "§VIII-A campus dataset: packet count + SAT timing", Exp_real_dataset.run);
    ("fig8a", "Fig. 8(a): number of generated test packets", Exp_fig8a.run);
    ("fig8b", "Fig. 8(b): delay to localize one faulty switch", Exp_fig8b.run);
    ("fig8c", "Fig. 8(c): delay to localize all faulty switches", Exp_fig8c.run);
    ("fig9a", "Fig. 9(a): FPR under basic failures", Exp_fig9.run_a);
    ("fig9b", "Fig. 9(b): FNR under colluding detours", Exp_fig9.run_b);
    ("fig9c", "Fig. 9(c): FNR vs detection delay at 50% detours", Exp_fig9.run_c);
    ("table1", "Table I: detection accuracy matrix", Exp_table1.run);
    ("table2", "Table II: generation at scale", Exp_table2.run);
    ("ablations", "design-choice ablations", Exp_ablation.run);
    ( "loss-sweep",
      "error-prone environment: accuracy & delay vs per-link loss",
      Exp_loss_sweep.run );
  ]

let experiments = List.map (fun (n, d, _) -> (n, d)) table

let run ~scale name =
  match List.find_opt (fun (n, _, _) -> n = name) table with
  | Some (_, _, f) ->
      f ~scale;
      Ok ()
  | None ->
      Error
        (Printf.sprintf "unknown experiment %S; valid: %s" name
           (String.concat ", " (List.map fst experiments)))

let run_all ~scale = List.iter (fun (_, _, f) -> f ~scale) table
