(* Figure 9: detection accuracy.

   (a) FPR for basic failures vs faulty fraction — SDNProbe and
       Randomized SDNProbe at 0; ATPG and Per-rule high.
   (b) FNR for colluding path detours vs faulty fraction — Randomized 0
       (given enough rounds), Per-rule low, SDNProbe/ATPG 15-40%.
   (c) FNR (y) vs detection delay (x) at 50% detour-faulty — only
       Randomized reaches FNR 0 (paper: within 33 s).

   Each data point averages several runs (paper: 10). *)

module Report = Sdnprobe.Report
module Runner = Sdnprobe.Runner

let fractions = [ 0.05; 0.10; 0.20; 0.35; 0.50 ]

let accuracy_run scheme ~kind ~fraction ~fault_seed ~run_seed ~max_rounds net =
  let emulator, truth =
    Exp_common.emulator_with_switch_faults ~fault_seed ~kind ~switch_fraction:fraction
      net
  in
  (* Static schemes produce the same probe outcomes every round, so
     their accuracy stabilizes within a handful of rounds; the long
     budget only matters for the randomized variant's re-draws. *)
  let max_rounds =
    match scheme with Schemes.Randomized_sdnprobe -> max_rounds | _ -> min max_rounds 30
  in
  let config = Sdnprobe.Config.make ~max_rounds () in
  let report =
    Schemes.run scheme ~seed:run_seed
      ~stop:(Runner.stop_when_flagged truth)
      ~config emulator
  in
  let confusion =
    Metrics.Confusion.compute ~ground_truth:truth
      ~flagged:(Report.flagged_switches report)
      ~population:(Workloads.population net)
  in
  (confusion, report, truth)

let mean_metric scheme ~kind ~fraction ~metric ~runs ~max_rounds net =
  Sdn_util.Misc.mean
    (List.init runs (fun r ->
         let confusion, _, _ =
           accuracy_run scheme ~kind ~fraction ~fault_seed:(4000 + r)
             ~run_seed:(50 + r) ~max_rounds net
         in
         metric confusion))

let accuracy_table ~title ~kind ~metric ~metric_name ~runs ~max_rounds net =
  Exp_common.banner title;
  let table =
    Metrics.Table.create
      [ "faulty%"; "sdnprobe"; "rand-sdnprobe"; "atpg"; "per-rule" ]
  in
  List.iter
    (fun fraction ->
      let cell scheme =
        Metrics.Table.cell_f
          (mean_metric scheme ~kind ~fraction ~metric ~runs ~max_rounds net)
      in
      Metrics.Table.add_row table
        [
          Printf.sprintf "%.0f%%" (fraction *. 100.);
          cell Schemes.Sdnprobe;
          cell Schemes.Randomized_sdnprobe;
          cell Schemes.Atpg;
          cell Schemes.Per_rule;
        ])
    fractions;
  Metrics.Table.print table;
  ignore metric_name

let run_a ~scale =
  let w = Workloads.large ~seed:2000 in
  accuracy_table
    ~title:"Figure 9(a): FPR, basic failures (avg of runs)"
    ~kind:Workloads.Basic ~metric:Metrics.Confusion.fpr ~metric_name:"fpr"
    ~runs:(Exp_common.runs_of_scale scale) ~max_rounds:80 w.Workloads.network;
  Exp_common.note "paper: SDNProbe/Randomized 0; ATPG and Per-rule high (FNR = 0 for all)"

let run_b ~scale =
  let w = Workloads.large ~seed:2000 in
  accuracy_table
    ~title:"Figure 9(b): FNR, colluding path detours (avg of runs)"
    ~kind:Workloads.Detour ~metric:Metrics.Confusion.fnr ~metric_name:"fnr"
    ~runs:(Exp_common.runs_of_scale scale) ~max_rounds:120 w.Workloads.network;
  Exp_common.note
    "paper: Randomized 0; Per-rule lower than SDNProbe/ATPG (short paths); SDNProbe/ATPG 15-40%%"

(* (c): run each scheme once against the same 50%-detour fault set with
   a generous round budget, then report FNR at growing time cutoffs. *)
let run_c ~scale =
  ignore scale;
  Exp_common.banner
    "Figure 9(c): FNR vs detection delay, 50% detour-faulty (large topology)";
  let w = Workloads.large ~seed:2000 in
  let net = w.Workloads.network in
  let fault_seed = 4444 in
  let cutoffs = [ 1.; 2.; 5.; 10.; 20.; 33.; 50.; 80. ] in
  let series scheme =
    let emulator, truth =
      Exp_common.emulator_with_switch_faults ~fault_seed ~kind:Workloads.Detour
        ~switch_fraction:0.5 net
    in
    let max_rounds =
      match scheme with Schemes.Randomized_sdnprobe -> 400 | _ -> 40
    in
    let config = Sdnprobe.Config.make ~max_rounds () in
    let report =
      Schemes.run scheme ~seed:7
        ~stop:
          (Runner.stop_any
             [ Runner.stop_when_flagged truth; Runner.stop_after_s 90. ])
        ~config emulator
    in
    let total = List.length truth in
    let fnr_at t =
      let detected =
        List.length
          (List.filter
             (fun (d : Report.detection) -> d.Report.time_s <= t && List.mem d.Report.switch truth)
             report.Report.detections)
      in
      float_of_int (total - detected) /. float_of_int (max 1 total)
    in
    List.map fnr_at cutoffs
  in
  let all_series = List.map (fun s -> (s, series s)) Schemes.all in
  let table =
    Metrics.Table.create
      ("time(s)" :: List.map Schemes.name Schemes.all)
  in
  List.iteri
    (fun i t ->
      Metrics.Table.add_row table
        (Metrics.Table.cell_f t
        :: List.map (fun (_, s) -> Metrics.Table.cell_f (List.nth s i)) all_series))
    cutoffs;
  Metrics.Table.print table;
  Exp_common.note "paper: only Randomized SDNProbe reaches FNR = 0 (at 33 s)"

let run ~scale =
  run_a ~scale;
  run_b ~scale;
  run_c ~scale
