(* Error-prone environment sweep: localization accuracy and detection
   time as the natural per-link packet-loss rate grows from 0 to 5%,
   Static vs Randomized SDNProbe, loss-tolerant detection profile
   (Config.resilient: bounded retransmission + suspicion decay).

   Two scenarios per loss point:

   - faulted: one real rule-modification (Rewrite) fault on a 50-switch
     Rocketfuel-like topology. The engine must flag exactly the faulty
     switch — environment loss must be absorbed by retransmission, not
     blamed on healthy switches.
   - pure loss: the same topology with NO fault. Any flagged switch is
     a false positive at threshold 3.

   Set SDNPROBE_LOSS_SWEEP_JSON=path to also write the sweep as one
   versioned JSON document (consumed by scripts/plot_loss_sweep.py). *)

module Emu = Dataplane.Emulator
module Impairment = Dataplane.Impairment
module Fault = Dataplane.Fault
module FE = Openflow.Flow_entry
module Network = Openflow.Network
module Prng = Sdn_util.Prng
module Json = Sdn_util.Json
module Report = Sdnprobe.Report
module Runner = Sdnprobe.Runner

let schema_version = 1

let n_switches = 50

let topo_seed = 42

let impair_seed = 1234

(* One rule-modification fault: four header bits rewritten by a
   deterministic forwarding entry (the Workloads [Basic] "modify"
   arm, pinned to a single entry). Returns the ground-truth switch. *)
let inject_one_modify rng net emulator =
  let candidates =
    List.filter
      (fun (e : FE.t) -> match e.action with FE.Output _ -> true | _ -> false)
      (Network.all_entries net)
  in
  let entry = Prng.choose_list rng candidates in
  let len = Network.header_len net in
  let set = ref (Hspace.Cube.wildcard len) in
  for _ = 1 to 4 do
    let bit = Prng.int rng len in
    set :=
      Hspace.Cube.set !set bit (if Prng.bool rng then Hspace.Cube.One else Hspace.Cube.Zero)
  done;
  Emu.set_fault emulator ~entry:entry.FE.id (Fault.make (Fault.Rewrite !set));
  entry.FE.switch

let impaired_emulator net ~loss =
  let emulator = Emu.create net in
  if loss > 0. then
    Emu.set_impairment emulator
      (Impairment.create (Impairment.spec ~seed:impair_seed ~loss_rate:loss ()));
  emulator

(* Static plans come from a [Pipeline] session; randomized plans stay
   on the (deprecated) batch generator — they re-draw per cycle and
   have no session state to keep. *)
let plan_of ~randomized ~seed net =
  if randomized then
    (Sdnprobe.Plan.generate [@alert "-deprecated"])
      ~mode:(Sdnprobe.Plan.Randomized (Prng.create seed)) net
  else Pipeline.plan (Pipeline.create net)

let scheme_name ~randomized = if randomized then "rand-sdnprobe" else "sdnprobe"

type point = {
  loss : float;
  scheme : string;
  exact : bool;  (** flagged exactly the faulty switch *)
  detect_s : float option;  (** virtual time to flag the faulty switch *)
  pure_loss_fps : int;  (** switches flagged with no fault present *)
  report : Report.t;  (** the faulted run's report *)
}

let run_point net ~loss ~randomized =
  let config = Sdnprobe.Config.(with_max_rounds 150 resilient) in
  (* Faulted run: one modify fault, hunt it. *)
  let emulator = impaired_emulator net ~loss in
  let truth = inject_one_modify (Prng.create 7) net emulator in
  let report =
    Runner.execute
      ~stop:(Runner.stop_when_flagged [ truth ])
      ~config ~emulator
      (plan_of ~randomized ~seed:5 net)
  in
  let flagged = Report.flagged_switches report in
  (* Pure-loss run: same environment, no fault; bounded rounds. *)
  let pure_emulator = impaired_emulator net ~loss in
  let pure_report =
    Runner.execute
      ~config:Sdnprobe.Config.(with_max_rounds 40 resilient)
      ~emulator:pure_emulator
      (plan_of ~randomized ~seed:5 net)
  in
  let pure_confusion =
    Metrics.Confusion.pure_loss
      ~flagged:(Report.flagged_switches pure_report)
      ~population:(Workloads.population net)
  in
  {
    loss;
    scheme = scheme_name ~randomized;
    exact = flagged = [ truth ];
    detect_s = Report.detection_time report truth;
    pure_loss_fps = pure_confusion.Metrics.Confusion.false_positives;
    report;
  }

let point_json p =
  let report =
    match Json.of_string (Report.to_json p.report) with
    | Ok v -> v
    | Error msg -> failwith ("unparseable report JSON: " ^ msg)
  in
  Json.Obj
    [
      ("loss", Json.Float p.loss);
      ("scheme", Json.Str p.scheme);
      ("exact", Json.Bool p.exact);
      ( "detect_s",
        match p.detect_s with Some t -> Json.Float t | None -> Json.Null );
      ("pure_loss_false_positives", Json.Int p.pure_loss_fps);
      ("report", report);
    ]

let sweep_json points =
  Json.to_string
    (Json.Obj
       [
         ("schema_version", Json.Int schema_version);
         ("experiment", Json.Str "loss-sweep");
         ("n_switches", Json.Int n_switches);
         ("threshold", Json.Int Sdnprobe.Config.default.Sdnprobe.Config.threshold);
         ("points", Json.List (List.map point_json points));
       ])

let losses_of_scale = function
  | Exp_common.Quick -> [ 0.0; 0.02 ]
  | Exp_common.Full -> [ 0.0; 0.005; 0.01; 0.02; 0.03; 0.05 ]

let run ~scale =
  Exp_common.banner
    "Loss sweep: accuracy & detection time vs per-link loss (error-prone environment)";
  let rng = Prng.create topo_seed in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches () in
  let net = Topogen.Rule_gen.install rng topo in
  Exp_common.note "topology: %d switches, %d rules; profile: resilient (retries=%d, decay=%d)"
    n_switches (Network.n_entries net)
    Sdnprobe.Config.resilient.Sdnprobe.Config.max_retries
    Sdnprobe.Config.resilient.Sdnprobe.Config.suspicion_decay;
  let table =
    Metrics.Table.create
      [ "loss%"; "scheme"; "exact"; "detect(s)"; "retx"; "pure-loss FPs" ]
  in
  let points =
    List.concat_map
      (fun loss ->
        List.map
          (fun randomized ->
            let p = run_point net ~loss ~randomized in
            Metrics.Table.add_row table
              [
                Printf.sprintf "%.1f%%" (loss *. 100.);
                p.scheme;
                (if p.exact then "yes" else "NO");
                (match p.detect_s with
                | Some t -> Metrics.Table.cell_f t
                | None -> "miss");
                Metrics.Table.cell_i p.report.Report.retransmissions;
                Metrics.Table.cell_i p.pure_loss_fps;
              ];
            p)
          [ false; true ])
      (losses_of_scale scale)
  in
  Metrics.Table.print table;
  (match Sys.getenv_opt "SDNPROBE_LOSS_SWEEP_JSON" with
  | Some path ->
      let oc = open_out path in
      output_string oc (sweep_json points);
      output_string oc "\n";
      close_out oc;
      Exp_common.note "sweep JSON written to %s" path
  | None -> ());
  let fps = List.fold_left (fun acc p -> acc + p.pure_loss_fps) 0 points in
  if fps > 0 then
    failwith
      (Printf.sprintf
         "loss sweep: %d false positive(s) under pure loss at threshold %d" fps
         Sdnprobe.Config.default.Sdnprobe.Config.threshold);
  Exp_common.note
    "expected: exact localization at every loss point, zero pure-loss false positives"
