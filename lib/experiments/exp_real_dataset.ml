(* §VIII-A: the real-dataset experiment. The campus backbone dataset is
   synthesized to its published statistics (two routing tables of 550
   and 579 entries, max overlap 65); we reproduce the two measurements
   the paper reports: the number of generated test packets (~600) and
   the per-header SAT solving time for overlapping rules (0.5-2.4 ms
   with MiniSat; our from-scratch CDCL solver is measured the same
   way). *)

module RG = Rulegraph.Rule_graph
module FT = Openflow.Flow_table
module FE = Openflow.Flow_entry
module Network = Openflow.Network

let run ~scale =
  ignore scale;
  Exp_common.banner "Real dataset (§VIII-A): campus backbone";
  let net = Topogen.Campus.synthesize (Sdn_util.Prng.create 42) in
  let stats = Topogen.Campus.stats_of net in
  Exp_common.note "tables: %s; max overlap: %d; total rules: %d"
    (String.concat ", "
       (List.map
          (fun (sw, n) -> Printf.sprintf "sw%d=%d" sw n)
          stats.Topogen.Campus.table_sizes))
    stats.Topogen.Campus.max_overlap stats.Topogen.Campus.total_rules;
  (* Test packet generation. *)
  let t0 = Sdn_util.Mono.now_s () in
  let rg = RG.build net in
  let cover = Mlpc.Legal_matching.solve rg in
  let gen_s = Sdn_util.Mono.now_s () -. t0 in
  Exp_common.note "test packets: %d covering %d entries (generation %.2fs)"
    (Mlpc.Cover.size cover)
    (Network.n_entries net) gen_s;
  Exp_common.note "paper: 600 test packets covering 550 + 579 entries";
  (* Per-header SAT time over every rule that has overlapping rules. *)
  let times = ref [] in
  for sw = 0 to Network.n_switches net - 1 do
    let table = Network.table net ~switch:sw ~table:0 in
    List.iter
      (fun (e : FE.t) ->
        let overlaps = FT.higher_priority_overlaps table e in
        if overlaps <> [] then begin
          let t0 = Sdn_util.Mono.now_s () in
          let result =
            Sat.Header_encoding.find_rule_input ~match_:e.FE.match_
              ~overlaps:(List.map (fun (q : FE.t) -> q.FE.match_) overlaps)
          in
          let dt = (Sdn_util.Mono.now_s () -. t0) *. 1e3 in
          assert (result <> None);
          times := dt :: !times
        end)
      (FT.entries table)
  done;
  let times = !times in
  Exp_common.note
    "SAT header search over %d overlapping rules: min %.3f ms, mean %.3f ms, p99 %.3f ms, max %.3f ms"
    (List.length times)
    (List.fold_left min infinity times)
    (Sdn_util.Misc.mean times)
    (Sdn_util.Misc.percentile 99. times)
    (List.fold_left max neg_infinity times);
  Exp_common.note "paper: 0.5-2.4 ms per header with MiniSat"
