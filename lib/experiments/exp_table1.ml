(* Table I: qualitative detection-accuracy matrix — five fault
   scenarios against the four schemes. Each cell reports "ok" (exact
   detection), "FP", "FN", or "FN,FP" after a bounded run. *)

module Emu = Dataplane.Emulator
module Fault = Dataplane.Fault
module FE = Openflow.Flow_entry
module Cube = Hspace.Cube
module Report = Sdnprobe.Report
module Runner = Sdnprobe.Runner
module Prng = Sdn_util.Prng

type scenario = One_fault | Multi_fault | Intermittent | Targeting | Detour_scenario

let scenarios =
  [
    (One_fault, "1 faulty node");
    (Multi_fault, "> 1 faulty nodes");
    (Intermittent, "intermittent fault");
    (Targeting, "targeting fault");
    (Detour_scenario, "detour (colluding)");
  ]

(* Pick some forwarding entries spread over distinct switches. *)
let pick_entries rng net count =
  let pool =
    List.filter
      (fun (e : FE.t) -> match e.action with FE.Output _ -> true | _ -> false)
      (Openflow.Network.all_entries net)
  in
  let arr = Array.of_list pool in
  Prng.shuffle rng arr;
  let seen = Hashtbl.create 8 in
  Array.fold_left
    (fun acc (e : FE.t) ->
      if List.length acc < count && not (Hashtbl.mem seen e.switch) then begin
        Hashtbl.add seen e.switch ();
        e :: acc
      end
      else acc)
    [] arr

let setup scenario rng net emulator =
  match scenario with
  | One_fault ->
      let e = List.hd (pick_entries rng net 1) in
      Emu.set_fault emulator ~entry:e.FE.id (Fault.make Fault.Drop_packet);
      [ e.FE.switch ]
  | Multi_fault ->
      List.map
        (fun (e : FE.t) ->
          Emu.set_fault emulator ~entry:e.FE.id (Fault.make Fault.Drop_packet);
          e.FE.switch)
        (pick_entries rng net 3)
  | Intermittent ->
      let e = List.hd (pick_entries rng net 1) in
      Emu.set_fault emulator ~entry:e.FE.id
        (Fault.make
           ~activation:
             (Fault.Random_bursts { window_us = 30_000; active_ratio = 0.3; seed = 5 })
           Fault.Drop_packet);
      [ e.FE.switch ]
  | Targeting ->
      let e = List.hd (pick_entries rng net 1) in
      (* Target half of the rule's traffic: fix one wildcard bit. *)
      let m = e.FE.match_ in
      let rec first_wildcard k =
        if k >= Cube.length m then None
        else if Cube.get m k = Cube.Any then Some k
        else first_wildcard (k + 1)
      in
      let target =
        match first_wildcard (Cube.length m - 1) with
        | Some k -> Cube.set m k Cube.One
        | None -> m
      in
      (* Ensure the target misses the deterministic static header. *)
      let target =
        match Hspace.Hs.first_member (Hspace.Hs.of_cube m) with
        | Some h when Hspace.Header.matches (Hspace.Header.of_cube h) target -> (
            match first_wildcard 0 with
            | Some k -> Cube.set m k Cube.One
            | None -> target)
        | _ -> target
      in
      Emu.set_fault emulator ~entry:e.FE.id
        (Fault.make ~activation:(Fault.Targeting target) Fault.Drop_packet);
      [ e.FE.switch ]
  | Detour_scenario ->
      (* Adaptive colluders (§V-C's threat model): the pair knows the
         static plan is fixed and tunnels along the very tested path
         that covers the compromised entry, skipping the switch in
         between — invisible to static SDNProbe by construction, while
         the randomized variant re-draws paths it cannot anticipate. *)
      ignore rng;
      let plan = Pipeline.plan (Pipeline.create net) in
      let pair =
        List.find_map
          (fun (p : Sdnprobe.Probe.t) ->
            match p.Sdnprobe.Probe.rules with
            | r :: skip :: landing :: _ ->
                let sw i = (Openflow.Network.entry net i).FE.switch in
                if sw r <> sw skip && sw skip <> sw landing && sw r <> sw landing
                then Some (r, sw landing)
                else None
            | _ -> None)
          plan.Sdnprobe.Plan.probes
      in
      let r, peer = Option.get pair in
      Emu.set_fault emulator ~entry:r (Fault.make (Fault.Detour peer));
      [ (Openflow.Network.entry net r).FE.switch ]

let verdict truth report =
  let flagged = Report.flagged_switches report in
  let fn = List.exists (fun sw -> not (List.mem sw flagged)) truth in
  let fp = List.exists (fun sw -> not (List.mem sw truth)) flagged in
  match (fn, fp) with
  | false, false -> "ok"
  | false, true -> "FP"
  | true, false -> "FN"
  | true, true -> "FN,FP"

let run ~scale =
  ignore scale;
  Exp_common.banner "Table I: detection accuracy matrix (ok / FP / FN)";
  let w = List.nth (Workloads.suite ~count:3 ~seed:100 ()) 2 in
  let net = w.Workloads.network in
  Exp_common.note "network: %d switches, %d rules" w.Workloads.n_switches
    (Openflow.Network.n_entries net);
  let table =
    Metrics.Table.create ("scenario" :: List.map Schemes.name Schemes.all)
  in
  List.iter
    (fun (scenario, label) ->
      let cell scheme =
        let emulator = Emu.create net in
        let truth = setup scenario (Prng.create 77) net emulator in
        let max_rounds =
          match scenario with
          | Intermittent | Targeting | Detour_scenario -> 300
          | One_fault | Multi_fault -> 60
        in
        let config = Sdnprobe.Config.make ~max_rounds () in
        let report =
          Schemes.run scheme ~seed:11 ~stop:(Runner.stop_when_flagged truth) ~config
            emulator
        in
        Emu.clear_all_faults emulator;
        verdict truth report
      in
      Metrics.Table.add_row table (label :: List.map cell Schemes.all))
    scenarios;
  Metrics.Table.print table;
  Exp_common.note
    "paper: SDNProbe ok/ok/ok/FN/FN; Randomized all ok; per-rule & intersection FP-or-FN beyond one fault"
