(** Uniform driver for the four compared schemes (§VIII-B). *)

type t = Sdnprobe | Randomized_sdnprobe | Atpg | Per_rule

val all : t list
(** In the paper's presentation order. *)

val name : t -> string

val plan_size : t -> seed:int -> Openflow.Network.t -> int
(** Number of test packets the scheme generates (Fig. 8a), without
    running detection. *)

val run :
  t ->
  seed:int ->
  ?stop:Sdnprobe.Runner.stop ->
  config:Sdnprobe.Config.t ->
  Dataplane.Emulator.t ->
  Sdnprobe.Report.t
(** Full detection run over the backend [config.backend] selects: the
    in-process emulator (default), or the UDP wire backend (probing
    schemes only — the baselines drive the emulator directly and raise
    [Invalid_argument] under [Wire]). The emulator's clock keeps
    advancing; reset it between schemes for comparable timings. *)
