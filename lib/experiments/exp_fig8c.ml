(* Figure 8(c): delay to localize ALL faulty switches on the large
   topology as the fraction of faulty flow entries grows. Expected
   shape: SDNProbe/Randomized fastest at <= 5%, Per-rule flat and
   fastest beyond ~5% (no extra localization work), ATPG worst
   throughout. *)

module Report = Sdnprobe.Report

let fractions = [ 0.01; 0.02; 0.05; 0.10; 0.20; 0.35; 0.50 ]

let run ~scale =
  ignore scale;
  Exp_common.banner
    "Figure 8(c): delay to localize all faulty switches vs faulty fraction (large topology)";
  let w = Workloads.large ~seed:2000 in
  let net = w.Workloads.network in
  Exp_common.note "topology: %d switches, %d links, %d rules" w.Workloads.n_switches
    w.Workloads.n_links
    (Openflow.Network.n_entries net);
  let table =
    Metrics.Table.create
      [ "faulty%"; "faulty-switches"; "sdnprobe"; "rand-sdnprobe"; "atpg"; "per-rule" ]
  in
  List.iter
    (fun fraction ->
      let fault_seed = 3000 + int_of_float (fraction *. 1000.) in
      let _, truth =
        Exp_common.emulator_with_faults ~fault_seed ~kind:Workloads.Drop_only ~fraction net
      in
      let cell scheme =
        let emulator, _ =
          Exp_common.emulator_with_faults ~fault_seed ~kind:Workloads.Drop_only ~fraction
            net
        in
        let config = Sdnprobe.Config.make ~max_rounds:150 () in
        let report =
          Schemes.run scheme ~seed:7
            ~stop:(Sdnprobe.Runner.stop_when_flagged truth)
            ~config emulator
        in
        match Report.time_to_detect_all report ~ground_truth:truth with
        | Some t -> Metrics.Table.cell_f t
        | None -> "miss"
      in
      Metrics.Table.add_row table
        [
          Printf.sprintf "%.0f%%" (fraction *. 100.);
          Metrics.Table.cell_i (List.length truth);
          cell Schemes.Sdnprobe;
          cell Schemes.Randomized_sdnprobe;
          cell Schemes.Atpg;
          cell Schemes.Per_rule;
        ])
    fractions;
  Metrics.Table.print table;
  Exp_common.note
    "paper: SDNProbe fastest at <=5%%; Per-rule fastest beyond 5%% (but high FP); ATPG worst"
