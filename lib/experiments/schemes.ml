module Prng = Sdn_util.Prng

type t = Sdnprobe | Randomized_sdnprobe | Atpg | Per_rule

let all = [ Sdnprobe; Randomized_sdnprobe; Atpg; Per_rule ]

let name = function
  | Sdnprobe -> "sdnprobe"
  | Randomized_sdnprobe -> "rand-sdnprobe"
  | Atpg -> "atpg"
  | Per_rule -> "per-rule"

(* Randomized SDNProbe re-draws per cycle and has no incremental
   session to keep, so it stays on the (deprecated) batch generator. *)
let[@alert "-deprecated"] randomized_plan ~seed net =
  Sdnprobe.Plan.generate ~mode:(Sdnprobe.Plan.Randomized (Prng.create seed)) net

let plan_size t ~seed net =
  match t with
  | Sdnprobe -> Sdnprobe.Plan.size (Pipeline.plan (Pipeline.create net))
  | Randomized_sdnprobe -> Sdnprobe.Plan.size (randomized_plan ~seed net)
  | Atpg -> List.length (Baselines.Atpg.generate net).Baselines.Atpg.probes
  | Per_rule -> List.length (fst (Baselines.Per_rule.generate net))

let run t ~seed ?stop ~config emulator =
  let net = Dataplane.Emulator.network emulator in
  match t with
  | Sdnprobe ->
      Sdnprobe.Runner.execute ?stop ~config ~emulator
        (Pipeline.plan (Pipeline.create net))
  | Randomized_sdnprobe ->
      Sdnprobe.Runner.execute ?stop ~config ~emulator (randomized_plan ~seed net)
  | Atpg -> Baselines.Atpg.run ?stop ~config emulator
  | Per_rule -> Baselines.Per_rule.run ?stop ~config emulator
