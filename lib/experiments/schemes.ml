module Prng = Sdn_util.Prng

type t = Sdnprobe | Randomized_sdnprobe | Atpg | Per_rule

let all = [ Sdnprobe; Randomized_sdnprobe; Atpg; Per_rule ]

let name = function
  | Sdnprobe -> "sdnprobe"
  | Randomized_sdnprobe -> "rand-sdnprobe"
  | Atpg -> "atpg"
  | Per_rule -> "per-rule"

(* Randomized SDNProbe re-draws per cycle and has no incremental
   session to keep, so it stays on the (deprecated) batch generator. *)
let[@alert "-deprecated"] randomized_plan ~seed net =
  Sdnprobe.Plan.generate ~mode:(Sdnprobe.Plan.Randomized (Prng.create seed)) net

let plan_size t ~seed net =
  match t with
  | Sdnprobe -> Sdnprobe.Plan.size (Pipeline.plan (Pipeline.create net))
  | Randomized_sdnprobe -> Sdnprobe.Plan.size (randomized_plan ~seed net)
  | Atpg -> List.length (Baselines.Atpg.generate net).Baselines.Atpg.probes
  | Per_rule -> List.length (fst (Baselines.Per_rule.generate net))

(* Probing schemes execute over the backend the config selects; the
   baselines drive the emulator directly and have no wire port. *)
let execute_plan ?stop ~config ~emulator plan =
  match config.Sdnprobe.Config.backend with
  | Sdnprobe.Config.Emulator -> Sdnprobe.Runner.execute ?stop ~config ~emulator plan
  | Sdnprobe.Config.Wire ->
      let w = Wire.create emulator in
      Fun.protect
        ~finally:(fun () -> Wire.close w)
        (fun () ->
          Sdnprobe.Runner.execute_on ?stop ~config ~backend:(Wire.backend w) plan)

let run t ~seed ?stop ~config emulator =
  let net = Dataplane.Emulator.network emulator in
  match t with
  | Sdnprobe ->
      execute_plan ?stop ~config ~emulator (Pipeline.plan (Pipeline.create net))
  | Randomized_sdnprobe ->
      execute_plan ?stop ~config ~emulator (randomized_plan ~seed net)
  | Atpg ->
      if config.Sdnprobe.Config.backend <> Sdnprobe.Config.Emulator then
        invalid_arg "the atpg baseline only runs on the emulator backend";
      Baselines.Atpg.run ?stop ~config emulator
  | Per_rule ->
      if config.Sdnprobe.Config.backend <> Sdnprobe.Config.Emulator then
        invalid_arg "the per-rule baseline only runs on the emulator backend";
      Baselines.Per_rule.run ?stop ~config emulator
