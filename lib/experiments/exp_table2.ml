(* Table II: test-packet generation at growing scale. For each topology
   we report the paper's columns: rules / switches / links, MLPS
   (maximum legal path length), ALPS (average legal path length), NLPS
   (total number of legal paths), TPC (test packet count) and PCT
   (pre-computation time). Topology sizes are scaled down ~20x from the
   paper's largest (their 358k-rule instance took 2549 s on their
   hardware); shapes, not absolutes, are the target. *)

module RG = Rulegraph.Rule_graph
module Digraph = Sdngraph.Digraph
module Hs = Hspace.Hs
module FE = Openflow.Flow_entry

(* Enumerate maximal legal paths (every maximal legal extension of each
   start rule), counting lengths; capped to keep the census bounded. *)
let legal_path_census rg ~cap =
  let g = RG.base_graph rg in
  let n = RG.n_vertices rg in
  let testable v = not (Hs.is_empty (RG.input rg v)) in
  let step hs w =
    let e = RG.vertex_entry rg w in
    Hs.apply_set_field ~set:e.FE.set_field (Hs.inter hs (RG.input rg w))
  in
  let count = ref 0 in
  let total_len = ref 0 in
  let max_len = ref 0 in
  let rec dfs v hs len =
    if !count < cap then begin
      let extensions =
        List.filter_map
          (fun w ->
            let hs' = step hs w in
            if Hs.is_empty hs' then None else Some (w, hs'))
          (Digraph.succ g v)
      in
      if extensions = [] then begin
        incr count;
        total_len := !total_len + len;
        if len > !max_len then max_len := len
      end
      else List.iter (fun (w, hs') -> dfs w hs' (len + 1)) extensions
    end
  in
  (* Starts: rules with no legal incoming extension would be exact; the
     paper counts paths from every start rule, which the sources
     approximate. *)
  for v = 0 to n - 1 do
    if testable v && Digraph.pred g v = [] then dfs v (RG.output rg v) 1
  done;
  let capped = !count >= cap in
  (!count, !max_len, (if !count = 0 then 0. else float_of_int !total_len /. float_of_int !count), capped)

let sizes quick =
  if quick then [ (10, 3, 2); (16, 4, 2); (22, 4, 2); (28, 5, 2); (34, 5, 3) ]
  else [ (12, 4, 2); (20, 5, 2); (30, 6, 3); (42, 7, 3); (56, 8, 3) ]

let run ~scale =
  Exp_common.banner "Table II: test packet generation at scale";
  let table =
    Metrics.Table.create
      [ "topo"; "rules"; "switches"; "links"; "MLPS"; "ALPS"; "NLPS"; "TPC"; "PCT(s)" ]
  in
  List.iteri
    (fun i (n_switches, flows, k) ->
      let rng = Sdn_util.Prng.create (9000 + i) in
      let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches () in
      let spec =
        {
          Topogen.Rule_gen.default_spec with
          Topogen.Rule_gen.k_paths = k;
          flows_per_destination = flows;
        }
      in
      let net = Topogen.Rule_gen.install ~spec rng topo in
      let t0 = Sdn_util.Mono.now_s () in
      let rg = RG.build net in
      let cover = Mlpc.Legal_matching.solve rg in
      let probes = Mlpc.Headers.assign Mlpc.Headers.Sat_unique cover in
      let pct = Sdn_util.Mono.now_s () -. t0 in
      let nlps, mlps, alps, capped = legal_path_census rg ~cap:2_000_000 in
      Metrics.Table.add_row table
        [
          string_of_int (i + 1);
          Metrics.Table.cell_i (Openflow.Network.n_entries net);
          Metrics.Table.cell_i n_switches;
          Metrics.Table.cell_i (Openflow.Topology.n_links topo);
          Metrics.Table.cell_i mlps;
          Metrics.Table.cell_f alps;
          (if capped then Printf.sprintf ">%d" nlps else Metrics.Table.cell_i nlps);
          Metrics.Table.cell_i (List.length probes);
          Metrics.Table.cell_f pct;
        ])
    (sizes (scale = Exp_common.Quick));
  Metrics.Table.print table;
  Exp_common.note
    "paper (20x scale): rules 4.8k-359k, MLPS 6-9, ALPS 5.0-8.4, NLPS 15k-1.7M, TPC ~20%% of rules, PCT 2.9-2549s"
