(* Figure 8(b): virtual detection delay to localize a single random
   faulty flow entry, per topology and scheme. Expected shape:
   SDNProbe fastest (1-2.5 s in the paper), Randomized slightly above,
   ATPG several times slower (recomputation), Per-rule slowest. *)

module Report = Sdnprobe.Report

let delay_for scheme ~seed net truth ~fault_seed =
  let emulator, _ =
    Exp_common.emulator_with_faults ~fault_seed ~kind:Workloads.Drop_only
      ~fraction:0.0001 (* at least one entry *) net
  in
  let config = Sdnprobe.Config.make ~max_rounds:120 () in
  let report =
    Schemes.run scheme ~seed ~stop:(Sdnprobe.Runner.stop_when_flagged truth) ~config
      emulator
  in
  Report.time_to_detect_all report ~ground_truth:truth

let run ~scale =
  Exp_common.banner "Figure 8(b): delay to localize one faulty switch (seconds, virtual)";
  let nets = Workloads.suite ~count:(Exp_common.suite_count scale) ~seed:100 () in
  let table =
    Metrics.Table.create
      [ "topology"; "rules"; "sdnprobe"; "rand-sdnprobe"; "atpg"; "per-rule" ]
  in
  List.iter
    (fun (w : Workloads.sized_net) ->
      let net = w.Workloads.network in
      let fault_seed = 500 + w.Workloads.n_switches in
      (* Ground truth from a throwaway injection with the same seed. *)
      let _, truth =
        Exp_common.emulator_with_faults ~fault_seed ~kind:Workloads.Drop_only
          ~fraction:0.0001 net
      in
      let cell scheme =
        match delay_for scheme ~seed:7 net truth ~fault_seed with
        | Some t -> Metrics.Table.cell_f t
        | None -> "miss"
      in
      Metrics.Table.add_row table
        [
          w.Workloads.label;
          Metrics.Table.cell_i (Openflow.Network.n_entries net);
          cell Schemes.Sdnprobe;
          cell Schemes.Randomized_sdnprobe;
          cell Schemes.Atpg;
          cell Schemes.Per_rule;
        ])
    nets;
  Metrics.Table.print table;
  Exp_common.note
    "paper: SDNProbe 1-2.5s, Randomized 1-3.5s, ATPG up to 13.4s, Per-rule highest"
