type t = { len : int; cubes : Cube.t list }

(* Drop cubes subsumed by another cube in the list. Quadratic, but cube
   lists stay small in practice (match fields and their complements).
   Keeps first-insertion order (first_member and sample depend on it). *)
let subsume cubes =
  let rec loop kept = function
    | [] -> List.rev kept
    | c :: rest ->
        let subsumed l = List.exists (fun d -> Cube.subset c d) l in
        if subsumed kept || subsumed rest then loop kept rest
        else loop (c :: kept) rest
  in
  loop [] cubes

let empty len = { len; cubes = [] }

let full len = { len; cubes = [ Cube.wildcard len ] }

let of_cube c = { len = Cube.length c; cubes = [ c ] }

let of_cubes len cubes =
  List.iter
    (fun c ->
      if Cube.length c <> len then invalid_arg "Hs.of_cubes: length mismatch")
    cubes;
  { len; cubes = subsume cubes }

let cubes t = t.cubes

let length t = t.len

let cube_count t = List.length t.cubes

let is_empty t = t.cubes = []

let mem header t = List.exists (fun c -> Cube.member ~header c) t.cubes

let check a b name = if a.len <> b.len then invalid_arg (name ^ ": length mismatch")

let union a b =
  check a b "Hs.union";
  { len = a.len; cubes = subsume (a.cubes @ b.cubes) }

let inter_cube t c =
  { len = t.len; cubes = subsume (List.filter_map (fun d -> Cube.inter d c) t.cubes) }

let inter a b =
  check a b "Hs.inter";
  let pieces =
    List.concat_map
      (fun ca -> List.filter_map (fun cb -> Cube.inter ca cb) b.cubes)
      a.cubes
  in
  { len = a.len; cubes = subsume pieces }

(* Emptiness of an intersection without building it: the edge scans of
   the rule-graph build only ask whether out ∩ in is inhabited, and
   [inter] would allocate every piece plus a quadratic subsumption pass
   just to have the list thrown away. Subsumption never changes
   emptiness, so one non-disjoint cube pair settles the question — and
   [Cube.disjoint] is allocation-free, which makes the whole scan
   allocation-free (the planned cube arena for this path became
   unnecessary: nothing is allocated at all). *)
let inter_nonempty a b =
  check a b "Hs.inter_nonempty";
  List.exists
    (fun ca -> List.exists (fun cb -> not (Cube.disjoint ca cb)) b.cubes)
    a.cubes

let diff_cube t c =
  { len = t.len; cubes = subsume (List.concat_map (fun d -> Cube.diff d c) t.cubes) }

let diff a b =
  check a b "Hs.diff";
  List.fold_left diff_cube a b.cubes

(* Identity rewrites map every (interned) cube to itself; the list was
   already subsumption-reduced at construction, so skip re-reducing. *)
let apply_set_field ~set t =
  let mapped = List.map (Cube.apply_set_field ~set) t.cubes in
  if List.for_all2 ( == ) mapped t.cubes then t
  else { len = t.len; cubes = subsume mapped }

let inverse_set_field ~set t =
  let mapped = List.filter_map (Cube.inverse_set_field ~set) t.cubes in
  if List.length mapped = List.length t.cubes && List.for_all2 ( == ) mapped t.cubes
  then t
  else { len = t.len; cubes = subsume mapped }

let is_subset a b =
  a == b
  || begin
       check a b "Hs.is_subset";
       is_empty (diff a b)
     end

let equal_sets a b = a == b || (is_subset a b && is_subset b a)

(* Canonicalizing reduction. The operations above keep insertion order
   (cheap, and {!first_member}/{!sample} are defined on it); [reduce]
   instead produces a stable representation: cubes in {!Cube.compare}
   order, duplicates collapsed — an O(n log n) sort, with interning
   making the duplicate check physical — and subsumed cubes dropped.
   Idempotent, insensitive to the input's cube order, and preserves
   {!equal_sets}; meant for dedup keys, memo tables and goldens. *)
let reduce t = { t with cubes = subsume (List.sort_uniq Cube.compare t.cubes) }

(* Disjoint decomposition: subtract earlier cubes from later ones so
   sizes add up exactly. *)
let disjoint_cubes t =
  let rec loop seen acc = function
    | [] -> acc
    | c :: rest ->
        let pieces =
          List.fold_left (fun ps s -> List.concat_map (fun p -> Cube.diff p s) ps) [ c ] seen
        in
        loop (c :: seen) (List.rev_append pieces acc) rest
  in
  loop [] [] t.cubes

let size t = List.fold_left (fun acc c -> acc +. Cube.size c) 0. (disjoint_cubes t)

let sample rng t =
  match disjoint_cubes t with
  | [] -> None
  | pieces ->
      let total = List.fold_left (fun acc c -> acc +. Cube.size c) 0. pieces in
      let x = Sdn_util.Prng.float rng total in
      let rec pick acc = function
        | [] -> assert false
        | [ c ] -> c
        | c :: rest ->
            let acc = acc +. Cube.size c in
            if x < acc then c else pick acc rest
      in
      Some (Cube.sample rng (pick 0. pieces))

let first_member t =
  match t.cubes with [] -> None | c :: _ -> Some (Cube.first_member c)

let hull t =
  match t.cubes with
  | [] -> None
  | c :: rest -> Some (List.fold_left Cube.hull c rest)

let pp fmt t =
  match t.cubes with
  | [] -> Format.fprintf fmt "{}"
  | cs ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f " u ")
           Cube.pp)
        cs
