(** Header-space sets: finite unions of ternary {!Cube}s.

    This is the workhorse set type of the reproduction. A value denotes
    the union of its cubes; the representation is kept small by dropping
    cubes subsumed by others but is not canonical (two different cube
    lists may denote the same set — use {!is_subset} both ways or
    {!equal_sets} for semantic comparison).

    All operations require cubes of matching bit-length. *)

type t

val empty : int -> t
(** The empty space over headers of the given bit-length. *)

val full : int -> t
(** The full space [{x}^len]. *)

val of_cube : Cube.t -> t

val of_cubes : int -> Cube.t list -> t
(** [of_cubes len cubes]; all cubes must have length [len]. *)

val cubes : t -> Cube.t list
(** The (subsumption-reduced) cube list. *)

val length : t -> int
(** Header bit-length of the space. *)

val cube_count : t -> int

val is_empty : t -> bool

val mem : Cube.t -> t -> bool
(** [mem header hs]: membership of a {e concrete} header. *)

val union : t -> t -> t

val inter : t -> t -> t

val inter_nonempty : t -> t -> bool
(** [inter_nonempty a b] iff [inter a b] is non-empty, decided without
    allocating the intersection (one {!Cube.disjoint} check per cube
    pair, early exit). The rule-graph edge scans run on this. *)

val diff : t -> t -> t

val inter_cube : t -> Cube.t -> t

val diff_cube : t -> Cube.t -> t

val apply_set_field : set:Cube.t -> t -> t
(** Image of the space under the paper's transfer function [T(·, set)]. *)

val inverse_set_field : set:Cube.t -> t -> t
(** Preimage of the space under [T(·, set)]: headers whose rewrite lands
    in the space. *)

val is_subset : t -> t -> bool
(** [is_subset a b] iff the set denoted by [a] is contained in [b]'s. *)

val equal_sets : t -> t -> bool
(** Semantic equality. *)

val reduce : t -> t
(** Canonical form of the cube list: sorted by {!Cube.compare},
    duplicates collapsed (physical equality, thanks to cube interning),
    cubes subsumed by another cube dropped. Idempotent, insensitive to
    the order the space was assembled in, and {!equal_sets}-preserving.
    The other operations deliberately keep first-insertion order (it is
    what {!first_member} and {!sample} are defined on), so canonicalize
    only at comparison/memoization boundaries. *)

val disjoint_cubes : t -> Cube.t list
(** Decomposition into pairwise-disjoint cubes denoting the same set
    (later cubes minus all earlier ones), so cube sizes add up exactly;
    the basis of {!size} and {!sample}. *)

val size : t -> float
(** Number of concrete headers (inclusion–exclusion-free upper bound is
    avoided: computed exactly by disjoint decomposition). *)

val sample : Sdn_util.Prng.t -> t -> Cube.t option
(** Uniformly-random concrete header of the set ([None] when empty).
    Cubes are weighted by their size so sampling is uniform over
    headers, not over cubes. *)

val first_member : t -> Cube.t option
(** Deterministic concrete member ([None] when empty). *)

val hull : t -> Cube.t option
(** Smallest single cube containing the whole set ([None] when empty).
    Two spaces with {!Cube.disjoint} hulls have an empty intersection —
    the sound prefilter the rule-graph build uses to skip full
    {!inter} calls on the all-pairs edge scan. *)

val pp : Format.formatter -> t -> unit
