(** Ternary header cubes over the {0, 1, x} alphabet.

    A cube of length [L] describes a set of concrete [L]-bit headers: each
    bit position is either fixed to 0, fixed to 1, or a wildcard [x]
    matching both. Cubes are the atoms of Header Space Analysis
    (Kazemian et al., NSDI'12): flow-entry match fields, set fields and
    packet headers are all cubes, and every header-space set in this
    reproduction is a finite union of cubes (see {!Hs}).

    Bit numbering follows the paper: bit 0 is the leftmost (most
    significant) character of the string form, so [of_string "00101xxx"]
    has bit 0 = '0' and bit 7 = 'x'.

    The representation packs a cube into two bit arrays (a fixed-bit mask
    and a value), chunked into OCaml ints, so intersection and emptiness
    tests are word-parallel. Cubes are immutable and {e selectively
    hash-consed}: long-lived cubes built through {!of_bits} /
    {!of_string} / {!wildcard} (match fields, set fields, full spaces)
    are interned in a weak table, so structurally equal ones are a
    single physical object and {!equal} / {!subset} short-circuit on
    identity. Algebra results ({!inter}, {!diff}, {!apply_set_field},
    ...) are {e not} interned — intermediates are short-lived, and the
    table round-trip dominated the kernels (the cube.inter/64
    regression); {!equal} falls back to a structural comparison, so no
    correctness depends on identity. The intern table holds entries
    weakly (the GC reclaims unreferenced cubes) and is domain-safe:
    sharded mutex-guarded tables by default, or one table per domain
    with [SDNPROBE_INTERN=local] (see docs/PARALLEL.md for the
    tradeoff). *)

type t

type bit = Zero | One | Any
(** One ternary position. *)

val length : t -> int
(** Number of bit positions. *)

val wildcard : int -> t
(** [wildcard len] is the full space [{x}^len]. *)

val of_bits : bit array -> t
(** Build from an explicit ternary vector. *)

val get : t -> int -> bit
(** [get c k] is position [k]. Raises [Invalid_argument] out of range. *)

val set : t -> int -> bit -> t
(** [set c k b] is [c] with position [k] replaced (functional update). *)

val of_string : string -> t
(** Parse from a string of ['0'], ['1'], ['x'] / ['X'] / ['*'].
    Raises [Invalid_argument] on any other character. *)

val to_string : t -> string
(** Inverse of {!of_string}, using lowercase ['x']. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Structural equality (same length, same ternary vector). O(1) for
    interned cubes — physical equality decides. *)

val compare : t -> t -> int
(** Total order consistent with {!equal}. *)

val hash : t -> int
(** Chunk-fold hash over the whole bit representation. Unlike
    [Hashtbl.hash], it never truncates: cubes differing only in late
    chunks of a long header still spread across buckets. *)

val interned_count : unit -> int
(** Number of cubes currently alive in the intern table (weak count —
    shrinks under GC; under [SDNPROBE_INTERN=local], the calling
    domain's table only). Exposed for metrics and tests. *)

val is_concrete : t -> bool
(** True when no position is a wildcard. *)

val wildcard_count : t -> int
(** Number of [Any] positions. *)

val size : t -> float
(** Number of concrete headers in the cube, [2. ** wildcard_count]. *)

val inter : t -> t -> t option
(** Cube intersection: [None] iff some position is fixed to 0 in one
    and 1 in the other. Lengths must agree. *)

val subset : t -> t -> bool
(** [subset a b] iff every header in [a] is in [b]. *)

val disjoint : t -> t -> bool
(** [disjoint a b] iff [inter a b = None]. Allocation-free. *)

val hull : t -> t -> t
(** [hull a b] is the smallest cube containing both: a position is
    fixed iff both cubes fix it to the same value. Disjoint hulls imply
    disjoint cubes (the converse does not hold), which makes hulls a
    sound prefilter for intersection emptiness. *)

val diff : t -> t -> t list
(** [diff a b] is a disjoint list of cubes whose union is [a - b].
    At most [length a] cubes. *)

val apply_set_field : set:t -> t -> t
(** The paper's transfer function [T(h, s)]: position [k] of the result
    is [s\[k\]] when [s\[k\]] is fixed, else [h\[k\]]. The [set] cube's
    fixed bits overwrite; its wildcards leave the input unchanged. *)

val inverse_set_field : set:t -> t -> t option
(** Preimage of a cube under the transfer function: the cube of headers
    [h] with [T(h, set)] in the argument. [None] when [set]'s fixed bits
    contradict the target (empty preimage); otherwise the target with
    [set]'s fixed positions released to wildcards. *)

val sample : Sdn_util.Prng.t -> t -> t
(** Concrete member of the cube, wildcards drawn uniformly. *)

val first_member : t -> t
(** Deterministic concrete member: wildcards set to 0. *)

val nth_member : t -> int -> t
(** [nth_member c k] is the [k]-th concrete member of the cube in the
    order induced by filling the wildcard positions (last wildcard =
    least significant bit) with the binary encoding of [k]. Wraps
    around when [k >= size c]. [k] must be non-negative. *)

val member : header:t -> t -> bool
(** [member ~header c]: [header] must be concrete; true iff it lies in
    [c]. Raises [Invalid_argument] if [header] is not concrete. *)

val random : Sdn_util.Prng.t -> ?wildcard_prob:float -> int -> t
(** Random cube of the given length; each position is a wildcard with
    probability [wildcard_prob] (default 0.3), else a random fixed bit. *)
