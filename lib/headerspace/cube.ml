(* A cube is two packed bit arrays over int chunks:
   - [mask]: bit k set  <=>  position k is fixed (not a wildcard)
   - [value]: the fixed bit's value; invariant: value land (lnot mask) = 0
   Bit k of the cube lives in chunk [k / chunk_bits], bit [k mod chunk_bits]. *)

type bit = Zero | One | Any

let chunk_bits = 62

type t = { len : int; mask : int array; value : int array }

let nchunks len = (len + chunk_bits - 1) / chunk_bits

(* ------------------------------------------------------------------ *)
(* Hashing and hash-consing.

   [hash] folds over every chunk of both bit arrays. Delegating to
   [Hashtbl.hash] would silently stop after its default meaningful-word
   budget, collapsing long headers (>~ 10 words) into a handful of
   buckets — fatal for the intern table below. The mixer is a
   multiply/xor-shift round (splitmix-style) per chunk.

   Hash-consing is selective: the cubes that live long and get compared
   often — match fields, set fields, wildcards, anything built through
   [of_bits]/[of_string]/[wildcard] — are interned in a weak table, so
   they are one physical object and [equal]/[subset] short-circuit on
   identity. The header-space algebra ([inter], [diff],
   [apply_set_field], [inverse_set_field], [sample], ...) returns its
   results uninterned: intermediates are short-lived, rarely compared,
   and routing every one through the table made [inter] ~2.4x slower
   (the cube.inter/64 regression in BENCH_3.json) — [equal] keeps its
   structural fallback, so correctness never depends on identity.

   The table itself must be domain-safe (the planning stages run cube
   algebra from a domain pool, see docs/PARALLEL.md). Two backends,
   selected once at startup via SDNPROBE_INTERN:

   - "sharded" (default): 16 weak tables, each behind its own mutex,
     picked by cube hash — cross-domain sharing, one uncontended
     lock/unlock per intern;
   - "local": one weak table per domain in domain-local storage — no
     locks, but cubes interned on different domains are distinct
     physical objects (structural equality still holds, so outputs are
     unaffected; only [==] fast-path hit rates differ). *)

let hash c =
  let mix h x =
    let h = (h lxor x) * 0x9e3779b1 in
    h lxor (h lsr 29)
  in
  let h = ref (mix 0x50b07 c.len) in
  for i = 0 to Array.length c.mask - 1 do
    h := mix !h c.mask.(i);
    h := mix !h c.value.(i)
  done;
  !h land max_int

let structural_equal a b = a.len = b.len && a.mask = b.mask && a.value = b.value

module Intern = Weak.Make (struct
  type nonrec t = t

  let equal = structural_equal

  let hash = hash
end)

type intern_mode = Sharded | Domain_local

let intern_mode =
  match Sys.getenv_opt "SDNPROBE_INTERN" with
  | Some "local" -> Domain_local
  | Some "sharded" | Some "" | None -> Sharded
  | Some other ->
      Printf.eprintf "SDNPROBE_INTERN=%s ignored (want sharded|local)\n%!" other;
      Sharded

let n_shards = 16 (* power of two: shard index is a hash mask *)

type shard = { sm : Mutex.t; tbl : Intern.t }

(* sdncheck: allow D005 — each shard's table is only touched while
   holding that shard's [sm] mutex (see [intern]) *)
let shards =
  Array.init n_shards (fun _ -> { sm = Mutex.create (); tbl = Intern.create 1024 })

let local_table : Intern.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Intern.create 1024)

let intern c =
  match intern_mode with
  | Domain_local -> Intern.merge (Domain.DLS.get local_table) c
  | Sharded ->
      let s = shards.(hash c land (n_shards - 1)) in
      Mutex.lock s.sm;
      let c = Intern.merge s.tbl c in
      Mutex.unlock s.sm;
      c

let interned_count () =
  match intern_mode with
  | Domain_local -> Intern.count (Domain.DLS.get local_table)
  | Sharded ->
      Array.fold_left
        (fun acc s ->
          Mutex.lock s.sm;
          let n = Intern.count s.tbl in
          Mutex.unlock s.sm;
          acc + n)
        0 shards

(* Mask selecting the valid bits of the last chunk. *)
let tail_mask len =
  let r = len mod chunk_bits in
  if r = 0 then -1 lsr 1 (* all 62 bits *) else (1 lsl r) - 1

let length c = c.len

let wildcard len =
  if len <= 0 then invalid_arg "Cube.wildcard: non-positive length";
  intern { len; mask = Array.make (nchunks len) 0; value = Array.make (nchunks len) 0 }

let pos k = (k / chunk_bits, 1 lsl (k mod chunk_bits))

let get c k =
  if k < 0 || k >= c.len then invalid_arg "Cube.get: index out of range";
  let i, b = pos k in
  if c.mask.(i) land b = 0 then Any
  else if c.value.(i) land b = 0 then Zero
  else One

let set c k bit =
  if k < 0 || k >= c.len then invalid_arg "Cube.set: index out of range";
  let i, b = pos k in
  let mask = Array.copy c.mask and value = Array.copy c.value in
  (match bit with
  | Any ->
      mask.(i) <- mask.(i) land lnot b;
      value.(i) <- value.(i) land lnot b
  | Zero ->
      mask.(i) <- mask.(i) lor b;
      value.(i) <- value.(i) land lnot b
  | One ->
      mask.(i) <- mask.(i) lor b;
      value.(i) <- value.(i) lor b);
  { c with mask; value }

let of_bits bits =
  let len = Array.length bits in
  if len = 0 then invalid_arg "Cube.of_bits: empty";
  let mask = Array.make (nchunks len) 0 and value = Array.make (nchunks len) 0 in
  Array.iteri
    (fun k b ->
      let i, bm = pos k in
      match b with
      | Any -> ()
      | Zero -> mask.(i) <- mask.(i) lor bm
      | One ->
          mask.(i) <- mask.(i) lor bm;
          value.(i) <- value.(i) lor bm)
    bits;
  intern { len; mask; value }

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Cube.of_string: empty";
  of_bits
    (Array.init len (fun k ->
         match s.[k] with
         | '0' -> Zero
         | '1' -> One
         | 'x' | 'X' | '*' -> Any
         | c -> invalid_arg (Printf.sprintf "Cube.of_string: bad char %c" c)))

let to_string c =
  String.init c.len (fun k ->
      match get c k with Zero -> '0' | One -> '1' | Any -> 'x')

let pp fmt c = Format.pp_print_string fmt (to_string c)

let equal a b = a == b || structural_equal a b

let compare a b =
  if a == b then 0
  else
    let c = Stdlib.compare a.len b.len in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.mask b.mask in
      if c <> 0 then c else Stdlib.compare a.value b.value

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let fixed_count c = Array.fold_left (fun acc m -> acc + popcount m) 0 c.mask

let wildcard_count c = c.len - fixed_count c

let is_concrete c = wildcard_count c = 0

let size c = 2. ** float_of_int (wildcard_count c)

let check_lengths a b name =
  if a.len <> b.len then invalid_arg (name ^ ": length mismatch")

let inter a b =
  if a == b then Some a
  else begin
    check_lengths a b "Cube.inter";
    let n = Array.length a.mask in
    (* Conflict: bit fixed in both with differing values. *)
    let rec conflict i =
      if i >= n then false
      else
        let both = a.mask.(i) land b.mask.(i) in
        if (a.value.(i) lxor b.value.(i)) land both <> 0 then true
        else conflict (i + 1)
    in
    if conflict 0 then None
    else
      let mask = Array.init n (fun i -> a.mask.(i) lor b.mask.(i)) in
      let value = Array.init n (fun i -> a.value.(i) lor b.value.(i)) in
      Some { len = a.len; mask; value }
  end

let disjoint a b =
  a != b
  && begin
       check_lengths a b "Cube.disjoint";
       (* [inter a b = None] without materializing the intersection:
          a conflict is a bit fixed in both cubes with differing values. *)
       let n = Array.length a.mask in
       let rec conflict i =
         if i >= n then false
         else
           let both = a.mask.(i) land b.mask.(i) in
           if (a.value.(i) lxor b.value.(i)) land both <> 0 then true
           else conflict (i + 1)
       in
       conflict 0
     end

let hull a b =
  if a == b then a
  else begin
    check_lengths a b "Cube.hull";
    (* Smallest enclosing cube: a position stays fixed iff both cubes
       fix it to the same value. Uninterned like the other algebra
       results — hulls are throwaway prefilter material. *)
    let n = Array.length a.mask in
    let mask = Array.make n 0 and value = Array.make n 0 in
    for i = 0 to n - 1 do
      let m = a.mask.(i) land b.mask.(i) land lnot (a.value.(i) lxor b.value.(i)) in
      mask.(i) <- m;
      value.(i) <- a.value.(i) land m
    done;
    { len = a.len; mask; value }
  end

let subset a b =
  a == b
  || begin
       check_lengths a b "Cube.subset";
       (* a ⊆ b iff every fixed bit of b is fixed in a with the same value. *)
       let n = Array.length a.mask in
       let rec loop i =
         if i >= n then true
         else if b.mask.(i) land lnot a.mask.(i) <> 0 then false
         else if (a.value.(i) lxor b.value.(i)) land b.mask.(i) <> 0 then false
         else loop (i + 1)
       in
       loop 0
     end

(* a - b: standard HSA cube difference. For each bit where b is fixed
   and a is a wildcard, emit the running prefix with that bit flipped to
   the complement of b's value; bits processed left to right (ascending
   chunk, ascending bit), constraining earlier bits to b's value to keep
   the result disjoint. Bits fixed in both cubes agree (a ∩ b ≠ ∅ here)
   and emit nothing. Works chunk-parallel on the packed arrays. *)
let diff a b =
  if a == b then []
  else begin
    check_lengths a b "Cube.diff";
    match inter a b with
    | None -> [ a ]
    | Some _ ->
        if subset a b then []
        else begin
          let n = Array.length a.mask in
          let pmask = Array.copy a.mask and pvalue = Array.copy a.value in
          let acc = ref [] in
          for i = 0 to n - 1 do
            let bits = ref (b.mask.(i) land lnot a.mask.(i)) in
            while !bits <> 0 do
              let bit = !bits land - !bits in
              bits := !bits land (!bits - 1);
              (* Piece: prefix with this bit fixed to b's complement. *)
              let m = Array.copy pmask and v = Array.copy pvalue in
              m.(i) <- m.(i) lor bit;
              v.(i) <- v.(i) land lnot bit lor (lnot b.value.(i) land bit);
              acc := { len = a.len; mask = m; value = v } :: !acc;
              (* Constrain the prefix to b's value at this bit. *)
              pmask.(i) <- pmask.(i) lor bit;
              pvalue.(i) <- pvalue.(i) land lnot bit lor (b.value.(i) land bit)
            done
          done;
          List.rev !acc
        end
  end

let is_identity_set set = Array.for_all (fun m -> m = 0) set.mask

let apply_set_field ~set c =
  check_lengths set c "Cube.apply_set_field";
  if is_identity_set set then c (* no rewrite: T(h, x^len) = h *)
  else
  let n = Array.length c.mask in
  let mask = Array.init n (fun i -> c.mask.(i) lor set.mask.(i)) in
  let value =
    Array.init n (fun i ->
        (c.value.(i) land lnot set.mask.(i)) lor set.value.(i))
  in
  { len = c.len; mask; value }

let inverse_set_field ~set c =
  check_lengths set c "Cube.inverse_set_field";
  if is_identity_set set then Some c
  else
  let n = Array.length c.mask in
  (* Conflict: a bit fixed by [set] that the target fixes differently. *)
  let rec conflict i =
    if i >= n then false
    else
      let both = set.mask.(i) land c.mask.(i) in
      if (set.value.(i) lxor c.value.(i)) land both <> 0 then true
      else conflict (i + 1)
  in
  if conflict 0 then None
  else
    let mask = Array.init n (fun i -> c.mask.(i) land lnot set.mask.(i)) in
    let value = Array.init n (fun i -> c.value.(i) land lnot set.mask.(i)) in
    Some { len = c.len; mask; value }

let sample rng c =
  let n = Array.length c.mask in
  let mask = Array.make n 0 and value = Array.make n 0 in
  for i = 0 to n - 1 do
    let valid = if i = n - 1 then tail_mask c.len else -1 lsr 1 in
    let rand = Int64.to_int (Int64.shift_right_logical (Sdn_util.Prng.bits64 rng) 2) in
    mask.(i) <- valid;
    value.(i) <- (c.value.(i) lor (rand land lnot c.mask.(i))) land valid
  done;
  { len = c.len; mask; value }

let first_member c =
  let n = Array.length c.mask in
  let mask = Array.init n (fun i -> if i = n - 1 then tail_mask c.len else -1 lsr 1) in
  { len = c.len; mask; value = Array.copy c.value }

let nth_member c k =
  if k < 0 then invalid_arg "Cube.nth_member: negative index";
  (* Wildcard positions, last first, receive k's bits LSB first. *)
  let result = ref (first_member c) in
  let k = ref k in
  for pos = c.len - 1 downto 0 do
    if get c pos = Any && !k <> 0 then begin
      if !k land 1 = 1 then result := set !result pos One;
      k := !k lsr 1
    end
  done;
  !result

let member ~header c =
  if not (is_concrete header) then invalid_arg "Cube.member: header not concrete";
  subset header c

let random rng ?(wildcard_prob = 0.3) len =
  if len <= 0 then invalid_arg "Cube.random: non-positive length";
  of_bits
    (Array.init len (fun _ ->
         if Sdn_util.Prng.float rng 1.0 < wildcard_prob then Any
         else if Sdn_util.Prng.bool rng then One
         else Zero))
