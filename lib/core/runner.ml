module Emulator = Dataplane.Emulator
module Clock = Dataplane.Clock
module FE = Openflow.Flow_entry
module Network = Openflow.Network

type stop = detections:Report.detection list -> round:int -> time_s:float -> bool

let stop_never ~detections:_ ~round:_ ~time_s:_ = false

let stop_when_flagged switches ~detections ~round:_ ~time_s:_ =
  let flagged = List.map (fun (d : Report.detection) -> d.switch) detections in
  List.for_all (fun sw -> List.mem sw flagged) switches

let stop_after_s limit ~detections:_ ~round:_ ~time_s = time_s >= limit

let stop_any stops ~detections ~round ~time_s =
  List.exists (fun s -> s ~detections ~round ~time_s) stops

(* Mutable per-round accounting, flushed into a Report.round_stat. *)
type round_counters = {
  mutable sent : int;
  mutable retries : int;
  mutable lost_attempts : int;
  mutable failed_probes : int;
}

(* Send one probe with bounded retransmission: send -> (no echo within
   timeout) -> wait out the timeout, back off exponentially, resend —
   up to [max_retries] times before the probe is classified failed.
   With [max_retries = 0] this is exactly the seed detection loop's
   single send (no timeout accounting touches the clock). Virtual-time
   backends model the waits by advancing the clock; real-time backends
   actually waited inside [attempt], so the clock is left alone. *)
let send_probe ~config ~(backend : Backend.t) ~clock ~per_packet_us ~packets_sent
    ~counters (p : Probe.t) =
  let virtual_wait us = if not backend.Backend.real_time then Clock.advance_us clock us in
  let rec attempt n =
    virtual_wait per_packet_us;
    incr packets_sent;
    counters.sent <- counters.sent + 1;
    if backend.Backend.attempt ~config p then true
    else begin
      counters.lost_attempts <- counters.lost_attempts + 1;
      if n < config.Config.max_retries then begin
        virtual_wait (Config.probe_timeout_us config ~hops:(Probe.hop_count p));
        virtual_wait (Config.backoff_us config ~attempt:(n + 1));
        counters.retries <- counters.retries + 1;
        attempt (n + 1)
      end
      else false
    end
  in
  attempt 0

(* Batched round send for backends with real I/O: fire every pending
   probe as one batch (the backend overlaps the sends and the timeout
   waits), then re-batch only the failures, up to [max_retries]
   retransmission sweeps. Same classification and accounting as the
   serial path — just a different schedule. *)
let send_round_batched ~config ~send_batch ~packets_sent ~counters probes =
  let arr = Array.of_list probes in
  let n = Array.length arr in
  let passed = Array.make n false in
  let pending = ref (List.init n Fun.id) in
  let sweep = ref 0 in
  let continue = ref (n > 0) in
  while !continue do
    let idxs = !pending in
    let batch = List.map (fun i -> arr.(i)) idxs in
    let verdicts = send_batch ~config batch in
    let k = List.length idxs in
    packets_sent := !packets_sent + k;
    counters.sent <- counters.sent + k;
    let failures = ref [] in
    List.iteri
      (fun j i ->
        if verdicts.(j) then passed.(i) <- true
        else begin
          counters.lost_attempts <- counters.lost_attempts + 1;
          failures := i :: !failures
        end)
      idxs;
    let failures = List.rev !failures in
    if failures <> [] && !sweep < config.Config.max_retries then begin
      counters.retries <- counters.retries + List.length failures;
      incr sweep;
      pending := failures
    end
    else continue := false
  done;
  Array.to_list (Array.mapi (fun i p -> (p, passed.(i))) arr)

let engine ?(stop = stop_never) ?redraw ?region_of ?(name = "sdnprobe") ~config
    ~(backend : Backend.t) ~generation_s probes =
  let clock = backend.Backend.clock in
  let start_s = Clock.now_seconds clock in
  let net = backend.Backend.network in
  let virtual_wait us = if not backend.Backend.real_time then Clock.advance_us clock us in
  let suspicion = Suspicion.create ~threshold:config.Config.threshold in
  let next_id =
    ref (1 + List.fold_left (fun acc (p : Probe.t) -> max acc p.id) 0 probes)
  in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  let packets_sent = ref 0 in
  let retransmissions = ref 0 in
  let round_stats = ref [] in
  let round = ref 0 in
  let cycle = ref 0 in
  let active = ref probes in
  let finished = ref false in
  let per_packet_us = Config.serialization_us config ~packets:1 in
  while (not !finished) && !round < config.Config.max_rounds do
    incr round;
    let probes_this_round = !active in
    let counters = { sent = 0; retries = 0; lost_attempts = 0; failed_probes = 0 } in
    backend.Backend.install_traps probes_this_round;
    (* Send at the controller rate; each probe sees the clock at its own
       send instant (intermittent faults depend on it). Probe [i] of the
       serial schedule injects at [t0 + (i+1) * per_packet_us], so when
       nothing else moves the clock mid-round — no retransmission state
       machine and no order-dependent impairment draws — the sends are
       independent events at known instants and can run concurrently,
       each probe injecting at its own virtual timestamp. Outside that
       gate the serial loop below is the semantics; backends with real
       I/O supply [send_batch] instead and overlap the waits on the
       wire. *)
    let results =
      match backend.Backend.send_batch with
      | Some send_batch ->
          send_round_batched ~config ~send_batch ~packets_sent ~counters
            probes_this_round
      | None -> (
          match Config.pool config with
          | Some pool
            when backend.Backend.order_free ~config
                 && Sdn_parallel.Pool.domains pool > 1 ->
              let t0 = Clock.now_us clock in
              let arr = Array.of_list probes_this_round in
              let res =
                Sdn_parallel.Pool.map pool
                  (fun (i, p) ->
                    let now_us = t0 + ((i + 1) * per_packet_us) in
                    (p, backend.Backend.attempt ~config ~now_us p))
                  (Array.mapi (fun i p -> (i, p)) arr)
              in
              let n = Array.length arr in
              Clock.advance_us clock (n * per_packet_us);
              packets_sent := !packets_sent + n;
              counters.sent <- counters.sent + n;
              Array.iter
                (fun (_, passed) ->
                  if not passed then
                    counters.lost_attempts <- counters.lost_attempts + 1)
                res;
              Array.to_list res
          | _ ->
              List.map
                (fun p ->
                  ( p,
                    send_probe ~config ~backend ~clock ~per_packet_us ~packets_sent
                      ~counters p ))
                probes_this_round)
    in
    (* Flight time of the slowest probe, plus controller processing. *)
    let max_hops =
      List.fold_left (fun acc (p : Probe.t) -> max acc (Probe.hop_count p)) 0
        probes_this_round
    in
    virtual_wait (max_hops * config.Config.per_hop_latency_us);
    virtual_wait config.Config.per_round_overhead_us;
    backend.Backend.remove_traps probes_this_round;
    let now_s = Clock.now_seconds clock in
    (* Algorithm 2 lines 5-14, extended with suspicion decay: a path
       that passes (re-)testing drains the suspicion its rules may have
       accumulated from transient environment noise. *)
    let follow_up = ref [] in
    List.iter
      (fun ((p : Probe.t), passed) ->
        if passed then begin
          if config.Config.suspicion_decay > 0 then
            List.iter
              (fun rule ->
                Suspicion.decay_rule suspicion rule
                  ~amount:config.Config.suspicion_decay)
              p.rules
        end
        else begin
          counters.failed_probes <- counters.failed_probes + 1;
          List.iter (Suspicion.bump_rule suspicion) p.rules;
          if List.length p.rules > 1 then
            match Probe.slice ?region_of net ~fresh_id p with
            | Some (a, b) -> follow_up := a :: b :: !follow_up
            | None ->
                (* Uncuttable multi-rule path (goto chain): treat as a
                   unit and re-test. *)
                follow_up := p :: !follow_up
          else begin
            let rule = List.hd p.rules in
            let switch = (Network.entry net rule).FE.switch in
            if Suspicion.exceeds_threshold suspicion rule then
              Suspicion.flag suspicion ~switch ~time_s:now_s ~round:!round;
            (* An identified switch needs no further probing ("requires
               further manual inspection", §VI); retiring its probes
               lets the detection cycle restart — essential for the
               randomized variant, whose fresh paths come from cycle
               boundaries. *)
            if not (Suspicion.is_flagged suspicion switch) then
              follow_up := p :: !follow_up
          end
        end)
      results;
    (* New cycle when no suspected paths remain. *)
    (if !follow_up = [] then begin
       incr cycle;
       match redraw with
       | Some f -> active := f ~cycle:!cycle
       | None -> active := probes
     end
     else active := !follow_up);
    retransmissions := !retransmissions + counters.retries;
    round_stats :=
      {
        Report.round = !round;
        sent = counters.sent;
        retries = counters.retries;
        lost_attempts = counters.lost_attempts;
        failed_probes = counters.failed_probes;
      }
      :: !round_stats;
    let detections =
      List.map
        (fun (switch, time_s, round) -> { Report.switch; time_s; round })
        (Suspicion.detections suspicion)
    in
    if stop ~detections ~round:!round ~time_s:now_s then finished := true
  done;
  {
    Report.scheme = name;
    plan_size = List.length probes;
    generation_s;
    detections =
      List.map
        (fun (switch, time_s, round) -> { Report.switch; time_s; round })
        (Suspicion.detections suspicion);
    packets_sent = !packets_sent;
    bytes_sent = !packets_sent * config.Config.probe_size_bytes;
    rounds = !round;
    duration_s = Clock.now_seconds clock -. start_s;
    suspicion_ranking = Suspicion.rule_levels suspicion;
    retransmissions = !retransmissions;
    round_stats = List.rev !round_stats;
    patch_events = [];
  }

let execute_on ?stop ?name ~config ~(backend : Backend.t) (plan : Plan.t) =
  let pool = Config.pool config in
  let name, redraw =
    match (name, plan.Plan.mode) with
    | Some n, Plan.Static -> (n, None)
    | None, Plan.Static -> ("sdnprobe", None)
    | name, Plan.Randomized rng ->
        ( Option.value ~default:"randomized-sdnprobe" name,
          Some (fun ~cycle:_ -> (Plan.redraw ?pool plan rng).Plan.probes) )
  in
  engine ?stop ?redraw ~name ~config ~backend ~generation_s:plan.Plan.generation_s
    plan.Plan.probes

let execute ?stop ?name ~config ~emulator (plan : Plan.t) =
  execute_on ?stop ?name ~config ~backend:(Backend.of_emulator emulator) plan

let execute_probes ?stop ?name ?region_of ~config ~(backend : Backend.t)
    ~generation_s probes =
  engine ?stop ?region_of ?name ~config ~backend ~generation_s probes

let run ?stop ?redraw ?name ~config ~emulator ~generation_s probes =
  engine ?stop ?redraw ?name ~config ~backend:(Backend.of_emulator emulator)
    ~generation_s probes

let detect ?stop ?(mode = Plan.Static) ~config emulator =
  (* The shim below is itself deprecated; it may keep calling the
     deprecated batch generator. *)
  let[@alert "-deprecated"] plan =
    Plan.generate ?pool:(Config.pool config) ~mode (Emulator.network emulator)
  in
  execute ?stop ~config ~emulator plan
