module Emulator = Dataplane.Emulator
module Clock = Dataplane.Clock
module FE = Openflow.Flow_entry
module Network = Openflow.Network

type stop = detections:Report.detection list -> round:int -> time_s:float -> bool

let stop_never ~detections:_ ~round:_ ~time_s:_ = false

let stop_when_flagged switches ~detections ~round:_ ~time_s:_ =
  let flagged = List.map (fun (d : Report.detection) -> d.switch) detections in
  List.for_all (fun sw -> List.mem sw flagged) switches

let stop_after_s limit ~detections:_ ~round:_ ~time_s = time_s >= limit

let stop_any stops ~detections ~round ~time_s =
  List.exists (fun s -> s ~detections ~round ~time_s) stops

let install_traps emu probes =
  List.iter
    (fun (p : Probe.t) ->
      Emulator.install_trap emu ~probe:p.id ~switch:p.terminal_switch
        ~rule:p.terminal_rule ~header:p.expected_header)
    probes

let remove_traps emu probes =
  List.iter (fun (p : Probe.t) -> Emulator.remove_probe_traps emu ~probe:p.id) probes

(* Mutable per-round accounting, flushed into a Report.round_stat. *)
type round_counters = {
  mutable sent : int;
  mutable retries : int;
  mutable lost_attempts : int;
  mutable failed_probes : int;
}

(* One attempt: inject and classify against the probe's own trap. A
   probe passes iff its trap captured it AND the echo arrived within
   the per-probe timeout (nominal flight time plus any impairment
   jitter the packet accumulated). *)
let attempt_passes ?now_us emu ~config (p : Probe.t) =
  let result = Emulator.inject ?now_us emu ~at:p.inject_switch p.header in
  let returned =
    match result.Emulator.outcome with
    | Emulator.Returned { probe; _ } -> probe = p.id
    | Emulator.Delivered _ | Emulator.Lost _ -> false
  in
  let hops = Probe.hop_count p in
  let flight_us =
    (hops * config.Config.per_hop_latency_us) + result.Emulator.jitter_us
  in
  returned && flight_us <= Config.probe_timeout_us config ~hops

(* Send one probe with bounded retransmission: send -> (no echo within
   timeout) -> wait out the timeout, back off exponentially, resend —
   up to [max_retries] times before the probe is classified failed.
   With [max_retries = 0] this is exactly the seed detection loop's
   single send (no timeout accounting touches the clock). *)
let send_probe ~config ~emulator ~clock ~per_packet_us ~packets_sent ~counters
    (p : Probe.t) =
  let rec attempt n =
    Clock.advance_us clock per_packet_us;
    incr packets_sent;
    counters.sent <- counters.sent + 1;
    if attempt_passes emulator ~config p then true
    else begin
      counters.lost_attempts <- counters.lost_attempts + 1;
      if n < config.Config.max_retries then begin
        Clock.advance_us clock
          (Config.probe_timeout_us config ~hops:(Probe.hop_count p));
        Clock.advance_us clock (Config.backoff_us config ~attempt:(n + 1));
        counters.retries <- counters.retries + 1;
        attempt (n + 1)
      end
      else false
    end
  in
  attempt 0

let engine ?(stop = stop_never) ?redraw ?(name = "sdnprobe") ~config ~emulator
    ~generation_s probes =
  let clock = Emulator.clock emulator in
  let start_s = Clock.now_seconds clock in
  let net = Emulator.network emulator in
  let suspicion = Suspicion.create ~threshold:config.Config.threshold in
  let next_id =
    ref (1 + List.fold_left (fun acc (p : Probe.t) -> max acc p.id) 0 probes)
  in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  let packets_sent = ref 0 in
  let retransmissions = ref 0 in
  let round_stats = ref [] in
  let round = ref 0 in
  let cycle = ref 0 in
  let active = ref probes in
  let finished = ref false in
  let per_packet_us = Config.serialization_us config ~packets:1 in
  while (not !finished) && !round < config.Config.max_rounds do
    incr round;
    let probes_this_round = !active in
    let counters = { sent = 0; retries = 0; lost_attempts = 0; failed_probes = 0 } in
    install_traps emulator probes_this_round;
    (* Send at the controller rate; each probe sees the clock at its own
       send instant (intermittent faults depend on it). Probe [i] of the
       serial schedule injects at [t0 + (i+1) * per_packet_us], so when
       nothing else moves the clock mid-round — no retransmission state
       machine and no order-dependent impairment draws — the sends are
       independent events at known instants and can run concurrently,
       each probe injecting at its own virtual timestamp. Outside that
       gate the serial loop below is the semantics. *)
    let order_free =
      config.Config.max_retries = 0
      &&
      match Emulator.impairment emulator with
      | None -> true
      | Some imp -> Dataplane.Impairment.order_independent imp
    in
    let results =
      match Config.pool config with
      | Some pool when order_free && Sdn_parallel.Pool.domains pool > 1 ->
          let t0 = Clock.now_us clock in
          let arr = Array.of_list probes_this_round in
          let res =
            Sdn_parallel.Pool.map pool
              (fun (i, p) ->
                let now_us = t0 + ((i + 1) * per_packet_us) in
                (p, attempt_passes ~now_us emulator ~config p))
              (Array.mapi (fun i p -> (i, p)) arr)
          in
          let n = Array.length arr in
          Clock.advance_us clock (n * per_packet_us);
          packets_sent := !packets_sent + n;
          counters.sent <- counters.sent + n;
          Array.iter
            (fun (_, passed) ->
              if not passed then counters.lost_attempts <- counters.lost_attempts + 1)
            res;
          Array.to_list res
      | _ ->
          List.map
            (fun p ->
              ( p,
                send_probe ~config ~emulator ~clock ~per_packet_us ~packets_sent
                  ~counters p ))
            probes_this_round
    in
    (* Flight time of the slowest probe, plus controller processing. *)
    let max_hops =
      List.fold_left (fun acc (p : Probe.t) -> max acc (Probe.hop_count p)) 0
        probes_this_round
    in
    Clock.advance_us clock (max_hops * config.Config.per_hop_latency_us);
    Clock.advance_us clock config.Config.per_round_overhead_us;
    remove_traps emulator probes_this_round;
    let now_s = Clock.now_seconds clock in
    (* Algorithm 2 lines 5-14, extended with suspicion decay: a path
       that passes (re-)testing drains the suspicion its rules may have
       accumulated from transient environment noise. *)
    let follow_up = ref [] in
    List.iter
      (fun ((p : Probe.t), passed) ->
        if passed then begin
          if config.Config.suspicion_decay > 0 then
            List.iter
              (fun rule ->
                Suspicion.decay_rule suspicion rule
                  ~amount:config.Config.suspicion_decay)
              p.rules
        end
        else begin
          counters.failed_probes <- counters.failed_probes + 1;
          List.iter (Suspicion.bump_rule suspicion) p.rules;
          if List.length p.rules > 1 then
            match Probe.slice net ~fresh_id p with
            | Some (a, b) -> follow_up := a :: b :: !follow_up
            | None ->
                (* Uncuttable multi-rule path (goto chain): treat as a
                   unit and re-test. *)
                follow_up := p :: !follow_up
          else begin
            let rule = List.hd p.rules in
            let switch = (Network.entry net rule).FE.switch in
            if Suspicion.exceeds_threshold suspicion rule then
              Suspicion.flag suspicion ~switch ~time_s:now_s ~round:!round;
            (* An identified switch needs no further probing ("requires
               further manual inspection", §VI); retiring its probes
               lets the detection cycle restart — essential for the
               randomized variant, whose fresh paths come from cycle
               boundaries. *)
            if not (Suspicion.is_flagged suspicion switch) then
              follow_up := p :: !follow_up
          end
        end)
      results;
    (* New cycle when no suspected paths remain. *)
    (if !follow_up = [] then begin
       incr cycle;
       match redraw with
       | Some f -> active := f ~cycle:!cycle
       | None -> active := probes
     end
     else active := !follow_up);
    retransmissions := !retransmissions + counters.retries;
    round_stats :=
      {
        Report.round = !round;
        sent = counters.sent;
        retries = counters.retries;
        lost_attempts = counters.lost_attempts;
        failed_probes = counters.failed_probes;
      }
      :: !round_stats;
    let detections =
      List.map
        (fun (switch, time_s, round) -> { Report.switch; time_s; round })
        (Suspicion.detections suspicion)
    in
    if stop ~detections ~round:!round ~time_s:now_s then finished := true
  done;
  {
    Report.scheme = name;
    plan_size = List.length probes;
    generation_s;
    detections =
      List.map
        (fun (switch, time_s, round) -> { Report.switch; time_s; round })
        (Suspicion.detections suspicion);
    packets_sent = !packets_sent;
    bytes_sent = !packets_sent * config.Config.probe_size_bytes;
    rounds = !round;
    duration_s = Clock.now_seconds clock -. start_s;
    suspicion_ranking = Suspicion.rule_levels suspicion;
    retransmissions = !retransmissions;
    round_stats = List.rev !round_stats;
    patch_events = [];
  }

let execute ?stop ?name ~config ~emulator (plan : Plan.t) =
  let pool = Config.pool config in
  let name, redraw =
    match (name, plan.Plan.mode) with
    | Some n, Plan.Static -> (n, None)
    | None, Plan.Static -> ("sdnprobe", None)
    | name, Plan.Randomized rng ->
        ( Option.value ~default:"randomized-sdnprobe" name,
          Some (fun ~cycle:_ -> (Plan.redraw ?pool plan rng).Plan.probes) )
  in
  engine ?stop ?redraw ~name ~config ~emulator ~generation_s:plan.Plan.generation_s
    plan.Plan.probes

let run ?stop ?redraw ?name ~config ~emulator ~generation_s probes =
  engine ?stop ?redraw ?name ~config ~emulator ~generation_s probes

let detect ?stop ?(mode = Plan.Static) ~config emulator =
  (* The shim below is itself deprecated; it may keep calling the
     deprecated batch generator. *)
  let[@alert "-deprecated"] plan =
    Plan.generate ?pool:(Config.pool config) ~mode (Emulator.network emulator)
  in
  execute ?stop ~config ~emulator plan
