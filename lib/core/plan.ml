module RG = Rulegraph.Rule_graph
module FE = Openflow.Flow_entry

type mode = Static | Randomized of Sdn_util.Prng.t

type t = {
  network : Openflow.Network.t;
  rulegraph : RG.t;
  cover : Mlpc.Cover.t;
  probes : Probe.t list;
  generation_s : float;
  mode : mode;
}

let probes_of_assignment net rg assigned =
  List.mapi
    (fun i ((p : Mlpc.Cover.path), header) ->
      let rules = List.map (fun v -> (RG.vertex_entry rg v).FE.id) p.Mlpc.Cover.rules in
      Probe.make net ~id:i ~rules ~header)
    assigned

let of_cover ?pool net rg ~policy cover =
  probes_of_assignment net rg (Mlpc.Headers.assign ?pool policy cover)

let generate ?pool ?(mode = Static) network =
  let t0 = Sdn_util.Mono.now_s () in
  let rulegraph = RG.build network in
  let cover, policy =
    match mode with
    | Static -> (Mlpc.Legal_matching.solve ?pool rulegraph, Mlpc.Headers.Sat_unique)
    | Randomized rng ->
        (Mlpc.Legal_matching.randomized ?pool rng rulegraph, Mlpc.Headers.Random rng)
  in
  let probes = of_cover ?pool network rulegraph ~policy cover in
  { network; rulegraph; cover; probes; generation_s = Sdn_util.Mono.now_s () -. t0; mode }

let redraw ?pool t rng =
  let t0 = Sdn_util.Mono.now_s () in
  let cover = Mlpc.Legal_matching.randomized ?pool rng t.rulegraph in
  let probes =
    of_cover ?pool t.network t.rulegraph ~policy:(Mlpc.Headers.Random rng) cover
  in
  {
    t with
    cover;
    probes;
    generation_s = Sdn_util.Mono.now_s () -. t0;
    mode = Randomized rng;
  }

let size t = List.length t.probes

type patch = {
  edits : Sdn_util.Edits.t;
  added : Probe.t list;
  removed : Probe.t list;
  rewritten : (Probe.t * Probe.t) list;
}

let patch_size p =
  List.length p.added + List.length p.removed + List.length p.rewritten

let patch_is_empty p = patch_size p = 0

let diff ~edits ~before ~after =
  (* Multiset-match probes on their rule sequence: probe ids are cover
     indices and shift wholesale on every edit, so identity must come
     from the tested path itself. A before-probe and an after-probe on
     the same rule sequence are the same logical probe — surviving if
     the header is unchanged, rewritten otherwise. *)
  let pending : (int list, Probe.t Queue.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (p : Probe.t) ->
      let q =
        match Hashtbl.find_opt pending p.Probe.rules with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.add pending p.Probe.rules q;
            q
      in
      Queue.add p q)
    before;
  let added = ref [] and rewritten = ref [] in
  List.iter
    (fun (p : Probe.t) ->
      match Hashtbl.find_opt pending p.Probe.rules with
      | Some q when not (Queue.is_empty q) ->
          let old = Queue.pop q in
          if not (Hspace.Header.equal old.Probe.header p.Probe.header) then
            rewritten := (old, p) :: !rewritten
      | _ -> added := p :: !added)
    after;
  let removed =
    Hashtbl.fold
      (fun _ q acc -> List.rev_append (List.of_seq (Queue.to_seq q)) acc)
      pending []
    |> List.sort (fun (a : Probe.t) b -> compare a.Probe.id b.Probe.id)
  in
  {
    edits;
    added = List.rev !added;
    removed;
    rewritten = List.rev !rewritten;
  }

let patch_to_json p =
  let module J = Sdn_util.Json in
  J.Obj
    [
      ("edits", Sdn_util.Edits.to_json [ p.edits ]);
      ("added", J.List (List.map Probe.to_json p.added));
      ("removed", J.List (List.map Probe.to_json p.removed));
      ( "rewritten",
        J.List
          (List.map
             (fun (o, n) ->
               J.Obj [ ("before", Probe.to_json o); ("after", Probe.to_json n) ])
             p.rewritten) );
    ]
