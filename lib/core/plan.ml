module RG = Rulegraph.Rule_graph
module FE = Openflow.Flow_entry

type mode = Static | Randomized of Sdn_util.Prng.t

type t = {
  network : Openflow.Network.t;
  rulegraph : RG.t;
  cover : Mlpc.Cover.t;
  probes : Probe.t list;
  generation_s : float;
  mode : mode;
}

let of_cover ?pool net rg ~policy cover =
  let assigned = Mlpc.Headers.assign ?pool policy cover in
  List.mapi
    (fun i ((p : Mlpc.Cover.path), header) ->
      let rules = List.map (fun v -> (RG.vertex_entry rg v).FE.id) p.Mlpc.Cover.rules in
      Probe.make net ~id:i ~rules ~header)
    assigned

let generate ?pool ?(mode = Static) network =
  let t0 = Unix.gettimeofday () in
  let rulegraph = RG.build network in
  let cover, policy =
    match mode with
    | Static -> (Mlpc.Legal_matching.solve ?pool rulegraph, Mlpc.Headers.Sat_unique)
    | Randomized rng ->
        (Mlpc.Legal_matching.randomized ?pool rng rulegraph, Mlpc.Headers.Random rng)
  in
  let probes = of_cover ?pool network rulegraph ~policy cover in
  { network; rulegraph; cover; probes; generation_s = Unix.gettimeofday () -. t0; mode }

let redraw ?pool t rng =
  let t0 = Unix.gettimeofday () in
  let cover = Mlpc.Legal_matching.randomized ?pool rng t.rulegraph in
  let probes =
    of_cover ?pool t.network t.rulegraph ~policy:(Mlpc.Headers.Random rng) cover
  in
  {
    t with
    cover;
    probes;
    generation_s = Unix.gettimeofday () -. t0;
    mode = Randomized rng;
  }

let size t = List.length t.probes
