module RG = Rulegraph.Rule_graph
module FE = Openflow.Flow_entry

type mode = Static | Randomized of Sdn_util.Prng.t

type t = {
  network : Openflow.Network.t;
  rulegraph : RG.t;
  cover : Mlpc.Cover.t;
  probes : Probe.t list;
  generation_s : float;
  mode : mode;
}

let of_cover net rg ~policy cover =
  let assigned = Mlpc.Headers.assign policy cover in
  List.mapi
    (fun i ((p : Mlpc.Cover.path), header) ->
      let rules = List.map (fun v -> (RG.vertex_entry rg v).FE.id) p.Mlpc.Cover.rules in
      Probe.make net ~id:i ~rules ~header)
    assigned

let generate ?(mode = Static) network =
  let t0 = Unix.gettimeofday () in
  let rulegraph = RG.build network in
  let cover, policy =
    match mode with
    | Static -> (Mlpc.Legal_matching.solve rulegraph, Mlpc.Headers.Sat_unique)
    | Randomized rng ->
        (Mlpc.Legal_matching.randomized rng rulegraph, Mlpc.Headers.Random rng)
  in
  let probes = of_cover network rulegraph ~policy cover in
  { network; rulegraph; cover; probes; generation_s = Unix.gettimeofday () -. t0; mode }

let redraw t rng =
  let t0 = Unix.gettimeofday () in
  let cover = Mlpc.Legal_matching.randomized rng t.rulegraph in
  let probes = of_cover t.network t.rulegraph ~policy:(Mlpc.Headers.Random rng) cover in
  {
    t with
    cover;
    probes;
    generation_s = Unix.gettimeofday () -. t0;
    mode = Randomized rng;
  }

let size t = List.length t.probes
