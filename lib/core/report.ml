module Json = Sdn_util.Json

type detection = { switch : int; time_s : float; round : int }

type round_stat = {
  round : int;
  sent : int;
  retries : int;
  lost_attempts : int;
  failed_probes : int;
}

type patch_event = {
  batch : int;
  added : int;
  removed : int;
  rewritten : int;
  plan_size_after : int;
  apply_s : float;
}

type t = {
  scheme : string;
  plan_size : int;
  generation_s : float;
  detections : detection list;
  packets_sent : int;
  bytes_sent : int;
  rounds : int;
  duration_s : float;
  suspicion_ranking : (int * int) list;
  retransmissions : int;
  round_stats : round_stat list;
  patch_events : patch_event list;
}

let patch_event_of_patch ~batch ~plan_size_after ~apply_s (p : Plan.patch) =
  {
    batch;
    added = List.length p.Plan.added;
    removed = List.length p.Plan.removed;
    rewritten = List.length p.Plan.rewritten;
    plan_size_after;
    apply_s;
  }

let flagged_switches t = List.sort compare (List.map (fun d -> d.switch) t.detections)

let detection_time t switch =
  List.find_opt (fun d -> d.switch = switch) t.detections
  |> Option.map (fun d -> d.time_s)

let time_to_detect_all t ~ground_truth =
  let times = List.map (detection_time t) ground_truth in
  if List.exists Option.is_none times then None
  else Some (List.fold_left (fun acc o -> max acc (Option.get o)) 0. times)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s: %d probes (gen %.3fs), %d rounds, %.2fs virtual, %d pkts/%d bytes%s, flagged: %a@]"
    t.scheme t.plan_size t.generation_s t.rounds t.duration_s t.packets_sent
    t.bytes_sent
    (if t.retransmissions > 0 then Printf.sprintf " (%d retx)" t.retransmissions else "")
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       Format.pp_print_int)
    (flagged_switches t)

(* ------------------------------------------------------------------ *)
(* Versioned JSON *)

let schema_version = 2

let patch_event_to_json (e : patch_event) =
  Json.Obj
    [
      ("batch", Json.Int e.batch);
      ("added", Json.Int e.added);
      ("removed", Json.Int e.removed);
      ("rewritten", Json.Int e.rewritten);
      ("plan_size_after", Json.Int e.plan_size_after);
      ("apply_s", Json.Float e.apply_s);
    ]

let to_json t =
  let patch_event = patch_event_to_json in
  let detection d =
    Json.Obj
      [
        ("switch", Json.Int d.switch);
        ("time_s", Json.Float d.time_s);
        ("round", Json.Int d.round);
      ]
  in
  let round_stat (r : round_stat) =
    Json.Obj
      [
        ("round", Json.Int r.round);
        ("sent", Json.Int r.sent);
        ("retries", Json.Int r.retries);
        ("lost_attempts", Json.Int r.lost_attempts);
        ("failed_probes", Json.Int r.failed_probes);
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("schema_version", Json.Int schema_version);
         ("scheme", Json.Str t.scheme);
         ("plan_size", Json.Int t.plan_size);
         ("generation_s", Json.Float t.generation_s);
         ("detections", Json.List (List.map detection t.detections));
         ("packets_sent", Json.Int t.packets_sent);
         ("bytes_sent", Json.Int t.bytes_sent);
         ("rounds", Json.Int t.rounds);
         ("duration_s", Json.Float t.duration_s);
         ( "suspicion_ranking",
           Json.List
             (List.map
                (fun (rule, level) -> Json.List [ Json.Int rule; Json.Int level ])
                t.suspicion_ranking) );
         ("retransmissions", Json.Int t.retransmissions);
         ("round_stats", Json.List (List.map round_stat t.round_stats));
         ("patch_events", Json.List (List.map patch_event t.patch_events));
       ])

let ( let* ) o f = match o with Some x -> f x | None -> Error "missing or mistyped field"

let require_all f xs =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> ( match f x with Ok y -> loop (y :: acc) rest | Error _ as e -> e)
  in
  loop [] xs

let detection_of_json v =
  let* switch = Json.obj_int "switch" v in
  let* time_s = Json.obj_float "time_s" v in
  let* round = Json.obj_int "round" v in
  Ok { switch; time_s; round }

let round_stat_of_json v =
  let* round = Json.obj_int "round" v in
  let* sent = Json.obj_int "sent" v in
  let* retries = Json.obj_int "retries" v in
  let* lost_attempts = Json.obj_int "lost_attempts" v in
  let* failed_probes = Json.obj_int "failed_probes" v in
  Ok { round; sent; retries; lost_attempts; failed_probes }

let rank_of_json v =
  match v with
  | Json.List [ rule; level ] -> (
      match (Json.to_int rule, Json.to_int level) with
      | Some r, Some l -> Ok (r, l)
      | _ -> Error "malformed suspicion_ranking entry")
  | _ -> Error "malformed suspicion_ranking entry"

let patch_event_of_json v =
  let* batch = Json.obj_int "batch" v in
  let* added = Json.obj_int "added" v in
  let* removed = Json.obj_int "removed" v in
  let* rewritten = Json.obj_int "rewritten" v in
  let* plan_size_after = Json.obj_int "plan_size_after" v in
  let* apply_s = Json.obj_float "apply_s" v in
  Ok { batch; added; removed; rewritten; plan_size_after; apply_s }

let of_json s =
  match Json.of_string s with
  | Error msg -> Error msg
  | Ok v -> (
      match Json.obj_int "schema_version" v with
      | None -> Error "missing schema_version"
      | Some version when version <> 1 && version <> schema_version ->
          Error
            (Printf.sprintf "unsupported report schema_version %d (expected 1..%d)"
               version schema_version)
      | Some version ->
          let* scheme = Json.obj_str "scheme" v in
          let* plan_size = Json.obj_int "plan_size" v in
          let* generation_s = Json.obj_float "generation_s" v in
          let* detections_v = Json.obj_list "detections" v in
          let* packets_sent = Json.obj_int "packets_sent" v in
          let* bytes_sent = Json.obj_int "bytes_sent" v in
          let* rounds = Json.obj_int "rounds" v in
          let* duration_s = Json.obj_float "duration_s" v in
          let* ranking_v = Json.obj_list "suspicion_ranking" v in
          let* retransmissions = Json.obj_int "retransmissions" v in
          let* round_stats_v = Json.obj_list "round_stats" v in
          (* [patch_events] arrived with v2; a v1 document simply has
             none. *)
          let* patch_events_v =
            if version = 1 then Some [] else Json.obj_list "patch_events" v
          in
          Result.bind (require_all detection_of_json detections_v) @@ fun detections ->
          Result.bind (require_all rank_of_json ranking_v) @@ fun suspicion_ranking ->
          Result.bind (require_all round_stat_of_json round_stats_v)
          @@ fun round_stats ->
          Result.bind (require_all patch_event_of_json patch_events_v)
          @@ fun patch_events ->
          Ok
            {
              scheme;
              plan_size;
              generation_s;
              detections;
              packets_sent;
              bytes_sent;
              rounds;
              duration_s;
              suspicion_ranking;
              retransmissions;
              round_stats;
              patch_events;
            })
