(** Outcome of one detection run, common to SDNProbe and the baseline
    schemes so the evaluation harness can tabulate them uniformly. *)

type detection = { switch : int; time_s : float; round : int }

type round_stat = {
  round : int;  (** 1-based round number *)
  sent : int;  (** probe injections this round, retransmissions included *)
  retries : int;  (** retransmissions this round *)
  lost_attempts : int;
      (** attempts with no (timely) echo — real faults and environment
          losses alike, as the controller observes them *)
  failed_probes : int;
      (** probes classified failed after exhausting retransmissions *)
}

type patch_event = {
  batch : int;  (** 1-based batch number within the run *)
  added : int;
  removed : int;
  rewritten : int;  (** probe counts of the batch's {!Plan.patch} *)
  plan_size_after : int;  (** plan size once the batch was absorbed *)
  apply_s : float;  (** wall-clock cost of the incremental re-plan *)
}
(** One incremental re-plan absorbed during the run ([sdnprobe watch],
    or any consumer of [Pipeline.apply] that reports). Batch schemes
    have none. *)

type t = {
  scheme : string;
  plan_size : int;  (** test packets in the (initial) plan *)
  generation_s : float;  (** wall-clock pre-computation time *)
  detections : detection list;  (** in detection order *)
  packets_sent : int;  (** total probes injected, incl. re-sends/slices *)
  bytes_sent : int;
  rounds : int;
  duration_s : float;  (** virtual detection time *)
  suspicion_ranking : (int * int) list;  (** (rule, level), descending *)
  retransmissions : int;
      (** total retransmissions across the run (0 when the
          retransmission machinery is disabled, [Config.max_retries = 0]) *)
  round_stats : round_stat list;
      (** per-round send/retry/loss accounting, in round order; empty
          for schemes that do not track it *)
  patch_events : patch_event list;
      (** incremental re-plans absorbed during the run, in batch order;
          empty for batch (non-watch) runs *)
}

val patch_event_of_patch :
  batch:int -> plan_size_after:int -> apply_s:float -> Plan.patch -> patch_event
(** Summarize a {!Plan.patch} into the counts a report carries. *)

val patch_event_to_json : patch_event -> Sdn_util.Json.t

val patch_event_of_json : Sdn_util.Json.t -> (patch_event, string) result

val flagged_switches : t -> int list
(** Sorted. *)

val detection_time : t -> int -> float option
(** Virtual time at which a switch was flagged. *)

val time_to_detect_all : t -> ground_truth:int list -> float option
(** Time of the last ground-truth switch's detection; [None] if any
    ground-truth switch went undetected. *)

val pp : Format.formatter -> t -> unit

(** {2 Versioned JSON serialization}

    [to_json] emits one self-describing object carrying a
    [schema_version] field; [of_json] refuses versions it does not
    know. The round-trip is exact for every field except none —
    floats are printed with round-trip precision. *)

val schema_version : int
(** Current version: 2 (v1 plus the [patch_events] array). *)

val to_json : t -> string

val of_json : string -> (t, string) result
(** [Error] on malformed JSON, a missing field, or an unsupported
    [schema_version]. Version 1 documents (no [patch_events]) are
    still accepted and parse with [patch_events = \[\]]. *)
