(** The probe-delivery seam of the detection engine.

    {!Runner} drives detection rounds against this interface rather
    than against a concrete data plane, so the same loop — traps,
    timeouts, bounded retransmission, suspicion — runs over the
    in-process {!Dataplane.Emulator} (virtual time, bit-for-bit
    deterministic) or over the wire backend ([lib/wire]: emulated
    switches as UDP endpoints on localhost, probes as real datagrams
    through the kernel network stack; see docs/WIRE.md).

    A backend is a record of closures rather than a first-class module:
    every field is per-instance state anyway, and the runner only ever
    calls through the record. *)

type t = {
  label : string;  (** backend name for reports/debugging *)
  network : Openflow.Network.t;  (** the policy probes are tested against *)
  clock : Dataplane.Clock.t;
      (** the clock detection timestamps are read from. Virtual-time
          backends let the runner advance it; real-time backends mirror
          the monotonic clock into it (see [real_time]). *)
  real_time : bool;
      (** When true, time passes on its own (the backend updates
          [clock] from real elapsed time) and the runner must not
          advance the clock for modelled serialization/flight/overhead
          delays. *)
  install_traps : Probe.t list -> unit;
      (** Arm the §VI return path for each probe ((terminal switch,
          terminal rule, expected header) -> probe id) before a round. *)
  remove_traps : Probe.t list -> unit;
  attempt : config:Config.t -> ?now_us:int -> Probe.t -> bool;
      (** One send of one probe; true iff the probe's own trap echoed
          it back within the per-probe timeout
          ([Config.probe_timeout_us]). [now_us] overrides the send
          instant for backends with a virtual clock (parallel rounds
          inject each probe at its own timestamp). *)
  send_batch : (config:Config.t -> Probe.t list -> bool array) option;
      (** Batched one-attempt-per-probe send: fire the whole list, then
        collect echoes until each probe's deadline; result[i] is
        probe i's verdict. Backends with real I/O provide this so a
        round's sends and waits overlap instead of paying the timeout
        serially per probe; the runner then layers retransmission on
        top by re-batching the failures. *)
  order_free : config:Config.t -> bool;
      (** Whether a round's sends may run concurrently in-process with
          per-probe virtual timestamps (no order-dependent impairment
          draws, no retransmission state). Consulted per round. *)
  close : unit -> unit;
      (** Release backend resources (sockets, service domains).
          Idempotent. *)
}

val of_emulator : Dataplane.Emulator.t -> t
(** The in-process backend: behaviourally identical to the historical
    runner (golden digests pin this bit-for-bit). [close] is a no-op —
    the emulator's lifetime belongs to the caller. *)
