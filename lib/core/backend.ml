module Emulator = Dataplane.Emulator
module Clock = Dataplane.Clock

type t = {
  label : string;
  network : Openflow.Network.t;
  clock : Clock.t;
  real_time : bool;
  install_traps : Probe.t list -> unit;
  remove_traps : Probe.t list -> unit;
  attempt : config:Config.t -> ?now_us:int -> Probe.t -> bool;
  send_batch : (config:Config.t -> Probe.t list -> bool array) option;
  order_free : config:Config.t -> bool;
  close : unit -> unit;
}

(* One attempt against the in-process emulator: inject and classify
   against the probe's own trap. A probe passes iff its trap captured
   it AND the echo arrived within the per-probe timeout (nominal flight
   time plus any impairment jitter the packet accumulated). *)
let emulator_attempt emu ~config ?now_us (p : Probe.t) =
  let result = Emulator.inject ?now_us emu ~at:p.Probe.inject_switch p.Probe.header in
  let returned =
    match result.Emulator.outcome with
    | Emulator.Returned { probe; _ } -> probe = p.Probe.id
    | Emulator.Delivered _ | Emulator.Lost _ -> false
  in
  let hops = Probe.hop_count p in
  let flight_us =
    (hops * config.Config.per_hop_latency_us) + result.Emulator.jitter_us
  in
  returned && flight_us <= Config.probe_timeout_us config ~hops

let of_emulator emu =
  {
    label = "emulator";
    network = Emulator.network emu;
    clock = Emulator.clock emu;
    real_time = false;
    install_traps =
      List.iter (fun (p : Probe.t) ->
          Emulator.install_trap emu ~probe:p.Probe.id ~switch:p.Probe.terminal_switch
            ~rule:p.Probe.terminal_rule ~header:p.Probe.expected_header);
    remove_traps =
      List.iter (fun (p : Probe.t) ->
          Emulator.remove_probe_traps emu ~probe:p.Probe.id);
    attempt = (fun ~config ?now_us p -> emulator_attempt emu ~config ?now_us p);
    send_batch = None;
    order_free =
      (fun ~config ->
        config.Config.max_retries = 0
        &&
        match Emulator.impairment emu with
        | None -> true
        | Some imp -> Dataplane.Impairment.order_independent imp);
    close = (fun () -> ());
  }
