(** Suspicion-level bookkeeping (Algorithm 2).

    Every rule on a suspected path gains one suspicion level per failed
    round; a switch is flagged when one of its rules exceeds the
    threshold {e while isolated on a single-rule tested path} — the
    restriction that keeps SDNProbe free of false positives against
    persistent faults (§VI). *)

type t

val create : threshold:int -> t

val threshold : t -> int

val bump_rule : t -> int -> unit
(** Increase a rule's suspicion level by one. *)

val level : t -> int -> int

val decay_rule : t -> int -> amount:int -> unit
(** Lower a rule's suspicion by [amount], floored at 0 (a rule decayed
    to 0 leaves {!rule_levels} entirely). Used when a previously
    suspected path passes a re-test: suspicion accumulated from
    transient environment noise (packet loss, churn) drains away
    instead of creeping toward the threshold. [amount = 0] is a no-op.
    Raises [Invalid_argument] on a negative [amount]. *)

val exceeds_threshold : t -> int -> bool
(** [level > threshold], the paper's flag condition. *)

val flag : t -> switch:int -> time_s:float -> round:int -> unit
(** Record a switch as faulty (first detection wins). *)

val is_flagged : t -> int -> bool

val detections : t -> (int * float * int) list
(** [(switch, time_s, round)] sorted by detection time. *)

val rule_levels : t -> (int * int) list
(** All non-zero [(rule, level)] pairs, for inspection and ranking
    ("a network administrator can make better decisions in choosing
    which switch to manually inspect first"). *)

val region_levels : t -> region_of_rule:(int -> int) -> (int * int) list
(** Hierarchical view (docs/SHARD.md): suspicion summed per region,
    [(region, total)] sorted by total descending then region ascending
    (a total order — no tie residue). The head names the guilty region
    before any single rule crosses the flag threshold, which is the
    region the sliced sub-probes are converging on under
    [Probe.slice ~region_of]. *)
