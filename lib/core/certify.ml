(* End-to-end plan certification.

   Each section re-establishes one pillar of the probe-generation
   pipeline with an independent checker from {!Cert}:

   - sat: the Sat_unique header assignment is replayed with proof
     logging on; every Sat answer is checked against every problem
     clause, every Unsat answer against its DRUP derivation, and the
     replayed headers must coincide bit-for-bit with the plan's.
   - matching: an unconstrained Hopcroft–Karp maximum matching of the
     MLPC bipartite graph, certified maximum by a König vertex cover;
     |paths| = n_testable − |M| then pins the cover minimum (Theorem 1).
   - cover: every probe carries a (rule sequence, header) witness that
     is replayed cache-free through the real lookup semantics, and the
     coverage bitmap is recomputed from the flow tables.
   - yen: sampled k-shortest-path queries over the topology are
     re-checked (validity, looplessness, ordering, Bellman–Ford
     shortest distance).

   A report is a list of named boolean checks; certification succeeds
   iff all hold. *)

module RG = Rulegraph.Rule_graph
module HK = Sdngraph.Hopcroft_karp
module Digraph = Sdngraph.Digraph
module Hs = Hspace.Hs
module Cube = Hspace.Cube
module Header = Hspace.Header
module Json = Sdn_util.Json

type check = { name : string; ok : bool; detail : string }
type section = { title : string; checks : check list }

type report = {
  sections : section list;
  patch_events : Report.patch_event list;
}

let ok_report r =
  List.for_all (fun s -> List.for_all (fun c -> c.ok) s.checks) r.sections

let pass name detail = { name; ok = true; detail }
let fail name detail = { name; ok = false; detail }
let of_result name = function
  | Ok () -> pass name "ok"
  | Error msg -> fail name msg

(* ------------------------------------------------------------------ *)
(* SAT section: deterministic replay of Headers.assign Sat_unique with
   certificates. The replay mirrors Headers.sat_pick exactly — same
   cube order, same distinct_from threading — so on a Static plan the
   certified headers must equal the plan's probe headers. *)

(* DIMACS variable k+1 is header bit k (Header_encoding's convention);
   the model array is indexed by variable number, slot 0 unused. *)
let header_model nvars h =
  let model = Array.make (nvars + 1) false in
  let len = min nvars (Header.length h) in
  for i = 0 to len - 1 do
    model.(i + 1) <- Header.get h i
  done;
  model

let certify_query acc (c : Sat.Header_encoding.certified) =
  match c.header with
  | Some h ->
      let model = header_model c.nvars h in
      let r = Cert.Drup.check_model ~clauses:c.clauses model in
      (match r with
      | Ok () -> acc
      | Error e -> fail "sat/model" (Cert.Drup.error_to_string e) :: acc)
  | None -> (
      match Cert.Drup.check ~nvars:c.nvars ~clauses:c.clauses ~proof:c.proof () with
      | Ok () -> acc
      | Error e ->
          fail "sat/proof" (Cert.Drup.error_to_string e) :: acc)

(* Headers.sat_pick, certified: try each cube until a distinct header
   is found; collect every issued query's certificate. *)
let sat_pick_certified ~distinct_from hs queries =
  let rec loop = function
    | [] -> None
    | cube :: rest ->
        let c =
          Sat.Header_encoding.find_header_certified ~distinct_from
            ~inside:[ cube ] (Cube.length cube)
        in
        queries := c :: !queries;
        (match c.header with Some h -> Some h | None -> loop rest)
  in
  loop (Hs.cubes hs)

let sat_section (plan : Plan.t) =
  match plan.mode with
  | Plan.Randomized _ ->
      {
        title = "sat";
        checks =
          [
            pass "sat/skipped"
              "randomized plans draw headers uniformly, no SAT queries to \
               certify";
          ];
      }
  | Plan.Static ->
      let queries = ref [] in
      let _, replayed =
        List.fold_left
          (fun (seen, acc) (p : Mlpc.Cover.path) ->
            let h =
              match sat_pick_certified ~distinct_from:seen p.start_space queries with
              | Some h -> Some h
              | None -> Option.map Header.of_cube (Hs.first_member p.start_space)
            in
            match h with
            | Some h -> (h :: seen, h :: acc)
            | None -> (seen, acc))
          ([], []) plan.cover.paths
      in
      let replayed = List.rev replayed in
      let checks = List.fold_left certify_query [] !queries in
      let plan_headers = List.map (fun (p : Probe.t) -> p.header) plan.probes in
      let agree =
        List.length replayed = List.length plan_headers
        && List.for_all2 Header.equal replayed plan_headers
      in
      let nq = List.length !queries in
      let checks =
        (if agree then
           pass "sat/headers-agree"
             (Printf.sprintf
                "replayed %d certified quer%s; headers match the plan's %d \
                 probe header(s) bit-for-bit"
                nq
                (if nq = 1 then "y" else "ies")
                (List.length plan_headers))
         else
           fail "sat/headers-agree"
             (Printf.sprintf
                "certified replay yields %d header(s), plan carries %d, or \
                 some differ"
                (List.length replayed) (List.length plan_headers)))
        :: checks
      in
      let checks =
        if List.exists (fun c -> not c.ok) checks then checks
        else
          pass "sat/certificates"
            (Printf.sprintf
               "%d Sat model(s) checked against every clause, every Unsat \
                answer DRUP-checked"
               nq)
          :: checks
      in
      { title = "sat"; checks = List.rev checks }

(* ------------------------------------------------------------------ *)
(* Matching section: the MLPC bipartite graph (every closure edge
   (u, v) over testable vertices becomes (u, v')), an unconstrained
   maximum matching with König certificate, and the Theorem-1 count. *)

let bipartite_of_rulegraph rg =
  let n = RG.n_vertices rg in
  let g = RG.graph rg in
  let testable = Array.init n (fun v -> not (Hs.is_empty (RG.input rg v))) in
  let adj =
    Array.init n (fun u ->
        if testable.(u) then
          List.filter (fun v -> testable.(v)) (Digraph.succ g u)
        else [])
  in
  let n_testable = Array.fold_left (fun a t -> if t then a + 1 else a) 0 testable in
  (adj, n_testable)

let matching_section (plan : Plan.t) =
  let rg = plan.rulegraph in
  let n = RG.n_vertices rg in
  let adj, n_testable = bipartite_of_rulegraph rg in
  let m = HK.run ~nl:n ~nr:n adj in
  let cover_left, cover_right = HK.konig_cover ~nl:n ~nr:n adj m in
  let cert =
    {
      Cert.Konig.nl = n;
      nr = n;
      adj;
      match_l = m.match_l;
      match_r = m.match_r;
      cover_left;
      cover_right;
    }
  in
  let konig = of_result "matching/konig" (Cert.Konig.check cert) in
  let n_paths = List.length plan.cover.paths in
  let bound = n_testable - m.size in
  let minimal =
    if konig.ok && n_paths = bound then
      pass "matching/theorem1"
        (Printf.sprintf
           "|paths| = %d = %d testable − %d matched: cover certified \
            minimum (König + Theorem 1)"
           n_paths n_testable m.size)
    else if not konig.ok then
      fail "matching/theorem1" "König certificate invalid, no bound available"
    else if n_paths < bound then
      fail "matching/theorem1"
        (Printf.sprintf
           "|paths| = %d below the Theorem-1 floor %d (= %d testable − %d \
            matched): the cover cannot be a legal path partition"
           n_paths bound n_testable m.size)
    else
      match plan.mode with
      | Plan.Randomized _ ->
          pass "matching/theorem1"
            (Printf.sprintf
               "|paths| = %d ≥ minimum %d (= %d testable − %d matched): \
                randomized plans trade minimality for endpoint diversity, \
                only the lower bound is claimed"
               n_paths bound n_testable m.size)
      | Plan.Static ->
          (* Legality can force the gap (the paper's Fig. 3 does: its
             minimum legal cover has 4 paths, the unconstrained bound is
             3), so a gap is an honest partial certificate — the cover
             is within |paths| − bound of optimal — not a failure. *)
          pass "matching/theorem1"
            (Printf.sprintf
               "|paths| = %d, unconstrained lower bound %d (= %d testable − \
                %d matched): minimality not certified, the legality \
                constraints may force the gap of %d"
               n_paths bound n_testable m.size (n_paths - bound))
  in
  { title = "matching"; checks = [ konig; minimal ] }

(* ------------------------------------------------------------------ *)
(* Cover section: replay every probe's path witness and recompute the
   coverage bitmap, all through Cert.Replay (no rule-graph caches). *)

let cover_section (plan : Plan.t) =
  let net = plan.network in
  let rg = plan.rulegraph in
  let path_checks =
    List.map
      (fun (p : Probe.t) ->
        of_result
          (Printf.sprintf "cover/path-%d" p.id)
          (Cert.Replay.check_path net
             { Cert.Replay.rules = p.rules; header = p.header }))
      plan.probes
  in
  let untestable_entries =
    List.map (fun v -> (RG.vertex_entry rg v).Openflow.Flow_entry.id)
      plan.cover.untestable
  in
  let coverage =
    of_result "cover/coverage"
      (Cert.Replay.check_coverage net
         ~paths:(List.map (fun (p : Probe.t) -> p.rules) plan.probes)
         ~untestable:untestable_entries)
  in
  let failures = List.filter (fun c -> not c.ok) path_checks in
  let summary =
    if failures = [] then
      pass "cover/paths"
        (Printf.sprintf "%d path witness(es) replayed cache-free"
           (List.length path_checks))
    else
      fail "cover/paths"
        (Printf.sprintf "%d of %d path witness(es) fail replay"
           (List.length failures) (List.length path_checks))
  in
  { title = "cover"; checks = (summary :: failures) @ [ coverage ] }

(* ------------------------------------------------------------------ *)
(* Yen section: sampled k-shortest-path queries over the topology,
   re-checked path by path with an independent Bellman–Ford. *)

let yen_section ?(pairs = 8) ?(k = 8) ~seed (plan : Plan.t) =
  let g = Openflow.Topology.to_digraph (Openflow.Network.topology plan.network) in
  let n = Digraph.n_vertices g in
  if n < 2 then
    { title = "yen"; checks = [ pass "yen/skipped" "topology below 2 switches" ] }
  else begin
    let rng = Sdn_util.Prng.create seed in
    let checks = ref [] in
    for _ = 1 to pairs do
      let src = Sdn_util.Prng.int rng n in
      let dst = (src + 1 + Sdn_util.Prng.int rng (n - 1)) mod n in
      let paths = Sdngraph.Yen.k_shortest g ~src ~dst ~k in
      checks :=
        of_result
          (Printf.sprintf "yen/%d->%d" src dst)
          (Cert.Yen_check.check g ~src ~dst ~k paths)
        :: !checks
    done;
    { title = "yen"; checks = List.rev !checks }
  end

let run ?(yen_pairs = 8) ?(seed = 7) (plan : Plan.t) =
  {
    sections =
      [
        sat_section plan;
        matching_section plan;
        cover_section plan;
        yen_section ~pairs:yen_pairs ~seed plan;
      ];
    patch_events = [];
  }

(* ------------------------------------------------------------------ *)
(* Patch section: check a Plan.patch against the probe lists it claims
   to connect, with the certifier's own multiset bookkeeping (the diff
   algorithm is not trusted). The before-plan's witnesses cannot be
   replayed — its network has already been mutated in place — so the
   patch is certified as an accounting identity between the two probe
   lists, and the after-plan is certified in full as usual. *)

let probe_key (p : Probe.t) = (p.Probe.rules, Header.to_string p.Probe.header)

(* Multiset difference over sorted key lists; [None] when [small] is
   not contained in [big]. *)
let rec msub big small =
  match (big, small) with
  | rest, [] -> Some rest
  | [], _ :: _ -> None
  | b :: brest, s :: srest ->
      let c = compare b s in
      if c = 0 then msub brest srest
      else if c < 0 then
        match msub brest small with Some r -> Some (b :: r) | None -> None
      else None

let patch_section ~(before : Probe.t list) (patch : Plan.patch)
    (after : Plan.t) =
  let sorted l = List.sort compare (List.map probe_key l) in
  let rw_old = List.map fst patch.Plan.rewritten in
  let rw_new = List.map snd patch.Plan.rewritten in
  let rewritten_ok =
    List.for_all
      (fun ((o : Probe.t), (n : Probe.t)) ->
        o.Probe.rules = n.Probe.rules
        && not (Header.equal o.Probe.header n.Probe.header))
      patch.Plan.rewritten
  in
  let survivors_before = msub (sorted before) (sorted (patch.Plan.removed @ rw_old)) in
  let survivors_after =
    msub (sorted after.Plan.probes) (sorted (patch.Plan.added @ rw_new))
  in
  let ids_ok =
    List.for_all2 (fun i (p : Probe.t) -> p.Probe.id = i)
      (List.init (List.length after.Plan.probes) Fun.id)
      after.Plan.probes
  in
  let checks =
    [
      (if rewritten_ok then
         pass "patch/rewritten"
           (Printf.sprintf
              "%d rewritten pair(s): same rule sequence, different header"
              (List.length patch.Plan.rewritten))
       else
         fail "patch/rewritten"
           "a rewritten pair changes its rule sequence or keeps its header");
      (match survivors_before with
      | Some _ ->
          pass "patch/before-accounted"
            (Printf.sprintf
               "%d removed + %d rewritten-from probe(s) all present in the \
                pre-edit plan"
               (List.length patch.Plan.removed)
               (List.length rw_old))
      | None ->
          fail "patch/before-accounted"
            "a removed or rewritten-from probe is not in the pre-edit plan");
      (match survivors_after with
      | Some _ ->
          pass "patch/after-accounted"
            (Printf.sprintf
               "%d added + %d rewritten-to probe(s) all present in the \
                post-edit plan"
               (List.length patch.Plan.added)
               (List.length rw_new))
      | None ->
          fail "patch/after-accounted"
            "an added or rewritten-to probe is not in the post-edit plan");
      (match (survivors_before, survivors_after) with
      | Some sb, Some sa when sb = sa ->
          pass "patch/survivors-agree"
            (Printf.sprintf
               "%d surviving (path, header) pair(s) identical on both sides"
               (List.length sb))
      | Some _, Some _ ->
          fail "patch/survivors-agree"
            "probes the patch leaves untouched differ between the two plans"
      | _ ->
          fail "patch/survivors-agree"
            "survivor sets undefined (an accounting check already failed)");
      (if ids_ok then
         pass "patch/ids-canonical"
           (Printf.sprintf "post-edit probe ids are 0..%d in plan order"
              (List.length after.Plan.probes - 1))
       else fail "patch/ids-canonical" "post-edit probe ids are not 0..n−1");
      pass "patch/provenance"
        (Printf.sprintf "%d edit op(s) → +%d −%d ~%d probe(s)"
           (List.length patch.Plan.edits)
           (List.length patch.Plan.added)
           (List.length patch.Plan.removed)
           (List.length patch.Plan.rewritten));
    ]
  in
  { title = "patch"; checks }

let run_patch ?(yen_pairs = 8) ?(seed = 7) ?event ~before ~patch
    (after : Plan.t) =
  let base = run ~yen_pairs ~seed after in
  {
    sections = patch_section ~before patch after :: base.sections;
    patch_events = Option.to_list event;
  }

(* ------------------------------------------------------------------ *)

let check_to_json c =
  Json.Obj
    [ ("name", Json.Str c.name); ("ok", Json.Bool c.ok); ("detail", Json.Str c.detail) ]

let schema_version = 2

let to_json r =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("certified", Json.Bool (ok_report r));
      ( "sections",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("title", Json.Str s.title);
                   ("ok", Json.Bool (List.for_all (fun c -> c.ok) s.checks));
                   ("checks", Json.List (List.map check_to_json s.checks));
                 ])
             r.sections) );
      ("patch_events", Json.List (List.map Report.patch_event_to_json r.patch_events));
    ]

let ( let* ) o f = match o with Some x -> f x | None -> Error "missing or mistyped field"

let require_all f xs =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> ( match f x with Ok y -> loop (y :: acc) rest | Error _ as e -> e)
  in
  loop [] xs

let check_of_json v =
  let* name = Json.obj_str "name" v in
  let* ok = Option.bind (Json.member "ok" v) (function
    | Json.Bool b -> Some b
    | _ -> None)
  in
  let* detail = Json.obj_str "detail" v in
  Ok { name; ok; detail }

let section_of_json v =
  let* title = Json.obj_str "title" v in
  let* checks_v = Json.obj_list "checks" v in
  Result.bind (require_all check_of_json checks_v) @@ fun checks ->
  Ok { title; checks }

let of_json v =
  match Json.obj_int "schema_version" v with
  | None -> Error "missing schema_version"
  | Some version when version <> 1 && version <> schema_version ->
      Error
        (Printf.sprintf "unsupported certify schema_version %d (expected 1..%d)"
           version schema_version)
  | Some version ->
      let* sections_v = Json.obj_list "sections" v in
      (* [patch_events] arrived with v2. *)
      let* patch_events_v =
        if version = 1 then Some [] else Json.obj_list "patch_events" v
      in
      Result.bind (require_all section_of_json sections_v) @@ fun sections ->
      Result.bind (require_all Report.patch_event_of_json patch_events_v)
      @@ fun patch_events -> Ok { sections; patch_events }

let pp ppf r =
  List.iter
    (fun s ->
      let sec_ok = List.for_all (fun c -> c.ok) s.checks in
      Format.fprintf ppf "@[<v 2>[%s] %s@,"
        (if sec_ok then "PASS" else "FAIL")
        s.title;
      List.iter
        (fun c ->
          if (not c.ok) || String.length c.detail > 0 then
            Format.fprintf ppf "%s %s: %s@,"
              (if c.ok then "ok  " else "FAIL")
              c.name c.detail)
        s.checks;
      Format.fprintf ppf "@]@,")
    r.sections;
  Format.fprintf ppf "certification: %s@."
    (if ok_report r then "PASS" else "FAIL")
