module Header = Hspace.Header
module FE = Openflow.Flow_entry
module Network = Openflow.Network

type t = {
  id : int;
  rules : int list;
  header : Header.t;
  inject_switch : int;
  terminal_switch : int;
  terminal_rule : int;
  expected_header : Header.t;
}

let headers_along net ~rules header =
  let _, acc =
    List.fold_left
      (fun (h, acc) rule ->
        let h' = FE.apply (Network.entry net rule) h in
        (h', h' :: acc))
      (header, []) rules
  in
  List.rev acc

let make net ~id ~rules ~header =
  match rules with
  | [] -> invalid_arg "Probe.make: empty rule list"
  | first :: _ ->
      let last = List.nth rules (List.length rules - 1) in
      let along = headers_along net ~rules header in
      {
        id;
        rules;
        header;
        inject_switch = (Network.entry net first).FE.switch;
        terminal_switch = (Network.entry net last).FE.switch;
        terminal_rule = last;
        expected_header = List.nth along (List.length along - 1);
      }

let hop_count t = List.length t.rules

let slice ?region_of net ~fresh_id t =
  let n = List.length t.rules in
  if n < 2 then None
  else begin
    let rules = Array.of_list t.rules in
    (* Cut points: prefer indices where the second half starts at a
       table-0 rule (a clean injection); fall back to any index — the
       packet still reaches a mid-table rule through its switch's
       earlier tables, and the parent's header already survived them.
       Prefer the cut closest to the middle. Under [region_of]
       (hierarchical localization, docs/SHARD.md), table-0 cuts where
       the path crosses a region border are preferred over all others:
       the first bisection then says which region the fault is in, and
       subsequent slices are ordinary within-region bisections. *)
    let all = List.init (n - 1) (fun k -> k + 1) in
    let table0 =
      List.filter (fun i -> (Network.entry net rules.(i)).FE.table = 0) all
    in
    let border =
      match region_of with
      | None -> []
      | Some region_of ->
          List.filter
            (fun i ->
              region_of (Network.entry net rules.(i)).FE.switch
              <> region_of (Network.entry net rules.(i - 1)).FE.switch)
            table0
    in
    let candidates =
      if border <> [] then border else if table0 <> [] then table0 else all
    in
    match candidates with
    | [] -> None
    | _ ->
        let mid = n / 2 in
        let cut =
          List.fold_left
            (fun best i -> if abs (i - mid) < abs (best - mid) then i else best)
            (List.hd candidates) candidates
        in
        let along = headers_along net ~rules:t.rules t.header in
        let first_rules = Array.to_list (Array.sub rules 0 cut) in
        let second_rules = Array.to_list (Array.sub rules cut (n - cut)) in
        let second_header = List.nth along (cut - 1) in
        let a = make net ~id:(fresh_id ()) ~rules:first_rules ~header:t.header in
        let b = make net ~id:(fresh_id ()) ~rules:second_rules ~header:second_header in
        Some (a, b)
  end

let pp fmt t =
  Format.fprintf fmt "probe#%d %s@sw%d [%a] ->sw%d" t.id
    (Header.to_string t.header)
    t.inject_switch
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       Format.pp_print_int)
    t.rules t.terminal_switch

let to_json t =
  Sdn_util.Json.Obj
    [
      ("id", Sdn_util.Json.Int t.id);
      ("rules", Sdn_util.Json.List (List.map (fun r -> Sdn_util.Json.Int r) t.rules));
      ("header", Sdn_util.Json.Str (Header.to_string t.header));
      ("inject_switch", Sdn_util.Json.Int t.inject_switch);
      ("terminal_switch", Sdn_util.Json.Int t.terminal_switch);
      ("terminal_rule", Sdn_util.Json.Int t.terminal_rule);
      ("expected_header", Sdn_util.Json.Str (Header.to_string t.expected_header));
    ]
