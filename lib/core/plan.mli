(** Probe-plan generation: the paper's test-packet generation stage
    (Figure 2) end to end — rule graph, MLPC, header construction.

    A generated plan keeps its rule graph so Randomized SDNProbe can
    cheaply re-draw paths each detection cycle ("tested path
    randomization can reuse the same rule graph", §V-C). *)

type mode =
  | Static  (** SDNProbe: minimum cover, SAT-unique headers *)
  | Randomized of Sdn_util.Prng.t
      (** Randomized SDNProbe: randomized greedy legal matching and
          uniform header draws *)

type t = {
  network : Openflow.Network.t;
  rulegraph : Rulegraph.Rule_graph.t;
  cover : Mlpc.Cover.t;
  probes : Probe.t list;
  generation_s : float;  (** wall-clock pre-computation time *)
  mode : mode;
      (** how the plan was drawn — carries the redraw capability: a
          [Randomized] plan re-draws fresh paths (over the kept rule
          graph) at every detection-cycle boundary of
          {!Runner.execute} *)
}

val generate : ?pool:Sdn_parallel.Pool.t -> ?mode:mode -> Openflow.Network.t -> t
(** Build the full pipeline. [mode] defaults to [Static]. With [pool]
    the matching's legality warm-up and the header assignment run in
    parallel; the plan is byte-identical for any domain count (see
    {!Mlpc.Legal_matching.solve} and {!Mlpc.Headers.assign}). Raises
    {!Rulegraph.Rule_graph.Cyclic_policy} on looping policies. *)

val redraw : ?pool:Sdn_parallel.Pool.t -> t -> Sdn_util.Prng.t -> t
(** New randomized paths + headers over the existing rule graph (used
    between detection cycles by Randomized SDNProbe). *)

val of_cover :
  ?pool:Sdn_parallel.Pool.t ->
  Openflow.Network.t ->
  Rulegraph.Rule_graph.t ->
  policy:Mlpc.Headers.policy ->
  Mlpc.Cover.t ->
  Probe.t list
(** Lower a cover to probes with the given header policy (probe ids are
    indices into the cover's path list). *)

val size : t -> int
(** Number of probes (= test packets). *)
