(** Probe-plan generation: the paper's test-packet generation stage
    (Figure 2) end to end — rule graph, MLPC, header construction.

    A generated plan keeps its rule graph so Randomized SDNProbe can
    cheaply re-draw paths each detection cycle ("tested path
    randomization can reuse the same rule graph", §V-C). *)

type mode =
  | Static  (** SDNProbe: minimum cover, SAT-unique headers *)
  | Randomized of Sdn_util.Prng.t
      (** Randomized SDNProbe: randomized greedy legal matching and
          uniform header draws *)

type t = {
  network : Openflow.Network.t;
  rulegraph : Rulegraph.Rule_graph.t;
  cover : Mlpc.Cover.t;
  probes : Probe.t list;
  generation_s : float;  (** wall-clock pre-computation time *)
  mode : mode;
      (** how the plan was drawn — carries the redraw capability: a
          [Randomized] plan re-draws fresh paths (over the kept rule
          graph) at every detection-cycle boundary of
          {!Runner.execute} *)
}

val generate : ?pool:Sdn_parallel.Pool.t -> ?mode:mode -> Openflow.Network.t -> t
[@@deprecated "use Pipeline.create, which keeps the session for incremental re-planning"]
(** Build the full pipeline. [mode] defaults to [Static]. With [pool]
    the matching's legality warm-up and the header assignment run in
    parallel; the plan is byte-identical for any domain count (see
    {!Mlpc.Legal_matching.solve} and {!Mlpc.Headers.assign}). Raises
    {!Rulegraph.Rule_graph.Cyclic_policy} on looping policies.

    @deprecated One-shot batch entry point, kept as a shim. New code
    should create a [Pipeline.t] (library [pipeline]) — its [plan] is
    byte-identical to this function's output, and the session can then
    absorb flow-table churn incrementally via [Pipeline.apply]. *)

val redraw : ?pool:Sdn_parallel.Pool.t -> t -> Sdn_util.Prng.t -> t
(** New randomized paths + headers over the existing rule graph (used
    between detection cycles by Randomized SDNProbe). *)

val of_cover :
  ?pool:Sdn_parallel.Pool.t ->
  Openflow.Network.t ->
  Rulegraph.Rule_graph.t ->
  policy:Mlpc.Headers.policy ->
  Mlpc.Cover.t ->
  Probe.t list
(** Lower a cover to probes with the given header policy (probe ids are
    indices into the cover's path list). *)

val probes_of_assignment :
  Openflow.Network.t ->
  Rulegraph.Rule_graph.t ->
  (Mlpc.Cover.path * Hspace.Header.t) list ->
  Probe.t list
(** The second half of {!of_cover}: lower an already-assigned cover to
    probes. Split out so a caller can run {!Mlpc.Headers.assign} itself
    with a speculation memo ([Pipeline] does) and still produce probes
    the standard way. *)

val size : t -> int
(** Number of probes (= test packets). *)

(** {2 Plan patches}

    The delta produced by one [Pipeline.apply]: how the probe plan
    changed in response to one batch of flow-table edits. Probe ids are
    cover indices and renumber wholesale on every re-plan, so the patch
    identifies probes by their tested rule sequence (entry ids, which
    are stable): a before/after pair on the same sequence is the same
    logical probe. *)

type patch = {
  edits : Sdn_util.Edits.t;  (** the batch that caused this patch *)
  added : Probe.t list;  (** paths tested only by the new plan *)
  removed : Probe.t list;  (** paths no longer tested *)
  rewritten : (Probe.t * Probe.t) list;
      (** same path, new header — [(before, after)] *)
}

val diff : edits:Sdn_util.Edits.t -> before:Probe.t list -> after:Probe.t list -> patch
(** Multiset-match the two probe lists on their rule sequences.
    Duplicate sequences (several probes on one path) pair up in plan
    order. Probes present in both plans with an unchanged header are
    {e survivors} and appear in no list. [removed] is sorted by the old
    probe id; [added] and [rewritten] follow the new plan's order. *)

val patch_size : patch -> int
(** [|added| + |removed| + |rewritten|]. *)

val patch_is_empty : patch -> bool

val patch_to_json : patch -> Sdn_util.Json.t
(** Object with the provenance [edits] (one-batch {!Sdn_util.Edits}
    stream) and the three probe lists, each probe via
    {!Probe.to_json}. *)
