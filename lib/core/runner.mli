(** The detection loop (Algorithm 2) against the data-plane emulator,
    hardened for error-prone environments.

    Each round: install return traps for the active probes, serialize
    them at the configured controller rate (advancing the virtual
    clock), inject, and classify. A probe passes only if its trap
    captured it {e and} the echo arrived within the per-probe timeout
    ([Config.probe_timeout_us], derived from path length); otherwise
    the controller waits out the timeout, backs off exponentially
    ([Config.backoff_us]), and retransmits, up to [Config.max_retries]
    times, before classifying the probe as failed. A failed probe bumps
    the suspicion of every rule on its path and is sliced in two; a
    failed single-rule probe whose suspicion exceeds the threshold
    flags its switch. A passing probe decays the suspicion of its rules
    by [Config.suspicion_decay], so transient environment noise drains
    back out instead of accumulating into false positives. When a round
    produces no follow-up work, a new detection cycle starts from the
    full plan — re-drawn for Randomized SDNProbe.

    With [Config.max_retries = 0] and [Config.suspicion_decay = 0]
    (the {!Config.default}) the engine is behaviourally identical to
    the original loss-naive loop: one send per probe, no timeout waits
    on the clock, no decay. {!Config.resilient} turns the machinery
    on. See [docs/RUNNER.md] for the full state machine. *)

type stop = detections:Report.detection list -> round:int -> time_s:float -> bool
(** Return true to end the run (evaluated between rounds). *)

val stop_never : stop

val stop_when_flagged : int list -> stop
(** Stop once all the given switches are flagged. *)

val stop_after_s : float -> stop

val stop_any : stop list -> stop

val execute :
  ?stop:stop ->
  ?name:string ->
  config:Config.t ->
  emulator:Dataplane.Emulator.t ->
  Plan.t ->
  Report.t
(** The single entry point: run the detection loop over a generated
    {!Plan.t}. The plan's {!Plan.mode} carries the redraw capability —
    a [Plan.Randomized] plan re-draws fresh paths (over its kept rule
    graph) at every detection-cycle boundary, a [Plan.Static] plan
    reuses its probes. [name] overrides the report's scheme label
    (default ["sdnprobe"] / ["randomized-sdnprobe"] by mode). The
    emulator's faults are the ground truth being hunted; its clock is
    advanced by this function and left at the end-of-run time.

    [execute] runs against the in-process emulator
    ({!Backend.of_emulator}); {!execute_on} is the same engine over an
    arbitrary {!Backend.t} — notably the wire backend, where probes are
    real UDP datagrams (see [docs/WIRE.md]). *)

val execute_on :
  ?stop:stop ->
  ?name:string ->
  config:Config.t ->
  backend:Backend.t ->
  Plan.t ->
  Report.t
(** {!execute} over an explicit probe-delivery backend. The caller owns
    the backend's lifetime ([Backend.close] is not called here). *)

val execute_probes :
  ?stop:stop ->
  ?name:string ->
  ?region_of:(int -> int) ->
  config:Config.t ->
  backend:Backend.t ->
  generation_s:float ->
  Probe.t list ->
  Report.t
(** The detection engine over a raw probe list — the entry point for
    sharded plans ([Shard.Splan.t] carries probes, not a {!Plan.t}).
    [region_of] (e.g. [Shard.Splan.region_of]) enables hierarchical
    localization: failed cross-region probes are first bisected at
    region borders ({!Probe.slice}), so suspicion converges on the
    guilty region before within-region slicing takes over. Without
    [region_of], behaviour matches {!execute_on} on a static plan. *)

(** {2 Deprecated wrappers}

    Kept for source compatibility with pre-[Plan.t] callers; both
    delegate to the {!execute} engine. New code should generate a
    {!Plan.t} and call {!execute}. *)

val run :
  ?stop:stop ->
  ?redraw:(cycle:int -> Probe.t list) ->
  ?name:string ->
  config:Config.t ->
  emulator:Dataplane.Emulator.t ->
  generation_s:float ->
  Probe.t list ->
  Report.t
[@@deprecated "use Runner.execute with a Plan.t"]
(** @deprecated Use {!execute}. Runs detection with raw probes;
    [redraw ~cycle] (if given) supplies fresh probes when cycle
    [cycle >= 1] begins. *)

val detect : ?stop:stop -> ?mode:Plan.mode -> config:Config.t -> Dataplane.Emulator.t -> Report.t
[@@deprecated "use Pipeline.create + Runner.execute"]
(** @deprecated Use [Pipeline.create] + {!execute} (or, for one-shot
    batch generation, {!Plan.generate} + {!execute}). Generates a plan
    for the emulator's network and executes it. *)
