type backend_kind = Emulator | Wire

type t = {
  threshold : int;
  send_rate_bytes_per_s : int;
  probe_size_bytes : int;
  per_hop_latency_us : int;
  per_round_overhead_us : int;
  max_rounds : int;
  max_retries : int;
  retry_backoff_us : int;
  backoff_factor : int;
  timeout_base_us : int;
  timeout_per_hop_us : int;
  suspicion_decay : int;
  domains : int;
  backend : backend_kind;
}

let positive what v =
  if v <= 0 then invalid_arg (Printf.sprintf "Config: non-positive %s" what)

let non_negative what v =
  if v < 0 then invalid_arg (Printf.sprintf "Config: negative %s" what)

let make ?(threshold = 3) ?(send_rate_bytes_per_s = 250_000) ?(probe_size_bytes = 100)
    ?(per_hop_latency_us = 500) ?(per_round_overhead_us = 50_000) ?(max_rounds = 200)
    ?(max_retries = 0) ?(retry_backoff_us = 10_000) ?(backoff_factor = 2)
    ?(timeout_base_us = 20_000) ?(timeout_per_hop_us = 2_000) ?(suspicion_decay = 0)
    ?(domains = Sdn_parallel.default_domains ()) ?(backend = Emulator) () =
  positive "threshold" threshold;
  positive "send_rate_bytes_per_s" send_rate_bytes_per_s;
  positive "probe_size_bytes" probe_size_bytes;
  positive "per_hop_latency_us" per_hop_latency_us;
  non_negative "per_round_overhead_us" per_round_overhead_us;
  positive "max_rounds" max_rounds;
  non_negative "max_retries" max_retries;
  positive "retry_backoff_us" retry_backoff_us;
  if backoff_factor < 1 then invalid_arg "Config: backoff_factor < 1";
  non_negative "timeout_base_us" timeout_base_us;
  non_negative "timeout_per_hop_us" timeout_per_hop_us;
  non_negative "suspicion_decay" suspicion_decay;
  if domains < 1 || domains > 128 then invalid_arg "Config: domains outside [1, 128]";
  {
    threshold;
    send_rate_bytes_per_s;
    probe_size_bytes;
    per_hop_latency_us;
    per_round_overhead_us;
    max_rounds;
    max_retries;
    retry_backoff_us;
    backoff_factor;
    timeout_base_us;
    timeout_per_hop_us;
    suspicion_decay;
    domains;
    backend;
  }

let default = make ()

let resilient = make ~max_retries:2 ~suspicion_decay:1 ()

let with_threshold threshold t = positive "threshold" threshold; { t with threshold }

let with_send_rate_bytes_per_s send_rate_bytes_per_s t =
  positive "send_rate_bytes_per_s" send_rate_bytes_per_s;
  { t with send_rate_bytes_per_s }

let with_probe_size_bytes probe_size_bytes t =
  positive "probe_size_bytes" probe_size_bytes;
  { t with probe_size_bytes }

let with_per_hop_latency_us per_hop_latency_us t =
  positive "per_hop_latency_us" per_hop_latency_us;
  { t with per_hop_latency_us }

let with_per_round_overhead_us per_round_overhead_us t =
  non_negative "per_round_overhead_us" per_round_overhead_us;
  { t with per_round_overhead_us }

let with_max_rounds max_rounds t = positive "max_rounds" max_rounds; { t with max_rounds }

let with_max_retries max_retries t =
  non_negative "max_retries" max_retries;
  { t with max_retries }

let with_retry_backoff_us retry_backoff_us t =
  positive "retry_backoff_us" retry_backoff_us;
  { t with retry_backoff_us }

let with_backoff_factor backoff_factor t =
  if backoff_factor < 1 then invalid_arg "Config: backoff_factor < 1";
  { t with backoff_factor }

let with_timeout_base_us timeout_base_us t =
  non_negative "timeout_base_us" timeout_base_us;
  { t with timeout_base_us }

let with_timeout_per_hop_us timeout_per_hop_us t =
  non_negative "timeout_per_hop_us" timeout_per_hop_us;
  { t with timeout_per_hop_us }

let with_suspicion_decay suspicion_decay t =
  non_negative "suspicion_decay" suspicion_decay;
  { t with suspicion_decay }

let with_domains domains t =
  if domains < 1 || domains > 128 then invalid_arg "Config: domains outside [1, 128]";
  { t with domains }

let with_backend backend t = { t with backend }

let pool t = if t.domains = 1 then None else Some (Sdn_parallel.pool ~domains:t.domains)

let serialization_us t ~packets =
  let bytes = packets * t.probe_size_bytes in
  int_of_float (1e6 *. float_of_int bytes /. float_of_int t.send_rate_bytes_per_s)

let probe_timeout_us t ~hops = t.timeout_base_us + (hops * t.timeout_per_hop_us)

let backoff_cap_us = 10_000_000

let backoff_us t ~attempt =
  if attempt < 1 then invalid_arg "Config.backoff_us: attempt < 1";
  let rec scale acc n =
    if n = 0 || acc >= backoff_cap_us then acc else scale (acc * t.backoff_factor) (n - 1)
  in
  min backoff_cap_us (scale t.retry_backoff_us (attempt - 1))
