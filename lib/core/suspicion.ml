type t = {
  threshold : int;
  levels : (int, int) Hashtbl.t; (* rule -> suspicion *)
  flagged : (int, float * int) Hashtbl.t; (* switch -> time, round *)
}

let create ~threshold = { threshold; levels = Hashtbl.create 64; flagged = Hashtbl.create 16 }

let threshold t = t.threshold

let bump_rule t rule =
  Hashtbl.replace t.levels rule (1 + Option.value ~default:0 (Hashtbl.find_opt t.levels rule))

let level t rule = Option.value ~default:0 (Hashtbl.find_opt t.levels rule)

let decay_rule t rule ~amount =
  if amount < 0 then invalid_arg "Suspicion.decay_rule: negative amount";
  match Hashtbl.find_opt t.levels rule with
  | None -> ()
  | Some l ->
      let l' = max 0 (l - amount) in
      if l' = 0 then Hashtbl.remove t.levels rule else Hashtbl.replace t.levels rule l'

let exceeds_threshold t rule = level t rule > t.threshold

let flag t ~switch ~time_s ~round =
  if not (Hashtbl.mem t.flagged switch) then Hashtbl.add t.flagged switch (time_s, round)

let is_flagged t switch = Hashtbl.mem t.flagged switch

(* Both folds feed List.sort directly (the D001-sanctioned shape).
   The sort keys are not total — equal-time detections and equal-level
   rules keep the fold's order — but that residue is still
   deterministic: t.flagged/t.levels are built in probe-report order
   on the coordinator domain, and OCaml's Hashtbl iterates a fixed
   insertion sequence identically on every run. The PR2/PR3 golden
   digests pin exactly these bytes, so the tie order must not change. *)
let detections t =
  Hashtbl.fold (fun sw (time_s, round) acc -> (sw, time_s, round) :: acc) t.flagged []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)

let rule_levels t =
  Hashtbl.fold (fun r l acc -> if l > 0 then (r, l) :: acc else acc) t.levels []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let region_levels t ~region_of_rule =
  (* Aggregate to regions through an intermediate table, then sort on
     the full (level desc, region asc) key — the order is total, so
     unlike the folds above nothing depends on hash iteration order. *)
  let per_region : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* sdncheck: allow D001 — per-key addition is commutative, so the
     aggregate is iteration-order independent *)
  Hashtbl.iter
    (fun r l ->
      if l > 0 then begin
        let reg = region_of_rule r in
        Hashtbl.replace per_region reg
          (l + Option.value ~default:0 (Hashtbl.find_opt per_region reg))
      end)
    t.levels;
  Hashtbl.fold (fun reg l acc -> (reg, l) :: acc) per_region []
  |> List.sort (fun (ra, la) (rb, lb) ->
         if la <> lb then compare lb la else compare ra rb)
