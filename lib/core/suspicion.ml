type t = {
  threshold : int;
  levels : (int, int) Hashtbl.t; (* rule -> suspicion *)
  flagged : (int, float * int) Hashtbl.t; (* switch -> time, round *)
}

let create ~threshold = { threshold; levels = Hashtbl.create 64; flagged = Hashtbl.create 16 }

let threshold t = t.threshold

let bump_rule t rule =
  Hashtbl.replace t.levels rule (1 + Option.value ~default:0 (Hashtbl.find_opt t.levels rule))

let level t rule = Option.value ~default:0 (Hashtbl.find_opt t.levels rule)

let decay_rule t rule ~amount =
  if amount < 0 then invalid_arg "Suspicion.decay_rule: negative amount";
  match Hashtbl.find_opt t.levels rule with
  | None -> ()
  | Some l ->
      let l' = max 0 (l - amount) in
      if l' = 0 then Hashtbl.remove t.levels rule else Hashtbl.replace t.levels rule l'

let exceeds_threshold t rule = level t rule > t.threshold

let flag t ~switch ~time_s ~round =
  if not (Hashtbl.mem t.flagged switch) then Hashtbl.add t.flagged switch (time_s, round)

let is_flagged t switch = Hashtbl.mem t.flagged switch

let detections t =
  Hashtbl.fold (fun sw (time_s, round) acc -> (sw, time_s, round) :: acc) t.flagged []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)

let rule_levels t =
  Hashtbl.fold (fun r l acc -> if l > 0 then (r, l) :: acc else acc) t.levels []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
