(** Plan certification: re-establish each pipeline answer with an
    independent checker (see [lib/cert] and docs/CERTIFY.md).

    Four sections: [sat] (proof-logged replay of the unique-header
    queries — models checked against every clause, refutations
    DRUP-checked, headers compared bit-for-bit with the plan's),
    [matching] (König-certified maximum matching of the MLPC bipartite
    graph; [|paths| = n_testable − |M|] certifies the cover minimum via
    Theorem 1), [cover] (cache-free replay of every probe's path
    witness plus a recomputed coverage bitmap) and [yen] (sampled
    k-shortest-path queries re-checked against an independent
    Bellman–Ford). *)

type check = { name : string; ok : bool; detail : string }
type section = { title : string; checks : check list }
type report = { sections : section list }

val run : ?yen_pairs:int -> ?seed:int -> Plan.t -> report
(** Certify a generated plan. [yen_pairs] (default 8) source/destination
    samples are drawn with [seed] (default 7) for the Yen section. *)

val ok_report : report -> bool
(** All checks of all sections hold. *)

val to_json : report -> Sdn_util.Json.t
(** Machine-readable certificate report ([schema_version] 1). *)

val pp : Format.formatter -> report -> unit
