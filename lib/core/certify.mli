(** Plan certification: re-establish each pipeline answer with an
    independent checker (see [lib/cert] and docs/CERTIFY.md).

    Four sections: [sat] (proof-logged replay of the unique-header
    queries — models checked against every clause, refutations
    DRUP-checked, headers compared bit-for-bit with the plan's),
    [matching] (König-certified maximum matching of the MLPC bipartite
    graph; [|paths| = n_testable − |M|] certifies the cover minimum via
    Theorem 1), [cover] (cache-free replay of every probe's path
    witness plus a recomputed coverage bitmap) and [yen] (sampled
    k-shortest-path queries re-checked against an independent
    Bellman–Ford). *)

type check = { name : string; ok : bool; detail : string }
type section = { title : string; checks : check list }

type report = {
  sections : section list;
  patch_events : Report.patch_event list;
      (** incremental re-plans this certificate covers ([run_patch]);
          empty for batch certification *)
}

val run : ?yen_pairs:int -> ?seed:int -> Plan.t -> report
(** Certify a generated plan. [yen_pairs] (default 8) source/destination
    samples are drawn with [seed] (default 7) for the Yen section. *)

val run_patch :
  ?yen_pairs:int ->
  ?seed:int ->
  ?event:Report.patch_event ->
  before:Probe.t list ->
  patch:Plan.patch ->
  Plan.t ->
  report
(** Certify one incremental re-plan: the full {!run} sections over the
    post-edit plan, preceded by a [patch] section checking the
    {!Plan.patch} as an accounting identity between the two probe lists
    (removed/rewritten-from probes all in the pre-edit plan, added/
    rewritten-to probes all in the post-edit plan, the untouched
    remainder identical on both sides as a (path, header) multiset,
    post-edit ids canonical). The pre-edit plan's own witnesses are
    {e not} replayed — its network has been mutated in place — which is
    why the patch check is pure bookkeeping with the certifier's own
    multiset arithmetic. [event] (if given) is recorded as the
    report's single patch event. *)

val ok_report : report -> bool
(** All checks of all sections hold. *)

val schema_version : int
(** Current version: 2 (v1 plus the [patch_events] array). *)

val to_json : report -> Sdn_util.Json.t
(** Machine-readable certificate report. *)

val of_json : Sdn_util.Json.t -> (report, string) result
(** Parse a certificate report back. Version 1 documents (no
    [patch_events]) are accepted and parse with [patch_events = \[\]].
    The derived [certified] / per-section [ok] fields are recomputed,
    not trusted. *)

val pp : Format.formatter -> report -> unit
