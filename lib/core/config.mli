(** Detection parameters.

    Defaults follow the paper's evaluation setup: probes serialized at
    250 KB/s from the controller, detection threshold 3. Probe size,
    per-hop latency and per-round controller overhead parameterize the
    virtual-time model (the paper's testbed values are not published;
    these are typical OpenFlow figures and only scale absolute delays,
    not orderings).

    The record is {e private}: read fields directly, but build values
    with {!make} (or derive them with the [with_*] updaters) so that
    adding a knob never breaks construction sites. {!default} is
    exactly [make ()].

    The loss-tolerance knobs ([max_retries], backoff, timeouts,
    [suspicion_decay]) default to the values that reproduce the seed
    detection loop bit-for-bit: [max_retries = 0] disables the
    retransmission state machine entirely. Enable it (e.g. via
    {!resilient}) when the emulator carries an
    {!Dataplane.Impairment}. *)

type backend_kind =
  | Emulator  (** in-process data-plane emulator, virtual time *)
  | Wire
      (** emulated switches as UDP endpoints on localhost, probes as
          real datagrams, real time (lib/wire, docs/WIRE.md) *)

type t = private {
  threshold : int;
      (** suspicion level that flags a switch, dimensionless (paper: 3) *)
  send_rate_bytes_per_s : int;
      (** probe serialization rate in bytes/second (paper: 250 KB/s) *)
  probe_size_bytes : int;  (** bytes per test packet (default 100) *)
  per_hop_latency_us : int;
      (** link + switch traversal latency in microseconds per hop
          (default 500) *)
  per_round_overhead_us : int;
      (** controller round-trip + processing per detection round, in
          microseconds (default 50 ms) *)
  max_rounds : int;
      (** hard stop for the detection loop, in rounds (default 200) *)
  max_retries : int;
      (** retransmissions of a probe within a round before it is
          classified failed, count (default 0 = seed behaviour: one
          send, no timeout accounting) *)
  retry_backoff_us : int;
      (** wait before the first retransmission, in microseconds
          (default 10 ms); only meaningful when [max_retries > 0] *)
  backoff_factor : int;
      (** multiplier applied to the backoff per further retransmission
          (exponential backoff), dimensionless (default 2) *)
  timeout_base_us : int;
      (** fixed part of the per-probe echo timeout, in microseconds
          (default 20 ms) *)
  timeout_per_hop_us : int;
      (** path-length-proportional part of the per-probe timeout, in
          microseconds per hop (default 2 ms); the full timeout for a
          probe is [timeout_base_us + hops * timeout_per_hop_us] *)
  suspicion_decay : int;
      (** suspicion levels removed from every rule of a tested path
          when its probe passes a re-test, levels (default 0 = seed
          behaviour; 1 suppresses suspicion accumulated from transient
          loss) *)
  domains : int;
      (** degree of parallelism for the planning/probing pipeline, in
          domains (default: the [SDNPROBE_DOMAINS] environment variable,
          else 1). Every stage is deterministic in the domain count —
          reports are byte-identical at any value (docs/PARALLEL.md) —
          so this knob only trades wall-clock for cores. *)
  backend : backend_kind;
      (** probe-delivery backend the detection loop runs over (default
          [Emulator]; [Wire] is real-time, so reports are no longer
          bit-for-bit reproducible) *)
}

val make :
  ?threshold:int ->
  ?send_rate_bytes_per_s:int ->
  ?probe_size_bytes:int ->
  ?per_hop_latency_us:int ->
  ?per_round_overhead_us:int ->
  ?max_rounds:int ->
  ?max_retries:int ->
  ?retry_backoff_us:int ->
  ?backoff_factor:int ->
  ?timeout_base_us:int ->
  ?timeout_per_hop_us:int ->
  ?suspicion_decay:int ->
  ?domains:int ->
  ?backend:backend_kind ->
  unit ->
  t
(** Build a configuration; every omitted knob takes the default listed
    above. Raises [Invalid_argument] on non-positive rates/sizes/
    latencies, a negative retry/decay count, or a [backoff_factor < 1]. *)

val default : t
(** [make ()]. *)

val resilient : t
(** The loss-tolerant profile used by the error-prone-environment
    experiments: [make ~max_retries:2 ~suspicion_decay:1 ()]. *)

(** {2 Updaters} — each returns a copy with one field replaced. *)

val with_threshold : int -> t -> t

val with_send_rate_bytes_per_s : int -> t -> t

val with_probe_size_bytes : int -> t -> t

val with_per_hop_latency_us : int -> t -> t

val with_per_round_overhead_us : int -> t -> t

val with_max_rounds : int -> t -> t

val with_max_retries : int -> t -> t

val with_retry_backoff_us : int -> t -> t

val with_backoff_factor : int -> t -> t

val with_timeout_base_us : int -> t -> t

val with_timeout_per_hop_us : int -> t -> t

val with_suspicion_decay : int -> t -> t

val with_domains : int -> t -> t

val with_backend : backend_kind -> t -> t

val pool : t -> Sdn_parallel.Pool.t option
(** The process-wide pool matching [t.domains]: [None] when
    [domains = 1] (stages then take their inline sequential path). *)

(** {2 Derived quantities} *)

val serialization_us : t -> packets:int -> int
(** Virtual time to push [packets] probes out of the controller. *)

val probe_timeout_us : t -> hops:int -> int
(** Echo timeout for a probe whose tested path has [hops] rules:
    [timeout_base_us + hops * timeout_per_hop_us]. *)

val backoff_us : t -> attempt:int -> int
(** Wait before retransmission number [attempt] (1-based):
    [retry_backoff_us * backoff_factor ^ (attempt - 1)], saturating at
    10 s so a misconfigured factor cannot stall the virtual clock.
    Raises [Invalid_argument] when [attempt < 1]. *)
