(** A probe: one test packet bound to one tested path.

    The [rules] field is the expanded rule sequence (entry ids) the
    packet must traverse; the probe is injected at the first rule's
    switch and captured by a return trap keyed on the last rule and the
    expected post-rewrite header (§VI). Sub-probes produced by path
    slicing (§VI, Algorithm 2) share the parent's header but inject
    mid-path. *)

type t = {
  id : int;
  rules : int list;  (** entry ids in traversal order; non-empty *)
  header : Hspace.Header.t;  (** header as injected *)
  inject_switch : int;
  terminal_switch : int;
  terminal_rule : int;
  expected_header : Hspace.Header.t;
      (** header after the terminal rule's set field: the trap key *)
}

val make : Openflow.Network.t -> id:int -> rules:int list -> header:Hspace.Header.t -> t
(** Derives switches and the expected header by folding set fields over
    [rules]. Raises [Invalid_argument] on an empty rule list. *)

val headers_along : Openflow.Network.t -> rules:int list -> Hspace.Header.t -> Hspace.Header.t list
(** Header after each rule of the sequence (same length as [rules]). *)

val hop_count : t -> int

val slice :
  ?region_of:(int -> int) ->
  Openflow.Network.t ->
  fresh_id:(unit -> int) ->
  t ->
  (t * t) option
(** Split the probe's path into two sub-probes at a switch boundary
    (the second half must start at a table-0 rule so the controller can
    inject there). [None] when the path has a single rule or no valid
    cut point. The first half keeps the parent's injected header; the
    second half is injected with the header the packet would carry at
    the cut.

    [region_of] (a switch-to-region map, e.g. [Shard.Splan.region_of])
    turns slicing hierarchical: table-0 cuts at region borders are
    preferred, so a failing cross-region probe is first bisected into
    per-region halves — localizing the fault to a region — before
    ordinary within-region bisection takes over. Without it (the
    default) behaviour is byte-identical to before the option
    existed. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Sdn_util.Json.t
(** Flat object with every field; headers as ternary strings. Emitted
    inside {!Plan.patch_to_json} and the [sdnprobe watch] JSON stream. *)
