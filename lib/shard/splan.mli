(** Sharded probe planning: the two-level cover (docs/SHARD.md).

    The network is partitioned into regions ({!Partition}); each region
    gets its own rule graph and minimum legal path cover, built
    independently (and, with a pool, in parallel — one task per region,
    joined in region order). Cross-region forwarding is then recovered
    by {e stitching}: a chain whose tail forwards into another region
    is greedily composed with a chain starting at that switch whenever
    the forward fold through the composition stays non-empty, so one
    probe tests the whole cross-border path. Headers are assigned over
    the composed cover ([Sat_unique]) and lowered to ordinary
    {!Sdnprobe.Probe.t} values — the detection loop downstream is
    unchanged.

    Every step is deterministic (BFS partition, region-order joins,
    plan-order greedy stitching, canonical SAT models), so a sharded
    plan is byte-identical at any domain count — same contract as the
    flat pipeline.

    What sharding trades away: MLPC minimality is per-region, so the
    composed cover can use more probes than the flat minimum, and a
    cross-region path is tested only if the greedy stitch finds it.
    Every testable rule is still covered — coverage comes from the
    per-region covers, which see identical input/output spaces to the
    flat graph ({!Openflow.Network.sub}). *)

type stats = {
  regions : int;
  cut_edges : int;  (** topology links between regions *)
  border_rules : int;  (** rules forwarding across a region border *)
  chains : int;  (** per-region cover paths before stitching *)
  stitched : int;  (** cross-region compositions performed *)
  inter_edges : int;  (** inter-shard graph edges (before legality) *)
  region_vertices : int array;  (** rule-graph vertices per region *)
  region_edges : int array;  (** rule-graph edges per region *)
}

type t = {
  network : Openflow.Network.t;
  partition : Partition.t;
  probes : Sdnprobe.Probe.t list;
  untestable : int list;  (** entry ids with empty input space *)
  stats : stats;
  generation_s : float;
}

val create :
  ?pool:Sdn_parallel.Pool.t ->
  ?target:int ->
  ?assign_headers:bool ->
  Openflow.Network.t ->
  t
(** Build a sharded plan ([target] is the region size,
    {!Partition.default_target} by default). Raises
    {!Rulegraph.Rule_graph.Cyclic_policy} if some region's policy
    loops.

    [~assign_headers:false] stops after the structural build —
    partition, per-region graphs and covers, stitching — leaving
    [probes] empty but [stats] complete. Header assignment is
    byte-pinned to the SAT solver and quadratic in start-space
    collisions, so at very large scales the structural build is the
    part worth measuring (and the part [shard.build] benches). *)

val size : t -> int
(** Number of probes. *)

val region_of : t -> int -> int
(** Region of a switch — pass to [Runner.execute_probes ?region_of]
    for hierarchical slicing. *)

val stats_to_json : t -> Sdn_util.Json.t
