module Topology = Openflow.Topology
module Csr = Sdngraph.Csr

type t = {
  n_regions : int;
  region_of : int array;
  sizes : int array;
  cut_edges : int;
  adjacency : Csr.t;
}

let default_target = 50

(* Deterministic BFS edge-cut growth. Seeds are the lowest-numbered
   unassigned switches; each region absorbs BFS-reachable unassigned
   neighbours (successors in [Topology.to_digraph]'s link-insertion
   order) until it reaches the balanced cap. No RNG, no hash-order
   dependence — the partition is a pure function of the topology, so
   sharded planning inherits the pipeline's bit-for-bit determinism
   contract (docs/SHARD.md). BFS growth keeps regions connected
   whenever the topology allows it, which is what keeps the edge cut —
   and with it the border-rule count — small on backbone-plus-stub
   graphs. *)
let make ?(target = default_target) topo =
  if target < 1 then invalid_arg "Partition.make: target < 1";
  let n = Topology.n_switches topo in
  let adjacency = Csr.of_digraph (Topology.to_digraph topo) in
  let want = max 1 ((n + target - 1) / target) in
  let cap = (n + want - 1) / want in
  let region_of = Array.make n (-1) in
  let next = ref 0 in
  for seed = 0 to n - 1 do
    if region_of.(seed) < 0 then begin
      let r = !next in
      incr next;
      let count = ref 1 in
      region_of.(seed) <- r;
      let q = Queue.create () in
      Queue.add seed q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        Csr.iter_succ
          (fun w ->
            if region_of.(w) < 0 && !count < cap then begin
              region_of.(w) <- r;
              incr count;
              Queue.add w q
            end)
          adjacency v
      done
    end
  done;
  let n_regions = !next in
  let sizes = Array.make n_regions 0 in
  Array.iter (fun r -> sizes.(r) <- sizes.(r) + 1) region_of;
  let cut = ref 0 in
  Csr.iter_edges
    (fun u v -> if u < v && region_of.(u) <> region_of.(v) then incr cut)
    adjacency;
  { n_regions; region_of; sizes; cut_edges = !cut; adjacency }

let n_regions t = t.n_regions

let region_of t sw =
  if sw < 0 || sw >= Array.length t.region_of then
    invalid_arg "Partition.region_of: switch out of range";
  t.region_of.(sw)

let cut_edges t = t.cut_edges

let size t r =
  if r < 0 || r >= t.n_regions then invalid_arg "Partition.size: bad region";
  t.sizes.(r)

let switches t r =
  if r < 0 || r >= t.n_regions then invalid_arg "Partition.switches: bad region";
  let acc = ref [] in
  for sw = Array.length t.region_of - 1 downto 0 do
    if t.region_of.(sw) = r then acc := sw :: !acc
  done;
  !acc
