(** Topology partitioning for sharded planning (docs/SHARD.md).

    Splits the switch set into regions of roughly [target] switches by
    deterministic capped BFS growth over the topology graph: seeds are
    the lowest-numbered unassigned switches and each region absorbs
    BFS-reachable unassigned neighbours (in link-insertion successor
    order) up to a balanced cap. The partition is a pure function of
    the topology — no RNG, no hash-order dependence — so everything
    built on it inherits the planner's bit-for-bit determinism
    contract. *)

type t

val default_target : int
(** 50 — the flat pipeline's practical ceiling, which is what a region
    is sized to stay under. *)

val make : ?target:int -> Openflow.Topology.t -> t
(** Partition into regions of at most
    [ceil (n / ceil (n / target))] switches ([target] defaults to
    {!default_target}). Raises [Invalid_argument] if [target < 1]. *)

val n_regions : t -> int

val region_of : t -> int -> int
(** Region of a switch. Raises [Invalid_argument] out of range. *)

val cut_edges : t -> int
(** Number of topology links whose endpoints land in different
    regions. *)

val size : t -> int -> int
(** Number of switches in a region. *)

val switches : t -> int -> int list
(** The switches of a region, ascending. *)
