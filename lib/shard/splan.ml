module Network = Openflow.Network
module FE = Openflow.Flow_entry
module RG = Rulegraph.Rule_graph
module Hs = Hspace.Hs
module Cover = Mlpc.Cover
module Probe = Sdnprobe.Probe

(* Cumulative totals across every sharded plan built in the process,
   consistent with the registry's monotonic-counter semantics (the
   per-plan figures live in [stats]). *)
let c_regions = Metrics.Counter.create "shard.regions"

let c_cut_edges = Metrics.Counter.create "shard.cut_edges"

let c_border_rules = Metrics.Counter.create "shard.border_rules"

let c_chains = Metrics.Counter.create "shard.chains"

let c_stitched = Metrics.Counter.create "shard.stitched"

type stats = {
  regions : int;
  cut_edges : int;
  border_rules : int;
  chains : int;
  stitched : int;
  inter_edges : int;
  region_vertices : int array;
  region_edges : int array;
}

type t = {
  network : Network.t;
  partition : Partition.t;
  probes : Probe.t list;
  untestable : int list;
  stats : stats;
  generation_s : float;
}

(* One per-region cover path, lifted to the global plan. [vertices] are
   the region rule graph's base vertices (the path's expansion), kept
   alongside the graph so the stitcher reads input spaces and set
   fields straight out of the graph's immutable arrays — the shared
   space caches, owned by the domain that built the graph, are never
   touched from the stitching domain (SDNPROBE_POOL_CHECK). *)
type chain = {
  region : int;
  rg : RG.t;
  vertices : int list;
  entries : int list; (* entry ids, same order as [vertices] *)
  head_switch : int;
  tail_next : int option; (* switch the tail rule forwards to *)
  start_space : Hs.t;
  tail_space : Hs.t; (* Definition 1's O_n at the tail *)
}

(* Forward fold of a whole chain from [space]: the packet reaches the
   chain's head switch and is processed from table 0, and every chain
   head is a table-0 rule (injection_plan guarantees covered paths
   start there), so a non-empty fold means headers in it traverse
   exactly the chain's rules. Same op shape as the rule graph's own
   [forward_space] step. *)
let append_fold space (c : chain) =
  List.fold_left
    (fun hs v ->
      let e = RG.vertex_entry c.rg v in
      Hs.apply_set_field ~set:e.FE.set_field (Hs.inter hs (RG.input c.rg v)))
    space c.vertices

let border_rules net part =
  List.fold_left
    (fun acc (e : FE.t) ->
      match Network.next_switch net e with
      | Some sw when Partition.region_of part sw <> Partition.region_of part e.switch
        ->
          acc + 1
      | _ -> acc)
    0 (Network.all_entries net)

let create ?pool ?target ?(assign_headers = true) net =
  let t0 = Sdn_util.Mono.now_s () in
  let part = Partition.make ?target (Network.topology net) in
  let n_regions = Partition.n_regions part in
  (* Fan out one task per region: region view, rule graph, MLPC cover,
     and the tail spaces — all on the worker domain that owns the
     graph's caches. No pool is passed down: combinators are not
     reentrant, and the per-region instances are small by
     construction. *)
  let build r =
    let sub = Network.sub net (Partition.switches part r) in
    let rg = RG.build sub in
    let cover = Mlpc.Legal_matching.solve rg in
    let chains =
      List.map
        (fun (p : Cover.path) ->
          let entries =
            List.map (fun v -> (RG.vertex_entry rg v).FE.id) p.Cover.rules
          in
          let head = RG.vertex_entry rg (List.hd p.Cover.rules) in
          let last =
            RG.vertex_entry rg (List.nth p.Cover.rules (List.length p.Cover.rules - 1))
          in
          {
            region = r;
            rg;
            vertices = p.Cover.rules;
            entries;
            head_switch = head.FE.switch;
            tail_next = Network.next_switch net last;
            start_space = p.Cover.start_space;
            tail_space = RG.forward_space rg p.Cover.rules;
          })
        cover.Cover.paths
    in
    let untestable =
      List.map (fun v -> (RG.vertex_entry rg v).FE.id) cover.Cover.untestable
    in
    (rg, chains, untestable)
  in
  let indices = Array.init n_regions Fun.id in
  let results =
    match pool with
    | Some pool -> Sdn_parallel.Pool.map pool build indices
    | None -> Array.map build indices
  in
  let chains =
    Array.of_list (List.concat_map (fun (_, cs, _) -> cs) (Array.to_list results))
  in
  let untestable = List.concat_map (fun (_, _, u) -> u) (Array.to_list results) in
  let n = Array.length chains in
  (* Chain indices by head switch, ascending (plan order). Lookups
     only — never iterated. *)
  let heads : (int, int list) Hashtbl.t = Hashtbl.create (max 16 n) in
  for i = n - 1 downto 0 do
    let sw = chains.(i).head_switch in
    let tl = Option.value ~default:[] (Hashtbl.find_opt heads sw) in
    Hashtbl.replace heads sw (i :: tl)
  done;
  (* The inter-shard graph: chain -> chains whose head switch is the
     tail's cross-region forwarding target. Candidate order is plan
     order, so the greedy stitch below is deterministic. *)
  let inter =
    Sdngraph.Csr.of_successors ~n (fun i ->
        match chains.(i).tail_next with
        | Some sw when Partition.region_of part sw <> chains.(i).region ->
            Option.value ~default:[] (Hashtbl.find_opt heads sw)
        | _ -> [])
  in
  (* Two-level cover, level 2: greedily compose chains across region
     borders. Legal matching already spliced every profitable
     same-region pair, so only cross-region tails are extended; a
     candidate is accepted iff the forward fold through it stays
     non-empty (then one probe tests the whole composition). First
     unconsumed legal candidate wins — deterministic, single pass. *)
  let consumed = Array.make n false in
  let stitched = ref 0 in
  let composed = ref [] in
  for i = 0 to n - 1 do
    if not consumed.(i) then begin
      consumed.(i) <- true;
      let parts = ref [ i ] in
      let space = ref chains.(i).tail_space in
      let cur = ref i in
      let extending = ref true in
      while !extending do
        let next =
          Sdngraph.Csr.fold_succ
            (fun acc j ->
              match acc with
              | Some _ -> acc
              | None ->
                  if consumed.(j) then None
                  else
                    let space' = append_fold !space chains.(j) in
                    if Hs.is_empty space' then None else Some (j, space'))
            None inter !cur
        in
        match next with
        | Some (j, space') ->
            consumed.(j) <- true;
            incr stitched;
            parts := j :: !parts;
            space := space';
            cur := j
        | None -> extending := false
      done;
      composed := List.rev !parts :: !composed
    end
  done;
  let composed = List.rev !composed in
  (* Lower compositions to one synthetic cover path each. Paths carry
     entry ids (stable across the per-region graphs) rather than
     vertices of any one graph; header assignment only reads the start
     space, and probe construction works from entry ids. *)
  let len = Network.header_len net in
  let to_path parts =
    match parts with
    | [ i ] ->
        let c = chains.(i) in
        { Cover.vertices = c.entries; rules = c.entries; start_space = c.start_space }
    | _ ->
        let steps =
          List.concat_map
            (fun i ->
              let c = chains.(i) in
              List.map (fun v -> (c.rg, v)) c.vertices)
            parts
        in
        let start_space =
          (* Same backward preimage as the rule graph's [start_space],
             across the graph boundary. *)
          List.fold_right
            (fun (rg, v) after ->
              let e = RG.vertex_entry rg v in
              Hs.inter (RG.input rg v) (Hs.inverse_set_field ~set:e.FE.set_field after))
            steps (Hs.full len)
        in
        let entries = List.concat_map (fun i -> chains.(i).entries) parts in
        { Cover.vertices = entries; rules = entries; start_space }
  in
  let cover = { Cover.paths = List.map to_path composed; untestable = [] } in
  let probes =
    if not assign_headers then []
    else
      let assigned = Mlpc.Headers.assign ?pool Mlpc.Headers.Sat_unique cover in
      List.mapi
        (fun i ((p : Cover.path), header) ->
          Probe.make net ~id:i ~rules:p.Cover.rules ~header)
        assigned
  in
  let borders = border_rules net part in
  let stats =
    {
      regions = n_regions;
      cut_edges = Partition.cut_edges part;
      border_rules = borders;
      chains = n;
      stitched = !stitched;
      inter_edges = Sdngraph.Csr.n_edges inter;
      region_vertices =
        Array.map (fun (rg, _, _) -> RG.n_vertices rg) results;
      region_edges =
        Array.map
          (fun (rg, _, _) -> Sdngraph.Digraph.n_edges (RG.graph rg))
          results;
    }
  in
  Metrics.Counter.add c_regions stats.regions;
  Metrics.Counter.add c_cut_edges stats.cut_edges;
  Metrics.Counter.add c_border_rules stats.border_rules;
  Metrics.Counter.add c_chains stats.chains;
  Metrics.Counter.add c_stitched stats.stitched;
  {
    network = net;
    partition = part;
    probes;
    untestable;
    stats;
    generation_s = Sdn_util.Mono.now_s () -. t0;
  }

let size t = List.length t.probes

let region_of t sw = Partition.region_of t.partition sw

let stats_to_json t =
  let module J = Sdn_util.Json in
  let ints a = J.List (Array.to_list (Array.map (fun v -> J.Int v) a)) in
  J.Obj
    [
      ("regions", J.Int t.stats.regions);
      ("cut_edges", J.Int t.stats.cut_edges);
      ("border_rules", J.Int t.stats.border_rules);
      ("chains", J.Int t.stats.chains);
      ("stitched", J.Int t.stats.stitched);
      ("inter_edges", J.Int t.stats.inter_edges);
      ("region_vertices", ints t.stats.region_vertices);
      ("region_edges", ints t.stats.region_edges);
      ("probes", J.Int (size t));
      ("untestable", J.Int (List.length t.untestable));
    ]
