(** Independent RUP/DRUP proof checker.

    Validates the witnesses produced by {!Sat.Solver}'s proof logging
    without sharing any code with the solver: clauses are plain literal
    lists, propagation is a naive scan to fixpoint, and every step is
    re-checked from an empty assignment. A [Sat] answer is checked
    against every problem clause ({!check_model}); an [Unsat] answer is
    checked by replaying the DRUP derivation ({!check}) — each step must
    be RUP (assuming its negation and unit-propagating the database must
    yield a conflict), and the proof must derive the empty clause.

    Literals are DIMACS integers (non-zero; sign is polarity). *)

type error = {
  step : int option;  (** proof/clause index the check failed at *)
  clause : int list;  (** offending clause *)
  reason : string;
}

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

val check :
  ?nvars:int -> clauses:int list list -> proof:int list list -> unit ->
  (unit, error) result
(** [check ~clauses ~proof ()] replays [proof] against the problem
    [clauses]: every step must be RUP w.r.t. the clauses plus the
    accepted earlier steps, and some step must be the empty clause.
    [Ok ()] certifies the instance unsatisfiable. *)

val check_model : clauses:int list list -> bool array -> (unit, error) result
(** [check_model ~clauses model] verifies the assignment (indexed by
    variable, entry 0 unused — {!Sat.Solver.result}'s [Sat] payload)
    satisfies every clause. [Ok ()] certifies the instance satisfiable. *)
