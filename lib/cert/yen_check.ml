(* Certificates for K-shortest-path answers.

   Yen's algorithm (array-based, with a reusable Dijkstra workspace and
   incremental prefix filters since PR 3) is re-checked from the
   outside: each returned path must be a real, loopless src->dst walk;
   the list must be sorted by weight; and the first path's weight must
   equal the true shortest distance, recomputed here with Bellman–Ford —
   an algorithm sharing nothing with the Dijkstra machinery under
   audit. Optimality of ranks 2..k is NOT certified (see the mli). *)

module Digraph = Sdngraph.Digraph

let error fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Textbook Bellman-Ford: |V|-1 rounds of full edge relaxation. The
   graphs under test have non-negative weights, so no negative-cycle
   handling is needed; infinity marks unreachable. *)
let bellman_ford g src =
  let n = Digraph.n_vertices g in
  let dist = Array.make n infinity in
  dist.(src) <- 0.;
  let edges = Digraph.edges g in
  for _ = 1 to n - 1 do
    List.iter
      (fun (u, v) ->
        match Digraph.weight g u v with
        | Some w -> if dist.(u) +. w < dist.(v) then dist.(v) <- dist.(u) +. w
        | None -> ())
      edges
  done;
  dist

let path_weight g path =
  let rec loop acc = function
    | [] | [ _ ] -> Ok acc
    | u :: (v :: _ as rest) -> (
        match Digraph.weight g u v with
        | Some w -> loop (acc +. w) rest
        | None -> error "edge (%d, %d) does not exist in the graph" u v)
  in
  loop 0. path

let check_one g ~src ~dst rank path =
  match path with
  | [] -> error "path %d is empty" rank
  | first :: _ ->
      let last = List.nth path (List.length path - 1) in
      if first <> src then
        error "path %d starts at %d, not at src %d" rank first src
      else if last <> dst then
        error "path %d ends at %d, not at dst %d" rank last dst
      else begin
        let seen = Hashtbl.create 16 in
        let rec loopfree = function
          | [] -> Ok ()
          | v :: rest ->
              if Hashtbl.mem seen v then
                error "path %d revisits vertex %d (not loopless)" rank v
              else begin
                Hashtbl.add seen v ();
                loopfree rest
              end
        in
        let* () = loopfree path in
        let* w = path_weight g path in
        Ok w
      end

let check g ~src ~dst ~k paths =
  if List.length paths > k then
    error "answer contains %d paths, more than the requested k = %d"
      (List.length paths) k
  else begin
    let rec weights rank acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest ->
          let* w = check_one g ~src ~dst rank p in
          weights (rank + 1) (w :: acc) rest
    in
    let* ws = weights 0 [] paths in
    let rec sorted rank = function
      | [] | [ _ ] -> Ok ()
      | a :: (b :: _ as rest) ->
          if a > b +. 1e-9 then
            error
              "paths %d and %d are out of order: weights %g > %g violate \
               non-decreasing ranking"
              rank (rank + 1) a b
          else sorted (rank + 1) rest
    in
    let* () = sorted 0 ws in
    let seen = Hashtbl.create 16 in
    let rec distinct rank = function
      | [] -> Ok ()
      | p :: rest ->
          if Hashtbl.mem seen p then error "path %d is a duplicate" rank
          else begin
            Hashtbl.add seen p ();
            distinct (rank + 1) rest
          end
    in
    let* () = distinct 0 paths in
    match (paths, ws) with
    | [], [] -> (
        (* An empty answer certifies only if dst is truly unreachable. *)
        let dist = bellman_ford g src in
        if dist.(dst) = infinity then Ok ()
        else
          error
            "answer is empty but dst %d is reachable from src %d (distance \
             %g by Bellman-Ford)"
            dst src dist.(dst))
    | _ :: _, w0 :: _ ->
        let dist = bellman_ford g src in
        if abs_float (w0 -. dist.(dst)) > 1e-9 then
          error
            "rank-0 path weighs %g but the shortest src->dst distance is %g \
             (independent Bellman-Ford)"
            w0 dist.(dst)
        else Ok ()
    | _ -> assert false
  end
