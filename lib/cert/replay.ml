(* Cache-free replay of per-path legality witnesses.

   A probe-plan path certificate is (rule sequence, concrete witness
   header). Instead of trusting the rule graph's memoized start/forward
   spaces, the checker drops the witness header into the first rule's
   switch at table 0 and runs the actual OpenFlow lookup semantics
   ({!Openflow.Flow_table.lookup}, set-field rewrite, output/goto
   dispatch), asserting that the traversed entries are exactly the
   certified sequence. Any stale cache, wrong tie-break or bogus
   preimage computation upstream surfaces here as a concrete
   lookup-level mismatch. *)

module FE = Openflow.Flow_entry
module Network = Openflow.Network
module Flow_table = Openflow.Flow_table
module Header = Hspace.Header
module Hs = Hspace.Hs

type witness = { rules : int list; header : Header.t }

let error fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let check_path net { rules; header } =
  match rules with
  | [] -> Error "empty rule sequence"
  | first :: _ -> (
      match Network.find_entry net first with
      | None -> error "unknown entry id %d" first
      | Some e when e.FE.table <> 0 ->
          error
            "entry %d sits in table %d: a probe enters its switch at table \
             0, so the witness sequence must start there"
            first e.FE.table
      | Some e when Header.length header <> Network.header_len net ->
          ignore e;
          error "witness header has %d bits, the network uses %d"
            (Header.length header) (Network.header_len net)
      | Some e ->
          let rec walk i h sw tb = function
            | [] -> Ok ()
            | r :: rest -> (
                match Flow_table.lookup (Network.table net ~switch:sw ~table:tb) h with
                | None ->
                    error
                      "hop %d: header %s dies on table-miss at sw%d table %d \
                       (expected entry %d)"
                      i (Header.to_string h) sw tb r
                | Some hit when hit.FE.id <> r ->
                    error
                      "hop %d: lookup at sw%d table %d returns entry %d, \
                       witness claims entry %d"
                      i sw tb hit.FE.id r
                | Some hit -> (
                    let h' = FE.apply hit h in
                    if rest = [] then Ok ()
                    else
                      match hit.FE.action with
                      | FE.Drop ->
                          error
                            "hop %d: entry %d drops the packet but the \
                             witness continues for %d more rule(s)"
                            i r (List.length rest)
                      | FE.Goto_table tb' -> walk (i + 1) h' sw tb' rest
                      | FE.Output _ -> (
                          match Network.next_switch net hit with
                          | None ->
                              error
                                "hop %d: entry %d outputs onto a link-less \
                                 port but the witness continues"
                                i r
                          | Some sw' -> walk (i + 1) h' sw' 0 rest)))
          in
          walk 0 header e.FE.switch 0 rules)

(* ------------------------------------------------------------------ *)
(* Coverage: every testable entry (non-empty input space, recomputed
   here from the flow tables, not read from any cache) is traversed by
   some planned path or explicitly declared untestable. This is the
   single implementation behind both the certification coverage check
   and the lint engine's L009 audit, so the two can never disagree. *)

let uncovered net ~probes =
  let covered = Hashtbl.create 256 in
  List.iter (List.iter (fun id -> Hashtbl.replace covered id ())) probes;
  List.filter_map
    (fun (e : FE.t) ->
      if Hashtbl.mem covered e.id then None
      else
        let input = Network.input_space net e in
        if Hs.is_empty input then None else Some (e, input))
    (Network.all_entries net)

let check_coverage net ~paths ~untestable =
  let declared = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace declared id ()) untestable;
  let covered = Hashtbl.create 256 in
  List.iter (List.iter (fun id -> Hashtbl.replace covered id ())) paths;
  let contradiction =
    List.find_opt (Hashtbl.mem covered) untestable
  in
  match contradiction with
  | Some id ->
      error
        "entry %d is declared untestable yet some certified path traverses \
         it"
        id
  | None -> (
      match
        List.filter
          (fun ((e : FE.t), _) -> not (Hashtbl.mem declared e.id))
          (uncovered net ~probes:paths)
      with
      | [] -> Ok ()
      | ((e, input) : FE.t * Hs.t) :: _ as misses ->
          error
            "%d testable entr%s escape the plan; first: entry %d (sw%d, \
             prio %d), reachable by %s"
            (List.length misses)
            (if List.length misses = 1 then "y" else "ies")
            e.id e.switch e.priority
            (Format.asprintf "%a" Hs.pp input))
