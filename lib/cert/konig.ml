(* König matching-maximality certificates.

   The certificate for "M is a maximum matching of the bipartite graph
   (L, R, E)" is a vertex cover C with |C| = |M|: every matching is at
   most any vertex cover (matched edges are vertex-disjoint, each needs
   its own cover vertex), so |M| = |C| pins M to the maximum and C to
   the minimum. The checks below are linear scans over the certificate —
   nothing of Hopcroft–Karp (or the MLPC legal-matching search) is
   consulted. *)

type t = {
  nl : int;
  nr : int;
  adj : int list array;  (** left vertex -> right neighbours *)
  match_l : int array;  (** left vertex -> matched right vertex or -1 *)
  match_r : int array;  (** right vertex -> matched left vertex or -1 *)
  cover_left : int list;  (** left side of the vertex cover *)
  cover_right : int list;  (** right side of the vertex cover *)
}

let error fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let check_matching c =
  if Array.length c.adj <> c.nl then error "adj has %d rows, nl = %d" (Array.length c.adj) c.nl
  else if Array.length c.match_l <> c.nl then
    error "match_l has length %d, nl = %d" (Array.length c.match_l) c.nl
  else if Array.length c.match_r <> c.nr then
    error "match_r has length %d, nr = %d" (Array.length c.match_r) c.nr
  else begin
    let rec left u =
      if u >= c.nl then Ok ()
      else
        let v = c.match_l.(u) in
        if v = -1 then left (u + 1)
        else if v < 0 || v >= c.nr then
          error "match_l.(%d) = %d out of range [0,%d)" u v c.nr
        else if not (List.mem v c.adj.(u)) then
          error "matched pair (%d, %d) is not an edge of the graph" u v
        else if c.match_r.(v) <> u then
          error "matching inconsistent: match_l.(%d) = %d but match_r.(%d) = %d"
            u v v c.match_r.(v)
        else left (u + 1)
    in
    let rec right v =
      if v >= c.nr then Ok ()
      else
        let u = c.match_r.(v) in
        if u = -1 then right (v + 1)
        else if u < 0 || u >= c.nl then
          error "match_r.(%d) = %d out of range [0,%d)" v u c.nl
        else if c.match_l.(u) <> v then
          error "matching inconsistent: match_r.(%d) = %d but match_l.(%d) = %d"
            v u u c.match_l.(u)
        else right (v + 1)
    in
    let* () = left 0 in
    right 0
  end

let matching_size c =
  Array.fold_left (fun acc v -> if v >= 0 then acc + 1 else acc) 0 c.match_l

let check c =
  let* () = check_matching c in
  let in_cover_l = Array.make c.nl false and in_cover_r = Array.make c.nr false in
  let rec mark side bound arr = function
    | [] -> Ok ()
    | v :: rest ->
        if v < 0 || v >= bound then
          error "cover vertex %s%d out of range [0,%d)" side v bound
        else if arr.(v) then error "cover vertex %s%d listed twice" side v
        else begin
          arr.(v) <- true;
          mark side bound arr rest
        end
  in
  let* () = mark "L" c.nl in_cover_l c.cover_left in
  let* () = mark "R" c.nr in_cover_r c.cover_right in
  let rec edges u = function
    | [] -> if u + 1 >= c.nl then Ok () else edges (u + 1) c.adj.(u + 1)
    | v :: rest ->
        if v < 0 || v >= c.nr then
          error "edge (%d, %d): right endpoint out of range [0,%d)" u v c.nr
        else if in_cover_l.(u) || in_cover_r.(v) then edges u rest
        else error "edge (%d, %d) has no endpoint in the vertex cover" u v
  in
  let* () = if c.nl = 0 then Ok () else edges 0 c.adj.(0) in
  let m = matching_size c in
  let cov = List.length c.cover_left + List.length c.cover_right in
  if m <> cov then
    error
      "|matching| = %d but |cover| = %d: certificate proves neither \
       maximality nor minimality"
      m cov
  else Ok ()
