(** König matching-maximality certificate checker.

    By König's theorem, a bipartite matching [M] shipped with a vertex
    cover [C] of the same cardinality is provably maximum: any matching
    is bounded by any vertex cover, so [|M| = |C|] certifies both. The
    producer is {!Sdngraph.Hopcroft_karp.konig_cover}; this checker
    validates the pair with three linear scans (matching consistency,
    cover hits every edge, cardinalities agree) and no reference to how
    either was computed.

    Combined with the paper's Theorem 1 (a path cover of an [n]-vertex
    rule graph has [n − |M|] chains for its successor matching [M]),
    a verified certificate proves the MLPC cover minimum — see
    docs/CERTIFY.md for the full argument. *)

type t = {
  nl : int;  (** left vertices [0..nl-1] *)
  nr : int;  (** right vertices [0..nr-1] *)
  adj : int list array;  (** left vertex -> right neighbours *)
  match_l : int array;  (** left vertex -> matched right vertex or -1 *)
  match_r : int array;  (** right vertex -> matched left vertex or -1 *)
  cover_left : int list;
  cover_right : int list;
}

val check : t -> (unit, string) result
(** Full certificate check: the matching is a valid matching over the
    graph's edges, the cover vertices are in-range and duplicate-free,
    every edge has an endpoint in the cover, and
    [|matching| = |cover|]. [Ok ()] certifies the matching maximum and
    the cover minimum. *)

val check_matching : t -> (unit, string) result
(** Just the matching-validity part (edges exist, [match_l]/[match_r]
    mutually consistent). *)

val matching_size : t -> int
