(* From-scratch RUP/DRUP proof checker.

   Deliberately dumb: clauses are plain literal lists, propagation is a
   repeated full scan to fixpoint, and every proof step is checked from
   an empty assignment. No watched literals, no activity, no sharing
   with the CDCL solver — the point is that this code has nothing in
   common with the machinery it checks. *)

type error = { step : int option; clause : int list; reason : string }

let pp_clause fmt clause =
  match clause with
  | [] -> Format.pp_print_string fmt "(empty clause)"
  | _ ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f " ")
           Format.pp_print_int)
        clause

let pp_error fmt e =
  (match e.step with
  | Some i -> Format.fprintf fmt "step %d %a: %s" i pp_clause e.clause e.reason
  | None -> Format.fprintf fmt "%s" e.reason)

let error_to_string e = Format.asprintf "%a" pp_error e

let max_var clauses =
  List.fold_left
    (fun acc clause -> List.fold_left (fun acc l -> max acc (abs l)) acc clause)
    0 clauses

(* Assignment: 0 unassigned, 1 true, -1 false, indexed by variable. *)
let value assign l =
  let a = assign.(abs l) in
  if a = 0 then 0 else if l > 0 then a else -a

let set assign l = assign.(abs l) <- (if l > 0 then 1 else -1)

(* Propagate the database to fixpoint over [assign]; true iff a clause
   is falsified. A zero-literal database clause conflicts immediately. *)
let propagate assign db =
  let conflict = ref false in
  let changed = ref true in
  while !changed && not !conflict do
    changed := false;
    List.iter
      (fun clause ->
        if not !conflict then begin
          let satisfied = ref false in
          let unassigned = ref 0 in
          let unit_lit = ref 0 in
          List.iter
            (fun l ->
              match value assign l with
              | 1 -> satisfied := true
              | 0 ->
                  incr unassigned;
                  unit_lit := l
              | _ -> ())
            clause;
          if not !satisfied then
            if !unassigned = 0 then conflict := true
            else if !unassigned = 1 && value assign !unit_lit = 0 then begin
              set assign !unit_lit;
              changed := true
            end
        end)
      db
  done;
  !conflict

(* Is [clause] an asymmetric tautology of [db]? Assume every literal
   false (a complementary or duplicate pair inside the clause conflicts
   on its own) and propagate. *)
let rup assign db clause =
  Array.fill assign 0 (Array.length assign) 0;
  let direct_conflict =
    List.exists
      (fun l ->
        match value assign l with
        | 1 -> true (* clause contains both l and -l *)
        | _ ->
            set assign (-l);
            false)
      clause
  in
  direct_conflict || propagate assign db

let check ?(nvars = 0) ~clauses ~proof () =
  let nv = max nvars (max (max_var clauses) (max_var proof)) in
  let assign = Array.make (nv + 1) 0 in
  let db = ref (List.rev clauses) (* newest first; order is irrelevant *) in
  let refuted = ref false in
  let rec steps i = function
    | [] ->
        if !refuted then Ok ()
        else
          Error
            {
              step = None;
              clause = [];
              reason =
                Printf.sprintf
                  "proof exhausted after %d step(s) without deriving the \
                   empty clause"
                  i;
            }
    | clause :: rest ->
        if rup assign !db clause then begin
          db := clause :: !db;
          if clause = [] then refuted := true;
          steps (i + 1) rest
        end
        else
          Error
            {
              step = Some i;
              clause;
              reason = "not RUP: propagating its negation yields no conflict";
            }
  in
  steps 0 proof

let check_model ~clauses model =
  let value l =
    (* Variables beyond the model (never allocated by the solver) are
       unconstrained; read them as false, like the solver's default
       phase. *)
    let v = abs l in
    let true_ = v < Array.length model && model.(v) in
    if l > 0 then true_ else not true_
  in
  let rec loop i = function
    | [] -> Ok ()
    | clause :: rest ->
        if List.exists value clause then loop (i + 1) rest
        else
          Error
            {
              step = Some i;
              clause;
              reason = "model falsifies this problem clause";
            }
  in
  loop 0 clauses
