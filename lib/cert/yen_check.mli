(** Certificate checker for K-shortest-path (Yen) answers.

    A Yen answer for [(src, dst, k)] is certified when every returned
    path is a real loopless [src]->[dst] walk of the graph, paths are
    pairwise distinct and ranked by non-decreasing weight, at most [k]
    are returned, and the rank-0 weight equals the true shortest
    distance — recomputed here by Bellman–Ford, which shares no code
    with the Dijkstra workspace inside {!Sdngraph.Yen}.

    Not certified: optimality of ranks 1..k-1 (that they are the 2nd,
    3rd, … shortest). Certifying those would require re-running a
    k-shortest-path algorithm, defeating the point of an independent
    checker; see docs/CERTIFY.md. *)

val check :
  Sdngraph.Digraph.t ->
  src:int ->
  dst:int ->
  k:int ->
  int list list ->
  (unit, string) result

val path_weight : Sdngraph.Digraph.t -> int list -> (float, string) result
(** Independent recomputation of a path's weight; [Error] if some
    consecutive pair is not an edge. *)

val bellman_ford : Sdngraph.Digraph.t -> int -> float array
(** [bellman_ford g src] is the array of shortest distances from [src]
    ([infinity] for unreachable vertices). Exposed for tests. *)
