(** Cache-free replay of path-legality witnesses and plan coverage.

    The MLPC cover's claim "a packet with header [h] injected at the
    first rule's switch traverses exactly the rule sequence [rs]" is
    re-established here by running the witness header through the
    network's real lookup semantics — highest-priority match, set-field
    rewrite, output/goto dispatch — with no reference to the rule
    graph, its memoized spaces, or the solvers that produced the plan. *)

type witness = {
  rules : int list;  (** entry ids in traversal order, starting at table 0 *)
  header : Hspace.Header.t;  (** concrete injected header *)
}

val check_path : Openflow.Network.t -> witness -> (unit, string) result
(** Simulate the witness header hop by hop; [Ok ()] certifies the rule
    sequence is a legal, injectable path of the policy. The error names
    the first diverging hop. *)

val uncovered :
  Openflow.Network.t -> probes:int list list -> (Openflow.Flow_entry.t * Hspace.Hs.t) list
(** Testable entries (non-empty input space, recomputed from the flow
    tables) traversed by no probe path, with the header space that
    would exercise them. Shared by certification and the lint engine's
    L009 pass — a single implementation, so they cannot disagree. *)

val check_coverage :
  Openflow.Network.t ->
  paths:int list list ->
  untestable:int list ->
  (unit, string) result
(** Coverage certificate: every testable entry is traversed by some
    path or listed in [untestable], and no declared-untestable entry is
    traversed (that would contradict the declaration). Note what this
    does {e not} prove: that declared-untestable entries are truly
    unreachable (for multi-table pipeline-dead rules that claim is the
    planner's; see docs/CERTIFY.md). *)
