(** Flow-rule synthesis following the paper's methodology: campus-style
    destination aggregates plus flow entries "along paths computed by an
    all-pairs K-th shortest path algorithm" (§VIII, citing Eppstein; we
    use Yen's loopless variant).

    Header layout (MSB first): [dst] switch id, [src] switch id, a
    [selector] choosing among the K engineered paths, then payload
    wildcards. Three rule layers per destination [v]:

    - a {e delivery} rule at [v] (priority 30) matching the whole
      destination block;
    - {e engineered flow} rules (priority 20): for a sample of source
      switches and each [k < k_paths], the k-th shortest loopless path
      from the source carries specific rules
      [dst=v, src=s, sel=k -> next hop] at every transit switch;
    - {e aggregate} rules (priority 10) at every other switch along the
      shortest-path tree toward [v], matching the destination block.

    Aggregates overlap the flow rules (their input spaces subtract the
    engineered carve-outs, like the campus tables' aggregate/specific
    families), and traffic can merge from an aggregate onto an
    engineered path — producing the branch/merge-rich, deep rule graphs
    of real policies. Engineered chains have the paper's legal-path
    depths (ALPS ≈ path length).

    The policy is loop-free: engineered paths are loopless and sticky
    (once a packet matches its flow's rule it stays on that path), and
    aggregate hops strictly approach the destination. A repair pass
    removes flow rules in the rare case tree/path mixing closes a loop. *)

type spec = {
  header_len : int;  (** default 32 *)
  k_paths : int;  (** K engineered paths per flow (default 2) *)
  selector_bits : int;  (** selector field width (default 3) *)
  flows_per_destination : int;  (** engineered sources per destination (default 6) *)
  destinations : int list option;  (** [None] = every switch (default) *)
  acl_rules_per_switch : int;
      (** when positive, switches get a two-table pipeline: table 0
          blacklists this many payload patterns per switch (Drop) with a
          catch-all goto to the routing table — the multi-table
          enterprise configuration (default 0: single table) *)
}

val default_spec : spec

val scaled_spec : ?max_destinations:int -> n_switches:int -> unit -> spec
(** Spec for large networks: at most [max_destinations] (default 32)
    destination blocks, stride-sampled deterministically over the
    switch ids, with a tighter engineered-flow fan — rule count grows
    O(max_destinations * n) instead of the default spec's O(n^2).
    Returns {!default_spec} unchanged when [n_switches] fits the
    budget, so small workloads are bit-identical with or without it. *)

val install : ?spec:spec -> Sdn_util.Prng.t -> Openflow.Topology.t -> Openflow.Network.t
(** Build a network over the topology and install the policy. Raises
    [Invalid_argument] when the address fields do not fit the header. *)

val prefix_bits : n_switches:int -> int
(** Bits needed to encode a switch id. *)

val block_of : header_len:int -> prefix_bits:int -> int -> Hspace.Cube.t
(** Destination block cube of a switch id. *)
