module Topology = Openflow.Topology
module Network = Openflow.Network
module FE = Openflow.Flow_entry
module Cube = Hspace.Cube
module Digraph = Sdngraph.Digraph
module SP = Sdngraph.Shortest_path
module Yen = Sdngraph.Yen

type spec = {
  header_len : int;
  k_paths : int;
  selector_bits : int;
  flows_per_destination : int;
  destinations : int list option;
  acl_rules_per_switch : int;
}

let default_spec =
  {
    header_len = 32;
    k_paths = 2;
    selector_bits = 3;
    flows_per_destination = 6;
    destinations = None;
    acl_rules_per_switch = 0;
  }

(* Policies at ISP scale do not carry one aggregate tree per router:
   the number of externally-visible prefixes a backbone cares about
   grows far slower than the router count. The scaled spec mirrors
   that — a fixed budget of destination blocks, stride-sampled over the
   switch ids (deterministic: no RNG draw, so changing the budget never
   perturbs the draws the default workloads consume), and a slightly
   tighter engineered-flow fan so the rule count stays O(budget * n)
   instead of O(n^2). Small networks keep the default spec unchanged. *)
let scaled_spec ?(max_destinations = 32) ~n_switches () =
  if n_switches <= max_destinations then default_spec
  else
    let stride = n_switches / max_destinations in
    {
      default_spec with
      destinations = Some (List.init max_destinations (fun k -> k * stride));
      flows_per_destination = 4;
    }

let prefix_bits ~n_switches =
  let rec bits p = if 1 lsl p >= n_switches then p else bits (p + 1) in
  max 1 (bits 1)

(* Cube fixing bits [lo, lo+width) to [value]'s binary form (MSB first),
   all other positions wildcard. *)
let bits_cube ~header_len ~lo ~width value =
  Cube.of_bits
    (Array.init header_len (fun k ->
         if k >= lo && k < lo + width then
           if value land (1 lsl (width - 1 - (k - lo))) <> 0 then Cube.One else Cube.Zero
         else Cube.Any))

let block_of ~header_len ~prefix_bits v = bits_cube ~header_len ~lo:0 ~width:prefix_bits v

let install ?(spec = default_spec) rng topo =
  let n = Topology.n_switches topo in
  let p = prefix_bits ~n_switches:n in
  if (2 * p) + spec.selector_bits > spec.header_len then
    invalid_arg "Rule_gen.install: dst+src+selector bits exceed header length";
  if spec.k_paths > 1 lsl spec.selector_bits then
    invalid_arg "Rule_gen.install: more paths than selector values";
  let with_acl = spec.acl_rules_per_switch > 0 in
  let net =
    Network.create ~header_len:spec.header_len
      ~tables_per_switch:(if with_acl then 2 else 1)
      topo
  in
  let routing_table = if with_acl then 1 else 0 in
  let destinations =
    match spec.destinations with Some ds -> ds | None -> List.init n Fun.id
  in
  let block v = block_of ~header_len:spec.header_len ~prefix_bits:p v in
  let flow_cube ~dst ~src ~sel =
    let c1 = block dst in
    let c2 = bits_cube ~header_len:spec.header_len ~lo:p ~width:p src in
    let c3 =
      bits_cube ~header_len:spec.header_len ~lo:(2 * p) ~width:spec.selector_bits sel
    in
    match Option.bind (Cube.inter c1 c2) (Cube.inter c3) with
    | Some c -> c
    | None -> assert false
  in
  let add_rule ~switch ~priority ~match_ ~next =
    match Topology.port_towards topo ~src:switch ~dst:next with
    | None -> invalid_arg "Rule_gen: hop without a link"
    | Some port ->
        ignore
          (Network.add_entry net ~switch ~table:routing_table ~priority ~match_
             (FE.Output port))
  in
  (* ACL pipeline (multi-table policies): table 0 blacklists a few
     payload patterns per switch (think port/protocol filters) and sends
     everything else to the routing table via goto — the two-table
     pipeline of enterprise switches. Routing rules leave payload bits
     wildcarded, so the blacklist never starves a route of headers. *)
  if with_acl then begin
    let acl_width = 6 in
    if (2 * p) + spec.selector_bits + acl_width > spec.header_len then
      invalid_arg "Rule_gen.install: no payload bits left for ACL patterns";
    if spec.acl_rules_per_switch > 1 lsl (acl_width - 1) then
      invalid_arg "Rule_gen.install: too many ACL rules per switch";
    for sw = 0 to n - 1 do
      List.iter
        (fun pattern ->
          ignore
            (Network.add_entry net ~switch:sw ~table:0 ~priority:20
               ~match_:
                 (bits_cube ~header_len:spec.header_len
                    ~lo:((2 * p) + spec.selector_bits)
                    ~width:acl_width pattern)
               FE.Drop))
        (Sdn_util.Prng.sample_without_replacement rng spec.acl_rules_per_switch
           (1 lsl acl_width));
      (* Per-destination gotos rather than one catch-all: a wildcard
         goto would connect every destination's rules to every other's
         in the rule graph and manufacture pairwise (untraversable)
         cycles, breaking the DAG precondition. *)
      for v = 0 to n - 1 do
        ignore
          (Network.add_entry net ~switch:sw ~table:0 ~priority:1 ~match_:(block v)
             (FE.Goto_table 1))
      done
    done
  end;
  let g = Topology.to_digraph topo in
  List.iter
    (fun v ->
      ignore
        (Network.add_entry net ~switch:v ~table:routing_table ~priority:30
           ~match_:(block v) FE.Drop);
      (* Aggregates: destination-based shortest-path tree toward v. *)
      let tree = SP.dijkstra g v in
      for u = 0 to n - 1 do
        if u <> v && tree.SP.dist.(u) <> infinity then
          add_rule ~switch:u ~priority:10 ~match_:(block v) ~next:tree.SP.parent.(u)
      done;
      (* Engineered flows: K loopless shortest paths for sampled
         sources. *)
      let others = List.filter (fun s -> s <> v) (List.init n Fun.id) in
      let sources =
        if spec.flows_per_destination >= List.length others then others
        else
          List.map (List.nth others)
            (Sdn_util.Prng.sample_without_replacement rng spec.flows_per_destination
               (List.length others))
      in
      List.iter
        (fun s ->
          let paths = Yen.k_shortest g ~src:s ~dst:v ~k:spec.k_paths in
          List.iteri
            (fun k path ->
              let match_ = flow_cube ~dst:v ~src:s ~sel:k in
              let rec hops = function
                | [] | [ _ ] -> ()
                | a :: (b :: _ as rest) ->
                    add_rule ~switch:a ~priority:20 ~match_ ~next:b;
                    hops rest
              in
              hops path)
            paths)
        sources)
    destinations;
  (* Mixing aggregate trees with engineered paths can in rare cases
     close a forwarding loop; routing policies are loop-free by
     assumption (§V-A), so repair by dropping an engineered rule on the
     cycle until the rule graph is a DAG. *)
  let rec repair () =
    match Rulegraph.Rule_graph.build ~closure:false net with
    | (_ : Rulegraph.Rule_graph.t) -> ()
    | exception Rulegraph.Rule_graph.Cyclic_policy cycle ->
        (match List.find_opt (fun id -> (Network.entry net id).FE.priority = 20) cycle with
        | Some id -> Network.remove_entry net id
        | None -> (
            match cycle with
            | id :: _ -> Network.remove_entry net id
            | [] -> assert false));
        repair ()
  in
  repair ();
  net
