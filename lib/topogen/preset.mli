(** Canonical workload presets, keyed by switch count.

    [scale ~n_switches] is {e the} deterministic Rocketfuel-like
    workload at a given size — seed [1000 + n_switches], preferential
    attachment, {!Rule_gen.install} — shared by the bench-regress
    suite, the CI scale-smoke job and the scale tests so before/after
    runs and gates all see byte-identical inputs. Sizes above 50
    switches use {!Rule_gen.scaled_spec} (bounded destination blocks,
    rule count O(budget * n)); 16/50 keep the default spec and are
    bit-identical to the historical bench workloads. *)

val seed : n_switches:int -> int
(** The preset PRNG seed, [1000 + n_switches]. *)

val scale : n_switches:int -> Openflow.Topology.t * Openflow.Network.t
