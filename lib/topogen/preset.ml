(* Canonical per-scale workloads. One seed and spec per switch count,
   derived the same way everywhere, so the bench suite, the CI
   scale-smoke job and the tests all measure the same network. *)

let seed ~n_switches = 1000 + n_switches

let scale ~n_switches =
  let rng = Sdn_util.Prng.create (seed ~n_switches) in
  let topo = Topo_gen.rocketfuel_like rng ~n_switches () in
  let net =
    (* The 16/50-switch workloads predate [scaled_spec] and their
       timings are committed (BENCH_*.json); keep them bit-identical by
       only capping destinations past the historical sizes. *)
    if n_switches > 50 then
      Rule_gen.install ~spec:(Rule_gen.scaled_spec ~n_switches ()) rng topo
    else Rule_gen.install rng topo
  in
  (topo, net)
