(** SAT encodings of header-selection queries.

    The paper uses MiniSat for two queries:

    - §V-A: find a concrete header inside a rule's input space
      [r.in = r.m − ∪ overlapping q.m] (computing the input is
      NP-complete in general, but concrete witnesses are easy for SAT);
    - §VI: find a {e unique} test header for a tested path — inside the
      path's header space, outside the match of every other flow entry
      on the on-path switches, and different from all previously chosen
      test headers.

    One Boolean variable per header bit (variable [k+1] is bit [k]). *)

val encode_in_cube : Solver.t -> Hspace.Cube.t -> unit
(** Constrain the header to lie inside the cube: one unit clause per
    fixed bit. *)

val encode_not_in_cube : Solver.t -> Hspace.Cube.t -> unit
(** Constrain the header to lie outside the cube: one clause negating
    the conjunction of its fixed bits. A fully-wildcard cube makes the
    instance unsatisfiable (the empty clause). *)

val encode_differs_from : Solver.t -> Hspace.Header.t -> unit
(** Constrain the header to differ from a concrete header in at least
    one bit position (a blocking clause). *)

val find_header :
  ?avoid:Hspace.Cube.t list ->
  ?distinct_from:Hspace.Header.t list ->
  inside:Hspace.Cube.t list ->
  int ->
  Hspace.Header.t option
(** [find_header ~avoid ~distinct_from ~inside len] solves for a
    concrete [len]-bit header that lies inside {e every} cube of
    [inside], outside every cube of [avoid], and differs from every
    header in [distinct_from]. [None] when unsatisfiable. *)

val find_rule_input : match_:Hspace.Cube.t -> overlaps:Hspace.Cube.t list -> Hspace.Header.t option
(** The paper's §V-A query: a header matching [match_] but none of the
    higher-priority [overlaps]. *)

type certified = {
  header : Hspace.Header.t option;  (** the answer, as {!find_header} *)
  nvars : int;  (** at least the header bit-length *)
  clauses : int list list;  (** the encoded instance, DIMACS literals *)
  proof : int list list;
      (** DRUP derivation steps; ends with [[]] iff [header = None] *)
}

val find_header_certified :
  ?avoid:Hspace.Cube.t list ->
  ?distinct_from:Hspace.Header.t list ->
  inside:Hspace.Cube.t list ->
  int ->
  certified
(** {!find_header} with proof logging enabled: the same answer, plus
    everything an independent checker needs — the problem clauses for a
    [Sat] model check, the DRUP proof for an [Unsat] refutation check
    (see [Cert.Drup]). *)

val model_to_header : bool array -> int -> Hspace.Header.t
(** Decode a solver model into a header of the given bit-length. *)
