module Cube = Hspace.Cube
module Header = Hspace.Header

(* Variable for bit k (0-based) is k+1; positive literal = bit is 1. *)
let lit_of_bit k value = if value then k + 1 else -(k + 1)

let fixed_bits cube =
  let rec loop k acc =
    if k >= Cube.length cube then List.rev acc
    else
      match Cube.get cube k with
      | Cube.Any -> loop (k + 1) acc
      | Cube.Zero -> loop (k + 1) ((k, false) :: acc)
      | Cube.One -> loop (k + 1) ((k, true) :: acc)
  in
  loop 0 []

let encode_in_cube solver cube =
  List.iter
    (fun (k, v) -> Solver.add_clause solver [ lit_of_bit k v ])
    (fixed_bits cube)

let encode_not_in_cube solver cube =
  (* ¬(b_{k1}=v1 ∧ ... ∧ b_{kn}=vn)  ≡  (b_{k1}≠v1 ∨ ... ∨ b_{kn}≠vn) *)
  Solver.add_clause solver
    (List.map (fun (k, v) -> lit_of_bit k (not v)) (fixed_bits cube))

let encode_differs_from solver (header : Header.t) =
  encode_not_in_cube solver (header :> Cube.t)

let model_to_header model len =
  Header.of_cube
    (Cube.of_bits
       (Array.init len (fun k ->
            if k + 1 < Array.length model && model.(k + 1) then Cube.One
            else Cube.Zero)))

let find_header ?(avoid = []) ?(distinct_from = []) ~inside len =
  let solver = Solver.create ~nvars:len () in
  List.iter (encode_in_cube solver) inside;
  List.iter (encode_not_in_cube solver) avoid;
  List.iter (encode_differs_from solver) distinct_from;
  match Solver.solve solver with
  | Solver.Unsat -> None
  | Solver.Sat model -> Some (model_to_header model len)

type certified = {
  header : Hspace.Header.t option;
  nvars : int;
  clauses : int list list;
  proof : int list list;
}

let find_header_certified ?(avoid = []) ?(distinct_from = []) ~inside len =
  let solver = Solver.create ~nvars:len () in
  Solver.log_proof solver;
  List.iter (encode_in_cube solver) inside;
  List.iter (encode_not_in_cube solver) avoid;
  List.iter (encode_differs_from solver) distinct_from;
  let header =
    match Solver.solve solver with
    | Solver.Unsat -> None
    | Solver.Sat model -> Some (model_to_header model len)
  in
  {
    header;
    nvars = max len (Solver.nvars solver);
    clauses = Solver.logged_clauses solver;
    proof = Solver.proof solver;
  }

let find_rule_input ~match_ ~overlaps =
  find_header ~avoid:overlaps ~inside:[ match_ ] (Cube.length match_)
