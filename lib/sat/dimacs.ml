(* DIMACS CNF reader/writer.

   The format is line-oriented: optional [c ...] comment lines, one
   [p cnf <nvars> <nclauses>] header, then whitespace-separated literals
   with each clause terminated by 0 (clauses may span lines; several
   zero-terminated clauses on one line are accepted, as real-world
   instances do both). *)

let to_buffer buf ?(comments = []) ~nvars clauses =
  List.iter
    (fun c ->
      Buffer.add_string buf "c ";
      Buffer.add_string buf c;
      Buffer.add_char buf '\n')
    comments;
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter
        (fun l ->
          Buffer.add_string buf (string_of_int l);
          Buffer.add_char buf ' ')
        clause;
      Buffer.add_string buf "0\n")
    clauses

let to_string ?comments ~nvars clauses =
  let buf = Buffer.create 1024 in
  to_buffer buf ?comments ~nvars clauses;
  Buffer.contents buf

let to_file path ?comments ~nvars clauses =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (to_string ?comments ~nvars clauses))

(* A DRUP proof file is the same literal syntax without a header;
   deletion lines ([d ...]) are not produced by our solver. *)
let proof_to_string steps =
  let buf = Buffer.create 1024 in
  List.iter
    (fun clause ->
      List.iter
        (fun l ->
          Buffer.add_string buf (string_of_int l);
          Buffer.add_char buf ' ')
        clause;
      Buffer.add_string buf "0\n")
    steps;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let header = ref None in
  let clauses = ref [] in
  let current = ref [] in
  let error fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt in
  try
    List.iteri
      (fun lineno line ->
        let line = String.trim line in
        if line = "" || line.[0] = 'c' || line.[0] = '%' then ()
        else if String.length line >= 1 && line.[0] = 'p' then begin
          if !header <> None then fail "line %d: duplicate header" (lineno + 1);
          match
            List.filter (( <> ) "") (String.split_on_char ' ' line)
          with
          | [ "p"; "cnf"; nv; nc ] -> (
              match (int_of_string_opt nv, int_of_string_opt nc) with
              | Some nv, Some nc when nv >= 0 && nc >= 0 ->
                  header := Some (nv, nc)
              | _ -> fail "line %d: malformed header %S" (lineno + 1) line)
          | _ -> fail "line %d: malformed header %S" (lineno + 1) line
        end
        else begin
          if !header = None then
            fail "line %d: literals before the p cnf header" (lineno + 1);
          List.iter
            (fun tok ->
              match int_of_string_opt tok with
              | None -> fail "line %d: bad literal %S" (lineno + 1) tok
              | Some 0 ->
                  clauses := List.rev !current :: !clauses;
                  current := []
              | Some l -> (
                  match !header with
                  | Some (nv, _) when abs l > nv ->
                      fail "line %d: literal %d exceeds nvars %d" (lineno + 1)
                        l nv
                  | _ -> current := l :: !current))
            (List.filter (( <> ) "") (String.split_on_char ' ' line))
        end)
      lines;
    if !current <> [] then fail "unterminated clause (missing trailing 0)";
    match !header with
    | None -> error "no p cnf header"
    | Some (nvars, nclauses) ->
        let clauses = List.rev !clauses in
        if List.length clauses <> nclauses then
          error "header promises %d clauses, file has %d" nclauses
            (List.length clauses)
        else Ok (nvars, clauses)
  with Bad msg -> Error msg

let of_file path =
  of_string (In_channel.with_open_text path In_channel.input_all)

let load_into solver (nvars, clauses) =
  ignore (nvars : int);
  List.iter (Solver.add_clause solver) clauses
