(* CDCL solver, MiniSat-style.

   Internal literal encoding: variable v (1-based) has positive literal
   [2v] and negative literal [2v+1]; negation is [lxor 1]. Clauses are
   int arrays of internal literals; the first two literals of a clause
   are its watched literals. [watches.(l)] lists the clauses currently
   watching literal [l]; they are visited when [l] becomes false. *)

type clause = { lits : int array; learnt : bool }

(* DRUP proof log (opt-in, see [log_proof]). [problem] records every
   clause handed to [add_clause] verbatim; [steps] records derived
   clauses in derivation order — level-0 strengthenings emitted by
   [add_clause]'s simplifier, learnt clauses from conflict analysis, and
   the final empty clause when the instance is refuted. Each step is
   RUP with respect to the problem clauses plus the earlier steps, so a
   from-scratch unit-propagation checker (Cert.Drup) can validate an
   Unsat answer without trusting any of the solver's machinery. Both
   lists are kept in DIMACS literals, newest first. *)
type log = { mutable problem : int list list; mutable steps : int list list }

type t = {
  mutable nvars : int;
  mutable clauses : clause array;
  mutable nclauses : int; (* used slots *)
  mutable nproblem : int; (* problem (non-learnt) clause count *)
  mutable watches : int list array; (* lit -> clause ids watching it *)
  mutable assign : int array; (* var -> -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array; (* var -> implying clause id or -1 *)
  mutable activity : float array;
  mutable phase : bool array; (* saved polarity *)
  mutable seen : bool array; (* scratch for conflict analysis *)
  mutable simp_mark : int array; (* lit -> epoch: scratch for add_clause *)
  mutable simp_epoch : int;
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int list; (* trail sizes at decision points (head = latest) *)
  mutable qhead : int;
  mutable var_inc : float;
  mutable unsat : bool; (* contradiction at level 0 *)
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable log : log option;
}

type result = Sat of bool array | Unsat

let var_of lit = lit lsr 1
let neg lit = lit lxor 1
let pos_lit v = v lsl 1
let sign lit = lit land 1 = 0

let lit_of_dimacs l =
  if l = 0 then invalid_arg "Solver: literal 0";
  let v = abs l in
  if l > 0 then pos_lit v else pos_lit v + 1

let create ?(nvars = 0) () =
  let cap = max 8 (nvars + 1) in
  {
    nvars;
    clauses = Array.make 16 { lits = [||]; learnt = false };
    nclauses = 0;
    nproblem = 0;
    watches = Array.make (2 * cap) [];
    assign = Array.make cap (-1);
    level = Array.make cap 0;
    reason = Array.make cap (-1);
    activity = Array.make cap 0.;
    phase = Array.make cap false;
    seen = Array.make cap false;
    simp_mark = Array.make (2 * cap) 0;
    simp_epoch = 0;
    trail = Array.make cap 0;
    trail_size = 0;
    trail_lim = [];
    qhead = 0;
    var_inc = 1.0;
    unsat = false;
    n_conflicts = 0;
    n_decisions = 0;
    n_propagations = 0;
    n_restarts = 0;
    log = None;
  }

let dimacs_of_lit lit = if sign lit then var_of lit else -var_of lit

let log_proof t =
  if t.nproblem > 0 || t.unsat then
    invalid_arg "Solver.log_proof: enable logging before adding clauses";
  if t.log = None then t.log <- Some { problem = []; steps = [] }

let proof_logging t = t.log <> None

let logged_clauses t =
  match t.log with None -> [] | Some l -> List.rev l.problem

let proof t = match t.log with None -> [] | Some l -> List.rev l.steps

let log_step t clause =
  match t.log with None -> () | Some l -> l.steps <- clause :: l.steps

let nvars t = t.nvars
let nclauses t = t.nproblem

let grow_arrays t needed =
  let cap = Array.length t.assign in
  if needed >= cap then begin
    let ncap = max (needed + 1) (2 * cap) in
    let copy_int a def =
      let b = Array.make ncap def in
      Array.blit a 0 b 0 cap;
      b
    in
    let copy_f a =
      let b = Array.make ncap 0. in
      Array.blit a 0 b 0 cap;
      b
    in
    let copy_b a =
      let b = Array.make ncap false in
      Array.blit a 0 b 0 cap;
      b
    in
    t.assign <- copy_int t.assign (-1);
    t.level <- copy_int t.level 0;
    t.reason <- copy_int t.reason (-1);
    t.activity <- copy_f t.activity;
    t.phase <- copy_b t.phase;
    t.seen <- copy_b t.seen;
    let trail = Array.make ncap 0 in
    Array.blit t.trail 0 trail 0 t.trail_size;
    t.trail <- trail;
    let w = Array.make (2 * ncap) [] in
    Array.blit t.watches 0 w 0 (Array.length t.watches);
    t.watches <- w;
    let m = Array.make (2 * ncap) 0 in
    Array.blit t.simp_mark 0 m 0 (Array.length t.simp_mark);
    t.simp_mark <- m
  end

let ensure_var t v =
  if v > t.nvars then begin
    grow_arrays t v;
    t.nvars <- v
  end

let new_var t =
  let v = t.nvars + 1 in
  ensure_var t v;
  v

let value_lit t lit =
  let a = t.assign.(var_of lit) in
  if a < 0 then -1 else if sign lit then a else 1 - a

let decision_level t = List.length t.trail_lim

let enqueue t lit reason =
  let v = var_of lit in
  t.assign.(v) <- (if sign lit then 1 else 0);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.phase.(v) <- sign lit;
  t.trail.(t.trail_size) <- lit;
  t.trail_size <- t.trail_size + 1

let push_clause t c =
  if t.nclauses >= Array.length t.clauses then begin
    let n = Array.make (2 * Array.length t.clauses) { lits = [||]; learnt = false } in
    Array.blit t.clauses 0 n 0 t.nclauses;
    t.clauses <- n
  end;
  t.clauses.(t.nclauses) <- c;
  t.nclauses <- t.nclauses + 1;
  t.nclauses - 1

let watch t lit cid = t.watches.(lit) <- cid :: t.watches.(lit)

(* Unit propagation. Returns the id of a conflicting clause, or -1. *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < t.trail_size do
    let lit = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.n_propagations <- t.n_propagations + 1;
    let falsified = neg lit in
    let ws = t.watches.(falsified) in
    t.watches.(falsified) <- [];
    let rec go = function
      | [] -> ()
      | cid :: rest ->
          let c = t.clauses.(cid) in
          let lits = c.lits in
          if lits.(0) = falsified then begin
            lits.(0) <- lits.(1);
            lits.(1) <- falsified
          end;
          if value_lit t lits.(0) = 1 then begin
            watch t falsified cid;
            go rest
          end
          else begin
            let n = Array.length lits in
            let found = ref false in
            let k = ref 2 in
            while (not !found) && !k < n do
              if value_lit t lits.(!k) <> 0 then begin
                lits.(1) <- lits.(!k);
                lits.(!k) <- falsified;
                watch t lits.(1) cid;
                found := true
              end;
              incr k
            done;
            if !found then go rest
            else begin
              watch t falsified cid;
              if value_lit t lits.(0) = 0 then begin
                conflict := cid;
                List.iter (fun c' -> watch t falsified c') rest
              end
              else begin
                enqueue t lits.(0) cid;
                go rest
              end
            end
          end
    in
    go ws
  done;
  !conflict

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 1 to t.nvars do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end

let var_decay t = t.var_inc <- t.var_inc /. 0.95

let cancel_until t lvl =
  while decision_level t > lvl do
    let s = List.hd t.trail_lim in
    t.trail_lim <- List.tl t.trail_lim;
    for i = t.trail_size - 1 downto s do
      let v = var_of t.trail.(i) in
      t.assign.(v) <- -1;
      t.reason.(v) <- -1
    done;
    t.trail_size <- s
  done;
  t.qhead <- t.trail_size

(* First-UIP conflict analysis. Returns the learnt clause (asserting
   literal first) and the backjump level. *)
let analyze t confl =
  let learnt = ref [] in
  let pathc = ref 0 in
  let p = ref (-1) in
  let index = ref (t.trail_size - 1) in
  let btlevel = ref 0 in
  let cur_level = decision_level t in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    let c = t.clauses.(!confl) in
    let start = if !p = -1 then 0 else 1 in
    for j = start to Array.length c.lits - 1 do
      let q = c.lits.(j) in
      let v = var_of q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        var_bump t v;
        if t.level.(v) >= cur_level then incr pathc
        else begin
          learnt := q :: !learnt;
          if t.level.(v) > !btlevel then btlevel := t.level.(v)
        end
      end
    done;
    let rec find_next i = if t.seen.(var_of t.trail.(i)) then i else find_next (i - 1) in
    index := find_next !index;
    p := t.trail.(!index);
    t.seen.(var_of !p) <- false;
    decr pathc;
    if !pathc <= 0 then continue := false
    else begin
      confl := t.reason.(var_of !p);
      index := !index - 1
    end
  done;
  let learnt_lits = Array.of_list (neg !p :: !learnt) in
  List.iter (fun q -> t.seen.(var_of q) <- false) !learnt;
  (learnt_lits, !btlevel)

(* Install a learnt clause after backjumping and assert its first literal. *)
let record_learnt t lits =
  log_step t (Array.to_list (Array.map dimacs_of_lit lits));
  if Array.length lits = 1 then enqueue t lits.(0) (-1)
  else begin
    let best = ref 1 in
    for k = 2 to Array.length lits - 1 do
      if t.level.(var_of lits.(k)) > t.level.(var_of lits.(!best)) then best := k
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp;
    let cid = push_clause t { lits; learnt = true } in
    watch t lits.(0) cid;
    watch t lits.(1) cid;
    enqueue t lits.(0) cid
  end

let refute t =
  if not t.unsat then begin
    t.unsat <- true;
    log_step t []
  end

let add_clause t dimacs_lits =
  (* The proof log keeps the clause verbatim even when the solver is
     already refuted (or about to drop it): the checker's database must
     be the clauses the caller stated, not the solver's view of them. *)
  (match t.log with
  | Some l -> l.problem <- dimacs_lits :: l.problem
  | None -> ());
  if not t.unsat then begin
    List.iter (fun l -> ensure_var t (abs l)) dimacs_lits;
    let lits = List.map lit_of_dimacs dimacs_lits in
    assert (decision_level t = 0);
    (* Level-0 simplification: drop falsified and duplicate literals;
       detect tautologies and already-satisfied clauses. Duplicate
       tracking marks literals in an epoch-stamped scratch array —
       clauses arrive by the hundred thousand on big covers, and a
       per-clause allocated set was the dominant cost of header
       assignment (docs/PERF.md). *)
    t.simp_epoch <- t.simp_epoch + 1;
    let epoch = t.simp_epoch in
    let rec simplify acc = function
      | [] -> Some acc
      | l :: rest ->
          if t.simp_mark.(neg l) = epoch || value_lit t l = 1 then None
          else if t.simp_mark.(l) = epoch || value_lit t l = 0 then
            simplify acc rest
          else begin
            t.simp_mark.(l) <- epoch;
            simplify (l :: acc) rest
          end
    in
    t.nproblem <- t.nproblem + 1;
    (* Strengthened clauses (literals dropped by the simplifier) are RUP
       against the database — duplicates negate to the same assignment,
       and level-0-falsified literals are re-derived by the checker's own
       propagation — so they are sound DRUP steps. Logging them keeps the
       checker's database in sync with the clauses the solver actually
       resolves on. *)
    let log_strengthened ls =
      if List.compare_lengths ls dimacs_lits <> 0 then
        log_step t (List.rev_map dimacs_of_lit ls)
    in
    match simplify [] lits with
    | None -> ()
    | Some [] -> refute t
    | Some [ l ] ->
        log_strengthened [ l ];
        enqueue t l (-1);
        if propagate t >= 0 then refute t
    | Some ls ->
        log_strengthened ls;
        let arr = Array.of_list ls in
        let cid = push_clause t { lits = arr; learnt = false } in
        watch t arr.(0) cid;
        watch t arr.(1) cid
  end

(* Unassigned variable with maximal activity. Linear scan: instances in
   this reproduction are tiny, so a binary heap is not worth the code. *)
let pick_branch_var t =
  let best = ref 0 and best_act = ref neg_infinity in
  for v = 1 to t.nvars do
    if t.assign.(v) < 0 && t.activity.(v) > !best_act then begin
      best := v;
      best_act := t.activity.(v)
    end
  done;
  !best

(* MiniSat's Luby restart sequence: 1 1 2 1 1 2 4 ... *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let solve ?(assumptions = []) t =
  if t.unsat then Unsat
  else begin
    cancel_until t 0;
    if propagate t >= 0 then refute t;
    if t.unsat then Unsat
    else begin
      List.iter (fun l -> ensure_var t (abs l)) assumptions;
      let assumption_lits = Array.of_list (List.map lit_of_dimacs assumptions) in
      let nassum = Array.length assumption_lits in
      let status = ref 0 in
      let restart_count = ref 0 in
      let conflicts_until_restart = ref (100 * luby 0) in
      let conflicts_this_restart = ref 0 in
      while !status = 0 do
        let confl = propagate t in
        if confl >= 0 then begin
          t.n_conflicts <- t.n_conflicts + 1;
          if decision_level t = 0 then begin
            refute t;
            status := -1
          end
          else if decision_level t <= nassum then
            (* The conflict is forced by the assumptions alone. *)
            status := -1
          else begin
            let learnt, btlevel = analyze t confl in
            cancel_until t btlevel;
            incr conflicts_this_restart;
            record_learnt t learnt;
            var_decay t
          end
        end
        else if
          !conflicts_this_restart >= !conflicts_until_restart
          && decision_level t > nassum
        then begin
          t.n_restarts <- t.n_restarts + 1;
          incr restart_count;
          conflicts_this_restart := 0;
          conflicts_until_restart := 100 * luby !restart_count;
          cancel_until t nassum
        end
        else begin
          let dl = decision_level t in
          if dl < nassum then begin
            (* Install the next assumption as a decision. *)
            let a = assumption_lits.(dl) in
            match value_lit t a with
            | 1 -> t.trail_lim <- t.trail_size :: t.trail_lim
            | 0 -> status := -1
            | _ ->
                t.trail_lim <- t.trail_size :: t.trail_lim;
                enqueue t a (-1)
          end
          else begin
            let v = pick_branch_var t in
            if v = 0 then status := 1
            else begin
              t.n_decisions <- t.n_decisions + 1;
              t.trail_lim <- t.trail_size :: t.trail_lim;
              let lit = if t.phase.(v) then pos_lit v else pos_lit v + 1 in
              enqueue t lit (-1)
            end
          end
        end
      done;
      let res =
        if !status = 1 then begin
          let model = Array.make (t.nvars + 1) false in
          for v = 1 to t.nvars do
            model.(v) <- t.assign.(v) = 1
          done;
          Sat model
        end
        else Unsat
      in
      cancel_until t 0;
      res
    end
  end

let stats t =
  [
    ("conflicts", t.n_conflicts);
    ("decisions", t.n_decisions);
    ("propagations", t.n_propagations);
    ("restarts", t.n_restarts);
    ("learnt", t.nclauses - t.nproblem);
  ]
