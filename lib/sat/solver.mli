(** A conflict-driven clause-learning (CDCL) SAT solver.

    A from-scratch replacement for MiniSat, which the paper uses to pick
    probe headers inside a rule's input space and to find unique test
    headers (§V-B step 3, §VI). The solver implements the standard
    MiniSat architecture: two-literal watching for unit propagation,
    first-UIP conflict analysis with clause learning and backjumping,
    VSIDS-style branching activity with exponential decay, phase saving,
    and Luby-sequence restarts.

    Variables are 1-based as in DIMACS; a literal is a non-zero integer
    whose sign gives the polarity ([-3] is the negation of variable 3).

    The solver is incremental: clauses may be added between [solve]
    calls, and [solve] accepts per-call assumptions. *)

type t

type result =
  | Sat of bool array
      (** Model indexed by variable (entry 0 unused; entry [v] is the
          value of variable [v]). *)
  | Unsat

val create : ?nvars:int -> unit -> t
(** Fresh solver. [nvars] pre-allocates variables; more are created on
    demand by {!add_clause}. *)

val nvars : t -> int

val nclauses : t -> int
(** Problem clauses (excludes learnt clauses). *)

val new_var : t -> int
(** Allocate and return the next variable. *)

val add_clause : t -> int list -> unit
(** Add a clause (list of literals). Adding the empty clause, or a
    clause that is falsified at level 0, makes the instance permanently
    Unsat. Variables referenced beyond [nvars] are allocated
    automatically. *)

val solve : ?assumptions:int list -> t -> result
(** Decide satisfiability under the optional assumptions. The returned
    model covers all allocated variables. The solver state remains
    usable afterwards (add more clauses, solve again). *)

val stats : t -> (string * int) list
(** Counters: conflicts, decisions, propagations, restarts, learnt. *)

(** {2 DRUP proof logging}

    Opt-in witness production for certification (see {!Cert.Drup} for
    the independent checker). When enabled, the solver records every
    problem clause verbatim and every clause it derives — level-0
    strengthenings, learnt clauses, and the final empty clause on an
    (assumption-free) refutation. Each derived clause is RUP (reverse
    unit propagation) with respect to the problem clauses plus the
    earlier derivations, so the sequence is a standard DRUP proof.

    Logging is off by default and costs nothing when off (a single
    [option] test per derived clause on the conflict path). An Unsat
    under [solve ~assumptions] is {e not} an absolute refutation and
    does not produce an empty-clause step. *)

val log_proof : t -> unit
(** Start recording clauses and derivations. Must be called before the
    first {!add_clause}; raises [Invalid_argument] otherwise.
    Idempotent. *)

val proof_logging : t -> bool

val logged_clauses : t -> int list list
(** The problem clauses exactly as given to {!add_clause}, in order
    (including clauses the simplifier dropped — the proof refutes the
    caller's instance, not the solver's view of it). Empty when logging
    is off. *)

val proof : t -> int list list
(** The DRUP derivation steps so far, in order. Ends with the empty
    clause [[]] iff the instance is refuted without assumptions. Empty
    when logging is off. *)
