(** DIMACS CNF export/import.

    Lets a failing SAT instance be dumped for offline minimization
    (e.g. with [cadical]/[drat-trim] or a delta debugger) and external
    instances be replayed through {!Solver}. Clauses use the same
    representation as {!Solver.add_clause}: lists of non-zero DIMACS
    literals. *)

val to_string : ?comments:string list -> nvars:int -> int list list -> string
(** Render an instance: [c] comment lines, one [p cnf] header, one
    zero-terminated clause per line. *)

val to_file :
  string -> ?comments:string list -> nvars:int -> int list list -> unit

val proof_to_string : int list list -> string
(** Render {!Solver.proof} steps as a DRUP proof file (zero-terminated
    clauses, no header) — the format [drat-trim] consumes. *)

val of_string : string -> (int * int list list, string) result
(** Parse one instance to [(nvars, clauses)]. Accepts comment lines,
    clauses spanning several lines and several clauses per line; rejects
    missing/duplicate headers, literals above [nvars], clause-count
    mismatches, and unterminated clauses. *)

val of_file : string -> (int * int list list, string) result

val load_into : Solver.t -> int * int list list -> unit
(** Feed a parsed instance to a solver via {!Solver.add_clause}. *)
