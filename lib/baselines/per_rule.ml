module RG = Rulegraph.Rule_graph
module Digraph = Sdngraph.Digraph
module Emu = Dataplane.Emulator
module Clock = Dataplane.Clock
module Probe = Sdnprobe.Probe
module Report = Sdnprobe.Report
module Config = Sdnprobe.Config
module FE = Openflow.Flow_entry
module Hs = Hspace.Hs

let generate net =
  let t0 = Sdn_util.Mono.now_s () in
  let rg = RG.build ~closure:false net in
  let g = RG.base_graph rg in
  let alloc = Common.allocator () in
  let probes = ref [] in
  let id = ref 0 in
  for v = 0 to RG.n_vertices rg - 1 do
    if not (Hs.is_empty (RG.input rg v)) then begin
      (* Tested path: previous hop -> v -> next hop, trimmed to the
         longest legal alternative. *)
      let preds = Digraph.pred g v and succs = Digraph.succ g v in
      let candidates =
        List.concat
          [
            List.concat_map (fun p -> List.map (fun s -> [ p; v; s ]) succs) preds;
            List.map (fun p -> [ p; v ]) preds;
            List.map (fun s -> [ v; s ]) succs;
            [ [ v ] ];
          ]
      in
      let legal =
        List.find_opt
          (fun path -> not (Hs.is_empty (RG.start_space rg path)))
          candidates
      in
      match legal with
      | None -> ()
      | Some path -> (
          match Common.unique_header alloc rg path with
          | None -> ()
          | Some header ->
              let rules = List.map (fun u -> (RG.vertex_entry rg u).FE.id) path in
              let target = (RG.vertex_entry rg v).FE.id in
              probes := (Probe.make net ~id:!id ~rules ~header, target) :: !probes;
              incr id)
    end
  done;
  (List.rev !probes, Sdn_util.Mono.now_s () -. t0)

let run ?(stop = Sdnprobe.Runner.stop_never) ~config emulator =
  let net = Emu.network emulator in
  let targeted_probes, generation_s = generate net in
  let probes = List.map fst targeted_probes in
  let target_of =
    let tbl = Hashtbl.create (List.length targeted_probes) in
    List.iter (fun ((p : Probe.t), target) -> Hashtbl.add tbl p.Probe.id target) targeted_probes;
    fun (p : Probe.t) -> Hashtbl.find tbl p.Probe.id
  in
  let clock = Emu.clock emulator in
  let start_s = Clock.now_seconds clock in
  let suspicion = Sdnprobe.Suspicion.create ~threshold:config.Config.threshold in
  let switch_suspicion : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let packets = ref 0 in
  let round = ref 0 in
  let finished = ref false in
  while (not !finished) && !round < config.Config.max_rounds do
    incr round;
    let results = Common.send_round ~config ~emulator probes in
    packets := !packets + List.length probes;
    let now_s = Clock.now_seconds clock in
    (* Blame every switch on the short tested path (footnote 3: the
       scheme cannot tell the three switches apart); every failed probe
       adds suspicion, and there is no follow-up localization stage
       (§VIII: per-rule "does not require additional fault
       localization") — a genuinely faulty switch accumulates several
       bumps per round (its own probe plus the neighbours' crossing
       probes) and is flagged within a round or two, while the
       blame-spreading is exactly the scheme's false-positive
       mechanism. *)
    List.iter
      (fun ((p : Probe.t), pass) ->
        if not pass then begin
          Sdnprobe.Suspicion.bump_rule suspicion (target_of p);
          List.iter
            (fun sw ->
              let level =
                1 + Option.value ~default:0 (Hashtbl.find_opt switch_suspicion sw)
              in
              Hashtbl.replace switch_suspicion sw level;
              if level > config.Config.threshold then
                Sdnprobe.Suspicion.flag suspicion ~switch:sw ~time_s:now_s ~round:!round)
            (Common.switches_of_probe net p)
        end)
      results;
    let detections =
      List.map
        (fun (switch, time_s, round) -> { Report.switch; time_s; round })
        (Sdnprobe.Suspicion.detections suspicion)
    in
    if stop ~detections ~round:!round ~time_s:now_s then finished := true
  done;
  {
    Report.scheme = "per-rule";
    plan_size = List.length probes;
    generation_s;
    detections =
      List.map
        (fun (switch, time_s, round) -> { Report.switch; time_s; round })
        (Sdnprobe.Suspicion.detections suspicion);
    packets_sent = !packets;
    bytes_sent = !packets * config.Config.probe_size_bytes;
    rounds = !round;
    duration_s = Clock.now_seconds clock -. start_s;
    suspicion_ranking = Sdnprobe.Suspicion.rule_levels suspicion;
    retransmissions = 0;
    round_stats = [];
    patch_events = [];
  }
