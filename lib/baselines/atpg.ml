module RG = Rulegraph.Rule_graph
module Digraph = Sdngraph.Digraph
module Emu = Dataplane.Emulator
module Clock = Dataplane.Clock
module Probe = Sdnprobe.Probe
module Report = Sdnprobe.Report
module Config = Sdnprobe.Config
module FE = Openflow.Flow_entry
module Hs = Hspace.Hs

type gen = { probes : Probe.t list; pool : Probe.t list; generation_s : float }

(* Enumerate maximal legal paths of the base rule graph by DFS from its
   source rules, propagating header spaces. Capped: candidate explosion
   is inherent to the approach (one of the paper's criticisms). *)
let enumerate_candidates rg ~cap =
  let g = RG.base_graph rg in
  let n = RG.n_vertices rg in
  let testable v = not (Hs.is_empty (RG.input rg v)) in
  let step hs w =
    let e = RG.vertex_entry rg w in
    Hs.apply_set_field ~set:e.FE.set_field (Hs.inter hs (RG.input rg w))
  in
  let paths = ref [] in
  let count = ref 0 in
  let budget = ref 0 in
  let rec dfs v hs path =
    if !count < cap && !budget > 0 then begin
      let extensions =
        List.filter_map
          (fun w ->
            let hs' = step hs w in
            if Hs.is_empty hs' then None else Some (w, hs'))
          (Digraph.succ g v)
      in
      if extensions = [] then begin
        paths := List.rev path :: !paths;
        incr count;
        decr budget
      end
      else List.iter (fun (w, hs') -> dfs w hs' (w :: path)) extensions
    end
  in
  let sources =
    List.filter (fun v -> testable v && Digraph.pred g v = []) (List.init n Fun.id)
  in
  (* Split the candidate budget across sources so the cap does not
     starve coverage of late sources. *)
  let per_source = max 8 (cap / max 1 (List.length sources)) in
  List.iter
    (fun s ->
      budget := per_source;
      dfs s (RG.output rg s) [ s ])
    sources;
  (* Rules unreachable from any source (all their predecessors are
     shadowed) still need a candidate: their own maximal suffix. *)
  let covered = Array.make n false in
  List.iter (fun p -> List.iter (fun v -> covered.(v) <- true) p) !paths;
  for v = 0 to n - 1 do
    if testable v && not covered.(v) then begin
      budget := 4;
      dfs v (RG.output rg v) [ v ];
      List.iter (fun p -> List.iter (fun u -> covered.(u) <- true) p) !paths
    end
  done;
  !paths

let greedy_set_cover rg candidates =
  let n = RG.n_vertices rg in
  let uncovered = Array.init n (fun v -> not (Hs.is_empty (RG.input rg v))) in
  let remaining = ref (Array.fold_left (fun a b -> if b then a + 1 else a) 0 uncovered) in
  let chosen = ref [] in
  let pool = ref candidates in
  while !remaining > 0 && !pool <> [] do
    let gain p = List.length (List.filter (fun v -> uncovered.(v)) p) in
    let best =
      List.fold_left
        (fun acc p -> match acc with
          | Some (_, g) when g >= gain p -> acc
          | _ -> Some (p, gain p))
        None !pool
    in
    match best with
    | Some (p, g) when g > 0 ->
        chosen := p :: !chosen;
        pool := List.filter (fun q -> q != p) !pool;
        List.iter
          (fun v ->
            if uncovered.(v) then begin
              uncovered.(v) <- false;
              decr remaining
            end)
          p
    | _ -> pool := []
  done;
  (* Stragglers (rules on no selected candidate): cover each with a
     greedy maximal legal path through it. *)
  let g = RG.base_graph rg in
  let step hs w =
    let e = RG.vertex_entry rg w in
    Hs.apply_set_field ~set:e.FE.set_field (Hs.inter hs (RG.input rg w))
  in
  for v = 0 to n - 1 do
    if uncovered.(v) then begin
      let rec extend u hs acc =
        let next =
          List.find_map
            (fun w ->
              let hs' = step hs w in
              if Hs.is_empty hs' then None else Some (w, hs'))
            (Digraph.succ g u)
        in
        match next with
        | Some (w, hs') -> extend w hs' (w :: acc)
        | None -> List.rev acc
      in
      let path = extend v (RG.output rg v) [ v ] in
      chosen := path :: !chosen;
      List.iter
        (fun u ->
          if uncovered.(u) then begin
            uncovered.(u) <- false;
            decr remaining
          end)
        path
    end
  done;
  (List.rev !chosen, !pool)

let to_probes ?alloc net rg ~start_id paths =
  let alloc = match alloc with Some a -> a | None -> Common.allocator () in
  let id = ref (start_id - 1) in
  List.filter_map
    (fun path ->
      match Common.unique_header alloc rg path with
      | None -> None
      | Some header ->
          incr id;
          let rules = List.map (fun v -> (RG.vertex_entry rg v).FE.id) path in
          Some (Probe.make net ~id:!id ~rules ~header))
    paths

let generate ?(max_candidates = 2048) net =
  let t0 = Sdn_util.Mono.now_s () in
  let rg = RG.build ~closure:false net in
  let candidates = enumerate_candidates rg ~cap:max_candidates in
  let cover_paths, pool_paths = greedy_set_cover rg candidates in
  let alloc = Common.allocator () in
  let probes = to_probes ~alloc net rg ~start_id:0 cover_paths in
  let pool =
    to_probes ~alloc net rg ~start_id:(List.length probes)
      (Sdn_util.Misc.take 512 pool_paths)
  in
  { probes; pool; generation_s = Sdn_util.Mono.now_s () -. t0 }

(* Intersection of non-empty switch-set list. *)
let intersect_all = function
  | [] -> []
  | first :: rest ->
      List.filter (fun sw -> List.for_all (List.mem sw) rest) first

let pairwise_intersections sets =
  let rec loop acc = function
    | [] -> acc
    | s :: rest ->
        let acc =
          List.fold_left
            (fun acc s' ->
              List.fold_left
                (fun acc sw -> if List.mem sw s' && not (List.mem sw acc) then sw :: acc else acc)
                acc s)
            acc rest
        in
        loop acc rest
  in
  loop [] sets

let run ?(stop = Sdnprobe.Runner.stop_never) ?(compute_us_per_rule = 150) ~config
    emulator =
  let net = Emu.network emulator in
  let { probes; pool; generation_s } = generate net in
  let clock = Emu.clock emulator in
  let start_s = Clock.now_seconds clock in
  let suspicion = Sdnprobe.Suspicion.create ~threshold:config.Config.threshold in
  let switch_suspicion : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let packets = ref 0 in
  let round = ref 0 in
  let finished = ref false in
  let extra : Probe.t list ref = ref [] in
  let pool = ref pool in
  (* Round 1 sends the full plan; follow-up rounds only re-test failed
     paths plus freshly computed localization packets. When nothing is
     left to chase, a new monitoring cycle restarts from the plan. *)
  let active = ref probes in
  while (not !finished) && !round < config.Config.max_rounds do
    incr round;
    let results = Common.send_round ~config ~emulator !active in
    packets := !packets + List.length !active;
    let failed = List.filter_map (fun (p, pass) -> if pass then None else Some p) results in
    let failed_sets = List.map (Common.switches_of_probe net) failed in
    (* Recomputing localization packets costs ATPG real time (§VIII:
       "ATPG needs to compute additional test packets"): each round with
       failures re-runs the generation machinery over the network's
       rules. *)
    if failed <> [] then
      Clock.advance_us clock (compute_us_per_rule * Openflow.Network.n_entries net);
    let now_s = Clock.now_seconds clock in
    (* Iterative refinement: switches already flagged explain the paths
       they sit on; the remaining failures must have other culprits. A
       failure set that intersects nothing cannot be narrowed, so all
       its switches become suspects (the paper's FP mechanism), which
       keeps FNR at zero for persistent basic faults. *)
    let suspects =
      let sets =
        List.filter_map
          (fun set ->
            match
              List.filter (fun sw -> not (Sdnprobe.Suspicion.is_flagged suspicion sw)) set
            with
            | [] -> None
            | s -> Some s)
          failed_sets
      in
      match sets with
      | [] -> []
      | [ only ] -> only
      | sets -> (
          match intersect_all sets with
          | _ :: _ as i -> i
          | [] ->
              let pw = pairwise_intersections sets in
              let unexplained =
                List.filter (fun s -> not (List.exists (fun sw -> List.mem sw pw) s)) sets
              in
              List.sort_uniq compare (pw @ List.concat unexplained))
    in
    List.iter
      (fun sw ->
        let level = 1 + Option.value ~default:0 (Hashtbl.find_opt switch_suspicion sw) in
        Hashtbl.replace switch_suspicion sw level;
        if level > config.Config.threshold then
          Sdnprobe.Suspicion.flag suspicion ~switch:sw ~time_s:now_s ~round:!round)
      suspects;
    (* Pull additional pool paths crossing unresolved suspects. *)
    let unresolved =
      List.filter (fun sw -> not (Sdnprobe.Suspicion.is_flagged suspicion sw)) suspects
    in
    (if unresolved <> [] then begin
       let crossing, rest =
         List.partition
           (fun (p : Probe.t) ->
             List.exists (fun sw -> List.mem sw unresolved) (Common.switches_of_probe net p))
           !pool
       in
       let add = Sdn_util.Misc.take 4 crossing in
       extra := add;
       pool := List.filter (fun p -> not (List.memq p add)) crossing @ rest
     end
     else extra := []);
    (* Next round chases only the suspicious region. *)
    active := (if failed = [] then probes else failed @ !extra);
    let detections =
      List.map
        (fun (switch, time_s, round) -> { Report.switch; time_s; round })
        (Sdnprobe.Suspicion.detections suspicion)
    in
    if stop ~detections ~round:!round ~time_s:now_s then finished := true
  done;
  {
    Report.scheme = "atpg";
    plan_size = List.length probes;
    generation_s;
    detections =
      List.map
        (fun (switch, time_s, round) -> { Report.switch; time_s; round })
        (Sdnprobe.Suspicion.detections suspicion);
    packets_sent = !packets;
    bytes_sent = !packets * config.Config.probe_size_bytes;
    rounds = !round;
    duration_s = Clock.now_seconds clock -. start_s;
    suspicion_ranking = Sdnprobe.Suspicion.rule_levels suspicion;
    retransmissions = 0;
    round_stats = [];
    patch_events = [];
  }
