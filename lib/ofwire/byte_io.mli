(** Big-endian binary readers and writers for the OpenFlow codec.

    OpenFlow is a network-byte-order protocol; both ends of the codec
    share these cursor-based primitives. Writers grow an internal
    buffer; readers raise {!Truncated} on over-reads so the message
    layer can surface framing errors cleanly. *)

exception Truncated
(** Raised by readers when the buffer ends mid-field. *)

module Writer : sig
  type t

  val create : unit -> t

  val length : t -> int

  val reset : t -> unit
  (** Drop the contents but keep the (grown) internal buffer, so a
      sender can reuse one writer across many encodes without
      reallocating. *)

  val view : t -> (bytes -> int -> int -> 'a) -> 'a
  (** [view t f] calls [f buf off len] on the internal buffer without
      copying — for handing the encoded bytes straight to a socket
      send. The buffer is only valid until the next write or
      {!reset}. *)

  val u8 : t -> int -> unit

  val u16 : t -> int -> unit

  val u32 : t -> int32 -> unit

  val u32i : t -> int -> unit
  (** [u32] from a non-negative int. *)

  val u64 : t -> int64 -> unit

  val raw : t -> bytes -> unit

  val pad : t -> int -> unit
  (** Append zero bytes. *)

  val patch_u16 : t -> pos:int -> int -> unit
  (** Overwrite two bytes already written (for length fields). *)

  val contents : t -> bytes
end

module Reader : sig
  type t

  val of_bytes : ?pos:int -> ?len:int -> bytes -> t

  val pos : t -> int

  val remaining : t -> int

  val u8 : t -> int

  val u16 : t -> int

  val u32 : t -> int32

  val u64 : t -> int64

  val raw : t -> int -> bytes

  val skip : t -> int -> unit
end
