module Cube = Hspace.Cube
module W = Byte_io.Writer
module R = Byte_io.Reader

type action = Output of int | Set_field of Cube.t

type instruction = Apply_actions of action list | Goto_table of int

type flow_mod = {
  cookie : int64;
  table_id : int;
  command : [ `Add | `Delete ];
  priority : int;
  match_ : Cube.t;
  instructions : instruction list;
}

type packet_out = { actions : action list; payload : bytes }

type packet_in = { reason : int; table_id : int; cookie : int64; payload : bytes }

type features_reply = { datapath_id : int64; n_buffers : int32; n_tables : int }

type t =
  | Hello
  | Echo_request of bytes
  | Echo_reply of bytes
  | Features_request
  | Features_reply of features_reply
  | Flow_mod of flow_mod
  | Packet_out of packet_out
  | Packet_in of packet_in
  | Barrier_request
  | Barrier_reply
  | Error_msg of { err_type : int; err_code : int; data : bytes }

type error = Truncated | Bad_version of int | Unsupported of int | Malformed of string

let version = 0x04

(* ofp_type values (OF1.3 §A.1). *)
let t_hello = 0
let t_error = 1
let t_echo_request = 2
let t_echo_reply = 3
let t_features_request = 5
let t_features_reply = 6
let t_packet_in = 10
let t_packet_out = 13
let t_flow_mod = 14
let t_barrier_request = 20
let t_barrier_reply = 21

(* OXM constants. *)
let oxm_class_basic = 0x8000
let oxm_field_metadata = 2

let no_buffer = 0xffffffffl
let port_controller = 0xfffffffdl
let port_any = 0xffffffffl
let group_any = 0xffffffffl

(* ------------------------------------------------------------------ *)
(* Cube <-> masked 64-bit metadata *)

let cube_to_metadata cube =
  let len = Cube.length cube in
  if len > 64 then invalid_arg "Ofwire: headers beyond 64 bits not encodable";
  let value = ref 0L and mask = ref 0L in
  for k = 0 to len - 1 do
    let bit = Int64.shift_left 1L (63 - k) in
    match Cube.get cube k with
    | Cube.Any -> ()
    | Cube.Zero -> mask := Int64.logor !mask bit
    | Cube.One ->
        mask := Int64.logor !mask bit;
        value := Int64.logor !value bit
  done;
  (!value, !mask)

let cube_of_metadata ~header_len value mask =
  Cube.of_bits
    (Array.init header_len (fun k ->
         let bit = Int64.shift_left 1L (63 - k) in
         if Int64.logand mask bit = 0L then Cube.Any
         else if Int64.logand value bit = 0L then Cube.Zero
         else Cube.One))

(* ------------------------------------------------------------------ *)
(* Encoding *)

let pad_to8 w = W.pad w ((8 - (W.length w mod 8)) mod 8)

(* OXM TLV: header u32 = class(16) | field(7) hasmask(1) | payload len(8). *)
let write_oxm_metadata w cube =
  let value, mask = cube_to_metadata cube in
  let header =
    (oxm_class_basic lsl 16) lor (oxm_field_metadata lsl 9) lor (1 lsl 8) lor 16
  in
  W.u32i w header;
  W.u64 w value;
  W.u64 w mask

(* ofp_match: type=1 (OXM), length over type+length+fields, pad to 8. *)
let write_match w cube =
  let start = W.length w in
  W.u16 w 1;
  W.u16 w 0 (* patched *);
  write_oxm_metadata w cube;
  W.patch_u16 w ~pos:(start + 2) (W.length w - start);
  pad_to8 w

let write_action w = function
  | Output port ->
      W.u16 w 0 (* OFPAT_OUTPUT *);
      W.u16 w 16;
      W.u32i w port;
      W.u16 w 0xffff (* max_len: no buffer *);
      W.pad w 6
  | Set_field cube ->
      let start = W.length w in
      W.u16 w 25 (* OFPAT_SET_FIELD *);
      W.u16 w 0 (* patched *);
      write_oxm_metadata w cube;
      pad_to8 w;
      W.patch_u16 w ~pos:(start + 2) (W.length w - start)

let write_instruction w = function
  | Goto_table table ->
      W.u16 w 1 (* OFPIT_GOTO_TABLE *);
      W.u16 w 8;
      W.u8 w table;
      W.pad w 3
  | Apply_actions actions ->
      let start = W.length w in
      W.u16 w 4 (* OFPIT_APPLY_ACTIONS *);
      W.u16 w 0 (* patched *);
      W.pad w 4;
      List.iter (write_action w) actions;
      W.patch_u16 w ~pos:(start + 2) (W.length w - start)

let type_of = function
  | Hello -> t_hello
  | Echo_request _ -> t_echo_request
  | Echo_reply _ -> t_echo_reply
  | Features_request -> t_features_request
  | Features_reply _ -> t_features_reply
  | Flow_mod _ -> t_flow_mod
  | Packet_out _ -> t_packet_out
  | Packet_in _ -> t_packet_in
  | Barrier_request -> t_barrier_request
  | Barrier_reply -> t_barrier_reply
  | Error_msg _ -> t_error

let encode_to w ~xid msg =
  let msg_start = W.length w in
  W.u8 w version;
  W.u8 w (type_of msg);
  W.u16 w 0 (* length, patched at the end *);
  W.u32 w xid;
  (match msg with
  | Hello | Features_request | Barrier_request | Barrier_reply -> ()
  | Echo_request payload | Echo_reply payload -> W.raw w payload
  | Error_msg { err_type; err_code; data } ->
      W.u16 w err_type;
      W.u16 w err_code;
      W.raw w data
  | Features_reply { datapath_id; n_buffers; n_tables } ->
      W.u64 w datapath_id;
      W.u32 w n_buffers;
      W.u8 w n_tables;
      W.u8 w 0 (* auxiliary_id *);
      W.pad w 2;
      W.u32i w 0x1 (* capabilities: FLOW_STATS *);
      W.u32i w 0 (* reserved *)
  | Flow_mod fm ->
      W.u64 w fm.cookie;
      W.u64 w 0xffffffffffffffffL (* cookie_mask *);
      W.u8 w fm.table_id;
      W.u8 w (match fm.command with `Add -> 0 | `Delete -> 3);
      W.u16 w 0 (* idle_timeout *);
      W.u16 w 0 (* hard_timeout *);
      W.u16 w fm.priority;
      W.u32 w no_buffer;
      W.u32 w port_any;
      W.u32 w group_any;
      W.u16 w 0 (* flags *);
      W.pad w 2;
      write_match w fm.match_;
      List.iter (write_instruction w) fm.instructions
  | Packet_out { actions; payload } ->
      W.u32 w no_buffer;
      W.u32 w port_controller;
      let len_pos = W.length w in
      W.u16 w 0 (* actions_len, patched *);
      W.pad w 6;
      let actions_start = W.length w in
      List.iter (write_action w) actions;
      W.patch_u16 w ~pos:len_pos (W.length w - actions_start);
      W.raw w payload
  | Packet_in { reason; table_id; cookie; payload } ->
      W.u32 w no_buffer;
      W.u16 w (Bytes.length payload);
      W.u8 w reason;
      W.u8 w table_id;
      W.u64 w cookie;
      (* Empty OXM match (type=1, len=4, pad to 8). *)
      W.u16 w 1;
      W.u16 w 4;
      W.pad w 4;
      W.pad w 2;
      W.raw w payload);
  W.patch_u16 w ~pos:(msg_start + 2) (W.length w - msg_start)

let encode ~xid msg =
  let w = W.create () in
  encode_to w ~xid msg;
  W.contents w

(* ------------------------------------------------------------------ *)
(* Decoding *)

exception Fail of error

let read_oxm_metadata r =
  let header = Int32.to_int (R.u32 r) land 0xffffffff in
  let clazz = (header lsr 16) land 0xffff in
  let field = (header lsr 9) land 0x7f in
  let hasmask = (header lsr 8) land 1 = 1 in
  let len = header land 0xff in
  if clazz <> oxm_class_basic || field <> oxm_field_metadata then
    raise (Fail (Malformed "unsupported OXM field"));
  if len <> if hasmask then 16 else 8 then raise (Fail (Malformed "bad OXM length"));
  let value = R.u64 r in
  let mask = if hasmask then R.u64 r else 0xffffffffffffffffL in
  (value, mask)

let read_match ~header_len r =
  let start = R.pos r in
  let typ = R.u16 r in
  let len = R.u16 r in
  if typ <> 1 then raise (Fail (Malformed "non-OXM match"));
  let cube =
    if len <= 4 then Cube.wildcard header_len
    else
      let value, mask = read_oxm_metadata r in
      cube_of_metadata ~header_len value mask
  in
  (* Consume padding to the 8-byte boundary. *)
  let consumed = R.pos r - start in
  let padded = ((len + 7) / 8 * 8) in
  R.skip r (padded - consumed);
  cube

let read_action ~header_len r =
  let typ = R.u16 r in
  let len = R.u16 r in
  match typ with
  | 0 ->
      (* Reserved ports (OFPP_TABLE & co.) live above 2^31: read
         unsigned. *)
      let port = Int32.to_int (R.u32 r) land 0xffffffff in
      let _max_len = R.u16 r in
      R.skip r 6;
      Output port
  | 25 ->
      let before = R.pos r in
      let value, mask = read_oxm_metadata r in
      let consumed = 4 + (R.pos r - before) in
      R.skip r (len - consumed);
      Set_field (cube_of_metadata ~header_len value mask)
  | t -> raise (Fail (Malformed (Printf.sprintf "unsupported action %d" t)))

let read_actions ~header_len r limit =
  let stop = R.pos r + limit in
  let rec loop acc =
    if R.pos r >= stop then List.rev acc else loop (read_action ~header_len r :: acc)
  in
  loop []

let read_instruction ~header_len r =
  let typ = R.u16 r in
  let len = R.u16 r in
  match typ with
  | 1 ->
      let table = R.u8 r in
      R.skip r 3;
      Goto_table table
  | 4 ->
      R.skip r 4;
      Apply_actions (read_actions ~header_len r (len - 8))
  | t -> raise (Fail (Malformed (Printf.sprintf "unsupported instruction %d" t)))

let read_instructions ~header_len r =
  let rec loop acc =
    if R.remaining r = 0 then List.rev acc
    else loop (read_instruction ~header_len r :: acc)
  in
  loop []

let decode_body ~header_len typ r =
  match typ with
  | t when t = t_hello ->
      R.skip r (R.remaining r) (* ignore hello elements *);
      Hello
  | t when t = t_echo_request -> Echo_request (R.raw r (R.remaining r))
  | t when t = t_echo_reply -> Echo_reply (R.raw r (R.remaining r))
  | t when t = t_features_request -> Features_request
  | t when t = t_features_reply ->
      let datapath_id = R.u64 r in
      let n_buffers = R.u32 r in
      let n_tables = R.u8 r in
      R.skip r 3;
      R.skip r 8;
      Features_reply { datapath_id; n_buffers; n_tables }
  | t when t = t_barrier_request -> Barrier_request
  | t when t = t_barrier_reply -> Barrier_reply
  | t when t = t_error ->
      let err_type = R.u16 r in
      let err_code = R.u16 r in
      Error_msg { err_type; err_code; data = R.raw r (R.remaining r) }
  | t when t = t_flow_mod ->
      let cookie = R.u64 r in
      let _cookie_mask = R.u64 r in
      let table_id = R.u8 r in
      let command =
        match R.u8 r with
        | 0 -> `Add
        | 3 -> `Delete
        | c -> raise (Fail (Malformed (Printf.sprintf "unsupported flow-mod command %d" c)))
      in
      let _idle = R.u16 r in
      let _hard = R.u16 r in
      let priority = R.u16 r in
      let _buffer = R.u32 r in
      let _out_port = R.u32 r in
      let _out_group = R.u32 r in
      let _flags = R.u16 r in
      R.skip r 2;
      let match_ = read_match ~header_len r in
      let instructions = read_instructions ~header_len r in
      Flow_mod { cookie; table_id; command; priority; match_; instructions }
  | t when t = t_packet_out ->
      let _buffer = R.u32 r in
      let _in_port = R.u32 r in
      let actions_len = R.u16 r in
      R.skip r 6;
      let actions = read_actions ~header_len r actions_len in
      Packet_out { actions; payload = R.raw r (R.remaining r) }
  | t when t = t_packet_in ->
      let _buffer = R.u32 r in
      let total_len = R.u16 r in
      let reason = R.u8 r in
      let table_id = R.u8 r in
      let cookie = R.u64 r in
      let _match = read_match ~header_len r in
      R.skip r 2;
      let payload = R.raw r (R.remaining r) in
      if Bytes.length payload <> total_len then
        raise (Fail (Malformed "packet-in length mismatch"));
      Packet_in { reason; table_id; cookie; payload }
  | t -> raise (Fail (Unsupported t))

let decode ?(header_len = 32) ?(pos = 0) buf =
  try
    if Bytes.length buf - pos < 8 then Error Truncated
    else begin
      let r = R.of_bytes ~pos buf in
      let v = R.u8 r in
      if v <> version then Error (Bad_version v)
      else begin
        let typ = R.u8 r in
        let len = R.u16 r in
        let xid = R.u32 r in
        if len < 8 then Error (Malformed "length below header size")
        else if Bytes.length buf - pos < len then Error Truncated
        else begin
          let body = R.of_bytes ~pos:(pos + 8) ~len:(len - 8) buf in
          let msg = decode_body ~header_len typ body in
          Ok ((xid, msg), len)
        end
      end
    end
  with
  | Fail e -> Error e
  | Byte_io.Truncated -> Error Truncated

let decode_all ?(header_len = 32) buf =
  let rec loop pos acc =
    if pos >= Bytes.length buf then Ok (List.rev acc)
    else
      match decode ~header_len ~pos buf with
      | Ok ((xid, msg), consumed) -> loop (pos + consumed) ((xid, msg) :: acc)
      | Error e -> Error e
  in
  loop 0 []

let pp fmt = function
  | Hello -> Format.pp_print_string fmt "HELLO"
  | Echo_request _ -> Format.pp_print_string fmt "ECHO_REQUEST"
  | Echo_reply _ -> Format.pp_print_string fmt "ECHO_REPLY"
  | Features_request -> Format.pp_print_string fmt "FEATURES_REQUEST"
  | Features_reply f -> Format.fprintf fmt "FEATURES_REPLY(dpid=%Ld)" f.datapath_id
  | Flow_mod fm ->
      Format.fprintf fmt "FLOW_MOD(%s t%d p%d %a)"
        (match fm.command with `Add -> "add" | `Delete -> "del")
        fm.table_id fm.priority Cube.pp fm.match_
  | Packet_out po -> Format.fprintf fmt "PACKET_OUT(%d bytes)" (Bytes.length po.payload)
  | Packet_in pi -> Format.fprintf fmt "PACKET_IN(%d bytes)" (Bytes.length pi.payload)
  | Barrier_request -> Format.pp_print_string fmt "BARRIER_REQUEST"
  | Barrier_reply -> Format.pp_print_string fmt "BARRIER_REPLY"
  | Error_msg e -> Format.fprintf fmt "ERROR(%d/%d)" e.err_type e.err_code
