(** OpenFlow 1.3 wire codec for the message subset SDNProbe uses.

    The paper's implementation is a Ryu application speaking OpenFlow
    1.3 (§VIII); this codec provides the binary message layer a
    deployable release needs: framing, HELLO / ECHO liveness, switch
    feature discovery, FLOW_MOD for installing rules and §VI test flow
    entries, PACKET_OUT for probe injection and PACKET_IN for probe
    returns, plus BARRIER to order installations before probing.

    Encoding notes:
    - The reproduction's [L]-bit headers ride in the OXM
      [OFPXMT_OFB_METADATA] field (64-bit, maskable): cube bit 0 maps
      to the metadata MSB, wildcards clear mask bits. Headers longer
      than 64 bits are rejected.
    - Set-fields use OXM with a mask, mirroring the model's partial
      rewrites (a documented extension: stock OF1.3 set-field is
      maskless).
    - Decoding requires the header bit-length to rebuild cubes; pass
      [~header_len] (default 32). *)

type action =
  | Output of int  (** OFPAT_OUTPUT *)
  | Set_field of Hspace.Cube.t  (** OFPAT_SET_FIELD (masked metadata) *)

type instruction =
  | Apply_actions of action list  (** OFPIT_APPLY_ACTIONS *)
  | Goto_table of int  (** OFPIT_GOTO_TABLE *)

type flow_mod = {
  cookie : int64;
  table_id : int;
  command : [ `Add | `Delete ];
  priority : int;
  match_ : Hspace.Cube.t;
  instructions : instruction list;
}

type packet_out = {
  actions : action list;
  payload : bytes;
}

type packet_in = {
  reason : int;  (** OFPR_ACTION for §VI returns *)
  table_id : int;
  cookie : int64;
  payload : bytes;
}

type features_reply = {
  datapath_id : int64;
  n_buffers : int32;
  n_tables : int;
}

type t =
  | Hello
  | Echo_request of bytes
  | Echo_reply of bytes
  | Features_request
  | Features_reply of features_reply
  | Flow_mod of flow_mod
  | Packet_out of packet_out
  | Packet_in of packet_in
  | Barrier_request
  | Barrier_reply
  | Error_msg of { err_type : int; err_code : int; data : bytes }

type error =
  | Truncated  (** fewer bytes than the length field promises *)
  | Bad_version of int
  | Unsupported of int  (** message type outside the subset *)
  | Malformed of string

val version : int
(** 0x04. *)

val encode : xid:int32 -> t -> bytes
(** Serialize one message, length field filled in. Raises
    [Invalid_argument] for headers over 64 bits. *)

val encode_to : Byte_io.Writer.t -> xid:int32 -> t -> unit
(** Append one message to an existing writer (length field patched in
    place) — with {!Byte_io.Writer.reset}/{!Byte_io.Writer.view} this
    lets a sender reuse one buffer across a whole batch instead of
    allocating per packet. *)

val decode : ?header_len:int -> ?pos:int -> bytes -> ((int32 * t) * int, error) result
(** Decode one message starting at [pos]; on success returns
    [((xid, message), bytes_consumed)]. *)

val decode_all : ?header_len:int -> bytes -> ((int32 * t) list, error) result
(** Split and decode a back-to-back message stream. *)

val pp : Format.formatter -> t -> unit
