exception Truncated

module Writer = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.make 64 '\000'; len = 0 }

  let length t = t.len

  (* Forget the contents but keep the grown buffer: a sender that
     encodes thousands of probes reuses one writer with zero
     reallocation in steady state. *)
  let reset t = t.len <- 0

  let view t f = f t.buf 0 t.len

  let ensure t extra =
    let needed = t.len + extra in
    if needed > Bytes.length t.buf then begin
      let cap = max needed (2 * Bytes.length t.buf) in
      let b = Bytes.make cap '\000' in
      Bytes.blit t.buf 0 b 0 t.len;
      t.buf <- b
    end

  let u8 t v =
    ensure t 1;
    Bytes.set_uint8 t.buf t.len (v land 0xff);
    t.len <- t.len + 1

  let u16 t v =
    ensure t 2;
    Bytes.set_uint16_be t.buf t.len (v land 0xffff);
    t.len <- t.len + 2

  let u32 t v =
    ensure t 4;
    Bytes.set_int32_be t.buf t.len v;
    t.len <- t.len + 4

  let u32i t v = u32 t (Int32.of_int v)

  let u64 t v =
    ensure t 8;
    Bytes.set_int64_be t.buf t.len v;
    t.len <- t.len + 8

  let raw t b =
    ensure t (Bytes.length b);
    Bytes.blit b 0 t.buf t.len (Bytes.length b);
    t.len <- t.len + Bytes.length b

  let pad t n =
    ensure t n;
    Bytes.fill t.buf t.len n '\000';
    t.len <- t.len + n

  let patch_u16 t ~pos v =
    if pos + 2 > t.len then invalid_arg "Writer.patch_u16";
    Bytes.set_uint16_be t.buf pos (v land 0xffff)

  let contents t = Bytes.sub t.buf 0 t.len
end

module Reader = struct
  type t = { buf : Bytes.t; limit : int; mutable cursor : int }

  let of_bytes ?(pos = 0) ?len buf =
    let limit = match len with Some l -> pos + l | None -> Bytes.length buf in
    if pos < 0 || limit < pos || limit > Bytes.length buf then
      invalid_arg "Reader.of_bytes";
    { buf; limit; cursor = pos }

  let pos t = t.cursor

  let remaining t = t.limit - t.cursor

  (* Field sizes come straight off the wire, so [n] is attacker
     controlled: a negative size (from a length field smaller than the
     bytes already consumed) or one huge enough to wrap [cursor + n]
     past [max_int] must both read as truncation, never as a cursor
     that moves backwards or a crash in [Bytes.sub]. *)
  let need t n = if n < 0 || n > t.limit - t.cursor then raise Truncated

  let u8 t =
    need t 1;
    let v = Bytes.get_uint8 t.buf t.cursor in
    t.cursor <- t.cursor + 1;
    v

  let u16 t =
    need t 2;
    let v = Bytes.get_uint16_be t.buf t.cursor in
    t.cursor <- t.cursor + 2;
    v

  let u32 t =
    need t 4;
    let v = Bytes.get_int32_be t.buf t.cursor in
    t.cursor <- t.cursor + 4;
    v

  let u64 t =
    need t 8;
    let v = Bytes.get_int64_be t.buf t.cursor in
    t.cursor <- t.cursor + 8;
    v

  let raw t n =
    need t n;
    let v = Bytes.sub t.buf t.cursor n in
    t.cursor <- t.cursor + n;
    v

  let skip t n =
    need t n;
    t.cursor <- t.cursor + n
end
