(** Bridging the controller model and the wire: what a deployment of
    this library would actually send to switches.

    [policy_streams] serializes a network's entire policy as one
    OpenFlow byte stream per switch (HELLO, FLOW_MODs, BARRIER), and
    [apply_policy] replays such streams into a fresh {!Openflow.Network}
    — the switch side of the channel. Probes become PACKET_OUTs whose
    payload carries the probe id and packed header; returned packets
    come back as PACKET_INs. The integration test drives a policy
    through encode → decode and checks the reconstructed network
    forwards identically. *)

val policy_streams : Openflow.Network.t -> (int * bytes) list
(** Per-switch OpenFlow streams installing the full policy. Entry ids
    ride in the flow-mod cookie. *)

val apply_policy :
  header_len:int ->
  Openflow.Topology.t ->
  (int * bytes) list ->
  (Openflow.Network.t, Message.error) result
(** Replay per-switch streams into a fresh network over the given
    topology. Unsupported or malformed messages abort with the decoder
    error. *)

val pack_header : Hspace.Header.t -> bytes
(** Header bits packed MSB-first, zero-padded to a byte boundary. *)

val unpack_header : header_len:int -> bytes -> Hspace.Header.t option
(** Inverse of {!pack_header}; [None] when the buffer is shorter than
    [header_len] bits. *)

val probe_payload : Sdnprobe.Probe.t -> bytes
(** PACKET_OUT payload: probe id (u32) followed by the header bits
    packed MSB-first. *)

val parse_probe_payload : header_len:int -> bytes -> (int * Hspace.Header.t) option
(** Inverse of {!probe_payload}. *)

val packet_out_of_probe : Sdnprobe.Probe.t -> Message.t
(** The injection message: PACKET_OUT with an OFPP_TABLE output action
    ("process through the flow tables"), carrying the probe payload.
    The injection switch is identified by the channel it is sent on. *)

val packet_in_of_return :
  probe:int -> header:Hspace.Header.t -> table_id:int -> cookie:int64 -> Message.t
(** The §VI return: what the test flow entry sends to the controller. *)
