type t = {
  header_len : int;
  topology : Topology.t;
  tables : Flow_table.t array array; (* switch -> table index -> table *)
  entries : (int, Flow_entry.t) Hashtbl.t;
  mutable next_id : int;
}

let create ~header_len ?(tables_per_switch = 1) topology =
  if header_len <= 0 then invalid_arg "Network.create: header_len";
  if tables_per_switch <= 0 then invalid_arg "Network.create: tables_per_switch";
  {
    header_len;
    topology;
    tables =
      Array.init (Topology.n_switches topology) (fun _ ->
          Array.make tables_per_switch Flow_table.empty);
    entries = Hashtbl.create 256;
    next_id = 0;
  }

let header_len t = t.header_len

let topology t = t.topology

let n_switches t = Topology.n_switches t.topology

let n_tables t = if n_switches t = 0 then 0 else Array.length t.tables.(0)

let check_switch t s =
  if s < 0 || s >= n_switches t then invalid_arg "Network: switch out of range"

let check_table t tb =
  if tb < 0 || tb >= n_tables t then invalid_arg "Network: table out of range"

let add_entry t ~switch ?(table = 0) ~priority ~match_ ?set_field action =
  check_switch t switch;
  check_table t table;
  if Hspace.Cube.length match_ <> t.header_len then
    invalid_arg "Network.add_entry: match length";
  (match action with
  | Flow_entry.Output port ->
      if Topology.peer t.topology ~sw:switch ~port = None then
        invalid_arg "Network.add_entry: output port has no link"
  | Flow_entry.Goto_table tb ->
      if tb <= table || tb >= n_tables t then
        invalid_arg "Network.add_entry: goto must target a later table"
  | Flow_entry.Drop -> ());
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let e = Flow_entry.make ~id ~switch ~table ~priority ~match_ ?set_field action in
  t.tables.(switch).(table) <- Flow_table.add t.tables.(switch).(table) e;
  Hashtbl.add t.entries id e;
  e

let remove_entry t id =
  match Hashtbl.find_opt t.entries id with
  | None -> ()
  | Some e ->
      t.tables.(e.switch).(e.table) <- Flow_table.remove t.tables.(e.switch).(e.table) id;
      Hashtbl.remove t.entries id

let entry t id =
  match Hashtbl.find_opt t.entries id with Some e -> e | None -> raise Not_found

let find_entry t id = Hashtbl.find_opt t.entries id

let all_entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun (a : Flow_entry.t) b -> compare a.id b.id)

let n_entries t = Hashtbl.length t.entries

let table t ~switch ~table:tb =
  check_switch t switch;
  check_table t tb;
  t.tables.(switch).(tb)

let switch_entries t sw =
  check_switch t sw;
  Array.to_list t.tables.(sw) |> List.concat_map Flow_table.entries

let input_space t (r : Flow_entry.t) =
  Flow_table.input_space t.tables.(r.switch).(r.table) r

let output_space t (r : Flow_entry.t) =
  Flow_table.output_space t.tables.(r.switch).(r.table) r

let next_switch t (r : Flow_entry.t) =
  match r.action with
  | Flow_entry.Output port ->
      Option.map fst (Topology.peer t.topology ~sw:r.switch ~port)
  | Flow_entry.Drop | Flow_entry.Goto_table _ -> None

let sub t switches =
  let member = Array.make (n_switches t) false in
  List.iter
    (fun s ->
      check_switch t s;
      member.(s) <- true)
    switches;
  let tables =
    Array.mapi
      (fun sw tbls ->
        if member.(sw) then Array.copy tbls
        else Array.make (Array.length tbls) Flow_table.empty)
      t.tables
  in
  let entries = Hashtbl.create (max 16 (Hashtbl.length t.entries)) in
  Array.iteri
    (fun sw tbls ->
      if member.(sw) then
        Array.iter
          (fun tbl ->
            List.iter
              (fun (e : Flow_entry.t) -> Hashtbl.replace entries e.id e)
              (Flow_table.entries tbl))
          tbls)
    tables;
  { header_len = t.header_len; topology = t.topology; tables; entries;
    next_id = t.next_id }

let pp_summary fmt t =
  Format.fprintf fmt "network: %d switches, %d links, %d entries, %d-bit headers"
    (n_switches t)
    (Topology.n_links t.topology)
    (n_entries t) t.header_len
