(** A single OpenFlow flow table: a priority-ordered set of entries.

    Lookup returns the highest-priority matching entry; ties are broken
    by lower entry id (OpenFlow leaves equal-priority overlap undefined —
    fixing a deterministic order keeps the emulator and the analytic
    rule graph consistent). *)

type t

val empty : t

val of_entries : Flow_entry.t list -> t
(** Entries are sorted by (priority desc, id asc). *)

val entries : t -> Flow_entry.t list
(** In lookup order. *)

val size : t -> int

val add : t -> Flow_entry.t -> t

val remove : t -> int -> t
(** Remove by entry id (no-op when absent). *)

val lookup : t -> Hspace.Header.t -> Flow_entry.t option
(** First match in lookup order: highest priority wins; among entries of
    {e equal} priority the one with the lower id wins. OpenFlow leaves
    equal-priority overlap undefined, so this tiebreak is a modelling
    decision — see {!higher_priority_overlaps} for its analytic twin. *)

val higher_priority_overlaps : t -> Flow_entry.t -> Flow_entry.t list
(** The paper's overlapping rules [q >_o r]: entries of this table with
    strictly higher lookup precedence whose match intersects [r]'s.
    "Precedence" is the {!lookup} order, so an equal-priority entry with
    a lower id {e does} count as an overlap of [r], while one with a
    higher id does not — keeping [input_space]/[output_space] consistent
    with what the emulator actually executes. An entry shadowed only by
    equal-priority, lower-id rules is therefore still reported as
    shadowed (its {!input_space} is empty). *)

val input_space : t -> Flow_entry.t -> Hspace.Hs.t
(** [r.in = r.m − ∪ { q.m | q >_o r }] (§V-A). *)

val output_space : t -> Flow_entry.t -> Hspace.Hs.t
(** [r.out = T(r.in, r.s)]. *)
