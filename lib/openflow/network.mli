(** The controller's view of the whole network: topology plus every
    switch's flow tables.

    This is the input to test-packet generation (§V) and the ground
    truth the emulator deviates from when faults are injected. Entry ids
    are allocated by the network and unique across switches. *)

type t

val create : header_len:int -> ?tables_per_switch:int -> Topology.t -> t
(** [tables_per_switch] defaults to 1. *)

val header_len : t -> int

val topology : t -> Topology.t

val n_switches : t -> int

val n_tables : t -> int

val add_entry :
  t ->
  switch:int ->
  ?table:int ->
  priority:int ->
  match_:Hspace.Cube.t ->
  ?set_field:Hspace.Cube.t ->
  Flow_entry.action ->
  Flow_entry.t
(** Install a new entry (fresh id) and return it. Raises
    [Invalid_argument] for out-of-range switch/table, a match length
    different from [header_len], an [Output] port with no attached link,
    or a [Goto_table] that does not go to a strictly later table. *)

val remove_entry : t -> int -> unit

val entry : t -> int -> Flow_entry.t
(** Raises [Not_found]. *)

val find_entry : t -> int -> Flow_entry.t option

val all_entries : t -> Flow_entry.t list
(** Ascending by id. *)

val n_entries : t -> int

val table : t -> switch:int -> table:int -> Flow_table.t

val switch_entries : t -> int -> Flow_entry.t list

val input_space : t -> Flow_entry.t -> Hspace.Hs.t
(** [r.in] within the entry's own table (§V-A). *)

val output_space : t -> Flow_entry.t -> Hspace.Hs.t

val next_switch : t -> Flow_entry.t -> int option
(** The switch reached by the entry's [Output] port, if the action is an
    output onto a live link. *)

val sub : t -> int list -> t
(** [sub t switches] is the region view of the network: the full
    topology and header length, but only the given switches' flow
    tables populated (every other switch is empty). Entries are shared
    with — and keep their ids from — the parent network, and the id
    allocator continues from the parent's, so region views and the
    parent agree on every entry they both hold. Because
    {!input_space}/{!output_space} depend only on an entry's own table,
    an entry's spaces in the view are identical to its spaces in the
    parent — the property the shard layer's per-region rule graphs are
    built on (docs/SHARD.md). The view is a snapshot: later edits to
    the parent do not propagate. Raises [Invalid_argument] on an
    out-of-range switch. *)

val pp_summary : Format.formatter -> t -> unit
