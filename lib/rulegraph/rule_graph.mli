(** The paper's rule graph (§V-A).

    Vertices are flow entries; a directed edge [(r_i, r_j)] means some
    packet can trigger [r_i], be forwarded to [r_j]'s switch (or next
    table), and trigger [r_j]. Two graphs are kept:

    - the {e base} graph [G1] from Step 1 (pairwise edges between rules
      on neighbouring switches, plus goto-table edges);
    - the {e rule graph} [G] from Step 2: [G1] plus the legal transitive
      closure — an extra edge [(u, v)] whenever a legal path leads from
      [u] to [v]. Closure edges carry {e witness} interiors so they can
      be expanded back into real rule sequences (the paper's
      [b2 -> e2  =>  b2 -> c2 -> e2] conversion).

    Construction assumes the routing policy is loop-free; {!build}
    rejects cyclic policies (detectable in polynomial time, as the
    paper notes, citing NetPlumber/HSA). *)

type t

exception Cyclic_policy of int list
(** Entry ids forming a forwarding loop in the base graph. *)

val build : ?closure:bool -> ?max_witnesses:int -> Openflow.Network.t -> t
(** Build the rule graph. [closure] (default true) runs Step 2;
    [max_witnesses] (default 3) bounds the witness interiors remembered
    per closure edge. Raises {!Cyclic_policy} when the forwarding policy
    loops. *)

val network : t -> Openflow.Network.t

val n_vertices : t -> int

val vertex_entry : t -> int -> Openflow.Flow_entry.t

val vertex_of_entry : t -> int -> int
(** Vertex index of an entry id. Raises [Not_found]. *)

val input : t -> int -> Hspace.Hs.t
(** [r.in] of the vertex. *)

val output : t -> int -> Hspace.Hs.t
(** [r.out] of the vertex. *)

val base_graph : t -> Sdngraph.Digraph.t

val graph : t -> Sdngraph.Digraph.t
(** Base graph plus closure edges (identical when built with
    [~closure:false]). *)

val is_closure_edge : t -> int -> int -> bool

val witnesses : t -> int -> int -> int list list
(** Interior vertex sequences for a closure edge (excluding endpoints);
    [\[\]] for base edges. *)

val expand_path : t -> int list -> int list
(** Replace closure edges by a witness interior, producing a path whose
    consecutive vertices are base-graph edges. Raises [Invalid_argument]
    if a pair is neither a base edge nor a closure edge. *)

val forward_space : t -> int list -> Hspace.Hs.t
(** Definition 1's [O_n]: fold [O_{i+1} = T(O_i ∩ r_{i+1}.in, r_{i+1}.s)]
    over an {e expanded} path, starting from the full space. *)

val start_space : t -> int list -> Hspace.Hs.t
(** Headers that can be injected in front of the first rule of an
    expanded path so the packet traverses the whole path (backward
    preimage computation; equal to the paper's intersection of match
    fields when all set fields are identity). *)

val is_legal : t -> int list -> bool
(** A path (in closure-graph vertices) is legal iff its expansion has a
    non-empty forward space. *)

val injection_plan : t -> int list -> (int list * Hspace.Hs.t) option
(** Injectability of an {e expanded} path: a probe enters its first
    switch through table 0, so a path starting at a later table must be
    reachable through the same switch's earlier tables with a
    compatible header. Returns the path extended with that pipeline
    prefix and the resulting injectable start space, or [None] when no
    prefix admits a packet (in single-table networks this degenerates
    to {!start_space}). *)

val is_injectable : t -> int list -> bool
(** [injection_plan] on the expansion is [Some]. The chain-legality
    predicate used by the MLPC solvers: a tested path must be both
    traversable and injectable. *)

val spaces :
  ?pool:Sdn_parallel.Pool.t -> t -> int list list -> (Hspace.Hs.t * Hspace.Hs.t) list
(** [(start_space, forward_space)] of each (expanded) path, in input
    order. With a pool of two or more domains the paths are computed in
    parallel: each task reads the shared space caches (frozen for the
    batch) through a task-local overlay, and the overlays are merged
    back after the join, so the results — and the final cache contents —
    are identical to the sequential fold for any domain count (only
    hit/miss tallies may differ, since two tasks can each miss a key
    the sequential order would compute once). *)

val warm_injection : ?pool:Sdn_parallel.Pool.t -> t -> int list list -> unit
(** Precompute {!injection_plan} for each {e expanded} rule sequence,
    populating the injection and start-space caches — the parallel
    warm-up the MLPC matching solvers run before their (inherently
    sequential) augmentation search. Same determinism contract as
    {!spaces}. *)

val stats : t -> (string * int) list
(** Vertices / base edges / closure edges / pruned expansions. *)

val cache_stats : t -> (string * int) list
(** Cumulative hit/miss totals of the graph's space caches
    ([space_cache_hits] / [space_cache_misses]). Per-cache breakdowns
    are published through the global {!Metrics.Counter} registry as
    [rulegraph.cache.{start,forward,inject}.{hits,misses}]. *)

val invalidate_caches : t -> unit
(** Empty the memoized {!start_space} / {!forward_space} /
    {!injection_plan} caches in place. {!build} and {!update} install
    fresh caches, so this is only needed when the underlying network is
    mutated {e without} going through [update] (the caches — like the
    per-rule spaces — are otherwise valid for the network state the
    graph was built against), or to benchmark cold-cache behavior. *)

val update : ?max_witnesses:int -> t -> changed_tables:(int * int) list -> t
(** Incremental rebuild after flow-table churn (§VIII-C: "SDNProbe can
    update the rule graph incrementally to reduce overhead"). The
    network referenced by the graph has already been mutated;
    [changed_tables] lists the [(switch, table)] pairs whose entries
    were added, removed or modified.

    Per-rule input/output spaces are recomputed only for entries in
    changed tables; base edges only where an endpoint's spaces changed;
    and the legal-closure search is re-run only from vertices that can
    reach an affected vertex (ancestors in the old or new base graph) —
    everything else, including closure witnesses, is reused. Space-cache
    entries whose key vertices are all unaffected survive too, remapped
    through entry ids to the new vertex numbering (injection plans only
    for table-0 heads, whose plan is a pure function of the path), so
    the solvers re-run warm after an edit.

    The result is {e adjacency-order identical} to a fresh {!build} of
    the mutated network — same edge sets in the same [succ] order, same
    witnesses, same retained cache values bit for bit — which is what
    lets [Pipeline.apply] reproduce a scratch re-plan byte for byte
    (only the [pruned] statistic and cache hit/miss tallies may differ).
    Raises {!Cyclic_policy} if the churn introduced a loop. *)
