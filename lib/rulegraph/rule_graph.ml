module Hs = Hspace.Hs
module Flow_entry = Openflow.Flow_entry
module Network = Openflow.Network
module Digraph = Sdngraph.Digraph

exception Cyclic_policy of int list

(* Memoized header-space queries. The MLPC solvers and the L009 lint
   audit ask for the same path spaces over and over (every candidate
   splice re-derives its chain's injectability; Cover.all_legal
   re-checks every recorded start space), so each graph carries keyed
   caches:

   - [start]: keyed by path {e suffix} — start_space is a backward
     fold, so [start_space (p :: rules)] reuses the memoized
     [start_space rules], which is exactly the shape of
     [injection_plan]'s backward extension search;
   - [forward]: keyed by the whole (expanded) path;
   - [inject]: [injection_plan] results, keyed by the expanded path.

   Invalidation is explicit: {!build} and {!update} install fresh
   caches, and {!invalidate_caches} empties them in place (required if
   the underlying network is mutated without going through [update]).
   Hit/miss totals feed both the per-graph [cache_stats] and the global
   {!Metrics.Counter} registry.

   Concurrency: the shared tables are plain [Hashtbl]s, so they are
   never written from pool workers. Batch queries ({!spaces},
   {!warm_injection}) give each task a {e view} — reads check a
   task-local table first, then the shared one (frozen for the duration
   of the batch); writes go to the local table only. After the
   deterministic input-order join the local tables are merged back into
   the shared ones. Every cached value is a pure function of its key,
   so merge order cannot change cache contents — only the hit/miss
   tallies vary with the domain count (two tasks may both miss a key
   the sequential fold would compute once). *)
type stats = { mutable hits : int; mutable misses : int }

type caches = {
  start : (int list, Hs.t) Hashtbl.t;
  forward : (int list, Hs.t) Hashtbl.t;
  inject : (int list, (int list * Hs.t) option) Hashtbl.t;
  legal : (int list, bool) Hashtbl.t;
      (* {!is_injectable} memo, keyed by the UNEXPANDED closure-vertex
         chain — the MLPC solvers' claim shape. One short-list lookup
         replaces prefix expansion (witness walks, concatenation) plus
         the inject query, which is what the warm re-solve of the delta
         planning path spends its time on. Sequential-only: claims are
         issued by the (inherently sequential) augmentation search, so
         this table is not threaded through batch views. *)
  stats : stats;
  own : Sdn_parallel.Ownership.region;
      (* SDNPROBE_POOL_CHECK witness: only the building domain may
         write the shared tables; batch workers write local views *)
}

let fresh_caches () =
  {
    start = Hashtbl.create 256;
    forward = Hashtbl.create 64;
    inject = Hashtbl.create 64;
    legal = Hashtbl.create 64;
    stats = { hits = 0; misses = 0 };
    own = Sdn_parallel.Ownership.register ~name:"rule_graph.caches";
  }

let c_start_hits = Metrics.Counter.create "rulegraph.cache.start.hits"

let c_start_misses = Metrics.Counter.create "rulegraph.cache.start.misses"

let c_forward_hits = Metrics.Counter.create "rulegraph.cache.forward.hits"

let c_forward_misses = Metrics.Counter.create "rulegraph.cache.forward.misses"

let c_inject_hits = Metrics.Counter.create "rulegraph.cache.inject.hits"

let c_inject_misses = Metrics.Counter.create "rulegraph.cache.inject.misses"

let c_legal_hits = Metrics.Counter.create "rulegraph.cache.legal.hits"

let c_legal_misses = Metrics.Counter.create "rulegraph.cache.legal.misses"

type t = {
  network : Network.t;
  vertices : Flow_entry.t array;
  index_of : (int, int) Hashtbl.t; (* entry id -> vertex *)
  inputs : Hs.t array;
  outputs : Hs.t array;
  base : Digraph.t;
  full : Digraph.t; (* base + closure edges *)
  witness : (int * int, int list list) Hashtbl.t;
  mutable pruned : int; (* closure expansions cut by the subsumption check *)
  caches : caches;
}

(* A cache view: the tables a query reads first and writes to, plus the
   shared graph caches it may fall back to. The sequential entry points
   use the {e direct} view (local tables = the shared ones, no
   fallback); batch workers use task-local views. *)
type view = {
  vstart : (int list, Hs.t) Hashtbl.t;
  vforward : (int list, Hs.t) Hashtbl.t;
  vinject : (int list, (int list * Hs.t) option) Hashtbl.t;
  vstats : stats;
  fallback : caches option; (* read-only during a batch *)
  vown : Sdn_parallel.Ownership.region; (* who may write vstart/... *)
}

let direct_view caches =
  {
    vstart = caches.start;
    vforward = caches.forward;
    vinject = caches.inject;
    vstats = caches.stats;
    fallback = None;
    vown = caches.own;
  }

let local_view caches =
  {
    vstart = Hashtbl.create 64;
    vforward = Hashtbl.create 16;
    vinject = Hashtbl.create 16;
    vstats = { hits = 0; misses = 0 };
    fallback = Some caches;
    (* Registered on the worker that runs the task, so its writes stay
       same-domain by construction. *)
    vown = Sdn_parallel.Ownership.register ~name:"rule_graph.local_view";
  }

let cached view table shared (chit, cmiss) key compute =
  let found =
    match Hashtbl.find_opt table key with
    | Some _ as v -> v
    | None -> (
        match view.fallback with
        | None -> None
        | Some c -> Hashtbl.find_opt (shared c) key)
  in
  match found with
  | Some v ->
      view.vstats.hits <- view.vstats.hits + 1;
      Metrics.Counter.incr chit;
      v
  | None ->
      view.vstats.misses <- view.vstats.misses + 1;
      Metrics.Counter.incr cmiss;
      let v = compute () in
      Sdn_parallel.Ownership.touch view.vown;
      Hashtbl.add table key v;
      v

(* Fold a task-local view back into the shared caches (single-domain
   code: called after the pool join, in task order). *)
let merge_view t v =
  Sdn_parallel.Ownership.touch t.caches.own;
  let into dst src =
    (* sdncheck: allow D001 — add-if-absent merge: for any one key the
       first claim wins and claims for one key are identical, so merge
       order cannot change the resulting cache contents *)
    Hashtbl.iter (fun k x -> if not (Hashtbl.mem dst k) then Hashtbl.add dst k x) src
  in
  into t.caches.start v.vstart;
  into t.caches.forward v.vforward;
  into t.caches.inject v.vinject;
  t.caches.stats.hits <- t.caches.stats.hits + v.vstats.hits;
  t.caches.stats.misses <- t.caches.stats.misses + v.vstats.misses

let invalidate_caches t =
  Sdn_parallel.Ownership.touch t.caches.own;
  Hashtbl.reset t.caches.start;
  Hashtbl.reset t.caches.forward;
  Hashtbl.reset t.caches.inject;
  Hashtbl.reset t.caches.legal

let cache_stats t =
  [
    ("space_cache_hits", t.caches.stats.hits);
    ("space_cache_misses", t.caches.stats.misses);
  ]

let network t = t.network

let n_vertices t = Array.length t.vertices

let vertex_entry t v = t.vertices.(v)

let vertex_of_entry t id =
  match Hashtbl.find_opt t.index_of id with Some v -> v | None -> raise Not_found

let input t v = t.inputs.(v)

let output t v = t.outputs.(v)

let base_graph t = t.base

let graph t = t.full

let is_closure_edge t u v = Hashtbl.mem t.witness (u, v)

let witnesses t u v =
  match Hashtbl.find_opt t.witness (u, v) with Some w -> w | None -> []

(* Hull prefilter for the all-pairs edge scans. [Hs.inter out in] over
   shadow-fragmented spaces is the superlinear hotspot of the flat
   build (every cube of one side against every cube of the other, plus
   the quadratic subsumption pass on the pieces) — at 200 switches it
   dominates the build. A space's hull (smallest enclosing cube) is a
   one-word-per-chunk summary: disjoint hulls imply an empty
   intersection, so the expensive [Hs.inter] only runs on pairs whose
   hulls overlap. [None] = empty space, which can never contribute an
   edge. See docs/PERF.md for before/after numbers. *)
let hull_memo spaces =
  let memo = Array.make (Array.length spaces) None in
  fun i ->
    match memo.(i) with
    | Some h -> h
    | None ->
        let h = Hs.hull spaces.(i) in
        memo.(i) <- Some h;
        h

let may_intersect out_hull in_hull i j =
  match (out_hull i, in_hull j) with
  | Some a, Some b -> not (Hspace.Cube.disjoint a b)
  | _ -> false

(* Step 1: pairwise edges. An edge (r_i, r_j) exists iff r_j sits where
   r_i's action sends the packet and r_i.out ∩ r_j.in ≠ ∅.

   The scan is all-pairs between neighboring tables, so every table is
   visited once per rule that feeds it — resolving its entry list and
   each entry's vertex index through hashtables on every visit was the
   other half of the superlinear hotspot (20M+ lookups at 200-switch
   default policy). Candidate vertex arrays are resolved once per
   table; edge order is unchanged (table entry order either way). *)
let build_base net vertices index_of inputs outputs =
  let n = Array.length vertices in
  let g = Digraph.create n in
  let out_hull = hull_memo outputs and in_hull = hull_memo inputs in
  let table_verts = Hashtbl.create 64 in
  let verts_at ~switch ~table =
    match Hashtbl.find_opt table_verts (switch, table) with
    | Some a -> a
    | None ->
        let a =
          Array.of_list
            (List.map
               (fun (q : Flow_entry.t) -> Hashtbl.find index_of q.id)
               (Openflow.Flow_table.entries (Network.table net ~switch ~table)))
        in
        Hashtbl.add table_verts (switch, table) a;
        a
  in
  for i = 0 to n - 1 do
    let r = vertices.(i) in
    let candidates =
      match r.Flow_entry.action with
      | Flow_entry.Drop -> [||]
      | Flow_entry.Output _ -> (
          match Network.next_switch net r with
          | None -> [||]
          | Some sw -> verts_at ~switch:sw ~table:0)
      | Flow_entry.Goto_table tb -> verts_at ~switch:r.Flow_entry.switch ~table:tb
    in
    match out_hull i with
    | None -> ()
    | Some hi ->
        Array.iter
          (fun j ->
            let overlaps =
              match in_hull j with
              | Some hj -> not (Hspace.Cube.disjoint hi hj)
              | None -> false
            in
            if overlaps && Hs.inter_nonempty outputs.(i) inputs.(j) then
              Digraph.add_edge g i j)
          candidates
  done;
  g

(* Propagate a header space through one more rule (Definition 1). *)
let step inputs vertices hs j =
  let r = vertices.(j) in
  Hs.apply_set_field ~set:r.Flow_entry.set_field (Hs.inter hs inputs.(j))

(* Legal closure exploration from one source vertex: each distinct
   legally-reached vertex yields a closure edge with the interior of the
   discovering path as witness. Per-node subsumption pruning keeps the
   exploration polynomial in practice: a new header space at a node is
   dropped when contained in one already explored. *)
let closure_from t g u ~max_witnesses =
  let seen : (int, Hs.t list) Hashtbl.t = Hashtbl.create 16 in
  let q = Queue.create () in
  (* State: (current vertex, header space after it, interior so far). *)
  Queue.add (u, t.outputs.(u), []) q;
  while not (Queue.is_empty q) do
    let v, hs, interior = Queue.pop q in
    List.iter
      (fun w ->
        let hs' = step t.inputs t.vertices hs w in
        if not (Hs.is_empty hs') then begin
          let dominated =
            match Hashtbl.find_opt seen w with
            | Some prev -> List.exists (fun p -> Hs.is_subset hs' p) prev
            | None -> false
          in
          if dominated then t.pruned <- t.pruned + 1
          else begin
            Hashtbl.replace seen w
              (hs' :: (Option.value ~default:[] (Hashtbl.find_opt seen w)));
            if interior <> [] && not (Digraph.mem_edge t.base u w) then begin
              let key = (u, w) in
              let ws = Option.value ~default:[] (Hashtbl.find_opt t.witness key) in
              if List.length ws < max_witnesses then begin
                Hashtbl.replace t.witness key (ws @ [ List.rev interior ]);
                Digraph.add_edge g u w
              end
            end;
            Queue.add (w, hs', w :: interior) q
          end
        end)
      (Digraph.succ t.base v)
  done

(* Step 2 over every vertex. *)
let build_closure t ~max_witnesses =
  let g = Digraph.copy t.base in
  for u = 0 to n_vertices t - 1 do
    closure_from t g u ~max_witnesses
  done;
  g

let build ?(closure = true) ?(max_witnesses = 3) net =
  let vertices = Array.of_list (Network.all_entries net) in
  let index_of = Hashtbl.create (Array.length vertices) in
  Array.iteri (fun i (e : Flow_entry.t) -> Hashtbl.add index_of e.id i) vertices;
  let inputs = Array.map (Network.input_space net) vertices in
  let outputs = Array.map (Network.output_space net) vertices in
  let base = build_base net vertices index_of inputs outputs in
  (match Digraph.find_cycle base with
  | Some cycle -> raise (Cyclic_policy (List.map (fun v -> vertices.(v).Flow_entry.id) cycle))
  | None -> ());
  let t =
    {
      network = net;
      vertices;
      index_of;
      inputs;
      outputs;
      base;
      full = base;
      witness = Hashtbl.create 64;
      pruned = 0;
      caches = fresh_caches ();
    }
  in
  if closure then { t with full = build_closure t ~max_witnesses } else t

(* Incremental rebuild after flow-table churn. See the interface for
   the reuse strategy; correctness rests on three observations:
   - input/output spaces depend only on an entry's own table;
   - a base edge depends only on its endpoints' spaces (and the fixed
     topology);
   - the per-source closure search from [u] can only change if [u] can
     reach an affected vertex — in the old graph (an old path may have
     died) or the new one (a new path may have appeared). *)
let update ?(max_witnesses = 3) old ~changed_tables =
  let net = old.network in
  let vertices = Array.of_list (Network.all_entries net) in
  let n = Array.length vertices in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i (e : Flow_entry.t) -> Hashtbl.add index_of e.id i) vertices;
  let in_changed (e : Flow_entry.t) =
    List.exists (fun (sw, tb) -> sw = e.switch && tb = e.table) changed_tables
  in
  (* Space-diff marking (the incremental verifier's trick): entries of a
     changed table have their input/output spaces recomputed, but only
     those whose REPRESENTATION actually differs — plus brand-new
     entries — count as affected. Removing a low-priority rule leaves
     every rule it never shadowed bit-identical, so the affected set
     tracks the semantic edit size, not the table size; everything
     downstream (edge recomputation, closure dirtiness, cache
     retention) shrinks with it. Representation equality (same cubes in
     the same order), not mere set equality, is required: retained
     caches and copied spaces must match a scratch build bit for bit. *)
  let hs_repr_equal a b =
    let ca = Hs.cubes a and cb = Hs.cubes b in
    List.compare_lengths ca cb = 0 && List.for_all2 Hspace.Cube.equal ca cb
  in
  let empty = Hs.empty (Network.header_len net) in
  let affected_arr = Array.make n false in
  let inputs = Array.make n empty in
  let outputs = Array.make n empty in
  Array.iteri
    (fun i (e : Flow_entry.t) ->
      match Hashtbl.find_opt old.index_of e.id with
      | Some ov when not (in_changed e) ->
          inputs.(i) <- old.inputs.(ov);
          outputs.(i) <- old.outputs.(ov)
      | Some ov ->
          let inp = Network.input_space net e
          and out = Network.output_space net e in
          inputs.(i) <- inp;
          outputs.(i) <- out;
          if
            not
              (hs_repr_equal inp old.inputs.(ov)
              && hs_repr_equal out old.outputs.(ov))
          then affected_arr.(i) <- true
      | None ->
          inputs.(i) <- Network.input_space net e;
          outputs.(i) <- Network.output_space net e;
          affected_arr.(i) <- true)
    vertices;
  (* On new entries [affected] reads the array; on removed ones (only
     reachable through [old.vertices]) it is vacuously true. *)
  let affected (e : Flow_entry.t) =
    match Hashtbl.find_opt index_of e.id with
    | Some i -> affected_arr.(i)
    | None -> true
  in
  (* Base edges: copy edges between unaffected endpoints; recompute the
     rest. Candidate predecessors of an affected vertex live on switches
     linked into its switch (or earlier tables of the same switch). *)
  let base = Digraph.create n in
  Digraph.iter_edges
    (fun ou ov ->
      let eu = old.vertices.(ou) and ev = old.vertices.(ov) in
      if not (affected eu || affected ev) then
        match (Hashtbl.find_opt index_of eu.id, Hashtbl.find_opt index_of ev.id) with
        | Some i, Some j -> Digraph.add_edge base i j
        | _ -> ())
    old.base;
  let entries_at ~switch ~table =
    Openflow.Flow_table.entries (Network.table net ~switch ~table)
  in
  let out_hull = hull_memo outputs and in_hull = hull_memo inputs in
  let try_edge i j =
    if
      may_intersect out_hull in_hull i j
      && Hs.inter_nonempty outputs.(i) inputs.(j)
    then Digraph.add_edge base i j
  in
  let candidates_from i =
    let r = vertices.(i) in
    match r.Flow_entry.action with
    | Flow_entry.Drop -> []
    | Flow_entry.Output _ -> (
        match Network.next_switch net r with
        | None -> []
        | Some sw -> entries_at ~switch:sw ~table:0)
    | Flow_entry.Goto_table tb -> entries_at ~switch:r.Flow_entry.switch ~table:tb
  in
  (* Does executing [p] hand the packet to rule [q]'s flow table? *)
  let leads_to (p : Flow_entry.t) (q : Flow_entry.t) =
    match p.action with
    | Flow_entry.Drop -> false
    | Flow_entry.Output _ ->
        q.table = 0 && Network.next_switch net p = Some q.switch
    | Flow_entry.Goto_table tb -> p.switch = q.switch && tb = q.table
  in
  Array.iteri
    (fun i (e : Flow_entry.t) ->
      if affected e then begin
        (* Outgoing edges of the affected vertex. *)
        List.iter
          (fun (q : Flow_entry.t) -> try_edge i (Hashtbl.find index_of q.id))
          (candidates_from i);
        (* Incoming edges: rules on switches linked into ours, plus
           earlier tables of the same switch (goto sources). *)
        let topo = Network.topology net in
        let feeders =
          List.concat_map
            (fun sw ->
              List.concat_map
                (fun tb -> entries_at ~switch:sw ~table:tb)
                (List.init (Network.n_tables net) Fun.id))
            (Openflow.Topology.neighbors topo e.switch)
          @ List.concat_map
              (fun tb -> entries_at ~switch:e.switch ~table:tb)
              (List.init e.table Fun.id)
        in
        List.iter
          (fun (p : Flow_entry.t) ->
            if leads_to p e then try_edge (Hashtbl.find index_of p.id) i)
          feeders
      end)
    vertices;
  (* The edge SET above is that of a fresh build, but the insertion
     ORDER is not (copied edges first, recomputed ones appended) — and
     [Digraph.succ] exposes insertion order, which the MLPC augmentation
     search consults candidate by candidate. Re-insert every edge in
     [build_base]'s canonical order so an updated graph is
     adjacency-order identical to a scratch build: the delta planning
     path relies on this to reproduce a scratch re-plan byte for byte.
     All successors of a vertex live in one flow table (the next
     switch's table 0, or a later table of the same switch), and
     [build_base] visits candidates in that table's entry order — so
     sorting each successor list by table rank reproduces the canonical
     order without re-scanning whole candidate tables. *)
  let base =
    let g = Digraph.create n in
    let rank_tbl = Hashtbl.create 16 in
    let rank_of (q : Flow_entry.t) =
      let key = (q.Flow_entry.switch, q.Flow_entry.table) in
      let tbl =
        match Hashtbl.find_opt rank_tbl key with
        | Some tbl -> tbl
        | None ->
            let tbl = Hashtbl.create 64 in
            List.iteri
              (fun k (e : Flow_entry.t) -> Hashtbl.add tbl e.id k)
              (entries_at ~switch:q.Flow_entry.switch ~table:q.Flow_entry.table);
            Hashtbl.add rank_tbl key tbl;
            tbl
      in
      Hashtbl.find tbl q.Flow_entry.id
    in
    Array.iteri
      (fun i (_ : Flow_entry.t) ->
        Digraph.succ base i
        |> List.map (fun j -> (rank_of vertices.(j), j))
        |> List.sort compare
        |> List.iter (fun (_, j) -> Digraph.add_edge g i j))
      vertices;
    g
  in
  (match Digraph.find_cycle base with
  | Some cycle ->
      raise (Cyclic_policy (List.map (fun v -> vertices.(v).Flow_entry.id) cycle))
  | None -> ());
  (* Closure: sources that could reach an affected vertex (old or new
     graph) are re-explored; everything else keeps its closure edges and
     witnesses. *)
  let affected_new = ref [] in
  Array.iteri (fun i e -> if affected e then affected_new := i :: !affected_new) vertices;
  let affected_new = !affected_new in
  let ancestors g seeds =
    let tr = Digraph.transpose g in
    let mark = Array.make (Digraph.n_vertices g) false in
    let q = Queue.create () in
    List.iter
      (fun s ->
        if not mark.(s) then begin
          mark.(s) <- true;
          Queue.add s q
        end)
      seeds;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun p ->
          if not mark.(p) then begin
            mark.(p) <- true;
            Queue.add p q
          end)
        (Digraph.succ tr v)
    done;
    mark
  in
  let dirty_new = ancestors base affected_new in
  let affected_old =
    Array.to_list old.vertices
    |> List.mapi (fun ov e -> (ov, e))
    |> List.filter_map (fun (ov, (e : Flow_entry.t)) ->
           if affected e || not (Hashtbl.mem index_of e.id) then Some ov else None)
  in
  let dirty_old = ancestors old.base affected_old in
  (* Old-index <-> new-index maps (-1 = no counterpart), precomputed so
     the copy/retention loops below remap with array reads instead of
     per-vertex hashtable lookups. *)
  let o2n = Array.make (Array.length old.vertices) (-1) in
  Array.iteri
    (fun ov (e : Flow_entry.t) ->
      match Hashtbl.find_opt index_of e.id with
      | Some v -> o2n.(ov) <- v
      | None -> ())
    old.vertices;
  let n2o = Array.make n (-1) in
  Array.iteri
    (fun i (e : Flow_entry.t) ->
      match Hashtbl.find_opt old.index_of e.id with
      | Some ov -> n2o.(i) <- ov
      | None -> ())
    vertices;
  let dirty_arr =
    Array.init n (fun i ->
        dirty_new.(i)
        ||
        let ov = n2o.(i) in
        ov < 0 || dirty_old.(ov))
  in
  let dirty i = dirty_arr.(i) in
  let t =
    {
      network = net;
      vertices;
      index_of;
      inputs;
      outputs;
      base;
      full = base;
      (* Pre-sized to the old tables: the copy/retention loops below
         re-insert most of their contents, and growing from the default
         bucket count would rehash the whole table a dozen times. *)
      witness = Hashtbl.create (max 64 (Hashtbl.length old.witness));
      pruned = old.pruned;
      caches =
        {
          start = Hashtbl.create (max 256 (Hashtbl.length old.caches.start));
          forward = Hashtbl.create (max 64 (Hashtbl.length old.caches.forward));
          inject = Hashtbl.create (max 64 (Hashtbl.length old.caches.inject));
          legal = Hashtbl.create (max 64 (Hashtbl.length old.caches.legal));
          stats = { hits = 0; misses = 0 };
          own = Sdn_parallel.Ownership.register ~name:"rule_graph.caches";
        };
    }
  in
  let full = Digraph.copy base in
  (* Copy surviving closure edges of clean sources, per source in the
     OLD graph's successor order. A clean source's reachable cone is
     entirely clean (a vertex reachable from it that could reach an
     affected vertex would make the source dirty), so a fresh build's
     closure exploration from it would traverse identical spaces over
     identical adjacency and discover the same edges in the same order —
     the old succ order IS the fresh discovery order, witnesses
     included. Dirty sources are re-explored from scratch below, which
     also appends their edges in discovery order, so the updated [full]
     is adjacency-order identical to a scratch build's. *)
  let remap_interior interior =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | ow :: rest ->
          let w = o2n.(ow) in
          if w >= 0 then go (w :: acc) rest else None
    in
    go [] interior
  in
  for u = 0 to n - 1 do
    if not (dirty u) then begin
      let ou = n2o.(u) in
      List.iter
        (fun ov ->
          match Hashtbl.find_opt old.witness (ou, ov) with
          | None -> () (* base edge *)
          | Some witnesses ->
              let j = o2n.(ov) in
              if j >= 0 then begin
                let mapped = List.filter_map remap_interior witnesses in
                if mapped <> [] then begin
                  Hashtbl.replace t.witness (u, j) mapped;
                  Digraph.add_edge full u j
                end
              end)
        (Digraph.succ old.full ou)
    end
  done;
  for u = 0 to n - 1 do
    if dirty u then closure_from t full u ~max_witnesses
  done;
  (* Space-cache retention: every cached value is a pure function of the
     entries on its key path, so any old entry whose vertices are all
     unaffected and surviving stays valid — it only needs its key
     remapped through the entry ids (vertex indices shift when entries
     are added or removed). Injection plans are retained only for
     table-0 heads: a later-table head's plan searches the head's
     predecessors for a pipeline prefix, which edits elsewhere in the
     switch can change. Retained values are the exact Hs objects a
     recomputation over the unchanged per-rule spaces would rebuild, so
     warm lookups are representation-identical, not merely
     semantically equal. *)
  let old_to_new =
    Array.init (Array.length old.vertices) (fun ov ->
        let v = o2n.(ov) in
        if v >= 0 && not affected_arr.(v) then v else -1)
  in
  let remap_path key =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | ov :: rest ->
          let v = if ov < Array.length old_to_new then old_to_new.(ov) else -1 in
          if v >= 0 then go (v :: acc) rest else None
    in
    go [] key
  in
  let retain src dst =
    (* sdncheck: allow D001 — cache migration under an injective key
       remap: distinct old keys land on distinct new keys, so
       iteration order cannot affect the migrated table *)
    Hashtbl.iter
      (fun key value ->
        match remap_path key with
        | Some key' -> Hashtbl.replace dst key' value
        | None -> ())
      src
  in
  retain old.caches.start t.caches.start;
  retain old.caches.forward t.caches.forward;
  (* sdncheck: allow D001 — same injective remap as [retain], with the
     inject payload's rule chain remapped alongside the key *)
  Hashtbl.iter
    (fun key value ->
      match key with
      | head :: _ when old.vertices.(head).Flow_entry.table = 0 -> (
          match remap_path key with
          | None -> ()
          | Some key' -> (
              match value with
              | None -> Hashtbl.replace t.caches.inject key' None
              | Some (rules, hs) -> (
                  match remap_path rules with
                  | Some rules' ->
                      Hashtbl.replace t.caches.inject key' (Some (rules', hs))
                  | None -> ())))
      | _ -> ())
    old.caches.inject;
  (* Legality claims are keyed by UNEXPANDED chains, so their value also
     depends on the witness expansion of each closure hop — retained
     only when every chain vertex is clean (non-dirty sources keep their
     closure edges and witnesses verbatim) and the head enters at
     table 0 (later-table heads search base-graph predecessors, which
     edits elsewhere in the switch can change). *)
  (* sdncheck: allow D001 — injective remap again: legality claims
     migrate key-by-key, no cross-key interference *)
  Hashtbl.iter
    (fun key value ->
      match key with
      | head :: _ when old.vertices.(head).Flow_entry.table = 0 -> (
          match remap_path key with
          | Some key' when List.for_all (fun v -> not (dirty v)) key' ->
              Hashtbl.replace t.caches.legal key' value
          | _ -> ())
      | _ -> ())
    old.caches.legal;
  { t with full }

let expand_pair t u v =
  if Digraph.mem_edge t.base u v then [ v ]
  else
    match witnesses t u v with
    | interior :: _ -> interior @ [ v ]
    | [] -> invalid_arg "Rule_graph.expand_path: pair is not an edge"

let expand_path t = function
  | [] -> []
  | first :: _ as path ->
      let rec loop = function
        | [] | [ _ ] -> []
        | u :: (v :: _ as rest) -> expand_pair t u v @ loop rest
      in
      first :: loop path

let forward_space_v t view path =
  let len = Network.header_len t.network in
  match path with
  | [] -> Hs.empty len
  | _ ->
      cached view view.vforward
        (fun c -> c.forward)
        (c_forward_hits, c_forward_misses) path
        (fun () ->
          List.fold_left (fun hs v -> step t.inputs t.vertices hs v) (Hs.full len) path)

let forward_space t path = forward_space_v t (direct_view t.caches) path

let start_space_v t view path =
  let len = Network.header_len t.network in
  match path with
  | [] -> Hs.empty len
  | _ ->
      (* Memoized on suffixes: the backward fold means every cached tail
         is reusable verbatim when the path is extended at the front. *)
      let rec go = function
        | [] -> Hs.full len
        | v :: rest as key ->
            cached view view.vstart
              (fun c -> c.start)
              (c_start_hits, c_start_misses) key
              (fun () ->
                let after = go rest in
                let r = t.vertices.(v) in
                Hs.inter t.inputs.(v)
                  (Hs.inverse_set_field ~set:r.Flow_entry.set_field after))
      in
      go path

let start_space t path = start_space_v t (direct_view t.caches) path

let is_legal t path = not (Hs.is_empty (forward_space t (expand_path t path)))

let rec injection_plan_v t view rules =
  match rules with
  | [] -> None
  | head :: _ ->
      cached view view.vinject
        (fun c -> c.inject)
        (c_inject_hits, c_inject_misses) rules
        (fun () ->
          let e = t.vertices.(head) in
          if e.Flow_entry.table = 0 then
            let hs = start_space_v t view rules in
            if Hs.is_empty hs then None else Some (rules, hs)
          else
            (* Reach the head through its own switch's earlier tables. *)
            List.find_map
              (fun p ->
                let pe = t.vertices.(p) in
                if
                  pe.Flow_entry.switch = e.Flow_entry.switch
                  && pe.Flow_entry.table < e.Flow_entry.table
                  && not (Hs.is_empty (start_space_v t view (p :: rules)))
                then injection_plan_v t view (p :: rules)
                else None)
              (Digraph.pred t.base head))

let injection_plan t rules = injection_plan_v t (direct_view t.caches) rules

let is_injectable t path =
  match Hashtbl.find_opt t.caches.legal path with
  | Some b ->
      t.caches.stats.hits <- t.caches.stats.hits + 1;
      Metrics.Counter.incr c_legal_hits;
      b
  | None ->
      t.caches.stats.misses <- t.caches.stats.misses + 1;
      Metrics.Counter.incr c_legal_misses;
      let b = injection_plan t (expand_path t path) <> None in
      Hashtbl.add t.caches.legal path b;
      b

(* Batch queries: contiguous blocks of paths, one task and one local
   view per block — items inside a block share subproblems (the
   suffix-keyed start spaces especially) through the view instead of
   each recomputing them cold. Views are merged back after the
   input-order join; cached values are pure functions of their keys, so
   neither the block boundaries nor the merge order can show in the
   output. With no pool (or one domain) this is exactly the sequential
   fold over the shared caches. *)
let batch ?pool t f paths =
  let seq () =
    let v = direct_view t.caches in
    List.map (f v) paths
  in
  match pool with
  | None -> seq ()
  | Some p when Sdn_parallel.Pool.domains p = 1 -> seq ()
  | Some p ->
      let arr = Array.of_list paths in
      let n = Array.length arr in
      let blocks = min n (2 * Sdn_parallel.Pool.domains p) in
      if blocks = 0 then []
      else begin
        let size = (n + blocks - 1) / blocks in
        let spans =
          List.filter
            (fun (lo, hi) -> lo < hi)
            (List.init blocks (fun b -> (b * size, min n ((b + 1) * size))))
        in
        Sdn_parallel.Pool.map_list p
          (fun (lo, hi) ->
            let v = local_view t.caches in
            let rec go i acc =
              if i >= hi then List.rev acc else go (i + 1) (f v arr.(i) :: acc)
            in
            (go lo [], v))
          spans
        |> List.concat_map (fun (rs, v) ->
               merge_view t v;
               rs)
      end

let spaces ?pool t paths =
  batch ?pool t (fun v path -> (start_space_v t v path, forward_space_v t v path)) paths

let warm_injection ?pool t pathlists =
  ignore
    (batch ?pool t (fun v rules -> ignore (injection_plan_v t v rules)) pathlists
      : unit list)

let stats t =
  [
    ("vertices", n_vertices t);
    ("base_edges", Digraph.n_edges t.base);
    ("closure_edges", Digraph.n_edges t.full - Digraph.n_edges t.base);
    ("pruned", t.pruned);
  ]
