module Hs = Hspace.Hs
module FE = Openflow.Flow_entry
module Network = Openflow.Network

type issue =
  | Forwarding_loop of int list
  | Blackhole of { rule : int; next_switch : int; space : Hs.t }
  | Shadowed_rule of int

(* Thin compatibility shim over the lint engine (lib/lint): run the
   three legacy passes and map their diagnostics back onto [issue].
   Pass emission order matches the historical contract — the loop
   first, then blackholes and shadows in ascending entry order. *)
let check net =
  let report =
    Lint.Engine.run
      ~only:[ "L001-forwarding-loop"; "L002-blackhole"; "L003-shadowed-rule" ]
      net
  in
  List.filter_map
    (fun (d : Lint.Diagnostic.t) ->
      match (d.check, d.entries) with
      | "L001-forwarding-loop", ids -> Some (Forwarding_loop ids)
      | "L002-blackhole", rule :: _ ->
          Some
            (Blackhole
               { rule; next_switch = Option.get d.switch; space = d.witness })
      | "L003-shadowed-rule", id :: _ -> Some (Shadowed_rule id)
      | _ -> None)
    report.Lint.Engine.diagnostics

let is_clean net = check net = []

let pp_entry net fmt id =
  match Network.find_entry net id with
  | Some e -> Format.fprintf fmt "%d(p%d)" id e.FE.priority
  | None -> Format.pp_print_int fmt id

let pp_issue net fmt = function
  | Forwarding_loop ids ->
      Format.fprintf fmt "forwarding loop through entries %a"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f " -> ")
           (pp_entry net))
        ids
  | Blackhole { rule; next_switch; space } ->
      Format.fprintf fmt "blackhole: entry %a (sw%d) sends %a to sw%d, which drops it"
        (pp_entry net) rule
        (Network.entry net rule).FE.switch
        Hs.pp space next_switch
  | Shadowed_rule id ->
      Format.fprintf fmt "shadowed rule: entry %a (sw%d) can never match"
        (pp_entry net) id
        (Network.entry net id).FE.switch
