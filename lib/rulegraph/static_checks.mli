(** Static policy verification in the style of HSA / NetPlumber.

    The paper {e assumes} loop-free routing policies and notes that
    loops "can be efficiently detected using static analysis [24, 25]"
    (§V-A); probe generation also silently skips fully-shadowed rules.
    This module is that companion checker: it analyzes a network's
    policy without sending a single packet and reports

    - {b forwarding loops} — a cycle of flow entries some header can
      traverse (these invalidate SDNProbe's DAG precondition);
    - {b blackholes} — header spaces a rule forwards to a neighbour
      that has no matching entry for them (traffic silently dies);
    - {b shadowed rules} — entries fully covered by higher-priority
      rules in their table (dead configuration, untestable by any
      probe).

    Checking is polynomial: one rule-graph construction plus a pairwise
    leak computation per link.

    This module is now a thin compatibility shim over the {!Lint}
    engine, which generalizes these three checks into a full diagnostic
    framework (severities, stable check ids, header-space witnesses,
    more passes — see [docs/LINT.md] and [sdnprobe lint]). The loop and
    blackhole walks themselves live one layer further down, in the
    invariant verifier's plumbing graph ([Verify.Plumbing], see
    [docs/VERIFY.md] and [sdnprobe verify]), which also answers
    reachability, isolation and waypoint queries with replay-certified
    counterexamples and re-verifies incrementally after table edits.
    Existing callers keep the historical [issue] API and results. *)

type issue =
  | Forwarding_loop of int list
      (** entry ids forming a cycle, in order *)
  | Blackhole of { rule : int; next_switch : int; space : Hspace.Hs.t }
      (** [rule] forwards [space] to [next_switch], where no entry
          matches it *)
  | Shadowed_rule of int  (** entry with an empty input space *)

val check : Openflow.Network.t -> issue list
(** All issues, loops first. A policy with no issues satisfies
    SDNProbe's preconditions and every rule is exercisable. *)

val is_clean : Openflow.Network.t -> bool

val pp_issue : Openflow.Network.t -> Format.formatter -> issue -> unit
