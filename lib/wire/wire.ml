module Proto = Wire_proto
module Emulator = Dataplane.Emulator
module Clock = Dataplane.Clock
module Network = Openflow.Network
module Probe = Sdnprobe.Probe
module Config = Sdnprobe.Config
module Backend = Sdnprobe.Backend
module Message = Ofwire.Message
module Driver = Ofwire.Driver
module W = Ofwire.Byte_io.Writer
module Mono = Sdn_util.Mono

let src = Logs.Src.create "sdnprobe.wire" ~doc:"UDP wire probe backend"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  emu : Emulator.t;
      (* forwarding semantics, faults, impairment and traps all live
         here; the daemon walks it one Emulator.step per datagram *)
  clock : Clock.t; (* report clock, mirrors real elapsed time *)
  t0 : float; (* Mono.now_s at creation *)
  header_len : int;
  sw_socks : Unix.file_descr array;
  sw_addrs : Unix.sockaddr array;
  ctrl_sock : Unix.file_descr;
  ctrl_addr : Unix.sockaddr;
  traps_m : Mutex.t;
      (* the controller thread installs/removes traps between rounds
         while the daemon reads them per step: one lock covers both *)
  stop : bool Atomic.t;
  mutable daemon : unit Domain.t option;
  send_w : W.t; (* controller-side encode buffer, reused across sends *)
  recv_buf : bytes; (* controller-side receive buffer *)
  mutable xid : int32;
}

let max_datagram = 9000

let elapsed_us t = int_of_float ((Mono.now_s () -. t.t0) *. 1e6)

(* The runner reads detection timestamps and durations off [clock];
   mirror real elapsed time into it (monotone: never step backwards). *)
let sync_clock t =
  let now = elapsed_us t in
  let c = Clock.now_us t.clock in
  if now > c then Clock.advance_us t.clock (now - c)

let loopback port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let udp_socket () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.set_nonblock fd;
  Unix.bind fd (loopback 0);
  (fd, Unix.getsockname fd)

(* A failed send is a wire loss: the controller's timeout machinery is
   exactly the recovery path, so no error escapes here. *)
let send_view fd w dest =
  W.view w (fun buf off len ->
      try ignore (Unix.sendto fd buf off len [] dest)
      with Unix.Unix_error _ -> ())

let send_bytes fd data dest =
  try ignore (Unix.sendto fd data 0 (Bytes.length data) [] dest)
  with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Switch daemon: one domain select-looping over every switch socket.
   Jitter drawn by a switch visit is shaped at the socket level: the
   outgoing datagram is held in a due-time queue instead of leaving at
   once, so a jittered probe's echo really does come back later. *)

type delayed = { due_s : float; from_sw : int; dest : Unix.sockaddr; data : bytes }

(* One probe visit at switch [sw]: walk the shared emulator one step
   and turn the verdict into a datagram (or silence). *)
let visit t ~out_w ~queue ~sw ~probe ~ttl header =
  let now_us = elapsed_us t in
  Mutex.lock t.traps_m;
  let step =
    match Emulator.step ~now_us t.emu ~at:sw ~ttl header with
    | s -> Mutex.unlock t.traps_m; s
    | exception e -> Mutex.unlock t.traps_m; raise e
  in
  let dispatch ~jitter_us dest =
    if jitter_us <= 0 then send_view t.sw_socks.(sw) out_w dest
    else
      queue :=
        {
          due_s = Mono.now_s () +. (float_of_int jitter_us /. 1e6);
          from_sw = sw;
          dest;
          data = W.view out_w (fun b off len -> Bytes.sub b off len);
        }
        :: !queue
  in
  match step with
  | Emulator.Step_forward { next; header; jitter_us } ->
      W.reset out_w;
      Wire_proto.encode_to out_w { Wire_proto.probe; ttl = ttl - 1; header };
      dispatch ~jitter_us t.sw_addrs.(next)
  | Emulator.Step_final { outcome = Emulator.Returned { probe; header; _ }; jitter_us }
    ->
      W.reset out_w;
      t.xid <- Int32.add t.xid 1l;
      Message.encode_to out_w ~xid:t.xid
        (Driver.packet_in_of_return ~probe ~header ~table_id:0 ~cookie:0L);
      dispatch ~jitter_us t.ctrl_addr
  | Emulator.Step_final _ ->
      (* lost or locally delivered: the controller sees a timeout *)
      ()

let handle_datagram t ~out_w ~queue ~sw data len =
  if len >= 1 then
    let b0 = Bytes.get_uint8 data 0 in
    if b0 = Wire_proto.magic then
      match Wire_proto.decode (Bytes.sub data 0 len) with
      | Some { Wire_proto.probe; ttl; header } ->
          visit t ~out_w ~queue ~sw ~probe ~ttl header
      | None -> Log.debug (fun m -> m "switch %d: malformed frame dropped" sw)
    else if b0 = Message.version then
      match Message.decode ~header_len:t.header_len (Bytes.sub data 0 len) with
      | Ok ((_, Message.Packet_out { payload; _ }), _) -> (
          match Driver.parse_probe_payload ~header_len:t.header_len payload with
          | Some (probe, header) ->
              visit t ~out_w ~queue ~sw ~probe ~ttl:Emulator.ttl header
          | None ->
              Log.debug (fun m -> m "switch %d: bad packet-out payload" sw))
      | Ok _ | Error _ ->
          Log.debug (fun m -> m "switch %d: unexpected OpenFlow message" sw)
    else Log.debug (fun m -> m "switch %d: unknown datagram kind 0x%02x" sw b0)

let daemon_loop t =
  let buf = Bytes.create max_datagram in
  let out_w = W.create () in
  let queue = ref [] in
  let sw_of_fd = Hashtbl.create (Array.length t.sw_socks) in
  Array.iteri (fun sw fd -> Hashtbl.replace sw_of_fd fd sw) t.sw_socks;
  let fds = Array.to_list t.sw_socks in
  let drain fd sw =
    let continue = ref true in
    while !continue do
      match Unix.recvfrom fd buf 0 (Bytes.length buf) [] with
      | len, _ -> handle_datagram t ~out_w ~queue ~sw buf len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  while not (Atomic.get t.stop) do
    let now = Mono.now_s () in
    let due, later = List.partition (fun d -> d.due_s <= now) !queue in
    queue := later;
    List.iter (fun d -> send_bytes t.sw_socks.(d.from_sw) d.data d.dest) due;
    let timeout =
      List.fold_left (fun acc d -> min acc (d.due_s -. now)) 0.05 !queue
      |> Float.max 0.001
    in
    match Unix.select fds [] [] timeout with
    | readable, _, _ ->
        List.iter (fun fd -> drain fd (Hashtbl.find sw_of_fd fd)) readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ------------------------------------------------------------------ *)
(* Controller side *)

let drain_ctrl t =
  let continue = ref true in
  while !continue do
    match Unix.recvfrom t.ctrl_sock t.recv_buf 0 (Bytes.length t.recv_buf) [] with
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Parse one received datagram down to the echoed probe id. *)
let echoed_probe t len =
  if len < 1 || Bytes.get_uint8 t.recv_buf 0 <> Message.version then None
  else
    match Message.decode ~header_len:t.header_len (Bytes.sub t.recv_buf 0 len) with
    | Ok ((_, Message.Packet_in { payload; _ }), _) ->
        Option.map fst (Driver.parse_probe_payload ~header_len:t.header_len payload)
    | Ok _ | Error _ -> None

(* Batched round send: fire every probe, then collect echoes until each
   probe's own deadline. The sends and the timeout waits overlap — the
   round costs one slowest-probe timeout, not the sum. *)
let send_batch t ~config probes =
  drain_ctrl t;
  let arr = Array.of_list probes in
  let n = Array.length arr in
  let verdicts = Array.make n false in
  let deadlines = Array.make n 0. in
  let pending = Hashtbl.create (max 16 n) in
  Array.iteri (fun i (p : Probe.t) -> Hashtbl.replace pending p.Probe.id i) arr;
  Array.iteri
    (fun i (p : Probe.t) ->
      W.reset t.send_w;
      t.xid <- Int32.add t.xid 1l;
      Message.encode_to t.send_w ~xid:t.xid (Driver.packet_out_of_probe p);
      send_view t.ctrl_sock t.send_w t.sw_addrs.(p.Probe.inject_switch);
      deadlines.(i) <-
        Mono.now_s ()
        +. (float_of_int (Config.probe_timeout_us config ~hops:(Probe.hop_count p))
           /. 1e6))
    arr;
  let max_deadline = Array.fold_left Float.max 0. deadlines in
  let prune now =
    let expired =
      (* sdncheck: allow D001 — every expired id is removed; the
         removal set is order-free *)
      Hashtbl.fold
        (fun id i acc -> if deadlines.(i) < now then id :: acc else acc)
        pending []
    in
    List.iter (Hashtbl.remove pending) expired
  in
  let recv_echoes now =
    let continue = ref true in
    while !continue do
      match Unix.recvfrom t.ctrl_sock t.recv_buf 0 (Bytes.length t.recv_buf) [] with
      | len, _ -> (
          match echoed_probe t len with
          | Some id -> (
              match Hashtbl.find_opt pending id with
              | Some i ->
                  Hashtbl.remove pending id;
                  if now <= deadlines.(i) then verdicts.(i) <- true
              | None -> ())
          | None -> ())
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  let finished = ref (n = 0) in
  while not !finished do
    let now = Mono.now_s () in
    prune now;
    if Hashtbl.length pending = 0 || now >= max_deadline then finished := true
    else begin
      let timeout = Float.max 0.001 (Float.min 0.05 (max_deadline -. now)) in
      (match Unix.select [ t.ctrl_sock ] [] [] timeout with
      | [], _, _ -> ()
      | _ :: _, _, _ -> recv_echoes (Mono.now_s ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    end
  done;
  sync_clock t;
  verdicts

let attempt t ~config ?now_us (p : Probe.t) =
  ignore now_us;
  (send_batch t ~config [ p ]).(0)

let install_traps t probes =
  Mutex.lock t.traps_m;
  List.iter
    (fun (p : Probe.t) ->
      Emulator.install_trap t.emu ~probe:p.Probe.id ~switch:p.Probe.terminal_switch
        ~rule:p.Probe.terminal_rule ~header:p.Probe.expected_header)
    probes;
  Mutex.unlock t.traps_m

let remove_traps t probes =
  Mutex.lock t.traps_m;
  List.iter
    (fun (p : Probe.t) -> Emulator.remove_probe_traps t.emu ~probe:p.Probe.id)
    probes;
  Mutex.unlock t.traps_m;
  sync_clock t

let close t =
  match t.daemon with
  | None -> ()
  | Some d ->
      Atomic.set t.stop true;
      Domain.join d;
      t.daemon <- None;
      Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.sw_socks;
      (try Unix.close t.ctrl_sock with Unix.Unix_error _ -> ())

let create emu =
  let net = Emulator.network emu in
  let n = Network.n_switches net in
  let pairs = Array.init n (fun _ -> udp_socket ()) in
  let ctrl_sock, ctrl_addr = udp_socket () in
  let t =
    {
      emu;
      clock = Clock.create ();
      t0 = Mono.now_s ();
      header_len = Network.header_len net;
      sw_socks = Array.map fst pairs;
      sw_addrs = Array.map snd pairs;
      ctrl_sock;
      ctrl_addr;
      traps_m = Mutex.create ();
      stop = Atomic.make false;
      daemon = None;
      send_w = W.create ();
      recv_buf = Bytes.create max_datagram;
      xid = 0l;
    }
  in
  t.daemon <- Some (Domain.spawn (fun () -> daemon_loop t));
  Log.info (fun m -> m "wire backend up: %d switch endpoints on loopback UDP" n);
  t

let backend t =
  {
    Backend.label = "wire";
    network = Emulator.network t.emu;
    clock = t.clock;
    real_time = true;
    install_traps = install_traps t;
    remove_traps = remove_traps t;
    attempt = (fun ~config ?now_us p -> attempt t ~config ?now_us p);
    send_batch = Some (fun ~config probes -> send_batch t ~config probes);
    order_free = (fun ~config:_ -> false);
    close = (fun () -> close t);
  }

let switch_port t sw =
  match t.sw_addrs.(sw) with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> assert false
