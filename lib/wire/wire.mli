(** Deployment-shaped probe backend: detection rounds over real UDP
    sockets.

    Every switch of the topology becomes a UDP endpoint on
    127.0.0.1 (ephemeral port), served by one daemon domain. The
    controller injects probes as OpenFlow PACKET_OUT datagrams; a
    switch applies its flow tables to each received probe — one
    {!Dataplane.Emulator.step} per datagram, so faults, traps,
    impairments and goto-chains behave exactly as in-process — and
    either forwards it to the next switch's socket as a
    {!Wire_proto.frame}, echoes it to the controller as PACKET_IN, or
    drops it. Timeouts, losses and delays are real: impairment jitter
    is shaped at the socket (the datagram leaves late), loss draws
    silently discard, and the controller recovers by the same bounded
    retransmission it uses in virtual time. See docs/WIRE.md. *)

module Proto = Wire_proto
(** The inter-switch frame codec, re-exported for tests and tooling. *)

type t

val create : Dataplane.Emulator.t -> t
(** Bring up the switch endpoints and the service daemon over the
    emulator's network. The emulator supplies forwarding semantics,
    faults, impairment and trap storage — it is shared, so the caller
    must not [inject] through it while the wire backend is live. *)

val backend : t -> Sdnprobe.Backend.t
(** The {!Sdnprobe.Runner.execute_on} view: real-time clock, batched
    round sends with per-probe deadlines over [select]. *)

val close : t -> unit
(** Stop the daemon and close every socket. Idempotent. *)

val switch_port : t -> int -> int
(** The UDP port switch [sw] listens on (for tests and debugging). *)
