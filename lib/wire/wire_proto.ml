module W = Ofwire.Byte_io.Writer
module R = Ofwire.Byte_io.Reader
module Header = Hspace.Header

(* First byte of an inter-switch frame. Deliberately not 0x04: a switch
   endpoint tells probe frames apart from OpenFlow messages (whose first
   byte is the protocol version) by looking at one byte. *)
let magic = 0xd5

type frame = { probe : int; ttl : int; header : Header.t }

let encode_to w { probe; ttl; header } =
  W.u8 w magic;
  W.u8 w ttl;
  W.u32i w probe;
  W.u16 w (Header.length header);
  W.raw w (Ofwire.Driver.pack_header header)

let encode f =
  let w = W.create () in
  encode_to w f;
  W.contents w

let decode buf =
  match
    let r = R.of_bytes buf in
    let m = R.u8 r in
    if m <> magic then None
    else
      let ttl = R.u8 r in
      let probe = Int32.to_int (R.u32 r) in
      let bits = R.u16 r in
      let packed = R.raw r ((bits + 7) / 8) in
      Option.map
        (fun header -> { probe; ttl; header })
        (Ofwire.Driver.unpack_header ~header_len:bits packed)
  with
  | res -> res
  | exception Ofwire.Byte_io.Truncated -> None
