(** Inter-switch probe frame for the UDP wire backend.

    Between the controller and a switch, probes ride stock OpenFlow
    (PACKET_OUT in, PACKET_IN back — {!Ofwire.Driver}). Between
    switches there is no OpenFlow, so forwarded probes travel as this
    minimal data-packet frame: a magic byte (distinguishing frames from
    OpenFlow messages, whose first byte is the version), the remaining
    TTL, the probe id, and the packed header. *)

val magic : int
(** First byte of every frame (0xd5 — never 0x04, OpenFlow's
    version byte). *)

type frame = { probe : int; ttl : int; header : Hspace.Header.t }

val encode_to : Ofwire.Byte_io.Writer.t -> frame -> unit
(** Append a frame to a writer (reusable across sends with
    [Writer.reset]/[Writer.view]). *)

val encode : frame -> bytes

val decode : bytes -> frame option
(** [None] on wrong magic or a truncated/hostile buffer — a malformed
    datagram is dropped, never an exception in the switch daemon. *)
