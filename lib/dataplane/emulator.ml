module Header = Hspace.Header
module FE = Openflow.Flow_entry
module Network = Openflow.Network
module Topology = Openflow.Topology

type lost_reason =
  | No_match of int
  | Dropped_by_fault of int
  | Dead_port of int
  | Ttl_exceeded
  | Link_loss of int
  | Link_down of int
  | Churn_miss of int

type outcome =
  | Returned of { probe : int; at_switch : int; header : Header.t }
  | Delivered of { at_switch : int; header : Header.t }
  | Lost of lost_reason

type hop = { switch : int; entry : int; header_out : Header.t }

type result = { outcome : outcome; trace : hop list; jitter_us : int }

type trap_key = { t_switch : int; t_rule : int; t_header : string }

type t = {
  net : Network.t;
  faults : (int, Fault.t) Hashtbl.t;
  traps : (trap_key, int) Hashtbl.t; (* -> probe id *)
  clk : Clock.t;
  counters : (int, int) Hashtbl.t; (* entry -> packets processed *)
  counters_m : Mutex.t; (* injects may run concurrently (Runner) *)
  counters_own : Sdn_parallel.Ownership.region;
      (* SDNPROBE_POOL_CHECK witness that every counters access holds
         [counters_m] (the touch_sync sites below) *)
  mutable impairment : Impairment.t option;
}

let ttl = 64

let create net =
  {
    net;
    faults = Hashtbl.create 64;
    traps = Hashtbl.create 64;
    clk = Clock.create ();
    counters = Hashtbl.create 256;
    counters_m = Mutex.create ();
    counters_own = Sdn_parallel.Ownership.register ~name:"emulator.counters";
    impairment = None;
  }

let network t = t.net

let clock t = t.clk

let set_impairment t imp = t.impairment <- Some imp

let clear_impairment t = t.impairment <- None

let impairment t = t.impairment

let set_fault t ~entry fault =
  (* Validate the entry exists so misconfigured experiments fail fast. *)
  ignore (Network.entry t.net entry);
  Hashtbl.replace t.faults entry fault

let clear_fault t ~entry = Hashtbl.remove t.faults entry

let clear_all_faults t = Hashtbl.reset t.faults

let fault_of t ~entry = Hashtbl.find_opt t.faults entry

let faulty_entries t =
  Hashtbl.fold (fun e _ acc -> e :: acc) t.faults [] |> List.sort compare

let faulty_switches t =
  faulty_entries t
  |> List.map (fun e -> (Network.entry t.net e).FE.switch)
  |> List.sort_uniq compare

let trap_key ~switch ~rule ~header =
  { t_switch = switch; t_rule = rule; t_header = Header.to_string header }

let install_trap t ~probe ~switch ~rule ~header =
  Hashtbl.replace t.traps (trap_key ~switch ~rule ~header) probe

let remove_probe_traps t ~probe =
  let keys =
    (* sdncheck: allow D001 — every collected key is removed; the
       removal set is order-free *)
    Hashtbl.fold (fun k p acc -> if p = probe then k :: acc else acc) t.traps []
  in
  List.iter (Hashtbl.remove t.traps) keys

let clear_traps t = Hashtbl.reset t.traps

let flow_count t ~entry =
  Mutex.lock t.counters_m;
  Sdn_parallel.Ownership.touch_sync t.counters_own;
  let c = Option.value ~default:0 (Hashtbl.find_opt t.counters entry) in
  Mutex.unlock t.counters_m;
  c

let flow_counts t =
  Mutex.lock t.counters_m;
  Sdn_parallel.Ownership.touch_sync t.counters_own;
  let cs =
    List.sort compare (Hashtbl.fold (fun e c acc -> (e, c) :: acc) t.counters [])
  in
  Mutex.unlock t.counters_m;
  cs

let reset_flow_counts t =
  Mutex.lock t.counters_m;
  Sdn_parallel.Ownership.touch_sync t.counters_own;
  Hashtbl.reset t.counters;
  Mutex.unlock t.counters_m

(* Per-entry totals are sums, so concurrent injects of one round bump
   them in any order to the same final counts. *)
let bump_counter t entry =
  Mutex.lock t.counters_m;
  Sdn_parallel.Ownership.touch_sync t.counters_own;
  Hashtbl.replace t.counters entry
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counters entry));
  Mutex.unlock t.counters_m

(* Process a packet at one switch, chasing goto-table chains, and decide
   where it goes next. *)
type step =
  | Forward of int * Header.t (* next switch, header *)
  | Teleport of int * Header.t (* detour tunnel to a switch *)
  | Final of outcome

(* One switch visit: jitter draw, then the table walk (goto chains stay
   inside the visit). [record] observes each processed entry; the
   returned jitter is this visit's draw alone. Both [inject] (the whole
   path in-process) and [step] (the wire backend's per-datagram walk,
   lib/wire) are wrappers, so the two backends cannot drift apart. *)
let visit t ~now_us ~record sw0 header0 budget0 =
  let jitter = ref 0 in
  let rec at_switch sw table header budget =
    if budget <= 0 then Final (Lost Ttl_exceeded)
    else
      match Openflow.Flow_table.lookup (Network.table t.net ~switch:sw ~table) header with
      | None -> Final (Lost (No_match sw))
      | Some e -> process sw e header budget
  and process sw (e : FE.t) header budget =
    (* A churned-out entry is mid insert/delete: the packet hits the
       table while the rule is absent and is blackholed by the
       reconfiguration window (transient, impairment-side — distinct
       from the Fault ground truth). *)
    match t.impairment with
    | Some imp when Impairment.rule_out imp ~entry:e.id ~now_us ->
        Final (Lost (Churn_miss sw))
    | _ -> process_entry sw e header budget
  and process_entry sw (e : FE.t) header budget =
    bump_counter t e.id;
    let fault =
      match Hashtbl.find_opt t.faults e.id with
      | Some f when Fault.is_active f ~now_us ~header -> Some f
      | _ -> None
    in
    (* A fault that replaces the forwarding action (drop / misdirect /
       detour) also bypasses the §VI goto-table redirect, so its probe
       never reaches the test entry — observable as a loss. A rewrite
       fault leaves the action (and hence the redirect) intact but the
       exact-match test entry misses the mangled header. *)
    let header', action =
      match fault with
      | None -> (FE.apply e header, `Action (e.action, true))
      | Some { Fault.effect = Fault.Drop_packet; _ } -> (header, `Fault_drop)
      | Some { Fault.effect = Fault.Misdirect port; _ } ->
          (FE.apply e header, `Action (FE.Output port, false))
      | Some { Fault.effect = Fault.Rewrite set; _ } ->
          (Header.apply_set_field ~set header, `Action (e.action, true))
      | Some { Fault.effect = Fault.Detour peer; _ } -> (FE.apply e header, `Detour peer)
    in
    (match action with `Fault_drop -> () | _ -> record sw e.id header');
    match action with
    | `Fault_drop -> Final (Lost (Dropped_by_fault sw))
    | `Detour peer -> Teleport (peer, header')
    | `Action (act, redirect_intact) -> (
        let trap =
          if redirect_intact then
            Hashtbl.find_opt t.traps (trap_key ~switch:sw ~rule:e.id ~header:header')
          else None
        in
        match trap with
        | Some probe -> Final (Returned { probe; at_switch = sw; header = header' })
        | None -> (
            match act with
            | FE.Drop -> Final (Delivered { at_switch = sw; header = header' })
            | FE.Goto_table tb -> goto sw tb header' budget
            | FE.Output port -> (
                match Topology.peer (Network.topology t.net) ~sw ~port with
                | None -> Final (Lost (Dead_port sw))
                | Some (next_sw, _) -> (
                    match t.impairment with
                    | Some imp when Impairment.link_down imp ~sw_a:sw ~sw_b:next_sw ~now_us
                      ->
                        Final (Lost (Link_down sw))
                    | Some imp when Impairment.lose_on_link imp ~sw_a:sw ~sw_b:next_sw ~now_us
                      ->
                        Final (Lost (Link_loss sw))
                    | _ -> Forward (next_sw, header')))))
  and goto sw tb header budget =
    match
      Openflow.Flow_table.lookup (Network.table t.net ~switch:sw ~table:tb) header
    with
    | None -> Final (Lost (No_match sw))
    | Some e -> process sw e header budget
  in
  let step =
    if budget0 <= 0 then Final (Lost Ttl_exceeded)
    else begin
      (match t.impairment with
      | Some imp -> jitter := !jitter + Impairment.jitter_us imp ~switch:sw0 ~now_us
      | None -> ());
      at_switch sw0 0 header0 budget0
    end
  in
  (step, !jitter)

let inject ?now_us t ~at header =
  let now_us = match now_us with Some n -> n | None -> Clock.now_us t.clk in
  let trace = ref [] in
  let jitter = ref 0 in
  let record switch entry header_out = trace := { switch; entry; header_out } :: !trace in
  let rec drive sw header budget =
    let step, j = visit t ~now_us ~record sw header budget in
    jitter := !jitter + j;
    match step with
    | Forward (next, h) -> drive next h (budget - 1)
    | Teleport (peer, h) -> drive peer h (budget - 1)
    | Final o -> o
  in
  let outcome = drive at header ttl in
  { outcome; trace = List.rev !trace; jitter_us = !jitter }

type step_result =
  | Step_forward of { next : int; header : Header.t; jitter_us : int }
  | Step_final of { outcome : outcome; jitter_us : int }

let step ?now_us t ~at ~ttl header =
  let now_us = match now_us with Some n -> n | None -> Clock.now_us t.clk in
  let step, jitter_us = visit t ~now_us ~record:(fun _ _ _ -> ()) at header ttl in
  match step with
  | Forward (next, header) | Teleport (next, header) ->
      Step_forward { next; header; jitter_us }
  | Final outcome -> Step_final { outcome; jitter_us }
