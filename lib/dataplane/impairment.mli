(** Error-prone environment model: seeded, clock-driven data-plane
    impairments, independent of the {!Fault} ground truth being hunted.

    The paper's title promise — fault localization {e in the error-prone
    environment} — needs an emulator that loses packets for reasons that
    are {e not} the injected fault: natural per-link loss, per-switch
    delay jitter, transient link flaps, and mid-run rule churn. An
    impairment attached to an {!Emulator} perturbs every forwarded
    packet; the detection loop must absorb the noise (retransmission,
    per-probe timeouts, suspicion decay) without flagging healthy
    switches.

    Every decision is a pure function of the spec's [seed], the
    entity (link / switch / entry), the virtual-clock time, and a
    per-entity draw counter — so a run is reproducible from the seed,
    yet a retransmission of the same probe sees fresh loss randomness
    (independent per-packet loss) while flap and churn windows stay
    down for their whole window (persistent transient outages).

    A spec with every knob at zero (the {!none} spec) makes every
    decision a constant no and draws nothing: attaching it is
    observationally identical to no impairment at all. *)

type flap_spec = {
  flap_window_us : int;  (** window granularity of link up/down decisions *)
  down_ratio : float;  (** probability a given link is down in a window *)
}

type churn_spec = {
  churn_window_us : int;  (** window granularity of rule in/out decisions *)
  out_ratio : float;
      (** probability a given flow entry is mid-reconfiguration (absent
          from the table, packets blackholed) in a window *)
}

type spec = {
  seed : int;
  loss_rate : float;  (** per-link, per-packet independent loss probability *)
  jitter_max_us : int;
      (** per-switch extra forwarding latency, uniform in [\[0, max\]] per
          visit; 0 disables jitter *)
  flaps : flap_spec option;
  churn : churn_spec option;
}

val none : spec
(** Seed 0, every rate 0, no flaps, no churn. *)

val spec :
  ?seed:int ->
  ?loss_rate:float ->
  ?jitter_max_us:int ->
  ?flaps:flap_spec ->
  ?churn:churn_spec ->
  unit ->
  spec
(** Builder over {!none}. Raises [Invalid_argument] on rates outside
    [\[0, 1\]], a negative jitter, or a non-positive window. *)

type t

val create : spec -> t

val spec_of : t -> spec

val order_independent : t -> bool
(** Whether every decision is independent of the order packets are
    processed in: true iff [loss_rate = 0] and [jitter_max_us = 0].
    Loss and jitter draw through per-entity counters (a retransmission
    must be a fresh experiment), so their outcomes depend on how many
    earlier draws the entity saw; flap and churn are salted by the
    clock window alone. The probe runner parallelizes a round only when
    this holds — stats, being atomic sums, are order-blind either
    way. *)

(** {2 Decisions} — queried by the emulator per packet event. *)

val lose_on_link : t -> sw_a:int -> sw_b:int -> now_us:int -> bool
(** Independent per-packet loss draw for a traversal of the (unordered)
    link [sw_a]–[sw_b]. Never true when [loss_rate = 0]. *)

val link_down : t -> sw_a:int -> sw_b:int -> now_us:int -> bool
(** Whether the link is flapped down for the window containing
    [now_us]. Stable within a window; both directions agree. *)

val rule_out : t -> entry:int -> now_us:int -> bool
(** Whether the entry is churned out (mid insert/delete) for the window
    containing [now_us]. *)

val jitter_us : t -> switch:int -> now_us:int -> int
(** Extra forwarding latency for one visit of [switch]; a fresh uniform
    draw in [\[0, jitter_max_us\]] per visit, 0 when disabled. *)

(** {2 Accounting} — what the impairment actually did, for reports. *)

type stats = {
  link_losses : int;  (** packets dropped by the loss draw *)
  flap_drops : int;  (** packets dropped on a flapped-down link *)
  churn_misses : int;  (** packets blackholed by a churned-out rule *)
  jitter_total_us : int;  (** total jitter injected across all visits *)
}

val stats : t -> stats

val reset_stats : t -> unit
