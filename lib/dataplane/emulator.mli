(** Data-plane emulator — the reproduction's Mininet/Open vSwitch.

    Executes OpenFlow forwarding exactly as the {!Openflow} model
    specifies (priority matching, set-field rewrites, goto-table,
    link-level forwarding), with per-entry fault injection and the §VI
    return-trap mechanism for probes:

    installing a trap [(switch, rule, header)] models the paper's
    duplicated table + test flow entry: when the packet's matched entry
    at [switch] is [rule] and the post-rewrite header equals [header]
    exactly, the packet is returned to the controller instead of
    following the entry's action. A fault on [rule] still fires first —
    the tested rule is genuinely exercised, which is why the paper
    duplicates the table instead of short-circuiting the match.

    Injection is synchronous and returns the packet's fate plus its hop
    trace; the virtual {!Clock} only gates intermittent faults — the
    probe scheduler in the core library owns delay accounting. *)

type lost_reason =
  | No_match of int  (** table miss at a switch *)
  | Dropped_by_fault of int  (** a drop fault fired at this switch *)
  | Dead_port of int  (** output port without a link *)
  | Ttl_exceeded  (** forwarding loop guard *)
  | Link_loss of int
      (** impairment: natural per-packet loss on this switch's egress link *)
  | Link_down of int  (** impairment: egress link flapped down *)
  | Churn_miss of int
      (** impairment: the matched rule was churned out mid-reconfiguration *)

type outcome =
  | Returned of { probe : int; at_switch : int; header : Hspace.Header.t }
      (** captured by a return trap *)
  | Delivered of { at_switch : int; header : Hspace.Header.t }
      (** matched an honest [Drop] (local delivery) with no trap: from
          the controller's viewpoint this probe is lost *)
  | Lost of lost_reason

type hop = { switch : int; entry : int; header_out : Hspace.Header.t }
(** One processed flow entry: the switch, the matched entry id, and the
    header after its (possibly faulty) rewrite. *)

type result = {
  outcome : outcome;
  trace : hop list;
  jitter_us : int;
      (** total impairment delay jitter accumulated over the packet's
          switch visits (0 without an impairment); the probe scheduler
          adds it to the nominal flight time for timeout decisions *)
}

type t

val create : Openflow.Network.t -> t
(** Fresh emulator over the network, no faults, clock at 0, no
    impairment. *)

val network : t -> Openflow.Network.t

val clock : t -> Clock.t

val set_impairment : t -> Impairment.t -> unit
(** Attach the error-prone environment model: per-link loss, link
    flaps, rule churn and delay jitter perturb every subsequent
    {!inject}. Attaching an impairment built from {!Impairment.none} is
    observationally identical to having none. *)

val clear_impairment : t -> unit

val impairment : t -> Impairment.t option

val set_fault : t -> entry:int -> Fault.t -> unit
(** Attach (or replace) a fault on a flow entry. *)

val clear_fault : t -> entry:int -> unit

val clear_all_faults : t -> unit

val fault_of : t -> entry:int -> Fault.t option

val faulty_entries : t -> int list

val faulty_switches : t -> int list
(** Switches owning at least one faulted entry (sorted). *)

val install_trap : t -> probe:int -> switch:int -> rule:int -> header:Hspace.Header.t -> unit
(** Register a return trap. Replaces any trap with the same
    [(switch, rule, header)] key. *)

val remove_probe_traps : t -> probe:int -> unit

val clear_traps : t -> unit

val inject : ?now_us:int -> t -> at:int -> Hspace.Header.t -> result
(** Hand a packet to switch [at] for processing and follow it to its
    fate. The emulator clock is read (not advanced); [?now_us]
    substitutes a virtual send instant for the clock reading, letting
    the probe runner inject a round's packets concurrently, each at the
    time the serial schedule would have sent it. *)

type step_result =
  | Step_forward of { next : int; header : Hspace.Header.t; jitter_us : int }
      (** the packet leaves for switch [next] (egress link or detour
          tunnel) carrying [header]; the visit drew [jitter_us] of
          forwarding delay *)
  | Step_final of { outcome : outcome; jitter_us : int }

val step : ?now_us:int -> t -> at:int -> ttl:int -> Hspace.Header.t -> step_result
(** One switch visit: exactly one iteration of {!inject}'s forwarding
    loop — jitter draw, table walk with goto chains, faults, traps,
    churn and egress-link impairments. [ttl <= 0] is [Ttl_exceeded].
    The wire backend ([lib/wire]) drives this per received datagram, so
    a probe's fate over real sockets matches {!inject} hop for hop; the
    caller forwards with [ttl - 1]. *)

val flow_count : t -> entry:int -> int
(** OpenFlow per-entry packet counter: how many packets this flow entry
    has processed since creation (or {!reset_flow_counts}). Faulty
    executions count too — the rule did process the packet. *)

val flow_counts : t -> (int * int) list
(** All non-zero [(entry, packets)] counters, sorted by entry id. *)

val reset_flow_counts : t -> unit

val ttl : int
(** Hop budget before [Ttl_exceeded] (64). *)
