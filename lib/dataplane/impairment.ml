module Prng = Sdn_util.Prng

type flap_spec = { flap_window_us : int; down_ratio : float }

type churn_spec = { churn_window_us : int; out_ratio : float }

type spec = {
  seed : int;
  loss_rate : float;
  jitter_max_us : int;
  flaps : flap_spec option;
  churn : churn_spec option;
}

let none = { seed = 0; loss_rate = 0.; jitter_max_us = 0; flaps = None; churn = None }

let check_ratio what r =
  if r < 0. || r > 1. then invalid_arg (Printf.sprintf "Impairment: %s outside [0,1]" what)

let spec ?(seed = 0) ?(loss_rate = 0.) ?(jitter_max_us = 0) ?flaps ?churn () =
  check_ratio "loss_rate" loss_rate;
  if jitter_max_us < 0 then invalid_arg "Impairment: negative jitter_max_us";
  (match flaps with
  | Some { flap_window_us; down_ratio } ->
      if flap_window_us <= 0 then invalid_arg "Impairment: non-positive flap window";
      check_ratio "down_ratio" down_ratio
  | None -> ());
  (match churn with
  | Some { churn_window_us; out_ratio } ->
      if churn_window_us <= 0 then invalid_arg "Impairment: non-positive churn window";
      check_ratio "out_ratio" out_ratio
  | None -> ());
  { seed; loss_rate; jitter_max_us; flaps; churn }

type stats = {
  link_losses : int;
  flap_drops : int;
  churn_misses : int;
  jitter_total_us : int;
}

type t = {
  s : spec;
  counters : (int, int) Hashtbl.t; (* stream key -> draws so far *)
  link_losses : int Atomic.t;
  flap_drops : int Atomic.t;
  churn_misses : int Atomic.t;
  jitter_total_us : int Atomic.t;
}

let create s =
  {
    s;
    counters = Hashtbl.create 64;
    link_losses = Atomic.make 0;
    flap_drops = Atomic.make 0;
    churn_misses = Atomic.make 0;
    jitter_total_us = Atomic.make 0;
  }

let spec_of t = t.s

(* Loss and jitter draw through the per-entity counters: their outcome
   depends on how many draws for that entity happened {e before} —
   i.e. on global send order. Flaps and churn are salted by the clock
   window alone, so two probes asking about the same instant get the
   same answer in any order. The probe runner only parallelizes a round
   when this holds (stats are atomic sums, so they are order-blind
   too). *)
let order_independent t = t.s.loss_rate = 0. && t.s.jitter_max_us = 0

(* Stream separation constants: keep loss, flap, churn and jitter draws
   statistically independent even for coinciding entity ids. *)
let loss_stream = 0x1EAF
let flap_stream = 0x2F1A
let churn_stream = 0x3C44
let jitter_stream = 0x4D17

(* One splitmix64 draw keyed on (seed, stream, entity, salt) — the same
   keyed-hash idiom as Fault.Random_bursts, so decisions are stable,
   reproducible, and independent across entities. *)
let draw t ~stream ~entity ~salt =
  let key =
    (((t.s.seed * 1_000_003) + stream) * 8_191) + (entity * 2_654_435_761) + salt
  in
  Prng.float (Prng.create key) 1.0

let link_key ~sw_a ~sw_b = (min sw_a sw_b * 65_599) + max sw_a sw_b

(* Per-entity draw counter: successive draws for the same entity see a
   fresh salt, so retransmissions are independent loss experiments. *)
let next_count t ~stream ~entity =
  let key = (stream * 486_187_739) + entity in
  let c = Option.value ~default:0 (Hashtbl.find_opt t.counters key) in
  Hashtbl.replace t.counters key (c + 1);
  c

let lose_on_link t ~sw_a ~sw_b ~now_us:_ =
  t.s.loss_rate > 0.
  &&
  let entity = link_key ~sw_a ~sw_b in
  let salt = next_count t ~stream:loss_stream ~entity in
  let lost = draw t ~stream:loss_stream ~entity ~salt < t.s.loss_rate in
  if lost then ignore (Atomic.fetch_and_add t.link_losses 1);
  lost

let link_down t ~sw_a ~sw_b ~now_us =
  match t.s.flaps with
  | None -> false
  | Some { flap_window_us; down_ratio } ->
      let window = now_us / flap_window_us in
      let entity = link_key ~sw_a ~sw_b in
      let down = draw t ~stream:flap_stream ~entity ~salt:window < down_ratio in
      if down then ignore (Atomic.fetch_and_add t.flap_drops 1);
      down

let rule_out t ~entry ~now_us =
  match t.s.churn with
  | None -> false
  | Some { churn_window_us; out_ratio } ->
      let window = now_us / churn_window_us in
      let out = draw t ~stream:churn_stream ~entity:entry ~salt:window < out_ratio in
      if out then ignore (Atomic.fetch_and_add t.churn_misses 1);
      out

let jitter_us t ~switch ~now_us:_ =
  if t.s.jitter_max_us = 0 then 0
  else begin
    let salt = next_count t ~stream:jitter_stream ~entity:switch in
    let j =
      int_of_float
        (draw t ~stream:jitter_stream ~entity:switch ~salt
        *. float_of_int (t.s.jitter_max_us + 1))
    in
    let j = min j t.s.jitter_max_us in
    ignore (Atomic.fetch_and_add t.jitter_total_us j);
    j
  end

let stats t =
  {
    link_losses = Atomic.get t.link_losses;
    flap_drops = Atomic.get t.flap_drops;
    churn_misses = Atomic.get t.churn_misses;
    jitter_total_us = Atomic.get t.jitter_total_us;
  }

let reset_stats t =
  Atomic.set t.link_losses 0;
  Atomic.set t.flap_drops 0;
  Atomic.set t.churn_misses 0;
  Atomic.set t.jitter_total_us 0
