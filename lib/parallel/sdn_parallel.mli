(** Deterministic multicore support (docs/PARALLEL.md).

    A {!Pool} is a fixed-size domain pool whose combinators join
    results in input order, so the pipeline's output is bit-for-bit
    identical for any domain count. This module adds the process-wide
    default: the degree of parallelism every stage uses when no
    explicit pool is passed. *)

module Pool = Pool
module Ownership = Ownership

val env_domains : unit -> int
(** Value of [SDNPROBE_DOMAINS] clamped to [\[1, 128\]]; 1 when unset
    or malformed. *)

val default_domains : unit -> int
(** Current default degree of parallelism: the last
    {!set_default_domains} if any, else {!env_domains}. *)

val set_default_domains : int -> unit
(** Override the default for this process (used by tests and the CLI
    [--domains] flag). Raises [Invalid_argument] outside [\[1, 128\]]. *)

val pool : domains:int -> Pool.t
(** The process-wide cached pool of the given size (created on first
    use, shut down automatically at exit). *)

val default_pool : unit -> Pool.t
(** [pool ~domains:(default_domains ())]. *)
