(** Fixed-size domain pool with deterministic combinators.

    A pool owns [domains - 1] worker domains (the calling domain is the
    remaining worker: it participates in every combinator, so a pool of
    size 1 spawns nothing and runs inline). Work items are claimed
    dynamically — an atomic cursor over the input indices — but results
    are always joined {e in input order}, so for a pure per-element
    function the output is bit-for-bit identical for any pool size and
    any scheduling. That determinism contract is what lets the planning
    pipeline run the same golden-digest tests at every domain count
    (docs/PARALLEL.md).

    Combinators are not reentrant: a call from inside a task (or while
    another combinator runs on the same pool) falls back to inline
    sequential execution rather than deadlocking.

    If a task raises, the remaining items still run; the exception
    raised to the caller is the one from the {e lowest} input index
    (again for determinism). Tasks are expected to be pure per element —
    side effects of items after a sequential-raise point may or may not
    have happened. *)

type t

val create : domains:int -> t
(** Spawn a pool running on [domains] domains ([domains - 1] workers
    plus the caller). Raises [Invalid_argument] unless
    [1 <= domains <= 128]. *)

val domains : t -> int
(** The size the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f a] is [Array.map f a], elements evaluated in parallel,
    result in input order. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over a list, preserving order. *)

val mapi_list : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [map_list] with the input index passed to [f]. *)

val map_reduce :
  t -> map:('a -> 'b) -> combine:('c -> 'b -> 'c) -> init:'c -> 'a array -> 'c
(** [map_reduce pool ~map ~combine ~init a]: evaluate [map] on every
    element in parallel, then fold [combine] over the results
    {e sequentially, left to right, in input order} — equivalent to
    [Array.fold_left combine init (Array.map map a)] for pure [map]. *)

val iter_chunked : ?chunk:int -> t -> (int -> 'a -> unit) -> 'a array -> unit
(** [iter_chunked ~chunk pool f a] runs [f i a.(i)] for every index,
    scheduling contiguous blocks of [chunk] indices (default 16) as one
    task — for cheap per-element work where a per-index atomic claim
    would dominate. [f]'s effects on distinct indices must be
    independent (e.g. each writes its own slot of a result buffer);
    under that contract the net effect is schedule-independent. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Further combinator calls run
    inline; idempotent. Pools obtained from {!Sdn_parallel.pool} are
    shut down automatically at exit. *)
