module Pool = Pool
module Ownership = Ownership

(* Process-wide degree of parallelism. Resolution order: an explicit
   [set_default_domains], else the SDNPROBE_DOMAINS environment
   variable, else 1 — so every entry point (CLI, tests, benches) is
   sequential unless asked otherwise, and a single env var switches the
   whole pipeline over (e.g. [SDNPROBE_DOMAINS=4 dune runtest]). *)

let env_domains () =
  match Sys.getenv_opt "SDNPROBE_DOMAINS" with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 && n <= 128 -> n
      | _ ->
          Printf.eprintf "SDNPROBE_DOMAINS=%s ignored (want an int in [1, 128])\n%!" s;
          1)

(* sdncheck: allow D005 — written only by set_default_domains before
   any pool exists (test setup); pooled closures never touch it *)
let override = ref None

let default_domains () =
  match !override with Some n -> n | None -> env_domains ()

let set_default_domains n =
  if n < 1 || n > 128 then invalid_arg "set_default_domains: outside [1, 128]";
  override := Some n

(* One cached pool per size, shut down at exit (worker domains block on
   a condition variable; the runtime joins every domain before the
   process can exit, so leaving them running would hang termination).
   Size-1 pools spawn no domains and run inline. *)
(* sdncheck: allow D005 — every access is under [pools_m] just below *)
let pools : (int, Pool.t) Hashtbl.t = Hashtbl.create 4

let pools_m = Mutex.create ()

let () =
  at_exit (fun () ->
      Mutex.lock pools_m;
      (* sdncheck: allow D001 — at_exit shutdown: every pool is shut
         down exactly once and the order is immaterial *)
      let ps = Hashtbl.fold (fun _ p acc -> p :: acc) pools [] in
      Hashtbl.reset pools;
      Mutex.unlock pools_m;
      List.iter Pool.shutdown ps)

let pool ~domains =
  Mutex.lock pools_m;
  let p =
    match Hashtbl.find_opt pools domains with
    | Some p -> p
    | None ->
        let p = Pool.create ~domains in
        Hashtbl.add pools domains p;
        p
  in
  Mutex.unlock pools_m;
  p

let default_pool () = pool ~domains:(default_domains ())
