(* A job is a bag of [units] independent work units. Units are claimed
   dynamically ([next] is an atomic cursor, so a slow unit never stalls
   the others behind a static partition), but each unit writes only its
   own slot of the caller's result buffer, which is what makes the join
   order — and hence the output — independent of the schedule. *)
type job = {
  units : int;
  run_unit : int -> unit;
  next : int Atomic.t;
  completed : int Atomic.t;
  gen : int; (* generation stamp: workers run each job exactly once *)
  jm : Mutex.t; (* guards first_error *)
  mutable first_error : (int * exn * Printexc.raw_backtrace) option;
}

type t = {
  size : int;
  m : Mutex.t;
  cv : Condition.t; (* new job posted, or shutdown *)
  done_cv : Condition.t; (* some job finished its last unit *)
  mutable pending : job option;
  mutable generation : int;
  mutable live : bool;
  busy : bool Atomic.t; (* reentrancy guard: combinators run one at a time *)
  mutable workers : unit Domain.t array;
}

let domains t = t.size

let record_error job i exn bt =
  Mutex.lock job.jm;
  (match job.first_error with
  | Some (j, _, _) when j <= i -> ()
  | _ -> job.first_error <- Some (i, exn, bt));
  Mutex.unlock job.jm

(* Claim and run units until the cursor runs off the end. Every claimed
   unit bumps [completed] exactly once (even on exceptions), so the
   caller's completion wait cannot hang; the last completer signals. *)
let help pool job =
  let n = job.units in
  let rec claim () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < n then begin
      (try job.run_unit i
       with exn -> record_error job i exn (Printexc.get_raw_backtrace ()));
      if Atomic.fetch_and_add job.completed 1 = n - 1 then begin
        Mutex.lock pool.m;
        Condition.broadcast pool.done_cv;
        Mutex.unlock pool.m
      end;
      claim ()
    end
  in
  claim ()

let worker pool () =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.m;
    let rec wait () =
      if not pool.live then ()
      else
        match pool.pending with
        | Some job when job.gen > !last_gen -> ()
        | _ ->
            Condition.wait pool.cv pool.m;
            wait ()
    in
    wait ();
    if not pool.live then begin
      Mutex.unlock pool.m;
      running := false
    end
    else begin
      let job = Option.get pool.pending in
      last_gen := job.gen;
      Mutex.unlock pool.m;
      help pool job
    end
  done

let create ~domains =
  if domains < 1 || domains > 128 then
    invalid_arg "Pool.create: domains outside [1, 128]";
  let t =
    {
      size = domains;
      m = Mutex.create ();
      cv = Condition.create ();
      done_cv = Condition.create ();
      pending = None;
      generation = 0;
      live = true;
      busy = Atomic.make false;
      workers = [||];
    }
  in
  t.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.m;
  let was_live = t.live in
  t.live <- false;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  if was_live then Array.iter Domain.join t.workers;
  t.workers <- [||]

(* Run [units] work units through the pool, caller participating. Falls
   back to inline execution when the pool is size 1, already running a
   job (reentrant call from a task), or shut down. *)
let run_units t ~units ~run_unit ~inline =
  if units = 0 then ()
  else if
    t.size = 1 || (not t.live)
    || not (Atomic.compare_and_set t.busy false true)
  then inline ()
  else begin
    let job =
      {
        units;
        run_unit;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        gen = t.generation + 1;
        jm = Mutex.create ();
        first_error = None;
      }
    in
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.m;
        t.pending <- None;
        Mutex.unlock t.m;
        Atomic.set t.busy false)
      (fun () ->
        Mutex.lock t.m;
        t.generation <- job.gen;
        t.pending <- Some job;
        Condition.broadcast t.cv;
        Mutex.unlock t.m;
        help t job;
        Mutex.lock t.m;
        while Atomic.get job.completed < job.units do
          Condition.wait t.done_cv t.m
        done;
        Mutex.unlock t.m;
        match job.first_error with
        | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
        | None -> ())
  end

let map t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_units t ~units:n
      ~run_unit:(fun i -> out.(i) <- Some (f a.(i)))
      ~inline:(fun () -> Array.iteri (fun i x -> out.(i) <- Some (f x)) a);
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_list t f l = Array.to_list (map t f (Array.of_list l))

let mapi_list t f l =
  Array.to_list (map t (fun (i, x) -> f i x) (Array.of_list (List.mapi (fun i x -> (i, x)) l)))

let map_reduce t ~map:f ~combine ~init a =
  Array.fold_left combine init (map t f a)

let iter_chunked ?(chunk = 16) t f a =
  if chunk < 1 then invalid_arg "Pool.iter_chunked: chunk < 1";
  let n = Array.length a in
  if n > 0 then begin
    let blocks = (n + chunk - 1) / chunk in
    let run_block b =
      let lo = b * chunk in
      let hi = min n (lo + chunk) - 1 in
      for i = lo to hi do
        f i a.(i)
      done
    in
    run_units t ~units:blocks ~run_unit:run_block
      ~inline:(fun () -> Array.iteri f a)
  end
