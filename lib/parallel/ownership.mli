(** Opt-in runtime ownership checker — the dynamic complement to the
    static D005 rule (docs/ANALYSIS.md).

    Register each shared mutable structure as a {!region}; call
    {!touch} at access sites. With [SDNPROBE_POOL_CHECK=1] (as in the
    domain-4 CI job) an unsynchronized cross-domain touch raises
    {!Violation}; the sanctioned escapes are a {!guarded} section or a
    {!touch_sync} site that holds the region's mutex. Disabled (the
    default), every operation is a no-op on a [None] region. *)

exception Violation of string

type region

val register : name:string -> region
(** Record the calling domain as the region's owner. Returns the
    always-quiet dummy region when the checker is disabled, so call
    sites need no conditionals. *)

val touch : region -> unit
(** Assert the access is safe: same domain as the owner, or inside a
    {!guarded} section. Raises {!Violation} otherwise. *)

val touch_sync : region -> unit
(** Access site that holds the region's own mutex: cross-domain
    touches are counted ({!cross_touches}) but never violations. *)

val guarded : region -> (unit -> 'a) -> 'a
(** Run a synchronized section (caller holds the protecting lock):
    cross-domain {!touch}es inside it are permitted. *)

val adopt : region -> unit
(** Transfer ownership to the calling domain (e.g. when a structure
    built on a worker is handed to the coordinator). *)

val cross_touches : region -> int
(** Synchronized cross-domain touches observed so far (0 when
    disabled). *)

val name : region -> string option
(** The region's name; [None] when the checker is disabled. *)

val set_enabled : bool -> unit
(** Tests only: flip the checker at runtime. Regions already
    registered keep their mode; flip before registering. *)

val is_enabled : unit -> bool

val env_enabled : bool
(** What [SDNPROBE_POOL_CHECK] said at startup. *)
