(* Opt-in runtime ownership checker: the dynamic complement to the
   static D005 rule (docs/ANALYSIS.md).

   A [region] names one mutable structure (a counter table, a memo
   cache). Registering it records the owning domain; every access site
   then calls [touch]. When the checker is enabled
   (SDNPROBE_POOL_CHECK=1, or [set_enabled true] in tests), a touch
   from a different domain raises {!Violation} unless the site is
   inside a [guarded] section or declares itself mutex-protected with
   [touch_sync] — exactly the escape hatches D005 suppressions claim.
   Disabled (the default), a region is [None] and every operation is a
   match on [None]: no allocation, no atomics, no cost on hot paths.

   The checker is a detector, not a lock: it validates the claims the
   D005 suppression comments make, under the real pooled workload of
   the domain-4 CI job. *)

exception Violation of string

let env_enabled =
  match Sys.getenv_opt "SDNPROBE_POOL_CHECK" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* sdncheck: allow D005 — checker switch: written by set_enabled in
   single-domain test setup, before any pooled stage runs *)
let enabled = ref env_enabled

let set_enabled b = enabled := b
let is_enabled () = !enabled

type cell = {
  name : string;
  mutable owner : int; (* domain id; writes via adopt only *)
  sync_depth : int Atomic.t; (* > 0 inside a guarded section *)
  cross : int Atomic.t; (* cross-domain touches that were synchronized *)
}

type region = cell option

let self_id () = (Domain.self () :> int)

let register ~name : region =
  if not !enabled then None
  else Some { name; owner = self_id (); sync_depth = Atomic.make 0; cross = Atomic.make 0 }

let adopt = function
  | None -> ()
  | Some c -> c.owner <- self_id ()

let touch = function
  | None -> ()
  | Some c ->
      let d = self_id () in
      if d <> c.owner then
        if Atomic.get c.sync_depth > 0 then Atomic.incr c.cross
        else
          raise
            (Violation
               (Printf.sprintf
                  "region %S is owned by domain %d but was touched from domain \
                   %d with no synchronization (SDNPROBE_POOL_CHECK)"
                  c.name c.owner d))

(* The caller asserts it holds the region's mutex: cross-domain access
   is counted, never a violation. *)
let touch_sync = function
  | None -> ()
  | Some c -> if self_id () <> c.owner then Atomic.incr c.cross

let guarded r f =
  match r with
  | None -> f ()
  | Some c ->
      Atomic.incr c.sync_depth;
      Fun.protect ~finally:(fun () -> Atomic.decr c.sync_depth) f

let cross_touches = function None -> 0 | Some c -> Atomic.get c.cross
let name = function None -> None | Some c -> Some c.name
