(* Compressed sparse row adjacency: the whole graph in two flat int
   arrays. A [Digraph.t] costs a list cell and a boxed float per edge
   plus a per-vertex list head; at the shard layer's scales (tens of
   thousands of rules, million-edge closures) that pointer soup is the
   memory bill. CSR is the classic diet: [row] holds n+1 offsets into
   [col], vertex [v]'s successors are [col.(row.(v)) .. col.(row.(v+1)
   - 1)], in the source graph's insertion order — int-packed, cache
   friendly, and immutable. *)

type t = { n : int; row : int array; col : int array }

let n_vertices t = t.n

let n_edges t = Array.length t.col

let of_successors ~n succ =
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + List.length (succ v)
  done;
  let col = Array.make row.(n) 0 in
  for v = 0 to n - 1 do
    List.iteri (fun k w -> col.(row.(v) + k) <- w) (succ v)
  done;
  { n; row; col }

let of_digraph g =
  of_successors ~n:(Digraph.n_vertices g) (fun v -> Digraph.succ g v)

let of_edges ~n edges =
  (* Grouped by source in one counting pass; within a source, the input
     order is kept (matching [of_successors]' contract). *)
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Csr.of_edges: vertex out of range";
      deg.(u) <- deg.(u) + 1)
    edges;
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + deg.(v)
  done;
  let col = Array.make row.(n) 0 in
  let fill = Array.copy row in
  List.iter
    (fun (u, v) ->
      col.(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1)
    edges;
  { n; row; col }

let out_degree t v =
  if v < 0 || v >= t.n then invalid_arg "Csr.out_degree: vertex out of range";
  t.row.(v + 1) - t.row.(v)

let iter_succ f t v =
  if v < 0 || v >= t.n then invalid_arg "Csr.iter_succ: vertex out of range";
  for k = t.row.(v) to t.row.(v + 1) - 1 do
    f t.col.(k)
  done

let fold_succ f acc t v =
  if v < 0 || v >= t.n then invalid_arg "Csr.fold_succ: vertex out of range";
  let acc = ref acc in
  for k = t.row.(v) to t.row.(v + 1) - 1 do
    acc := f !acc t.col.(k)
  done;
  !acc

let succ t v = List.rev (fold_succ (fun acc w -> w :: acc) [] t v)

let mem_edge t u v = fold_succ (fun acc w -> acc || w = v) false t u

let iter_edges f t =
  for u = 0 to t.n - 1 do
    for k = t.row.(u) to t.row.(u + 1) - 1 do
      f u t.col.(k)
    done
  done

let words t = (2 * Array.length t.row) + Array.length t.col + 4
