type tree = { dist : float array; parent : int array }

(* Reusable scratch state. Yen runs one spur Dijkstra per vertex of each
   accepted path — hundreds of calls on the same small graph — and the
   per-call cost there is dominated by allocating and initializing the
   dist/parent/settled arrays and the heap, not by the search itself.
   A workspace pays the allocation once and resets in place. *)
type workspace = {
  wg : Digraph.t;
  wdist : float array;
  wparent : int array;
  wsettled : bool array;
  wheap : int Heap.t;
}

let workspace g =
  let n = Digraph.n_vertices g in
  {
    wg = g;
    wdist = Array.make n infinity;
    wparent = Array.make n (-1);
    wsettled = Array.make n false;
    wheap = Heap.create ();
  }

(* One cached workspace per domain, keyed by the graph it was built for
   (physical equality): parallel Yen runs one task per (src, dst) pair,
   and every task on a domain reuses that domain's scratch arrays
   instead of allocating fresh ones per pair. *)
let ws_key : workspace option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let local_workspace g =
  let cell = Domain.DLS.get ws_key in
  match !cell with
  | Some ws when ws.wg == g -> ws
  | _ ->
      let ws = workspace g in
      cell := Some ws;
      ws

let dijkstra_ws ws ?blocked_vertices ?(edge_blocked = fun _ _ -> false) ?target
    src =
  let g = ws.wg in
  let n = Digraph.n_vertices g in
  let dist = ws.wdist and parent = ws.wparent and settled = ws.wsettled in
  let heap = ws.wheap in
  Array.fill dist 0 n infinity;
  Array.fill parent 0 n (-1);
  Array.fill settled 0 n false;
  Heap.clear heap;
  let blocked v =
    match blocked_vertices with Some b -> b.(v) | None -> false
  in
  dist.(src) <- 0.;
  Heap.push heap 0. src;
  let rec loop () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
        if not settled.(u) && d <= dist.(u) then begin
          settled.(u) <- true;
          (* A settled vertex has final dist/parent, as does every vertex
             on the shortest path to it (all settled earlier) — so when
             only [target]'s path is wanted, stop here: the rest of the
             tree is never read. *)
          if target = Some u then ()
          else begin
            List.iter
              (fun (v, w) ->
                if (not (blocked v)) && (not (edge_blocked u v)) && not settled.(v)
                then begin
                  let nd = dist.(u) +. w in
                  if nd < dist.(v) then begin
                    dist.(v) <- nd;
                    parent.(v) <- u;
                    Heap.push heap nd v
                  end
                end)
              (Digraph.succ_weighted g u);
            loop ()
          end
        end
        else loop ()
  in
  loop ();
  { dist; parent }

let dijkstra ?blocked_vertices ?(blocked_edges = []) ?target g src =
  (* One-shot entry point: a fresh workspace, so the returned tree owns
     its arrays. Blocked-edge membership goes through a hash table built
     once — a List.mem here would run once per relaxation. *)
  let edge_blocked =
    match blocked_edges with
    | [] -> fun _ _ -> false
    | edges ->
        let tbl = Hashtbl.create (2 * List.length edges) in
        List.iter (fun e -> Hashtbl.replace tbl e ()) edges;
        fun u v -> Hashtbl.mem tbl (u, v)
  in
  dijkstra_ws (workspace g) ?blocked_vertices ~edge_blocked ?target src

let path_to tree target =
  if tree.dist.(target) = infinity then None
  else begin
    let rec build v acc = if tree.parent.(v) = -1 then v :: acc else build tree.parent.(v) (v :: acc) in
    Some (build target [])
  end

let shortest_path g src dst = path_to (dijkstra ~target:dst g src) dst
