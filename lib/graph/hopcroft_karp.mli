(** Hopcroft–Karp maximum bipartite matching in O(E √V).

    The bipartite graph has [nl] left vertices and [nr] right vertices;
    [adj.(u)] lists the right neighbours of left vertex [u]. This is the
    unmodified algorithm; the MLPC solver layers the paper's
    legal-augmenting-path restriction on top (see {!Mlpc.Legal_matching}). *)

type matching = {
  match_l : int array;  (** left vertex -> matched right vertex or -1 *)
  match_r : int array;  (** right vertex -> matched left vertex or -1 *)
  mutable size : int;
      (** Mutable so incremental builders ({!Rand_matching.run_filtered})
          can keep it in sync with [match_l]/[match_r] while callbacks
          observe the partial matching. *)
}

val run : nl:int -> nr:int -> int list array -> matching
(** Maximum matching. [adj] must have length [nl] and neighbour indices
    in [\[0, nr)]. *)

val greedy : nl:int -> nr:int -> int list array -> matching
(** Simple greedy maximal matching (used as a baseline and for seeding). *)

val konig_cover :
  nl:int -> nr:int -> int list array -> matching -> int list * int list
(** [(cover_l, cover_r)] — a vertex cover built by König's construction
    ((L \ Z) ∪ (R ∩ Z) for Z the alternating-path closure of the free
    left vertices). When the input matching is maximum the cover has
    the same cardinality, which is exactly the certificate
    {!Cert.Konig.check} validates; for a non-maximum matching the
    construction may miss edges, and the checker will say so. *)
