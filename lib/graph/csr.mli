(** Compressed sparse row adjacency: an immutable digraph packed into
    two flat [int array]s (offsets + column indices), no per-edge
    records. The successor order of the source representation is
    preserved exactly, so algorithms that consult candidates in
    insertion order (the determinism contract of the planner) behave
    identically over the CSR form. Used by the shard layer for
    topology partitioning and the inter-shard graph (docs/SHARD.md). *)

type t

val of_digraph : Digraph.t -> t
(** Freeze a {!Digraph.t}; successors keep their insertion order. *)

val of_successors : n:int -> (int -> int list) -> t
(** [of_successors ~n succ] builds the graph on [n] vertices whose
    vertex [v] has successor list [succ v] (order preserved; [succ] is
    called twice per vertex). *)

val of_edges : n:int -> (int * int) list -> t
(** Build from an edge list: edges are grouped by source, and within a
    source keep the list order. Raises [Invalid_argument] on an
    out-of-range vertex. *)

val n_vertices : t -> int

val n_edges : t -> int

val out_degree : t -> int -> int

val succ : t -> int -> int list

val iter_succ : (int -> unit) -> t -> int -> unit

val fold_succ : ('a -> int -> 'a) -> 'a -> t -> int -> 'a

val mem_edge : t -> int -> int -> bool
(** Linear in the out-degree of the source. *)

val iter_edges : (int -> int -> unit) -> t -> unit

val words : t -> int
(** Approximate heap footprint in words — the number a [Digraph.t]
    multiplies by a pointer-chasing constant. *)
