let run_filtered rng ~nl ~nr adj ~accept =
  let match_l = Array.make nl (-1) and match_r = Array.make nr (-1) in
  let m : Hopcroft_karp.matching = { match_l; match_r; size = 0 } in
  let edges =
    Array.of_list
      (List.concat (List.init nl (fun u -> List.map (fun v -> (u, v)) adj.(u))))
  in
  Sdn_util.Prng.shuffle rng edges;
  Array.iter
    (fun (u, v) ->
      if match_l.(u) = -1 && match_r.(v) = -1 && accept m u v then begin
        match_l.(u) <- v;
        match_r.(v) <- u;
        (* Update the live count in place: [accept] receives [m], so a
           callback inspecting [m.size] must see the matched pairs
           accumulated so far, not the 0 a final functional update used
           to leave until return. *)
        m.size <- m.size + 1
      end)
    edges;
  m

let run rng ~nl ~nr adj = run_filtered rng ~nl ~nr adj ~accept:(fun _ _ _ -> true)
