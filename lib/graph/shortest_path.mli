(** Single-source shortest paths (Dijkstra). Edge weights must be
    non-negative. *)

type tree = {
  dist : float array;  (** infinity when unreachable *)
  parent : int array;  (** -1 for the source and unreachable vertices *)
}

val dijkstra :
  ?blocked_vertices:bool array ->
  ?blocked_edges:(int * int) list ->
  ?target:int ->
  Digraph.t ->
  int ->
  tree
(** Shortest-path tree from a source. [blocked_vertices.(v)] removes [v]
    (the source must not be blocked); [blocked_edges] removes specific
    edges — both used by Yen's algorithm for spur computations.

    With [~target], the search stops as soon as [target] is settled: the
    returned tree is exact along the source-to-target shortest path (and
    for every vertex settled before it) but unexplored elsewhere — only
    [path_to tree target] may be read from it. *)

type workspace
(** Preallocated scratch state (dist/parent/settled arrays and heap) for
    repeated runs over one graph — Yen's spur loop issues hundreds of
    Dijkstra calls on the same graph, where per-call allocation
    dominates. *)

val workspace : Digraph.t -> workspace

val local_workspace : Digraph.t -> workspace
(** The calling {e domain}'s cached workspace for [g] (built on first
    use, or when the domain last used a different graph). Lets each
    worker of a parallel Yen batch reuse one scratch allocation across
    all its tasks. The caveats of {!dijkstra_ws} apply, plus: the
    returned workspace must not outlive the current task — any later
    [local_workspace] call on this domain may reuse its arrays. *)

val dijkstra_ws :
  workspace ->
  ?blocked_vertices:bool array ->
  ?edge_blocked:(int -> int -> bool) ->
  ?target:int ->
  int ->
  tree
(** Same search as {!dijkstra} (identical relaxation order and
    tie-breaking), but reusing the workspace's storage; blocked edges
    are a predicate so the caller picks the membership structure. The
    returned tree {e aliases} the workspace arrays — read it before the
    next [dijkstra_ws] on the same workspace. *)

val path_to : tree -> int -> int list option
(** Reconstruct the source-to-target vertex sequence; [None] when
    unreachable. *)

val shortest_path : Digraph.t -> int -> int -> int list option
(** Convenience: vertex sequence of a shortest path. *)
