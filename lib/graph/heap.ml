(* Two parallel backing arrays: [keys] is a flat float array (no per-entry
   box), [values] uses [None] for every slot at or beyond [size] so that
   popped payloads are not kept reachable by the heap (the previous
   entry-record array left them live until overwritten by later pushes —
   or forever, on a drained heap). *)

type 'a t = {
  mutable keys : float array;
  mutable values : 'a option array;
  mutable size : int;
}

let create () = { keys = [||]; values = [||]; size = 0 }

let is_empty h = h.size = 0

let clear h =
  (* Keep the capacity, drop the payload references. *)
  Array.fill h.values 0 h.size None;
  h.size <- 0

let size h = h.size

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let v = h.values.(i) in
  h.values.(i) <- h.values.(j);
  h.values.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(i) < h.keys.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
  if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h key value =
  if h.size >= Array.length h.keys then begin
    let ncap = max 8 (2 * Array.length h.keys) in
    let keys = Array.make ncap 0. and values = Array.make ncap None in
    Array.blit h.keys 0 keys 0 h.size;
    Array.blit h.values 0 values 0 h.size;
    h.keys <- keys;
    h.values <- values
  end;
  h.keys.(h.size) <- key;
  h.values.(h.size) <- Some value;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop_min h =
  if h.size = 0 then None
  else begin
    let key = h.keys.(0) and value = h.values.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.keys.(0) <- h.keys.(h.size);
      h.values.(0) <- h.values.(h.size)
    end;
    (* Clear the vacated tail slot; without this the popped (or moved)
       payload stays reachable from the backing array. *)
    h.values.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    match value with Some v -> Some (key, v) | None -> assert false
  end

let peek_min h =
  if h.size = 0 then None
  else
    match h.values.(0) with
    | Some v -> Some (h.keys.(0), v)
    | None -> assert false
