type matching = { match_l : int array; match_r : int array; mutable size : int }

let infinity_dist = max_int

let greedy ~nl ~nr adj =
  let match_l = Array.make nl (-1) and match_r = Array.make nr (-1) in
  let size = ref 0 in
  for u = 0 to nl - 1 do
    if match_l.(u) = -1 then
      match List.find_opt (fun v -> match_r.(v) = -1) adj.(u) with
      | Some v ->
          match_l.(u) <- v;
          match_r.(v) <- u;
          incr size
      | None -> ()
  done;
  { match_l; match_r; size = !size }

let run ~nl ~nr adj =
  if Array.length adj <> nl then invalid_arg "Hopcroft_karp.run: adj length";
  let match_l = Array.make nl (-1) and match_r = Array.make nr (-1) in
  let dist = Array.make nl infinity_dist in
  let size = ref 0 in
  (* BFS phase: layer free left vertices; returns true if an augmenting
     path exists. *)
  let bfs () =
    let q = Queue.create () in
    for u = 0 to nl - 1 do
      if match_l.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u q
      end
      else dist.(u) <- infinity_dist
    done;
    let found = ref false in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          let u' = match_r.(v) in
          if u' = -1 then found := true
          else if dist.(u') = infinity_dist then begin
            dist.(u') <- dist.(u) + 1;
            Queue.add u' q
          end)
        adj.(u)
    done;
    !found
  in
  (* DFS phase: vertex-disjoint shortest augmenting paths. *)
  let rec dfs u =
    let rec try_neighbours = function
      | [] ->
          dist.(u) <- infinity_dist;
          false
      | v :: rest ->
          let u' = match_r.(v) in
          if u' = -1 || (dist.(u') = dist.(u) + 1 && dfs u') then begin
            match_l.(u) <- v;
            match_r.(v) <- u;
            true
          end
          else try_neighbours rest
    in
    try_neighbours adj.(u)
  in
  while bfs () do
    for u = 0 to nl - 1 do
      if match_l.(u) = -1 && dfs u then incr size
    done
  done;
  { match_l; match_r; size = !size }

(* König construction: Z = vertices reachable from the free left
   vertices by alternating paths (unmatched edges left->right, matched
   edges right->left). (L \ Z) ∪ (R ∩ Z) is a vertex cover of size
   |M| whenever M is maximum — the checkable maximality witness. *)
let konig_cover ~nl ~nr adj m =
  if Array.length adj <> nl then
    invalid_arg "Hopcroft_karp.konig_cover: adj length";
  let zl = Array.make nl false and zr = Array.make nr false in
  let q = Queue.create () in
  for u = 0 to nl - 1 do
    if m.match_l.(u) = -1 then begin
      zl.(u) <- true;
      Queue.add u q
    end
  done;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if m.match_l.(u) <> v && not zr.(v) then begin
          zr.(v) <- true;
          let u' = m.match_r.(v) in
          if u' <> -1 && not zl.(u') then begin
            zl.(u') <- true;
            Queue.add u' q
          end
        end)
      adj.(u)
  done;
  let cover_left = ref [] and cover_right = ref [] in
  for u = nl - 1 downto 0 do
    if not zl.(u) then cover_left := u :: !cover_left
  done;
  for v = nr - 1 downto 0 do
    if zr.(v) then cover_right := v :: !cover_right
  done;
  (!cover_left, !cover_right)
