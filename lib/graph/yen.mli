(** Yen's algorithm for the K shortest loopless paths.

    The paper's evaluation installs flow entries "along paths computed by
    an all-pairs K-th shortest path algorithm" (citing Eppstein); Yen's
    algorithm is the loopless variant suited to routing-rule synthesis,
    where each path becomes a forwarding chain and must not revisit a
    switch. *)

val k_shortest : Digraph.t -> src:int -> dst:int -> k:int -> int list list
(** Up to [k] loopless paths from [src] to [dst] as vertex sequences, in
    non-decreasing weight order. Fewer than [k] results when the graph
    does not contain that many distinct loopless paths. *)

val k_shortest_pairs :
  ?pool:Sdn_parallel.Pool.t ->
  Digraph.t ->
  pairs:(int * int) list ->
  k:int ->
  int list list list
(** [k_shortest] for every [(src, dst)] pair, results in input order.
    With a pool of two or more domains the pairs are enumerated in
    parallel — each worker reuses a domain-local Dijkstra workspace
    ({!Shortest_path.local_workspace}) — and the output is identical to
    the sequential map for any domain count. *)

val path_weight : Digraph.t -> int list -> float
(** Total weight of a vertex sequence. Raises [Invalid_argument] if a
    listed edge is absent. *)
