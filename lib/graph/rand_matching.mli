(** Randomized greedy matching (Dyer & Frieze 1991).

    Repeatedly pick a uniformly-random remaining edge, add it to the
    matching, and delete both endpoints. The result is a maximal (not
    necessarily maximum) matching whose distribution over runs is what
    Randomized SDNProbe exploits: every legal path cover is produced
    with positive probability, so colluding switches cannot rely on
    always sharing a tested path (§V-C). *)

val run :
  Sdn_util.Prng.t ->
  nl:int ->
  nr:int ->
  int list array ->
  Hopcroft_karp.matching
(** Maximal matching of the bipartite graph, random edge order. *)

val run_filtered :
  Sdn_util.Prng.t ->
  nl:int ->
  nr:int ->
  int list array ->
  accept:(Hopcroft_karp.matching -> int -> int -> bool) ->
  Hopcroft_karp.matching
(** Like {!run}, but each candidate edge [(u, v)] is added only when
    [accept current u v] holds — the hook the MLPC solver uses to keep
    the growing path cover legal. The [current] matching passed to
    [accept] is live: [match_l]/[match_r] {e and} [size] reflect every
    edge added so far (historically [size] stayed 0 until return). *)
