type t = {
  n : int;
  adj : (int * float) list array; (* reverse insertion order *)
  mutable nedges : int;
  mutable preds : int list array option; (* cache *)
  mutable fsucc : (int * float) list array option;
      (* insertion-order successor cache: [succ_weighted] sits in
         Dijkstra's relaxation loop, where a List.rev per settled vertex
         shows up *)
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; adj = Array.make n []; nedges = 0; preds = None; fsucc = None }

let n_vertices g = g.n

let n_edges g = g.nedges

let check g v name = if v < 0 || v >= g.n then invalid_arg (name ^ ": vertex out of range")

let mem_edge g u v =
  check g u "Digraph.mem_edge";
  check g v "Digraph.mem_edge";
  List.exists (fun (w, _) -> w = v) g.adj.(u)

let add_edge ?(weight = 1.0) g u v =
  check g u "Digraph.add_edge";
  check g v "Digraph.add_edge";
  if not (List.exists (fun (w, _) -> w = v) g.adj.(u)) then begin
    g.adj.(u) <- (v, weight) :: g.adj.(u);
    g.nedges <- g.nedges + 1;
    g.preds <- None;
    g.fsucc <- None
  end

let weight g u v =
  check g u "Digraph.weight";
  List.assoc_opt v g.adj.(u)

let fsucc_table g =
  match g.fsucc with
  | Some f -> f
  | None ->
      let f = Array.map List.rev g.adj in
      g.fsucc <- Some f;
      f

let succ_weighted g u =
  check g u "Digraph.succ";
  (fsucc_table g).(u)

let succ g u = List.map fst (succ_weighted g u)

let preds_table g =
  match g.preds with
  | Some p -> p
  | None ->
      let p = Array.make g.n [] in
      for u = g.n - 1 downto 0 do
        List.iter (fun (v, _) -> p.(v) <- u :: p.(v)) g.adj.(u)
      done;
      g.preds <- Some p;
      p

let pred g v =
  check g v "Digraph.pred";
  (preds_table g).(v)

let in_degree g v = List.length (pred g v)

let out_degree g u =
  check g u "Digraph.out_degree";
  List.length g.adj.(u)

let edges g =
  List.concat (List.init g.n (fun u -> List.map (fun (v, _) -> (u, v)) (succ_weighted g u)))

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun (v, _) -> f u v) (succ_weighted g u)
  done

let transpose g =
  let t = create g.n in
  iter_edges (fun u v -> add_edge t v u) g;
  t

let copy g =
  { n = g.n; adj = Array.copy g.adj; nedges = g.nedges; preds = g.preds; fsucc = g.fsucc }

let fold_vertices f acc g =
  let acc = ref acc in
  for v = 0 to g.n - 1 do
    acc := f !acc v
  done;
  !acc

let sources g =
  let p = preds_table g in
  List.filter (fun v -> p.(v) = []) (List.init g.n Fun.id)

let sinks g = List.filter (fun v -> g.adj.(v) = []) (List.init g.n Fun.id)

let reachable g start =
  check g start "Digraph.reachable";
  let seen = Array.make g.n false in
  let q = Queue.create () in
  seen.(start) <- true;
  Queue.add start q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (v, _) ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v q
        end)
      g.adj.(u)
  done;
  seen

let topological_sort g =
  let indeg = Array.make g.n 0 in
  iter_edges (fun _ v -> indeg.(v) <- indeg.(v) + 1) g;
  let q = Queue.create () in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Queue.add v q
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    incr count;
    order := u :: !order;
    List.iter
      (fun (v, _) ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v q)
      g.adj.(u)
  done;
  if !count = g.n then Some (List.rev !order) else None

let has_cycle g = topological_sort g = None

let find_cycle g =
  (* Iterative DFS with colors; extracts the cycle from the stack. *)
  let color = Array.make g.n 0 in
  let parent = Array.make g.n (-1) in
  let result = ref None in
  let rec dfs u =
    color.(u) <- 1;
    List.iter
      (fun (v, _) ->
        if !result = None then
          if color.(v) = 0 then begin
            parent.(v) <- u;
            dfs v
          end
          else if color.(v) = 1 then begin
            (* Found a back edge u -> v: walk parents from u back to v. *)
            let rec collect w acc = if w = v then v :: acc else collect parent.(w) (w :: acc) in
            result := Some (collect u [])
          end)
      g.adj.(u);
    color.(u) <- 2
  in
  (try
     for v = 0 to g.n - 1 do
       if color.(v) = 0 && !result = None then dfs v;
       if !result <> None then raise Exit
     done
   with Exit -> ());
  !result

let is_connected_undirected g =
  if g.n = 0 then true
  else begin
    let und = Array.make g.n [] in
    iter_edges
      (fun u v ->
        und.(u) <- v :: und.(u);
        und.(v) <- u :: und.(v))
      g;
    let seen = Array.make g.n false in
    let q = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 q;
    let count = ref 1 in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr count;
            Queue.add v q
          end)
        und.(u)
    done;
    !count = g.n
  end

let pp fmt g =
  Format.fprintf fmt "digraph(%d vertices, %d edges)" g.n g.nedges
